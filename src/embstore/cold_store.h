// ColdStore: the compressed, checksummed cold tier of a tiered
// embedding table (docs/ARCHITECTURE.md §13).
//
// Rows live in fixed-size segments; each segment's fp32 rows are
// serialized, compressed through a compress:: codec, and framed with a
// checksum so a damaged segment is *rejected* as ColdStoreError, never
// partially decoded into a wrong row. Two backings share one payload
// format:
//
//   * in-memory (cold_dir empty): compressed payload + HashBytes
//     checksum held in RAM — the serving/trainer default, still paying
//     real compress/decompress costs so bytes-from-cold is measured,
//     not modeled;
//   * file-backed: one checksummed-envelope file per segment
//     (common::WriteChecksummedFile), written under a per-store unique
//     subdirectory so many tables can share a base directory.
//
// The cold round trip is bitwise lossless (fp32 rows are never
// re-quantized), which is what lets the tier-placement determinism rule
// hold: a row fetched from cold is the exact row that was written.
//
// Thread safety: none. TieredRowStore serializes access under its own
// mutex; standalone users must do the same.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "nn/dense_matrix.h"

namespace recd::embstore {

/// Thrown on any cold-segment validation or I/O failure: checksum
/// mismatch, truncation, malformed payload, wrong shape, or an
/// unwritable/unreadable segment file. A cold read either returns exact
/// rows or throws — never a partial row.
class ColdStoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ColdStore {
 public:
  /// Per-read accounting, added to by ReadSegment (the caller owns
  /// aggregation so checkpoints can materialize without skewing stats).
  struct ReadCounters {
    std::uint64_t segments = 0;
    std::uint64_t compressed_bytes = 0;
    std::uint64_t raw_bytes = 0;
  };

  /// Splits `initial` (rows x dim) into compressed segments of
  /// `rows_per_segment` rows. `dir` empty keeps segments in memory;
  /// otherwise each segment is a checksummed file under a fresh unique
  /// subdirectory of `dir`. Throws std::invalid_argument on
  /// rows_per_segment == 0 and ColdStoreError on write failures.
  ColdStore(const nn::DenseMatrix& initial, std::size_t rows_per_segment,
            compress::CodecKind codec, const std::string& dir);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t rows_per_segment() const {
    return rows_per_segment_;
  }
  [[nodiscard]] std::size_t num_segments() const {
    return segment_sizes_.size();
  }
  [[nodiscard]] std::size_t SegmentOf(std::size_t row) const {
    return row / rows_per_segment_;
  }
  [[nodiscard]] std::size_t SegmentFirstRow(std::size_t s) const {
    return s * rows_per_segment_;
  }
  /// Rows in segment s (the last segment may be short).
  [[nodiscard]] std::size_t SegmentRows(std::size_t s) const;

  /// Decompresses and fully validates segment s; returns its rows as
  /// SegmentRows(s) * dim floats. Adds to `counters` if non-null.
  /// Throws ColdStoreError on any corruption, truncation, or mismatch.
  [[nodiscard]] std::vector<float> ReadSegment(std::size_t s,
                                               ReadCounters* counters) const;

  /// Replaces segment s with `data` (SegmentRows(s) * dim floats),
  /// recompressing and re-checksumming it.
  void WriteSegment(std::size_t s, std::span<const float> data);

  /// Rebuilds every segment from `w` (the checkpoint-restore path).
  /// Shape must match; throws std::invalid_argument otherwise.
  void Load(const nn::DenseMatrix& w);

  /// Full table as a dense matrix (checkpoint materialization).
  [[nodiscard]] nn::DenseMatrix Materialize() const;

  /// Current compressed footprint across all segments.
  [[nodiscard]] std::size_t compressed_bytes() const;

  /// File-mode only: path of segment s (tests corrupt/truncate it).
  /// Empty string in memory mode.
  [[nodiscard]] std::string SegmentPath(std::size_t s) const;

  [[nodiscard]] bool file_backed() const { return !dir_.empty(); }

 private:
  [[nodiscard]] std::vector<std::byte> EncodePayload(
      std::size_t s, std::span<const float> data) const;
  void StoreSegment(std::size_t s, std::span<const float> data);

  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t rows_per_segment_ = 1;
  compress::CodecKind codec_ = compress::CodecKind::kLz77;
  std::string dir_;  // unique per-store segment directory; empty = memory

  struct MemSegment {
    std::vector<std::byte> payload;
    std::uint64_t checksum = 0;
  };
  std::vector<MemSegment> mem_segments_;   // memory mode
  std::vector<std::size_t> segment_sizes_; // compressed payload bytes
};

}  // namespace recd::embstore
