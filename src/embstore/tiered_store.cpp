#include "embstore/tiered_store.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

namespace recd::embstore {

TieredRowStore::TieredRowStore(const nn::DenseMatrix& initial,
                               TierConfig config)
    : config_(std::move(config)),
      cold_(initial, config_.rows_per_segment, config_.codec,
            config_.cold_dir),
      row_fetches_(metrics_.GetCounter("embstore.row_fetches")),
      hot_hits_(metrics_.GetCounter("embstore.hot_hits")),
      cold_fetches_(metrics_.GetCounter("embstore.cold_fetches")),
      admissions_(metrics_.GetCounter("embstore.admissions")),
      evictions_(metrics_.GetCounter("embstore.evictions")),
      writebacks_(metrics_.GetCounter("embstore.writebacks")),
      segments_read_(metrics_.GetCounter("embstore.segments_read")),
      bytes_from_cold_(metrics_.GetCounter("embstore.bytes_from_cold")),
      bytes_decompressed_(
          metrics_.GetCounter("embstore.bytes_decompressed")),
      resident_rows_gauge_(metrics_.GetGauge("embstore.resident_rows")),
      capacity_rows_gauge_(metrics_.GetGauge("embstore.capacity_rows")) {
  const std::size_t capacity =
      std::min(config_.hot_capacity_rows, cold_.rows());
  hot_data_.resize(capacity * cold_.dim());
  slot_row_.assign(capacity, 0);
  slot_dirty_.assign(capacity, false);
  free_slots_.reserve(capacity);
  for (std::size_t s = capacity; s > 0; --s) free_slots_.push_back(s - 1);
  freq_.assign(cold_.rows(), 0);
  capacity_rows_gauge_.Set(static_cast<std::int64_t>(capacity));
}

void TieredRowStore::BumpFrequency(std::size_t row, std::uint64_t weight) {
  const auto it = row_slot_.find(row);
  if (it != row_slot_.end()) {
    hot_by_freq_.erase({freq_[row], row});
    freq_[row] += weight;
    hot_by_freq_.insert({freq_[row], row});
  } else {
    freq_[row] += weight;
  }
}

void TieredRowStore::EvictLeastFrequent() {
  const auto victim = *hot_by_freq_.begin();
  hot_by_freq_.erase(hot_by_freq_.begin());
  const std::size_t row = victim.second;
  const std::size_t slot = row_slot_.at(row);
  if (slot_dirty_[slot]) {
    WriteRowToCold(row, hot_data_.data() + slot * cold_.dim());
    writebacks_.Increment();
  }
  row_slot_.erase(row);
  slot_dirty_[slot] = false;
  free_slots_.push_back(slot);
  evictions_.Increment();
}

void TieredRowStore::Admit(std::size_t row, const float* data) {
  if (free_slots_.empty()) EvictLeastFrequent();
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();
  std::memcpy(hot_data_.data() + slot * cold_.dim(), data,
              cold_.dim() * sizeof(float));
  slot_row_[slot] = row;
  slot_dirty_[slot] = false;
  row_slot_.emplace(row, slot);
  hot_by_freq_.insert({freq_[row], row});
  admissions_.Increment();
}

void TieredRowStore::WriteRowToCold(std::size_t row, const float* data) {
  const std::size_t s = cold_.SegmentOf(row);
  auto seg = cold_.ReadSegment(s, nullptr);
  const std::size_t offset = (row - cold_.SegmentFirstRow(s)) * cold_.dim();
  std::memcpy(seg.data() + offset, data, cold_.dim() * sizeof(float));
  cold_.WriteSegment(s, seg);
}

void TieredRowStore::Gather(std::span<const std::size_t> row_ids,
                            std::span<const std::uint64_t> weights,
                            float* out) {
  if (!weights.empty() && weights.size() != row_ids.size()) {
    throw std::invalid_argument(
        "TieredRowStore::Gather: weights/row_ids size mismatch");
  }
  const std::size_t d = cold_.dim();
  std::lock_guard<std::mutex> lock(mutex_);
  // Pass 1: serve hot hits, bump frequencies, collect misses by segment.
  // A row can appear several times in one call (each occurrence counts);
  // later duplicates of a miss resolve from the same decompressed
  // segment.
  std::map<std::size_t, std::vector<std::size_t>> misses;  // seg -> out idx
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    const std::size_t row = row_ids[i];
    if (row >= cold_.rows()) {
      throw std::out_of_range("TieredRowStore::Gather: row out of range");
    }
    row_fetches_.Increment();
    BumpFrequency(row, weights.empty() ? 1 : std::max<std::uint64_t>(
                                                 1, weights[i]));
    const auto it = row_slot_.find(row);
    if (it != row_slot_.end()) {
      hot_hits_.Increment();
      std::memcpy(out + i * d, hot_data_.data() + it->second * d,
                  d * sizeof(float));
    } else {
      cold_fetches_.Increment();
      misses[cold_.SegmentOf(row)].push_back(i);
    }
  }
  // Pass 2: decompress each missed segment once; copy rows out and run
  // frequency-based admission per distinct row.
  ColdStore::ReadCounters rc;
  for (const auto& [seg, indices] : misses) {
    const auto data = cold_.ReadSegment(seg, &rc);
    const std::size_t first = cold_.SegmentFirstRow(seg);
    for (const std::size_t i : indices) {
      const std::size_t row = row_ids[i];
      const float* src = row_slot_.count(row) != 0
                             ? hot_data_.data() + row_slot_.at(row) * d
                             : data.data() + (row - first) * d;
      std::memcpy(out + i * d, src, d * sizeof(float));
      if (row_slot_.count(row) != 0) continue;  // admitted earlier in call
      if (slot_row_.empty()) continue;  // no hot tier configured
      if (!free_slots_.empty()) {
        Admit(row, data.data() + (row - first) * d);
      } else {
        // Frequency admission: only displace the LFU resident if this
        // row is now strictly hotter (ties keep the resident — scan
        // resistance).
        const auto& lfu = *hot_by_freq_.begin();
        if (freq_[row] > lfu.first) {
          Admit(row, data.data() + (row - first) * d);
        }
      }
    }
  }
  segments_read_.Add(static_cast<std::int64_t>(rc.segments));
  bytes_from_cold_.Add(static_cast<std::int64_t>(rc.compressed_bytes));
  bytes_decompressed_.Add(static_cast<std::int64_t>(rc.raw_bytes));
  resident_rows_gauge_.Set(static_cast<std::int64_t>(row_slot_.size()));
}

void TieredRowStore::Update(std::span<const std::size_t> row_ids,
                            const float* src) {
  const std::size_t d = cold_.dim();
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::size_t, std::vector<std::size_t>> cold_rows;  // seg -> idx
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    const std::size_t row = row_ids[i];
    if (row >= cold_.rows()) {
      throw std::out_of_range("TieredRowStore::Update: row out of range");
    }
    const auto it = row_slot_.find(row);
    if (it != row_slot_.end()) {
      std::memcpy(hot_data_.data() + it->second * d, src + i * d,
                  d * sizeof(float));
      slot_dirty_[it->second] = true;
    } else {
      cold_rows[cold_.SegmentOf(row)].push_back(i);
    }
  }
  for (const auto& [seg, indices] : cold_rows) {
    auto data = cold_.ReadSegment(seg, nullptr);
    const std::size_t first = cold_.SegmentFirstRow(seg);
    for (const std::size_t i : indices) {
      std::memcpy(data.data() + (row_ids[i] - first) * d, src + i * d,
                  d * sizeof(float));
    }
    cold_.WriteSegment(seg, data);
    writebacks_.Add(static_cast<std::int64_t>(indices.size()));
  }
}

nn::DenseMatrix TieredRowStore::Materialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  nn::DenseMatrix out = cold_.Materialize();
  const std::size_t d = cold_.dim();
  for (const auto& [row, slot] : row_slot_) {
    if (!slot_dirty_[slot]) continue;  // cold copy is current
    std::memcpy(out.data().data() + row * d, hot_data_.data() + slot * d,
                d * sizeof(float));
  }
  return out;
}

void TieredRowStore::Load(const nn::DenseMatrix& w) {
  std::lock_guard<std::mutex> lock(mutex_);
  cold_.Load(w);
  row_slot_.clear();
  hot_by_freq_.clear();
  std::fill(slot_dirty_.begin(), slot_dirty_.end(), false);
  free_slots_.clear();
  const std::size_t capacity = slot_row_.size();
  for (std::size_t s = capacity; s > 0; --s) free_slots_.push_back(s - 1);
  std::fill(freq_.begin(), freq_.end(), 0);
  resident_rows_gauge_.Set(0);
}

TierStats TieredRowStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TierStats s;
  const auto u64 = [](const obs::Counter& c) {
    return static_cast<std::uint64_t>(c.Value());
  };
  s.row_fetches = u64(row_fetches_);
  s.hot_hits = u64(hot_hits_);
  s.cold_fetches = u64(cold_fetches_);
  s.admissions = u64(admissions_);
  s.evictions = u64(evictions_);
  s.writebacks = u64(writebacks_);
  s.segments_read = u64(segments_read_);
  s.bytes_from_cold = u64(bytes_from_cold_);
  s.bytes_decompressed = u64(bytes_decompressed_);
  s.resident_rows = row_slot_.size();
  s.capacity_rows = slot_row_.size();
  return s;
}

void TieredRowStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.ResetValues();
  capacity_rows_gauge_.Set(static_cast<std::int64_t>(slot_row_.size()));
  resident_rows_gauge_.Set(static_cast<std::int64_t>(row_slot_.size()));
}

std::size_t TieredRowStore::resident_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return row_slot_.size();
}

std::size_t TieredRowStore::cold_compressed_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cold_.compressed_bytes();
}

}  // namespace recd::embstore
