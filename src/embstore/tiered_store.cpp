#include "embstore/tiered_store.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>

namespace recd::embstore {

TieredRowStore::TieredRowStore(const nn::DenseMatrix& initial,
                               TierConfig config)
    : config_(std::move(config)),
      cold_(initial, config_.rows_per_segment, config_.codec,
            config_.cold_dir) {
  const std::size_t capacity =
      std::min(config_.hot_capacity_rows, cold_.rows());
  hot_data_.resize(capacity * cold_.dim());
  slot_row_.assign(capacity, 0);
  slot_dirty_.assign(capacity, false);
  free_slots_.reserve(capacity);
  for (std::size_t s = capacity; s > 0; --s) free_slots_.push_back(s - 1);
  freq_.assign(cold_.rows(), 0);
  stats_.capacity_rows = capacity;
}

void TieredRowStore::BumpFrequency(std::size_t row, std::uint64_t weight) {
  const auto it = row_slot_.find(row);
  if (it != row_slot_.end()) {
    hot_by_freq_.erase({freq_[row], row});
    freq_[row] += weight;
    hot_by_freq_.insert({freq_[row], row});
  } else {
    freq_[row] += weight;
  }
}

void TieredRowStore::EvictLeastFrequent() {
  const auto victim = *hot_by_freq_.begin();
  hot_by_freq_.erase(hot_by_freq_.begin());
  const std::size_t row = victim.second;
  const std::size_t slot = row_slot_.at(row);
  if (slot_dirty_[slot]) {
    WriteRowToCold(row, hot_data_.data() + slot * cold_.dim());
    stats_.writebacks += 1;
  }
  row_slot_.erase(row);
  slot_dirty_[slot] = false;
  free_slots_.push_back(slot);
  stats_.evictions += 1;
}

void TieredRowStore::Admit(std::size_t row, const float* data) {
  if (free_slots_.empty()) EvictLeastFrequent();
  const std::size_t slot = free_slots_.back();
  free_slots_.pop_back();
  std::memcpy(hot_data_.data() + slot * cold_.dim(), data,
              cold_.dim() * sizeof(float));
  slot_row_[slot] = row;
  slot_dirty_[slot] = false;
  row_slot_.emplace(row, slot);
  hot_by_freq_.insert({freq_[row], row});
  stats_.admissions += 1;
}

void TieredRowStore::WriteRowToCold(std::size_t row, const float* data) {
  const std::size_t s = cold_.SegmentOf(row);
  auto seg = cold_.ReadSegment(s, nullptr);
  const std::size_t offset = (row - cold_.SegmentFirstRow(s)) * cold_.dim();
  std::memcpy(seg.data() + offset, data, cold_.dim() * sizeof(float));
  cold_.WriteSegment(s, seg);
}

void TieredRowStore::Gather(std::span<const std::size_t> row_ids,
                            std::span<const std::uint64_t> weights,
                            float* out) {
  if (!weights.empty() && weights.size() != row_ids.size()) {
    throw std::invalid_argument(
        "TieredRowStore::Gather: weights/row_ids size mismatch");
  }
  const std::size_t d = cold_.dim();
  std::lock_guard<std::mutex> lock(mutex_);
  // Pass 1: serve hot hits, bump frequencies, collect misses by segment.
  // A row can appear several times in one call (each occurrence counts);
  // later duplicates of a miss resolve from the same decompressed
  // segment.
  std::map<std::size_t, std::vector<std::size_t>> misses;  // seg -> out idx
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    const std::size_t row = row_ids[i];
    if (row >= cold_.rows()) {
      throw std::out_of_range("TieredRowStore::Gather: row out of range");
    }
    stats_.row_fetches += 1;
    BumpFrequency(row, weights.empty() ? 1 : std::max<std::uint64_t>(
                                                 1, weights[i]));
    const auto it = row_slot_.find(row);
    if (it != row_slot_.end()) {
      stats_.hot_hits += 1;
      std::memcpy(out + i * d, hot_data_.data() + it->second * d,
                  d * sizeof(float));
    } else {
      stats_.cold_fetches += 1;
      misses[cold_.SegmentOf(row)].push_back(i);
    }
  }
  // Pass 2: decompress each missed segment once; copy rows out and run
  // frequency-based admission per distinct row.
  ColdStore::ReadCounters rc;
  for (const auto& [seg, indices] : misses) {
    const auto data = cold_.ReadSegment(seg, &rc);
    const std::size_t first = cold_.SegmentFirstRow(seg);
    for (const std::size_t i : indices) {
      const std::size_t row = row_ids[i];
      const float* src = row_slot_.count(row) != 0
                             ? hot_data_.data() + row_slot_.at(row) * d
                             : data.data() + (row - first) * d;
      std::memcpy(out + i * d, src, d * sizeof(float));
      if (row_slot_.count(row) != 0) continue;  // admitted earlier in call
      if (stats_.capacity_rows == 0) continue;
      if (!free_slots_.empty()) {
        Admit(row, data.data() + (row - first) * d);
      } else {
        // Frequency admission: only displace the LFU resident if this
        // row is now strictly hotter (ties keep the resident — scan
        // resistance).
        const auto& lfu = *hot_by_freq_.begin();
        if (freq_[row] > lfu.first) {
          Admit(row, data.data() + (row - first) * d);
        }
      }
    }
  }
  stats_.segments_read += rc.segments;
  stats_.bytes_from_cold += rc.compressed_bytes;
  stats_.bytes_decompressed += rc.raw_bytes;
}

void TieredRowStore::Update(std::span<const std::size_t> row_ids,
                            const float* src) {
  const std::size_t d = cold_.dim();
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::size_t, std::vector<std::size_t>> cold_rows;  // seg -> idx
  for (std::size_t i = 0; i < row_ids.size(); ++i) {
    const std::size_t row = row_ids[i];
    if (row >= cold_.rows()) {
      throw std::out_of_range("TieredRowStore::Update: row out of range");
    }
    const auto it = row_slot_.find(row);
    if (it != row_slot_.end()) {
      std::memcpy(hot_data_.data() + it->second * d, src + i * d,
                  d * sizeof(float));
      slot_dirty_[it->second] = true;
    } else {
      cold_rows[cold_.SegmentOf(row)].push_back(i);
    }
  }
  for (const auto& [seg, indices] : cold_rows) {
    auto data = cold_.ReadSegment(seg, nullptr);
    const std::size_t first = cold_.SegmentFirstRow(seg);
    for (const std::size_t i : indices) {
      std::memcpy(data.data() + (row_ids[i] - first) * d, src + i * d,
                  d * sizeof(float));
    }
    cold_.WriteSegment(seg, data);
    stats_.writebacks += indices.size();
  }
}

nn::DenseMatrix TieredRowStore::Materialize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  nn::DenseMatrix out = cold_.Materialize();
  const std::size_t d = cold_.dim();
  for (const auto& [row, slot] : row_slot_) {
    if (!slot_dirty_[slot]) continue;  // cold copy is current
    std::memcpy(out.data().data() + row * d, hot_data_.data() + slot * d,
                d * sizeof(float));
  }
  return out;
}

void TieredRowStore::Load(const nn::DenseMatrix& w) {
  std::lock_guard<std::mutex> lock(mutex_);
  cold_.Load(w);
  row_slot_.clear();
  hot_by_freq_.clear();
  std::fill(slot_dirty_.begin(), slot_dirty_.end(), false);
  free_slots_.clear();
  const std::size_t capacity = slot_row_.size();
  for (std::size_t s = capacity; s > 0; --s) free_slots_.push_back(s - 1);
  std::fill(freq_.begin(), freq_.end(), 0);
}

TierStats TieredRowStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TierStats s = stats_;
  s.resident_rows = row_slot_.size();
  return s;
}

void TieredRowStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto capacity = stats_.capacity_rows;
  stats_ = {};
  stats_.capacity_rows = capacity;
}

std::size_t TieredRowStore::resident_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return row_slot_.size();
}

std::size_t TieredRowStore::cold_compressed_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cold_.compressed_bytes();
}

}  // namespace recd::embstore
