// TieredRowStore: a bounded in-memory hot tier over a compressed cold
// store — the pluggable row backend of nn::EmbeddingTable
// (docs/ARCHITECTURE.md §13).
//
// The hot tier is row-granular, 64-byte-aligned (kernel-compatible)
// storage holding at most `hot_capacity_rows` rows; every other row
// lives compressed in the ColdStore. Admission and eviction are
// frequency-driven: each fetch carries an access *weight* — the
// IKJT inverse-index multiplicity that the reader and serve paths
// already compute — so RecD's dedup skew directly shapes the hot set.
// A cold-fetched row is admitted when the tier has a free slot or when
// its accumulated frequency beats the least-frequent resident row
// (LFU with frequency-based admission: one-hit rows cannot flush a
// skew-heavy working set). Dirty rows (SGD write-backs) are
// recompressed into their cold segment on eviction.
//
// Determinism: rows are bit-exact in both tiers (fp32, lossless
// codecs), every fetch copies the row bitwise, and updates apply to
// whichever copy is current — so forward/backward/SGD results are
// bitwise identical for every hot capacity and eviction schedule. The
// cache changes *where bytes live and what they cost*, never their
// values.
//
// Thread safety: all public methods are internally synchronized; many
// readers may Gather concurrently while eviction reshapes the tier
// (raced under TSan by tests/embstore_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "embstore/cold_store.h"
#include "embstore/tier_config.h"
#include "nn/dense_matrix.h"
#include "obs/metrics.h"

namespace recd::embstore {

class TieredRowStore {
 public:
  /// Builds the cold segments from `initial` and starts with an empty
  /// hot tier. `config.enabled` is ignored here (the caller decided by
  /// constructing a store). Throws like ColdStore on bad config.
  TieredRowStore(const nn::DenseMatrix& initial, TierConfig config);

  [[nodiscard]] std::size_t rows() const { return cold_.rows(); }
  [[nodiscard]] std::size_t dim() const { return cold_.dim(); }
  [[nodiscard]] const TierConfig& config() const { return config_; }

  /// Fetches row `row_ids[i]` into out[i*dim .. (i+1)*dim), bitwise
  /// whatever tier it lives in. `weights[i]` (empty = all 1) is added
  /// to the row's frequency counter — callers pass dedup
  /// multiplicities so repeated rows gain admission priority. Cold
  /// misses sharing a segment decompress it once per call.
  void Gather(std::span<const std::size_t> row_ids,
              std::span<const std::uint64_t> weights, float* out);

  /// Writes row `row_ids[i]` from src[i*dim ...) back into the store:
  /// hot rows update in place (dirty, written back on eviction), cold
  /// rows rewrite their segment — grouped by segment per call.
  void Update(std::span<const std::size_t> row_ids, const float* src);

  /// Full table, hot rows overlaid on cold — the checkpoint surface.
  /// Does not touch frequency counters or stats.
  [[nodiscard]] nn::DenseMatrix Materialize() const;

  /// Replaces every row (checkpoint restore): cold segments rebuilt,
  /// hot tier and frequency counters reset. Shape must match.
  void Load(const nn::DenseMatrix& w);

  /// Counter snapshot including resident_rows/capacity_rows. The
  /// counters live in this store's metrics() registry (§14 single
  /// source of truth); this view is assembled from those series.
  [[nodiscard]] TierStats stats() const;
  void ResetStats();

  /// The store's metric registry (`embstore.*` series) — merge its
  /// Snapshot() upward to roll per-store counters into a process view.
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  [[nodiscard]] std::size_t resident_rows() const;
  /// Compressed cold footprint plus hot-tier bytes (capacity model).
  [[nodiscard]] std::size_t cold_compressed_bytes() const;

 private:
  // All private helpers assume mutex_ is held.
  void Admit(std::size_t row, const float* data);
  void EvictLeastFrequent();
  void WriteRowToCold(std::size_t row, const float* data);
  void BumpFrequency(std::size_t row, std::uint64_t weight);

  mutable std::mutex mutex_;
  TierConfig config_;
  ColdStore cold_;

  // Hot tier: slot-addressed aligned row storage.
  common::AlignedVector<float> hot_data_;   // capacity * dim
  std::vector<std::size_t> slot_row_;       // slot -> row id
  std::vector<bool> slot_dirty_;
  std::vector<std::size_t> free_slots_;
  std::unordered_map<std::size_t, std::size_t> row_slot_;  // row -> slot

  // Frequency counters (all rows) and the LFU order of resident rows.
  std::vector<std::uint64_t> freq_;
  std::set<std::pair<std::uint64_t, std::size_t>> hot_by_freq_;

  // Tier counters: registry-backed (obs/metrics.h), handles cached so
  // the mutex-held hot path never takes the registry lock. TierStats
  // snapshots read these back.
  obs::Registry metrics_;
  obs::Counter& row_fetches_;
  obs::Counter& hot_hits_;
  obs::Counter& cold_fetches_;
  obs::Counter& admissions_;
  obs::Counter& evictions_;
  obs::Counter& writebacks_;
  obs::Counter& segments_read_;
  obs::Counter& bytes_from_cold_;
  obs::Counter& bytes_decompressed_;
  obs::Gauge& resident_rows_gauge_;
  obs::Gauge& capacity_rows_gauge_;
};

}  // namespace recd::embstore
