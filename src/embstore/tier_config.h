// Tiered embedding-row storage: configuration and counters
// (docs/ARCHITECTURE.md §13).
//
// RecD's premise — ids repeat heavily within and across sessions — means
// a small in-memory hot tier absorbs the vast majority of embedding
// lookups while the bulk of every table lives compressed in cold
// segments. TierConfig is the knob block callers thread through
// train::ModelConfig; TierStats is the counter block every tier-aware
// surface (trainer, serve, benches) reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "compress/codec.h"

namespace recd::embstore {

/// Knobs of one table's two-tier row store. Tiering never changes
/// results: rows are stored losslessly in both tiers, so forward,
/// backward, and SGD are bitwise identical for every capacity and
/// eviction schedule (the tier-placement determinism rule, §13).
struct TierConfig {
  /// Off by default: tables keep their dense in-memory weights and no
  /// tiered machinery is built.
  bool enabled = false;

  /// Hot-tier bound, in rows. 0 = no hot tier (every lookup decompresses
  /// from cold); >= table rows = effectively unbounded.
  std::size_t hot_capacity_rows = 4096;

  /// Rows per compressed cold segment (the decompress granularity).
  std::size_t rows_per_segment = 256;

  /// Codec for cold segments (compress::GetCodec).
  compress::CodecKind codec = compress::CodecKind::kLz77;

  /// Directory for file-backed cold segments. Empty = in-memory
  /// segments (still compressed and checksummed). Each store creates a
  /// unique subdirectory, so many tables may share one base dir.
  std::string cold_dir;
};

/// Counters of one tiered store (or the sum over many — benches and the
/// serve/trainer stats aggregate per-table stats with operator+=).
struct TierStats {
  std::uint64_t row_fetches = 0;   // rows requested from the store
  std::uint64_t hot_hits = 0;      // served from the hot tier
  std::uint64_t cold_fetches = 0;  // rows decompressed from cold
  std::uint64_t admissions = 0;    // rows promoted into the hot tier
  std::uint64_t evictions = 0;     // rows displaced from the hot tier
  std::uint64_t writebacks = 0;    // dirty rows recompressed into cold
  std::uint64_t segments_read = 0; // cold segments decompressed
  std::uint64_t bytes_from_cold = 0;    // compressed bytes read
  std::uint64_t bytes_decompressed = 0; // raw bytes produced from cold
  /// Snapshot fields (summed across tables when aggregated).
  std::uint64_t resident_rows = 0; // rows currently hot
  std::uint64_t capacity_rows = 0; // configured hot capacity

  /// Fraction of row fetches served hot; 0 when nothing was fetched.
  [[nodiscard]] double hit_rate() const {
    return row_fetches == 0
               ? 0.0
               : static_cast<double>(hot_hits) /
                     static_cast<double>(row_fetches);
  }

  TierStats& operator+=(const TierStats& o) {
    row_fetches += o.row_fetches;
    hot_hits += o.hot_hits;
    cold_fetches += o.cold_fetches;
    admissions += o.admissions;
    evictions += o.evictions;
    writebacks += o.writebacks;
    segments_read += o.segments_read;
    bytes_from_cold += o.bytes_from_cold;
    bytes_decompressed += o.bytes_decompressed;
    resident_rows += o.resident_rows;
    capacity_rows += o.capacity_rows;
    return *this;
  }
};

}  // namespace recd::embstore
