#include "embstore/cold_store.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>

#include "common/bytes.h"
#include "common/checksum_file.h"
#include "common/hash.h"

namespace recd::embstore {

namespace {

// Checksummed-envelope tag of a file-backed cold segment ("RCLD").
constexpr std::uint32_t kSegmentMagic = 0x52434c44u;
constexpr std::uint32_t kSegmentVersion = 1;

// Process-wide counter giving each store a unique subdirectory, so many
// tables can point at one base cold_dir without colliding.
std::atomic<std::uint64_t> g_store_counter{0};

[[nodiscard]] std::span<const std::byte> AsBytes(
    std::span<const float> data) {
  return {reinterpret_cast<const std::byte*>(data.data()),
          data.size() * sizeof(float)};
}

}  // namespace

ColdStore::ColdStore(const nn::DenseMatrix& initial,
                     std::size_t rows_per_segment,
                     compress::CodecKind codec, const std::string& dir)
    : rows_(initial.rows()),
      dim_(initial.cols()),
      rows_per_segment_(rows_per_segment),
      codec_(codec) {
  if (rows_per_segment_ == 0) {
    throw std::invalid_argument("ColdStore: rows_per_segment must be >= 1");
  }
  if (!dir.empty()) {
    const auto id = g_store_counter.fetch_add(1);
    dir_ = dir + "/embstore_" + std::to_string(id);
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
      throw ColdStoreError("ColdStore: cannot create segment dir " + dir_ +
                           ": " + ec.message());
    }
  }
  const std::size_t n =
      rows_ == 0 ? 0 : (rows_ + rows_per_segment_ - 1) / rows_per_segment_;
  segment_sizes_.assign(n, 0);
  if (dir_.empty()) mem_segments_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    const std::size_t first = SegmentFirstRow(s);
    StoreSegment(s, initial.data().subspan(first * dim_,
                                           SegmentRows(s) * dim_));
  }
}

std::size_t ColdStore::SegmentRows(std::size_t s) const {
  if (s >= num_segments()) {
    throw std::out_of_range("ColdStore: segment index out of range");
  }
  const std::size_t first = SegmentFirstRow(s);
  return std::min(rows_per_segment_, rows_ - first);
}

std::vector<std::byte> ColdStore::EncodePayload(
    std::size_t s, std::span<const float> data) const {
  const auto& codec = compress::GetCodec(codec_);
  auto compressed = codec.Compress(AsBytes(data));
  common::ByteWriter w;
  w.PutU64(rows_);
  w.PutU64(dim_);
  w.PutU64(SegmentFirstRow(s));
  w.PutU64(SegmentRows(s));
  w.PutU8(static_cast<std::uint8_t>(codec_));
  w.PutU64(data.size() * sizeof(float));
  w.PutVarint(compressed.size());
  w.PutBytes(compressed);
  return std::move(w).Take();
}

void ColdStore::StoreSegment(std::size_t s, std::span<const float> data) {
  if (data.size() != SegmentRows(s) * dim_) {
    throw std::invalid_argument("ColdStore: segment data size mismatch");
  }
  auto payload = EncodePayload(s, data);
  segment_sizes_[s] = payload.size();
  if (dir_.empty()) {
    mem_segments_[s].checksum = common::HashBytes(payload, kSegmentVersion);
    mem_segments_[s].payload = std::move(payload);
    return;
  }
  try {
    common::WriteChecksummedFile(SegmentPath(s), kSegmentMagic,
                                 kSegmentVersion, payload);
  } catch (const common::ChecksumError& e) {
    throw ColdStoreError(std::string("ColdStore: segment write failed: ") +
                         e.what());
  }
}

std::vector<float> ColdStore::ReadSegment(std::size_t s,
                                          ReadCounters* counters) const {
  const std::size_t seg_rows = SegmentRows(s);
  std::vector<std::byte> file_payload;
  std::span<const std::byte> payload;
  if (dir_.empty()) {
    const auto& seg = mem_segments_[s];
    if (common::HashBytes(seg.payload, kSegmentVersion) != seg.checksum) {
      throw ColdStoreError("ColdStore: in-memory segment checksum mismatch");
    }
    payload = seg.payload;
  } else {
    try {
      file_payload = common::ReadChecksummedFile(SegmentPath(s),
                                                 kSegmentMagic,
                                                 kSegmentVersion);
    } catch (const common::ChecksumError& e) {
      throw ColdStoreError(std::string("ColdStore: segment ") +
                           SegmentPath(s) + " rejected: " + e.what());
    }
    payload = file_payload;
  }

  try {
    common::ByteReader r(payload);
    if (r.GetU64() != rows_ || r.GetU64() != dim_ ||
        r.GetU64() != SegmentFirstRow(s) || r.GetU64() != seg_rows ||
        r.GetU8() != static_cast<std::uint8_t>(codec_)) {
      throw ColdStoreError("ColdStore: segment header mismatch");
    }
    const std::uint64_t raw_size = r.GetU64();
    if (raw_size != seg_rows * dim_ * sizeof(float)) {
      throw ColdStoreError("ColdStore: segment raw size mismatch");
    }
    const std::size_t compressed_size =
        static_cast<std::size_t>(r.GetVarint());
    const auto compressed = r.GetBytes(compressed_size);
    const auto& codec = compress::GetCodec(codec_);
    const auto raw = codec.Decompress(compressed);
    if (raw.size() != raw_size) {
      throw ColdStoreError("ColdStore: decompressed size mismatch");
    }
    if (counters != nullptr) {
      counters->segments += 1;
      counters->compressed_bytes += payload.size();
      counters->raw_bytes += raw.size();
    }
    std::vector<float> out(seg_rows * dim_);
    std::memcpy(out.data(), raw.data(), raw.size());
    return out;
  } catch (const ColdStoreError&) {
    throw;
  } catch (const std::exception& e) {
    // ByteStreamError, codec errors: surface as the typed cold error.
    throw ColdStoreError(std::string("ColdStore: segment decode failed: ") +
                         e.what());
  }
}

void ColdStore::WriteSegment(std::size_t s, std::span<const float> data) {
  StoreSegment(s, data);
}

void ColdStore::Load(const nn::DenseMatrix& w) {
  if (w.rows() != rows_ || w.cols() != dim_) {
    throw std::invalid_argument("ColdStore::Load: shape mismatch");
  }
  for (std::size_t s = 0; s < num_segments(); ++s) {
    StoreSegment(s, w.data().subspan(SegmentFirstRow(s) * dim_,
                                     SegmentRows(s) * dim_));
  }
}

nn::DenseMatrix ColdStore::Materialize() const {
  nn::DenseMatrix out(rows_, dim_);
  for (std::size_t s = 0; s < num_segments(); ++s) {
    const auto data = ReadSegment(s, nullptr);
    std::copy(data.begin(), data.end(),
              out.data().begin() +
                  static_cast<std::ptrdiff_t>(SegmentFirstRow(s) * dim_));
  }
  return out;
}

std::size_t ColdStore::compressed_bytes() const {
  std::size_t total = 0;
  for (const auto s : segment_sizes_) total += s;
  return total;
}

std::string ColdStore::SegmentPath(std::size_t s) const {
  if (dir_.empty()) return {};
  return dir_ + "/seg_" + std::to_string(s) + ".cold";
}

}  // namespace recd::embstore
