// ETL: join raw logs into labeled samples and order them for dedup.
//
// Paper §2.1/§4.1: streaming engines join feature logs with event logs to
// produce labeled samples landed into hourly Hive partitions. RecD adds
// the O2 clustering job — CLUSTER BY session_id SORT BY timestamp — so a
// session's samples sit adjacently, which is what lets stripes compress
// and batches deduplicate. §7 additionally proposes *per-session*
// downsampling, which (unlike per-sample) preserves S.
#pragma once

#include <cstdint>
#include <vector>

#include "datagen/sample.h"

namespace recd::common {
class ThreadPool;
}  // namespace recd::common

namespace recd::etl {

/// Joins one matched feature/event pair into a labeled sample — the
/// single definition of how Sample fields derive from the two logs,
/// shared by the batch JoinLogs and the streaming stream::WindowedEtl
/// (so both joins produce identical samples by construction).
[[nodiscard]] datagen::Sample JoinPair(const datagen::FeatureLog& feature,
                                       const datagen::EventLog& event);

/// Hash-joins feature logs and event logs on request_id, producing one
/// labeled sample per matched pair, ordered by feature-log time (the
/// production default: inference order, sessions interleaved). Unmatched
/// logs are dropped (late/lost events happen in production too).
[[nodiscard]] std::vector<datagen::Sample> JoinLogs(
    const std::vector<datagen::FeatureLog>& features,
    const std::vector<datagen::EventLog>& events);

/// O2: clusters samples by session id, ordering each session's samples by
/// timestamp. Stable so equal keys keep their relative order. With
/// `pool`, runs as a parallel merge sort (sorted chunks + stable merges)
/// that produces exactly the sequential stable-sort order.
void ClusterBySession(std::vector<datagen::Sample>& samples,
                      common::ThreadPool* pool = nullptr);

/// §7 "Boosting Dedupe Factors": how the dataset is thinned.
enum class DownsampleMode {
  kNone,
  kPerSample,   // baseline: coin flip per sample (reduces S)
  kPerSession,  // RecD proposal: coin flip per session (preserves S)
};

/// Keeps roughly `keep_rate` of samples under the given policy. The
/// per-key coin flips are pure functions of (seed, key), so the
/// pool-parallel path (chunked filter + in-order concatenation) keeps
/// exactly the same samples in the same order as the sequential one.
[[nodiscard]] std::vector<datagen::Sample> Downsample(
    const std::vector<datagen::Sample>& samples, DownsampleMode mode,
    double keep_rate, std::uint64_t seed,
    common::ThreadPool* pool = nullptr);

/// Splits a sample stream into fixed-size "hourly" partitions in arrival
/// order (the time-partitioned Hive landing from Fig 1).
[[nodiscard]] std::vector<std::vector<datagen::Sample>> PartitionByCount(
    std::vector<datagen::Sample> samples, std::size_t samples_per_partition);

/// Mean samples-per-session of a sample stream (the paper's S).
[[nodiscard]] double MeanSamplesPerSession(
    const std::vector<datagen::Sample>& samples);

}  // namespace recd::etl
