#include "etl/etl.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/thread_pool.h"

namespace recd::etl {

datagen::Sample JoinPair(const datagen::FeatureLog& feature,
                         const datagen::EventLog& event) {
  datagen::Sample s;
  s.request_id = feature.request_id;
  s.session_id = feature.session_id;
  s.timestamp = feature.timestamp;
  s.label = event.label;
  s.dense = feature.dense;
  s.sparse = feature.sparse;
  return s;
}

std::vector<datagen::Sample> JoinLogs(
    const std::vector<datagen::FeatureLog>& features,
    const std::vector<datagen::EventLog>& events) {
  std::unordered_map<std::int64_t, const datagen::EventLog*> by_request;
  by_request.reserve(events.size());
  for (const auto& e : events) by_request.emplace(e.request_id, &e);

  std::vector<datagen::Sample> out;
  out.reserve(features.size());
  for (const auto& f : features) {
    const auto it = by_request.find(f.request_id);
    if (it == by_request.end()) continue;
    out.push_back(JoinPair(f, *it->second));
  }
  return out;
}

namespace {

bool SessionOrder(const datagen::Sample& a, const datagen::Sample& b) {
  if (a.session_id != b.session_id) {
    return a.session_id < b.session_id;
  }
  return a.timestamp < b.timestamp;
}

/// Chunk bounds that split [0, n) into `chunks` near-equal ranges.
std::vector<std::size_t> ChunkBounds(std::size_t n, std::size_t chunks) {
  std::vector<std::size_t> bounds;
  bounds.reserve(chunks + 1);
  for (std::size_t c = 0; c <= chunks; ++c) {
    bounds.push_back(n * c / chunks);
  }
  return bounds;
}

}  // namespace

void ClusterBySession(std::vector<datagen::Sample>& samples,
                      common::ThreadPool* pool) {
  constexpr std::size_t kParallelCutoff = 4096;
  if (pool == nullptr || pool->size() < 2 ||
      samples.size() < kParallelCutoff) {
    std::stable_sort(samples.begin(), samples.end(), SessionOrder);
    return;
  }
  // Parallel merge sort: stable-sort near-equal chunks concurrently,
  // then stable-merge adjacent runs. std::inplace_merge takes from the
  // left run on ties and chunks are in original order, so the result is
  // exactly the sequential stable_sort order.
  const std::size_t chunks = pool->size();
  const auto bounds = ChunkBounds(samples.size(), chunks);
  pool->ParallelFor(0, chunks, [&](std::size_t c) {
    std::stable_sort(
        samples.begin() + static_cast<std::ptrdiff_t>(bounds[c]),
        samples.begin() + static_cast<std::ptrdiff_t>(bounds[c + 1]),
        SessionOrder);
  });
  for (std::size_t width = 1; width < chunks; width *= 2) {
    const std::size_t pairs = chunks / (2 * width) + 1;
    pool->ParallelFor(0, pairs, [&](std::size_t p) {
      const std::size_t lo = 2 * width * p;
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(chunks, lo + 2 * width);
      if (mid >= hi) return;
      std::inplace_merge(
          samples.begin() + static_cast<std::ptrdiff_t>(bounds[lo]),
          samples.begin() + static_cast<std::ptrdiff_t>(bounds[mid]),
          samples.begin() + static_cast<std::ptrdiff_t>(bounds[hi]),
          SessionOrder);
    });
  }
}

std::vector<datagen::Sample> Downsample(
    const std::vector<datagen::Sample>& samples, DownsampleMode mode,
    double keep_rate, std::uint64_t seed, common::ThreadPool* pool) {
  if (keep_rate < 0.0 || keep_rate > 1.0) {
    throw std::invalid_argument("Downsample: keep_rate must be in [0,1]");
  }
  if (mode == DownsampleMode::kNone) return samples;
  // Deterministic coin flips derived from (seed, key) so the decision for
  // a session is consistent no matter where its samples appear.
  const auto keep = [&](std::int64_t key) {
    const std::uint64_t h =
        common::Mix64(seed ^ static_cast<std::uint64_t>(key));
    return static_cast<double>(h % (1ULL << 53)) /
               static_cast<double>(1ULL << 53) <
           keep_rate;
  };
  const auto key_of = [&](const datagen::Sample& s) {
    return mode == DownsampleMode::kPerSample ? s.request_id : s.session_id;
  };

  constexpr std::size_t kParallelCutoff = 4096;
  if (pool != nullptr && pool->size() >= 2 &&
      samples.size() >= kParallelCutoff) {
    // Filter chunks concurrently, concatenate in chunk order: same
    // survivors, same order as the sequential loop.
    const std::size_t chunks = pool->size();
    const auto bounds = ChunkBounds(samples.size(), chunks);
    std::vector<std::vector<datagen::Sample>> parts(chunks);
    pool->ParallelFor(0, chunks, [&](std::size_t c) {
      auto& part = parts[c];
      part.reserve(bounds[c + 1] - bounds[c]);
      for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
        if (keep(key_of(samples[i]))) part.push_back(samples[i]);
      }
    });
    std::size_t total = 0;
    for (const auto& part : parts) total += part.size();
    std::vector<datagen::Sample> out;
    out.reserve(total);
    for (auto& part : parts) {
      for (auto& s : part) out.push_back(std::move(s));
    }
    return out;
  }

  std::vector<datagen::Sample> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    if (keep(key_of(s))) out.push_back(s);
  }
  return out;
}

std::vector<std::vector<datagen::Sample>> PartitionByCount(
    std::vector<datagen::Sample> samples,
    std::size_t samples_per_partition) {
  if (samples_per_partition == 0) {
    throw std::invalid_argument(
        "PartitionByCount: partition size must be positive");
  }
  std::vector<std::vector<datagen::Sample>> out;
  std::vector<datagen::Sample> current;
  current.reserve(samples_per_partition);
  for (auto& s : samples) {
    current.push_back(std::move(s));
    if (current.size() == samples_per_partition) {
      out.push_back(std::move(current));
      current = {};
      current.reserve(samples_per_partition);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

double MeanSamplesPerSession(const std::vector<datagen::Sample>& samples) {
  if (samples.empty()) return 0.0;
  std::unordered_set<std::int64_t> sessions;
  sessions.reserve(samples.size());
  for (const auto& s : samples) sessions.insert(s.session_id);
  return static_cast<double>(samples.size()) /
         static_cast<double>(sessions.size());
}

}  // namespace recd::etl
