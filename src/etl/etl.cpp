#include "etl/etl.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace recd::etl {

std::vector<datagen::Sample> JoinLogs(
    const std::vector<datagen::FeatureLog>& features,
    const std::vector<datagen::EventLog>& events) {
  std::unordered_map<std::int64_t, const datagen::EventLog*> by_request;
  by_request.reserve(events.size());
  for (const auto& e : events) by_request.emplace(e.request_id, &e);

  std::vector<datagen::Sample> out;
  out.reserve(features.size());
  for (const auto& f : features) {
    const auto it = by_request.find(f.request_id);
    if (it == by_request.end()) continue;
    datagen::Sample s;
    s.request_id = f.request_id;
    s.session_id = f.session_id;
    s.timestamp = f.timestamp;
    s.label = it->second->label;
    s.dense = f.dense;
    s.sparse = f.sparse;
    out.push_back(std::move(s));
  }
  return out;
}

void ClusterBySession(std::vector<datagen::Sample>& samples) {
  std::stable_sort(samples.begin(), samples.end(),
                   [](const datagen::Sample& a, const datagen::Sample& b) {
                     if (a.session_id != b.session_id) {
                       return a.session_id < b.session_id;
                     }
                     return a.timestamp < b.timestamp;
                   });
}

std::vector<datagen::Sample> Downsample(
    const std::vector<datagen::Sample>& samples, DownsampleMode mode,
    double keep_rate, std::uint64_t seed) {
  if (keep_rate < 0.0 || keep_rate > 1.0) {
    throw std::invalid_argument("Downsample: keep_rate must be in [0,1]");
  }
  if (mode == DownsampleMode::kNone) return samples;
  // Deterministic coin flips derived from (seed, key) so the decision for
  // a session is consistent no matter where its samples appear.
  const auto keep = [&](std::int64_t key) {
    const std::uint64_t h =
        common::Mix64(seed ^ static_cast<std::uint64_t>(key));
    return static_cast<double>(h % (1ULL << 53)) /
               static_cast<double>(1ULL << 53) <
           keep_rate;
  };
  std::vector<datagen::Sample> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    const std::int64_t key =
        mode == DownsampleMode::kPerSample ? s.request_id : s.session_id;
    if (keep(key)) out.push_back(s);
  }
  return out;
}

std::vector<std::vector<datagen::Sample>> PartitionByCount(
    std::vector<datagen::Sample> samples,
    std::size_t samples_per_partition) {
  if (samples_per_partition == 0) {
    throw std::invalid_argument(
        "PartitionByCount: partition size must be positive");
  }
  std::vector<std::vector<datagen::Sample>> out;
  std::vector<datagen::Sample> current;
  current.reserve(samples_per_partition);
  for (auto& s : samples) {
    current.push_back(std::move(s));
    if (current.size() == samples_per_partition) {
      out.push_back(std::move(current));
      current = {};
      current.reserve(samples_per_partition);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

double MeanSamplesPerSession(const std::vector<datagen::Sample>& samples) {
  if (samples.empty()) return 0.0;
  std::unordered_set<std::int64_t> sessions;
  sessions.reserve(samples.size());
  for (const auto& s : samples) sessions.insert(s.session_id);
  return static_cast<double>(samples.size()) /
         static_cast<double>(sessions.size());
}

}  // namespace recd::etl
