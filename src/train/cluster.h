// Training-cluster hardware description (paper §6.1's ZionEX testbed).
//
// The simulator converts exact operation/byte counters into time through
// these rates. Absolute numbers differ from A100 silicon — the paper's
// shapes (ratios, crossovers) are the reproduction target (docs/ARCHITECTURE.md §1).
#pragma once

#include <cstddef>

namespace recd::train {

struct GpuSpec {
  double flops = 50e12;        // sustained mixed-precision FLOP/s
  double mem_bw = 1.3e12;      // HBM bytes/s
  double hbm_bytes = 40e9;     // device memory
  double nvlink_bw = 250e9;    // intra-node per-GPU bytes/s
  double roce_bw = 15e9;       // inter-node per-GPU bytes/s (effective)
};

struct ClusterSpec {
  std::size_t num_gpus = 8;
  std::size_t gpus_per_node = 8;
  GpuSpec gpu;
  double collective_latency_s = 10e-6;  // per-collective fixed cost
  /// Per-iteration fixed overhead (kernel launches, optimizer, host sync).
  double fixed_overhead_s = 50e-6;
  /// Fraction of compute time that can hide collective time (pipelined
  /// SDD/a2a overlap in the training loop).
  double comm_overlap = 0.3;

  [[nodiscard]] bool single_node() const {
    return num_gpus <= gpus_per_node;
  }
  /// Per-GPU bandwidth available to collectives: NVLink when the job fits
  /// one node, the RoCE backend NIC otherwise.
  [[nodiscard]] double collective_bw() const {
    return single_node() ? gpu.nvlink_bw : gpu.roce_bw;
  }
};

/// ZionEX-like presets (8 GPUs per node). `work_scale` divides every
/// rate and fixed cost: benchmark workloads run at 1/8 the paper's batch
/// sizes and ~1/4 its sequence lengths, so scaling the hardware down by
/// the same ~32x keeps the *fractional* iteration breakdown (Fig 8)
/// comparable — the simulator reproduces shapes, not absolute seconds
/// (docs/ARCHITECTURE.md §1).
[[nodiscard]] inline ClusterSpec ZionEx(std::size_t num_gpus,
                                        double work_scale = 1.0) {
  ClusterSpec spec;
  spec.num_gpus = num_gpus;
  spec.gpus_per_node = 8;
  spec.gpu.flops /= work_scale;
  spec.gpu.mem_bw /= work_scale;
  spec.gpu.nvlink_bw /= work_scale;
  spec.gpu.roce_bw /= work_scale;
  spec.gpu.hbm_bytes /= work_scale;
  spec.collective_latency_s /= work_scale;
  spec.fixed_overhead_s /= work_scale;
  return spec;
}

}  // namespace recd::train
