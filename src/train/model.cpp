#include "train/model.h"

#include <algorithm>
#include <stdexcept>

namespace recd::train {

std::size_t ModelConfig::num_tables() const {
  std::size_t n = elementwise_features.size() + plain_features.size();
  for (const auto& g : sequence_groups) n += g.features.size();
  return n;
}

std::size_t ModelConfig::num_interaction_inputs() const {
  return 1 + elementwise_features.size() + plain_features.size() +
         sequence_groups.size();
}

std::vector<std::size_t> ModelConfig::BottomMlpDims() const {
  std::vector<std::size_t> dims;
  dims.push_back(dense_dim);
  dims.insert(dims.end(), bottom_mlp_hidden.begin(),
              bottom_mlp_hidden.end());
  dims.push_back(emb_dim);
  return dims;
}

std::vector<std::size_t> ModelConfig::TopMlpDims() const {
  const std::size_t f = num_interaction_inputs();
  std::vector<std::size_t> dims;
  dims.push_back(emb_dim + f * (f - 1) / 2);
  dims.insert(dims.end(), top_mlp_hidden.begin(), top_mlp_hidden.end());
  dims.push_back(1);
  return dims;
}

std::vector<std::string> ModelTableOrder(const ModelConfig& model) {
  std::vector<std::string> order;
  order.reserve(model.num_tables());
  for (const auto& g : model.sequence_groups) {
    order.insert(order.end(), g.features.begin(), g.features.end());
  }
  order.insert(order.end(), model.elementwise_features.begin(),
               model.elementwise_features.end());
  order.insert(order.end(), model.plain_features.begin(),
               model.plain_features.end());
  return order;
}

std::vector<PlacementUnit> ModelPlacementUnits(const ModelConfig& model) {
  std::vector<PlacementUnit> units;
  units.reserve(model.num_interaction_inputs() - 1);
  std::size_t next_table = 0;
  for (const auto& g : model.sequence_groups) {
    PlacementUnit u;
    u.kind = PlacementUnit::Kind::kSequenceGroup;
    u.features = g.features;
    for (std::size_t k = 0; k < g.features.size(); ++k) {
      u.table_ids.push_back(next_table++);
    }
    units.push_back(std::move(u));
  }
  for (const auto& f : model.elementwise_features) {
    PlacementUnit u;
    u.kind = PlacementUnit::Kind::kElementwise;
    u.features = {f};
    u.table_ids = {next_table++};
    units.push_back(std::move(u));
  }
  for (const auto& f : model.plain_features) {
    PlacementUnit u;
    u.kind = PlacementUnit::Kind::kPlain;
    u.features = {f};
    u.table_ids = {next_table++};
    units.push_back(std::move(u));
  }
  return units;
}

ModelConfig RmModel(datagen::RmKind kind,
                    const datagen::DatasetSpec& dataset) {
  ModelConfig model;
  model.dense_dim = dataset.num_dense;
  switch (kind) {
    case datagen::RmKind::kRm1:
      model.name = "RM1";
      model.emb_dim = 128;
      model.emb_hash_size = 400'000;  // O(10GB) class, scaled
      break;
    case datagen::RmKind::kRm2:
      model.name = "RM2";
      model.emb_dim = 192;
      model.emb_hash_size = 800'000;  // O(100GB) class, scaled
      model.bottom_mlp_hidden = {512, 256};
      model.top_mlp_hidden = {2048, 1024};
      break;
    case datagen::RmKind::kRm3:
      model.name = "RM3";
      model.emb_dim = 160;
      model.emb_hash_size = 800'000;
      model.bottom_mlp_hidden = {512};
      model.top_mlp_hidden = {1024, 512};
      break;
  }
  for (const auto& group : datagen::RmDedupGroups(kind, dataset)) {
    SequenceGroup g;
    g.features = group;
    // RM1 pools sequence groups with transformers (paper §6.2); RM2/RM3
    // use cheaper sequence pooling.
    g.attention = kind == datagen::RmKind::kRm1;
    model.sequence_groups.push_back(std::move(g));
  }
  model.elementwise_features =
      datagen::RmElementwiseDedupFeatures(kind, dataset);
  for (const auto& f : dataset.sparse) {
    bool used = f.sync_group >= 0;
    for (const auto& name : model.elementwise_features) {
      if (name == f.name) used = true;
    }
    if (!used) model.plain_features.push_back(f.name);
  }
  return model;
}

ModelConfig RmServeVariant(datagen::RmKind kind,
                           const datagen::DatasetSpec& dataset) {
  ModelConfig model;
  model.dense_dim = dataset.num_dense;
  // Sequence groups from the dataset's own sync groups (not the kind's
  // canonical count): every variant consumes the identical feature set,
  // so one request trace feeds the whole zoo.
  int max_group = -1;
  for (const auto& f : dataset.sparse) {
    max_group = std::max(max_group, f.sync_group);
  }
  for (int g = 0; g <= max_group; ++g) {
    SequenceGroup group;
    for (const auto& f : dataset.sparse) {
      if (f.sync_group == g) group.features.push_back(f.name);
    }
    if (group.features.empty()) continue;
    group.attention = kind == datagen::RmKind::kRm1;
    model.sequence_groups.push_back(std::move(group));
  }
  model.elementwise_features =
      datagen::RmElementwiseDedupFeatures(kind, dataset);
  for (const auto& f : dataset.sparse) {
    bool used = f.sync_group >= 0;
    for (const auto& name : model.elementwise_features) {
      if (name == f.name) used = true;
    }
    if (!used) model.plain_features.push_back(f.name);
  }
  switch (kind) {
    case datagen::RmKind::kRm1:
      model.name = "RM1-variant";
      model.emb_dim = 128;
      model.emb_hash_size = 400'000;
      model.bottom_mlp_hidden = {128};
      model.top_mlp_hidden = {256, 128};
      break;
    case datagen::RmKind::kRm2:
      model.name = "RM2-variant";
      model.emb_dim = 64;
      model.emb_hash_size = 200'000;
      model.bottom_mlp_hidden = {512, 256};
      model.top_mlp_hidden = {2048, 1024};
      break;
    case datagen::RmKind::kRm3:
      model.name = "RM3-variant";
      model.emb_dim = 96;
      model.emb_hash_size = 200'000;
      model.bottom_mlp_hidden = {256};
      model.top_mlp_hidden = {512, 256};
      break;
  }
  return model;
}

reader::DataLoaderConfig MakeDataLoaderConfig(const ModelConfig& model,
                                              std::size_t batch_size,
                                              bool recd_enabled) {
  reader::DataLoaderConfig config;
  config.batch_size = batch_size;
  config.dense = true;
  config.sparse_features = model.plain_features;
  if (recd_enabled) {
    for (const auto& g : model.sequence_groups) {
      config.dedup_sparse_features.push_back(g.features);
    }
    for (const auto& f : model.elementwise_features) {
      config.dedup_sparse_features.push_back({f});
    }
  } else {
    for (const auto& g : model.sequence_groups) {
      for (const auto& f : g.features) {
        config.sparse_features.push_back(f);
      }
    }
    for (const auto& f : model.elementwise_features) {
      config.sparse_features.push_back(f);
    }
  }
  return config;
}

}  // namespace recd::train
