#include "train/collectives.h"

#include <algorithm>

namespace recd::train {

double AllToAllSeconds(const ClusterSpec& cluster, double total_bytes) {
  const double n = static_cast<double>(cluster.num_gpus);
  if (n <= 1.0 || total_bytes <= 0.0) return 0.0;
  // Each GPU sends its share of the payload minus the fraction destined
  // to itself; the slowest NIC bounds the step.
  const double per_gpu_bytes = total_bytes / n * (n - 1.0) / n;
  return cluster.collective_latency_s +
         per_gpu_bytes / cluster.collective_bw();
}

double AllReduceSeconds(const ClusterSpec& cluster, double bytes) {
  const double n = static_cast<double>(cluster.num_gpus);
  if (n <= 1.0 || bytes <= 0.0) return 0.0;
  if (cluster.single_node()) {
    // Ring over NVLink: 2*(n-1)/n of the payload per link.
    const double per_gpu_bytes = 2.0 * (n - 1.0) / n * bytes;
    return 2.0 * cluster.collective_latency_s +
           per_gpu_bytes / cluster.gpu.nvlink_bw;
  }
  // Hierarchical: intra-node ring over NVLink, then the node-reduced
  // buffer is sharded across the node's NICs for the inter-node ring.
  const double g = static_cast<double>(cluster.gpus_per_node);
  const double nodes = n / g;
  const double intra_bytes = 2.0 * (g - 1.0) / g * bytes;
  const double inter_bytes =
      2.0 * (nodes - 1.0) / nodes * bytes / g;
  return 3.0 * cluster.collective_latency_s +
         intra_bytes / cluster.gpu.nvlink_bw +
         inter_bytes / cluster.gpu.roce_bw;
}

}  // namespace recd::train
