// CollectiveGroup: real executed in-memory collectives for N ranks
// running as threads — the communication layer of the executed
// hybrid-parallel trainer (docs/ARCHITECTURE.md §10). Complements the
// alpha-beta *cost models* in train/collectives.h: those predict time,
// this one actually moves the bytes.
//
// Transport is one bounded common::Channel per (src, dst) pair plus a
// common::Barrier between the send and receive halves of every
// exchange, so receives never block on an unsent message and
// consecutive exchange rounds cannot interleave (FIFO order per pair
// handles a rank racing one round ahead; channel capacity covers the
// at-most-two messages then in flight per pair).
//
// Determinism contract: AllToAll returns peer payloads indexed by
// source rank, and AllReduceSum reduces labeled chunk partials in
// ascending chunk order starting from zeros — the same float-op
// sequence on every rank, for every rank count, regardless of thread
// timing. No atomics anywhere on an accumulation path; per-rank byte
// counters are written only by their own rank's thread (read them
// after the ranks have joined).
//
// Failure model: a configurable peer deadline (CollectiveOptions::
// peer_timeout) bounds every blocking wait inside a collective. A rank
// whose peer dies mid-exchange — killed by the fault injector, OOM'd,
// or simply never started — used to block in the barrier or a Channel
// pop forever; with a deadline it aborts the group and throws
// RankFailure instead, so the failure surfaces to whoever supervises
// the ranks (train::FaultTolerantRunner rolls back to the last
// checkpoint). An optional train::FaultInjector hook fires at the
// start of every tagged exchange, making kill/straggler scenarios
// scriptable in tests.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/barrier.h"
#include "common/channel.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "train/fault.h"

namespace recd::train {

/// Span name of a tagged exchange ("exchange/sdd", ...), a static
/// literal as the tracer requires.
[[nodiscard]] const char* ExchangeSpanName(Exchange exchange);

struct CollectiveOptions {
  /// Upper bound on any single wait for a peer inside a collective;
  /// zero means wait forever (the pre-fault-tolerance behavior). On
  /// expiry the whole group is aborted and the waiter throws
  /// RankFailure — a dead peer must never silently hang its survivors.
  std::chrono::milliseconds peer_timeout{0};
  /// Optional fault hook, fired at the start of every tagged exchange
  /// on every rank. Not owned; must outlive the group.
  FaultInjector* injector = nullptr;
};

class CollectiveGroup {
 public:
  explicit CollectiveGroup(std::size_t num_ranks,
                           CollectiveOptions options = {});

  [[nodiscard]] std::size_t num_ranks() const { return num_ranks_; }
  [[nodiscard]] const CollectiveOptions& options() const { return options_; }

  /// Blocks until every rank has arrived (reusable).
  void Barrier() { barrier_.Arrive(); }

  /// Poisons the group after a rank has failed mid-exchange: aborts
  /// the barrier and closes every mailbox, so peers blocked anywhere
  /// in a collective throw instead of waiting forever. Irreversible,
  /// idempotent.
  void Abort() {
    barrier_.Abort();
    for (auto& mail : mail_) mail->Close();
  }

  /// All-to-all: `send[p]` is this rank's payload for peer p (self
  /// included); the result's entry p is what peer p sent to this rank.
  /// Off-rank payload bytes are added to this rank's sent counter.
  /// `tag` names the trainer exchange this call implements — the fault
  /// injector's match key; kNone for untagged collectives. Throws
  /// RankFailure when a peer misses the configured deadline (the group
  /// is aborted first so every survivor unwinds).
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> AllToAll(
      std::size_t rank, std::vector<std::vector<T>> send,
      Exchange tag = Exchange::kNone) {
    if (send.size() != num_ranks_) {
      throw std::invalid_argument("CollectiveGroup::AllToAll: need one "
                                  "payload per rank");
    }
    // One span per exchange per rank per call (the Fig 7-10 style
    // breakdown surface); zero-cost when tracing is off.
    obs::Tracer::Scope span(ExchangeSpanName(tag), "rank",
                            static_cast<std::int64_t>(rank));
    ExchangeTimer timer(*this, rank, tag);
    // The injection point: peers may already be mid-exchange, so a
    // kill here strands them exactly like a real rank death would.
    if (options_.injector != nullptr) {
      options_.injector->MaybeInject(rank, tag);
    }
    for (std::size_t p = 0; p < num_ranks_; ++p) {
      if (p != rank) {
        ByteCounter(rank, tag).Add(
            static_cast<std::int64_t>(send[p].size() * sizeof(T)));
      }
      // Byte payloads move straight through; other element types get
      // one serialization copy.
      bool pushed = false;
      if constexpr (std::is_same_v<T, std::byte>) {
        pushed = Mailbox(rank, p).Push(std::move(send[p]));
      } else {
        pushed = Mailbox(rank, p).Push(ToBytes<T>(send[p]));
      }
      if (!pushed) {
        throw std::runtime_error("CollectiveGroup::AllToAll: closed");
      }
    }
    TimedArrive(rank, tag);  // all sends posted before any receive
    std::vector<std::vector<T>> recv(num_ranks_);
    for (std::size_t p = 0; p < num_ranks_; ++p) {
      auto msg = TimedPop(Mailbox(p, rank), rank, tag);
      if (!msg.has_value()) {
        throw std::runtime_error("CollectiveGroup::AllToAll: closed");
      }
      if constexpr (std::is_same_v<T, std::byte>) {
        recv[p] = std::move(*msg);
      } else {
        recv[p] = FromBytes<T>(*msg);
      }
    }
    return recv;
  }

  /// Order-deterministic sum all-reduce over labeled chunk partials.
  /// Each rank contributes its chunks as (global chunk id, values) with
  /// every values vector of length `width`; chunk ids must be globally
  /// unique. Every rank returns the identical elementwise sum,
  /// accumulated from zeros in ascending chunk-id order — bitwise
  /// independent of which rank held which chunk. Implemented as an
  /// all-gather (payload counted per rank) plus a local fixed-order
  /// reduce.
  template <typename T>
  [[nodiscard]] std::vector<T> AllReduceSum(
      std::size_t rank,
      const std::vector<std::pair<std::size_t, std::vector<T>>>& chunks,
      std::size_t width, Exchange tag = Exchange::kNone) {
    // Frame: per chunk, [id, count] header then the data.
    std::vector<std::byte> frame;
    for (const auto& [id, data] : chunks) {
      if (data.size() != width) {
        throw std::invalid_argument(
            "CollectiveGroup::AllReduceSum: chunk width mismatch");
      }
      AppendScalar(frame, static_cast<std::uint64_t>(id));
      AppendScalar(frame, static_cast<std::uint64_t>(data.size()));
      const auto* raw = reinterpret_cast<const std::byte*>(data.data());
      frame.insert(frame.end(), raw, raw + data.size() * sizeof(T));
    }
    std::vector<std::vector<std::byte>> send(num_ranks_);
    for (std::size_t p = 0; p + 1 < num_ranks_; ++p) send[p] = frame;
    send[num_ranks_ - 1] = std::move(frame);
    auto gathered = AllToAll<std::byte>(rank, std::move(send), tag);

    std::vector<std::pair<std::size_t, std::vector<T>>> all;
    for (const auto& buf : gathered) {
      std::size_t pos = 0;
      while (pos < buf.size()) {
        const auto id = ReadScalar(buf, pos);
        const auto count = ReadScalar(buf, pos);
        // Overflow-safe bounds check before sizing anything by a
        // frame-decoded count.
        if (count > (buf.size() - pos) / sizeof(T)) {
          throw std::runtime_error(
              "CollectiveGroup::AllReduceSum: truncated frame");
        }
        std::vector<T> data(count);
        std::memcpy(data.data(), buf.data() + pos, count * sizeof(T));
        pos += count * sizeof(T);
        all.emplace_back(static_cast<std::size_t>(id), std::move(data));
      }
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 1; i < all.size(); ++i) {
      if (all[i].first == all[i - 1].first) {
        throw std::invalid_argument(
            "CollectiveGroup::AllReduceSum: duplicate chunk id");
      }
    }
    std::vector<T> acc(width, T{});
    for (const auto& [id, data] : all) {
      for (std::size_t i = 0; i < width; ++i) acc[i] += data[i];
    }
    return acc;
  }

  /// Bytes this rank has sent to peers (self-sends excluded), summed
  /// over all exchange tags. Backed by the metrics() registry — the
  /// counters are relaxed atomics, so totals are exact once the rank
  /// threads have joined (the contract the plain slots already had).
  [[nodiscard]] std::size_t bytes_sent(std::size_t rank) const;
  /// Bytes rank `rank` sent under one exchange tag.
  [[nodiscard]] std::size_t exchange_bytes(std::size_t rank,
                                           Exchange tag) const;
  /// Microseconds rank `rank` spent *waiting* for peers (barrier +
  /// mailbox pops) under one tag, vs `exchange_us`, the tag's whole
  /// exchange time — the wait-vs-transfer split of ROADMAP item 5's
  /// maskable-cost analysis. Recorded only while obs::Enabled().
  [[nodiscard]] std::int64_t exchange_wait_us(std::size_t rank,
                                              Exchange tag) const;
  [[nodiscard]] std::int64_t exchange_us(std::size_t rank,
                                         Exchange tag) const;
  void ResetBytes();

  /// The group's metric registry: `comm.bytes_sent`, `comm.wait_us`,
  /// and `comm.exchange_us` series labeled {rank, exchange}.
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

 private:
  using Mail = common::Channel<std::vector<std::byte>>;
  static constexpr std::size_t kNumTags = 5;  // kNone..kAllReduce

  [[nodiscard]] Mail& Mailbox(std::size_t src, std::size_t dst) {
    return *mail_[src * num_ranks_ + dst];
  }

  [[nodiscard]] static std::size_t TagIndex(Exchange tag) {
    return static_cast<std::size_t>(tag);
  }
  [[nodiscard]] obs::Counter& ByteCounter(std::size_t rank, Exchange tag) {
    return *bytes_sent_[rank * kNumTags + TagIndex(tag)];
  }

  /// Accumulates a tag's whole-exchange time while obs::Enabled() —
  /// wait time is recorded separately inside TimedArrive/TimedPop, so
  /// transfer time falls out as the difference.
  class ExchangeTimer {
   public:
    ExchangeTimer(CollectiveGroup& group, std::size_t rank, Exchange tag)
        : group_(group), rank_(rank), tag_(tag) {
      if (obs::Enabled()) start_ = std::chrono::steady_clock::now();
    }
    ~ExchangeTimer() {
      if (start_.time_since_epoch().count() == 0) return;
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_);
      group_.exchange_us_[rank_ * kNumTags + TagIndex(tag_)]->Add(
          us.count());
    }
    ExchangeTimer(const ExchangeTimer&) = delete;
    ExchangeTimer& operator=(const ExchangeTimer&) = delete;

   private:
    CollectiveGroup& group_;
    std::size_t rank_;
    Exchange tag_;
    std::chrono::steady_clock::time_point start_{};
  };

  /// Barrier arrival bounded by the peer deadline: a missing peer
  /// poisons the group and surfaces RankFailure here instead of a
  /// silent hang. Wait time lands in the rank's comm.wait_us series.
  void TimedArrive(std::size_t rank, Exchange tag) {
    WaitTimer wait(*this, rank, tag);
    if (options_.peer_timeout.count() <= 0) {
      barrier_.Arrive();
      return;
    }
    if (!barrier_.ArriveFor(options_.peer_timeout)) {
      Abort();
      throw RankFailure(
          "CollectiveGroup: peer missed the exchange barrier within the "
          "deadline (dead or stalled rank)");
    }
  }

  /// Mailbox pop bounded by the peer deadline. nullopt still means
  /// "closed" to the caller; a timeout aborts and throws instead.
  [[nodiscard]] std::optional<std::vector<std::byte>> TimedPop(
      Mail& mail, std::size_t rank, Exchange tag) {
    WaitTimer wait(*this, rank, tag);
    if (options_.peer_timeout.count() <= 0) return mail.Pop();
    bool timed_out = false;
    auto msg = mail.PopFor(options_.peer_timeout, &timed_out);
    if (timed_out) {
      Abort();
      throw RankFailure(
          "CollectiveGroup: peer payload missed the deadline (dead or "
          "stalled rank)");
    }
    return msg;
  }

  class WaitTimer {
   public:
    WaitTimer(CollectiveGroup& group, std::size_t rank, Exchange tag)
        : group_(group), rank_(rank), tag_(tag) {
      if (obs::Enabled()) start_ = std::chrono::steady_clock::now();
    }
    ~WaitTimer() {
      if (start_.time_since_epoch().count() == 0) return;
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_);
      group_.wait_us_[rank_ * kNumTags + TagIndex(tag_)]->Add(us.count());
    }
    WaitTimer(const WaitTimer&) = delete;
    WaitTimer& operator=(const WaitTimer&) = delete;

   private:
    CollectiveGroup& group_;
    std::size_t rank_;
    Exchange tag_;
    std::chrono::steady_clock::time_point start_{};
  };

  template <typename T>
  [[nodiscard]] static std::vector<std::byte> ToBytes(
      const std::vector<T>& v) {
    std::vector<std::byte> out(v.size() * sizeof(T));
    if (!v.empty()) std::memcpy(out.data(), v.data(), out.size());
    return out;
  }

  template <typename T>
  [[nodiscard]] static std::vector<T> FromBytes(
      const std::vector<std::byte>& b) {
    if (b.size() % sizeof(T) != 0) {
      throw std::runtime_error("CollectiveGroup: payload size not a "
                               "multiple of the element size");
    }
    std::vector<T> out(b.size() / sizeof(T));
    if (!b.empty()) std::memcpy(out.data(), b.data(), b.size());
    return out;
  }

  static void AppendScalar(std::vector<std::byte>& buf,
                           std::uint64_t value) {
    const auto* raw = reinterpret_cast<const std::byte*>(&value);
    buf.insert(buf.end(), raw, raw + sizeof(value));
  }

  [[nodiscard]] static std::uint64_t ReadScalar(
      const std::vector<std::byte>& buf, std::size_t& pos) {
    if (pos + sizeof(std::uint64_t) > buf.size()) {
      throw std::runtime_error("CollectiveGroup: truncated frame header");
    }
    std::uint64_t value = 0;
    std::memcpy(&value, buf.data() + pos, sizeof(value));
    pos += sizeof(value);
    return value;
  }

  std::size_t num_ranks_;
  CollectiveOptions options_;
  common::Barrier barrier_;
  std::vector<std::unique_ptr<Mail>> mail_;

  // Registry-backed per-(rank, exchange) counters; handles cached at
  // construction so exchanges never take the registry lock.
  obs::Registry metrics_;
  std::vector<obs::Counter*> bytes_sent_;    // [rank * kNumTags + tag]
  std::vector<obs::Counter*> wait_us_;       // same layout
  std::vector<obs::Counter*> exchange_us_;   // same layout
};

}  // namespace recd::train
