// Distributed DLRM training-iteration simulator.
//
// Executes the paper's Fig 2 / Fig 6 iteration over a *real* batch: every
// byte, lookup, flop, and activation count is computed from the actual
// (I)KJT tensors, then converted to time through the ClusterSpec rates
// and an alpha-beta collective model. The RecD trainer optimizations map
// to flags:
//   dedup_emb            O5: lookups/activations on deduplicated values;
//                            SDD ships values/offsets slices only.
//   jagged_index_select  O6: jagged expansion without pad-to-dense.
//   dedup_compute        O7: pooling (incl. attention) on unique rows,
//                            expansion after pooling (and the pooled-
//                            output all-to-all ships unique rows).
// All flags off = the baseline KJT trainer.
#pragma once

#include "reader/batch.h"
#include "train/cluster.h"
#include "train/model.h"

namespace recd::train {

/// Scales the counts extracted from a (bench-scale) batch back to paper
/// magnitudes: row counts multiply by `rows`, per-row lengths by
/// `length` (so values scale by rows*length and attention score work by
/// rows*length^2). Real data supplies the shapes — dedupe factors,
/// length distributions — and the multipliers restore scale, so the
/// simulator runs with *unscaled* hardware constants (docs/ARCHITECTURE.md §1).
struct ShapeScale {
  double rows = 1.0;
  double length = 1.0;
};

struct TrainerFlags {
  bool dedup_emb = true;
  bool jagged_index_select = true;
  bool dedup_compute = true;

  [[nodiscard]] static TrainerFlags Baseline() {
    return TrainerFlags{false, false, false};
  }
  [[nodiscard]] static TrainerFlags Recd() {
    return TrainerFlags{true, true, true};
  }
};

/// Exposed-latency breakdown of one iteration (paper Fig 8 categories),
/// plus the resource counters behind Fig 7/9 and Tables 2/3.
struct IterationBreakdown {
  // Modeled times (seconds).
  double emb_s = 0;           // embedding lookup (memory bound)
  double gemm_s = 0;          // MLPs + interaction + pooling + expansions
  double a2a_exposed_s = 0;   // non-overlapped collective time
  double other_s = 0;         // all-reduce, optimizer, fixed overheads
  [[nodiscard]] double total_s() const {
    return emb_s + gemm_s + a2a_exposed_s + other_s;
  }

  // Raw counters (whole job, per iteration).
  double a2a_raw_s = 0;          // collective time before overlap
  double sdd_bytes = 0;          // sparse-input all-to-all payload
  double emb_a2a_bytes = 0;      // pooled-output all-to-all payload (fwd)
  double lookups = 0;            // embedding row fetches
  double flops = 0;              // fwd+bwd compute actually executed
  double flops_logical = 0;      // fwd+bwd compute incl. duplicate work
  double static_mem_bytes = 0;   // per-GPU parameters
  double dynamic_mem_bytes = 0;  // per-GPU peak activations
  double mem_util_max = 0;       // peak per-GPU memory / HBM
  double mem_util_avg = 0;
  double global_batch_rows = 0;  // after ShapeScale
  double qps = 0;                // global samples/s
  double achieved_flops_per_gpu = 0;
  /// Realized FLOP/s per GPU counting logical (pre-dedup) work — the
  /// paper's Table 2 compute-efficiency metric: RecD does the same
  /// logical work in less time.
  double logical_flops_per_gpu = 0;
};

class TrainerSim {
 public:
  TrainerSim(ModelConfig model, ClusterSpec cluster, TrainerFlags flags,
             ShapeScale scale = {});

  /// Simulates one synchronous iteration over a global batch. The batch
  /// may carry IKJT groups (RecD reader) or plain KJT features (baseline
  /// reader); flags choose which savings apply. Throws if a model
  /// feature is missing from the batch.
  [[nodiscard]] IterationBreakdown SimulateIteration(
      const reader::PreprocessedBatch& batch) const;

  [[nodiscard]] const ModelConfig& model() const { return model_; }
  [[nodiscard]] const ClusterSpec& cluster() const { return cluster_; }
  [[nodiscard]] const TrainerFlags& flags() const { return flags_; }

  /// Parameter bytes per GPU (EMB shards + replicated MLPs).
  [[nodiscard]] double StaticMemoryBytesPerGpu() const;

 private:
  ModelConfig model_;
  ClusterSpec cluster_;
  TrainerFlags flags_;
  ShapeScale scale_;
};

}  // namespace recd::train
