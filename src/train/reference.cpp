#include "train/reference.h"

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>

#include "kernels/kernels.h"
#include "tensor/jagged_ops.h"

namespace recd::train {

std::vector<std::size_t> GradChunkBounds(std::size_t batch_size) {
  std::vector<std::size_t> bounds(kGradChunks + 1);
  for (std::size_t c = 0; c <= kGradChunks; ++c) {
    bounds[c] = c * batch_size / kGradChunks;
  }
  return bounds;
}

tensor::JaggedTensor ExpandedFeature(const reader::PreprocessedBatch& batch,
                                     const std::string& feature) {
  if (batch.kjt.Has(feature)) return batch.kjt.Get(feature);
  for (const auto& g : batch.groups) {
    for (const auto& key : g.keys()) {
      if (key == feature) {
        return tensor::JaggedIndexSelect(g.Unique(feature),
                                         g.inverse_lookup());
      }
    }
  }
  for (const auto& p : batch.partials) {
    if (p.key() == feature) return tensor::ExpandPartialIkjt(p);
  }
  throw std::out_of_range("ExpandedFeature: feature not in batch: " +
                          feature);
}

nn::DenseMatrix ExpandRows(const nn::DenseMatrix& pooled,
                           std::span<const std::int64_t> inverse) {
  nn::DenseMatrix out(inverse.size(), pooled.cols());
  kernels::GatherRows(kernels::DefaultBackend(), pooled.data().data(),
                      pooled.cols(), inverse, out.data().data());
  return out;
}

namespace {

// Kernel-ready group features plus the storage views that back them.
// Dense tables pass their weight matrix through; tiered tables gather
// the referenced rows into `views` — which must outlive the kernel call
// (GroupFeature borrows its pointers).
struct GroupFeatureSet {
  std::vector<nn::EmbeddingTable::KernelFeature> views;
  std::vector<kernels::GroupFeature> group;
};

GroupFeatureSet MakeGroupFeatures(
    const std::vector<const tensor::JaggedTensor*>& jts,
    const std::vector<const nn::EmbeddingTable*>& tables,
    std::span<const std::uint64_t> row_weights = {}) {
  GroupFeatureSet out;
  out.views.reserve(jts.size());
  out.group.reserve(jts.size());
  for (std::size_t k = 0; k < jts.size(); ++k) {
    out.views.push_back(tables[k]->MakeKernelFeature(*jts[k], row_weights));
    out.group.push_back(tables[k]->GroupFeatureFor(out.views[k], *jts[k]));
  }
  return out;
}

}  // namespace

nn::DenseMatrix SumPoolConcatGroup(
    kernels::KernelBackend backend,
    const std::vector<const tensor::JaggedTensor*>& jts,
    const std::vector<const nn::EmbeddingTable*>& tables) {
  if (jts.empty() || jts.size() != tables.size()) {
    throw std::invalid_argument(
        "SumPoolConcatGroup: need one table per jagged tensor");
  }
  const std::size_t rows = jts.front()->num_rows();
  const std::size_t d = tables.front()->dim();
  nn::DenseMatrix pooled(rows, d);
  const auto gfs = MakeGroupFeatures(jts, tables);
  kernels::SumPoolGroup(backend, gfs.group, d, pooled.data().data());
  return pooled;
}

nn::DenseMatrix SumPoolConcatGroup(
    const std::vector<const tensor::JaggedTensor*>& jts,
    const std::vector<const nn::EmbeddingTable*>& tables) {
  return SumPoolConcatGroup(kernels::DefaultBackend(), jts, tables);
}

namespace {

const tensor::InverseKeyedJaggedTensor* FindGroupByFirstKey(
    const reader::PreprocessedBatch& batch, const std::string& first) {
  for (const auto& g : batch.groups) {
    for (const auto& key : g.keys()) {
      if (key == first) return &g;
    }
  }
  return nullptr;
}

common::Rng MakeRng(std::uint64_t seed) { return common::Rng(seed); }

}  // namespace

ReferenceDlrm::ReferenceDlrm(ModelConfig model, std::uint64_t seed)
    : model_(std::move(model)),
      bottom_mlp_([&] {
        auto rng = MakeRng(seed);
        return nn::Mlp(model_.BottomMlpDims(), rng);
      }()),
      top_mlp_([&] {
        auto rng = MakeRng(seed + 1);
        return nn::Mlp(model_.TopMlpDims(), rng);
      }()),
      attention_(model_.emb_dim),
      table_order_(ModelTableOrder(model_)) {
  // One shared RNG stream across tables, in canonical order — the same
  // stream the distributed trainer consumes when sharding.
  auto rng = MakeRng(seed + 2);
  tables_.reserve(table_order_.size());
  for (std::size_t i = 0; i < table_order_.size(); ++i) {
    tables_.emplace_back(model_.emb_hash_size, model_.emb_dim, rng);
  }
  // Tiering converts storage only — applied after the RNG stream is
  // fully consumed so initial weights match the dense backend bitwise.
  if (model_.tiering.enabled) {
    for (auto& t : tables_) t.UseTieredStore(model_.tiering);
  }
}

nn::EmbeddingTable& ReferenceDlrm::Table(const std::string& feature) {
  for (std::size_t i = 0; i < table_order_.size(); ++i) {
    if (table_order_[i] == feature) return tables_[i];
  }
  throw std::out_of_range("ReferenceDlrm: no table for feature " + feature);
}

const nn::EmbeddingTable& ReferenceDlrm::table(
    const std::string& feature) const {
  for (std::size_t i = 0; i < table_order_.size(); ++i) {
    if (table_order_[i] == feature) return tables_[i];
  }
  throw std::out_of_range("ReferenceDlrm: no table for feature " + feature);
}

nn::DenseMatrix ReferenceDlrm::BottomForward(
    const reader::PreprocessedBatch& batch) {
  nn::DenseMatrix dense(batch.batch_size, model_.dense_dim);
  if (batch.dense.size() != batch.batch_size * model_.dense_dim) {
    throw std::invalid_argument("ReferenceDlrm: dense size mismatch");
  }
  std::copy(batch.dense.begin(), batch.dense.end(), dense.data().begin());
  return bottom_mlp_.Forward(dense);
}

ReferenceDlrm::PooledInputs ReferenceDlrm::PoolSparse(
    const reader::PreprocessedBatch& batch, bool recd, bool attention_ok) {
  PooledInputs out;
  const std::size_t d = model_.emb_dim;

  // Table pointers of a group's features, hoisted out of the id loops.
  auto group_tables = [&](const SequenceGroup& group) {
    std::vector<const nn::EmbeddingTable*> tables;
    tables.reserve(group.features.size());
    for (const auto& f : group.features) tables.push_back(&Table(f));
    return tables;
  };

  // Pools a group of features over the given (possibly deduplicated)
  // per-feature jagged tensors: per row, the features' sequences are
  // concatenated and pooled by attention or summed.
  auto pool_group = [&](const SequenceGroup& group,
                        const std::vector<const tensor::JaggedTensor*>& jts)
      -> nn::DenseMatrix {
    const auto tables = group_tables(group);
    if (!(group.attention && attention_ok)) {
      // Summing the concatenated sequence in order == summing each
      // feature's lookups in concatenation order.
      return SumPoolConcatGroup(backend_, jts, tables);
    }
    const std::size_t rows = jts.front()->num_rows();
    nn::DenseMatrix pooled(rows, d);
    std::vector<float> seq;
    for (std::size_t r = 0; r < rows; ++r) {
      seq.clear();
      for (std::size_t k = 0; k < jts.size(); ++k) {
        for (const auto id : jts[k]->row(r)) {
          const auto w = tables[k]->Lookup(id);
          seq.insert(seq.end(), w.begin(), w.end());
        }
      }
      attention_.PoolRow(seq, seq.size() / d, pooled.row(r));
    }
    return pooled;
  };

  for (const auto& group : model_.sequence_groups) {
    const auto* ikjt = FindGroupByFirstKey(batch, group.features.front());
    if (recd) {
      if (ikjt == nullptr) {
        throw std::invalid_argument(
            "ReferenceDlrm: recd path requires IKJT groups in the batch");
      }
      // O7: pool unique rows, then expand through the shared lookup.
      std::vector<const tensor::JaggedTensor*> jts;
      for (const auto& f : group.features) jts.push_back(&ikjt->Unique(f));
      if (group.attention && attention_ok) {
        out.matrices.push_back(
            ExpandRows(pool_group(group, jts), ikjt->inverse_lookup()));
      } else {
        // Fused O5+O7: pool each unique row once, scatter into batch
        // slots — no unique-row matrix, no separate gather pass. The
        // inverse multiplicities feed the hot tier as admission weights
        // when tables are store-backed.
        const auto& inverse = ikjt->inverse_lookup();
        std::vector<std::uint64_t> mult(jts.front()->num_rows(), 0);
        for (const auto i : inverse) mult[static_cast<std::size_t>(i)] += 1;
        const auto gfs = MakeGroupFeatures(jts, group_tables(group), mult);
        nn::DenseMatrix m(inverse.size(), d);
        kernels::FusedPooledLookup(backend_, gfs.group, inverse, d,
                                   m.data().data());
        out.matrices.push_back(std::move(m));
      }
    } else {
      // Baseline: expand every feature to batch rows, pool everything.
      std::vector<tensor::JaggedTensor> expanded;
      expanded.reserve(group.features.size());
      for (const auto& f : group.features) {
        expanded.push_back(ExpandedFeature(batch, f));
      }
      std::vector<const tensor::JaggedTensor*> jts;
      for (const auto& jt : expanded) jts.push_back(&jt);
      out.matrices.push_back(pool_group(group, jts));
    }
  }

  auto pool_single = [&](const std::string& feature) {
    const auto* ikjt = FindGroupByFirstKey(batch, feature);
    if (recd && ikjt != nullptr) {
      out.matrices.push_back(Table(feature).FusedPooledForward(
          ikjt->Unique(feature), ikjt->inverse_lookup()));
    } else {
      out.matrices.push_back(Table(feature).PooledForward(
          ExpandedFeature(batch, feature), nn::PoolingKind::kSum));
    }
  };
  for (const auto& f : model_.elementwise_features) pool_single(f);
  for (const auto& f : model_.plain_features) pool_single(f);
  return out;
}

nn::DenseMatrix ReferenceDlrm::Forward(
    const reader::PreprocessedBatch& batch, bool recd) {
  nn::DenseMatrix bottom = BottomForward(batch);
  PooledInputs pooled = PoolSparse(batch, recd, /*attention_ok=*/true);
  pooled.pointers.push_back(&bottom);
  for (const auto& m : pooled.matrices) pooled.pointers.push_back(&m);
  nn::DenseMatrix interacted = interaction_.Forward(pooled.pointers);
  return top_mlp_.Forward(interacted);
}

float ReferenceDlrm::TrainStep(const reader::PreprocessedBatch& batch,
                               float lr) {
  // Sum pooling everywhere (attention backward unsupported). The step
  // runs per canonical chunk (kGradChunks): forward + backward on each
  // chunk's rows, per-chunk gradient/loss partials, then a fixed-order
  // combine — the reduction tree the distributed all-reduce replays.
  const std::size_t batch_size = batch.batch_size;
  if (batch.dense.size() != batch_size * model_.dense_dim) {
    throw std::invalid_argument("ReferenceDlrm: dense size mismatch");
  }
  if (batch.labels.size() != batch_size) {
    throw std::invalid_argument("ReferenceDlrm: labels size mismatch");
  }

  // Expand every model feature once (integer work; identical ids for
  // KJT and IKJT batch forms).
  std::vector<std::vector<tensor::JaggedTensor>> group_feats;
  for (const auto& group : model_.sequence_groups) {
    std::vector<tensor::JaggedTensor> feats;
    feats.reserve(group.features.size());
    for (const auto& f : group.features) {
      feats.push_back(ExpandedFeature(batch, f));
    }
    group_feats.push_back(std::move(feats));
  }
  std::vector<std::string> single_order = model_.elementwise_features;
  single_order.insert(single_order.end(), model_.plain_features.begin(),
                      model_.plain_features.end());
  std::vector<tensor::JaggedTensor> single_feats;
  single_feats.reserve(single_order.size());
  for (const auto& f : single_order) {
    single_feats.push_back(ExpandedFeature(batch, f));
  }

  struct ChunkCapture {
    std::size_t lo = 0;
    std::size_t hi = 0;
    nn::MlpGradients bottom;
    nn::MlpGradients top;
    std::vector<nn::DenseMatrix> grad_inputs;
    // Sliced jagged inputs, kept for the sparse-update pass.
    std::vector<std::vector<tensor::JaggedTensor>> group_slices;
    std::vector<tensor::JaggedTensor> single_slices;
    double loss_sum = 0.0;
  };
  std::vector<ChunkCapture> caps;

  nn::DenseMatrix dense_all(batch_size, model_.dense_dim);
  std::copy(batch.dense.begin(), batch.dense.end(),
            dense_all.data().begin());

  const auto bounds = GradChunkBounds(batch_size);
  for (std::size_t c = 0; c < kGradChunks; ++c) {
    const std::size_t lo = bounds[c];
    const std::size_t hi = bounds[c + 1];
    if (lo == hi) continue;
    const std::size_t rows = hi - lo;
    ChunkCapture cap;
    cap.lo = lo;
    cap.hi = hi;

    nn::DenseMatrix bottom =
        bottom_mlp_.Forward(nn::SliceRows(dense_all, lo, hi));

    std::vector<nn::DenseMatrix> pooled;
    pooled.reserve(model_.num_interaction_inputs() - 1);
    for (std::size_t g = 0; g < group_feats.size(); ++g) {
      std::vector<tensor::JaggedTensor> slices;
      slices.reserve(group_feats[g].size());
      for (const auto& jt : group_feats[g]) {
        slices.push_back(tensor::SliceJaggedRows(jt, lo, hi));
      }
      std::vector<const tensor::JaggedTensor*> jts;
      std::vector<const nn::EmbeddingTable*> tables;
      for (std::size_t k = 0; k < slices.size(); ++k) {
        jts.push_back(&slices[k]);
        tables.push_back(&Table(model_.sequence_groups[g].features[k]));
      }
      pooled.push_back(SumPoolConcatGroup(backend_, jts, tables));
      cap.group_slices.push_back(std::move(slices));
    }
    for (std::size_t s = 0; s < single_feats.size(); ++s) {
      cap.single_slices.push_back(
          tensor::SliceJaggedRows(single_feats[s], lo, hi));
      pooled.push_back(Table(single_order[s])
                           .PooledForward(cap.single_slices.back(),
                                          nn::PoolingKind::kSum));
    }

    std::vector<const nn::DenseMatrix*> ptrs;
    ptrs.push_back(&bottom);
    for (const auto& m : pooled) ptrs.push_back(&m);
    nn::DenseMatrix interacted = interaction_.Forward(ptrs);
    nn::DenseMatrix logits = top_mlp_.Forward(interacted);
    const auto labels =
        std::span<const float>(batch.labels).subspan(lo, rows);
    cap.loss_sum = nn::BceWithLogitsLossSum(backend_, logits, labels);

    nn::DenseMatrix grad_logits =
        nn::BceWithLogitsGrad(backend_, logits, labels, batch_size);
    nn::DenseMatrix grad_interacted = top_mlp_.Backward(grad_logits);
    interaction_.Backward(grad_interacted, ptrs, cap.grad_inputs);
    (void)bottom_mlp_.Backward(cap.grad_inputs[0]);
    cap.bottom = bottom_mlp_.TakeGradients();
    cap.top = top_mlp_.TakeGradients();
    caps.push_back(std::move(cap));
  }

  // Fixed-order chunk combine, from zeros in ascending chunk order
  // (mirrors CollectiveGroup::AllReduceSum bitwise).
  nn::MlpGradients bottom_total = bottom_mlp_.ZeroGradients();
  nn::MlpGradients top_total = top_mlp_.ZeroGradients();
  double loss_total = 0.0;
  for (const auto& cap : caps) {
    bottom_total.Add(cap.bottom);
    top_total.Add(cap.top);
    loss_total += cap.loss_sum;
  }
  bottom_mlp_.AccumulateGradients(bottom_total);
  top_mlp_.AccumulateGradients(top_total);

  // Sparse updates after every chunk's forward has run: chunk-major =
  // batch-row order per feature. The concatenated-group sum pool
  // distributes the same row gradient to every feature's IDs.
  for (const auto& cap : caps) {
    std::size_t gi = 1;
    for (std::size_t g = 0; g < cap.group_slices.size(); ++g) {
      for (std::size_t k = 0; k < cap.group_slices[g].size(); ++k) {
        Table(model_.sequence_groups[g].features[k])
            .ApplyPooledGradient(cap.group_slices[g][k],
                                 cap.grad_inputs[gi],
                                 nn::PoolingKind::kSum, lr);
      }
      ++gi;
    }
    for (std::size_t s = 0; s < cap.single_slices.size(); ++s) {
      Table(single_order[s])
          .ApplyPooledGradient(cap.single_slices[s], cap.grad_inputs[gi],
                               nn::PoolingKind::kSum, lr);
      ++gi;
    }
  }
  bottom_mlp_.Step(lr);
  top_mlp_.Step(lr);
  return static_cast<float>(loss_total / static_cast<double>(batch_size));
}

float ReferenceDlrm::EvalLoss(const reader::PreprocessedBatch& batch) {
  nn::DenseMatrix bottom = BottomForward(batch);
  PooledInputs pooled = PoolSparse(batch, /*recd=*/false,
                                   /*attention_ok=*/false);
  pooled.pointers.push_back(&bottom);
  for (const auto& m : pooled.matrices) pooled.pointers.push_back(&m);
  nn::DenseMatrix interacted = interaction_.Forward(pooled.pointers);
  nn::DenseMatrix logits = top_mlp_.Forward(interacted);
  return nn::BceWithLogitsLoss(logits, batch.labels);
}

nn::OpStats ReferenceDlrm::Stats() const {
  nn::OpStats s;
  s += bottom_mlp_.stats();
  s += top_mlp_.stats();
  s += interaction_.stats();
  s += attention_.stats();
  for (const auto& t : tables_) s += t.stats();
  return s;
}

void ReferenceDlrm::ResetStats() {
  bottom_mlp_.ResetStats();
  top_mlp_.ResetStats();
  interaction_.ResetStats();
  attention_.ResetStats();
  for (auto& t : tables_) t.ResetStats();
}

embstore::TierStats ReferenceDlrm::TierStats() const {
  embstore::TierStats total;
  for (const auto& t : tables_) total += t.tier_stats();
  return total;
}

void ReferenceDlrm::ResetTierStats() {
  for (auto& t : tables_) t.ResetTierStats();
}

void ReferenceDlrm::SetKernelBackend(kernels::KernelBackend b) {
  backend_ = b;
  bottom_mlp_.set_backend(b);
  top_mlp_.set_backend(b);
  for (auto& t : tables_) t.set_backend(b);
}

}  // namespace recd::train
