#include "train/reference.h"

#include <stdexcept>

#include "tensor/jagged_ops.h"

namespace recd::train {

tensor::JaggedTensor ExpandedFeature(const reader::PreprocessedBatch& batch,
                                     const std::string& feature) {
  if (batch.kjt.Has(feature)) return batch.kjt.Get(feature);
  for (const auto& g : batch.groups) {
    for (const auto& key : g.keys()) {
      if (key == feature) {
        return tensor::JaggedIndexSelect(g.Unique(feature),
                                         g.inverse_lookup());
      }
    }
  }
  for (const auto& p : batch.partials) {
    if (p.key() == feature) return tensor::ExpandPartialIkjt(p);
  }
  throw std::out_of_range("ExpandedFeature: feature not in batch: " +
                          feature);
}

nn::DenseMatrix ExpandRows(const nn::DenseMatrix& pooled,
                           std::span<const std::int64_t> inverse) {
  nn::DenseMatrix out(inverse.size(), pooled.cols());
  for (std::size_t i = 0; i < inverse.size(); ++i) {
    const auto src = pooled.row(static_cast<std::size_t>(inverse[i]));
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

namespace {

const tensor::InverseKeyedJaggedTensor* FindGroupByFirstKey(
    const reader::PreprocessedBatch& batch, const std::string& first) {
  for (const auto& g : batch.groups) {
    for (const auto& key : g.keys()) {
      if (key == first) return &g;
    }
  }
  return nullptr;
}

common::Rng MakeRng(std::uint64_t seed) { return common::Rng(seed); }

}  // namespace

ReferenceDlrm::ReferenceDlrm(ModelConfig model, std::uint64_t seed)
    : model_(std::move(model)),
      bottom_mlp_([&] {
        auto rng = MakeRng(seed);
        return nn::Mlp(model_.BottomMlpDims(), rng);
      }()),
      top_mlp_([&] {
        auto rng = MakeRng(seed + 1);
        return nn::Mlp(model_.TopMlpDims(), rng);
      }()),
      attention_(model_.emb_dim) {
  auto rng = MakeRng(seed + 2);
  auto add_table = [&](const std::string& feature) {
    table_order_.push_back(feature);
    tables_.emplace_back(model_.emb_hash_size, model_.emb_dim, rng);
  };
  for (const auto& g : model_.sequence_groups) {
    for (const auto& f : g.features) add_table(f);
  }
  for (const auto& f : model_.elementwise_features) add_table(f);
  for (const auto& f : model_.plain_features) add_table(f);
}

nn::EmbeddingTable& ReferenceDlrm::Table(const std::string& feature) {
  for (std::size_t i = 0; i < table_order_.size(); ++i) {
    if (table_order_[i] == feature) return tables_[i];
  }
  throw std::out_of_range("ReferenceDlrm: no table for feature " + feature);
}

nn::DenseMatrix ReferenceDlrm::BottomForward(
    const reader::PreprocessedBatch& batch) {
  nn::DenseMatrix dense(batch.batch_size, model_.dense_dim);
  if (batch.dense.size() != batch.batch_size * model_.dense_dim) {
    throw std::invalid_argument("ReferenceDlrm: dense size mismatch");
  }
  std::copy(batch.dense.begin(), batch.dense.end(), dense.data().begin());
  return bottom_mlp_.Forward(dense);
}

ReferenceDlrm::PooledInputs ReferenceDlrm::PoolSparse(
    const reader::PreprocessedBatch& batch, bool recd, bool attention_ok) {
  PooledInputs out;
  const std::size_t d = model_.emb_dim;

  // Pools a group of features over the given (possibly deduplicated)
  // per-feature jagged tensors: per row, the features' sequences are
  // concatenated and pooled by attention or summed.
  auto pool_group = [&](const SequenceGroup& group,
                        const std::vector<const tensor::JaggedTensor*>& jts)
      -> nn::DenseMatrix {
    const std::size_t rows = jts.front()->num_rows();
    const bool use_attention = group.attention && attention_ok;
    nn::DenseMatrix pooled(rows, d);
    std::vector<float> seq;
    for (std::size_t r = 0; r < rows; ++r) {
      seq.clear();
      for (std::size_t k = 0; k < jts.size(); ++k) {
        for (const auto id : jts[k]->row(r)) {
          const auto w = Table(group.features[k]).Lookup(id);
          seq.insert(seq.end(), w.begin(), w.end());
        }
      }
      const std::size_t len = seq.size() / d;
      if (use_attention) {
        attention_.PoolRow(seq, len, pooled.row(r));
      } else {
        auto prow = pooled.row(r);
        for (std::size_t i = 0; i < len; ++i) {
          for (std::size_t c = 0; c < d; ++c) prow[c] += seq[i * d + c];
        }
      }
    }
    return pooled;
  };

  for (const auto& group : model_.sequence_groups) {
    const auto* ikjt = FindGroupByFirstKey(batch, group.features.front());
    if (recd) {
      if (ikjt == nullptr) {
        throw std::invalid_argument(
            "ReferenceDlrm: recd path requires IKJT groups in the batch");
      }
      // O7: pool unique rows, then expand through the shared lookup.
      std::vector<const tensor::JaggedTensor*> jts;
      for (const auto& f : group.features) jts.push_back(&ikjt->Unique(f));
      out.matrices.push_back(
          ExpandRows(pool_group(group, jts), ikjt->inverse_lookup()));
    } else {
      // Baseline: expand every feature to batch rows, pool everything.
      std::vector<tensor::JaggedTensor> expanded;
      expanded.reserve(group.features.size());
      for (const auto& f : group.features) {
        expanded.push_back(ExpandedFeature(batch, f));
      }
      std::vector<const tensor::JaggedTensor*> jts;
      for (const auto& jt : expanded) jts.push_back(&jt);
      out.matrices.push_back(pool_group(group, jts));
    }
  }

  auto pool_single = [&](const std::string& feature) {
    const auto* ikjt = FindGroupByFirstKey(batch, feature);
    if (recd && ikjt != nullptr) {
      auto pooled = Table(feature).PooledForward(ikjt->Unique(feature),
                                                 nn::PoolingKind::kSum);
      out.matrices.push_back(
          ExpandRows(pooled, ikjt->inverse_lookup()));
    } else {
      out.matrices.push_back(Table(feature).PooledForward(
          ExpandedFeature(batch, feature), nn::PoolingKind::kSum));
    }
  };
  for (const auto& f : model_.elementwise_features) pool_single(f);
  for (const auto& f : model_.plain_features) pool_single(f);
  return out;
}

nn::DenseMatrix ReferenceDlrm::Forward(
    const reader::PreprocessedBatch& batch, bool recd) {
  nn::DenseMatrix bottom = BottomForward(batch);
  PooledInputs pooled = PoolSparse(batch, recd, /*attention_ok=*/true);
  pooled.pointers.push_back(&bottom);
  for (const auto& m : pooled.matrices) pooled.pointers.push_back(&m);
  nn::DenseMatrix interacted = interaction_.Forward(pooled.pointers);
  return top_mlp_.Forward(interacted);
}

float ReferenceDlrm::TrainStep(const reader::PreprocessedBatch& batch,
                               float lr) {
  // Forward with sum pooling everywhere (attention backward unsupported).
  nn::DenseMatrix bottom = BottomForward(batch);
  PooledInputs pooled = PoolSparse(batch, /*recd=*/false,
                                   /*attention_ok=*/false);
  pooled.pointers.push_back(&bottom);
  for (const auto& m : pooled.matrices) pooled.pointers.push_back(&m);
  nn::DenseMatrix interacted = interaction_.Forward(pooled.pointers);
  nn::DenseMatrix logits = top_mlp_.Forward(interacted);
  const float loss = nn::BceWithLogitsLoss(logits, batch.labels);

  // Backward.
  nn::DenseMatrix grad_logits = nn::BceWithLogitsGrad(logits, batch.labels);
  nn::DenseMatrix grad_interacted = top_mlp_.Backward(grad_logits);
  std::vector<nn::DenseMatrix> grad_inputs;
  interaction_.Backward(grad_interacted, pooled.pointers, grad_inputs);
  (void)bottom_mlp_.Backward(grad_inputs[0]);

  // Sparse updates: every pooled input after index 0 corresponds to a
  // model input in PoolSparse order (groups, elementwise, plain).
  std::size_t gi = 1;
  for (const auto& group : model_.sequence_groups) {
    // The concatenated-group sum pool distributes the same row gradient
    // to every feature's IDs.
    for (const auto& f : group.features) {
      Table(f).ApplyPooledGradient(ExpandedFeature(batch, f),
                                   grad_inputs[gi], nn::PoolingKind::kSum,
                                   lr);
    }
    ++gi;
  }
  for (const auto& f : model_.elementwise_features) {
    Table(f).ApplyPooledGradient(ExpandedFeature(batch, f),
                                 grad_inputs[gi], nn::PoolingKind::kSum, lr);
    ++gi;
  }
  for (const auto& f : model_.plain_features) {
    Table(f).ApplyPooledGradient(ExpandedFeature(batch, f),
                                 grad_inputs[gi], nn::PoolingKind::kSum, lr);
    ++gi;
  }
  bottom_mlp_.Step(lr);
  top_mlp_.Step(lr);
  return loss;
}

float ReferenceDlrm::EvalLoss(const reader::PreprocessedBatch& batch) {
  nn::DenseMatrix bottom = BottomForward(batch);
  PooledInputs pooled = PoolSparse(batch, /*recd=*/false,
                                   /*attention_ok=*/false);
  pooled.pointers.push_back(&bottom);
  for (const auto& m : pooled.matrices) pooled.pointers.push_back(&m);
  nn::DenseMatrix interacted = interaction_.Forward(pooled.pointers);
  nn::DenseMatrix logits = top_mlp_.Forward(interacted);
  return nn::BceWithLogitsLoss(logits, batch.labels);
}

nn::OpStats ReferenceDlrm::Stats() const {
  nn::OpStats s;
  s += bottom_mlp_.stats();
  s += top_mlp_.stats();
  s += interaction_.stats();
  s += attention_.stats();
  for (const auto& t : tables_) s += t.stats();
  return s;
}

void ReferenceDlrm::ResetStats() {
  bottom_mlp_.ResetStats();
  top_mlp_.ResetStats();
  interaction_.ResetStats();
  attention_.ResetStats();
  for (auto& t : tables_) t.ResetStats();
}

}  // namespace recd::train
