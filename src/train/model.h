// Trainer-side model architecture description.
//
// Maps dataset features onto DLRM components (paper §2.2 / Fig 2): every
// sparse feature gets an embedding table; element-wise features pool with
// sum; sequence groups pool with self-attention ("transformer pooling");
// a bottom MLP embeds dense features; pairwise interaction feeds a top
// MLP. RM presets mirror the paper's three models.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "datagen/schema.h"
#include "nn/embedding.h"
#include "reader/dataloader.h"

namespace recd::train {

/// A group of sequence features pooled together (one attention module per
/// group; with RecD the group shares one IKJT so the module runs on
/// deduplicated rows — O7).
struct SequenceGroup {
  std::vector<std::string> features;
  bool attention = true;  // false = sum-pool the concatenated sequence
};

struct ModelConfig {
  std::string name;
  std::size_t emb_dim = 128;
  std::size_t emb_hash_size = 200'000;  // rows per embedding table

  /// Sum-pooled features that RecD deduplicates one-per-group.
  std::vector<std::string> elementwise_features;
  /// Features never deduplicated (item features and low-dup users).
  std::vector<std::string> plain_features;
  std::vector<SequenceGroup> sequence_groups;

  std::size_t dense_dim = 16;
  std::vector<std::size_t> bottom_mlp_hidden = {256};
  std::vector<std::size_t> top_mlp_hidden = {512, 256};

  [[nodiscard]] std::size_t num_tables() const;
  /// Number of interaction inputs: bottom output + pooled outputs
  /// (one per element-wise feature, plain feature, and sequence group).
  [[nodiscard]] std::size_t num_interaction_inputs() const;
  /// Full bottom-MLP layer dims: {dense_dim, hidden..., emb_dim}.
  [[nodiscard]] std::vector<std::size_t> BottomMlpDims() const;
  /// Full top-MLP layer dims: {interaction_dim, hidden..., 1}.
  [[nodiscard]] std::vector<std::size_t> TopMlpDims() const;
};

/// Builds the RM model preset over the matching dataset spec (paper §6.1:
/// RM1 pools several user sequence features with transformers; RM2/RM3
/// use one group; all deduplicate ~100 element-wise features).
[[nodiscard]] ModelConfig RmModel(datagen::RmKind kind,
                                  const datagen::DatasetSpec& dataset);

/// Derives the reader DataLoader config for a model. With `recd_enabled`,
/// sequence groups and element-wise features become dedup groups (O3);
/// otherwise everything converts to plain KJT.
[[nodiscard]] reader::DataLoaderConfig MakeDataLoaderConfig(
    const ModelConfig& model, std::size_t batch_size, bool recd_enabled);

}  // namespace recd::train
