// Trainer-side model architecture description.
//
// Maps dataset features onto DLRM components (paper §2.2 / Fig 2): every
// sparse feature gets an embedding table; element-wise features pool with
// sum; sequence groups pool with self-attention ("transformer pooling");
// a bottom MLP embeds dense features; pairwise interaction feeds a top
// MLP. RM presets mirror the paper's three models.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "datagen/schema.h"
#include "embstore/tier_config.h"
#include "nn/embedding.h"
#include "reader/dataloader.h"

namespace recd::train {

/// A group of sequence features pooled together (one attention module per
/// group; with RecD the group shares one IKJT so the module runs on
/// deduplicated rows — O7).
struct SequenceGroup {
  std::vector<std::string> features;
  bool attention = true;  // false = sum-pool the concatenated sequence
};

struct ModelConfig {
  std::string name;
  std::size_t emb_dim = 128;
  std::size_t emb_hash_size = 200'000;  // rows per embedding table

  /// Sum-pooled features that RecD deduplicates one-per-group.
  std::vector<std::string> elementwise_features;
  /// Features never deduplicated (item features and low-dup users).
  std::vector<std::string> plain_features;
  std::vector<SequenceGroup> sequence_groups;

  std::size_t dense_dim = 16;
  std::vector<std::size_t> bottom_mlp_hidden = {256};
  std::vector<std::size_t> top_mlp_hidden = {512, 256};

  /// Embedding storage backend. When `tiering.enabled`, every table is
  /// converted to a tiered row store *after* RNG-stream initialization,
  /// so initial weights — and, by the tier-placement determinism rule
  /// (docs/ARCHITECTURE.md §13), every subsequent forward/backward —
  /// are bitwise identical to the dense backend.
  embstore::TierConfig tiering;

  [[nodiscard]] std::size_t num_tables() const;
  /// Number of interaction inputs: bottom output + pooled outputs
  /// (one per element-wise feature, plain feature, and sequence group).
  [[nodiscard]] std::size_t num_interaction_inputs() const;
  /// Full bottom-MLP layer dims: {dense_dim, hidden..., emb_dim}.
  [[nodiscard]] std::vector<std::size_t> BottomMlpDims() const;
  /// Full top-MLP layer dims: {interaction_dim, hidden..., 1}.
  [[nodiscard]] std::vector<std::size_t> TopMlpDims() const;
};

/// Canonical table order of a model: sequence-group features (in group
/// order), then element-wise, then plain. ReferenceDlrm builds its
/// tables in this order with one shared RNG stream, and the
/// distributed trainer shards tables by their index in this list — so
/// a sharded table and its single-rank counterpart are initialized
/// identically.
[[nodiscard]] std::vector<std::string> ModelTableOrder(
    const ModelConfig& model);

/// One model-parallel placement unit of the distributed trainer: the
/// granularity at which embedding tables are assigned to ranks. A
/// sequence group's tables place together (the group shares one IKJT
/// and one inverse_lookup, and its concatenated-sequence pooling must
/// run on one rank); element-wise and plain features place singly.
/// Pooled unit outputs appear in unit order, matching the interaction
/// input order of ReferenceDlrm (bottom, groups, element-wise, plain).
struct PlacementUnit {
  enum class Kind : std::uint8_t { kSequenceGroup, kElementwise, kPlain };
  Kind kind = Kind::kPlain;
  std::vector<std::string> features;
  /// Indices into ModelTableOrder, one per feature.
  std::vector<std::size_t> table_ids;
  /// Dedup-eligible: in RecD mode the sparse exchange ships this
  /// unit's unique (IKJT) rows only. Plain features never dedup.
  [[nodiscard]] bool deduplicated() const { return kind != Kind::kPlain; }
};

[[nodiscard]] std::vector<PlacementUnit> ModelPlacementUnits(
    const ModelConfig& model);

/// Builds the RM model preset over the matching dataset spec (paper §6.1:
/// RM1 pools several user sequence features with transformers; RM2/RM3
/// use one group; all deduplicate ~100 element-wise features).
[[nodiscard]] ModelConfig RmModel(datagen::RmKind kind,
                                  const datagen::DatasetSpec& dataset);

/// Builds an RM-*style* variant over an **arbitrary** dataset spec, for
/// serving-time model zoos that score one shared query trace
/// (DeepRecSys: a zoo of models with different sparse-vs-dense
/// balance). Unlike RmModel — which assumes the matching
/// RmDataset(kind) — the sequence groups here come from whatever sync
/// groups the shared dataset actually defines; `kind` only varies the
/// compute balance:
///   kRm1: attention sequence pooling, wide embeddings, small MLPs
///         (sparse-dominated);
///   kRm2: sum pooling, deep/wide MLPs (dense-dominated);
///   kRm3: sum pooling, balanced dims.
[[nodiscard]] ModelConfig RmServeVariant(datagen::RmKind kind,
                                         const datagen::DatasetSpec& dataset);

/// Derives the reader DataLoader config for a model. With `recd_enabled`,
/// sequence groups and element-wise features become dedup groups (O3);
/// otherwise everything converts to plain KJT.
[[nodiscard]] reader::DataLoaderConfig MakeDataLoaderConfig(
    const ModelConfig& model, std::size_t batch_size, bool recd_enabled);

}  // namespace recd::train
