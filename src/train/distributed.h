// Executed data/model hybrid-parallel DLRM trainer.
//
// N ranks run as threads over a shared-nothing model partition
// (docs/ARCHITECTURE.md §10): embedding tables are sharded across
// ranks by table id at placement-unit granularity (a sync group's
// tables stay together — model parallel), while the dense bottom/top
// MLPs and interaction are replicated per rank over contiguous
// sub-batches (data parallel). Each iteration runs the paper's four
// exchanges (Fig 2) for real through train::CollectiveGroup:
//
//   1. SDD all-to-all      sparse ids, reader-sharded -> table-sharded
//   2. embedding all-to-all pooled rows, table-sharded -> reader-sharded
//   3. mirror gradient all-to-all   pooled-row grads back to the owners
//   4. MLP gradient all-reduce      dense grads, fixed chunk order
//
// RecD mode (O5/O6 across ranks): exchange 1 ships each dedup group's
// *unique* (IKJT) rows plus the shared inverse_lookup only; the owner
// looks up and pools unique rows once, exchange 2 ships unique pooled
// rows, and the receiving rank expands through its local inverse after
// transfer. Per-rank byte counters on every exchange make the savings
// measurable (bench_dist_train).
//
// Determinism contract: for any rank count dividing kGradChunks
// (1, 2, 4), K steps produce weights and losses bitwise identical to
// single-rank ReferenceDlrm::TrainStep, baseline and RecD mode alike.
// The three ingredients: the fixed-chunk-order gradient/loss all-reduce
// (no atomics on any accumulation path), owner-applied sparse updates
// in global batch-row order, and pooling that runs the identical
// float-op sequence on unique and expanded rows (asserted since PR 1
// by the IKJT forward-equivalence tests).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "kernels/backend.h"
#include "nn/embedding_shard.h"
#include "obs/metrics.h"
#include "nn/interaction.h"
#include "nn/mlp.h"
#include "reader/batch.h"
#include "train/collective_group.h"
#include "train/model.h"

namespace recd::train {

struct TrainerCheckpoint;

struct DistributedConfig {
  /// Rank count; must divide kGradChunks (i.e. 1, 2, or 4) so rank
  /// sub-batches align with the canonical reduction chunks.
  std::size_t num_ranks = 1;
  /// Dedup-aware sparse exchange: ship unique IKJT rows (O5/O6 across
  /// ranks). Requires batches with IKJT groups (a RecD reader).
  bool recd = false;
  float lr = 0.05f;
  /// Model initialization seed; rank replicas and the table shards
  /// reproduce ReferenceDlrm(model, seed) exactly.
  std::uint64_t seed = 0;
  /// Kernel backend for every rank's MLPs, shard tables, pooling, and
  /// loss math. Bitwise-neutral (scalar and vectorized kernels are
  /// bit-identical); pinned here so determinism sweeps can cross
  /// backends against the single-rank reference.
  kernels::KernelBackend backend = kernels::DefaultBackend();
  /// Peer deadline for every collective wait; zero waits forever. With
  /// a deadline, a dead peer surfaces as RankFailure instead of a
  /// hang (see CollectiveOptions::peer_timeout).
  std::chrono::milliseconds peer_timeout{0};
  /// Optional fault-injection hook, fired at the start of every
  /// exchange on every rank (tests, chaos drills). Not owned; must
  /// outlive the trainer.
  FaultInjector* injector = nullptr;
};

/// Per-rank bytes sent on each of the four exchanges, plus the sparse
/// values accounting behind the exchange dedupe factor.
struct ExchangeCounters {
  std::size_t sdd_bytes = 0;        // 1: sparse-id all-to-all
  std::size_t emb_bytes = 0;        // 2: pooled-row all-to-all
  std::size_t grad_bytes = 0;       // 3: mirror gradient all-to-all
  std::size_t allreduce_bytes = 0;  // 4: MLP gradient all-reduce
  /// Dedup-eligible sparse values: logical (expanded) vs shipped.
  std::size_t values_logical = 0;
  std::size_t values_shipped = 0;

  [[nodiscard]] std::size_t total_bytes() const {
    return sdd_bytes + emb_bytes + grad_bytes + allreduce_bytes;
  }
  /// Measured dedupe factor of the sparse exchange (1.0 in baseline).
  [[nodiscard]] double exchange_dedupe_factor() const {
    return values_shipped == 0
               ? 1.0
               : static_cast<double>(values_logical) /
                     static_cast<double>(values_shipped);
  }
  void Add(const ExchangeCounters& other);
};

class DistributedTrainer {
 public:
  /// Builds the sharded model partition. Each table is constructed
  /// once, from the same shared RNG stream as ReferenceDlrm, and
  /// handed to its owning rank's shard (placement unit u -> rank
  /// u % num_ranks). Throws std::invalid_argument if num_ranks does
  /// not divide kGradChunks.
  DistributedTrainer(ModelConfig model, DistributedConfig config);
  ~DistributedTrainer();

  DistributedTrainer(const DistributedTrainer&) = delete;
  DistributedTrainer& operator=(const DistributedTrainer&) = delete;

  /// One synchronous iteration over a global batch: rank r trains rows
  /// [floor(r*B/N), floor((r+1)*B/N)) and the four exchanges run for
  /// real. Returns the global mean loss (identical on every rank).
  /// Throws std::invalid_argument on an empty batch, or in RecD mode
  /// on a batch without IKJT groups — validated up front, before any
  /// rank thread starts. If a rank nonetheless fails mid-exchange
  /// (e.g. allocation failure), the collectives abort so every peer
  /// unwinds, the first failure is rethrown, and the trainer is
  /// poisoned: later Steps throw too.
  float Step(const reader::PreprocessedBatch& batch);

  [[nodiscard]] const ModelConfig& model() const { return model_; }
  [[nodiscard]] const DistributedConfig& config() const { return config_; }

  /// Exchange counters accumulated across Steps — a by-value view
  /// assembled from the group's per-(rank, exchange) byte series and
  /// the trainer's dedupe-accounting counters (§14: the registry is
  /// the single source of truth, this struct is a projection of it).
  [[nodiscard]] ExchangeCounters rank_counters(std::size_t rank) const;
  [[nodiscard]] ExchangeCounters TotalCounters() const;

  /// Trainer-level registry (`train.values_logical` / `_shipped`
  /// labeled {rank}); comm series live in comm_metrics().
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }
  /// The collective group's registry: `comm.bytes_sent`,
  /// `comm.wait_us`, `comm.exchange_us` labeled {rank, exchange}.
  [[nodiscard]] const obs::Registry& comm_metrics() const {
    return group_.metrics();
  }

  /// Embedding-tier counters summed over every rank's shard — all-zero
  /// unless model.tiering.enabled (docs/ARCHITECTURE.md §13).
  [[nodiscard]] embstore::TierStats TierStatsTotal() const;
  void ResetTierStats();

  /// Placement: which rank owns table `table_id` (ModelTableOrder
  /// index).
  [[nodiscard]] std::size_t OwnerOfTable(std::size_t table_id) const;

  /// Weight access for the bitwise-equality tests.
  [[nodiscard]] const nn::Mlp& bottom_mlp(std::size_t rank) const;
  [[nodiscard]] const nn::Mlp& top_mlp(std::size_t rank) const;
  /// The (single) sharded copy of table `table_id`, wherever it lives.
  [[nodiscard]] const nn::EmbeddingTable& table(std::size_t table_id) const;

  /// Restores a checkpoint into this trainer: every rank's MLP
  /// replicas take the checkpointed dense weights, and each
  /// checkpointed table lands on whichever rank owns it *here* —
  /// tables are keyed by ModelTableOrder id, so a checkpoint taken at
  /// rank count R reshard-restores at any valid rank count R'. Throws
  /// CheckpointError when the checkpoint's model fingerprint does not
  /// match this trainer's model (never a silent wrong restore).
  void LoadState(const TrainerCheckpoint& checkpoint);

 private:
  struct RankState;

  /// `expanded[u]` carries unit u's pre-expanded per-feature tensors
  /// (built once on the caller thread, shared read-only across ranks);
  /// empty for the units RecD mode ships deduplicated.
  void RunRank(std::size_t rank, const reader::PreprocessedBatch& batch,
               const std::vector<std::vector<tensor::JaggedTensor>>& expanded,
               const std::vector<std::size_t>& rank_bounds, float* loss_out);

  ModelConfig model_;
  DistributedConfig config_;
  std::vector<PlacementUnit> units_;
  std::vector<std::size_t> unit_owner_;   // unit index -> rank
  std::vector<std::size_t> table_owner_;  // table id -> rank
  obs::Registry metrics_;  // before ranks_: RankStates cache handles
  std::vector<std::unique_ptr<RankState>> ranks_;
  CollectiveGroup group_;
};

}  // namespace recd::train
