#include "train/distributed.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "tensor/jagged_ops.h"
#include "train/checkpoint.h"
#include "train/reference.h"

namespace recd::train {

namespace {

// SDD all-to-all framing (all values std::int64_t):
//   dedup unit:  [m, U, inverse(m), per feature: n, offsets(U), values(n)]
//   plain unit:  per feature: [m, n, offsets(m), values(n)]
// Sender and receiver both walk the unit list in global unit order
// filtered to the destination/owner, so the frame needs no unit tags.

void AppendJagged(std::vector<std::int64_t>& out,
                  const tensor::JaggedTensor& jt) {
  out.push_back(static_cast<std::int64_t>(jt.total_values()));
  out.insert(out.end(), jt.offsets().begin(), jt.offsets().end());
  out.insert(out.end(), jt.values().begin(), jt.values().end());
}

std::int64_t ReadInt(const std::vector<std::int64_t>& buf,
                     std::size_t& pos) {
  if (pos >= buf.size()) {
    throw std::runtime_error("DistributedTrainer: truncated SDD frame");
  }
  return buf[pos++];
}

tensor::JaggedTensor ReadJagged(const std::vector<std::int64_t>& buf,
                                std::size_t& pos, std::size_t rows) {
  const auto n_raw = ReadInt(buf, pos);
  // Overflow-safe bounds check: counts come off the wire.
  if (n_raw < 0 || rows > buf.size() - pos ||
      static_cast<std::size_t>(n_raw) > buf.size() - pos - rows) {
    throw std::runtime_error("DistributedTrainer: truncated SDD frame");
  }
  const auto n = static_cast<std::size_t>(n_raw);
  std::vector<tensor::Offset> offsets(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                                      buf.begin() + static_cast<std::ptrdiff_t>(pos + rows));
  pos += rows;
  std::vector<tensor::Id> values(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                                 buf.begin() + static_cast<std::ptrdiff_t>(pos + n));
  pos += n;
  return tensor::JaggedTensor(std::move(values), std::move(offsets));
}

std::vector<float> FlattenGrads(const nn::MlpGradients& bottom,
                                const nn::MlpGradients& top) {
  std::vector<float> flat;
  for (const auto* g : {&bottom, &top}) {
    for (std::size_t l = 0; l < g->grad_w.size(); ++l) {
      const auto w = g->grad_w[l].data();
      flat.insert(flat.end(), w.begin(), w.end());
      flat.insert(flat.end(), g->grad_b[l].begin(), g->grad_b[l].end());
    }
  }
  return flat;
}

void UnflattenGrads(std::span<const float> flat, nn::MlpGradients& bottom,
                    nn::MlpGradients& top) {
  std::size_t pos = 0;
  for (auto* g : {&bottom, &top}) {
    for (std::size_t l = 0; l < g->grad_w.size(); ++l) {
      auto w = g->grad_w[l].data();
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                flat.begin() + static_cast<std::ptrdiff_t>(pos + w.size()),
                w.begin());
      pos += w.size();
      std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                flat.begin() +
                    static_cast<std::ptrdiff_t>(pos + g->grad_b[l].size()),
                g->grad_b[l].begin());
      pos += g->grad_b[l].size();
    }
  }
  if (pos != flat.size()) {
    throw std::runtime_error("DistributedTrainer: all-reduce width mismatch");
  }
}

const tensor::InverseKeyedJaggedTensor* FindGroup(
    const reader::PreprocessedBatch& batch,
    const std::vector<std::string>& features) {
  for (const auto& g : batch.groups) {
    if (g.keys() == features) return &g;
  }
  return nullptr;
}

bool BatchHasFeature(const reader::PreprocessedBatch& batch,
                     const std::string& feature) {
  if (batch.kjt.Has(feature)) return true;
  for (const auto& g : batch.groups) {
    for (const auto& key : g.keys()) {
      if (key == feature) return true;
    }
  }
  for (const auto& p : batch.partials) {
    if (p.key() == feature) return true;
  }
  return false;
}

}  // namespace

void ExchangeCounters::Add(const ExchangeCounters& other) {
  sdd_bytes += other.sdd_bytes;
  emb_bytes += other.emb_bytes;
  grad_bytes += other.grad_bytes;
  allreduce_bytes += other.allreduce_bytes;
  values_logical += other.values_logical;
  values_shipped += other.values_shipped;
}

struct DistributedTrainer::RankState {
  nn::Mlp bottom;
  nn::Mlp top;
  nn::FeatureInteraction interaction;
  nn::EmbeddingShardView shard;
  // Dedupe-accounting series, registered in the trainer's registry and
  // cached here (one writer: this rank's thread).
  obs::Counter* values_logical = nullptr;
  obs::Counter* values_shipped = nullptr;

  RankState(const ModelConfig& model, std::uint64_t seed,
            kernels::KernelBackend backend)
      : bottom([&] {
          common::Rng rng(seed);
          return nn::Mlp(model.BottomMlpDims(), rng);
        }()),
        top([&] {
          common::Rng rng(seed + 1);
          return nn::Mlp(model.TopMlpDims(), rng);
        }()) {
    bottom.set_backend(backend);
    top.set_backend(backend);
  }
};

DistributedTrainer::DistributedTrainer(ModelConfig model,
                                       DistributedConfig config)
    : model_(std::move(model)),
      config_(config),
      units_(ModelPlacementUnits(model_)),
      group_(config.num_ranks == 0 ? 1 : config.num_ranks,
             CollectiveOptions{.peer_timeout = config.peer_timeout,
                               .injector = config.injector}) {
  if (config_.num_ranks == 0 || kGradChunks % config_.num_ranks != 0) {
    throw std::invalid_argument(
        "DistributedTrainer: num_ranks must divide kGradChunks (" +
        std::to_string(kGradChunks) + ")");
  }
  ranks_.reserve(config_.num_ranks);
  for (std::size_t r = 0; r < config_.num_ranks; ++r) {
    ranks_.push_back(std::make_unique<RankState>(model_, config_.seed,
                                                 config_.backend));
    const obs::Labels labels = {{"rank", std::to_string(r)}};
    ranks_.back()->values_logical =
        &metrics_.GetCounter("train.values_logical", labels);
    ranks_.back()->values_shipped =
        &metrics_.GetCounter("train.values_shipped", labels);
  }
  // Shard the tables: one construction pass in canonical table order
  // from the shared stream (matching ReferenceDlrm), each table handed
  // to its owning rank — shared-nothing, exactly one copy anywhere.
  unit_owner_.resize(units_.size());
  table_owner_.assign(model_.num_tables(), 0);
  common::Rng rng(config_.seed + 2);
  for (std::size_t u = 0; u < units_.size(); ++u) {
    unit_owner_[u] = u % config_.num_ranks;
    for (const auto tid : units_[u].table_ids) {
      nn::EmbeddingTable table(model_.emb_hash_size, model_.emb_dim, rng);
      table.set_backend(config_.backend);
      // Tiering after construction: the shared RNG stream is consumed
      // identically with or without it, so shards match ReferenceDlrm
      // bitwise (tier-placement determinism, docs/ARCHITECTURE.md §13).
      if (model_.tiering.enabled) table.UseTieredStore(model_.tiering);
      ranks_[unit_owner_[u]]->shard.AddTable(tid, std::move(table));
      table_owner_[tid] = unit_owner_[u];
    }
  }
}

DistributedTrainer::~DistributedTrainer() = default;

ExchangeCounters DistributedTrainer::rank_counters(std::size_t rank) const {
  ExchangeCounters c;
  c.sdd_bytes = group_.exchange_bytes(rank, Exchange::kSdd);
  c.emb_bytes = group_.exchange_bytes(rank, Exchange::kEmb);
  c.grad_bytes = group_.exchange_bytes(rank, Exchange::kGrad);
  c.allreduce_bytes = group_.exchange_bytes(rank, Exchange::kAllReduce);
  c.values_logical = static_cast<std::size_t>(
      ranks_.at(rank)->values_logical->Value());
  c.values_shipped = static_cast<std::size_t>(
      ranks_.at(rank)->values_shipped->Value());
  return c;
}

ExchangeCounters DistributedTrainer::TotalCounters() const {
  ExchangeCounters total;
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    total.Add(rank_counters(r));
  }
  return total;
}

embstore::TierStats DistributedTrainer::TierStatsTotal() const {
  embstore::TierStats total;
  for (const auto& r : ranks_) total += r->shard.TierStatsTotal();
  return total;
}

void DistributedTrainer::ResetTierStats() {
  for (const auto& r : ranks_) r->shard.ResetTierStats();
}

std::size_t DistributedTrainer::OwnerOfTable(std::size_t table_id) const {
  return table_owner_.at(table_id);
}

const nn::Mlp& DistributedTrainer::bottom_mlp(std::size_t rank) const {
  return ranks_.at(rank)->bottom;
}

const nn::Mlp& DistributedTrainer::top_mlp(std::size_t rank) const {
  return ranks_.at(rank)->top;
}

const nn::EmbeddingTable& DistributedTrainer::table(
    std::size_t table_id) const {
  return ranks_.at(table_owner_.at(table_id))->shard.Table(table_id);
}

void DistributedTrainer::LoadState(const TrainerCheckpoint& checkpoint) {
  // Fingerprint gate: a checkpoint from a different model (or seed
  // lineage) must be rejected outright, never partially applied.
  const auto to_u64 = [](const std::vector<std::size_t>& v) {
    return std::vector<std::uint64_t>(v.begin(), v.end());
  };
  if (checkpoint.emb_dim != model_.emb_dim ||
      checkpoint.emb_hash_size != model_.emb_hash_size ||
      checkpoint.bottom_dims != to_u64(model_.BottomMlpDims()) ||
      checkpoint.top_dims != to_u64(model_.TopMlpDims()) ||
      checkpoint.tables.size() != model_.num_tables()) {
    throw CheckpointError(
        "DistributedTrainer::LoadState: checkpoint model fingerprint does "
        "not match this trainer's model");
  }
  if (checkpoint.seed != config_.seed) {
    throw CheckpointError(
        "DistributedTrainer::LoadState: checkpoint seed " +
        std::to_string(checkpoint.seed) + " != trainer seed " +
        std::to_string(config_.seed) + " (different init lineage)");
  }
  if (checkpoint.bottom_w.size() != ranks_[0]->bottom.num_layers() ||
      checkpoint.top_w.size() != ranks_[0]->top.num_layers()) {
    throw CheckpointError(
        "DistributedTrainer::LoadState: checkpoint MLP layer count does "
        "not match this trainer's model");
  }
  // Reshard-restore: every rank's replicas take the dense weights, and
  // each table (keyed by ModelTableOrder id) lands on whichever rank
  // owns it under *this* trainer's placement — a checkpoint taken at
  // rank count R restores at any valid R'. Shape mismatches surface as
  // std::invalid_argument from the load paths below, but the
  // fingerprint gate above makes them unreachable in practice.
  for (auto& rank : ranks_) {
    for (std::size_t i = 0; i < checkpoint.bottom_w.size(); ++i) {
      rank->bottom.LoadLayerParameters(i, checkpoint.bottom_w[i],
                                       checkpoint.bottom_b[i]);
    }
    for (std::size_t i = 0; i < checkpoint.top_w.size(); ++i) {
      rank->top.LoadLayerParameters(i, checkpoint.top_w[i],
                                    checkpoint.top_b[i]);
    }
  }
  for (std::size_t t = 0; t < checkpoint.tables.size(); ++t) {
    ranks_[table_owner_[t]]->shard.Table(t).LoadWeights(checkpoint.tables[t]);
  }
}

float DistributedTrainer::Step(const reader::PreprocessedBatch& batch) {
  const std::size_t batch_size = batch.batch_size;
  const std::size_t num_ranks = config_.num_ranks;
  if (batch_size == 0) {
    throw std::invalid_argument("DistributedTrainer: empty batch");
  }
  if (batch.dense.size() != batch_size * model_.dense_dim ||
      batch.labels.size() != batch_size) {
    throw std::invalid_argument(
        "DistributedTrainer: dense/labels size mismatch");
  }
  // Validate inputs up front, on the caller thread: RunRank must not
  // throw mid-exchange (a rank erroring out between barriers would
  // strand its peers).
  for (const auto& unit : units_) {
    if (config_.recd && unit.deduplicated()) {
      if (FindGroup(batch, unit.features) == nullptr) {
        throw std::invalid_argument(
            "DistributedTrainer: recd mode requires an IKJT group for "
            "feature " +
            unit.features.front());
      }
    } else {
      for (const auto& f : unit.features) {
        if (!BatchHasFeature(batch, f)) {
          throw std::invalid_argument(
              "DistributedTrainer: feature missing from batch: " + f);
        }
      }
    }
  }

  // Pre-expand every unit that ships expanded rows, once, on the
  // caller thread — integer-only work the rank threads then slice
  // read-only instead of each re-expanding the full batch. Dedup
  // units in RecD mode are sliced from the IKJT per rank instead.
  std::vector<std::vector<tensor::JaggedTensor>> expanded(units_.size());
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (config_.recd && units_[u].deduplicated()) continue;
    expanded[u].reserve(units_[u].features.size());
    for (const auto& f : units_[u].features) {
      expanded[u].push_back(ExpandedFeature(batch, f));
    }
  }

  // Rank r trains rows [bounds[r*K/N], bounds[(r+1)*K/N]) — sub-batch
  // boundaries are canonical chunk boundaries by construction.
  const auto chunk_bounds = GradChunkBounds(batch_size);
  const std::size_t chunks_per_rank = kGradChunks / num_ranks;
  std::vector<std::size_t> rank_bounds(num_ranks + 1);
  for (std::size_t r = 0; r <= num_ranks; ++r) {
    rank_bounds[r] = chunk_bounds[r * chunks_per_rank];
  }

  std::vector<float> losses(num_ranks, 0.0f);
  if (num_ranks == 1) {
    RunRank(0, batch, expanded, rank_bounds, &losses[0]);
    return losses[0];
  }
  // Should a rank still fail mid-exchange (allocation failure, frame
  // corruption), the collectives are aborted so every peer unwinds
  // instead of waiting at a barrier forever; the first failure is
  // rethrown and the trainer is poisoned (later Steps throw too).
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> threads;
  threads.reserve(num_ranks);
  for (std::size_t r = 0; r < num_ranks; ++r) {
    threads.emplace_back(
        [this, r, &batch, &expanded, &rank_bounds, &losses, &error_mutex,
         &first_error] {
          try {
            RunRank(r, batch, expanded, rank_bounds, &losses[r]);
          } catch (...) {
            {
              std::lock_guard<std::mutex> lock(error_mutex);
              if (!first_error) first_error = std::current_exception();
            }
            group_.Abort();
          }
        });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return losses[0];
}

void DistributedTrainer::RunRank(
    std::size_t rank, const reader::PreprocessedBatch& batch,
    const std::vector<std::vector<tensor::JaggedTensor>>& expanded,
    const std::vector<std::size_t>& rank_bounds, float* loss_out) {
  RankState& st = *ranks_[rank];
  // One span per rank per step; the four exchange spans nest inside.
  obs::Tracer::Scope step_span("train/step", "rank",
                               static_cast<std::int64_t>(rank));
  const std::size_t num_ranks = config_.num_ranks;
  const std::size_t batch_size = batch.batch_size;
  const std::size_t lo = rank_bounds[rank];
  const std::size_t hi = rank_bounds[rank + 1];
  const std::size_t local_rows = hi - lo;
  const std::size_t d = model_.emb_dim;
  // Per-exchange byte accounting happens inside the group (tagged
  // counters keyed {rank, exchange}); RunRank only tracks the dedupe
  // value accounting it alone can see.
  std::size_t values_logical = 0;
  std::size_t values_shipped = 0;

  // --- Phase 0: local input prep (this rank's reader shard). In RecD
  // mode dedup units carry the slice-rebased IKJT; everything else is
  // expanded rows.
  struct LocalInput {
    bool dedup = false;
    tensor::InverseKeyedJaggedTensor ikjt;
    std::vector<tensor::JaggedTensor> expanded;
  };
  std::vector<LocalInput> local(units_.size());
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (config_.recd && units_[u].deduplicated()) {
      local[u].dedup = true;
      local[u].ikjt =
          tensor::SliceIkjt(*FindGroup(batch, units_[u].features), lo, hi);
    } else {
      for (const auto& jt : expanded[u]) {
        local[u].expanded.push_back(tensor::SliceJaggedRows(jt, lo, hi));
      }
    }
  }

  // --- Phase 1: SDD all-to-all (sparse ids to the table owners).
  std::vector<std::vector<std::int64_t>> sdd_send(num_ranks);
  for (std::size_t u = 0; u < units_.size(); ++u) {
    auto& out = sdd_send[unit_owner_[u]];
    if (local[u].dedup) {
      const auto& ik = local[u].ikjt;
      out.push_back(static_cast<std::int64_t>(local_rows));
      out.push_back(static_cast<std::int64_t>(ik.unique_rows()));
      out.insert(out.end(), ik.inverse_lookup().begin(),
                 ik.inverse_lookup().end());
      for (std::size_t k = 0; k < ik.num_keys(); ++k) {
        AppendJagged(out, ik.unique(k));
      }
      // Dedupe accounting: logical (expanded) vs shipped values.
      for (const auto inv : ik.inverse_lookup()) {
        for (std::size_t k = 0; k < ik.num_keys(); ++k) {
          values_logical += static_cast<std::size_t>(
              ik.unique(k).length(static_cast<std::size_t>(inv)));
        }
      }
      values_shipped += ik.total_unique_values();
    } else {
      for (const auto& jt : local[u].expanded) {
        out.push_back(static_cast<std::int64_t>(local_rows));
        AppendJagged(out, jt);
        if (units_[u].deduplicated()) {
          values_logical += jt.total_values();
          values_shipped += jt.total_values();
        }
      }
    }
  }
  st.values_logical->Add(static_cast<std::int64_t>(values_logical));
  st.values_shipped->Add(static_cast<std::int64_t>(values_shipped));
  auto sdd_recv =
      group_.AllToAll<std::int64_t>(rank, std::move(sdd_send), Exchange::kSdd);

  // Parse what each source rank sent for the units this rank owns.
  struct OwnedInput {
    std::vector<tensor::JaggedTensor> jts;  // unique (recd) or expanded
    std::vector<std::int64_t> inverse;      // recd dedup units only
  };
  std::vector<std::size_t> owned_units;
  for (std::size_t u = 0; u < units_.size(); ++u) {
    if (unit_owner_[u] == rank) owned_units.push_back(u);
  }
  // owned_in[i][s]: owned unit i as sent by source rank s.
  std::vector<std::vector<OwnedInput>> owned_in(
      owned_units.size(), std::vector<OwnedInput>(num_ranks));
  for (std::size_t s = 0; s < num_ranks; ++s) {
    const auto& buf = sdd_recv[s];
    const std::size_t src_rows = rank_bounds[s + 1] - rank_bounds[s];
    std::size_t pos = 0;
    for (std::size_t i = 0; i < owned_units.size(); ++i) {
      const auto& unit = units_[owned_units[i]];
      auto& in = owned_in[i][s];
      if (config_.recd && unit.deduplicated()) {
        const auto m = static_cast<std::size_t>(ReadInt(buf, pos));
        const auto uniq = static_cast<std::size_t>(ReadInt(buf, pos));
        if (m != src_rows) {
          throw std::runtime_error("DistributedTrainer: SDD row mismatch");
        }
        if (m > buf.size() - pos) {
          throw std::runtime_error("DistributedTrainer: truncated SDD frame");
        }
        in.inverse.assign(buf.begin() + static_cast<std::ptrdiff_t>(pos),
                          buf.begin() + static_cast<std::ptrdiff_t>(pos + m));
        pos += m;
        for (std::size_t k = 0; k < unit.features.size(); ++k) {
          in.jts.push_back(ReadJagged(buf, pos, uniq));
        }
      } else {
        for (std::size_t k = 0; k < unit.features.size(); ++k) {
          const auto m = static_cast<std::size_t>(ReadInt(buf, pos));
          if (m != src_rows) {
            throw std::runtime_error("DistributedTrainer: SDD row mismatch");
          }
          in.jts.push_back(ReadJagged(buf, pos, m));
        }
      }
    }
    if (pos != buf.size()) {
      throw std::runtime_error("DistributedTrainer: trailing SDD bytes");
    }
  }

  // --- Phase 2: owner-side lookup + pooling, then the embedding
  // all-to-all (pooled rows back to the data-parallel ranks). In RecD
  // mode the owner pools *unique* rows (O5/O7 across ranks) and ships
  // those; the receiver expands through its local inverse afterwards.
  std::vector<std::vector<float>> emb_send(num_ranks);
  for (std::size_t i = 0; i < owned_units.size(); ++i) {
    const auto& unit = units_[owned_units[i]];
    for (std::size_t s = 0; s < num_ranks; ++s) {
      const auto& in = owned_in[i][s];
      nn::DenseMatrix pooled;
      if (unit.kind == PlacementUnit::Kind::kSequenceGroup) {
        std::vector<const tensor::JaggedTensor*> jts;
        std::vector<const nn::EmbeddingTable*> tables;
        for (std::size_t k = 0; k < unit.features.size(); ++k) {
          jts.push_back(&in.jts[k]);
          tables.push_back(&st.shard.Table(unit.table_ids[k]));
        }
        pooled = SumPoolConcatGroup(config_.backend, jts, tables);
      } else {
        pooled = st.shard.Table(unit.table_ids[0])
                     .PooledForward(in.jts[0], nn::PoolingKind::kSum);
      }
      const auto data = pooled.data();
      emb_send[s].insert(emb_send[s].end(), data.begin(), data.end());
    }
  }
  auto emb_recv =
      group_.AllToAll<float>(rank, std::move(emb_send), Exchange::kEmb);

  // Reassemble this rank's pooled inputs (one batch-rows x d matrix per
  // unit, in unit order — the interaction input order).
  std::vector<nn::DenseMatrix> pooled_units(units_.size());
  std::vector<std::size_t> read_pos(num_ranks, 0);
  for (std::size_t u = 0; u < units_.size(); ++u) {
    const std::size_t owner = unit_owner_[u];
    const std::size_t rows =
        local[u].dedup ? local[u].ikjt.unique_rows() : local_rows;
    nn::DenseMatrix pm(rows, d);
    const auto& buf = emb_recv[owner];
    if (read_pos[owner] + rows * d > buf.size()) {
      throw std::runtime_error("DistributedTrainer: truncated pooled rows");
    }
    std::copy(buf.begin() + static_cast<std::ptrdiff_t>(read_pos[owner]),
              buf.begin() +
                  static_cast<std::ptrdiff_t>(read_pos[owner] + rows * d),
              pm.data().begin());
    read_pos[owner] += rows * d;
    pooled_units[u] = local[u].dedup
                          ? ExpandRows(pm, local[u].ikjt.inverse_lookup())
                          : std::move(pm);
  }

  // --- Phase 3: replicated dense forward/backward per canonical chunk
  // (fixed-order partials for the deterministic all-reduce).
  std::vector<std::pair<std::size_t, std::vector<float>>> grad_chunks;
  std::vector<std::pair<std::size_t, std::vector<double>>> loss_chunks;
  std::vector<nn::DenseMatrix> unit_grads(units_.size());
  for (std::size_t u = 0; u < units_.size(); ++u) {
    unit_grads[u] = nn::DenseMatrix(local_rows, d);
  }
  nn::DenseMatrix dense_local(local_rows, model_.dense_dim);
  std::copy(batch.dense.begin() +
                static_cast<std::ptrdiff_t>(lo * model_.dense_dim),
            batch.dense.begin() +
                static_cast<std::ptrdiff_t>(hi * model_.dense_dim),
            dense_local.data().begin());
  const auto chunk_bounds = GradChunkBounds(batch_size);
  const std::size_t chunks_per_rank = kGradChunks / num_ranks;
  for (std::size_t c = rank * chunks_per_rank;
       c < (rank + 1) * chunks_per_rank; ++c) {
    const std::size_t clo = chunk_bounds[c] - lo;    // rank-local rows
    const std::size_t chi = chunk_bounds[c + 1] - lo;
    if (clo == chi) continue;
    const std::size_t rows = chi - clo;

    nn::DenseMatrix bottom =
        st.bottom.Forward(nn::SliceRows(dense_local, clo, chi));

    std::vector<nn::DenseMatrix> chunk_pooled;
    chunk_pooled.reserve(units_.size());
    for (std::size_t u = 0; u < units_.size(); ++u) {
      chunk_pooled.push_back(nn::SliceRows(pooled_units[u], clo, chi));
    }
    std::vector<const nn::DenseMatrix*> ptrs;
    ptrs.push_back(&bottom);
    for (const auto& m : chunk_pooled) ptrs.push_back(&m);
    nn::DenseMatrix interacted = st.interaction.Forward(ptrs);
    nn::DenseMatrix logits = st.top.Forward(interacted);
    const auto labels =
        std::span<const float>(batch.labels).subspan(lo + clo, rows);
    loss_chunks.emplace_back(
        c, std::vector<double>{
               nn::BceWithLogitsLossSum(config_.backend, logits, labels)});

    nn::DenseMatrix grad_logits =
        nn::BceWithLogitsGrad(config_.backend, logits, labels, batch_size);
    nn::DenseMatrix grad_interacted = st.top.Backward(grad_logits);
    std::vector<nn::DenseMatrix> grad_inputs;
    st.interaction.Backward(grad_interacted, ptrs, grad_inputs);
    (void)st.bottom.Backward(grad_inputs[0]);
    auto bottom_grads = st.bottom.TakeGradients();
    auto top_grads = st.top.TakeGradients();
    grad_chunks.emplace_back(c, FlattenGrads(bottom_grads, top_grads));

    for (std::size_t u = 0; u < units_.size(); ++u) {
      const auto src = grad_inputs[1 + u].data();
      auto dst = unit_grads[u].data();
      std::copy(src.begin(), src.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(clo * d));
    }
  }

  // --- Phase 4: mirror gradient all-to-all; owners apply the sparse
  // updates in global batch-row order (source ranks ascending), the
  // same per-feature order ReferenceDlrm uses.
  std::vector<std::vector<float>> grad_send(num_ranks);
  for (std::size_t u = 0; u < units_.size(); ++u) {
    const auto data = unit_grads[u].data();
    grad_send[unit_owner_[u]].insert(grad_send[unit_owner_[u]].end(),
                                     data.begin(), data.end());
  }
  auto grad_recv =
      group_.AllToAll<float>(rank, std::move(grad_send), Exchange::kGrad);

  std::vector<std::size_t> grad_pos(num_ranks, 0);
  for (std::size_t i = 0; i < owned_units.size(); ++i) {
    const auto& unit = units_[owned_units[i]];
    for (std::size_t s = 0; s < num_ranks; ++s) {
      const std::size_t src_rows = rank_bounds[s + 1] - rank_bounds[s];
      const auto& buf = grad_recv[s];
      if (grad_pos[s] + src_rows * d > buf.size()) {
        throw std::runtime_error("DistributedTrainer: truncated gradients");
      }
      nn::DenseMatrix grads(src_rows, d);
      std::copy(buf.begin() + static_cast<std::ptrdiff_t>(grad_pos[s]),
                buf.begin() +
                    static_cast<std::ptrdiff_t>(grad_pos[s] + src_rows * d),
                grads.data().begin());
      grad_pos[s] += src_rows * d;
      const auto& in = owned_in[i][s];
      for (std::size_t k = 0; k < unit.features.size(); ++k) {
        if (config_.recd && unit.deduplicated()) {
          // O6 on the owner: integer id expansion; float grads apply
          // per expanded row, preserving the reference update order.
          st.shard.Table(unit.table_ids[k])
              .ApplyPooledGradient(
                  tensor::JaggedIndexSelect(in.jts[k], in.inverse), grads,
                  nn::PoolingKind::kSum, config_.lr);
        } else {
          st.shard.Table(unit.table_ids[k])
              .ApplyPooledGradient(in.jts[k], grads, nn::PoolingKind::kSum,
                                   config_.lr);
        }
      }
    }
  }

  // --- Phase 5: fixed-order MLP gradient all-reduce + replicated step.
  const std::size_t width = grad_chunks.empty()
                                ? FlattenGrads(st.bottom.ZeroGradients(),
                                               st.top.ZeroGradients())
                                      .size()
                                : grad_chunks.front().second.size();
  auto reduced = group_.AllReduceSum<float>(rank, grad_chunks, width,
                                           Exchange::kAllReduce);
  auto loss_reduced = group_.AllReduceSum<double>(rank, loss_chunks, 1,
                                                 Exchange::kAllReduce);

  nn::MlpGradients bottom_total = st.bottom.ZeroGradients();
  nn::MlpGradients top_total = st.top.ZeroGradients();
  UnflattenGrads(reduced, bottom_total, top_total);
  st.bottom.AccumulateGradients(bottom_total);
  st.top.AccumulateGradients(top_total);
  st.bottom.Step(config_.lr);
  st.top.Step(config_.lr);
  *loss_out =
      static_cast<float>(loss_reduced[0] / static_cast<double>(batch_size));
}

}  // namespace recd::train
