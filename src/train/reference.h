// Reference DLRM with real math on a single device.
//
// Two purposes (docs/ARCHITECTURE.md §4): (1) prove the paper's claim that "IKJTs
// encode the exact same logical data as KJTs" — the RecD forward path
// (pool unique rows, expand through inverse_lookup) must produce results
// identical to the baseline path (expand first, pool everything); and
// (2) run the §6.2 accuracy experiment (clustered vs interleaved batches)
// with genuine gradient updates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kernels/backend.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/interaction.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "reader/batch.h"
#include "train/model.h"

namespace recd::train {

/// The canonical accumulation granularity of training-step reductions
/// (per-layer dW/db sums and the batch loss sum). Both
/// ReferenceDlrm::TrainStep and the executed distributed trainer
/// compute per-chunk partials (chunk c covers batch rows
/// [floor(c*B/K), floor((c+1)*B/K))) and combine them from zeros in
/// ascending chunk order, so any rank count that divides kGradChunks
/// produces bitwise-identical weights and losses (float sums are not
/// associative; a fixed reduction tree makes the split invisible).
inline constexpr std::size_t kGradChunks = 4;

/// Row boundaries of the canonical chunks: kGradChunks + 1 entries,
/// bounds[c] = floor(c * batch_size / kGradChunks).
[[nodiscard]] std::vector<std::size_t> GradChunkBounds(
    std::size_t batch_size);

/// Looks up the expanded (batch-rows) jagged tensor of `feature` in a
/// batch, reconstructing from an IKJT when the feature was deduplicated.
[[nodiscard]] tensor::JaggedTensor ExpandedFeature(
    const reader::PreprocessedBatch& batch, const std::string& feature);

/// Gathers rows: out(i, :) = pooled(inverse[i], :). The RecD post-pooling
/// expansion (dense index-select through the local inverse_lookup).
[[nodiscard]] nn::DenseMatrix ExpandRows(
    const nn::DenseMatrix& pooled, std::span<const std::int64_t> inverse);

/// Sum-pools the concatenation of a sequence group's per-feature
/// sequences: out(r, :) = sum of every looked-up embedding of row r
/// across the group's features, in concatenation order. The TrainStep
/// pooling path for sequence groups (attention backward is out of
/// scope), shared with the distributed trainer so the sharded owner
/// runs the identical float-op sequence. `jts` and `tables` pair up
/// per feature and must all have the same row count and dim.
[[nodiscard]] nn::DenseMatrix SumPoolConcatGroup(
    const std::vector<const tensor::JaggedTensor*>& jts,
    const std::vector<const nn::EmbeddingTable*>& tables);

/// Backend-pinned variant (the overload above uses
/// kernels::DefaultBackend()); bitwise-identical across backends.
[[nodiscard]] nn::DenseMatrix SumPoolConcatGroup(
    kernels::KernelBackend backend,
    const std::vector<const tensor::JaggedTensor*>& jts,
    const std::vector<const nn::EmbeddingTable*>& tables);

class ReferenceDlrm {
 public:
  ReferenceDlrm(ModelConfig model, std::uint64_t seed);

  /// Forward to logits (batch_size x 1). `recd` selects the deduplicated
  /// compute path; it requires the batch to carry IKJT groups. The
  /// baseline path accepts either batch form (IKJTs are expanded first).
  [[nodiscard]] nn::DenseMatrix Forward(
      const reader::PreprocessedBatch& batch, bool recd);

  /// One SGD step (forward, BCE loss, backward, update). Uses sum
  /// pooling for sequence groups regardless of the attention flag
  /// (attention backward is out of scope). Gradient and loss sums
  /// accumulate per canonical chunk (kGradChunks) and combine in fixed
  /// chunk order — the single-rank gold standard the distributed
  /// trainer must match bitwise. Returns the batch loss.
  float TrainStep(const reader::PreprocessedBatch& batch, float lr);

  /// Mean BCE loss without updating parameters.
  [[nodiscard]] float EvalLoss(const reader::PreprocessedBatch& batch);

  [[nodiscard]] const ModelConfig& model() const { return model_; }

  /// Parameter access for the distributed bitwise-equality tests.
  [[nodiscard]] const nn::Mlp& bottom_mlp() const { return bottom_mlp_; }
  [[nodiscard]] const nn::Mlp& top_mlp() const { return top_mlp_; }
  [[nodiscard]] const nn::EmbeddingTable& table(
      const std::string& feature) const;

  /// Aggregate op counters since the last reset (drives micro-benches).
  [[nodiscard]] nn::OpStats Stats() const;
  void ResetStats();

  /// Sum of embedding-tier counters across tables — all-zero unless the
  /// model config enabled embedding tiering (docs/ARCHITECTURE.md §13).
  [[nodiscard]] embstore::TierStats TierStats() const;
  void ResetTierStats();

  /// Pins the kernel backend for every MLP layer, embedding table, and
  /// loss/pooling call of this model (default: the process-wide
  /// kernels::DefaultBackend()). Both backends are bitwise-identical;
  /// the parity tests compare them explicitly.
  void SetKernelBackend(kernels::KernelBackend b);
  [[nodiscard]] kernels::KernelBackend kernel_backend() const {
    return backend_;
  }

 private:
  struct PooledInputs {
    std::vector<nn::DenseMatrix> matrices;
    std::vector<const nn::DenseMatrix*> pointers;  // bottom + pooled
  };
  [[nodiscard]] PooledInputs PoolSparse(
      const reader::PreprocessedBatch& batch, bool recd, bool attention_ok);
  [[nodiscard]] nn::DenseMatrix BottomForward(
      const reader::PreprocessedBatch& batch);

  ModelConfig model_;
  kernels::KernelBackend backend_ = kernels::DefaultBackend();
  nn::Mlp bottom_mlp_;
  nn::Mlp top_mlp_;
  nn::FeatureInteraction interaction_;
  nn::SelfAttentionPooling attention_;
  std::vector<std::string> table_order_;
  std::vector<nn::EmbeddingTable> tables_;

  [[nodiscard]] nn::EmbeddingTable& Table(const std::string& feature);
};

}  // namespace recd::train
