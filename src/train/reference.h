// Reference DLRM with real math on a single device.
//
// Two purposes (docs/ARCHITECTURE.md §4): (1) prove the paper's claim that "IKJTs
// encode the exact same logical data as KJTs" — the RecD forward path
// (pool unique rows, expand through inverse_lookup) must produce results
// identical to the baseline path (expand first, pool everything); and
// (2) run the §6.2 accuracy experiment (clustered vs interleaved batches)
// with genuine gradient updates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/interaction.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "reader/batch.h"
#include "train/model.h"

namespace recd::train {

/// Looks up the expanded (batch-rows) jagged tensor of `feature` in a
/// batch, reconstructing from an IKJT when the feature was deduplicated.
[[nodiscard]] tensor::JaggedTensor ExpandedFeature(
    const reader::PreprocessedBatch& batch, const std::string& feature);

/// Gathers rows: out(i, :) = pooled(inverse[i], :). The RecD post-pooling
/// expansion (dense index-select through the local inverse_lookup).
[[nodiscard]] nn::DenseMatrix ExpandRows(
    const nn::DenseMatrix& pooled, std::span<const std::int64_t> inverse);

class ReferenceDlrm {
 public:
  ReferenceDlrm(ModelConfig model, std::uint64_t seed);

  /// Forward to logits (batch_size x 1). `recd` selects the deduplicated
  /// compute path; it requires the batch to carry IKJT groups. The
  /// baseline path accepts either batch form (IKJTs are expanded first).
  [[nodiscard]] nn::DenseMatrix Forward(
      const reader::PreprocessedBatch& batch, bool recd);

  /// One SGD step (forward, BCE loss, backward, update). Uses sum
  /// pooling for sequence groups regardless of the attention flag
  /// (attention backward is out of scope). Returns the batch loss.
  float TrainStep(const reader::PreprocessedBatch& batch, float lr);

  /// Mean BCE loss without updating parameters.
  [[nodiscard]] float EvalLoss(const reader::PreprocessedBatch& batch);

  [[nodiscard]] const ModelConfig& model() const { return model_; }

  /// Aggregate op counters since the last reset (drives micro-benches).
  [[nodiscard]] nn::OpStats Stats() const;
  void ResetStats();

 private:
  struct PooledInputs {
    std::vector<nn::DenseMatrix> matrices;
    std::vector<const nn::DenseMatrix*> pointers;  // bottom + pooled
  };
  [[nodiscard]] PooledInputs PoolSparse(
      const reader::PreprocessedBatch& batch, bool recd, bool attention_ok);
  [[nodiscard]] nn::DenseMatrix BottomForward(
      const reader::PreprocessedBatch& batch);

  ModelConfig model_;
  nn::Mlp bottom_mlp_;
  nn::Mlp top_mlp_;
  nn::FeatureInteraction interaction_;
  nn::SelfAttentionPooling attention_;
  std::vector<std::string> table_order_;
  std::vector<nn::EmbeddingTable> tables_;

  [[nodiscard]] nn::EmbeddingTable& Table(const std::string& feature);
};

}  // namespace recd::train
