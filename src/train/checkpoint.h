// Deterministic checkpoint/restore + the fault-tolerant elastic runner
// for the executed hybrid-parallel trainer (docs/ARCHITECTURE.md §11).
//
// A TrainerCheckpoint captures everything a run needs to continue:
// the sharded embedding tables (keyed by ModelTableOrder id — i.e. at
// placement-unit granularity, so ownership can be re-derived for any
// rank count), one copy of the replicated bottom/top MLPs (replicas
// are bitwise identical by the distributed determinism rule), the
// optimizer hyperparameters (plain SGD carries no momentum state; the
// format is sectioned so future optimizers can append theirs), and the
// data cursor `next_step`. Serialization is exact — raw IEEE-754 bits,
// no text round trip — and lands on disk under the checksummed
// envelope of common/checksum_file.h.
//
// The restore-determinism rule this module is built around: *kill at
// step j, restore, run to step K* produces weights and losses bitwise
// identical to an uninterrupted K-step run — for any kill rank, any of
// the four exchanges, and any restore rank count in {1, 2, 4}, baseline
// and RecD mode alike. It holds because (a) every step is bitwise
// rank-count-invariant (§10), so state at step j is a pure function of
// (seed, batches 0..j); (b) the checkpoint reproduces that state
// exactly; and (c) a corrupt or truncated checkpoint is *rejected* by
// the checksum envelope, never partially loaded — recovery falls back
// to an older checkpoint or to the seed (step 0), both of which are
// also exact.
//
// FaultTolerantRunner drives the loop production infrastructure runs:
// step, checkpoint every `checkpoint_every` steps, and on a failed
// step (RankFailure from a dead peer, or any rank error) rebuild the
// trainer at the next rank count in `rank_schedule`, restore the
// newest loadable checkpoint, and replay forward.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/dense_matrix.h"
#include "reader/batch.h"
#include "train/distributed.h"
#include "train/fault.h"

namespace recd::train {

/// A checkpoint could not be decoded or does not fit the trainer it
/// was offered to. Always thrown *instead of* a partial restore.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// In-memory image of a checkpoint. `tables[t]` is the weight matrix
/// of ModelTableOrder table t — rank-placement-free, which is what
/// makes restore-at-a-different-rank-count a pure re-mapping.
struct TrainerCheckpoint {
  /// Data cursor: the first step index not yet applied to the weights.
  std::uint64_t next_step = 0;
  /// Model-init seed (restores must agree; a mismatch is a fingerprint
  /// error, because weights from a different seed lineage would still
  /// "fit" shape-wise).
  std::uint64_t seed = 0;
  /// Optimizer section (plain SGD: hyperparameters only).
  float lr = 0.0f;

  /// Model fingerprint, validated on restore.
  std::uint64_t emb_dim = 0;
  std::uint64_t emb_hash_size = 0;
  std::vector<std::uint64_t> bottom_dims;
  std::vector<std::uint64_t> top_dims;

  /// State: embedding tables in ModelTableOrder, then the two MLPs.
  std::vector<nn::DenseMatrix> tables;
  std::vector<nn::DenseMatrix> bottom_w;
  std::vector<std::vector<float>> bottom_b;
  std::vector<nn::DenseMatrix> top_w;
  std::vector<std::vector<float>> top_b;

  /// Total parameter bytes captured (tables + MLPs).
  [[nodiscard]] std::size_t StateBytes() const;
};

/// Snapshots a trainer's full state. `next_step` is the caller's data
/// cursor (steps already applied). Rank-count independent: the same
/// trainer state checkpointed at rank counts 1, 2, and 4 serializes to
/// identical bytes.
[[nodiscard]] TrainerCheckpoint CaptureCheckpoint(
    const DistributedTrainer& trainer, std::uint64_t next_step);

/// Exact (bitwise) serialization to/from the in-memory payload.
[[nodiscard]] std::vector<std::byte> SerializeCheckpoint(
    const TrainerCheckpoint& checkpoint);
[[nodiscard]] TrainerCheckpoint DeserializeCheckpoint(
    std::span<const std::byte> payload);

/// File round trip under the checksummed envelope. LoadCheckpoint
/// throws CheckpointError on any damage — wrong magic, truncation,
/// checksum mismatch, foreign endianness, unsupported version, or a
/// malformed payload.
void SaveCheckpoint(const TrainerCheckpoint& checkpoint,
                    const std::string& path);
[[nodiscard]] TrainerCheckpoint LoadCheckpoint(const std::string& path);

/// Maps `step` to the batch to train on — the runner's data plane.
/// Deterministic per step (the replay after a restore re-requests the
/// same indices).
using BatchProvider =
    std::function<const reader::PreprocessedBatch&(std::size_t step)>;

struct ElasticRunOptions {
  std::size_t total_steps = 0;
  /// Checkpoint cadence in steps (a checkpoint also lands at step 0,
  /// before training, so rollback is always possible).
  std::size_t checkpoint_every = 1;
  /// Directory for ckpt_<step>.rckp files; created if missing.
  std::string checkpoint_dir;
  /// Rank count per incarnation: entry 0 starts the run, entry i runs
  /// after the i-th failure (the last entry repeats) — elasticity as a
  /// schedule. Every entry must divide kGradChunks.
  std::vector<std::size_t> rank_schedule = {1};
  /// Give up (rethrow) after this many recovered failures.
  std::size_t max_failures = 8;
  /// Template for every trainer incarnation (lr, seed, recd,
  /// peer_timeout, injector); num_ranks comes from rank_schedule.
  DistributedConfig trainer;
};

struct ElasticRunResult {
  /// Final per-step losses, 0..total_steps-1. Replayed steps overwrite
  /// their slot with bitwise-identical values (asserted in tests).
  std::vector<float> losses;
  std::size_t failures = 0;
  std::size_t steps_replayed = 0;
  std::size_t checkpoints_written = 0;
  /// Damaged checkpoints skipped while walking back during restores.
  std::size_t corrupt_checkpoints_skipped = 0;
  /// Restores that fell all the way back to the seed (step 0 state
  /// rebuilt from RNG because no checkpoint would load).
  std::size_t seed_restores = 0;
};

class FaultTolerantRunner {
 public:
  /// `injector`, when set, is installed into every trainer incarnation
  /// and offered each written checkpoint file for corruption. Throws
  /// std::invalid_argument on an empty schedule, a rank count that
  /// does not divide kGradChunks, or total_steps == 0.
  FaultTolerantRunner(ModelConfig model, ElasticRunOptions options,
                      FaultInjector* injector = nullptr);
  ~FaultTolerantRunner();

  FaultTolerantRunner(const FaultTolerantRunner&) = delete;
  FaultTolerantRunner& operator=(const FaultTolerantRunner&) = delete;

  /// Runs to total_steps, recovering from failed steps by restoring
  /// the newest loadable checkpoint (or the seed) into a fresh trainer
  /// at the scheduled rank count. Rethrows the last failure once
  /// max_failures is exceeded.
  ElasticRunResult Run(const BatchProvider& batch_for_step);

  /// The surviving trainer after Run — the bitwise-equality surface of
  /// the recovery tests.
  [[nodiscard]] const DistributedTrainer& trainer() const;

  /// ckpt_<step>.rckp path inside checkpoint_dir (exposed for tests).
  [[nodiscard]] std::string CheckpointPath(std::size_t step) const;

 private:
  void Rebuild(std::size_t num_ranks);
  /// Restores the newest loadable checkpoint <= from_step into the
  /// current trainer; returns the restored cursor (0 on seed restore).
  std::size_t RestoreLatest(std::size_t from_step, ElasticRunResult& result);

  ModelConfig model_;
  ElasticRunOptions options_;
  FaultInjector* injector_;
  std::vector<std::size_t> checkpoint_steps_;  // ascending, written this run
  std::unique_ptr<DistributedTrainer> trainer_;
};

}  // namespace recd::train
