// Collective-communication cost models (all-to-all, all-reduce).
//
// DLRM hybrid parallelism (paper Fig 2) runs four collectives per
// iteration: SDD all-to-all (sparse inputs), embedding all-to-all
// (pooled outputs), the mirror-image gradient all-to-all, and the MLP
// gradient all-reduce. Costs follow the standard alpha-beta model with
// per-GPU NIC bandwidth as the bottleneck term.
#pragma once

#include <cstddef>

#include "train/cluster.h"

namespace recd::train {

/// Time for an all-to-all where `total_bytes` is the sum of all data that
/// must cross GPU boundaries (each GPU sends total/N, keeps 1/N of it).
[[nodiscard]] double AllToAllSeconds(const ClusterSpec& cluster,
                                     double total_bytes);

/// Time for a ring all-reduce of `bytes` replicated on every GPU.
[[nodiscard]] double AllReduceSeconds(const ClusterSpec& cluster,
                                      double bytes);

}  // namespace recd::train
