// Fault injection for the executed distributed trainer.
//
// Production DLRM training treats rank death, stragglers, and corrupt
// state as the common case; this hook makes those failures *scriptable*
// so the recovery path (train/checkpoint.h) is testable rather than
// hopeful. A FaultInjector is threaded through train::CollectiveGroup
// (which calls MaybeInject at the start of every tagged exchange) and
// through the checkpoint writer (which offers every written file for
// corruption). Three fault kinds:
//
//   kKillRank          the matching rank throws RankFailure mid-exchange
//                      — after peers may already be blocked on it
//   kDelayRank         the matching rank sleeps `delay` first (straggler
//                      simulation; results must not change, only timing)
//   kCorruptCheckpoint the checkpoint written at `step` gets one payload
//                      byte flipped (restore must reject it and fall
//                      back, never silently load wrong weights)
//
// Faults are single-shot: each armed fault fires at most once, so a
// recovered run that replays the failing step does not die again.
// Thread-safe: rank threads race through MaybeInject while the runner
// advances the step counter.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace recd::train {

/// A rank died (was killed, or observed a dead peer via the collective
/// deadline). The recovery trigger of the fault-tolerant runner.
class RankFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The four executed exchanges of one training step (Fig 2), the
/// injection points of kill/delay faults. kNone tags collectives
/// outside the step loop (never matched by a fault).
enum class Exchange : std::uint8_t {
  kNone,
  kSdd,        // 1: sparse-id all-to-all
  kEmb,        // 2: pooled-row all-to-all
  kGrad,       // 3: mirror gradient all-to-all
  kAllReduce,  // 4: MLP gradient all-reduce
};

[[nodiscard]] const char* ExchangeName(Exchange exchange);

struct Fault {
  enum class Kind : std::uint8_t {
    kKillRank,
    kDelayRank,
    kCorruptCheckpoint
  };
  Kind kind = Kind::kKillRank;
  /// Global step index at which the fault fires (the runner's cursor;
  /// see FaultInjector::BeginStep).
  std::size_t step = 0;
  /// kKillRank / kDelayRank: which rank and which exchange.
  std::size_t rank = 0;
  Exchange exchange = Exchange::kSdd;
  /// kDelayRank only.
  std::chrono::milliseconds delay{0};
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules a fault. May be called repeatedly to arm several.
  void Arm(Fault fault);

  /// Sets the global step the next injections belong to. Called by the
  /// runner (or test) before each trainer Step.
  void BeginStep(std::size_t step);

  /// Called by CollectiveGroup at the start of exchange `exchange` on
  /// rank `rank`: sleeps for a matching kDelayRank fault, throws
  /// RankFailure for a matching kKillRank fault. Each fault fires once.
  void MaybeInject(std::size_t rank, Exchange exchange);

  /// Called by the checkpoint writer after `path` lands for step
  /// `step`: flips one payload byte if a kCorruptCheckpoint fault
  /// matches. Returns true if the file was corrupted.
  bool MaybeCorruptCheckpoint(const std::string& path, std::size_t step);

  /// Faults that have fired so far (all kinds).
  [[nodiscard]] std::size_t faults_fired() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Fault> armed_;  // fired faults are removed
  std::size_t step_ = 0;
  std::size_t fired_ = 0;
};

}  // namespace recd::train
