#include "train/collective_group.h"

#include <string>

namespace recd::train {

const char* ExchangeSpanName(Exchange exchange) {
  switch (exchange) {
    case Exchange::kNone: return "exchange/none";
    case Exchange::kSdd: return "exchange/sdd";
    case Exchange::kEmb: return "exchange/emb";
    case Exchange::kGrad: return "exchange/grad";
    case Exchange::kAllReduce: return "exchange/allreduce";
  }
  return "exchange/unknown";
}

CollectiveGroup::CollectiveGroup(std::size_t num_ranks,
                                 CollectiveOptions options)
    : num_ranks_(num_ranks),
      options_(options),
      barrier_(num_ranks == 0 ? 1 : num_ranks) {
  if (num_ranks == 0) {
    throw std::invalid_argument("CollectiveGroup: need at least one rank");
  }
  mail_.reserve(num_ranks * num_ranks);
  for (std::size_t i = 0; i < num_ranks * num_ranks; ++i) {
    // Capacity 4: at most two messages are ever in flight per (src,
    // dst) pair (one unreceived round plus one posted round ahead);
    // double that for slack.
    mail_.push_back(std::make_unique<Mail>(4));
  }
  // Register the per-(rank, exchange) grid up front; the exchange hot
  // path only touches the cached handles (relaxed atomic adds).
  bytes_sent_.reserve(num_ranks * kNumTags);
  wait_us_.reserve(num_ranks * kNumTags);
  exchange_us_.reserve(num_ranks * kNumTags);
  constexpr Exchange kTags[kNumTags] = {Exchange::kNone, Exchange::kSdd,
                                        Exchange::kEmb, Exchange::kGrad,
                                        Exchange::kAllReduce};
  for (std::size_t r = 0; r < num_ranks; ++r) {
    for (const Exchange tag : kTags) {
      const obs::Labels labels = {{"rank", std::to_string(r)},
                                  {"exchange", ExchangeName(tag)}};
      bytes_sent_.push_back(&metrics_.GetCounter("comm.bytes_sent", labels));
      wait_us_.push_back(&metrics_.GetCounter("comm.wait_us", labels));
      exchange_us_.push_back(
          &metrics_.GetCounter("comm.exchange_us", labels));
    }
  }
}

std::size_t CollectiveGroup::bytes_sent(std::size_t rank) const {
  std::int64_t total = 0;
  for (std::size_t t = 0; t < kNumTags; ++t) {
    total += bytes_sent_.at(rank * kNumTags + t)->Value();
  }
  return static_cast<std::size_t>(total);
}

std::size_t CollectiveGroup::exchange_bytes(std::size_t rank,
                                            Exchange tag) const {
  return static_cast<std::size_t>(
      bytes_sent_.at(rank * kNumTags + TagIndex(tag))->Value());
}

std::int64_t CollectiveGroup::exchange_wait_us(std::size_t rank,
                                               Exchange tag) const {
  return wait_us_.at(rank * kNumTags + TagIndex(tag))->Value();
}

std::int64_t CollectiveGroup::exchange_us(std::size_t rank,
                                          Exchange tag) const {
  return exchange_us_.at(rank * kNumTags + TagIndex(tag))->Value();
}

void CollectiveGroup::ResetBytes() {
  for (obs::Counter* c : bytes_sent_) c->Reset();
}

}  // namespace recd::train
