#include "train/collective_group.h"

namespace recd::train {

CollectiveGroup::CollectiveGroup(std::size_t num_ranks,
                                 CollectiveOptions options)
    : num_ranks_(num_ranks),
      options_(options),
      barrier_(num_ranks == 0 ? 1 : num_ranks),
      bytes_sent_(num_ranks, 0) {
  if (num_ranks == 0) {
    throw std::invalid_argument("CollectiveGroup: need at least one rank");
  }
  mail_.reserve(num_ranks * num_ranks);
  for (std::size_t i = 0; i < num_ranks * num_ranks; ++i) {
    // Capacity 4: at most two messages are ever in flight per (src,
    // dst) pair (one unreceived round plus one posted round ahead);
    // double that for slack.
    mail_.push_back(std::make_unique<Mail>(4));
  }
}

}  // namespace recd::train
