#include "train/fault.h"

#include <thread>

#include "common/checksum_file.h"

namespace recd::train {

const char* ExchangeName(Exchange exchange) {
  switch (exchange) {
    case Exchange::kNone:
      return "none";
    case Exchange::kSdd:
      return "sdd";
    case Exchange::kEmb:
      return "emb";
    case Exchange::kGrad:
      return "grad";
    case Exchange::kAllReduce:
      return "allreduce";
  }
  return "?";
}

void FaultInjector::Arm(Fault fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.push_back(fault);
}

void FaultInjector::BeginStep(std::size_t step) {
  std::lock_guard<std::mutex> lock(mutex_);
  step_ = step;
}

void FaultInjector::MaybeInject(std::size_t rank, Exchange exchange) {
  if (exchange == Exchange::kNone) return;
  std::chrono::milliseconds delay{0};
  bool kill = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = armed_.begin(); it != armed_.end();) {
      const bool match = (it->kind == Fault::Kind::kKillRank ||
                          it->kind == Fault::Kind::kDelayRank) &&
                         it->step == step_ && it->rank == rank &&
                         it->exchange == exchange;
      if (!match) {
        ++it;
        continue;
      }
      if (it->kind == Fault::Kind::kKillRank) {
        kill = true;
      } else {
        delay += it->delay;
      }
      ++fired_;
      it = armed_.erase(it);
    }
  }
  // Sleep and throw outside the lock: peers calling MaybeInject must
  // not serialize behind a straggler's nap.
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  if (kill) {
    throw RankFailure("FaultInjector: killed rank " + std::to_string(rank) +
                      " at exchange " + ExchangeName(exchange));
  }
}

bool FaultInjector::MaybeCorruptCheckpoint(const std::string& path,
                                           std::size_t step) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = armed_.begin();
    for (; it != armed_.end(); ++it) {
      if (it->kind == Fault::Kind::kCorruptCheckpoint && it->step == step) {
        break;
      }
    }
    if (it == armed_.end()) return false;
    ++fired_;
    armed_.erase(it);
  }
  common::CorruptChecksummedFile(path, /*payload_offset=*/step * 131 + 17);
  return true;
}

std::size_t FaultInjector::faults_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_;
}

}  // namespace recd::train
