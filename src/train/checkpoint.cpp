#include "train/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/bytes.h"
#include "common/checksum_file.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "train/reference.h"

namespace recd::train {
namespace {

// "RCKP" — the trainer-checkpoint envelope magic.
constexpr std::uint32_t kCheckpointMagic = 0x52434B50u;
constexpr std::uint32_t kCheckpointVersion = 1;

void PutMatrix(common::ByteWriter& w, const nn::DenseMatrix& m) {
  w.PutVarint(m.rows());
  w.PutVarint(m.cols());
  // Raw IEEE-754 bits, native byte order — bitwise exact; foreign-
  // endian files are rejected up front by the envelope's marker.
  w.PutBytes(std::as_bytes(m.data()));
}

nn::DenseMatrix GetMatrix(common::ByteReader& r) {
  const auto rows = static_cast<std::size_t>(r.GetVarint());
  const auto cols = static_cast<std::size_t>(r.GetVarint());
  const std::size_t max_floats = r.remaining() / sizeof(float);
  if (rows == 0 || cols == 0 || cols > max_floats || rows > max_floats / cols) {
    throw CheckpointError(
        "checkpoint payload: matrix header implies more data than present");
  }
  nn::DenseMatrix m(rows, cols);
  const auto raw = r.GetBytes(rows * cols * sizeof(float));
  std::memcpy(m.data().data(), raw.data(), raw.size());
  return m;
}

void PutFloats(common::ByteWriter& w, std::span<const float> v) {
  w.PutVarint(v.size());
  w.PutBytes(std::as_bytes(v));
}

std::vector<float> GetFloats(common::ByteReader& r) {
  const auto n = static_cast<std::size_t>(r.GetVarint());
  if (n > r.remaining() / sizeof(float)) {
    throw CheckpointError(
        "checkpoint payload: vector header implies more data than present");
  }
  std::vector<float> v(n);
  const auto raw = r.GetBytes(n * sizeof(float));
  std::memcpy(v.data(), raw.data(), raw.size());
  return v;
}

void PutDims(common::ByteWriter& w, const std::vector<std::uint64_t>& dims) {
  w.PutVarint(dims.size());
  for (const auto d : dims) w.PutVarint(d);
}

std::vector<std::uint64_t> GetDims(common::ByteReader& r) {
  const auto n = static_cast<std::size_t>(r.GetVarint());
  if (n > r.remaining()) {
    throw CheckpointError(
        "checkpoint payload: dim-list header implies more data than present");
  }
  std::vector<std::uint64_t> dims(n);
  for (auto& d : dims) d = r.GetVarint();
  return dims;
}

void PutMlp(common::ByteWriter& w, const std::vector<nn::DenseMatrix>& weights,
            const std::vector<std::vector<float>>& biases) {
  w.PutVarint(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    PutMatrix(w, weights[i]);
    PutFloats(w, biases[i]);
  }
}

void GetMlp(common::ByteReader& r, std::vector<nn::DenseMatrix>& weights,
            std::vector<std::vector<float>>& biases) {
  const auto n = static_cast<std::size_t>(r.GetVarint());
  if (n > r.remaining()) {
    throw CheckpointError(
        "checkpoint payload: MLP layer count implies more data than present");
  }
  weights.reserve(n);
  biases.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights.push_back(GetMatrix(r));
    biases.push_back(GetFloats(r));
  }
}

std::vector<std::uint64_t> ToU64(const std::vector<std::size_t>& v) {
  return {v.begin(), v.end()};
}

}  // namespace

std::size_t TrainerCheckpoint::StateBytes() const {
  std::size_t bytes = 0;
  for (const auto& t : tables) bytes += t.byte_size();
  for (const auto& w : bottom_w) bytes += w.byte_size();
  for (const auto& b : bottom_b) bytes += b.size() * sizeof(float);
  for (const auto& w : top_w) bytes += w.byte_size();
  for (const auto& b : top_b) bytes += b.size() * sizeof(float);
  return bytes;
}

TrainerCheckpoint CaptureCheckpoint(const DistributedTrainer& trainer,
                                    std::uint64_t next_step) {
  const ModelConfig& model = trainer.model();
  TrainerCheckpoint ck;
  ck.next_step = next_step;
  ck.seed = trainer.config().seed;
  ck.lr = trainer.config().lr;
  ck.emb_dim = model.emb_dim;
  ck.emb_hash_size = model.emb_hash_size;
  ck.bottom_dims = ToU64(model.BottomMlpDims());
  ck.top_dims = ToU64(model.TopMlpDims());

  // Tables in ModelTableOrder — the trainer resolves each id to the
  // owning rank's shard, so the capture is rank-placement-free.
  const std::size_t num_tables = model.num_tables();
  ck.tables.reserve(num_tables);
  for (std::size_t t = 0; t < num_tables; ++t) {
    ck.tables.push_back(trainer.table(t).weights());
  }

  // One MLP copy suffices: replicas are bitwise identical per the
  // distributed determinism contract.
  const nn::Mlp& bottom = trainer.bottom_mlp(0);
  for (std::size_t i = 0; i < bottom.num_layers(); ++i) {
    const nn::Linear& layer = bottom.layer(i);
    ck.bottom_w.push_back(layer.weights());
    ck.bottom_b.emplace_back(layer.bias().begin(), layer.bias().end());
  }
  const nn::Mlp& top = trainer.top_mlp(0);
  for (std::size_t i = 0; i < top.num_layers(); ++i) {
    const nn::Linear& layer = top.layer(i);
    ck.top_w.push_back(layer.weights());
    ck.top_b.emplace_back(layer.bias().begin(), layer.bias().end());
  }
  return ck;
}

std::vector<std::byte> SerializeCheckpoint(const TrainerCheckpoint& ck) {
  common::ByteWriter w;
  w.PutU64(ck.next_step);
  w.PutU64(ck.seed);
  w.PutF32(ck.lr);
  w.PutVarint(ck.emb_dim);
  w.PutVarint(ck.emb_hash_size);
  PutDims(w, ck.bottom_dims);
  PutDims(w, ck.top_dims);
  w.PutVarint(ck.tables.size());
  for (const auto& t : ck.tables) PutMatrix(w, t);
  PutMlp(w, ck.bottom_w, ck.bottom_b);
  PutMlp(w, ck.top_w, ck.top_b);
  return std::move(w).Take();
}

TrainerCheckpoint DeserializeCheckpoint(std::span<const std::byte> payload) {
  try {
    common::ByteReader r(payload);
    TrainerCheckpoint ck;
    ck.next_step = r.GetU64();
    ck.seed = r.GetU64();
    ck.lr = r.GetF32();
    ck.emb_dim = r.GetVarint();
    ck.emb_hash_size = r.GetVarint();
    ck.bottom_dims = GetDims(r);
    ck.top_dims = GetDims(r);
    const auto num_tables = static_cast<std::size_t>(r.GetVarint());
    if (num_tables > r.remaining()) {
      throw CheckpointError(
          "checkpoint payload: table count implies more data than present");
    }
    ck.tables.reserve(num_tables);
    for (std::size_t t = 0; t < num_tables; ++t) {
      ck.tables.push_back(GetMatrix(r));
    }
    GetMlp(r, ck.bottom_w, ck.bottom_b);
    GetMlp(r, ck.top_w, ck.top_b);
    if (!r.AtEnd()) {
      throw CheckpointError(
          "checkpoint payload: trailing bytes after the final section");
    }
    return ck;
  } catch (const common::ByteStreamError& e) {
    throw CheckpointError(std::string("checkpoint payload malformed: ") +
                          e.what());
  }
}

void SaveCheckpoint(const TrainerCheckpoint& ck, const std::string& path) {
  RECD_TRACE_SCOPE("checkpoint/save");
  auto payload = SerializeCheckpoint(ck);
  auto& reg = obs::Registry::Global();
  reg.GetCounter("checkpoint.saves").Increment();
  reg.GetCounter("checkpoint.bytes_written")
      .Add(static_cast<std::int64_t>(payload.size()));
  common::WriteChecksummedFile(path, kCheckpointMagic, kCheckpointVersion,
                               payload);
}

TrainerCheckpoint LoadCheckpoint(const std::string& path) {
  RECD_TRACE_SCOPE("checkpoint/restore");
  auto& reg = obs::Registry::Global();
  std::vector<std::byte> payload;
  try {
    payload =
        common::ReadChecksummedFile(path, kCheckpointMagic, kCheckpointVersion);
  } catch (const common::ChecksumError& e) {
    reg.GetCounter("checkpoint.load_failures").Increment();
    throw CheckpointError(std::string("checkpoint rejected: ") + e.what());
  }
  reg.GetCounter("checkpoint.restores").Increment();
  reg.GetCounter("checkpoint.bytes_read")
      .Add(static_cast<std::int64_t>(payload.size()));
  return DeserializeCheckpoint(payload);
}

FaultTolerantRunner::FaultTolerantRunner(ModelConfig model,
                                         ElasticRunOptions options,
                                         FaultInjector* injector)
    : model_(std::move(model)),
      options_(std::move(options)),
      injector_(injector) {
  if (options_.total_steps == 0) {
    throw std::invalid_argument("FaultTolerantRunner: total_steps == 0");
  }
  if (options_.checkpoint_every == 0) {
    throw std::invalid_argument("FaultTolerantRunner: checkpoint_every == 0");
  }
  if (options_.rank_schedule.empty()) {
    throw std::invalid_argument("FaultTolerantRunner: empty rank_schedule");
  }
  for (const auto n : options_.rank_schedule) {
    if (n == 0 || kGradChunks % n != 0) {
      throw std::invalid_argument(
          "FaultTolerantRunner: rank_schedule entries must divide "
          "kGradChunks (" +
          std::to_string(kGradChunks) + ")");
    }
  }
  if (options_.checkpoint_dir.empty()) {
    throw std::invalid_argument("FaultTolerantRunner: empty checkpoint_dir");
  }
  std::filesystem::create_directories(options_.checkpoint_dir);
  Rebuild(options_.rank_schedule.front());
}

FaultTolerantRunner::~FaultTolerantRunner() = default;

const DistributedTrainer& FaultTolerantRunner::trainer() const {
  return *trainer_;
}

std::string FaultTolerantRunner::CheckpointPath(std::size_t step) const {
  return options_.checkpoint_dir + "/ckpt_" + std::to_string(step) + ".rckp";
}

void FaultTolerantRunner::Rebuild(std::size_t num_ranks) {
  DistributedConfig config = options_.trainer;
  config.num_ranks = num_ranks;
  if (injector_ != nullptr) config.injector = injector_;
  // A fresh trainer *is* the seed state: construction replays the
  // ReferenceDlrm init streams, so "restore from seed" needs no file.
  trainer_ = std::make_unique<DistributedTrainer>(model_, config);
}

std::size_t FaultTolerantRunner::RestoreLatest(std::size_t from_step,
                                               ElasticRunResult& result) {
  for (auto it = checkpoint_steps_.rbegin(); it != checkpoint_steps_.rend();
       ++it) {
    if (*it > from_step) continue;
    try {
      const TrainerCheckpoint ck = LoadCheckpoint(CheckpointPath(*it));
      trainer_->LoadState(ck);
      return static_cast<std::size_t>(ck.next_step);
    } catch (const CheckpointError&) {
      // Damaged (or fault-injected) checkpoint: never a silent wrong
      // restore — skip it and walk further back.
      ++result.corrupt_checkpoints_skipped;
    }
  }
  ++result.seed_restores;
  return 0;  // the freshly rebuilt trainer already holds the seed state
}

ElasticRunResult FaultTolerantRunner::Run(const BatchProvider& batch_for_step) {
  ElasticRunResult result;
  result.losses.assign(options_.total_steps, 0.0f);
  std::vector<bool> completed(options_.total_steps, false);

  const auto write_checkpoint = [&](std::size_t next_step) {
    SaveCheckpoint(CaptureCheckpoint(*trainer_, next_step),
                   CheckpointPath(next_step));
    if (std::find(checkpoint_steps_.begin(), checkpoint_steps_.end(),
                  next_step) == checkpoint_steps_.end()) {
      checkpoint_steps_.push_back(next_step);
      std::sort(checkpoint_steps_.begin(), checkpoint_steps_.end());
    }
    ++result.checkpoints_written;
    if (injector_ != nullptr) {
      injector_->MaybeCorruptCheckpoint(CheckpointPath(next_step), next_step);
    }
  };

  write_checkpoint(0);  // rollback is always possible, even at step 0
  std::size_t step = 0;
  std::size_t schedule_index = 0;
  while (step < options_.total_steps) {
    if (injector_ != nullptr) injector_->BeginStep(step);
    float loss = 0.0f;
    try {
      loss = trainer_->Step(batch_for_step(step));
    } catch (const std::exception&) {
      ++result.failures;
      if (result.failures > options_.max_failures) throw;
      // Elastic recovery: next incarnation takes the next rank count
      // in the schedule (the last entry repeats), restores the newest
      // loadable checkpoint, and replays from its cursor.
      schedule_index =
          std::min(schedule_index + 1, options_.rank_schedule.size() - 1);
      Rebuild(options_.rank_schedule[schedule_index]);
      step = RestoreLatest(step, result);
      continue;
    }
    if (completed[step]) ++result.steps_replayed;
    completed[step] = true;
    result.losses[step] = loss;
    ++step;
    if (step < options_.total_steps && step % options_.checkpoint_every == 0) {
      write_checkpoint(step);
    }
  }
  return result;
}

}  // namespace recd::train
