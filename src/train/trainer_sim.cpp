#include "train/trainer_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "train/collectives.h"

namespace recd::train {

namespace {

/// Per-feature-or-group tensor statistics, representation-independent:
/// derived from the IKJT when present, otherwise from the KJT.
struct GroupShape {
  std::size_t batch_rows = 0;    // B
  std::size_t unique_rows = 0;   // U (== B when not deduplicated)
  double values_full = 0;        // expanded values count
  double values_unique = 0;      // deduplicated values count
  double sum_len2_full = 0;      // sum over rows+features of length^2
  double sum_len2_unique = 0;
  double sum_max_len = 0;        // sum over features of max row length
};

/// Per-row lengths are tracked per feature: each sequence feature is
/// pooled by its own attention module (paper §5: "each transformer's
/// features grouped together using IKJTs"), so score work is
/// sum-over-features of length^2, not (combined length)^2.
GroupShape ShapeFromIkjt(const tensor::InverseKeyedJaggedTensor& ikjt) {
  GroupShape s;
  s.batch_rows = ikjt.batch_size();
  s.unique_rows = ikjt.unique_rows();
  for (std::size_t k = 0; k < ikjt.num_keys(); ++k) {
    const auto& t = ikjt.unique(k);
    s.values_unique += static_cast<double>(t.total_values());
    double feature_max = 0;
    for (std::size_t u = 0; u < t.num_rows(); ++u) {
      const double len = static_cast<double>(t.length(u));
      s.sum_len2_unique += len * len;
      feature_max = std::max(feature_max, len);
    }
    s.sum_max_len += feature_max;
    for (const auto u : ikjt.inverse_lookup()) {
      const double len =
          static_cast<double>(t.length(static_cast<std::size_t>(u)));
      s.values_full += len;
      s.sum_len2_full += len * len;
    }
  }
  return s;
}

GroupShape ShapeFromKjt(const tensor::KeyedJaggedTensor& kjt,
                        const std::vector<std::string>& features) {
  GroupShape s;
  s.batch_rows = kjt.batch_size();
  s.unique_rows = kjt.batch_size();  // no dedup information
  for (const auto& name : features) {
    const auto& t = kjt.Get(name);
    s.values_full += static_cast<double>(t.total_values());
    double feature_max = 0;
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      const double len = static_cast<double>(t.length(r));
      s.sum_len2_full += len * len;
      feature_max = std::max(feature_max, len);
    }
    s.sum_max_len += feature_max;
  }
  s.values_unique = s.values_full;
  s.sum_len2_unique = s.sum_len2_full;
  return s;
}

/// Applies the ShapeScale multipliers (rows x, lengths x) to measured
/// counts so downstream cost formulas operate at paper magnitudes.
GroupShape Scaled(GroupShape s, const ShapeScale& scale) {
  s.batch_rows = static_cast<std::size_t>(
      static_cast<double>(s.batch_rows) * scale.rows);
  s.unique_rows = static_cast<std::size_t>(
      static_cast<double>(s.unique_rows) * scale.rows);
  s.values_full *= scale.rows * scale.length;
  s.values_unique *= scale.rows * scale.length;
  s.sum_len2_full *= scale.rows * scale.length * scale.length;
  s.sum_len2_unique *= scale.rows * scale.length * scale.length;
  s.sum_max_len *= scale.length;
  return s;
}

/// Finds the IKJT carrying `features` (matched on the first key), or
/// nullptr if the batch holds them as plain KJT entries.
const tensor::InverseKeyedJaggedTensor* FindGroup(
    const reader::PreprocessedBatch& batch,
    const std::vector<std::string>& features) {
  for (const auto& g : batch.groups) {
    for (const auto& key : g.keys()) {
      if (key == features.front()) return &g;
    }
  }
  return nullptr;
}

double MlpFlops(const std::vector<std::size_t>& dims, double rows) {
  double f = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    f += 2.0 * rows * static_cast<double>(dims[i]) *
         static_cast<double>(dims[i + 1]);
  }
  return f;
}

double MlpParamBytes(const std::vector<std::size_t>& dims) {
  double bytes = 0;
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    bytes += static_cast<double>(dims[i] * dims[i + 1] + dims[i + 1]) *
             sizeof(float);
  }
  return bytes;
}

double MlpActivationBytes(const std::vector<std::size_t>& dims,
                          double rows) {
  double bytes = 0;
  for (std::size_t i = 1; i < dims.size(); ++i) {
    bytes += rows * static_cast<double>(dims[i]) * sizeof(float);
  }
  return bytes;
}

}  // namespace

TrainerSim::TrainerSim(ModelConfig model, ClusterSpec cluster,
                       TrainerFlags flags, ShapeScale scale)
    : model_(std::move(model)),
      cluster_(cluster),
      flags_(flags),
      scale_(scale) {
  if (cluster_.num_gpus == 0) {
    throw std::invalid_argument("TrainerSim: need at least one GPU");
  }
}

double TrainerSim::StaticMemoryBytesPerGpu() const {
  const double n = static_cast<double>(cluster_.num_gpus);
  const double table_bytes = static_cast<double>(model_.num_tables()) *
                             static_cast<double>(model_.emb_hash_size) *
                             static_cast<double>(model_.emb_dim) *
                             sizeof(float);
  // Model-parallel EMB shards; data-parallel MLPs replicated, with
  // gradient buffers (x2).
  const double mlp_bytes =
      2.0 * (MlpParamBytes(model_.BottomMlpDims()) +
             MlpParamBytes(model_.TopMlpDims()));
  return table_bytes / n + mlp_bytes;
}

IterationBreakdown TrainerSim::SimulateIteration(
    const reader::PreprocessedBatch& batch) const {
  const double n = static_cast<double>(cluster_.num_gpus);
  const double batch_rows =
      static_cast<double>(batch.batch_size) * scale_.rows;
  const double d = static_cast<double>(model_.emb_dim);

  // ---- Gather shapes for every model input. --------------------------
  struct InputCost {
    GroupShape shape;
    bool deduplicated = false;  // IKJT present in the batch
    bool attention = false;
    bool sequence = false;
  };
  std::vector<InputCost> inputs;
  auto add_input = [&](const std::vector<std::string>& features,
                       bool attention, bool sequence) {
    InputCost in;
    if (const auto* ikjt = FindGroup(batch, features)) {
      in.shape = Scaled(ShapeFromIkjt(*ikjt), scale_);
      in.deduplicated = true;
    } else {
      in.shape = Scaled(ShapeFromKjt(batch.kjt, features), scale_);
    }
    in.attention = attention;
    in.sequence = sequence;
    inputs.push_back(in);
  };
  for (const auto& g : model_.sequence_groups) {
    add_input(g.features, g.attention, /*sequence=*/true);
  }
  for (const auto& f : model_.elementwise_features) {
    add_input({f}, /*attention=*/false, /*sequence=*/false);
  }
  for (const auto& f : model_.plain_features) {
    add_input({f}, /*attention=*/false, /*sequence=*/false);
  }

  IterationBreakdown out;

  // ---- SDD all-to-all (sparse input distribution). -------------------
  // Values + offsets slices travel; inverse_lookup stays local (§5).
  for (const auto& in : inputs) {
    const bool dedup = in.deduplicated && flags_.dedup_emb;
    const double values = dedup ? in.shape.values_unique
                                : in.shape.values_full;
    const double offsets = dedup ? static_cast<double>(in.shape.unique_rows)
                                 : static_cast<double>(in.shape.batch_rows);
    out.sdd_bytes += (values + offsets) * sizeof(std::int64_t);
  }

  // ---- Embedding lookups (memory-bandwidth bound). --------------------
  for (const auto& in : inputs) {
    const bool dedup = in.deduplicated && flags_.dedup_emb;
    out.lookups += dedup ? in.shape.values_unique : in.shape.values_full;
  }
  // Forward reads table rows + writes activations; backward re-touches
  // them for the sparse update.
  const double emb_bytes = out.lookups * d * sizeof(float) * 3.0;
  out.emb_s = emb_bytes / (cluster_.gpu.mem_bw * n);

  // ---- Pooling / attention / expansion compute. -----------------------
  double flops = 0;
  double flops_logical = 0;  // as-if-no-dedup (duplicate work included)
  double expand_bytes = 0;   // index-select style copies (memory bound)
  double act_bytes = 0;      // per-job activation memory (split over GPUs)
  for (const auto& in : inputs) {
    const bool dedup_emb = in.deduplicated && flags_.dedup_emb;
    const bool dedup_compute = in.deduplicated && flags_.dedup_compute;
    // Activations out of the EMB lookup.
    const double act_values =
        dedup_emb ? in.shape.values_unique : in.shape.values_full;
    act_bytes += act_values * d * sizeof(float);
    if (in.attention) {
      const double len2 =
          dedup_compute ? in.shape.sum_len2_unique : in.shape.sum_len2_full;
      flops += 4.0 * len2 * d + 5.0 * len2;
      flops_logical += 4.0 * in.shape.sum_len2_full * d +
                       5.0 * in.shape.sum_len2_full;
      act_bytes += len2 * sizeof(float);  // score matrices
      if (dedup_emb && !dedup_compute) {
        // O5 without O7: the pooling module needs the expanded KJT, so
        // sequence activations are index-selected out to B rows first.
        if (flags_.jagged_index_select) {
          // Jagged gather: read each unique row once, write the expanded
          // rows once (no padding).
          expand_bytes += (in.shape.values_unique + in.shape.values_full) *
                          d * sizeof(float);
          act_bytes += in.shape.values_full * d * sizeof(float);
        } else {
          // Pad-to-dense baseline: per feature, materialize U x Lmax
          // and B x Lmax dense buffers.
          const double padded =
              (static_cast<double>(in.shape.unique_rows) + batch_rows) *
              in.shape.sum_max_len * d * sizeof(float);
          expand_bytes += padded;
          act_bytes += padded;
        }
      }
    } else {
      const double values =
          dedup_emb ? in.shape.values_unique : in.shape.values_full;
      flops += 2.0 * values * d;  // sum pooling fused with lookup
      flops_logical += 2.0 * in.shape.values_full * d;
    }
    if (in.deduplicated &&
        (flags_.dedup_compute || flags_.dedup_emb)) {
      // Post-pooling expansion of pooled outputs back to batch rows
      // (cheap dense index-select through the local inverse_lookup).
      expand_bytes += batch_rows * d * sizeof(float) * 2.0;
    }
    act_bytes += batch_rows * d * sizeof(float);  // pooled output
  }

  // ---- Dense MLPs + interaction (data parallel). ----------------------
  const auto bottom = model_.BottomMlpDims();
  const auto top = model_.TopMlpDims();
  const double dense_flops =
      MlpFlops(bottom, batch_rows) + MlpFlops(top, batch_rows);
  flops += dense_flops;
  flops_logical += dense_flops;
  const double f_inputs = static_cast<double>(model_.num_interaction_inputs());
  const double interaction_flops =
      2.0 * batch_rows * d * (f_inputs * (f_inputs - 1.0) / 2.0);
  flops += interaction_flops;
  flops_logical += interaction_flops;
  act_bytes += MlpActivationBytes(bottom, batch_rows) +
               MlpActivationBytes(top, batch_rows);
  act_bytes += batch_rows * static_cast<double>(top.front()) * sizeof(float);

  // Backward ~= 2x forward compute.
  out.flops = flops * 3.0;
  out.flops_logical = flops_logical * 3.0;
  const double gemm_compute_s = out.flops / (cluster_.gpu.flops * n);
  const double expand_s = expand_bytes / (cluster_.gpu.mem_bw * n);
  out.gemm_s = gemm_compute_s + expand_s;

  // ---- Pooled-embedding all-to-alls (fwd + mirrored bwd). -------------
  for (const auto& in : inputs) {
    const bool dedup_out = in.deduplicated && flags_.dedup_compute;
    const double rows = dedup_out ? static_cast<double>(in.shape.unique_rows)
                                  : batch_rows;
    out.emb_a2a_bytes += rows * d * sizeof(float);
  }
  const double a2a_fwd_s =
      AllToAllSeconds(cluster_, out.sdd_bytes) +
      AllToAllSeconds(cluster_, out.emb_a2a_bytes);
  const double a2a_bwd_s = AllToAllSeconds(cluster_, out.emb_a2a_bytes);
  out.a2a_raw_s = a2a_fwd_s + a2a_bwd_s;

  // ---- Overlap model. --------------------------------------------------
  // All-to-all overlaps with compute up to the comm_overlap fraction;
  // the MLP gradient all-reduce is bucketed DDP-style across the whole
  // backward, leaving only a residual fraction exposed.
  const double overlap_budget =
      cluster_.comm_overlap * (out.gemm_s + out.emb_s);
  out.a2a_exposed_s = std::max(0.0, out.a2a_raw_s - overlap_budget);
  const double mlp_bytes = MlpParamBytes(bottom) + MlpParamBytes(top);
  constexpr double kAllReduceExposedFraction = 0.2;
  const double exposed_allreduce =
      kAllReduceExposedFraction * AllReduceSeconds(cluster_, mlp_bytes);

  // ---- Other: exposed all-reduce + optimizer + fixed overhead. ---------
  out.other_s = exposed_allreduce + cluster_.fixed_overhead_s;

  // ---- Memory. ---------------------------------------------------------
  out.static_mem_bytes = StaticMemoryBytesPerGpu();
  out.dynamic_mem_bytes = act_bytes / n;
  const double peak = out.static_mem_bytes + out.dynamic_mem_bytes;
  out.mem_util_max = peak / cluster_.gpu.hbm_bytes;
  // Time-averaged utilization: activations ramp over the iteration; the
  // 0.65 duty factor reproduces the paper's avg/max relation (Table 2).
  out.mem_util_avg =
      (out.static_mem_bytes + 0.65 * out.dynamic_mem_bytes) /
      cluster_.gpu.hbm_bytes;

  // ---- Throughput. ------------------------------------------------------
  out.global_batch_rows = batch_rows;
  out.qps = batch_rows / out.total_s();
  out.achieved_flops_per_gpu = out.flops / out.total_s() / n;
  out.logical_flops_per_gpu = out.flops_logical / out.total_s() / n;
  return out;
}

}  // namespace recd::train
