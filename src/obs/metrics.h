// Process-wide metrics registry: hierarchically named, labeled
// Counter / Gauge / HistogramMetric handles with lock-free hot-path
// increments (docs/ARCHITECTURE.md §14).
//
// The registry is the repo's single export surface for counters: the
// bespoke stats structs that benches and tests read (embstore::TierStats,
// serve::ServeStats, reader io(), stream counters) are either backed by
// registry handles directly or published into a registry snapshot at
// their aggregation point, so one `Registry::Snapshot()` captures the
// whole pipeline. Snapshots render as Prometheus-style text exposition
// (`ToPrometheusText`) or as a JSON block (`ToJson`) that
// bench::JsonReport embeds into BENCH_*.json reports.
//
// Concurrency + cost model:
//  * `Counter::Add` is a relaxed fetch_add on one of kShards
//    cache-line-padded cells chosen by thread id — threads hammering a
//    shared counter do not contend on one line. `Value()` sums shards.
//  * `Gauge` is a single atomic (set-dominated, uncontended writers).
//  * `HistogramMetric` wraps common::Histogram under a mutex
//    (observations are batch/request granular, never per-element hot).
//  * Handle lookup (`GetCounter` etc.) takes the registry mutex — do it
//    once at construction time and cache the reference; handles are
//    stable for the registry's lifetime.
//
// Determinism contract (the observability rule, §14): metrics only
// *record* — no code path reads a metric to make a decision — so
// enabling or disabling export, and any thread count, never changes
// weights, losses, scores, or non-timing counter values. Snapshot
// entries are ordered by (name, labels), never by creation order, so
// rendered output is deterministic too. Timing-valued series carry a
// `_us` / `_seconds` suffix by convention; determinism tests compare
// snapshots with those series excluded.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace recd::obs {

/// Sorted (key, value) pairs identifying one series of a metric family
/// (e.g. {{"exchange","sdd"},{"rank","0"}}). Canonicalized (sorted by
/// key) on entry to the registry, so label order never splits a series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. Hot-path Add is a relaxed atomic increment on a
/// per-thread shard; Value() is a full-fence-free sum over shards and
/// may miss in-flight increments from still-running writers (read it
/// after the writers quiesce for exact totals, like every bespoke
/// counter it replaces).
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void Add(std::int64_t delta) {
    cells_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  [[nodiscard]] std::int64_t Value() const {
    std::int64_t sum = 0;
    for (const auto& cell : cells_) {
      sum += cell.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Zeroes every shard. Not atomic with respect to concurrent Adds —
  /// callers reset in quiescent states (the contract ResetStats-style
  /// APIs already had).
  void Reset() {
    for (auto& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  static std::size_t ShardIndex();
  Cell cells_[kShards];
};

/// Last-write-wins instantaneous value (resident rows, queue depth).
class Gauge {
 public:
  void Set(std::int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t Value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void Reset() { Set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Distribution metric over positive integer observations (latencies in
/// µs, sizes in bytes) — common::Histogram under a mutex, mergeable
/// across workers via Histogram::Merge.
class HistogramMetric {
 public:
  /// Records one observation; values below 1 clamp to 1 (Histogram is
  /// defined over positive integers; a sub-microsecond latency still
  /// counts).
  void Observe(std::int64_t value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    hist_.Add(value < 1 ? 1 : value);
  }
  void Merge(const common::Histogram& other) {
    const std::lock_guard<std::mutex> lock(mutex_);
    hist_.Merge(other);
  }
  [[nodiscard]] common::Histogram snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return hist_;
  }
  void Reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    hist_ = common::Histogram();
  }

 private:
  mutable std::mutex mutex_;
  common::Histogram hist_;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Point-in-time copy of a registry (or a merge of several). Entries
/// are sorted by (name, labels); Merge sums counters, keeps the latest
/// gauge value, and merges histograms — so per-worker or per-component
/// registries roll up into one process view.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    std::int64_t value = 0;          // counter / gauge
    common::Histogram histogram;     // kHistogram only

    /// "name{k="v",...}" — the series' exposition identity.
    [[nodiscard]] std::string SeriesName() const;
  };
  std::vector<Entry> entries;

  /// Sums counters, overwrites gauges, merges histograms; series
  /// present only in `other` are inserted. Associative and (for
  /// counters/histograms) commutative.
  void Merge(const MetricsSnapshot& other);

  /// Entry lookup by exact name + canonical labels; nullptr if absent.
  [[nodiscard]] const Entry* Find(const std::string& name,
                                  const Labels& labels = {}) const;

  /// Prometheus-style text exposition: one `name{labels} value` line
  /// per series; histograms expose _count/_sum/_max plus cumulative
  /// power-of-two `le` buckets.
  [[nodiscard]] std::string ToPrometheusText() const;

  /// JSON object {"series":[{name, labels, kind, value|histogram}...],
  /// "series_count": N} — the block bench::JsonReport embeds.
  [[nodiscard]] std::string ToJson() const;

  /// Entries with timing-valued series (`_us`/`_seconds`/`_ticks`
  /// suffixed names) removed — the comparison surface of the
  /// observability-determinism tests.
  [[nodiscard]] MetricsSnapshot WithoutTimings() const;
};

/// A named family store. Instantiable — components with instance-scoped
/// stats (a tiered store, a trainer) own a private registry and expose
/// it for upward Merge — plus one process-wide `Global()` for
/// subsystems whose label sets already make series unique.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Handle accessors: create-on-first-use, stable references for the
  /// registry's lifetime. A (name, labels) pair is one series — calling
  /// again returns the same handle. Throws std::invalid_argument if the
  /// name is already registered with a different kind.
  [[nodiscard]] Counter& GetCounter(const std::string& name,
                                    Labels labels = {});
  [[nodiscard]] Gauge& GetGauge(const std::string& name, Labels labels = {});
  [[nodiscard]] HistogramMetric& GetHistogram(const std::string& name,
                                              Labels labels = {});

  [[nodiscard]] MetricsSnapshot Snapshot() const;

  /// Zeroes every value but keeps the registered series and handles.
  void ResetValues();

  /// Number of registered series.
  [[nodiscard]] std::size_t size() const;

  /// The process-wide registry.
  static Registry& Global();

 private:
  struct Series {
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Series& GetSeries(const std::string& name, Labels&& labels,
                    MetricKind kind);

  mutable std::mutex mutex_;
  std::map<Key, Series> series_;
};

}  // namespace recd::obs
