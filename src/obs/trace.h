// Structured tracer: thread-safe span recording emitting Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing
// (docs/ARCHITECTURE.md §14).
//
// Usage: `RECD_TRACE_SCOPE("reader/convert");` at the top of a block
// records one complete ("ph":"X") event covering the block's lifetime.
// Span names are path-style (`subsystem/stage`), must be string
// literals (the tracer stores the pointer, not a copy), and may carry
// one integer argument (`RECD_TRACE_SCOPE_ARG("exchange/sdd", "rank",
// rank)`) rendered into the event's args block.
//
// Cost model: when tracing is disabled (the default), a scope is one
// relaxed atomic load and a branch — cheap enough to leave compiled
// into every hot stage. When enabled, each thread appends to its own
// buffer (one short uncontended mutex hold per event; the mutex exists
// so a snapshot can race live writers cleanly under TSan). Buffers are
// bounded: past `max_events_per_thread` events are counted as dropped,
// never silently lost, and memory stays bounded.
//
// Clock modes: wall mode timestamps spans with steady-clock
// microseconds since Start(). Virtual mode (TraceOptions::
// virtual_clock) timestamps them from the value most recently handed to
// SetVirtualTimeUs — the serve replay path drives this with its arrival
// clock, so replayed-trace timestamps are a function of the query trace,
// never of the host's wall clock, and traces compare directly across
// hosts and runs. (Which worker records a span — and therefore exactly
// when it samples the advancing virtual clock — still follows thread
// scheduling; a fixed single-threaded span sequence renders to
// byte-identical JSON, the determinism surface tests/obs_test.cpp
// asserts. Events are canonically ordered on output, not in arrival
// order.)
//
// Determinism rule: tracing only records. Enabling it never changes
// weights, losses, scores, or non-timing counters (§14).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace recd::obs {

struct TraceOptions {
  /// Timestamps come from SetVirtualTimeUs instead of the wall clock.
  bool virtual_clock = false;
  /// Per-thread span cap; beyond it events are dropped (and counted).
  std::size_t max_events_per_thread = 1 << 20;
};

class Tracer {
 public:
  /// The process-wide tracer every RECD_TRACE_SCOPE records into.
  static Tracer& Global();

  /// Clears any previous events and begins recording.
  void Start(TraceOptions options = {});
  /// Stops recording; buffered events remain readable until Start.
  void Stop();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Virtual-clock mode timestamp source (no-op in wall mode). Any
  /// thread may advance it; spans sample it at scope entry and exit.
  void SetVirtualTimeUs(std::int64_t now_us) {
    virtual_now_us_.store(now_us, std::memory_order_relaxed);
  }

  /// Current trace timestamp in µs (virtual or wall per options).
  [[nodiscard]] std::int64_t NowUs() const;

  /// Appends one complete event to the calling thread's buffer.
  void RecordComplete(const char* name, std::int64_t ts_us,
                      std::int64_t dur_us, const char* arg_name = nullptr,
                      std::int64_t arg = 0);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t dropped_events() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}); events are
  /// canonically ordered by (ts, tid, name, dur) so output is
  /// deterministic whenever the recorded set is.
  [[nodiscard]] std::string ToJson() const;
  /// Writes ToJson() to `path`; false (with a message) on I/O failure.
  bool WriteJson(const std::string& path) const;

  /// Drops all buffered events (buffers stay registered).
  void Clear();

  /// RAII span: samples NowUs at entry when the tracer is enabled,
  /// records a complete event at exit. A span that straddles a Stop is
  /// dropped (never half-recorded).
  class Scope {
   public:
    explicit Scope(const char* name, const char* arg_name = nullptr,
                   std::int64_t arg = 0)
        : name_(name), arg_name_(arg_name), arg_(arg) {
      Tracer& tracer = Global();
      if (tracer.enabled()) start_us_ = tracer.NowUs();
    }
    ~Scope() {
      if (start_us_ < 0) return;
      Tracer& tracer = Global();
      if (!tracer.enabled()) return;
      const std::int64_t end_us = tracer.NowUs();
      tracer.RecordComplete(
          name_, start_us_, end_us > start_us_ ? end_us - start_us_ : 0,
          arg_name_, arg_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const char* name_;
    const char* arg_name_;
    std::int64_t arg_;
    std::int64_t start_us_ = -1;  // -1: tracer was disabled at entry
  };

 private:
  struct Event {
    const char* name = nullptr;
    const char* arg_name = nullptr;
    std::int64_t arg = 0;
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;
    std::uint32_t tid = 0;
  };
  struct ThreadBuffer {
    std::mutex mutex;  // uncontended except against snapshots
    std::vector<Event> events;
    std::size_t dropped = 0;
    std::uint32_t tid = 0;
  };

  Tracer() = default;
  [[nodiscard]] ThreadBuffer& LocalBuffer();

  // Mode fields are atomics so late-arriving spans racing a Start/Stop
  // stay TSan-clean; Start publishes them before flipping enabled_.
  std::atomic<bool> enabled_{false};
  std::atomic<bool> virtual_clock_{false};
  std::atomic<std::size_t> max_events_per_thread_{1 << 20};
  std::atomic<std::int64_t> virtual_now_us_{0};
  std::atomic<std::int64_t> wall_epoch_ns_{0};

  mutable std::mutex mutex_;  // guards buffers_ registration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// Span macros: `RECD_TRACE_SCOPE("stage/name")` and the one-argument
// form `RECD_TRACE_SCOPE_ARG("exchange/sdd", "rank", rank)`.
#define RECD_OBS_CONCAT_INNER(a, b) a##b
#define RECD_OBS_CONCAT(a, b) RECD_OBS_CONCAT_INNER(a, b)
#define RECD_TRACE_SCOPE(name)                                      \
  ::recd::obs::Tracer::Scope RECD_OBS_CONCAT(recd_trace_scope_,     \
                                             __LINE__)(name)
#define RECD_TRACE_SCOPE_ARG(name, arg_name, arg)                   \
  ::recd::obs::Tracer::Scope RECD_OBS_CONCAT(recd_trace_scope_,     \
                                             __LINE__)(name, arg_name, \
                                                       static_cast<std::int64_t>(arg))

}  // namespace recd::obs
