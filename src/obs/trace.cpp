#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace recd::obs {

namespace {

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* global = new Tracer();  // leaked: outlives every thread
  return *global;
}

void Tracer::Start(TraceOptions options) {
  Clear();
  virtual_clock_.store(options.virtual_clock, std::memory_order_relaxed);
  max_events_per_thread_.store(options.max_events_per_thread,
                               std::memory_order_relaxed);
  wall_epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  virtual_now_us_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Stop() { enabled_.store(false, std::memory_order_release); }

std::int64_t Tracer::NowUs() const {
  if (virtual_clock_.load(std::memory_order_relaxed)) {
    return virtual_now_us_.load(std::memory_order_relaxed);
  }
  return (SteadyNowNs() - wall_epoch_ns_.load(std::memory_order_relaxed)) /
         1000;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  // One buffer per (thread, tracer) pair, registered on first use and
  // kept alive for the tracer's lifetime — a joined worker's spans stay
  // readable, and its stale thread_local can never dangle.
  thread_local ThreadBuffer* local = nullptr;
  if (local == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(mutex_);
    buffer->tid = static_cast<std::uint32_t>(buffers_.size());
    local = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return *local;
}

void Tracer::RecordComplete(const char* name, std::int64_t ts_us,
                            std::int64_t dur_us, const char* arg_name,
                            std::int64_t arg) {
  ThreadBuffer& buffer = LocalBuffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >=
      max_events_per_thread_.load(std::memory_order_relaxed)) {
    ++buffer.dropped;  // bounded memory: drop loudly, never grow
    return;
  }
  buffer.events.push_back(
      {name, arg_name, arg, ts_us, dur_us, buffer.tid});
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) {
    const std::lock_guard<std::mutex> bl(b->mutex);
    n += b->events.size();
  }
  return n;
}

std::size_t Tracer::dropped_events() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) {
    const std::lock_guard<std::mutex> bl(b->mutex);
    n += b->dropped;
  }
  return n;
}

std::string Tracer::ToJson() const {
  std::vector<Event> events;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& b : buffers_) {
      const std::lock_guard<std::mutex> bl(b->mutex);
      events.insert(events.end(), b->events.begin(), b->events.end());
    }
  }
  // Canonical order: buffer iteration order depends on thread creation
  // order, so sort by content instead — identical event sets render to
  // identical JSON (the virtual-clock replay determinism surface).
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.dur_us != b.dur_us) return a.dur_us < b.dur_us;
    return std::strcmp(a.name, b.name) < 0;
  });
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    os << (i > 0 ? ",\n" : "\n");
    os << R"({"name":")" << e.name << R"(","cat":"recd","ph":"X","ts":)"
       << e.ts_us << ",\"dur\":" << e.dur_us << ",\"pid\":0,\"tid\":"
       << e.tid;
    if (e.arg_name != nullptr) {
      os << R"(,"args":{")" << e.arg_name << "\":" << e.arg << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

bool Tracer::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "Tracer: cannot open %s\n", path.c_str());
    return false;
  }
  const std::string json = ToJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    std::fprintf(stderr, "Tracer: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

void Tracer::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : buffers_) {
    const std::lock_guard<std::mutex> bl(b->mutex);
    b->events.clear();
    b->dropped = 0;
  }
}

}  // namespace recd::obs
