#include "obs/obs.h"

#include <cstdlib>
#include <mutex>

namespace recd::obs {

namespace {

std::atomic<bool> g_enabled{false};

std::mutex g_trace_path_mutex;
std::string& TracePathStorage() {
  static std::string* path = new std::string();
  return *path;
}

}  // namespace

void Configure(const ObsOptions& options) {
  g_enabled.store(options.enabled, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(g_trace_path_mutex);
    TracePathStorage() = options.trace_path;
  }
  if (options.trace) {
    TraceOptions trace;
    trace.virtual_clock = options.trace_virtual_clock;
    Tracer::Global().Start(trace);
  } else {
    Tracer::Global().Stop();
  }
}

ObsOptions FromEnv() {
  ObsOptions options;
  const char* obs = std::getenv("RECD_OBS");
  options.enabled =
      obs != nullptr && *obs != '\0' && std::string(obs) != "0";
  const char* trace = std::getenv("RECD_OBS_TRACE");
  if (trace != nullptr && *trace != '\0') {
    options.trace = true;
    options.trace_path = trace;
    options.enabled = true;  // tracing implies timing metrics
  }
  return options;
}

ObsOptions ConfigureFromEnv() {
  ObsOptions options = FromEnv();
  Configure(options);
  return options;
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool FlushTrace() {
  Tracer& tracer = Tracer::Global();
  tracer.Stop();
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(g_trace_path_mutex);
    path = TracePathStorage();
  }
  if (path.empty()) return true;
  return tracer.WriteJson(path);
}

}  // namespace recd::obs
