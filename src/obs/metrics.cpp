#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace recd::obs {

namespace {

/// JSON/exposition string escaping (label values may carry anything).
std::string Escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

Labels Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

std::size_t Counter::ShardIndex() {
  // One shard per thread, assigned round-robin at first use; threads
  // beyond kShards share (they still only race on fetch_add).
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

std::string MetricsSnapshot::Entry::SeriesName() const {
  if (labels.empty()) return name;
  std::ostringstream os;
  os << name << '{';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ',';
    os << labels[i].first << "=\"" << Escaped(labels[i].second) << '"';
  }
  os << '}';
  return os.str();
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& theirs : other.entries) {
    auto it = std::lower_bound(
        entries.begin(), entries.end(), theirs,
        [](const Entry& a, const Entry& b) {
          return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
        });
    if (it != entries.end() && it->name == theirs.name &&
        it->labels == theirs.labels) {
      if (it->kind != theirs.kind) {
        throw std::invalid_argument(
            "MetricsSnapshot::Merge: kind mismatch for series " +
            theirs.SeriesName());
      }
      switch (theirs.kind) {
        case MetricKind::kCounter:
          it->value += theirs.value;
          break;
        case MetricKind::kGauge:
          it->value = theirs.value;  // latest wins
          break;
        case MetricKind::kHistogram:
          it->histogram.Merge(theirs.histogram);
          break;
      }
    } else {
      entries.insert(it, theirs);
    }
  }
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    const std::string& name, const Labels& labels) const {
  const Labels canon = Canonical(labels);
  for (const auto& e : entries) {
    if (e.name == name && e.labels == canon) return &e;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream os;
  for (const auto& e : entries) {
    switch (e.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        os << e.SeriesName() << ' ' << e.value << '\n';
        break;
      case MetricKind::kHistogram: {
        // Cumulative power-of-two buckets in the Prometheus le= idiom.
        auto with_label = [&](const std::string& le) {
          Labels l = e.labels;
          l.emplace_back("le", le);
          Entry named{e.name + "_bucket", std::move(l), MetricKind::kCounter,
                      0, {}};
          return named.SeriesName();
        };
        std::int64_t cum = 0;
        for (const auto& b : e.histogram.buckets()) {
          cum += b.count;
          os << with_label(std::to_string(b.hi)) << ' ' << cum << '\n';
        }
        os << with_label("+Inf") << ' ' << e.histogram.total_count() << '\n';
        Entry count{e.name + "_count", e.labels, MetricKind::kCounter, 0, {}};
        os << count.SeriesName() << ' ' << e.histogram.total_count() << '\n';
        Entry sum{e.name + "_sum", e.labels, MetricKind::kCounter, 0, {}};
        os << sum.SeriesName() << ' '
           << static_cast<std::int64_t>(
                  e.histogram.mean() *
                  static_cast<double>(e.histogram.total_count()))
           << '\n';
        Entry mx{e.name + "_max", e.labels, MetricKind::kCounter, 0, {}};
        os << mx.SeriesName() << ' ' << e.histogram.max() << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{ \"series_count\": " << entries.size() << ", \"series\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    os << "{ \"name\": \"" << Escaped(e.name) << "\", \"labels\": {";
    for (std::size_t j = 0; j < e.labels.size(); ++j) {
      if (j > 0) os << ", ";
      os << '"' << Escaped(e.labels[j].first) << "\": \""
         << Escaped(e.labels[j].second) << '"';
    }
    os << "}, \"kind\": \"" << KindName(e.kind) << "\", ";
    if (e.kind == MetricKind::kHistogram) {
      os << "\"count\": " << e.histogram.total_count()
         << ", \"mean\": " << e.histogram.mean()
         << ", \"min\": " << e.histogram.min()
         << ", \"max\": " << e.histogram.max()
         << ", \"p50\": " << e.histogram.Percentile(0.50)
         << ", \"p99\": " << e.histogram.Percentile(0.99);
    } else {
      os << "\"value\": " << e.value;
    }
    os << " }";
  }
  os << "\n  ] }";
  return os.str();
}

MetricsSnapshot MetricsSnapshot::WithoutTimings() const {
  MetricsSnapshot out;
  for (const auto& e : entries) {
    if (EndsWith(e.name, "_us") || EndsWith(e.name, "_seconds") ||
        EndsWith(e.name, "_ticks")) {
      continue;
    }
    out.entries.push_back(e);
  }
  return out;
}

Registry::Series& Registry::GetSeries(const std::string& name,
                                      Labels&& labels, MetricKind kind) {
  // Callers hold mutex_.
  auto [it, inserted] =
      series_.try_emplace({name, Canonical(std::move(labels))});
  Series& s = it->second;
  if (inserted) {
    s.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        s.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        s.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        s.histogram = std::make_unique<HistogramMetric>();
        break;
    }
  } else if (s.kind != kind) {
    throw std::invalid_argument("Registry: series '" + name +
                                "' already registered with a different kind");
  }
  return s;
}

Counter& Registry::GetCounter(const std::string& name, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return *GetSeries(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& Registry::GetGauge(const std::string& name, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return *GetSeries(name, std::move(labels), MetricKind::kGauge).gauge;
}

HistogramMetric& Registry::GetHistogram(const std::string& name,
                                        Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return *GetSeries(name, std::move(labels), MetricKind::kHistogram)
              .histogram;
}

MetricsSnapshot Registry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.entries.reserve(series_.size());
  // series_ is a std::map ordered by (name, labels) — snapshot order is
  // deterministic regardless of registration order.
  for (const auto& [key, s] : series_) {
    MetricsSnapshot::Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.kind = s.kind;
    switch (s.kind) {
      case MetricKind::kCounter:
        e.value = s.counter->Value();
        break;
      case MetricKind::kGauge:
        e.value = s.gauge->Value();
        break;
      case MetricKind::kHistogram:
        e.histogram = s.histogram->snapshot();
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void Registry::ResetValues() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, s] : series_) {
    switch (s.kind) {
      case MetricKind::kCounter:
        s.counter->Reset();
        break;
      case MetricKind::kGauge:
        s.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        s.histogram->Reset();
        break;
    }
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

Registry& Registry::Global() {
  static Registry* global = new Registry();  // leaked: outlives everything
  return *global;
}

}  // namespace recd::obs
