// Observability switchboard (docs/ARCHITECTURE.md §14).
//
// The layer is compiled in everywhere and near-zero-cost when off:
//  * Semantic counters (bytes, rows, hits, flushes — everything benches
//    and tests assert on) are *always* maintained; they are the
//    system's measured output, exactly as the bespoke structs they now
//    back were. RECD_OBS does not gate them — which is also why the
//    observability-determinism rule is structural: on or off, the same
//    counters count.
//  * Timing metrics (exchange wait/transfer µs, span-shaped histograms)
//    cost clock reads on hot paths, so they are gated on Enabled().
//  * Tracing is gated inside Tracer (one relaxed load per scope).
//
// Environment contract:
//   RECD_OBS=1             -> Enabled() true (timing metrics recorded)
//   RECD_OBS_TRACE=<path>  -> tracing on; FlushTrace() writes <path>
#pragma once

#include <atomic>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace recd::obs {

struct ObsOptions {
  /// Record timing metrics (and mark the process as observed).
  bool enabled = false;
  /// Start the global tracer.
  bool trace = false;
  /// Virtual-clock tracing (deterministic serve replay traces).
  bool trace_virtual_clock = false;
  /// Where FlushTrace() writes the Chrome trace JSON; empty = nowhere.
  std::string trace_path;
};

/// Applies options: sets the Enabled() flag and starts/stops the global
/// tracer. Call from main()/bench setup, not from library hot paths.
void Configure(const ObsOptions& options);

/// Options derived from RECD_OBS / RECD_OBS_TRACE (see above).
[[nodiscard]] ObsOptions FromEnv();

/// Convenience: Configure(FromEnv()), returning the options applied.
ObsOptions ConfigureFromEnv();

/// The timing-metrics gate. One relaxed atomic load.
[[nodiscard]] bool Enabled();

/// Stops the tracer and writes the configured trace_path (no-op when
/// tracing was never configured or the path is empty). Returns false
/// on I/O failure.
bool FlushTrace();

}  // namespace recd::obs
