// Dataset schema for the synthetic session-centric workload.
//
// This is the substitution for the paper's O(100 PB) production dataset
// (docs/ARCHITECTURE.md §1): duplication is *generated* by the same process that
// causes it in production — user features that rarely change within a
// session — rather than being injected artificially. Every quantity the
// paper's analytical model uses (S, l(f), d(f)) is an explicit knob.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recd::datagen {

/// User features reflect user state (largely static within a session);
/// item features reflect the ranked item (change almost every impression).
/// Paper §3 characterizes the duplication split between the two.
enum class FeatureClass : std::uint8_t { kUser, kItem };

/// How a feature's value evolves when it *does* change.
enum class UpdateKind : std::uint8_t {
  kShiftAppend,  // sliding window: drop oldest, append newest (sequences)
  kRedraw,       // resample the whole list (set-like features)
};

struct SparseFeatureSpec {
  std::string name;
  FeatureClass klass = FeatureClass::kUser;
  UpdateKind update = UpdateKind::kShiftAppend;

  /// Mean list length l(f).
  double mean_length = 32;

  /// Probability the value remains unchanged between adjacent impressions
  /// of a session — the paper's d(f).
  double stay_prob = 0.9;

  /// Categorical ID domain size and zipf skew for value draws.
  std::int64_t id_domain = 1'000'000;
  double zipf_s = 1.05;

  /// Features sharing a sync_group >= 0 update on the same impressions
  /// (the paper's grouped-IKJT premise, e.g. item-ID + seller-ID of the
  /// same cart sequence). -1 = independent.
  int sync_group = -1;
};

struct DatasetSpec {
  std::vector<SparseFeatureSpec> sparse;
  std::size_t num_dense = 8;

  /// Mean samples per session, the paper's S (16.5 in the characterized
  /// production partition).
  double mean_session_size = 16.5;

  /// How many sessions are concurrently active in the traffic stream;
  /// controls how interleaved the log order is (paper Fig 3 right: only
  /// 1.15 samples/session inside a 4096 batch at production interleave).
  std::size_t concurrent_sessions = 4096;

  std::uint64_t seed = 0x00c0ffee;

  [[nodiscard]] std::size_t num_sparse() const { return sparse.size(); }

  /// Index of a feature by name; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t FeatureIndex(const std::string& name) const;
};

}  // namespace recd::datagen
