// Dataset presets mirroring the paper's evaluation workloads.
//
// The paper evaluates three representative industrial DLRMs. Their exact
// feature schemas are proprietary, so these presets encode everything the
// paper *does* state: RM1 uses 16 long sequence features deduplicated in
// 5 groups plus ~100 element-wise pooled features; RM2 and RM3
// deduplicate 6 and 11 sequence features in one group; measured
// DedupeFactors land in the 4–15 range; RM1/RM2 share a table with more
// samples per session than RM3's. A `scale` knob shrinks list lengths
// and feature counts proportionally so tests stay fast while benches run
// closer to paper magnitudes.
#pragma once

#include "datagen/schema.h"

namespace recd::datagen {

/// Which paper model a preset mimics.
enum class RmKind { kRm1, kRm2, kRm3 };

/// Dataset spec for the given RM. `scale` in (0, 1] shrinks lengths and
/// per-class feature counts (scale=1 approximates paper magnitudes,
/// already reduced ~4x from production lengths to stay CPU-friendly).
[[nodiscard]] DatasetSpec RmDataset(RmKind kind, double scale = 1.0,
                                    std::uint64_t seed = 0x00c0ffee);

/// Wide-schema dataset for the Fig 3/4 characterization: many features
/// spanning the full duplication spectrum (highly-static user sequence
/// features through always-changing item features).
[[nodiscard]] DatasetSpec CharacterizationDataset(
    std::size_t num_features = 128, double scale = 1.0,
    std::uint64_t seed = 0x00c0ffee);

/// Names of the sequence features an RM deduplicates, grouped as the
/// paper describes (RM1: 16 features in 5 groups; RM2: 6 in one group;
/// RM3: 11 in one group).
[[nodiscard]] std::vector<std::vector<std::string>> RmDedupGroups(
    RmKind kind, const DatasetSpec& spec);

/// Names of the element-wise pooled features an RM additionally
/// deduplicates (~100 per the paper), one single-feature group each.
[[nodiscard]] std::vector<std::string> RmElementwiseDedupFeatures(
    RmKind kind, const DatasetSpec& spec);

}  // namespace recd::datagen
