#include "datagen/presets.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace recd::datagen {

namespace {

std::size_t Scaled(double base, double scale, std::size_t min_value) {
  return std::max<std::size_t>(
      min_value, static_cast<std::size_t>(std::llround(base * scale)));
}

void AddSequenceFeatures(DatasetSpec& spec, std::size_t count,
                         std::size_t groups, double mean_length,
                         double stay_prob, int first_group) {
  for (std::size_t i = 0; i < count; ++i) {
    SparseFeatureSpec f;
    f.name = "seq_" + std::to_string(i);
    f.klass = FeatureClass::kUser;
    f.update = UpdateKind::kShiftAppend;
    f.mean_length = std::max(8.0, mean_length);
    f.stay_prob = stay_prob;
    f.id_domain = 1'000'000;
    f.sync_group = first_group + static_cast<int>(i % groups);
    spec.sparse.push_back(std::move(f));
  }
}

void AddElementwiseFeatures(DatasetSpec& spec, std::size_t count,
                            double mean_length) {
  for (std::size_t i = 0; i < count; ++i) {
    SparseFeatureSpec f;
    f.name = "user_" + std::to_string(i);
    f.klass = FeatureClass::kUser;
    // Mix of window and set-like user features across a band of
    // stay-probabilities (0.85 - 0.99).
    f.update = i % 3 == 0 ? UpdateKind::kRedraw : UpdateKind::kShiftAppend;
    f.mean_length =
        std::max(2.0, mean_length * (0.5 + static_cast<double>(i % 5) * 0.25));
    f.stay_prob = 0.85 + 0.14 * (static_cast<double>(i % 8) / 7.0);
    f.id_domain = 200'000;
    f.sync_group = -1;
    spec.sparse.push_back(std::move(f));
  }
}

void AddItemFeatures(DatasetSpec& spec, std::size_t count,
                     double mean_length) {
  for (std::size_t i = 0; i < count; ++i) {
    SparseFeatureSpec f;
    f.name = "item_" + std::to_string(i);
    f.klass = FeatureClass::kItem;
    f.update = UpdateKind::kRedraw;
    f.mean_length = std::max(2.0, mean_length);
    // Item features change almost every impression (paper §3: many
    // different items are ranked within a session).
    f.stay_prob = 0.05;
    f.id_domain = 5'000'000;
    f.sync_group = -1;
    spec.sparse.push_back(std::move(f));
  }
}

}  // namespace

DatasetSpec RmDataset(RmKind kind, double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("RmDataset: scale must be in (0, 1]");
  }
  DatasetSpec spec;
  spec.seed = seed;
  spec.num_dense = 16;
  spec.mean_session_size = 16.5;
  spec.concurrent_sessions = Scaled(4096, scale, 64);
  switch (kind) {
    case RmKind::kRm1:
      // 16 long sequence features deduplicated in 5 groups + ~100
      // element-wise pooled features + item features.
      AddSequenceFeatures(spec, 16, 5, 128 * scale, 0.91, 0);
      AddElementwiseFeatures(spec, Scaled(100, scale, 12), 16 * scale);
      AddItemFeatures(spec, Scaled(16, scale, 4), 8 * scale);
      break;
    case RmKind::kRm2:
      // Same table as RM1 (same session stats), 6 sequence features in
      // one group; fewer/shorter sequences than RM1.
      AddSequenceFeatures(spec, 6, 1, 96 * scale, 0.95, 0);
      AddElementwiseFeatures(spec, Scaled(100, scale, 12), 16 * scale);
      AddItemFeatures(spec, Scaled(16, scale, 4), 8 * scale);
      break;
    case RmKind::kRm3:
      // Different table: fewer samples per session (paper §6.1 notes
      // RM3's table compresses less), 11 sequence features in one group.
      spec.mean_session_size = 8.0;
      AddSequenceFeatures(spec, 11, 1, 96 * scale, 0.93, 0);
      AddElementwiseFeatures(spec, Scaled(100, scale, 12), 12 * scale);
      AddItemFeatures(spec, Scaled(20, scale, 4), 8 * scale);
      break;
  }
  return spec;
}

DatasetSpec CharacterizationDataset(std::size_t num_features, double scale,
                                    std::uint64_t seed) {
  if (num_features < 8) {
    throw std::invalid_argument(
        "CharacterizationDataset: need at least 8 features");
  }
  DatasetSpec spec;
  spec.seed = seed;
  spec.num_dense = 8;
  spec.mean_session_size = 16.5;
  spec.concurrent_sessions = Scaled(4096, scale, 64);

  // ~80% user features spanning stay-prob 0.80..0.995 and a range of
  // lengths (longer features slightly more static, matching the paper's
  // byte-weighted observation), ~20% item features.
  const std::size_t num_user = num_features * 4 / 5;
  for (std::size_t i = 0; i < num_user; ++i) {
    SparseFeatureSpec f;
    f.name = "user_" + std::to_string(i);
    f.klass = FeatureClass::kUser;
    f.update = i % 2 == 0 ? UpdateKind::kShiftAppend : UpdateKind::kRedraw;
    const double t = static_cast<double>(i) / static_cast<double>(num_user);
    f.stay_prob = 0.80 + 0.195 * t;
    f.mean_length = (4.0 + 60.0 * t * t) * scale;
    f.mean_length = std::max(2.0, f.mean_length);
    f.id_domain = 1'000'000;
    f.sync_group = -1;
    spec.sparse.push_back(std::move(f));
  }
  for (std::size_t i = num_user; i < num_features; ++i) {
    SparseFeatureSpec f;
    f.name = "item_" + std::to_string(i - num_user);
    f.klass = FeatureClass::kItem;
    f.update = UpdateKind::kRedraw;
    f.stay_prob = 0.02 + 0.3 * (static_cast<double>(i - num_user) /
                                static_cast<double>(num_features - num_user));
    f.mean_length = std::max(2.0, 6.0 * scale);
    f.id_domain = 5'000'000;
    f.sync_group = -1;
    spec.sparse.push_back(std::move(f));
  }
  return spec;
}

std::vector<std::vector<std::string>> RmDedupGroups(RmKind kind,
                                                    const DatasetSpec& spec) {
  std::size_t groups = 0;
  switch (kind) {
    case RmKind::kRm1:
      groups = 5;
      break;
    case RmKind::kRm2:
    case RmKind::kRm3:
      groups = 1;
      break;
  }
  std::vector<std::vector<std::string>> out(groups);
  for (const auto& f : spec.sparse) {
    if (f.sync_group >= 0 &&
        static_cast<std::size_t>(f.sync_group) < groups) {
      out[static_cast<std::size_t>(f.sync_group)].push_back(f.name);
    }
  }
  return out;
}

std::vector<std::string> RmElementwiseDedupFeatures(RmKind /*kind*/,
                                                    const DatasetSpec& spec) {
  std::vector<std::string> out;
  for (const auto& f : spec.sparse) {
    // Element-wise pooled user features with high duplication are worth
    // deduplicating (paper: DedupeFactor > 1.5 heuristic).
    if (f.klass == FeatureClass::kUser && f.sync_group < 0 &&
        f.stay_prob >= 0.85) {
      out.push_back(f.name);
    }
  }
  return out;
}

}  // namespace recd::datagen
