// Session-centric traffic generator.
//
// Emits the two raw log streams an industrial pipeline joins into
// training samples (paper Fig 1): FeatureLogs from inference servers and
// EventLogs from impression outcomes. Sessions are interleaved the way
// production traffic interleaves them — many concurrent sessions, each
// emitting impressions over time — which is precisely why, before RecD's
// clustering, a 4096-sample batch holds only ~1.15 samples per session
// (Fig 3 right).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "datagen/sample.h"
#include "datagen/schema.h"

namespace recd::datagen {

/// Evolving per-session feature state. Exposed for tests; normal users go
/// through TrafficGenerator.
class SessionState {
 public:
  SessionState(const DatasetSpec& spec, common::Rng& rng,
               std::int64_t session_id, std::int64_t planned_impressions);

  /// Advances the session by one impression: user features stay unchanged
  /// with their per-feature probability d(f) (sync groups draw once per
  /// group); item features re-draw. Returns the logged features.
  [[nodiscard]] FeatureLog NextImpression(common::Rng& rng,
                                          std::int64_t request_id,
                                          std::int64_t timestamp);

  /// Serving-side request (src/serve): advances user-class features once
  /// (same stay-prob / sync-group logic as NextImpression) and emits
  /// `candidates` logs — one per ranked item — that share the user state
  /// exactly while item-class features are drawn fresh per candidate.
  /// The shared user rows are what the serving batcher deduplicates
  /// across candidates and across concurrent requests of one user.
  [[nodiscard]] std::vector<FeatureLog> NextRequest(common::Rng& rng,
                                                    std::int64_t request_id,
                                                    std::int64_t timestamp,
                                                    std::size_t candidates);

  [[nodiscard]] std::int64_t session_id() const { return session_id_; }
  [[nodiscard]] std::int64_t remaining() const { return remaining_; }

 private:
  void InitFeature(std::size_t f, common::Rng& rng);
  void UpdateFeature(std::size_t f, common::Rng& rng);
  /// One change draw per feature / sync group; `user_only` restricts the
  /// advance to kUser features (the serving request path).
  void AdvanceFeatures(common::Rng& rng, bool user_only);
  [[nodiscard]] FeatureLog MakeLog(std::int64_t request_id,
                                   std::int64_t timestamp) const;

  const DatasetSpec* spec_;
  std::int64_t session_id_;
  std::int64_t remaining_;
  std::vector<std::vector<Id>> current_;  // per feature
  std::vector<float> session_dense_;      // per-session dense baseline
};

/// Ground-truth click model: the label depends deterministically on the
/// sample's features through hidden hash-derived weights, so models have
/// real signal to learn (used by the accuracy experiment).
[[nodiscard]] float ClickProbability(const FeatureLog& log);

class TrafficGenerator {
 public:
  /// Upper bound on how long after an impression its outcome event is
  /// logged (ticks). Streaming watermarks add this horizon before
  /// closing a window so every on-time event has joined
  /// (src/stream/windowed_etl.h).
  static constexpr std::int64_t kMaxEventDelayTicks = 50;

  explicit TrafficGenerator(DatasetSpec spec);

  struct Traffic {
    std::vector<FeatureLog> features;
    std::vector<EventLog> events;  // same order, same request ids
  };

  /// Generates `num_samples` impressions in global timestamp order,
  /// round-robining over a pool of concurrent sessions.
  [[nodiscard]] Traffic Generate(std::size_t num_samples);

  [[nodiscard]] const DatasetSpec& spec() const { return spec_; }

 private:
  void Refill();

  DatasetSpec spec_;
  common::Rng rng_;
  std::vector<SessionState> active_;
  std::int64_t next_session_id_ = 1;
  std::int64_t next_request_id_ = 1;
  std::int64_t clock_ = 0;
};

}  // namespace recd::datagen
