#include "datagen/sample.h"

namespace recd::datagen {

namespace {

void PutSparse(const std::vector<std::vector<Id>>& sparse,
               common::ByteWriter& out) {
  out.PutVarint(sparse.size());
  for (const auto& list : sparse) {
    out.PutVarint(list.size());
    for (const auto id : list) out.PutSVarint(id);
  }
}

std::vector<std::vector<Id>> GetSparse(common::ByteReader& in) {
  const std::uint64_t n = in.GetVarint();
  std::vector<std::vector<Id>> sparse(n);
  for (auto& list : sparse) {
    const std::uint64_t len = in.GetVarint();
    list.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) list.push_back(in.GetSVarint());
  }
  return sparse;
}

void PutDense(const std::vector<float>& dense, common::ByteWriter& out) {
  out.PutVarint(dense.size());
  for (const auto v : dense) out.PutF32(v);
}

std::vector<float> GetDense(common::ByteReader& in) {
  const std::uint64_t n = in.GetVarint();
  std::vector<float> dense;
  dense.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) dense.push_back(in.GetF32());
  return dense;
}

}  // namespace

void SerializeFeatureLog(const FeatureLog& log, common::ByteWriter& out) {
  out.PutSVarint(log.request_id);
  out.PutSVarint(log.session_id);
  out.PutSVarint(log.timestamp);
  PutDense(log.dense, out);
  PutSparse(log.sparse, out);
}

FeatureLog DeserializeFeatureLog(common::ByteReader& in) {
  FeatureLog log;
  log.request_id = in.GetSVarint();
  log.session_id = in.GetSVarint();
  log.timestamp = in.GetSVarint();
  log.dense = GetDense(in);
  log.sparse = GetSparse(in);
  return log;
}

void SerializeEventLog(const EventLog& log, common::ByteWriter& out) {
  out.PutSVarint(log.request_id);
  out.PutSVarint(log.session_id);
  out.PutSVarint(log.timestamp);
  out.PutF32(log.label);
}

EventLog DeserializeEventLog(common::ByteReader& in) {
  EventLog log;
  log.request_id = in.GetSVarint();
  log.session_id = in.GetSVarint();
  log.timestamp = in.GetSVarint();
  log.label = in.GetF32();
  return log;
}

void SerializeSample(const Sample& sample, common::ByteWriter& out) {
  out.PutSVarint(sample.request_id);
  out.PutSVarint(sample.session_id);
  out.PutSVarint(sample.timestamp);
  out.PutF32(sample.label);
  PutDense(sample.dense, out);
  PutSparse(sample.sparse, out);
}

Sample DeserializeSample(common::ByteReader& in) {
  Sample s;
  s.request_id = in.GetSVarint();
  s.session_id = in.GetSVarint();
  s.timestamp = in.GetSVarint();
  s.label = in.GetF32();
  s.dense = GetDense(in);
  s.sparse = GetSparse(in);
  return s;
}

}  // namespace recd::datagen
