#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/hash.h"

namespace recd::datagen {

std::size_t DatasetSpec::FeatureIndex(const std::string& name) const {
  for (std::size_t i = 0; i < sparse.size(); ++i) {
    if (sparse[i].name == name) return i;
  }
  throw std::out_of_range("DatasetSpec: unknown feature " + name);
}

namespace {

std::int64_t DrawId(const SparseFeatureSpec& spec, common::Rng& rng) {
  return rng.Zipf(spec.id_domain, spec.zipf_s);
}

std::size_t DrawLength(const SparseFeatureSpec& spec, common::Rng& rng) {
  // Poisson around the mean, at least 1, so l(f) is honored on average.
  return static_cast<std::size_t>(
      std::max<std::int64_t>(1, rng.Poisson(spec.mean_length)));
}

}  // namespace

SessionState::SessionState(const DatasetSpec& spec, common::Rng& rng,
                           std::int64_t session_id,
                           std::int64_t planned_impressions)
    : spec_(&spec),
      session_id_(session_id),
      remaining_(planned_impressions),
      current_(spec.num_sparse()) {
  for (std::size_t f = 0; f < spec.num_sparse(); ++f) InitFeature(f, rng);
  session_dense_.resize(spec.num_dense);
  for (auto& v : session_dense_) {
    v = static_cast<float>(rng.Gaussian(0.0, 1.0));
  }
}

void SessionState::InitFeature(std::size_t f, common::Rng& rng) {
  const auto& fs = spec_->sparse[f];
  auto& list = current_[f];
  list.clear();
  const std::size_t len = DrawLength(fs, rng);
  list.reserve(len);
  for (std::size_t i = 0; i < len; ++i) list.push_back(DrawId(fs, rng));
}

void SessionState::UpdateFeature(std::size_t f, common::Rng& rng) {
  const auto& fs = spec_->sparse[f];
  auto& list = current_[f];
  switch (fs.update) {
    case UpdateKind::kShiftAppend: {
      // Sliding window: drop the oldest element, append a new one —
      // the paper's partial-duplication mechanism (lists are shifts).
      if (!list.empty()) list.erase(list.begin());
      list.push_back(DrawId(fs, rng));
      return;
    }
    case UpdateKind::kRedraw:
      InitFeature(f, rng);
      return;
  }
}

void SessionState::AdvanceFeatures(common::Rng& rng, bool user_only) {
  // One change draw per sync group per impression, so grouped features
  // update in lockstep (grouped-IKJT premise). The draw uses the
  // stay_prob of the group's first member visited in this pass — give
  // a group's members one shared stay_prob (as every preset does), or
  // the later members' values are ignored; with user_only the first
  // *user-class* member drives the draw.
  std::vector<int> group_changed;  // -1 unknown, 0 stay, 1 change
  for (std::size_t f = 0; f < spec_->num_sparse(); ++f) {
    const auto& fs = spec_->sparse[f];
    if (user_only && fs.klass != FeatureClass::kUser) continue;
    bool change;
    if (fs.sync_group >= 0) {
      const auto g = static_cast<std::size_t>(fs.sync_group);
      if (g >= group_changed.size()) group_changed.resize(g + 1, -1);
      if (group_changed[g] < 0) {
        group_changed[g] = rng.Bernoulli(1.0 - fs.stay_prob) ? 1 : 0;
      }
      change = group_changed[g] == 1;
    } else {
      change = rng.Bernoulli(1.0 - fs.stay_prob);
    }
    if (change) UpdateFeature(f, rng);
  }
}

FeatureLog SessionState::MakeLog(std::int64_t request_id,
                                 std::int64_t timestamp) const {
  FeatureLog log;
  log.request_id = request_id;
  log.session_id = session_id_;
  log.timestamp = timestamp;
  log.sparse = current_;  // copy: the log is immutable once emitted
  log.dense = session_dense_;
  return log;
}

FeatureLog SessionState::NextImpression(common::Rng& rng,
                                        std::int64_t request_id,
                                        std::int64_t timestamp) {
  if (remaining_ <= 0) {
    throw std::logic_error("SessionState: session already exhausted");
  }
  --remaining_;

  AdvanceFeatures(rng, /*user_only=*/false);

  FeatureLog log = MakeLog(request_id, timestamp);
  if (!log.dense.empty()) {
    // First dense slot carries per-impression variation (e.g. time).
    log.dense[0] = static_cast<float>(rng.Gaussian(0.0, 1.0));
  }
  return log;
}

std::vector<FeatureLog> SessionState::NextRequest(common::Rng& rng,
                                                  std::int64_t request_id,
                                                  std::int64_t timestamp,
                                                  std::size_t candidates) {
  if (remaining_ <= 0) {
    throw std::logic_error("SessionState: session already exhausted");
  }
  if (candidates == 0) {
    throw std::invalid_argument("SessionState: candidates must be >= 1");
  }
  --remaining_;

  AdvanceFeatures(rng, /*user_only=*/true);
  // Per-request dense variation, shared by the request's candidates the
  // way the user state is.
  const auto dense0 = static_cast<float>(rng.Gaussian(0.0, 1.0));

  std::vector<FeatureLog> out;
  out.reserve(candidates);
  for (std::size_t c = 0; c < candidates; ++c) {
    // Each candidate is a distinct ranked item: item-class features are
    // drawn fresh, not evolved, per candidate.
    for (std::size_t f = 0; f < spec_->num_sparse(); ++f) {
      if (spec_->sparse[f].klass == FeatureClass::kItem) {
        InitFeature(f, rng);
      }
    }
    FeatureLog log = MakeLog(request_id, timestamp);
    if (!log.dense.empty()) log.dense[0] = dense0;
    out.push_back(std::move(log));
  }
  return out;
}

float ClickProbability(const FeatureLog& log) {
  // Hidden linear model over hash-derived id weights: deterministic,
  // learnable signal for the accuracy experiments.
  double score = 0.0;
  if (!log.sparse.empty()) {
    const auto& first = log.sparse.front();
    for (const auto id : log.sparse.front()) {
      const auto h = common::Mix64(static_cast<std::uint64_t>(id));
      score += (static_cast<double>(h % 2000) / 1000.0 - 1.0);
    }
    if (!first.empty()) score /= static_cast<double>(first.size());
  }
  if (!log.dense.empty()) score += 0.5 * static_cast<double>(log.dense[0]);
  score -= 1.0;  // skew toward negative labels (realistic CTR regime)
  return static_cast<float>(1.0 / (1.0 + std::exp(-score)));
}

TrafficGenerator::TrafficGenerator(DatasetSpec spec)
    : spec_(std::move(spec)), rng_(spec_.seed) {
  if (spec_.concurrent_sessions == 0) {
    throw std::invalid_argument(
        "TrafficGenerator: concurrent_sessions must be positive");
  }
}

void TrafficGenerator::Refill() {
  while (active_.size() < spec_.concurrent_sessions) {
    const std::int64_t size =
        common::SampleSessionSize(rng_, spec_.mean_session_size);
    active_.emplace_back(spec_, rng_, next_session_id_++, size);
  }
}

TrafficGenerator::Traffic TrafficGenerator::Generate(
    std::size_t num_samples) {
  Traffic out;
  out.features.reserve(num_samples);
  out.events.reserve(num_samples);
  for (std::size_t i = 0; i < num_samples; ++i) {
    Refill();
    const std::size_t pick = static_cast<std::size_t>(
        rng_.Uniform(0, static_cast<std::int64_t>(active_.size()) - 1));
    auto& session = active_[pick];
    const std::int64_t request_id = next_request_id_++;
    const std::int64_t ts = ++clock_;
    FeatureLog flog = session.NextImpression(rng_, request_id, ts);

    EventLog elog;
    elog.request_id = request_id;
    elog.session_id = flog.session_id;
    // Outcomes land slightly after the impression.
    elog.timestamp = ts + rng_.Uniform(1, kMaxEventDelayTicks);
    elog.label = rng_.Bernoulli(ClickProbability(flog)) ? 1.0f : 0.0f;

    out.features.push_back(std::move(flog));
    out.events.push_back(elog);

    if (session.remaining() == 0) {
      std::swap(active_[pick], active_.back());
      active_.pop_back();
    }
  }
  return out;
}

}  // namespace recd::datagen
