// Log and sample records flowing through the pipeline.
//
// Inference servers log features at request time (to avoid data leakage,
// §2.1); user-facing services log impression outcomes; the ETL join
// produces labeled Samples. Sparse values are aligned to the
// DatasetSpec's feature order.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "tensor/jagged.h"

namespace recd::datagen {

using tensor::Id;

/// Features captured at inference time, keyed by request.
struct FeatureLog {
  std::int64_t request_id = 0;
  std::int64_t session_id = 0;
  std::int64_t timestamp = 0;
  std::vector<float> dense;
  std::vector<std::vector<Id>> sparse;  // aligned to DatasetSpec::sparse
};

/// Impression outcome (e.g. click) keyed by request.
struct EventLog {
  std::int64_t request_id = 0;
  std::int64_t session_id = 0;
  std::int64_t timestamp = 0;
  float label = 0;
};

/// Labeled training sample (output of the ETL join).
struct Sample {
  std::int64_t request_id = 0;
  std::int64_t session_id = 0;
  std::int64_t timestamp = 0;
  float label = 0;
  std::vector<float> dense;
  std::vector<std::vector<Id>> sparse;

  [[nodiscard]] bool operator==(const Sample&) const = default;
};

/// Row-wise serialization used by Scribe framing and tests. (Columnar
/// storage uses its own stripe encoding.)
void SerializeFeatureLog(const FeatureLog& log, common::ByteWriter& out);
[[nodiscard]] FeatureLog DeserializeFeatureLog(common::ByteReader& in);
void SerializeEventLog(const EventLog& log, common::ByteWriter& out);
[[nodiscard]] EventLog DeserializeEventLog(common::ByteReader& in);
void SerializeSample(const Sample& sample, common::ByteWriter& out);
[[nodiscard]] Sample DeserializeSample(common::ByteReader& in);

}  // namespace recd::datagen
