// KeyedJaggedTensor (KJT): the batch format for sparse features.
//
// Maps feature keys to JaggedTensors that all share one batch dimension —
// the format DLRM trainers consume (paper §4.2, Fig 5 left). RecD's IKJT
// deduplicates these per-batch.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tensor/jagged.h"

namespace recd::tensor {

class KeyedJaggedTensor {
 public:
  KeyedJaggedTensor() = default;

  /// Adds a feature. All features must share the same number of rows
  /// (batch size); the first insert fixes it. Throws on mismatch or
  /// duplicate key.
  void AddFeature(std::string key, JaggedTensor tensor);

  [[nodiscard]] std::size_t num_keys() const { return keys_.size(); }

  /// Batch size (rows); 0 when no features were added.
  [[nodiscard]] std::size_t batch_size() const { return batch_size_; }

  [[nodiscard]] const std::vector<std::string>& keys() const { return keys_; }

  [[nodiscard]] bool Has(std::string_view key) const;

  /// Feature lookup by key. Throws std::out_of_range for unknown keys.
  [[nodiscard]] const JaggedTensor& Get(std::string_view key) const;

  /// Feature lookup by insertion index. Requires i < num_keys().
  [[nodiscard]] const JaggedTensor& tensor(std::size_t i) const {
    return tensors_[i];
  }

  /// Mutable feature access for in-place preprocessing transforms.
  /// Throws std::out_of_range for unknown keys.
  [[nodiscard]] JaggedTensor& MutableGet(std::string_view key);

  /// Sum of values-slice lengths across all features.
  [[nodiscard]] std::size_t total_values() const;

  [[nodiscard]] bool operator==(const KeyedJaggedTensor& other) const;

 private:
  std::vector<std::string> keys_;
  std::vector<JaggedTensor> tensors_;
  std::unordered_map<std::string, std::size_t> index_;
  std::size_t batch_size_ = 0;
  bool batch_size_set_ = false;
};

}  // namespace recd::tensor
