#include "tensor/kjt.h"

#include <stdexcept>

namespace recd::tensor {

void KeyedJaggedTensor::AddFeature(std::string key, JaggedTensor tensor) {
  if (index_.contains(key)) {
    throw std::invalid_argument("KJT::AddFeature: duplicate key " + key);
  }
  if (batch_size_set_ && tensor.num_rows() != batch_size_) {
    throw std::invalid_argument(
        "KJT::AddFeature: batch size mismatch for key " + key);
  }
  batch_size_ = tensor.num_rows();
  batch_size_set_ = true;
  index_.emplace(key, keys_.size());
  keys_.push_back(std::move(key));
  tensors_.push_back(std::move(tensor));
}

bool KeyedJaggedTensor::Has(std::string_view key) const {
  return index_.contains(std::string(key));
}

JaggedTensor& KeyedJaggedTensor::MutableGet(std::string_view key) {
  const auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    throw std::out_of_range("KJT::MutableGet: unknown key " +
                            std::string(key));
  }
  return tensors_[it->second];
}

const JaggedTensor& KeyedJaggedTensor::Get(std::string_view key) const {
  const auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    throw std::out_of_range("KJT::Get: unknown key " + std::string(key));
  }
  return tensors_[it->second];
}

std::size_t KeyedJaggedTensor::total_values() const {
  std::size_t n = 0;
  for (const auto& t : tensors_) n += t.total_values();
  return n;
}

bool KeyedJaggedTensor::operator==(const KeyedJaggedTensor& other) const {
  if (keys_ != other.keys_) return false;
  return tensors_ == other.tensors_;
}

}  // namespace recd::tensor
