#include "tensor/jagged.h"

#include <algorithm>
#include <stdexcept>

namespace recd::tensor {

JaggedTensor::JaggedTensor(std::vector<Id> values,
                           std::vector<Offset> offsets)
    : values_(std::move(values)), offsets_(std::move(offsets)) {
  if (offsets_.empty()) {
    if (!values_.empty()) {
      throw std::invalid_argument(
          "JaggedTensor: values present but no rows");
    }
    return;
  }
  if (offsets_.front() != 0) {
    throw std::invalid_argument("JaggedTensor: offsets must start at 0");
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) {
      throw std::invalid_argument(
          "JaggedTensor: offsets must be non-decreasing");
    }
  }
  if (offsets_.back() > static_cast<Offset>(values_.size())) {
    throw std::invalid_argument(
        "JaggedTensor: offsets index past end of values");
  }
}

JaggedTensor JaggedTensor::FromRows(std::span<const std::vector<Id>> rows) {
  JaggedTensor jt;
  for (const auto& r : rows) jt.AppendRow(r);
  return jt;
}

JaggedTensor JaggedTensor::FromRows(
    std::initializer_list<std::vector<Id>> rows) {
  JaggedTensor jt;
  for (const auto& r : rows) jt.AppendRow(r);
  return jt;
}

std::span<const Id> JaggedTensor::row(std::size_t i) const {
  const Offset start = offsets_[i];
  const Offset end = i + 1 < offsets_.size()
                         ? offsets_[i + 1]
                         : static_cast<Offset>(values_.size());
  return std::span<const Id>(values_).subspan(
      static_cast<std::size_t>(start), static_cast<std::size_t>(end - start));
}

Offset JaggedTensor::length(std::size_t i) const {
  const Offset end = i + 1 < offsets_.size()
                         ? offsets_[i + 1]
                         : static_cast<Offset>(values_.size());
  return end - offsets_[i];
}

void JaggedTensor::AppendRow(std::span<const Id> ids) {
  offsets_.push_back(static_cast<Offset>(values_.size()));
  values_.insert(values_.end(), ids.begin(), ids.end());
}

bool JaggedTensor::operator==(const JaggedTensor& other) const {
  return values_ == other.values_ && offsets_ == other.offsets_;
}

bool JaggedTensor::RowEquals(std::size_t i, std::span<const Id> ids) const {
  const auto r = row(i);
  return r.size() == ids.size() && std::equal(r.begin(), r.end(), ids.begin());
}

}  // namespace recd::tensor
