#include "tensor/ikjt.h"

#include <stdexcept>
#include <unordered_map>

#include "common/hash.h"
#include "tensor/jagged_ops.h"

namespace recd::tensor {

InverseKeyedJaggedTensor::InverseKeyedJaggedTensor(
    std::vector<std::string> keys, std::vector<JaggedTensor> unique,
    std::vector<std::int64_t> inverse_lookup)
    : keys_(std::move(keys)),
      unique_(std::move(unique)),
      inverse_lookup_(std::move(inverse_lookup)) {
  if (keys_.empty() || keys_.size() != unique_.size()) {
    throw std::invalid_argument("IKJT: keys/unique size mismatch");
  }
  const std::size_t u = unique_.front().num_rows();
  for (const auto& t : unique_) {
    if (t.num_rows() != u) {
      throw std::invalid_argument(
          "IKJT: all group features must share the unique row count");
    }
  }
  for (const auto idx : inverse_lookup_) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= u) {
      throw std::invalid_argument("IKJT: inverse_lookup out of range");
    }
  }
}

std::size_t InverseKeyedJaggedTensor::unique_rows() const {
  return unique_.empty() ? 0 : unique_.front().num_rows();
}

const JaggedTensor& InverseKeyedJaggedTensor::Unique(
    std::string_view key) const {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return unique_[i];
  }
  throw std::out_of_range("IKJT::Unique: unknown key " + std::string(key));
}

JaggedTensor& InverseKeyedJaggedTensor::MutableUnique(std::string_view key) {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return unique_[i];
  }
  throw std::out_of_range("IKJT::MutableUnique: unknown key " +
                          std::string(key));
}

std::size_t InverseKeyedJaggedTensor::total_unique_values() const {
  std::size_t n = 0;
  for (const auto& t : unique_) n += t.total_values();
  return n;
}

std::span<const Id> InverseKeyedJaggedTensor::Row(std::string_view key,
                                                  std::size_t i) const {
  const auto& t = Unique(key);
  return t.row(static_cast<std::size_t>(inverse_lookup_[i]));
}

InverseKeyedJaggedTensor DeduplicateRows(
    std::vector<std::string> keys, std::size_t batch_size,
    const GroupRowAccessor& row_of, DedupStats* stats) {
  if (keys.empty()) {
    throw std::invalid_argument("DeduplicateRows: empty feature group");
  }
  const std::size_t num_features = keys.size();
  std::vector<JaggedTensor> unique(num_features);
  std::vector<std::int64_t> inverse_lookup;
  inverse_lookup.reserve(batch_size);

  // hash over all group rows -> candidate unique indices (verified by
  // full equality against the already-stored unique rows, so a hash
  // collision can never alias distinct rows).
  std::unordered_map<std::uint64_t, std::vector<std::int64_t>> seen;
  seen.reserve(batch_size * 2);
  std::size_t values_before = 0;

  for (std::size_t i = 0; i < batch_size; ++i) {
    std::uint64_t h = 0x5eedULL;
    for (std::size_t k = 0; k < num_features; ++k) {
      const auto row = row_of(i, k);
      values_before += row.size();
      h = common::HashCombine(h, common::HashIds(row));
    }
    auto& candidates = seen[h];
    std::int64_t match = -1;
    for (const auto cand : candidates) {
      bool all_equal = true;
      for (std::size_t k = 0; k < num_features; ++k) {
        if (!unique[k].RowEquals(static_cast<std::size_t>(cand),
                                 row_of(i, k))) {
          all_equal = false;
          break;
        }
      }
      if (all_equal) {
        match = cand;
        break;
      }
    }
    if (match < 0) {
      match = static_cast<std::int64_t>(unique[0].num_rows());
      candidates.push_back(match);
      for (std::size_t k = 0; k < num_features; ++k) {
        unique[k].AppendRow(row_of(i, k));
      }
    }
    inverse_lookup.push_back(match);
  }

  if (stats != nullptr) {
    stats->batch_size = batch_size;
    stats->unique_rows = unique[0].num_rows();
    stats->values_before = values_before;
    stats->values_after = 0;
    for (const auto& u : unique) stats->values_after += u.total_values();
  }
  return InverseKeyedJaggedTensor(std::move(keys), std::move(unique),
                                  std::move(inverse_lookup));
}

InverseKeyedJaggedTensor DeduplicateGroup(
    const KeyedJaggedTensor& kjt, std::span<const std::string> group_keys,
    DedupStats* stats) {
  if (group_keys.empty()) {
    throw std::invalid_argument("DeduplicateGroup: empty feature group");
  }
  std::vector<const JaggedTensor*> features;
  features.reserve(group_keys.size());
  for (const auto& key : group_keys) {
    features.push_back(&kjt.Get(key));  // throws for unknown keys
  }
  return DeduplicateRows(
      std::vector<std::string>(group_keys.begin(), group_keys.end()),
      kjt.batch_size(),
      [&](std::size_t row, std::size_t k) { return features[k]->row(row); },
      stats);
}

InverseKeyedJaggedTensor SliceIkjt(const InverseKeyedJaggedTensor& ikjt,
                                   std::size_t lo, std::size_t hi) {
  if (lo > hi || hi > ikjt.batch_size()) {
    throw std::out_of_range("SliceIkjt: bad row range");
  }
  const auto inverse = ikjt.inverse_lookup();
  // Renumber the unique rows the slice touches, in first-appearance
  // order — the order DeduplicateRows would assign over the slice.
  std::vector<std::int64_t> old_to_new(ikjt.unique_rows(), -1);
  std::vector<std::int64_t> kept;  // new index -> old index
  std::vector<std::int64_t> new_inverse;
  new_inverse.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto old = inverse[i];
    if (old_to_new[static_cast<std::size_t>(old)] < 0) {
      old_to_new[static_cast<std::size_t>(old)] =
          static_cast<std::int64_t>(kept.size());
      kept.push_back(old);
    }
    new_inverse.push_back(old_to_new[static_cast<std::size_t>(old)]);
  }
  std::vector<JaggedTensor> unique;
  unique.reserve(ikjt.num_keys());
  for (std::size_t k = 0; k < ikjt.num_keys(); ++k) {
    unique.push_back(JaggedIndexSelect(ikjt.unique(k), kept));
  }
  return InverseKeyedJaggedTensor(ikjt.keys(), std::move(unique),
                                  std::move(new_inverse));
}

KeyedJaggedTensor ExpandToKjt(const InverseKeyedJaggedTensor& ikjt) {
  KeyedJaggedTensor out;
  for (std::size_t k = 0; k < ikjt.num_keys(); ++k) {
    out.AddFeature(ikjt.keys()[k],
                   JaggedIndexSelect(ikjt.unique(k), ikjt.inverse_lookup()));
  }
  return out;
}

}  // namespace recd::tensor
