#include "tensor/partial_ikjt.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "common/hash.h"

namespace recd::tensor {

PartialIkjt::PartialIkjt(std::string key, std::vector<Id> values,
                         std::vector<RowRef> inverse_lookup)
    : key_(std::move(key)),
      values_(std::move(values)),
      inverse_lookup_(std::move(inverse_lookup)) {
  for (const auto& ref : inverse_lookup_) {
    if (ref.offset < 0 || ref.length < 0 ||
        ref.offset + ref.length > static_cast<std::int64_t>(values_.size())) {
      throw std::invalid_argument("PartialIkjt: row ref out of range");
    }
  }
}

std::span<const Id> PartialIkjt::Row(std::size_t i) const {
  const auto& ref = inverse_lookup_[i];
  return std::span<const Id>(values_).subspan(
      static_cast<std::size_t>(ref.offset),
      static_cast<std::size_t>(ref.length));
}

double PartialIkjt::dedupe_factor() const {
  std::size_t logical = 0;
  for (const auto& ref : inverse_lookup_) {
    logical += static_cast<std::size_t>(ref.length);
  }
  return values_.empty()
             ? 1.0
             : static_cast<double>(logical) /
                   static_cast<double>(values_.size());
}

PartialIkjt BuildPartialIkjt(const std::string& key,
                             const JaggedTensor& feature,
                             const PartialDedupOptions& options) {
  std::vector<Id> values;
  std::vector<PartialIkjt::RowRef> lookup;
  lookup.reserve(feature.num_rows());

  // Exact-match memo: any previously emitted window can be reused
  // verbatim (so a value that recurs later — paper Fig 5's third row —
  // points back at its first occurrence).
  std::unordered_map<std::uint64_t, std::vector<PartialIkjt::RowRef>> memo;

  // Shift detection chains from the previous row's window. Appending new
  // elements is only possible while that window still ends at the tail of
  // `values` (appends must stay contiguous).
  PartialIkjt::RowRef prev{0, 0};
  bool have_prev = false;

  auto window_equals = [&](const PartialIkjt::RowRef& ref,
                           std::span<const Id> row) {
    if (static_cast<std::size_t>(ref.length) != row.size()) return false;
    return std::equal(row.begin(), row.end(),
                      values.begin() + static_cast<std::ptrdiff_t>(ref.offset));
  };

  for (std::size_t i = 0; i < feature.num_rows(); ++i) {
    const auto row = feature.row(i);
    const std::uint64_t h = common::HashIds(row);

    // 1) Exact reuse of any prior window.
    bool emitted = false;
    if (const auto it = memo.find(h); it != memo.end()) {
      for (const auto& ref : it->second) {
        if (window_equals(ref, row)) {
          lookup.push_back(ref);
          prev = ref;
          emitted = true;
          break;
        }
      }
    }

    // 2) Shift detection: row equals the previous window shifted by k
    // (drop the k oldest elements, append up to max_shift new ones). New
    // elements can only be appended while the previous window ends at the
    // tail of `values`.
    const bool prev_at_tail =
        have_prev &&
        prev.offset + prev.length == static_cast<std::int64_t>(values.size());
    if (!emitted && prev_at_tail) {
      const std::size_t max_k = std::min(
          options.max_shift, static_cast<std::size_t>(prev.length));
      for (std::size_t k = 1; k <= max_k && !emitted; ++k) {
        const std::size_t overlap =
            static_cast<std::size_t>(prev.length) - k;
        if (row.size() < overlap) continue;
        const std::size_t fresh = row.size() - overlap;
        if (fresh == 0 || fresh > options.max_shift) continue;
        const auto* window_begin =
            values.data() + prev.offset + static_cast<std::int64_t>(k);
        if (!std::equal(window_begin, window_begin + overlap, row.begin())) {
          continue;
        }
        values.insert(values.end(),
                      row.end() - static_cast<std::ptrdiff_t>(fresh),
                      row.end());
        const PartialIkjt::RowRef ref{
            prev.offset + static_cast<std::int64_t>(k),
            static_cast<std::int64_t>(row.size())};
        lookup.push_back(ref);
        memo[h].push_back(ref);
        prev = ref;
        emitted = true;
      }
    }

    // 3) Fresh block.
    if (!emitted) {
      const PartialIkjt::RowRef ref{
          static_cast<std::int64_t>(values.size()),
          static_cast<std::int64_t>(row.size())};
      values.insert(values.end(), row.begin(), row.end());
      lookup.push_back(ref);
      memo[h].push_back(ref);
      prev = ref;
    }
    have_prev = true;
  }
  return PartialIkjt(key, std::move(values), std::move(lookup));
}

JaggedTensor ExpandPartialIkjt(const PartialIkjt& ikjt) {
  JaggedTensor out;
  for (std::size_t i = 0; i < ikjt.batch_size(); ++i) {
    out.AppendRow(ikjt.Row(i));
  }
  return out;
}

}  // namespace recd::tensor
