#include "tensor/jagged_ops.h"

#include <algorithm>
#include <stdexcept>

namespace recd::tensor {

JaggedTensor JaggedIndexSelect(const JaggedTensor& src,
                               std::span<const std::int64_t> indices) {
  // Two-pass: size the output exactly, then copy row spans. This is the
  // O6 fast path — no padding, no dense intermediate.
  std::size_t total = 0;
  for (const auto idx : indices) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= src.num_rows()) {
      throw std::out_of_range("JaggedIndexSelect: index out of range");
    }
    total += static_cast<std::size_t>(
        src.length(static_cast<std::size_t>(idx)));
  }
  std::vector<Id> values;
  values.reserve(total);
  std::vector<Offset> offsets;
  offsets.reserve(indices.size());
  for (const auto idx : indices) {
    offsets.push_back(static_cast<Offset>(values.size()));
    const auto r = src.row(static_cast<std::size_t>(idx));
    values.insert(values.end(), r.begin(), r.end());
  }
  return JaggedTensor(std::move(values), std::move(offsets));
}

JaggedTensor SliceJaggedRows(const JaggedTensor& src, std::size_t lo,
                             std::size_t hi) {
  if (lo > hi || hi > src.num_rows()) {
    throw std::out_of_range("SliceJaggedRows: bad row range");
  }
  std::vector<Id> values;
  std::vector<Offset> offsets;
  offsets.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    offsets.push_back(static_cast<Offset>(values.size()));
    const auto r = src.row(i);
    values.insert(values.end(), r.begin(), r.end());
  }
  return JaggedTensor(std::move(values), std::move(offsets));
}

PaddedDense JaggedToPaddedDense(const JaggedTensor& src, Id pad) {
  PaddedDense out;
  out.rows = src.num_rows();
  for (std::size_t i = 0; i < src.num_rows(); ++i) {
    out.max_len = std::max(out.max_len,
                           static_cast<std::size_t>(src.length(i)));
  }
  out.data.assign(out.rows * out.max_len, pad);
  out.lengths.resize(out.rows);
  for (std::size_t i = 0; i < src.num_rows(); ++i) {
    const auto r = src.row(i);
    std::copy(r.begin(), r.end(), out.data.begin() + i * out.max_len);
    out.lengths[i] = static_cast<std::int64_t>(r.size());
  }
  return out;
}

PaddedDense DenseIndexSelect(const PaddedDense& src,
                             std::span<const std::int64_t> indices) {
  PaddedDense out;
  out.rows = indices.size();
  out.max_len = src.max_len;
  out.data.resize(out.rows * out.max_len);
  out.lengths.resize(out.rows);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto idx = indices[i];
    if (idx < 0 || static_cast<std::size_t>(idx) >= src.rows) {
      throw std::out_of_range("DenseIndexSelect: index out of range");
    }
    const auto* from =
        src.data.data() + static_cast<std::size_t>(idx) * src.max_len;
    std::copy(from, from + src.max_len,
              out.data.begin() + i * out.max_len);
    out.lengths[i] = src.lengths[static_cast<std::size_t>(idx)];
  }
  return out;
}

JaggedTensor PaddedDenseToJagged(const PaddedDense& src) {
  JaggedTensor out;
  for (std::size_t i = 0; i < src.rows; ++i) {
    const auto len = static_cast<std::size_t>(src.lengths[i]);
    out.AppendRow(std::span<const Id>(src.data.data() + i * src.max_len,
                                      len));
  }
  return out;
}

}  // namespace recd::tensor
