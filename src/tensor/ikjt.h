// InverseKeyedJaggedTensor (IKJT): RecD's deduplicated batch format.
//
// Paper §4.2, Fig 5. An IKJT stores, for a *group* of features that are
// updated synchronously, one deduplicated JaggedTensor per feature plus a
// single shared `inverse_lookup` slice of batch length:
// `inverse_lookup[i]` is the index of the unique row that batch row i
// maps to, for every feature in the group.
//
// Invariants (enforced on construction and by the builder):
//   * every feature's unique tensor has the same number of unique rows U;
//   * every inverse_lookup entry is in [0, U);
//   * a batch row joins an existing unique entry only if ALL features in
//     the group match it exactly — otherwise it becomes a new unique
//     entry (the paper's rule for unsynchronized rows).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/kjt.h"

namespace recd::tensor {

/// Outcome statistics of one group deduplication, feeding the paper's
/// DedupeFactor accounting (§4.2).
struct DedupStats {
  std::size_t batch_size = 0;    // rows in the batch (B)
  std::size_t unique_rows = 0;   // unique entries after dedup
  std::size_t values_before = 0; // sum of values lengths across features
  std::size_t values_after = 0;  // same, deduplicated

  /// Measured DedupeFactor: original values length / deduplicated length.
  [[nodiscard]] double dedupe_factor() const {
    return values_after == 0
               ? 1.0
               : static_cast<double>(values_before) /
                     static_cast<double>(values_after);
  }
};

class InverseKeyedJaggedTensor {
 public:
  InverseKeyedJaggedTensor() = default;

  /// Assembles an IKJT from parts; validates the invariants above.
  InverseKeyedJaggedTensor(std::vector<std::string> keys,
                           std::vector<JaggedTensor> unique,
                           std::vector<std::int64_t> inverse_lookup);

  [[nodiscard]] std::size_t num_keys() const { return keys_.size(); }
  [[nodiscard]] const std::vector<std::string>& keys() const { return keys_; }

  /// Batch size of the original (expanded) batch.
  [[nodiscard]] std::size_t batch_size() const {
    return inverse_lookup_.size();
  }

  /// Number of deduplicated (unique) rows shared by all features.
  [[nodiscard]] std::size_t unique_rows() const;

  /// Deduplicated tensor of feature `key`. Throws std::out_of_range if
  /// the key is not part of this group.
  [[nodiscard]] const JaggedTensor& Unique(std::string_view key) const;

  /// Deduplicated tensor by group position.
  [[nodiscard]] const JaggedTensor& unique(std::size_t i) const {
    return unique_[i];
  }

  /// Mutable deduplicated tensor of feature `key`, for the O4 wrapper
  /// that runs preprocessing over deduplicated slices in place.
  [[nodiscard]] JaggedTensor& MutableUnique(std::string_view key);

  [[nodiscard]] std::span<const std::int64_t> inverse_lookup() const {
    return inverse_lookup_;
  }

  /// Sum of deduplicated values lengths across the group's features.
  [[nodiscard]] std::size_t total_unique_values() const;

  /// Reconstructs row i of feature `key` (logical view; used by tests and
  /// the IKJT→KJT expansion).
  [[nodiscard]] std::span<const Id> Row(std::string_view key,
                                        std::size_t i) const;

 private:
  std::vector<std::string> keys_;
  std::vector<JaggedTensor> unique_;
  std::vector<std::int64_t> inverse_lookup_;
};

/// Deduplicates the `group_keys` features of `kjt` into one IKJT
/// (paper Fig 5: Feature Conversion). Duplicate detection hashes all of a
/// row's group features jointly, then verifies with full equality so hash
/// collisions can never alias distinct rows. O(total values) expected.
///
/// Throws std::invalid_argument if `group_keys` is empty or contains a
/// key absent from `kjt`.
[[nodiscard]] InverseKeyedJaggedTensor DeduplicateGroup(
    const KeyedJaggedTensor& kjt, std::span<const std::string> group_keys,
    DedupStats* stats = nullptr);

/// Row-major variant used during feature conversion (paper Fig 5): rows
/// are consumed straight from storage without first materializing full
/// KJT columns, so duplicate copies are *avoided*, not copied-then-
/// dropped. `row_of(row, k)` must return feature k's ID list for batch
/// row `row`.
using GroupRowAccessor =
    std::function<std::span<const Id>(std::size_t row, std::size_t k)>;
[[nodiscard]] InverseKeyedJaggedTensor DeduplicateRows(
    std::vector<std::string> keys, std::size_t batch_size,
    const GroupRowAccessor& row_of, DedupStats* stats = nullptr);

/// Expands an IKJT back to per-feature KJT form via JaggedIndexSelect
/// (paper O6: the conversion trainers apply before feature interaction).
[[nodiscard]] KeyedJaggedTensor ExpandToKjt(
    const InverseKeyedJaggedTensor& ikjt);

/// Restriction of `ikjt` to batch rows [lo, hi): the inverse slice is
/// rebased onto a compacted unique set (kept rows renumbered in
/// first-appearance order) and every feature keeps exactly the unique
/// rows the slice references. Produces the same IKJT that deduplicating
/// the sliced expanded rows from scratch would — the per-rank split of
/// the dedup-aware sparse all-to-all. Throws std::out_of_range unless
/// lo <= hi <= batch_size().
[[nodiscard]] InverseKeyedJaggedTensor SliceIkjt(
    const InverseKeyedJaggedTensor& ikjt, std::size_t lo, std::size_t hi);

}  // namespace recd::tensor
