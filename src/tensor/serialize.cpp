#include "tensor/serialize.h"

namespace recd::tensor {

namespace {

void PutJagged(const JaggedTensor& t, common::ByteWriter& out) {
  out.PutVarint(t.num_rows());
  for (const auto o : t.offsets()) {
    out.PutU64(static_cast<std::uint64_t>(o));
  }
  out.PutVarint(t.total_values());
  for (const auto v : t.values()) {
    out.PutU64(static_cast<std::uint64_t>(v));
  }
}

JaggedTensor GetJagged(common::ByteReader& in) {
  const std::uint64_t rows = in.GetVarint();
  std::vector<Offset> offsets;
  offsets.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    offsets.push_back(static_cast<Offset>(in.GetU64()));
  }
  const std::uint64_t nvals = in.GetVarint();
  std::vector<Id> values;
  values.reserve(nvals);
  for (std::uint64_t i = 0; i < nvals; ++i) {
    values.push_back(static_cast<Id>(in.GetU64()));
  }
  return JaggedTensor(std::move(values), std::move(offsets));
}

}  // namespace

void SerializeKjt(const KeyedJaggedTensor& kjt, common::ByteWriter& out) {
  out.PutVarint(kjt.num_keys());
  for (std::size_t i = 0; i < kjt.num_keys(); ++i) {
    out.PutString(kjt.keys()[i]);
    PutJagged(kjt.tensor(i), out);
  }
}

KeyedJaggedTensor DeserializeKjt(common::ByteReader& in) {
  const std::uint64_t n = in.GetVarint();
  KeyedJaggedTensor kjt;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = in.GetString();
    kjt.AddFeature(std::move(key), GetJagged(in));
  }
  return kjt;
}

void SerializeIkjt(const InverseKeyedJaggedTensor& ikjt,
                   common::ByteWriter& out) {
  out.PutVarint(ikjt.num_keys());
  for (std::size_t i = 0; i < ikjt.num_keys(); ++i) {
    out.PutString(ikjt.keys()[i]);
    PutJagged(ikjt.unique(i), out);
  }
  out.PutVarint(ikjt.batch_size());
  for (const auto idx : ikjt.inverse_lookup()) {
    out.PutU64(static_cast<std::uint64_t>(idx));
  }
}

InverseKeyedJaggedTensor DeserializeIkjt(common::ByteReader& in) {
  const std::uint64_t n = in.GetVarint();
  std::vector<std::string> keys;
  std::vector<JaggedTensor> unique;
  keys.reserve(n);
  unique.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    keys.push_back(in.GetString());
    unique.push_back(GetJagged(in));
  }
  const std::uint64_t b = in.GetVarint();
  std::vector<std::int64_t> lookup;
  lookup.reserve(b);
  for (std::uint64_t i = 0; i < b; ++i) {
    lookup.push_back(static_cast<std::int64_t>(in.GetU64()));
  }
  return InverseKeyedJaggedTensor(std::move(keys), std::move(unique),
                                  std::move(lookup));
}

std::size_t KjtWireBytes(const KeyedJaggedTensor& kjt) {
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < kjt.num_keys(); ++i) {
    const auto& t = kjt.tensor(i);
    bytes += (t.num_rows() + t.total_values()) * sizeof(std::int64_t);
  }
  return bytes;
}

std::size_t IkjtWireBytes(const InverseKeyedJaggedTensor& ikjt,
                          bool include_inverse_lookup) {
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < ikjt.num_keys(); ++i) {
    const auto& t = ikjt.unique(i);
    bytes += (t.num_rows() + t.total_values()) * sizeof(std::int64_t);
  }
  if (include_inverse_lookup) {
    bytes += ikjt.batch_size() * sizeof(std::int64_t);
  }
  return bytes;
}

}  // namespace recd::tensor
