// Jagged tensor operators.
//
// JaggedIndexSelect is RecD optimization O6: index_select directly over a
// jagged tensor, avoiding the pad-to-dense round trip that the paper
// identifies as a large memory overhead. The dense-path helpers here
// implement that *baseline* so benchmarks can measure the overhead O6
// removes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/jagged.h"

namespace recd::tensor {

/// out.row(i) = src.row(indices[i]). Throws std::out_of_range on any
/// index outside [0, src.num_rows()).
[[nodiscard]] JaggedTensor JaggedIndexSelect(
    const JaggedTensor& src, std::span<const std::int64_t> indices);

/// Rows [lo, hi) of `src` as a standalone tensor (offsets rebased to
/// start at 0). The per-rank/per-chunk batch split of the executed
/// distributed trainer. Throws std::out_of_range unless
/// lo <= hi <= src.num_rows().
[[nodiscard]] JaggedTensor SliceJaggedRows(const JaggedTensor& src,
                                           std::size_t lo, std::size_t hi);

/// Baseline path (pre-O6): a jagged tensor padded to a dense
/// [rows x max_len] matrix with explicit per-row lengths.
struct PaddedDense {
  std::vector<Id> data;                // rows*max_len, padded with `pad`
  std::vector<std::int64_t> lengths;   // true length per row
  std::size_t rows = 0;
  std::size_t max_len = 0;

  /// Bytes the padded representation occupies (the O6 overhead metric).
  [[nodiscard]] std::size_t byte_size() const {
    return data.size() * sizeof(Id) +
           lengths.size() * sizeof(std::int64_t);
  }
};

/// Pads to dense (baseline step 1).
[[nodiscard]] PaddedDense JaggedToPaddedDense(const JaggedTensor& src,
                                              Id pad = 0);

/// Dense index_select (baseline step 2): gathers rows of the padded
/// matrix. Throws std::out_of_range on bad indices.
[[nodiscard]] PaddedDense DenseIndexSelect(
    const PaddedDense& src, std::span<const std::int64_t> indices);

/// Converts the padded matrix back to jagged (baseline step 3).
[[nodiscard]] JaggedTensor PaddedDenseToJagged(const PaddedDense& src);

}  // namespace recd::tensor
