// Partial IKJT (paper §7, "Supporting Partial IKJTs").
//
// Exact-match IKJTs capture 81.6% of duplicate bytes; partial matches —
// which are *shifts* of a sliding-window feature list (e.g. "last N liked
// posts" after one new like) — capture another ~7.8%. A partial IKJT
// drops the offsets slice and instead stores a per-row [offset, length]
// pair into a shared values slice, so a shifted row can reference the
// overlapping window and append only its new elements.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/jagged.h"

namespace recd::tensor {

class PartialIkjt {
 public:
  struct RowRef {
    std::int64_t offset = 0;
    std::int64_t length = 0;
    [[nodiscard]] bool operator==(const RowRef&) const = default;
  };

  PartialIkjt() = default;
  PartialIkjt(std::string key, std::vector<Id> values,
              std::vector<RowRef> inverse_lookup);

  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] std::size_t batch_size() const {
    return inverse_lookup_.size();
  }
  [[nodiscard]] std::span<const Id> values() const { return values_; }
  [[nodiscard]] std::span<const RowRef> inverse_lookup() const {
    return inverse_lookup_;
  }

  /// Logical view of batch row i.
  [[nodiscard]] std::span<const Id> Row(std::size_t i) const;

  /// Stored elements vs logical elements (>= 1; higher is better).
  [[nodiscard]] double dedupe_factor() const;

  /// Tensor-payload bytes on the wire: the shared values slice plus one
  /// [offset, length] pair per row (the offsets slice is gone — §7).
  [[nodiscard]] std::size_t WireBytes() const {
    return values_.size() * sizeof(Id) +
           inverse_lookup_.size() * 2 * sizeof(std::int64_t);
  }

 private:
  std::string key_;
  std::vector<Id> values_;
  std::vector<RowRef> inverse_lookup_;
};

/// Options for shift detection.
struct PartialDedupOptions {
  /// Maximum shift considered when matching a row against the current
  /// window block (paper: lists shift by the few newly-appended items).
  std::size_t max_shift = 16;
};

/// Builds a partial IKJT from one feature's jagged batch. Rows are
/// deduplicated against the most recent "window block": an exact match
/// reuses it outright; a row equal to the block shifted by k (dropping k
/// old elements, appending k new ones) appends only the k new elements.
/// Anything else starts a fresh block. Reconstruction is exact.
[[nodiscard]] PartialIkjt BuildPartialIkjt(
    const std::string& key, const JaggedTensor& feature,
    const PartialDedupOptions& options = {});

/// Expands back to a JaggedTensor (inverse of BuildPartialIkjt).
[[nodiscard]] JaggedTensor ExpandPartialIkjt(const PartialIkjt& ikjt);

}  // namespace recd::tensor
