// JaggedTensor: a 2-D tensor whose rows have different lengths.
//
// This mirrors TorchRec's JaggedTensor and follows the *paper's* offsets
// convention (Fig 5): `offsets` has one entry per row, `offsets[i]` is the
// starting index of row i in `values`, and row i's length is
// `offsets[i+1] - offsets[i]` (or `|values| - offsets[i]` for the last
// row). Accessors hide the last-row edge case.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace recd::tensor {

/// Sparse feature element type (categorical IDs).
using Id = std::int64_t;
/// Index into a values slice.
using Offset = std::int64_t;

class JaggedTensor {
 public:
  /// Empty tensor: zero rows, zero values.
  JaggedTensor() = default;

  /// Takes ownership of prebuilt slices. Throws std::invalid_argument if
  /// offsets are not monotonically non-decreasing, do not start at 0, or
  /// index past `values`.
  JaggedTensor(std::vector<Id> values, std::vector<Offset> offsets);

  /// Builds from materialized rows.
  [[nodiscard]] static JaggedTensor FromRows(
      std::span<const std::vector<Id>> rows);
  /// Brace-list convenience: FromRows({{1, 2}, {}, {3}}).
  [[nodiscard]] static JaggedTensor FromRows(
      std::initializer_list<std::vector<Id>> rows);

  [[nodiscard]] std::size_t num_rows() const { return offsets_.size(); }
  [[nodiscard]] std::size_t total_values() const { return values_.size(); }

  /// View of row i's IDs. Requires i < num_rows().
  [[nodiscard]] std::span<const Id> row(std::size_t i) const;

  /// Length of row i. Requires i < num_rows().
  [[nodiscard]] Offset length(std::size_t i) const;

  [[nodiscard]] std::span<const Id> values() const { return values_; }
  [[nodiscard]] std::span<const Offset> offsets() const { return offsets_; }

  /// Mutable values view for in-place elementwise transforms (hashing,
  /// remapping). Lengths/offsets are invariant under such transforms.
  [[nodiscard]] std::span<Id> mutable_values() { return values_; }

  /// Appends a row (builder-style use).
  void AppendRow(std::span<const Id> ids);

  [[nodiscard]] bool operator==(const JaggedTensor& other) const;

  /// Logical equality of row i against an ID list (no materialization).
  [[nodiscard]] bool RowEquals(std::size_t i, std::span<const Id> ids) const;

 private:
  std::vector<Id> values_;
  std::vector<Offset> offsets_;
};

}  // namespace recd::tensor
