// Wire serialization of KJTs and IKJTs.
//
// The paper's network results hinge on byte accounting: readers send
// (I)KJTs to trainers, and the SDD all-to-all moves `values` and
// `offsets` slices between GPUs while `inverse_lookup` stays local
// (§5, "Sparse Data Distribution"). Tensors go over the wire as raw
// little-endian int64 arrays — matching how a framework ships tensor
// buffers — so IKJT savings come only from genuinely smaller slices.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bytes.h"
#include "tensor/ikjt.h"
#include "tensor/kjt.h"

namespace recd::tensor {

/// Serializes a KJT (keys + offsets + values per feature).
void SerializeKjt(const KeyedJaggedTensor& kjt, common::ByteWriter& out);
[[nodiscard]] KeyedJaggedTensor DeserializeKjt(common::ByteReader& in);

/// Serializes an IKJT (keys + deduplicated offsets/values + the shared
/// inverse_lookup).
void SerializeIkjt(const InverseKeyedJaggedTensor& ikjt,
                   common::ByteWriter& out);
[[nodiscard]] InverseKeyedJaggedTensor DeserializeIkjt(
    common::ByteReader& in);

/// Tensor-payload bytes of a KJT: 8 bytes per offset and per value, for
/// every feature. (Key strings are metadata, excluded — they are
/// negligible and identical across formats.)
[[nodiscard]] std::size_t KjtWireBytes(const KeyedJaggedTensor& kjt);

/// Tensor-payload bytes of an IKJT. `include_inverse_lookup` is true for
/// reader→trainer transfer and false for the SDD all-to-all, where the
/// lookup slice is kept local (§5).
[[nodiscard]] std::size_t IkjtWireBytes(
    const InverseKeyedJaggedTensor& ikjt, bool include_inverse_lookup);

}  // namespace recd::tensor
