#include "reader/batch.h"

#include <unordered_set>

#include "tensor/serialize.h"

namespace recd::reader {

std::size_t PreprocessedBatch::WireBytes() const {
  std::size_t bytes = tensor::KjtWireBytes(kjt);
  for (const auto& g : groups) {
    bytes += tensor::IkjtWireBytes(g, /*include_inverse_lookup=*/true);
  }
  for (const auto& p : partials) bytes += p.WireBytes();
  bytes += dense.size() * sizeof(float);
  bytes += labels.size() * sizeof(float);
  return bytes;
}

double PreprocessedBatch::SamplesPerSession() const {
  if (session_ids.empty()) return 0.0;
  std::unordered_set<std::int64_t> sessions(session_ids.begin(),
                                            session_ids.end());
  return static_cast<double>(session_ids.size()) /
         static_cast<double>(sessions.size());
}

}  // namespace recd::reader
