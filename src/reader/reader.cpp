#include "reader/reader.h"

#include <algorithm>
#include <stdexcept>

#include "common/stopwatch.h"
#include "obs/trace.h"

namespace recd::reader {

Reader::Reader(storage::BlobStore& store, const storage::Table& table,
               DataLoaderConfig config, ReaderOptions options)
    : store_(&store),
      table_(&table),
      config_(std::move(config)),
      options_(options),
      projection_(BatchPipeline::BuildProjection(table.schema, config_)),
      pipeline_(table_->schema, config_, options_.use_ikjt),
      bytes_read_(metrics_.GetCounter("reader.bytes_read")),
      bytes_sent_(metrics_.GetCounter("reader.bytes_sent")),
      rows_read_(metrics_.GetCounter("reader.rows_read")),
      batches_produced_(metrics_.GetCounter("reader.batches_produced")),
      sparse_elements_processed_(
          metrics_.GetCounter("reader.sparse_elements_processed")) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("Reader: batch_size must be positive");
  }
}

ReaderIoStats Reader::io() const {
  const auto u = [](const obs::Counter& c) {
    return static_cast<std::size_t>(c.Value());
  };
  ReaderIoStats io;
  io.bytes_read = u(bytes_read_);
  io.bytes_sent = u(bytes_sent_);
  io.rows_read = u(rows_read_);
  io.batches_produced = u(batches_produced_);
  io.sparse_elements_processed = u(sparse_elements_processed_);
  return io;
}

void Reader::ResetStats() {
  times_ = {};
  metrics_.ResetValues();
}

bool Reader::FillRaw() {
  // Fill (paper Fig 5): fetch from storage, decrypt, decompress. Decoding
  // into rows/tensors belongs to the Convert stage.
  RECD_TRACE_SCOPE("reader/fill");
  common::Stopwatch sw;
  sw.Start();
  const std::size_t read_before = store_->stats().bytes_read;
  bool progressed = false;
  while (buffer_.size() + raw_rows_ < config_.batch_size) {
    if (!current_file_.has_value()) {
      // Advance to the next file in partition order.
      while (partition_ < table_->partitions.size() &&
             file_ >= table_->partitions[partition_].files.size()) {
        ++partition_;
        file_ = 0;
      }
      if (partition_ >= table_->partitions.size()) break;
      current_file_.emplace(*store_,
                            table_->partitions[partition_].files[file_]);
      stripe_ = 0;
    }
    if (stripe_ >= current_file_->num_stripes()) {
      current_file_.reset();
      ++file_;
      continue;
    }
    auto raw = current_file_->FetchStripe(stripe_++, projection_);
    raw_rows_ += raw.num_rows;
    rows_read_.Add(static_cast<std::int64_t>(raw.num_rows));
    raw_queue_.push_back(std::move(raw));
    progressed = true;
  }
  bytes_read_.Add(
      static_cast<std::int64_t>(store_->stats().bytes_read - read_before));
  sw.Stop();
  times_.fill_s += sw.seconds();
  return progressed || buffer_.size() + raw_rows_ > 0;
}

void Reader::DecodePending() {
  // Still the Fill stage (paper §6.3: fill = "fetching data from
  // Tectonic and decrypting, decompressing, and decoding bytes to form
  // rows"); Convert starts when rows become tensors.
  RECD_TRACE_SCOPE("reader/fill");
  common::Stopwatch sw;
  sw.Start();
  while (!raw_queue_.empty()) {
    auto raw = std::move(raw_queue_.front());
    raw_queue_.pop_front();
    raw_rows_ -= raw.num_rows;
    auto rows = storage::DecodeRawStripe(table_->schema, raw, projection_);
    for (auto& r : rows) buffer_.push_back(std::move(r));
  }
  sw.Stop();
  times_.fill_s += sw.seconds();
}

std::optional<PreprocessedBatch> Reader::NextBatch() {
  if (buffer_.size() + raw_rows_ < config_.batch_size) {
    (void)FillRaw();
  }
  DecodePending();
  if (buffer_.empty()) return std::nullopt;
  const std::size_t take = std::min(buffer_.size(), config_.batch_size);
  std::vector<datagen::Sample> rows;
  rows.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    rows.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  common::Stopwatch convert_sw;
  convert_sw.Start();
  PreprocessedBatch batch = [&] {
    RECD_TRACE_SCOPE("reader/convert");
    return pipeline_.Convert(std::move(rows));
  }();
  convert_sw.Stop();
  times_.convert_s += convert_sw.seconds();

  common::Stopwatch process_sw;
  process_sw.Start();
  {
    RECD_TRACE_SCOPE("reader/process");
    sparse_elements_processed_.Add(
        static_cast<std::int64_t>(pipeline_.Process(batch)));
  }
  process_sw.Stop();
  times_.process_s += process_sw.seconds();

  bytes_sent_.Add(static_cast<std::int64_t>(batch.WireBytes()));
  batches_produced_.Increment();
  return batch;
}

}  // namespace recd::reader
