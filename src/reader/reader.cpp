#include "reader/reader.h"

#include <stdexcept>

#include "common/stopwatch.h"

namespace recd::reader {

namespace {

storage::ReadProjection BuildProjection(const storage::StorageSchema& schema,
                                        const DataLoaderConfig& config) {
  storage::ReadProjection p;
  p.dense = config.dense;
  for (const auto& name : config.sparse_features) {
    p.sparse.push_back(schema.FeatureIndex(name));
  }
  for (const auto& group : config.dedup_sparse_features) {
    for (const auto& name : group) {
      p.sparse.push_back(schema.FeatureIndex(name));
    }
  }
  for (const auto& name : config.partial_dedup_features) {
    p.sparse.push_back(schema.FeatureIndex(name));
  }
  return p;
}

}  // namespace

Reader::Reader(storage::BlobStore& store, const storage::Table& table,
               DataLoaderConfig config, ReaderOptions options)
    : store_(&store),
      table_(&table),
      config_(std::move(config)),
      options_(options),
      projection_(BuildProjection(table.schema, config_)) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("Reader: batch_size must be positive");
  }
}

bool Reader::FillRaw() {
  // Fill (paper Fig 5): fetch from storage, decrypt, decompress. Decoding
  // into rows/tensors belongs to the Convert stage.
  common::Stopwatch sw;
  sw.Start();
  const std::size_t read_before = store_->stats().bytes_read;
  bool progressed = false;
  while (buffer_.size() + raw_rows_ < config_.batch_size) {
    if (!current_file_.has_value()) {
      // Advance to the next file in partition order.
      while (partition_ < table_->partitions.size() &&
             file_ >= table_->partitions[partition_].files.size()) {
        ++partition_;
        file_ = 0;
      }
      if (partition_ >= table_->partitions.size()) break;
      current_file_.emplace(*store_,
                            table_->partitions[partition_].files[file_]);
      stripe_ = 0;
    }
    if (stripe_ >= current_file_->num_stripes()) {
      current_file_.reset();
      ++file_;
      continue;
    }
    auto raw = current_file_->FetchStripe(stripe_++, projection_);
    raw_rows_ += raw.num_rows;
    io_.rows_read += raw.num_rows;
    raw_queue_.push_back(std::move(raw));
    progressed = true;
  }
  io_.bytes_read += store_->stats().bytes_read - read_before;
  sw.Stop();
  times_.fill_s += sw.seconds();
  return progressed || buffer_.size() + raw_rows_ > 0;
}

void Reader::DecodePending() {
  // Still the Fill stage (paper §6.3: fill = "fetching data from
  // Tectonic and decrypting, decompressing, and decoding bytes to form
  // rows"); Convert starts when rows become tensors.
  common::Stopwatch sw;
  sw.Start();
  while (!raw_queue_.empty()) {
    auto raw = std::move(raw_queue_.front());
    raw_queue_.pop_front();
    raw_rows_ -= raw.num_rows;
    auto rows = storage::DecodeRawStripe(table_->schema, raw, projection_);
    for (auto& r : rows) buffer_.push_back(std::move(r));
  }
  sw.Stop();
  times_.fill_s += sw.seconds();
}

PreprocessedBatch Reader::Convert(std::vector<datagen::Sample> rows) const {
  common::Stopwatch sw;
  sw.Start();
  PreprocessedBatch batch;
  batch.batch_size = rows.size();

  const auto& schema = table_->schema;
  auto column = [&](const std::string& name) {
    const std::size_t f = schema.FeatureIndex(name);
    tensor::JaggedTensor jt;
    for (const auto& row : rows) jt.AppendRow(row.sparse[f]);
    return jt;
  };

  for (const auto& name : config_.sparse_features) {
    batch.kjt.AddFeature(name, column(name));
  }
  for (const auto& group : config_.dedup_sparse_features) {
    if (options_.use_ikjt) {
      // Feature conversion with duplicate detection (O3): rows feed the
      // dedup builder directly, so duplicate values are never copied
      // into a staging column (paper: "detecting and avoiding duplicate
      // copies during feature conversion").
      std::vector<std::size_t> feature_idx;
      feature_idx.reserve(group.size());
      for (const auto& name : group) {
        feature_idx.push_back(schema.FeatureIndex(name));
      }
      tensor::DedupStats stats;
      batch.groups.push_back(tensor::DeduplicateRows(
          group, rows.size(),
          [&](std::size_t row, std::size_t k) {
            return std::span<const tensor::Id>(
                rows[row].sparse[feature_idx[k]]);
          },
          &stats));
      batch.group_stats.push_back(stats);
    } else {
      for (const auto& name : group) {
        batch.kjt.AddFeature(name, column(name));
      }
    }
  }

  for (const auto& name : config_.partial_dedup_features) {
    if (options_.use_ikjt) {
      batch.partials.push_back(
          tensor::BuildPartialIkjt(name, column(name)));
    } else {
      batch.kjt.AddFeature(name, column(name));
    }
  }

  if (config_.dense) {
    batch.dense_dim = schema.num_dense;
    batch.dense.reserve(rows.size() * schema.num_dense);
    for (const auto& row : rows) {
      batch.dense.insert(batch.dense.end(), row.dense.begin(),
                         row.dense.end());
    }
  }
  batch.labels.reserve(rows.size());
  batch.session_ids.reserve(rows.size());
  for (const auto& row : rows) {
    batch.labels.push_back(row.label);
    batch.session_ids.push_back(row.session_id);
  }
  sw.Stop();
  times_.convert_s += sw.seconds();
  return batch;
}

void Reader::Process(PreprocessedBatch& batch) const {
  common::Stopwatch sw;
  sw.Start();
  for (const auto& spec : config_.transforms) {
    switch (spec.kind) {
      case TransformKind::kDenseNormalize:
      case TransformKind::kDenseClamp:
        ApplyDenseTransform(spec, batch.dense);
        break;
      case TransformKind::kSparseHash:
      case TransformKind::kSparseModShift: {
        // O4: if the feature was deduplicated, transform its unique
        // slice; the wrapper makes this transparent to the transform.
        bool applied = false;
        for (auto& group : batch.groups) {
          for (const auto& key : group.keys()) {
            if (key == spec.feature) {
              auto& unique = group.MutableUnique(key);
              ApplySparseTransform(spec, unique.mutable_values());
              io_.sparse_elements_processed += unique.total_values();
              applied = true;
              break;
            }
          }
          if (applied) break;
        }
        if (!applied && batch.kjt.Has(spec.feature)) {
          auto& jt = batch.kjt.MutableGet(spec.feature);
          ApplySparseTransform(spec, jt.mutable_values());
          io_.sparse_elements_processed += jt.total_values();
        }
        break;
      }
    }
  }
  sw.Stop();
  times_.process_s += sw.seconds();
}

std::optional<PreprocessedBatch> Reader::NextBatch() {
  if (buffer_.size() + raw_rows_ < config_.batch_size) {
    (void)FillRaw();
  }
  DecodePending();
  if (buffer_.empty()) return std::nullopt;
  const std::size_t take = std::min(buffer_.size(), config_.batch_size);
  std::vector<datagen::Sample> rows;
  rows.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    rows.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  PreprocessedBatch batch = Convert(std::move(rows));
  Process(batch);
  io_.bytes_sent += batch.WireBytes();
  io_.batches_produced += 1;
  return batch;
}

}  // namespace recd::reader
