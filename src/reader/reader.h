// Reader node: Fill → Convert → Process (paper Fig 5).
//
// Each reader scans table partitions, fills row batches from storage
// (decompress + decode), converts rows into KJTs and IKJTs per the
// DataLoader config, and runs preprocessing transforms. Per-stage wall
// time and ingest/egress bytes are recorded — these are the measured
// quantities behind Fig 10 and Table 3.
//
// This class is the single-threaded scan; reader::ReaderPool runs the
// same stages (via the shared BatchPipeline) across N workers with
// ordered reassembly.
#pragma once

#include <deque>
#include <optional>

#include "datagen/sample.h"
#include "obs/metrics.h"
#include "reader/batch.h"
#include "reader/batch_pipeline.h"
#include "reader/dataloader.h"
#include "storage/blob_store.h"
#include "storage/table.h"

namespace recd::reader {

struct ReaderOptions {
  /// RecD on: dedup groups convert to IKJTs (O3) and transforms run over
  /// deduplicated slices (O4). Off: every feature converts to plain KJT.
  bool use_ikjt = true;
  /// ReaderPool only: batches buffered ahead of the consumer in the
  /// prefetch queue. 0 picks 2 x num_workers.
  std::size_t prefetch_batches = 0;
};

struct StageTimes {
  double fill_s = 0;
  double convert_s = 0;
  double process_s = 0;
  /// Wall-clock seconds of the scan as the consumer saw it. For the
  /// single-threaded Reader this stays 0 (total_s() is already wall
  /// time); ReaderPool sets it, since its per-stage sums count CPU
  /// seconds across workers that overlap in real time.
  double wall_s = 0;
  [[nodiscard]] double total_s() const {
    return fill_s + convert_s + process_s;
  }
};

struct ReaderIoStats {
  std::size_t bytes_read = 0;  // compressed bytes fetched from storage
  std::size_t bytes_sent = 0;  // preprocessed batch bytes to trainers
  std::size_t rows_read = 0;
  std::size_t batches_produced = 0;
  std::size_t sparse_elements_processed = 0;  // transform work items (O4)
};

class Reader {
 public:
  /// The reader projects only the columns the DataLoader needs. Throws
  /// std::out_of_range if the config names a feature missing from the
  /// table schema.
  Reader(storage::BlobStore& store, const storage::Table& table,
         DataLoaderConfig config, ReaderOptions options = {});

  // Not copyable or movable: pipeline_ points into this object's own
  // config_, so a relocated Reader would dangle into the source.
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Produces the next batch, or nullopt at end of dataset. The final
  /// partial batch (fewer than batch_size rows) is emitted.
  [[nodiscard]] std::optional<PreprocessedBatch> NextBatch();

  [[nodiscard]] const StageTimes& times() const { return times_; }
  /// Io counters, assembled from the reader's metrics() registry (§14:
  /// the registry is the single source of truth; this struct is a
  /// projection of its `reader.*` series).
  [[nodiscard]] ReaderIoStats io() const;
  void ResetStats();

  /// The reader's metric registry (`reader.*` series).
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

 private:
  [[nodiscard]] bool FillRaw();
  void DecodePending();

  storage::BlobStore* store_;
  const storage::Table* table_;
  DataLoaderConfig config_;
  ReaderOptions options_;
  storage::ReadProjection projection_;
  BatchPipeline pipeline_;

  // Scan cursor.
  std::size_t partition_ = 0;
  std::size_t file_ = 0;
  std::size_t stripe_ = 0;
  std::optional<storage::ColumnFileReader> current_file_;
  std::deque<storage::RawStripe> raw_queue_;  // fetched, not yet decoded
  std::size_t raw_rows_ = 0;                  // rows pending in raw_queue_
  std::deque<datagen::Sample> buffer_;        // decoded rows

  mutable StageTimes times_;

  // Io counters: registry-backed, handles cached at construction.
  obs::Registry metrics_;
  obs::Counter& bytes_read_;
  obs::Counter& bytes_sent_;
  obs::Counter& rows_read_;
  obs::Counter& batches_produced_;
  obs::Counter& sparse_elements_processed_;
};

}  // namespace recd::reader
