// Reader node: Fill → Convert → Process (paper Fig 5).
//
// Each reader scans table partitions, fills row batches from storage
// (decompress + decode), converts rows into KJTs and IKJTs per the
// DataLoader config, and runs preprocessing transforms. Per-stage wall
// time and ingest/egress bytes are recorded — these are the measured
// quantities behind Fig 10 and Table 3.
#pragma once

#include <deque>
#include <optional>

#include "datagen/sample.h"
#include "reader/batch.h"
#include "reader/dataloader.h"
#include "storage/blob_store.h"
#include "storage/table.h"

namespace recd::reader {

struct ReaderOptions {
  /// RecD on: dedup groups convert to IKJTs (O3) and transforms run over
  /// deduplicated slices (O4). Off: every feature converts to plain KJT.
  bool use_ikjt = true;
};

struct StageTimes {
  double fill_s = 0;
  double convert_s = 0;
  double process_s = 0;
  [[nodiscard]] double total_s() const {
    return fill_s + convert_s + process_s;
  }
};

struct ReaderIoStats {
  std::size_t bytes_read = 0;  // compressed bytes fetched from storage
  std::size_t bytes_sent = 0;  // preprocessed batch bytes to trainers
  std::size_t rows_read = 0;
  std::size_t batches_produced = 0;
  std::size_t sparse_elements_processed = 0;  // transform work items (O4)
};

class Reader {
 public:
  /// The reader projects only the columns the DataLoader needs. Throws
  /// std::out_of_range if the config names a feature missing from the
  /// table schema.
  Reader(storage::BlobStore& store, const storage::Table& table,
         DataLoaderConfig config, ReaderOptions options = {});

  /// Produces the next batch, or nullopt at end of dataset. The final
  /// partial batch (fewer than batch_size rows) is emitted.
  [[nodiscard]] std::optional<PreprocessedBatch> NextBatch();

  [[nodiscard]] const StageTimes& times() const { return times_; }
  [[nodiscard]] const ReaderIoStats& io() const { return io_; }
  void ResetStats() {
    times_ = {};
    io_ = {};
  }

 private:
  [[nodiscard]] bool FillRaw();
  void DecodePending();
  [[nodiscard]] PreprocessedBatch Convert(
      std::vector<datagen::Sample> rows) const;
  void Process(PreprocessedBatch& batch) const;

  storage::BlobStore* store_;
  const storage::Table* table_;
  DataLoaderConfig config_;
  ReaderOptions options_;
  storage::ReadProjection projection_;

  // Scan cursor.
  std::size_t partition_ = 0;
  std::size_t file_ = 0;
  std::size_t stripe_ = 0;
  std::optional<storage::ColumnFileReader> current_file_;
  std::deque<storage::RawStripe> raw_queue_;  // fetched, not yet decoded
  std::size_t raw_rows_ = 0;                  // rows pending in raw_queue_
  std::deque<datagen::Sample> buffer_;        // decoded rows

  mutable StageTimes times_;
  mutable ReaderIoStats io_;
};

}  // namespace recd::reader
