// Preprocessing transform modules (paper §2.1 "Data Reading and
// Preprocessing", §4.3 "Preprocessing over IKJTs").
//
// Users provide TorchScript-like modules applied by readers after feature
// conversion. RecD wraps sparse transforms so they transparently run over
// an IKJT's deduplicated values/offsets slices instead of the expanded
// batch — same logical result, DedupeFactor(f) less compute (O4).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernels/backend.h"
#include "tensor/ikjt.h"
#include "tensor/kjt.h"

namespace recd::reader {

enum class TransformKind : std::uint8_t {
  kSparseHash,      // id -> mix64(id) % a  (vocabulary hashing)
  kSparseModShift,  // id -> (id + b) % a   (cheap remap, deterministic)
  kDenseNormalize,  // x  -> (x - a) / b
  kDenseClamp,      // x  -> clamp(x, a, b)
};

struct TransformSpec {
  TransformKind kind = TransformKind::kSparseHash;
  /// Target sparse feature key (ignored by dense transforms, which apply
  /// to the whole dense vector).
  std::string feature;
  double a = 1;
  double b = 0;
};

/// Applies a sparse transform to raw values in place. Exposed so the
/// dedup-aware wrapper and tests can call the same kernel.
void ApplySparseTransform(const TransformSpec& spec,
                          std::span<tensor::Id> values);

/// Applies a dense transform to a row-major dense block in place.
void ApplyDenseTransform(const TransformSpec& spec, std::span<float> dense);

/// Backend-pinned variant (the overload above uses
/// kernels::DefaultBackend()). Sparse transforms stay scalar either way
/// (64-bit hash/mod math has no float lanes); dense normalize/clamp run
/// through the vectorized kernels, bitwise-identically.
void ApplyDenseTransform(kernels::KernelBackend backend,
                         const TransformSpec& spec, std::span<float> dense);

/// Counts the sparse elements a transform would touch — the O4 metric
/// (deduplicated inputs shrink this by DedupeFactor).
[[nodiscard]] std::size_t SparseElementsTouched(
    const TransformSpec& spec, const tensor::KeyedJaggedTensor& kjt);

}  // namespace recd::reader
