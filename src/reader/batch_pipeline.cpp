#include "reader/batch_pipeline.h"

#include <span>
#include <string>

#include "reader/transforms.h"
#include "tensor/ikjt.h"
#include "tensor/partial_ikjt.h"

namespace recd::reader {

BatchPipeline::BatchPipeline(const storage::StorageSchema& schema,
                             const DataLoaderConfig& config, bool use_ikjt)
    : schema_(&schema), config_(&config), use_ikjt_(use_ikjt) {}

storage::ReadProjection BatchPipeline::BuildProjection(
    const storage::StorageSchema& schema, const DataLoaderConfig& config) {
  storage::ReadProjection p;
  p.dense = config.dense;
  for (const auto& name : config.sparse_features) {
    p.sparse.push_back(schema.FeatureIndex(name));
  }
  for (const auto& group : config.dedup_sparse_features) {
    for (const auto& name : group) {
      p.sparse.push_back(schema.FeatureIndex(name));
    }
  }
  for (const auto& name : config.partial_dedup_features) {
    p.sparse.push_back(schema.FeatureIndex(name));
  }
  return p;
}

PreprocessedBatch BatchPipeline::Convert(
    std::vector<datagen::Sample> rows) const {
  PreprocessedBatch batch;
  batch.batch_size = rows.size();

  const auto& schema = *schema_;
  auto column = [&](const std::string& name) {
    const std::size_t f = schema.FeatureIndex(name);
    tensor::JaggedTensor jt;
    for (const auto& row : rows) jt.AppendRow(row.sparse[f]);
    return jt;
  };

  for (const auto& name : config_->sparse_features) {
    batch.kjt.AddFeature(name, column(name));
  }
  for (const auto& group : config_->dedup_sparse_features) {
    if (use_ikjt_) {
      // Feature conversion with duplicate detection (O3): rows feed the
      // dedup builder directly, so duplicate values are never copied
      // into a staging column (paper: "detecting and avoiding duplicate
      // copies during feature conversion").
      std::vector<std::size_t> feature_idx;
      feature_idx.reserve(group.size());
      for (const auto& name : group) {
        feature_idx.push_back(schema.FeatureIndex(name));
      }
      tensor::DedupStats stats;
      batch.groups.push_back(tensor::DeduplicateRows(
          group, rows.size(),
          [&](std::size_t row, std::size_t k) {
            return std::span<const tensor::Id>(
                rows[row].sparse[feature_idx[k]]);
          },
          &stats));
      batch.group_stats.push_back(stats);
    } else {
      for (const auto& name : group) {
        batch.kjt.AddFeature(name, column(name));
      }
    }
  }

  for (const auto& name : config_->partial_dedup_features) {
    if (use_ikjt_) {
      batch.partials.push_back(
          tensor::BuildPartialIkjt(name, column(name)));
    } else {
      batch.kjt.AddFeature(name, column(name));
    }
  }

  if (config_->dense) {
    batch.dense_dim = schema.num_dense;
    batch.dense.reserve(rows.size() * schema.num_dense);
    for (const auto& row : rows) {
      batch.dense.insert(batch.dense.end(), row.dense.begin(),
                         row.dense.end());
    }
  }
  batch.labels.reserve(rows.size());
  batch.session_ids.reserve(rows.size());
  for (const auto& row : rows) {
    batch.labels.push_back(row.label);
    batch.session_ids.push_back(row.session_id);
  }
  return batch;
}

std::size_t BatchPipeline::Process(PreprocessedBatch& batch) const {
  std::size_t elements = 0;
  for (const auto& spec : config_->transforms) {
    switch (spec.kind) {
      case TransformKind::kDenseNormalize:
      case TransformKind::kDenseClamp:
        ApplyDenseTransform(spec, batch.dense);
        break;
      case TransformKind::kSparseHash:
      case TransformKind::kSparseModShift: {
        // O4: if the feature was deduplicated, transform its unique
        // slice; the wrapper makes this transparent to the transform.
        bool applied = false;
        for (auto& group : batch.groups) {
          for (const auto& key : group.keys()) {
            if (key == spec.feature) {
              auto& unique = group.MutableUnique(key);
              ApplySparseTransform(spec, unique.mutable_values());
              elements += unique.total_values();
              applied = true;
              break;
            }
          }
          if (applied) break;
        }
        if (!applied && batch.kjt.Has(spec.feature)) {
          auto& jt = batch.kjt.MutableGet(spec.feature);
          ApplySparseTransform(spec, jt.mutable_values());
          elements += jt.total_values();
        }
        break;
      }
    }
  }
  return elements;
}

}  // namespace recd::reader
