// PreprocessedBatch: what a reader ships to trainers.
//
// Holds the non-deduplicated KJT, the per-group IKJTs (when RecD is on),
// dense features, and labels. Wire-byte accounting on this type backs the
// reader→trainer network results (Table 3 "Send Bytes").
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ikjt.h"
#include "tensor/kjt.h"
#include "tensor/partial_ikjt.h"

namespace recd::reader {

struct PreprocessedBatch {
  std::size_t batch_size = 0;

  /// Features converted without deduplication.
  tensor::KeyedJaggedTensor kjt;

  /// One IKJT per dedup_sparse_features group (empty when RecD is off —
  /// group features then live in `kjt`).
  std::vector<tensor::InverseKeyedJaggedTensor> groups;
  std::vector<tensor::DedupStats> group_stats;

  /// One partial IKJT per partial_dedup_features entry (§7); empty when
  /// RecD is off.
  std::vector<tensor::PartialIkjt> partials;

  std::size_t dense_dim = 0;
  std::vector<float> dense;  // row-major batch_size x dense_dim
  std::vector<float> labels;
  std::vector<std::int64_t> session_ids;

  /// Bytes this batch occupies on the reader→trainer wire (tensor
  /// payloads + dense + labels).
  [[nodiscard]] std::size_t WireBytes() const;

  /// Samples per session within the batch (paper Fig 3 right).
  [[nodiscard]] double SamplesPerSession() const;
};

}  // namespace recd::reader
