// DataLoader specification (paper §2.1, §4.2).
//
// Mirrors the PyTorch DataLoader surface the paper extends: the job lists
// the sparse features it consumes, and RecD adds `dedup_sparse_features`
// — a List[List[featureKey]] of groups to deduplicate into IKJTs during
// feature conversion (Fig 5). Features not listed in any group convert to
// plain KJT entries.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "reader/transforms.h"

namespace recd::reader {

struct DataLoaderConfig {
  /// Features converted to a (non-deduplicated) KJT.
  std::vector<std::string> sparse_features;

  /// Feature groups converted to IKJTs; inner lists are grouped features
  /// sharing one inverse_lookup (paper's grouped IKJTs).
  std::vector<std::vector<std::string>> dedup_sparse_features;

  /// Features converted to partial IKJTs (§7): exact matches *and*
  /// shifted windows deduplicate, capturing the extra ~8% of duplicate
  /// bytes that sliding-window features leave behind.
  std::vector<std::string> partial_dedup_features;

  /// Rows per training batch.
  std::size_t batch_size = 512;

  /// Reader workers feeding this loader (the DPP-style reader fleet;
  /// Zhao et al., "Understanding Data Storage and Ingestion for
  /// Large-Scale Deep Recommendation Model Training"). 1 keeps the
  /// single-threaded scan; N > 1 makes reader::ReaderPool run N
  /// parallel Fill workers and N Convert/Process workers with ordered
  /// reassembly, so the batch stream is byte-identical for any N.
  std::size_t num_workers = 1;

  /// Include dense features / labels in the batch.
  bool dense = true;

  /// Preprocessing pipeline applied by readers (O4 runs sparse
  /// transforms on deduplicated slices).
  std::vector<TransformSpec> transforms;
};

}  // namespace recd::reader
