#include "reader/reader_pool.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "storage/column_file.h"

namespace recd::reader {

ReaderPool::ReaderPool(storage::BlobStore& store,
                       const storage::Table& table, DataLoaderConfig config,
                       ReaderOptions options)
    : store_(&store),
      table_(&table),
      config_(std::move(config)),
      options_(options),
      workers_(std::max<std::size_t>(1, config_.num_workers)) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument("ReaderPool: batch_size must be positive");
  }
  if (workers_ <= 1) {
    single_.emplace(store, table, std::move(config_), options_);
    return;
  }

  projection_ = BatchPipeline::BuildProjection(table_->schema, config_);
  pipeline_.emplace(table_->schema, config_, options_.use_ikjt);

  // Scan plan: open every file up front (footers only) and list stripes
  // in scan order. Ticket seq == position in this plan.
  for (const auto& partition : table_->partitions) {
    for (const auto& name : partition.files) {
      files_.emplace_back(*store_, name);
      const std::size_t f = files_.size() - 1;
      bytes_read_.Add(static_cast<std::int64_t>(files_[f].open_bytes()));
      for (std::size_t s = 0; s < files_[f].num_stripes(); ++s) {
        plan_.push_back({f, s});
      }
    }
  }

  stripe_channel_.emplace(std::max<std::size_t>(2, workers_));
  task_channel_.emplace(2 * workers_);
  batch_channel_.emplace(options_.prefetch_batches > 0
                             ? options_.prefetch_batches
                             : 2 * workers_);

  fill_live_.store(workers_);
  convert_live_.store(workers_);
  wall_.Start();
  threads_.reserve(2 * workers_ + 1);
  for (std::size_t w = 0; w < workers_; ++w) {
    threads_.emplace_back([this] { FillWorker(); });
  }
  threads_.emplace_back([this] { AssemblerLoop(); });
  for (std::size_t w = 0; w < workers_; ++w) {
    threads_.emplace_back([this] { ConvertWorker(); });
  }
}

ReaderPool::~ReaderPool() {
  if (single_.has_value()) return;
  // Unblock every stage; workers observe the closed channels and exit.
  stripe_channel_->Close();
  task_channel_->Close();
  batch_channel_->Close();
  for (auto& t : threads_) t.join();
}

void ReaderPool::Fail(std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (!error_) error_ = std::move(error);
  }
  stripe_channel_->Close();
  task_channel_->Close();
  batch_channel_->Close();
}

void ReaderPool::FillWorker() {
  common::Stopwatch sw;
  ReaderIoStats local;
  try {
    for (;;) {
      const std::size_t seq =
          next_stripe_.fetch_add(1, std::memory_order_relaxed);
      if (seq >= plan_.size()) break;
      const auto& ref = plan_[seq];
      // Fill (paper Fig 5): fetch + decrypt + decompress + decode. The
      // stopwatch brackets the work, not the channel wait, so fill_s
      // counts CPU seconds the way the single-threaded Reader does.
      RECD_TRACE_SCOPE("reader/fill");
      sw.Start();
      const auto& file = files_[ref.file];
      local.bytes_read += file.StripeBytes(ref.stripe, projection_);
      auto raw = file.FetchStripe(ref.stripe, projection_);
      local.rows_read += raw.num_rows;
      auto rows =
          storage::DecodeRawStripe(table_->schema, raw, projection_);
      sw.Stop();
      StripeRows out;
      out.seq = seq;
      out.rows = std::move(rows);
      if (!stripe_channel_->Push(std::move(out))) break;  // shutdown
    }
  } catch (...) {
    Fail(std::current_exception());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    times_.fill_s += sw.seconds();
  }
  bytes_read_.Add(static_cast<std::int64_t>(local.bytes_read));
  rows_read_.Add(static_cast<std::int64_t>(local.rows_read));
  if (fill_live_.fetch_sub(1) == 1) stripe_channel_->Close();
}

void ReaderPool::AssemblerLoop() {
  // Reassemble stripes in ticket order, accumulate rows, and cut
  // batch_size runs — exactly the batch boundaries the single-threaded
  // Reader produces. Cheap (moves only), so one thread suffices.
  std::map<std::size_t, std::vector<datagen::Sample>> pending;
  std::size_t next_seq = 0;
  std::deque<datagen::Sample> buffer;
  std::size_t batch_seq = 0;
  bool aborted = false;

  const auto emit = [&](std::size_t take) {
    BatchTask task;
    task.seq = batch_seq++;
    task.rows.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      task.rows.push_back(std::move(buffer.front()));
      buffer.pop_front();
    }
    if (!task_channel_->Push(std::move(task))) aborted = true;
  };

  while (!aborted) {
    auto item = stripe_channel_->Pop();
    if (!item.has_value()) break;
    pending.emplace(item->seq, std::move(item->rows));
    while (!pending.empty() && pending.begin()->first == next_seq) {
      for (auto& row : pending.begin()->second) {
        buffer.push_back(std::move(row));
      }
      pending.erase(pending.begin());
      ++next_seq;
      while (!aborted && buffer.size() >= config_.batch_size) {
        emit(config_.batch_size);
      }
    }
  }
  // Final partial batch (same as Reader: emitted once the scan ends).
  if (!aborted && !buffer.empty()) emit(buffer.size());
  task_channel_->Close();
}

void ReaderPool::ConvertWorker() {
  common::Stopwatch convert_sw;
  common::Stopwatch process_sw;
  ReaderIoStats local;
  try {
    for (;;) {
      auto task = task_channel_->Pop();
      if (!task.has_value()) break;
      convert_sw.Start();
      PreprocessedBatch batch = [&] {
        RECD_TRACE_SCOPE("reader/convert");
        return pipeline_->Convert(std::move(task->rows));
      }();
      convert_sw.Stop();
      process_sw.Start();
      {
        RECD_TRACE_SCOPE("reader/process");
        local.sparse_elements_processed += pipeline_->Process(batch);
      }
      process_sw.Stop();
      local.bytes_sent += batch.WireBytes();
      local.batches_produced += 1;
      BatchOut out;
      out.seq = task->seq;
      out.batch = std::move(batch);
      if (!batch_channel_->Push(std::move(out))) break;  // shutdown
    }
  } catch (...) {
    Fail(std::current_exception());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    times_.convert_s += convert_sw.seconds();
    times_.process_s += process_sw.seconds();
  }
  sparse_elements_processed_.Add(
      static_cast<std::int64_t>(local.sparse_elements_processed));
  bytes_sent_.Add(static_cast<std::int64_t>(local.bytes_sent));
  batches_produced_.Add(static_cast<std::int64_t>(local.batches_produced));
  if (convert_live_.fetch_sub(1) == 1) batch_channel_->Close();
}

std::optional<PreprocessedBatch> ReaderPool::NextBatch() {
  if (single_.has_value()) return single_->NextBatch();
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (error_) {
        auto error = error_;
        std::rethrow_exception(error);
      }
    }
    // Hand out the next in-order batch if it already arrived.
    const auto it = reorder_.find(next_batch_seq_);
    if (it != reorder_.end()) {
      PreprocessedBatch batch = std::move(it->second);
      reorder_.erase(it);
      ++next_batch_seq_;
      return batch;
    }
    auto out = batch_channel_->Pop();
    if (!out.has_value()) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (error_) std::rethrow_exception(error_);
      if (!exhausted_) {
        exhausted_ = true;
        wall_.Stop();
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        times_.wall_s = wall_.seconds();
      }
      return std::nullopt;
    }
    reorder_.emplace(out->seq, std::move(out->batch));
  }
}

const StageTimes& ReaderPool::times() const {
  return single_.has_value() ? single_->times() : times_;
}

ReaderIoStats ReaderPool::io() const {
  if (single_.has_value()) return single_->io();
  const auto u = [](const obs::Counter& c) {
    return static_cast<std::size_t>(c.Value());
  };
  ReaderIoStats io;
  io.bytes_read = u(bytes_read_);
  io.bytes_sent = u(bytes_sent_);
  io.rows_read = u(rows_read_);
  io.batches_produced = u(batches_produced_);
  io.sparse_elements_processed = u(sparse_elements_processed_);
  return io;
}

const obs::Registry& ReaderPool::metrics() const {
  return single_.has_value() ? single_->metrics() : metrics_;
}

}  // namespace recd::reader
