#include "reader/reader_tier.h"

#include <cmath>

namespace recd::reader {

ReaderProvisioning ProvisionReaders(double trainer_samples_per_s,
                                    double reader_samples_per_s) {
  ReaderProvisioning p;
  p.trainer_samples_per_s = trainer_samples_per_s;
  p.reader_samples_per_s = reader_samples_per_s;
  if (reader_samples_per_s <= 0 || trainer_samples_per_s <= 0) {
    p.readers_needed = 0;
    return p;
  }
  p.readers_needed = static_cast<std::size_t>(
      std::ceil(trainer_samples_per_s / reader_samples_per_s));
  return p;
}

}  // namespace recd::reader
