// ReaderPool: DPP-style parallel reader fleet (Zhao et al.'s
// distributed preprocessing tier, scaled down to one node).
//
// The single-threaded Reader walks stripes, cuts batches, converts, and
// processes — one stage at a time. ReaderPool runs the same Fig-5
// stages as a pipeline over `DataLoaderConfig::num_workers` workers:
//
//   fill workers (xN)      assembler (x1)        convert workers (xN)
//   claim stripe tickets → reassemble stripes  → Convert + Process
//   fetch/decrypt/        in scan order, cut     per batch, push into
//   decompress/decode     batch_size row runs    the prefetch queue
//
// Every hand-off is a bounded common::Channel, so a fast stage blocks
// instead of buffering unboundedly (backpressure), and the queue ahead
// of the consumer prefetches `prefetch_batches` batches.
//
// Determinism is the hard invariant: stripes are claimed by globally
// ordered ticket and reassembled in ticket order before batch cutting,
// and batches are re-ordered by sequence number before NextBatch hands
// them out. A run with N workers therefore yields the byte-identical
// batch stream — and identical io() counters — of the single-threaded
// Reader; only wall-clock timings differ. With num_workers <= 1 the
// pool simply wraps a Reader (no threads).
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/channel.h"
#include "common/stopwatch.h"
#include "datagen/sample.h"
#include "obs/metrics.h"
#include "reader/batch.h"
#include "reader/batch_pipeline.h"
#include "reader/dataloader.h"
#include "reader/reader.h"
#include "storage/blob_store.h"
#include "storage/table.h"

namespace recd::reader {

class ReaderPool {
 public:
  /// Opens every table file (footers are scanned up front to build the
  /// stripe plan) and starts the workers; prefetching begins
  /// immediately. Throws std::out_of_range if the config names a
  /// feature missing from the table schema.
  ReaderPool(storage::BlobStore& store, const storage::Table& table,
             DataLoaderConfig config, ReaderOptions options = {});

  /// Joins all workers; safe to call with batches still in flight.
  ~ReaderPool();

  ReaderPool(const ReaderPool&) = delete;
  ReaderPool& operator=(const ReaderPool&) = delete;

  /// Next batch in scan order, or nullopt at end of dataset. Rethrows
  /// the first worker exception, if any.
  [[nodiscard]] std::optional<PreprocessedBatch> NextBatch();

  [[nodiscard]] std::size_t num_workers() const { return workers_; }

  /// Aggregated stage times. fill/convert/process are CPU seconds
  /// summed across workers; wall_s is real elapsed time of the scan.
  /// Stable once NextBatch has returned nullopt.
  [[nodiscard]] const StageTimes& times() const;
  /// Io counters, a projection of the pool's metrics() registry.
  /// Identical to the single-threaded Reader's for any worker count.
  [[nodiscard]] ReaderIoStats io() const;

  /// The pool's metric registry (`reader.*` series; the wrapped
  /// Reader's registry when num_workers <= 1).
  [[nodiscard]] const obs::Registry& metrics() const;

 private:
  struct StripeRef {
    std::size_t file = 0;
    std::size_t stripe = 0;
  };
  struct StripeRows {
    std::size_t seq = 0;
    std::vector<datagen::Sample> rows;
  };
  struct BatchTask {
    std::size_t seq = 0;
    std::vector<datagen::Sample> rows;
  };
  struct BatchOut {
    std::size_t seq = 0;
    PreprocessedBatch batch;
  };

  void FillWorker();
  void AssemblerLoop();
  void ConvertWorker();
  void Fail(std::exception_ptr error);

  storage::BlobStore* store_;
  const storage::Table* table_;
  DataLoaderConfig config_;
  ReaderOptions options_;
  std::size_t workers_ = 1;

  // ---- Single-threaded fallback (num_workers <= 1). -----------------
  std::optional<Reader> single_;

  // ---- Parallel pipeline state. -------------------------------------
  storage::ReadProjection projection_;
  std::optional<BatchPipeline> pipeline_;
  std::vector<storage::ColumnFileReader> files_;
  std::vector<StripeRef> plan_;  // stripes in scan order

  std::atomic<std::size_t> next_stripe_{0};
  std::atomic<std::size_t> fill_live_{0};
  std::atomic<std::size_t> convert_live_{0};

  std::optional<common::Channel<StripeRows>> stripe_channel_;
  std::optional<common::Channel<BatchTask>> task_channel_;
  std::optional<common::Channel<BatchOut>> batch_channel_;

  std::vector<std::thread> threads_;

  // Consumer-side reorder buffer: batches completed out of order wait
  // here until their sequence number comes up.
  std::map<std::size_t, PreprocessedBatch> reorder_;
  std::size_t next_batch_seq_ = 0;
  bool exhausted_ = false;

  std::mutex stats_mutex_;  // guards times_ merges from workers
  StageTimes times_;
  common::Stopwatch wall_;

  // Io counters: registry-backed; workers add their batched locals
  // (atomic counters, no stats_mutex_ needed).
  obs::Registry metrics_;
  obs::Counter& bytes_read_ = metrics_.GetCounter("reader.bytes_read");
  obs::Counter& bytes_sent_ = metrics_.GetCounter("reader.bytes_sent");
  obs::Counter& rows_read_ = metrics_.GetCounter("reader.rows_read");
  obs::Counter& batches_produced_ =
      metrics_.GetCounter("reader.batches_produced");
  obs::Counter& sparse_elements_processed_ =
      metrics_.GetCounter("reader.sparse_elements_processed");

  std::mutex error_mutex_;
  std::exception_ptr error_;
};

}  // namespace recd::reader
