// Reader-tier provisioning (paper §2.1: "the number of readers for each
// job is scaled to meet trainers' ingestion bandwidth demands").
//
// Fig 7's reader result is reported per reader precisely because faster
// readers mean proportionally fewer reader hosts per job. This helper
// computes that provisioning from measured reader throughput and the
// trainers' consumption rate.
#pragma once

#include <cstddef>

namespace recd::reader {

struct ReaderProvisioning {
  double trainer_samples_per_s = 0;  // demand
  double reader_samples_per_s = 0;   // supply per reader
  std::size_t readers_needed = 0;    // ceil(demand / supply)
};

/// Readers needed so the tier's aggregate throughput covers the
/// trainers' ingest rate (no data stalls). Zero-supply returns 0.
[[nodiscard]] ReaderProvisioning ProvisionReaders(
    double trainer_samples_per_s, double reader_samples_per_s);

}  // namespace recd::reader
