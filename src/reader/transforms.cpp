#include "reader/transforms.h"

#include <algorithm>
#include <stdexcept>

#include "common/hash.h"
#include "kernels/kernels.h"

namespace recd::reader {

void ApplySparseTransform(const TransformSpec& spec,
                          std::span<tensor::Id> values) {
  switch (spec.kind) {
    case TransformKind::kSparseHash: {
      const auto domain = static_cast<std::uint64_t>(spec.a);
      if (domain == 0) {
        throw std::invalid_argument("kSparseHash: domain must be positive");
      }
      for (auto& v : values) {
        v = static_cast<tensor::Id>(
            common::Mix64(static_cast<std::uint64_t>(v)) % domain);
      }
      return;
    }
    case TransformKind::kSparseModShift: {
      const auto domain = static_cast<std::int64_t>(spec.a);
      if (domain <= 0) {
        throw std::invalid_argument(
            "kSparseModShift: domain must be positive");
      }
      const auto shift = static_cast<std::int64_t>(spec.b);
      for (auto& v : values) {
        v = ((v + shift) % domain + domain) % domain;
      }
      return;
    }
    case TransformKind::kDenseNormalize:
    case TransformKind::kDenseClamp:
      throw std::invalid_argument(
          "ApplySparseTransform: dense transform on sparse values");
  }
}

void ApplyDenseTransform(kernels::KernelBackend backend,
                         const TransformSpec& spec, std::span<float> dense) {
  switch (spec.kind) {
    case TransformKind::kDenseNormalize: {
      if (spec.b == 0) {
        throw std::invalid_argument("kDenseNormalize: zero scale");
      }
      const float mean = static_cast<float>(spec.a);
      const float inv = 1.0f / static_cast<float>(spec.b);
      kernels::DenseNormalize(backend, dense.data(), dense.size(), mean,
                              inv);
      return;
    }
    case TransformKind::kDenseClamp: {
      const float lo = static_cast<float>(spec.a);
      const float hi = static_cast<float>(spec.b);
      kernels::DenseClamp(backend, dense.data(), dense.size(), lo, hi);
      return;
    }
    case TransformKind::kSparseHash:
    case TransformKind::kSparseModShift:
      throw std::invalid_argument(
          "ApplyDenseTransform: sparse transform on dense values");
  }
}

void ApplyDenseTransform(const TransformSpec& spec, std::span<float> dense) {
  ApplyDenseTransform(kernels::DefaultBackend(), spec, dense);
}

std::size_t SparseElementsTouched(const TransformSpec& spec,
                                  const tensor::KeyedJaggedTensor& kjt) {
  if (!kjt.Has(spec.feature)) return 0;
  return kjt.Get(spec.feature).total_values();
}

}  // namespace recd::reader
