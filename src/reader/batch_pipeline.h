// BatchPipeline: the Convert and Process stages of a reader (paper
// Fig 5), factored out of the scan loop so the single-threaded Reader
// and the parallel ReaderPool run the *same* code on a batch's rows —
// which is what makes "N workers produce byte-identical batches" a
// structural property instead of a test-enforced coincidence.
#pragma once

#include <cstddef>
#include <vector>

#include "datagen/sample.h"
#include "reader/batch.h"
#include "reader/dataloader.h"
#include "storage/column_file.h"

namespace recd::reader {

class BatchPipeline {
 public:
  /// Holds references: `schema` and `config` must outlive the pipeline
  /// (both owners — Reader and ReaderPool — keep them as members).
  BatchPipeline(const storage::StorageSchema& schema,
                const DataLoaderConfig& config, bool use_ikjt);

  /// Convert stage (O3): rows become KJTs / IKJTs / dense tensors.
  /// Pure: depends only on `rows`, so any thread may convert any batch.
  [[nodiscard]] PreprocessedBatch Convert(
      std::vector<datagen::Sample> rows) const;

  /// Process stage (O4): preprocessing transforms, run over
  /// deduplicated slices where an IKJT carries the feature. Returns the
  /// number of sparse elements the transforms touched.
  std::size_t Process(PreprocessedBatch& batch) const;

  /// The storage projection covering every feature the config consumes.
  /// Throws std::out_of_range if the config names an unknown feature.
  [[nodiscard]] static storage::ReadProjection BuildProjection(
      const storage::StorageSchema& schema, const DataLoaderConfig& config);

 private:
  const storage::StorageSchema* schema_;
  const DataLoaderConfig* config_;
  bool use_ikjt_;
};

}  // namespace recd::reader
