// DWRF/ORC-like columnar file format (paper §2.1, "Dataset Schema and
// Storage").
//
// Layout: a file is a sequence of stripes, each holding a bounded row
// count. Within a stripe, feature columns are flattened — every sparse
// feature becomes its own (lengths, values) stream pair — then each
// stream is integer-encoded (varint / delta / RLE, picked per stream) and
// block-compressed. A footer indexes every stream so readers can project
// columns: reading 3 of 100 features touches only those streams' byte
// ranges (the read-byte mechanism behind Table 3 / Fig 10).
//
//   [stripe 0 streams][stripe 1 streams]...[footer][footer_len u64][magic]
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "datagen/sample.h"
#include "storage/blob_store.h"

namespace recd::common {
class ThreadPool;
}  // namespace recd::common

namespace recd::storage {

/// Column layout of a dataset (shared by writer and readers).
struct StorageSchema {
  std::vector<std::string> sparse_names;
  std::size_t num_dense = 0;

  [[nodiscard]] std::size_t FeatureIndex(const std::string& name) const;
};

struct WriterOptions {
  std::size_t rows_per_stripe = 1024;
  compress::CodecKind codec = compress::CodecKind::kLz77;
  /// When set, Finish() encodes stripes on this pool. The file bytes are
  /// identical to a sequential encode: stripes compress independently
  /// and are serialized (offsets assigned, streams encrypted) in stripe
  /// order afterwards.
  common::ThreadPool* pool = nullptr;
};

/// Which columns a read touches. Row identity (request/session/timestamp/
/// label) is always read; dense and any subset of sparse features are
/// optional.
struct ReadProjection {
  bool dense = true;
  /// Indices into StorageSchema::sparse_names. Unprojected features come
  /// back as empty lists.
  std::vector<std::size_t> sparse;

  [[nodiscard]] static ReadProjection All(const StorageSchema& schema);
};

/// Streams a sample batch into one columnar blob.
class ColumnFileWriter {
 public:
  ColumnFileWriter(BlobStore& store, std::string name, StorageSchema schema,
                   WriterOptions options = {});

  /// Appends one row. Row order is preserved — the clustering experiment
  /// depends on it. Throws if the sample's arity disagrees with schema.
  void Append(const datagen::Sample& sample);

  /// Flushes the tail stripe and writes the footer. Must be called
  /// exactly once; no Appends afterwards.
  void Finish();

  [[nodiscard]] std::size_t rows_written() const { return rows_written_; }
  /// Sum of raw (pre-encoding) stream bytes, for compression-ratio math.
  [[nodiscard]] std::size_t logical_bytes() const { return logical_bytes_; }

 private:
  /// A stripe's streams after encode + compress but before the
  /// offset-dependent steps (encryption, serialization), so stripes can
  /// encode in parallel and serialize sequentially.
  struct EncodedStream {
    std::vector<std::byte> compressed;
    std::uint64_t raw_len = 0;
  };
  struct EncodedStripe {
    std::uint64_t num_rows = 0;
    std::vector<EncodedStream> streams;
    std::size_t logical_bytes = 0;
  };

  [[nodiscard]] EncodedStripe EncodeStripe(
      const std::vector<datagen::Sample>& rows) const;

  BlobStore* store_;
  std::string name_;
  StorageSchema schema_;
  WriterOptions options_;
  const compress::Codec* codec_;

  std::vector<datagen::Sample> pending_;  // rows of the open tail stripe
  // Full stripes staged for parallel encode in Finish (pool mode only).
  std::vector<std::vector<datagen::Sample>> stripe_rows_;
  // Encoded-but-unserialized stripes (filled incrementally when no pool
  // is set, in Finish otherwise).
  std::vector<EncodedStripe> encoded_;
  common::ByteWriter file_;
  struct StreamInfo {
    std::uint64_t offset = 0;
    std::uint64_t compressed_len = 0;
    std::uint64_t raw_len = 0;
  };
  struct StripeInfo {
    std::uint64_t num_rows = 0;
    std::vector<StreamInfo> streams;
  };
  std::vector<StripeInfo> stripes_;
  std::size_t rows_written_ = 0;
  std::size_t logical_bytes_ = 0;
  bool finished_ = false;
};

/// A stripe's projected streams after fetch + decrypt + decompress but
/// before decoding — the hand-off between the reader's Fill and Convert
/// stages (paper Fig 5: Fill produces raw byte arrays; Feature
/// Conversion copies them into structured tensors).
struct RawStripe {
  std::size_t num_rows = 0;
  /// Indexed by stream position within the stripe; streams outside the
  /// projection stay empty.
  std::vector<std::vector<std::byte>> streams;
};

/// Reads stripes back with column projection.
///
/// Thread safety: after construction the reader is immutable, so any
/// number of threads may FetchStripe/DecodeStripe different (or the
/// same) stripes concurrently — the parallel fill stage in
/// reader::ReaderPool decodes stripes of one file this way.
class ColumnFileReader {
 public:
  /// Opens the file: reads magic + footer (accounted as IO).
  ColumnFileReader(BlobStore& store, std::string name);

  [[nodiscard]] const StorageSchema& schema() const { return schema_; }
  [[nodiscard]] std::size_t num_stripes() const { return stripes_.size(); }
  [[nodiscard]] std::size_t num_rows() const;
  [[nodiscard]] std::size_t stripe_rows(std::size_t i) const {
    return stripes_.at(i).num_rows;
  }

  /// Bytes the constructor read to open the file (footer + trailer).
  [[nodiscard]] std::size_t open_bytes() const { return open_bytes_; }

  /// Compressed bytes FetchStripe(i, projection) fetches from storage —
  /// the deterministic per-stripe read size, summable in any order.
  [[nodiscard]] std::size_t StripeBytes(
      std::size_t i, const ReadProjection& projection) const;

  /// Fill-stage work: fetches, decrypts, and decompresses the projected
  /// streams of stripe `i` (IO accounted against the BlobStore).
  [[nodiscard]] RawStripe FetchStripe(std::size_t i,
                                      const ReadProjection& projection) const;

  /// Convert-stage work: decodes fetched streams into samples.
  /// Unprojected sparse features are empty lists; dense is empty if not
  /// projected.
  [[nodiscard]] std::vector<datagen::Sample> DecodeStripe(
      const RawStripe& raw, const ReadProjection& projection) const;
  // (See also the schema-level free function DecodeRawStripe.)

  /// FetchStripe + DecodeStripe in one call.
  [[nodiscard]] std::vector<datagen::Sample> ReadStripe(
      std::size_t i, const ReadProjection& projection) const;

 private:
  struct StreamInfo {
    std::uint64_t offset = 0;
    std::uint64_t compressed_len = 0;
    std::uint64_t raw_len = 0;
  };
  struct StripeInfo {
    std::uint64_t num_rows = 0;
    std::vector<StreamInfo> streams;
  };

  /// Calls fn(stream_index) for every stream the projection selects —
  /// the single source of truth for what FetchStripe reads and what
  /// StripeBytes accounts.
  template <typename Fn>
  void VisitProjectedStreams(const ReadProjection& projection,
                             const Fn& fn) const;

  [[nodiscard]] std::vector<std::byte> ReadStream(
      const StreamInfo& info) const;

  BlobStore* store_;
  std::string name_;
  StorageSchema schema_;
  compress::CodecKind codec_kind_ = compress::CodecKind::kLz77;
  std::vector<StripeInfo> stripes_;
  std::size_t open_bytes_ = 0;
};

/// Convenience: writes all samples into `name` and returns compressed
/// (stored) and logical byte sizes.
struct WriteResult {
  std::size_t rows = 0;
  std::size_t stored_bytes = 0;
  std::size_t logical_bytes = 0;
  [[nodiscard]] double compression_ratio() const {
    return compress::CompressionRatio(logical_bytes, stored_bytes);
  }
};
WriteResult WriteSamples(BlobStore& store, const std::string& name,
                         const StorageSchema& schema,
                         const std::vector<datagen::Sample>& samples,
                         WriterOptions options = {});

/// Decodes a fetched stripe against a table-wide schema (all files of a
/// table share one schema, so decoding does not need the file handle).
[[nodiscard]] std::vector<datagen::Sample> DecodeRawStripe(
    const StorageSchema& schema, const RawStripe& raw,
    const ReadProjection& projection);

}  // namespace recd::storage
