// Hive-style time-partitioned table of columnar files (paper Fig 1).
#pragma once

#include <string>
#include <vector>

#include "datagen/sample.h"
#include "storage/column_file.h"

namespace recd::storage {

/// One time partition: the files landed for one "hour" of samples.
struct Partition {
  std::string name;
  std::vector<std::string> files;
};

/// A training dataset: schema + ordered partitions.
struct Table {
  std::string name;
  StorageSchema schema;
  std::vector<Partition> partitions;
};

/// Lands sample partitions into the store as one file per partition and
/// returns the table plus aggregate size accounting.
struct LandResult {
  Table table;
  std::size_t rows = 0;
  std::size_t stored_bytes = 0;
  std::size_t logical_bytes = 0;
  [[nodiscard]] double compression_ratio() const {
    return compress::CompressionRatio(logical_bytes, stored_bytes);
  }
};
/// With `pool`, partitions encode concurrently (and each file's stripes
/// encode in parallel when `options.pool` is also set). The landed bytes
/// and accounting are identical to a sequential land: every partition
/// file is self-contained and totals are summed in partition order.
[[nodiscard]] LandResult LandTable(
    BlobStore& store, const std::string& table_name,
    const StorageSchema& schema,
    const std::vector<std::vector<datagen::Sample>>& partitions,
    WriterOptions options = {}, common::ThreadPool* pool = nullptr);

/// Size accounting for one incremental append (the per-append slice of
/// what LandResult accumulates for a whole table).
struct AppendResult {
  std::size_t rows = 0;
  std::size_t stored_bytes = 0;
  std::size_t logical_bytes = 0;
};

/// Appends `partitions` to a *live* table: new partitions are named by
/// their index past the current `table.partitions.size()`, so a
/// streaming ETL can land window after window into one growing table
/// while readers tail previously landed partitions (existing objects
/// are never replaced, so concurrent reads of earlier partitions stay
/// valid — see BlobStore's span-validity note). Appending all
/// partitions in one call is exactly LandTable.
AppendResult AppendPartitions(
    BlobStore& store, Table& table,
    const std::vector<std::vector<datagen::Sample>>& partitions,
    WriterOptions options = {}, common::ThreadPool* pool = nullptr);

}  // namespace recd::storage
