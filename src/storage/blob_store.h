// BlobStore: Tectonic stand-in (paper §2.1).
//
// The paper's results only observe the filesystem through bytes read,
// bytes stored, and IOPS (Table 3, Fig 10 fill time, Fig 7 storage
// efficiency), so the stand-in is an in-memory object store with exact
// accounting on every access. Range reads model positioned reads of
// stripe streams.
//
// Thread safety: every member is internally synchronized, so parallel
// land and reader workers may hit one store concurrently. The spans
// returned by Get/ReadRange point into the stored object — they stay
// valid only while no concurrent Put replaces that object (the pipeline
// lands a table fully before any reader opens it).
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace recd::storage {

struct IoStats {
  std::size_t bytes_written = 0;
  std::size_t bytes_read = 0;
  std::size_t read_ops = 0;
  std::size_t write_ops = 0;
};

class BlobStore {
 public:
  BlobStore() = default;
  /// Movable for fixture setup; moving while other threads access
  /// either store is undefined, like any container.
  BlobStore(BlobStore&& other) noexcept;
  BlobStore& operator=(BlobStore&& other) noexcept;

  /// Stores (replaces) an object.
  void Put(const std::string& name, std::vector<std::byte> data);

  /// Whole-object read. Throws std::out_of_range for unknown names.
  [[nodiscard]] std::span<const std::byte> Get(const std::string& name);

  /// Positioned read of [offset, offset+length). Throws std::out_of_range
  /// on unknown names or out-of-bounds ranges.
  [[nodiscard]] std::span<const std::byte> ReadRange(const std::string& name,
                                                     std::size_t offset,
                                                     std::size_t length);

  [[nodiscard]] bool Exists(const std::string& name) const;
  [[nodiscard]] std::size_t ObjectSize(const std::string& name) const;

  /// Total stored bytes across all objects (storage-footprint metric).
  [[nodiscard]] std::size_t TotalStoredBytes() const;

  /// Snapshot of the accounting counters (by value: the counters mutate
  /// under the store's lock on every access).
  [[nodiscard]] IoStats stats() const;
  void ResetStats();

  [[nodiscard]] std::vector<std::string> ListObjects() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<std::byte>> objects_;
  IoStats stats_;
};

}  // namespace recd::storage
