// BlobStore: Tectonic stand-in (paper §2.1).
//
// The paper's results only observe the filesystem through bytes read,
// bytes stored, and IOPS (Table 3, Fig 10 fill time, Fig 7 storage
// efficiency), so the stand-in is an in-memory object store with exact
// accounting on every access. Range reads model positioned reads of
// stripe streams.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace recd::storage {

struct IoStats {
  std::size_t bytes_written = 0;
  std::size_t bytes_read = 0;
  std::size_t read_ops = 0;
  std::size_t write_ops = 0;
};

class BlobStore {
 public:
  /// Stores (replaces) an object.
  void Put(const std::string& name, std::vector<std::byte> data);

  /// Whole-object read. Throws std::out_of_range for unknown names.
  [[nodiscard]] std::span<const std::byte> Get(const std::string& name);

  /// Positioned read of [offset, offset+length). Throws std::out_of_range
  /// on unknown names or out-of-bounds ranges.
  [[nodiscard]] std::span<const std::byte> ReadRange(const std::string& name,
                                                     std::size_t offset,
                                                     std::size_t length);

  [[nodiscard]] bool Exists(const std::string& name) const;
  [[nodiscard]] std::size_t ObjectSize(const std::string& name) const;

  /// Total stored bytes across all objects (storage-footprint metric).
  [[nodiscard]] std::size_t TotalStoredBytes() const;

  [[nodiscard]] const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  [[nodiscard]] std::vector<std::string> ListObjects() const;

 private:
  std::unordered_map<std::string, std::vector<std::byte>> objects_;
  IoStats stats_;
};

}  // namespace recd::storage
