#include "storage/blob_store.h"

#include <stdexcept>

namespace recd::storage {

void BlobStore::Put(const std::string& name, std::vector<std::byte> data) {
  stats_.bytes_written += data.size();
  stats_.write_ops += 1;
  objects_[name] = std::move(data);
}

std::span<const std::byte> BlobStore::Get(const std::string& name) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::out_of_range("BlobStore: unknown object " + name);
  }
  stats_.bytes_read += it->second.size();
  stats_.read_ops += 1;
  return it->second;
}

std::span<const std::byte> BlobStore::ReadRange(const std::string& name,
                                                std::size_t offset,
                                                std::size_t length) {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::out_of_range("BlobStore: unknown object " + name);
  }
  if (offset + length > it->second.size()) {
    throw std::out_of_range("BlobStore: range read past end of " + name);
  }
  stats_.bytes_read += length;
  stats_.read_ops += 1;
  return std::span<const std::byte>(it->second).subspan(offset, length);
}

bool BlobStore::Exists(const std::string& name) const {
  return objects_.contains(name);
}

std::size_t BlobStore::ObjectSize(const std::string& name) const {
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::out_of_range("BlobStore: unknown object " + name);
  }
  return it->second.size();
}

std::size_t BlobStore::TotalStoredBytes() const {
  std::size_t total = 0;
  for (const auto& [name, data] : objects_) total += data.size();
  return total;
}

std::vector<std::string> BlobStore::ListObjects() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, data] : objects_) names.push_back(name);
  return names;
}

}  // namespace recd::storage
