#include "storage/blob_store.h"

#include <stdexcept>

namespace recd::storage {

BlobStore::BlobStore(BlobStore&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  objects_ = std::move(other.objects_);
  stats_ = other.stats_;
  other.stats_ = {};
}

BlobStore& BlobStore::operator=(BlobStore&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  objects_ = std::move(other.objects_);
  stats_ = other.stats_;
  other.stats_ = {};
  return *this;
}

void BlobStore::Put(const std::string& name, std::vector<std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.bytes_written += data.size();
  stats_.write_ops += 1;
  objects_[name] = std::move(data);
}

std::span<const std::byte> BlobStore::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::out_of_range("BlobStore: unknown object " + name);
  }
  stats_.bytes_read += it->second.size();
  stats_.read_ops += 1;
  return it->second;
}

std::span<const std::byte> BlobStore::ReadRange(const std::string& name,
                                                std::size_t offset,
                                                std::size_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::out_of_range("BlobStore: unknown object " + name);
  }
  if (offset + length > it->second.size()) {
    throw std::out_of_range("BlobStore: range read past end of " + name);
  }
  stats_.bytes_read += length;
  stats_.read_ops += 1;
  return std::span<const std::byte>(it->second).subspan(offset, length);
}

bool BlobStore::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return objects_.contains(name);
}

std::size_t BlobStore::ObjectSize(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    throw std::out_of_range("BlobStore: unknown object " + name);
  }
  return it->second.size();
}

std::size_t BlobStore::TotalStoredBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, data] : objects_) total += data.size();
  return total;
}

IoStats BlobStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BlobStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = {};
}

std::vector<std::string> BlobStore::ListObjects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, data] : objects_) names.push_back(name);
  return names;
}

}  // namespace recd::storage
