#include "storage/table.h"

#include "common/thread_pool.h"

namespace recd::storage {

AppendResult AppendPartitions(
    BlobStore& store, Table& table,
    const std::vector<std::vector<datagen::Sample>>& partitions,
    WriterOptions options, common::ThreadPool* pool) {
  AppendResult result;
  const std::size_t base = table.partitions.size();

  std::vector<WriteResult> writes(partitions.size());
  const auto land_one = [&](std::size_t p) {
    const std::string file = table.name + "/part_" +
                             std::to_string(base + p) + "/file_0";
    writes[p] = WriteSamples(store, file, table.schema, partitions[p],
                             options);
  };
  if (pool != nullptr && partitions.size() > 1) {
    pool->ParallelFor(0, partitions.size(), land_one);
  } else {
    for (std::size_t p = 0; p < partitions.size(); ++p) land_one(p);
  }

  for (std::size_t p = 0; p < partitions.size(); ++p) {
    Partition partition;
    partition.name = table.name + "/part_" + std::to_string(base + p);
    partition.files.push_back(partition.name + "/file_0");
    result.rows += writes[p].rows;
    result.stored_bytes += writes[p].stored_bytes;
    result.logical_bytes += writes[p].logical_bytes;
    table.partitions.push_back(std::move(partition));
  }
  return result;
}

LandResult LandTable(
    BlobStore& store, const std::string& table_name,
    const StorageSchema& schema,
    const std::vector<std::vector<datagen::Sample>>& partitions,
    WriterOptions options, common::ThreadPool* pool) {
  LandResult result;
  result.table.name = table_name;
  result.table.schema = schema;
  const auto appended =
      AppendPartitions(store, result.table, partitions, options, pool);
  result.rows = appended.rows;
  result.stored_bytes = appended.stored_bytes;
  result.logical_bytes = appended.logical_bytes;
  return result;
}

}  // namespace recd::storage
