#include "storage/table.h"

namespace recd::storage {

LandResult LandTable(
    BlobStore& store, const std::string& table_name,
    const StorageSchema& schema,
    const std::vector<std::vector<datagen::Sample>>& partitions,
    WriterOptions options) {
  LandResult result;
  result.table.name = table_name;
  result.table.schema = schema;
  for (std::size_t p = 0; p < partitions.size(); ++p) {
    Partition partition;
    partition.name = table_name + "/part_" + std::to_string(p);
    const std::string file = partition.name + "/file_0";
    const auto wr = WriteSamples(store, file, schema, partitions[p], options);
    result.rows += wr.rows;
    result.stored_bytes += wr.stored_bytes;
    result.logical_bytes += wr.logical_bytes;
    partition.files.push_back(file);
    result.table.partitions.push_back(std::move(partition));
  }
  return result;
}

}  // namespace recd::storage
