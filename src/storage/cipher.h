// At-rest stream cipher (XOR keystream) for stored column streams.
//
// Tectonic data is encrypted at rest; the paper's reader fill stage
// explicitly includes "fetching data from Tectonic and decrypting,
// decompressing, and decoding" (§6.3). This keystream pass is the
// decrypt stand-in: real per-byte work proportional to the *compressed*
// bytes read, which is exactly the cost clustering (O2) shrinks. It is
// not cryptographically secure and is documented as a simulation
// substitute (docs/ARCHITECTURE.md §1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace recd::storage {

/// XORs `data` with a splitmix-derived keystream seeded by `seed`.
/// Involutive: applying twice with the same seed restores the input.
/// `rounds` scales the per-byte work (decrypt paths use > 1 round to
/// approximate AES-class cost on the simulated reader CPUs).
void XorKeystream(std::span<std::byte> data, std::uint64_t seed,
                  int rounds = 1);

}  // namespace recd::storage
