#include "storage/column_file.h"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.h"
#include "compress/int_codec.h"
#include "storage/cipher.h"

namespace recd::storage {

namespace {

constexpr std::uint32_t kMagic = 0x52454344;  // "RECD"

// At-rest encryption rounds (must match between writer and reader; the
// keystream is involutive per round count). Two rounds approximate
// AES-class per-byte decrypt cost on the reader fill path.
constexpr int kCipherRounds = 8;

// Stream order within a stripe: request_id, session_id, timestamp, label,
// [dense], then per sparse feature (lengths, values).
constexpr std::size_t kMetaStreams = 4;

std::size_t StreamCount(const StorageSchema& schema) {
  return kMetaStreams + (schema.num_dense > 0 ? 1 : 0) +
         2 * schema.sparse_names.size();
}

std::size_t DenseStreamIndex() { return kMetaStreams; }

std::size_t LengthsStreamIndex(const StorageSchema& schema,
                               std::size_t feature) {
  return kMetaStreams + (schema.num_dense > 0 ? 1 : 0) + 2 * feature;
}

}  // namespace

std::size_t StorageSchema::FeatureIndex(const std::string& name) const {
  for (std::size_t i = 0; i < sparse_names.size(); ++i) {
    if (sparse_names[i] == name) return i;
  }
  throw std::out_of_range("StorageSchema: unknown feature " + name);
}

ReadProjection ReadProjection::All(const StorageSchema& schema) {
  ReadProjection p;
  p.dense = schema.num_dense > 0;
  p.sparse.resize(schema.sparse_names.size());
  for (std::size_t i = 0; i < p.sparse.size(); ++i) p.sparse[i] = i;
  return p;
}

ColumnFileWriter::ColumnFileWriter(BlobStore& store, std::string name,
                                   StorageSchema schema,
                                   WriterOptions options)
    : store_(&store),
      name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options),
      codec_(&compress::GetCodec(options.codec)) {
  if (options_.rows_per_stripe == 0) {
    throw std::invalid_argument(
        "ColumnFileWriter: rows_per_stripe must be positive");
  }
}

void ColumnFileWriter::Append(const datagen::Sample& sample) {
  if (finished_) {
    throw std::logic_error("ColumnFileWriter: Append after Finish");
  }
  if (sample.sparse.size() != schema_.sparse_names.size()) {
    throw std::invalid_argument(
        "ColumnFileWriter: sample sparse arity mismatch");
  }
  if (sample.dense.size() != schema_.num_dense) {
    throw std::invalid_argument(
        "ColumnFileWriter: sample dense arity mismatch");
  }
  pending_.push_back(sample);
  ++rows_written_;
  if (pending_.size() >= options_.rows_per_stripe) {
    if (options_.pool != nullptr) {
      // Stage rows and encode in Finish, where stripes compress in
      // parallel; a stripe's bytes depend only on its own rows.
      stripe_rows_.push_back(std::move(pending_));
    } else {
      // Without a pool, encode incrementally so peak memory stays one
      // stripe of rows, not the whole file.
      encoded_.push_back(EncodeStripe(pending_));
    }
    pending_.clear();
  }
}

ColumnFileWriter::EncodedStripe ColumnFileWriter::EncodeStripe(
    const std::vector<datagen::Sample>& rows) const {
  EncodedStripe stripe;
  stripe.num_rows = rows.size();
  stripe.streams.reserve(StreamCount(schema_));

  // `logical` is the order-invariant in-memory size of the column data
  // (8 bytes per int, 4 per float) so compression ratios compare the
  // same numerator regardless of row order or chosen encoding.
  auto add_stream = [&](const common::ByteWriter& raw,
                        std::size_t logical) {
    EncodedStream stream;
    stream.compressed = codec_->Compress(raw.bytes());
    stream.raw_len = raw.size();
    stripe.logical_bytes += logical;
    stripe.streams.push_back(std::move(stream));
  };

  // Meta streams (always present).
  std::vector<std::int64_t> ints(rows.size());
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& row = rows[i];
      ints[i] = s == 0 ? row.request_id
                       : (s == 1 ? row.session_id : row.timestamp);
    }
    common::ByteWriter raw;
    compress::EncodeIntsAuto(ints, raw);
    add_stream(raw, ints.size() * sizeof(std::int64_t));
  }
  {
    common::ByteWriter raw;
    for (const auto& row : rows) raw.PutF32(row.label);
    add_stream(raw, rows.size() * sizeof(float));
  }
  if (schema_.num_dense > 0) {
    common::ByteWriter raw;
    for (const auto& row : rows) {
      for (const float v : row.dense) raw.PutF32(v);
    }
    add_stream(raw, rows.size() * schema_.num_dense * sizeof(float));
  }
  // Flattened sparse feature streams.
  std::vector<std::int64_t> lengths(rows.size());
  std::vector<std::int64_t> values;
  for (std::size_t f = 0; f < schema_.sparse_names.size(); ++f) {
    values.clear();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& list = rows[i].sparse[f];
      lengths[i] = static_cast<std::int64_t>(list.size());
      values.insert(values.end(), list.begin(), list.end());
    }
    common::ByteWriter raw_lengths;
    compress::EncodeIntsAuto(lengths, raw_lengths);
    add_stream(raw_lengths, lengths.size() * sizeof(std::int64_t));
    common::ByteWriter raw_values;
    compress::EncodeIntsAuto(values, raw_values);
    add_stream(raw_values, values.size() * sizeof(std::int64_t));
  }
  return stripe;
}

void ColumnFileWriter::Finish() {
  if (finished_) {
    throw std::logic_error("ColumnFileWriter: Finish called twice");
  }
  if (!pending_.empty()) {
    stripe_rows_.push_back(std::move(pending_));
    pending_.clear();
  }
  finished_ = true;

  // Encode the staged stripes (the compression-heavy part) in parallel.
  // Results land in per-stripe slots, so the encode order does not
  // affect the file. Without a pool, Append already encoded everything
  // but the tail incrementally.
  const std::size_t base = encoded_.size();
  encoded_.resize(base + stripe_rows_.size());
  if (options_.pool != nullptr && stripe_rows_.size() > 1) {
    options_.pool->ParallelFor(0, stripe_rows_.size(), [&](std::size_t i) {
      encoded_[base + i] = EncodeStripe(stripe_rows_[i]);
    });
  } else {
    for (std::size_t i = 0; i < stripe_rows_.size(); ++i) {
      encoded_[base + i] = EncodeStripe(stripe_rows_[i]);
    }
  }
  stripe_rows_.clear();

  // Serialize sequentially: offsets accumulate in stripe order and the
  // at-rest encryption keystream is seeded by each stream's offset, so
  // these steps stay on one thread. Byte-identical to a fully
  // sequential write.
  stripes_.reserve(encoded_.size());
  for (auto& es : encoded_) {
    StripeInfo stripe;
    stripe.num_rows = es.num_rows;
    stripe.streams.reserve(es.streams.size());
    logical_bytes_ += es.logical_bytes;
    for (auto& stream : es.streams) {
      StreamInfo info;
      info.offset = file_.size();
      info.compressed_len = stream.compressed.size();
      info.raw_len = stream.raw_len;
      XorKeystream(stream.compressed, info.offset, kCipherRounds);
      file_.PutBytes(stream.compressed);
      stripe.streams.push_back(info);
    }
    stripes_.push_back(std::move(stripe));
  }
  encoded_.clear();

  common::ByteWriter footer;
  footer.PutU8(static_cast<std::uint8_t>(options_.codec));
  footer.PutVarint(schema_.sparse_names.size());
  for (const auto& n : schema_.sparse_names) footer.PutString(n);
  footer.PutVarint(schema_.num_dense);
  footer.PutVarint(stripes_.size());
  for (const auto& stripe : stripes_) {
    footer.PutVarint(stripe.num_rows);
    footer.PutVarint(stripe.streams.size());
    for (const auto& s : stripe.streams) {
      footer.PutVarint(s.offset);
      footer.PutVarint(s.compressed_len);
      footer.PutVarint(s.raw_len);
    }
  }
  const std::uint64_t footer_len = footer.size();
  file_.PutBytes(footer.bytes());
  file_.PutU64(footer_len);
  file_.PutU32(kMagic);
  store_->Put(name_, std::move(file_).Take());
}

ColumnFileReader::ColumnFileReader(BlobStore& store, std::string name)
    : store_(&store), name_(std::move(name)) {
  const std::size_t file_size = store_->ObjectSize(name_);
  if (file_size < 12) {
    throw std::runtime_error("ColumnFileReader: file too small: " + name_);
  }
  // Tail: [footer][footer_len u64][magic u32]
  const auto tail = store_->ReadRange(name_, file_size - 12, 12);
  common::ByteReader tail_reader(tail);
  const std::uint64_t footer_len = tail_reader.GetU64();
  const std::uint32_t magic = tail_reader.GetU32();
  if (magic != kMagic) {
    throw std::runtime_error("ColumnFileReader: bad magic in " + name_);
  }
  if (footer_len + 12 > file_size) {
    throw std::runtime_error("ColumnFileReader: bad footer length in " +
                             name_);
  }
  const auto footer_bytes =
      store_->ReadRange(name_, file_size - 12 - footer_len, footer_len);
  open_bytes_ = 12 + footer_len;
  common::ByteReader footer(footer_bytes);
  codec_kind_ = static_cast<compress::CodecKind>(footer.GetU8());
  const std::uint64_t num_sparse = footer.GetVarint();
  schema_.sparse_names.reserve(num_sparse);
  for (std::uint64_t i = 0; i < num_sparse; ++i) {
    schema_.sparse_names.push_back(footer.GetString());
  }
  schema_.num_dense = footer.GetVarint();
  const std::uint64_t num_stripes = footer.GetVarint();
  stripes_.reserve(num_stripes);
  for (std::uint64_t i = 0; i < num_stripes; ++i) {
    StripeInfo stripe;
    stripe.num_rows = footer.GetVarint();
    const std::uint64_t num_streams = footer.GetVarint();
    stripe.streams.reserve(num_streams);
    for (std::uint64_t s = 0; s < num_streams; ++s) {
      StreamInfo info;
      info.offset = footer.GetVarint();
      info.compressed_len = footer.GetVarint();
      info.raw_len = footer.GetVarint();
      stripe.streams.push_back(info);
    }
    stripes_.push_back(std::move(stripe));
  }
}

std::size_t ColumnFileReader::num_rows() const {
  std::size_t n = 0;
  for (const auto& s : stripes_) n += s.num_rows;
  return n;
}

std::vector<std::byte> ColumnFileReader::ReadStream(
    const StreamInfo& info) const {
  // Fill-stage work per compressed byte: fetch (copy), decrypt, then
  // decompress — the §6.3 fill pipeline.
  const auto stored =
      store_->ReadRange(name_, info.offset, info.compressed_len);
  std::vector<std::byte> compressed(stored.begin(), stored.end());
  XorKeystream(compressed, info.offset, kCipherRounds);
  return compress::GetCodec(codec_kind_).Decompress(compressed);
}

template <typename Fn>
void ColumnFileReader::VisitProjectedStreams(const ReadProjection& projection,
                                             const Fn& fn) const {
  for (std::size_t s = 0; s < kMetaStreams; ++s) fn(s);
  if (projection.dense && schema_.num_dense > 0) {
    fn(DenseStreamIndex());
  }
  for (const std::size_t f : projection.sparse) {
    if (f >= schema_.sparse_names.size()) {
      throw std::out_of_range("ColumnFileReader: projected feature index");
    }
    const std::size_t ls = LengthsStreamIndex(schema_, f);
    fn(ls);
    fn(ls + 1);
  }
}

RawStripe ColumnFileReader::FetchStripe(
    std::size_t i, const ReadProjection& projection) const {
  if (i >= stripes_.size()) {
    throw std::out_of_range("ColumnFileReader: stripe index out of range");
  }
  const auto& stripe = stripes_[i];
  RawStripe raw;
  raw.num_rows = stripe.num_rows;
  raw.streams.resize(stripe.streams.size());
  VisitProjectedStreams(projection, [&](std::size_t stream) {
    raw.streams[stream] = ReadStream(stripe.streams[stream]);
  });
  return raw;
}

std::size_t ColumnFileReader::StripeBytes(
    std::size_t i, const ReadProjection& projection) const {
  if (i >= stripes_.size()) {
    throw std::out_of_range("ColumnFileReader: stripe index out of range");
  }
  const auto& stripe = stripes_[i];
  std::size_t bytes = 0;
  VisitProjectedStreams(projection, [&](std::size_t stream) {
    bytes += stripe.streams[stream].compressed_len;
  });
  return bytes;
}

std::vector<datagen::Sample> ColumnFileReader::DecodeStripe(
    const RawStripe& raw, const ReadProjection& projection) const {
  return DecodeRawStripe(schema_, raw, projection);
}

std::vector<datagen::Sample> DecodeRawStripe(
    const StorageSchema& schema, const RawStripe& raw,
    const ReadProjection& projection) {
  const std::size_t rows = raw.num_rows;
  std::vector<datagen::Sample> out(rows);
  for (auto& s : out) s.sparse.resize(schema.sparse_names.size());

  // Meta streams.
  for (std::size_t s = 0; s < 3; ++s) {
    common::ByteReader reader(raw.streams[s]);
    const auto vals = compress::DecodeInts(reader);
    if (vals.size() != rows) {
      throw std::runtime_error("DecodeRawStripe: meta stream row mismatch");
    }
    for (std::size_t r = 0; r < rows; ++r) {
      if (s == 0) out[r].request_id = vals[r];
      if (s == 1) out[r].session_id = vals[r];
      if (s == 2) out[r].timestamp = vals[r];
    }
  }
  {
    common::ByteReader reader(raw.streams[3]);
    for (std::size_t r = 0; r < rows; ++r) out[r].label = reader.GetF32();
  }
  if (projection.dense && schema.num_dense > 0) {
    common::ByteReader reader(raw.streams[DenseStreamIndex()]);
    for (std::size_t r = 0; r < rows; ++r) {
      out[r].dense.resize(schema.num_dense);
      for (auto& v : out[r].dense) v = reader.GetF32();
    }
  }
  for (const std::size_t f : projection.sparse) {
    const std::size_t ls = LengthsStreamIndex(schema, f);
    common::ByteReader lengths_reader(raw.streams[ls]);
    const auto lengths = compress::DecodeInts(lengths_reader);
    common::ByteReader values_reader(raw.streams[ls + 1]);
    const auto values = compress::DecodeInts(values_reader);
    if (lengths.size() != rows) {
      throw std::runtime_error("DecodeRawStripe: lengths row mismatch");
    }
    std::size_t pos = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      const auto len = static_cast<std::size_t>(lengths[r]);
      if (pos + len > values.size()) {
        throw std::runtime_error("DecodeRawStripe: values underflow");
      }
      out[r].sparse[f].assign(values.begin() + static_cast<std::ptrdiff_t>(pos),
                              values.begin() +
                                  static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    }
  }
  return out;
}

std::vector<datagen::Sample> ColumnFileReader::ReadStripe(
    std::size_t i, const ReadProjection& projection) const {
  return DecodeStripe(FetchStripe(i, projection), projection);
}

WriteResult WriteSamples(BlobStore& store, const std::string& name,
                         const StorageSchema& schema,
                         const std::vector<datagen::Sample>& samples,
                         WriterOptions options) {
  ColumnFileWriter writer(store, name, schema, options);
  for (const auto& s : samples) writer.Append(s);
  writer.Finish();
  WriteResult result;
  result.rows = samples.size();
  result.stored_bytes = store.ObjectSize(name);
  result.logical_bytes = writer.logical_bytes();
  return result;
}

}  // namespace recd::storage
