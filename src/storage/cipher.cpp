#include "storage/cipher.h"

#include <cstring>

#include "common/hash.h"

namespace recd::storage {

void XorKeystream(std::span<std::byte> data, std::uint64_t seed,
                  int rounds) {
  for (int round = 0; round < rounds; ++round) {
    std::uint64_t state = common::Mix64(seed + static_cast<std::uint64_t>(round));
    std::size_t i = 0;
    while (i + 8 <= data.size()) {
      state = common::Mix64(state);
      std::uint64_t word;
      std::memcpy(&word, data.data() + i, 8);
      word ^= state;
      std::memcpy(data.data() + i, &word, 8);
      i += 8;
    }
    state = common::Mix64(state);
    for (; i < data.size(); ++i) {
      data[i] ^= static_cast<std::byte>(state >> ((i % 8) * 8));
    }
  }
}

}  // namespace recd::storage
