// Self-attention sequence pooling (the paper's "transformer pooling").
//
// Recent DLRMs pool long user-history sequences with attention (§2.2);
// its L² compute is exactly what RecD's O7 deduplicates — running the
// module once per *unique* row and expanding the pooled output through
// the shared inverse_lookup. The math here is real (softmax(QK^T/√d)·V
// with Q=K=V=sequence embeddings), so the KJT and IKJT paths can be
// checked for exact agreement, and the flop counters drive the modeled
// GEMM savings in Fig 8/9.
#pragma once

#include <cstddef>
#include <span>

#include "nn/dense_matrix.h"
#include "nn/op_stats.h"
#include "tensor/jagged.h"

namespace recd::nn {

class SelfAttentionPooling {
 public:
  explicit SelfAttentionPooling(std::size_t dim) : dim_(dim) {}

  /// Pools one row's sequence embeddings `seq` (len x dim, row-major)
  /// into `out` (dim): scores = softmax(seq seq^T / sqrt(dim)) followed
  /// by mean over positions of scores * seq. Empty sequences pool to 0.
  void PoolRow(std::span<const float> seq, std::size_t len,
               std::span<float> out);

  /// Pools every row of a jagged batch given its concatenated sequence
  /// embeddings (`seq_emb` rows align with batch values order). Returns
  /// batch-rows x dim.
  [[nodiscard]] DenseMatrix Forward(const tensor::JaggedTensor& batch,
                                    const DenseMatrix& seq_emb);

  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const OpStats& stats() const { return stats_; }
  /// Peak transient memory (score matrix) over all Forward calls.
  [[nodiscard]] std::size_t peak_score_bytes() const {
    return peak_score_bytes_;
  }
  void ResetStats() {
    stats_ = {};
    peak_score_bytes_ = 0;
  }

 private:
  std::size_t dim_;
  OpStats stats_;
  std::size_t peak_score_bytes_ = 0;
};

}  // namespace recd::nn
