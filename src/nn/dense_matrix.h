// Row-major float matrix: the dense tensor type for all real math in the
// trainer (MLPs, pooled embeddings, interactions).
#pragma once

#include <cstddef>
#include <span>

#include "common/aligned.h"
#include "common/rng.h"

namespace recd::nn {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] static DenseMatrix Xavier(std::size_t rows, std::size_t cols,
                                          common::Rng& rng);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t byte_size() const {
    return data_.size() * sizeof(float);
  }

  [[nodiscard]] float& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] std::span<float> row(std::size_t r) {
    return std::span<float>(data_).subspan(r * cols_, cols_);
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    return std::span<const float>(data_).subspan(r * cols_, cols_);
  }
  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  [[nodiscard]] bool operator==(const DenseMatrix&) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  common::AlignedVector<float> data_;
};

/// C = A * B^T  (A: m x k, B: n x k, C: m x n). The GEMM shape used by
/// Linear layers (weights stored out x in).
void MatmulABt(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix& c);

/// C = A * B  (A: m x k, B: k x n, C: m x n).
void MatmulAB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix& c);

/// Maximum absolute elementwise difference (test helper).
[[nodiscard]] float MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

/// Rows [lo, hi) of `m` as a new matrix — the canonical-chunk row
/// split shared by ReferenceDlrm::TrainStep and the distributed
/// trainer. Throws std::out_of_range unless lo <= hi <= m.rows().
[[nodiscard]] DenseMatrix SliceRows(const DenseMatrix& m, std::size_t lo,
                                    std::size_t hi);

}  // namespace recd::nn
