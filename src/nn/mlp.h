// Multilayer perceptron with forward and backward passes.
//
// DLRMs are "primarily MLPs and embedding tables" (paper §2.2): a bottom
// MLP transforms dense features to embedding dimensionality and a top MLP
// maps interactions to the logit. Backward is real (used by the
// clustering-accuracy experiment); flop counters feed the trainer model.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "nn/dense_matrix.h"
#include "nn/op_stats.h"

namespace recd::nn {

/// Fully-connected layer (weights out x in), optional ReLU.
class Linear {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, bool relu,
         common::Rng& rng);

  /// Y = relu?(X W^T + b). Stores what backward needs.
  [[nodiscard]] DenseMatrix Forward(const DenseMatrix& x);

  /// Given dL/dY, accumulates dW/db and returns dL/dX. Requires a
  /// preceding Forward on the same input.
  [[nodiscard]] DenseMatrix Backward(const DenseMatrix& grad_out);

  /// SGD update; zeroes accumulated gradients.
  void Step(float lr);

  [[nodiscard]] std::size_t in_dim() const { return w_.cols(); }
  [[nodiscard]] std::size_t out_dim() const { return w_.rows(); }
  [[nodiscard]] std::size_t num_params() const {
    return w_.size() + b_.size();
  }
  [[nodiscard]] const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  DenseMatrix w_;  // out x in
  std::vector<float> b_;
  bool relu_;
  DenseMatrix last_input_;
  DenseMatrix last_pre_act_;
  DenseMatrix grad_w_;
  std::vector<float> grad_b_;
  OpStats stats_;
};

/// Stack of Linear layers; ReLU between layers, none after the last.
class Mlp {
 public:
  /// `dims` = {in, hidden..., out}; needs at least 2 entries.
  Mlp(const std::vector<std::size_t>& dims, common::Rng& rng);

  [[nodiscard]] DenseMatrix Forward(const DenseMatrix& x);
  [[nodiscard]] DenseMatrix Backward(const DenseMatrix& grad_out);
  void Step(float lr);

  [[nodiscard]] std::size_t num_params() const;
  [[nodiscard]] OpStats stats() const;
  void ResetStats();

  [[nodiscard]] std::size_t in_dim() const { return layers_.front().in_dim(); }
  [[nodiscard]] std::size_t out_dim() const {
    return layers_.back().out_dim();
  }

 private:
  std::vector<Linear> layers_;
};

}  // namespace recd::nn
