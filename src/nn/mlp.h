// Multilayer perceptron with forward and backward passes.
//
// DLRMs are "primarily MLPs and embedding tables" (paper §2.2): a bottom
// MLP transforms dense features to embedding dimensionality and a top MLP
// maps interactions to the logit. Backward is real (used by the
// clustering-accuracy experiment); flop counters feed the trainer model.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "kernels/backend.h"
#include "nn/dense_matrix.h"
#include "nn/op_stats.h"

namespace recd::nn {

/// Fully-connected layer (weights out x in), optional ReLU.
class Linear {
 public:
  Linear(std::size_t in_dim, std::size_t out_dim, bool relu,
         common::Rng& rng);

  /// Y = relu?(X W^T + b). Stores what backward needs.
  [[nodiscard]] DenseMatrix Forward(const DenseMatrix& x);

  /// Given dL/dY, accumulates dW/db and returns dL/dX. Requires a
  /// preceding Forward on the same input.
  [[nodiscard]] DenseMatrix Backward(const DenseMatrix& grad_out);

  /// SGD update; zeroes accumulated gradients.
  void Step(float lr);

  /// Moves out the accumulated (dW, db) and zeroes the internal
  /// buffers — the per-chunk gradient capture of the deterministic
  /// blocked reduction (train::kGradChunks).
  [[nodiscard]] std::pair<DenseMatrix, std::vector<float>> TakeGradients();

  /// Elementwise-adds into the accumulated gradients (the chunk
  /// combine; a following Step applies the total).
  void AccumulateGradients(const DenseMatrix& grad_w,
                           std::span<const float> grad_b);

  /// Replaces the layer's weights and bias — the checkpoint-restore
  /// path (train/checkpoint.h). Shapes must match the layer exactly;
  /// throws std::invalid_argument otherwise. Accumulated gradients are
  /// zeroed: restored state is the state *after* an update.
  void LoadParameters(DenseMatrix weights, std::vector<float> bias);

  [[nodiscard]] std::size_t in_dim() const { return w_.cols(); }
  [[nodiscard]] std::size_t out_dim() const { return w_.rows(); }
  [[nodiscard]] const DenseMatrix& weights() const { return w_; }
  [[nodiscard]] std::span<const float> bias() const { return b_; }
  [[nodiscard]] std::size_t num_params() const {
    return w_.size() + b_.size();
  }
  [[nodiscard]] const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// Kernel backend for the layer's GEMMs/updates (defaults to the
  /// process-wide kernels::DefaultBackend()); bitwise-neutral.
  void set_backend(kernels::KernelBackend b) { backend_ = b; }
  [[nodiscard]] kernels::KernelBackend backend() const { return backend_; }

 private:
  kernels::KernelBackend backend_ = kernels::DefaultBackend();
  DenseMatrix w_;  // out x in
  std::vector<float> b_;
  bool relu_;
  DenseMatrix last_input_;
  DenseMatrix last_pre_act_;
  DenseMatrix grad_w_;
  std::vector<float> grad_b_;
  OpStats stats_;
};

/// Per-layer gradient snapshot of an Mlp (see Mlp::TakeGradients):
/// the all-reduce payload of the executed distributed trainer and the
/// chunk partial of the deterministic blocked reduction.
struct MlpGradients {
  std::vector<DenseMatrix> grad_w;
  std::vector<std::vector<float>> grad_b;

  /// Elementwise += of another snapshot with identical shapes.
  void Add(const MlpGradients& other);
};

/// Stack of Linear layers; ReLU between layers, none after the last.
class Mlp {
 public:
  /// `dims` = {in, hidden..., out}; needs at least 2 entries.
  Mlp(const std::vector<std::size_t>& dims, common::Rng& rng);

  [[nodiscard]] DenseMatrix Forward(const DenseMatrix& x);
  [[nodiscard]] DenseMatrix Backward(const DenseMatrix& grad_out);
  void Step(float lr);

  /// Per-layer gradient capture; internal accumulators end up zeroed.
  [[nodiscard]] MlpGradients TakeGradients();
  /// Zero-shaped snapshot, the start value of a chunk reduction.
  [[nodiscard]] MlpGradients ZeroGradients() const;
  /// Elementwise-adds a snapshot into the internal accumulators.
  void AccumulateGradients(const MlpGradients& grads);

  /// Checkpoint-restore into layer `i` (see Linear::LoadParameters).
  void LoadLayerParameters(std::size_t i, DenseMatrix weights,
                           std::vector<float> bias);

  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] const Linear& layer(std::size_t i) const {
    return layers_[i];
  }

  [[nodiscard]] std::size_t num_params() const;
  [[nodiscard]] OpStats stats() const;
  void ResetStats();

  /// Propagates a kernel backend to every layer (parity tests).
  void set_backend(kernels::KernelBackend b);

  [[nodiscard]] std::size_t in_dim() const { return layers_.front().in_dim(); }
  [[nodiscard]] std::size_t out_dim() const {
    return layers_.back().out_dim();
  }

 private:
  std::vector<Linear> layers_;
};

}  // namespace recd::nn
