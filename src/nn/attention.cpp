#include "nn/attention.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace recd::nn {

void SelfAttentionPooling::PoolRow(std::span<const float> seq,
                                   std::size_t len, std::span<float> out) {
  if (out.size() != dim_) {
    throw std::invalid_argument("SelfAttentionPooling: bad output size");
  }
  std::fill(out.begin(), out.end(), 0.0f);
  if (len == 0) return;
  if (seq.size() != len * dim_) {
    throw std::invalid_argument("SelfAttentionPooling: bad sequence size");
  }
  const float inv_sqrt_d =
      1.0f / std::sqrt(static_cast<float>(dim_));

  // scores = seq seq^T / sqrt(d), softmax per row, pooled = mean over
  // rows of scores * seq.
  std::vector<float> scores(len * len);
  for (std::size_t i = 0; i < len; ++i) {
    const float* qi = seq.data() + i * dim_;
    float row_max = -1e30f;
    for (std::size_t j = 0; j < len; ++j) {
      const float* kj = seq.data() + j * dim_;
      float dot = 0.0f;
      for (std::size_t c = 0; c < dim_; ++c) dot += qi[c] * kj[c];
      const float s = dot * inv_sqrt_d;
      scores[i * len + j] = s;
      row_max = std::max(row_max, s);
    }
    float denom = 0.0f;
    for (std::size_t j = 0; j < len; ++j) {
      float& s = scores[i * len + j];
      s = std::exp(s - row_max);
      denom += s;
    }
    const float inv = 1.0f / denom;
    for (std::size_t j = 0; j < len; ++j) scores[i * len + j] *= inv;
  }
  const float inv_len = 1.0f / static_cast<float>(len);
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t j = 0; j < len; ++j) {
      const float a = scores[i * len + j] * inv_len;
      const float* vj = seq.data() + j * dim_;
      for (std::size_t c = 0; c < dim_; ++c) out[c] += a * vj[c];
    }
  }
  // QK^T and AV are each 2*L^2*d flops; softmax ~5 flops per score.
  stats_.flops += 4ull * len * len * dim_ + 5ull * len * len;
  stats_.bytes_read += 2ull * len * dim_ * sizeof(float);
  stats_.bytes_written += dim_ * sizeof(float);
  peak_score_bytes_ =
      std::max(peak_score_bytes_, scores.size() * sizeof(float));
}

DenseMatrix SelfAttentionPooling::Forward(const tensor::JaggedTensor& batch,
                                          const DenseMatrix& seq_emb) {
  if (seq_emb.rows() != batch.total_values() || seq_emb.cols() != dim_) {
    throw std::invalid_argument(
        "SelfAttentionPooling::Forward: embedding shape mismatch");
  }
  DenseMatrix out(batch.num_rows(), dim_);
  std::size_t pos = 0;
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    const auto len = static_cast<std::size_t>(batch.length(r));
    const std::span<const float> seq =
        seq_emb.data().subspan(pos * dim_, len * dim_);
    PoolRow(seq, len, out.row(r));
    pos += len;
  }
  return out;
}

}  // namespace recd::nn
