#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "kernels/kernels.h"

namespace recd::nn {

float Sigmoid(float x) {
  if (x >= 0.0f) {
    return 1.0f / (1.0f + std::exp(-x));
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

double BceWithLogitsLossSum(kernels::KernelBackend backend,
                            const DenseMatrix& logits,
                            std::span<const float> labels) {
  if (logits.rows() != labels.size() || logits.cols() != 1) {
    throw std::invalid_argument("BceWithLogitsLossSum: shape mismatch");
  }
  // loss term = max(z,0) - z*y + log(1 + exp(-|z|)) (stable form).
  return kernels::BceLossSum(backend, logits.data().data(), labels.data(),
                             labels.size());
}

double BceWithLogitsLossSum(const DenseMatrix& logits,
                            std::span<const float> labels) {
  return BceWithLogitsLossSum(kernels::DefaultBackend(), logits, labels);
}

float BceWithLogitsLoss(const DenseMatrix& logits,
                        std::span<const float> labels) {
  return static_cast<float>(BceWithLogitsLossSum(logits, labels) /
                            static_cast<double>(logits.rows()));
}

DenseMatrix BceWithLogitsGrad(kernels::KernelBackend backend,
                              const DenseMatrix& logits,
                              std::span<const float> labels,
                              std::size_t denom) {
  if (logits.rows() != labels.size() || logits.cols() != 1) {
    throw std::invalid_argument("BceWithLogitsGrad: shape mismatch");
  }
  if (denom == 0) {
    throw std::invalid_argument("BceWithLogitsGrad: zero denominator");
  }
  DenseMatrix grad(logits.rows(), 1);
  const float inv_n = 1.0f / static_cast<float>(denom);
  kernels::BceGrad(backend, logits.data().data(), labels.data(),
                   labels.size(), inv_n, grad.data().data());
  return grad;
}

DenseMatrix BceWithLogitsGrad(const DenseMatrix& logits,
                              std::span<const float> labels,
                              std::size_t denom) {
  return BceWithLogitsGrad(kernels::DefaultBackend(), logits, labels,
                           denom);
}

DenseMatrix BceWithLogitsGrad(const DenseMatrix& logits,
                              std::span<const float> labels) {
  return BceWithLogitsGrad(logits, labels, logits.rows());
}

}  // namespace recd::nn
