#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

namespace recd::nn {

float Sigmoid(float x) {
  if (x >= 0.0f) {
    return 1.0f / (1.0f + std::exp(-x));
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

double BceWithLogitsLossSum(const DenseMatrix& logits,
                            std::span<const float> labels) {
  if (logits.rows() != labels.size() || logits.cols() != 1) {
    throw std::invalid_argument("BceWithLogitsLossSum: shape mismatch");
  }
  // loss term = max(z,0) - z*y + log(1 + exp(-|z|)) (stable form).
  double total = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const float z = logits.at(r, 0);
    const float y = labels[r];
    total += std::max(z, 0.0f) - z * y +
             std::log1p(std::exp(-std::abs(z)));
  }
  return total;
}

float BceWithLogitsLoss(const DenseMatrix& logits,
                        std::span<const float> labels) {
  return static_cast<float>(BceWithLogitsLossSum(logits, labels) /
                            static_cast<double>(logits.rows()));
}

DenseMatrix BceWithLogitsGrad(const DenseMatrix& logits,
                              std::span<const float> labels,
                              std::size_t denom) {
  if (logits.rows() != labels.size() || logits.cols() != 1) {
    throw std::invalid_argument("BceWithLogitsGrad: shape mismatch");
  }
  if (denom == 0) {
    throw std::invalid_argument("BceWithLogitsGrad: zero denominator");
  }
  DenseMatrix grad(logits.rows(), 1);
  const float inv_n = 1.0f / static_cast<float>(denom);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    grad.at(r, 0) = (Sigmoid(logits.at(r, 0)) - labels[r]) * inv_n;
  }
  return grad;
}

DenseMatrix BceWithLogitsGrad(const DenseMatrix& logits,
                              std::span<const float> labels) {
  return BceWithLogitsGrad(logits, labels, logits.rows());
}

}  // namespace recd::nn
