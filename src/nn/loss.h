// Binary cross-entropy with logits (the CTR objective).
#pragma once

#include <span>
#include <vector>

#include "kernels/backend.h"
#include "nn/dense_matrix.h"

namespace recd::nn {

/// Numerically-stable sigmoid.
[[nodiscard]] float Sigmoid(float x);

/// Mean BCE-with-logits loss over a batch. `logits` is rows x 1.
[[nodiscard]] float BceWithLogitsLoss(const DenseMatrix& logits,
                                      std::span<const float> labels);

/// Sum (not mean) of the per-row stable BCE terms, accumulated in
/// double: the chunk partial of the deterministic blocked loss
/// reduction (train::kGradChunks) shared by ReferenceDlrm::TrainStep
/// and the executed distributed trainer.
[[nodiscard]] double BceWithLogitsLossSum(const DenseMatrix& logits,
                                          std::span<const float> labels);

/// Backend-pinned variant (the overload above uses
/// kernels::DefaultBackend()); bitwise-identical across backends.
[[nodiscard]] double BceWithLogitsLossSum(kernels::KernelBackend backend,
                                          const DenseMatrix& logits,
                                          std::span<const float> labels);

/// dL/dlogits for the mean BCE loss: (sigmoid(z) - y) / N, rows x 1.
[[nodiscard]] DenseMatrix BceWithLogitsGrad(const DenseMatrix& logits,
                                            std::span<const float> labels);

/// Same, but the mean is taken over `denom` rows — the *global* batch
/// size when `logits` covers only one rank's or one chunk's rows.
[[nodiscard]] DenseMatrix BceWithLogitsGrad(const DenseMatrix& logits,
                                            std::span<const float> labels,
                                            std::size_t denom);

/// Backend-pinned variant of the denom-explicit gradient.
[[nodiscard]] DenseMatrix BceWithLogitsGrad(kernels::KernelBackend backend,
                                            const DenseMatrix& logits,
                                            std::span<const float> labels,
                                            std::size_t denom);

}  // namespace recd::nn
