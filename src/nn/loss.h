// Binary cross-entropy with logits (the CTR objective).
#pragma once

#include <span>
#include <vector>

#include "nn/dense_matrix.h"

namespace recd::nn {

/// Numerically-stable sigmoid.
[[nodiscard]] float Sigmoid(float x);

/// Mean BCE-with-logits loss over a batch. `logits` is rows x 1.
[[nodiscard]] float BceWithLogitsLoss(const DenseMatrix& logits,
                                      std::span<const float> labels);

/// dL/dlogits for the mean BCE loss: (sigmoid(z) - y) / N, rows x 1.
[[nodiscard]] DenseMatrix BceWithLogitsGrad(const DenseMatrix& logits,
                                            std::span<const float> labels);

}  // namespace recd::nn
