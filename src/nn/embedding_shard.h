// EmbeddingShardView: one rank's model-parallel embedding shard.
//
// The executed hybrid-parallel trainer shards embedding tables across
// ranks by table id (whole tables; a sync group's tables are placed
// together so the group's shared inverse_lookup stays rank-local, see
// docs/ARCHITECTURE.md §10). This view holds exactly the tables a rank
// owns. Accessing an unowned table id throws — an out-of-shard lookup
// is a sharding bug and must never be silently served from a replica
// that does not exist.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "nn/embedding.h"

namespace recd::nn {

class EmbeddingShardView {
 public:
  EmbeddingShardView() = default;

  /// Takes ownership of `table` as global `table_id`. Throws
  /// std::invalid_argument if the id is already in the shard.
  void AddTable(std::size_t table_id, EmbeddingTable table);

  [[nodiscard]] bool Owns(std::size_t table_id) const;

  /// Owned-table access. Throws std::out_of_range for table ids this
  /// shard does not own.
  [[nodiscard]] EmbeddingTable& Table(std::size_t table_id);
  [[nodiscard]] const EmbeddingTable& Table(std::size_t table_id) const;

  [[nodiscard]] std::size_t num_tables() const { return tables_.size(); }

  /// Owned table ids in ascending order.
  [[nodiscard]] std::vector<std::size_t> table_ids() const;

  /// Parameter bytes held by this shard.
  [[nodiscard]] std::size_t param_bytes() const;

  /// Converts every owned table to a tiered row store (embstore).
  void UseTieredStore(const embstore::TierConfig& config);

  /// Sum of tier counters across owned tables (all-zero when dense).
  [[nodiscard]] embstore::TierStats TierStatsTotal() const;
  void ResetTierStats();

 private:
  std::map<std::size_t, EmbeddingTable> tables_;
};

}  // namespace recd::nn
