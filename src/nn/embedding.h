// Embedding tables with pooled lookups — the sparse half of a DLRM.
//
// EMBs translate each sparse ID into a dense vector; a pooling function
// aggregates a row's vectors (paper §2.2). RecD's O5 performs lookups on
// *deduplicated* values slices, cutting lookups, activation memory, and
// memory bandwidth by DedupeFactor(f); the trainer simulation exercises
// both paths through this class and tests assert they agree exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "kernels/backend.h"
#include "nn/dense_matrix.h"
#include "nn/op_stats.h"
#include "tensor/jagged.h"

namespace recd::nn {

enum class PoolingKind : std::uint8_t { kSum, kMean, kMax };

class EmbeddingTable {
 public:
  /// `hash_size` rows of `dim` floats; IDs are mapped by modulo (the
  /// standard hash-trick used when the raw domain exceeds table rows).
  EmbeddingTable(std::size_t hash_size, std::size_t dim, common::Rng& rng);

  [[nodiscard]] std::size_t hash_size() const { return weights_.rows(); }
  [[nodiscard]] std::size_t dim() const { return weights_.cols(); }
  [[nodiscard]] std::size_t param_bytes() const {
    return weights_.byte_size();
  }

  /// Row view for one ID.
  [[nodiscard]] std::span<const float> Lookup(tensor::Id id) const;

  /// Pooled lookup over a jagged batch: out(r, :) = pool(rows of batch r).
  /// Empty rows pool to zero.
  [[nodiscard]] DenseMatrix PooledForward(const tensor::JaggedTensor& batch,
                                          PoolingKind pooling);

  /// Un-pooled lookup: concatenated sequence embeddings, one row per
  /// value in the jagged batch (feeds attention pooling).
  [[nodiscard]] DenseMatrix SequenceForward(const tensor::JaggedTensor& batch);

  /// Fused dedup-aware sum-pooled lookup (RecD O5+O7 in one pass):
  /// pools each *unique* row once and writes the pooled vector into
  /// every batch slot i with inverse[i] == u — bitwise-identical to
  /// PooledForward(unique, kSum) followed by a row gather through
  /// `inverse`, without materializing the unique-row matrix. Every
  /// inverse entry must be in [0, unique.num_rows()).
  [[nodiscard]] DenseMatrix FusedPooledForward(
      const tensor::JaggedTensor& unique,
      std::span<const std::int64_t> inverse);

  /// Sparse SGD for sum/mean pooling: applies -lr * grad(r) to every ID
  /// of row r (scaled by 1/len for mean). Max pooling is forward-only.
  void ApplyPooledGradient(const tensor::JaggedTensor& batch,
                           const DenseMatrix& grad, PoolingKind pooling,
                           float lr);

  /// Full weight matrix (hash_size x dim) — the bitwise-equality
  /// surface of the distributed determinism tests.
  [[nodiscard]] const DenseMatrix& weights() const { return weights_; }

  /// Replaces the table's weights — the checkpoint-restore path
  /// (train/checkpoint.h). The shape must match this table exactly;
  /// throws std::invalid_argument otherwise.
  void LoadWeights(DenseMatrix weights);

  [[nodiscard]] const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// Kernel backend for lookups/updates (defaults to the process-wide
  /// kernels::DefaultBackend()). Both backends are bitwise-identical;
  /// the setter exists so parity tests can pin each path explicitly.
  void set_backend(kernels::KernelBackend b) { backend_ = b; }
  [[nodiscard]] kernels::KernelBackend backend() const { return backend_; }

 private:
  [[nodiscard]] std::size_t RowIndex(tensor::Id id) const;

  DenseMatrix weights_;
  OpStats stats_;
  kernels::KernelBackend backend_ = kernels::DefaultBackend();
};

}  // namespace recd::nn
