// Embedding tables with pooled lookups — the sparse half of a DLRM.
//
// EMBs translate each sparse ID into a dense vector; a pooling function
// aggregates a row's vectors (paper §2.2). RecD's O5 performs lookups on
// *deduplicated* values slices, cutting lookups, activation memory, and
// memory bandwidth by DedupeFactor(f); the trainer simulation exercises
// both paths through this class and tests assert they agree exactly.
//
// Storage backends (docs/ARCHITECTURE.md §13): by default a table owns
// its weights as one dense in-memory matrix. UseTieredStore swaps that
// for an embstore::TieredRowStore — a bounded hot-row cache over
// compressed cold segments — after which every lookup/update path
// gathers the referenced rows, runs the identical kernel float-op
// sequence on the gathered scratch, and writes updates back through
// the store. Because rows are bit-exact in both tiers and the gather
// preserves id order, results are bitwise identical to the dense
// backend for every hot capacity and eviction schedule (the
// tier-placement determinism rule).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "embstore/tiered_store.h"
#include "kernels/backend.h"
#include "nn/dense_matrix.h"
#include "nn/op_stats.h"
#include "tensor/jagged.h"

namespace recd::kernels {
struct GroupFeature;
}  // namespace recd::kernels

namespace recd::nn {

enum class PoolingKind : std::uint8_t { kSum, kMean, kMax };

class EmbeddingTable {
 public:
  /// `hash_size` rows of `dim` floats; IDs are mapped by modulo (the
  /// standard hash-trick used when the raw domain exceeds table rows).
  EmbeddingTable(std::size_t hash_size, std::size_t dim, common::Rng& rng);

  [[nodiscard]] std::size_t hash_size() const {
    return store_ ? store_->rows() : weights_.rows();
  }
  [[nodiscard]] std::size_t dim() const {
    return store_ ? store_->dim() : weights_.cols();
  }
  /// Logical fp32 parameter bytes (tier-independent).
  [[nodiscard]] std::size_t param_bytes() const {
    return hash_size() * dim() * sizeof(float);
  }

  /// Row view for one ID. Dense backend: a view into the weight
  /// matrix, valid until the next update. Tiered backend: the row is
  /// fetched into a per-table scratch — valid until the next Lookup or
  /// any forward/backward call on this table.
  [[nodiscard]] std::span<const float> Lookup(tensor::Id id) const;

  /// Pooled lookup over a jagged batch: out(r, :) = pool(rows of batch r).
  /// Empty rows pool to zero.
  [[nodiscard]] DenseMatrix PooledForward(const tensor::JaggedTensor& batch,
                                          PoolingKind pooling);

  /// Un-pooled lookup: concatenated sequence embeddings, one row per
  /// value in the jagged batch (feeds attention pooling).
  [[nodiscard]] DenseMatrix SequenceForward(const tensor::JaggedTensor& batch);

  /// Fused dedup-aware sum-pooled lookup (RecD O5+O7 in one pass):
  /// pools each *unique* row once and writes the pooled vector into
  /// every batch slot i with inverse[i] == u — bitwise-identical to
  /// PooledForward(unique, kSum) followed by a row gather through
  /// `inverse`, without materializing the unique-row matrix. Every
  /// inverse entry must be in [0, unique.num_rows()). On a tiered
  /// backend the inverse multiplicities double as hot-tier admission
  /// weights (RecD's skew shapes the hot set).
  [[nodiscard]] DenseMatrix FusedPooledForward(
      const tensor::JaggedTensor& unique,
      std::span<const std::int64_t> inverse);

  /// Sparse SGD for sum/mean pooling: applies -lr * grad(r) to every ID
  /// of row r (scaled by 1/len for mean). Max pooling is forward-only.
  void ApplyPooledGradient(const tensor::JaggedTensor& batch,
                           const DenseMatrix& grad, PoolingKind pooling,
                           float lr);

  /// Full weight matrix (hash_size x dim) — the bitwise-equality
  /// surface of the distributed determinism tests and the checkpoint
  /// path. Tiered backend: materialized on each call (hot rows overlaid
  /// on cold), valid until the next mutating call.
  [[nodiscard]] const DenseMatrix& weights() const;

  /// Replaces the table's weights — the checkpoint-restore path
  /// (train/checkpoint.h). The shape must match this table exactly;
  /// throws std::invalid_argument otherwise. On a tiered backend the
  /// cold segments are rebuilt and the hot tier reset.
  void LoadWeights(DenseMatrix weights);

  [[nodiscard]] const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

  /// Kernel backend for lookups/updates (defaults to the process-wide
  /// kernels::DefaultBackend()). Both backends are bitwise-identical;
  /// the setter exists so parity tests can pin each path explicitly.
  void set_backend(kernels::KernelBackend b) { backend_ = b; }
  [[nodiscard]] kernels::KernelBackend backend() const { return backend_; }

  // --- Tiered row store (docs/ARCHITECTURE.md §13) --------------------

  /// Converts this table's storage to a two-tier row store: weights
  /// move into compressed cold segments under a bounded hot cache,
  /// preserved bitwise. Throws std::logic_error if already tiered.
  void UseTieredStore(const embstore::TierConfig& config);

  [[nodiscard]] bool tiered() const { return store_ != nullptr; }

  /// Tier counters; all-zero for the dense backend.
  [[nodiscard]] embstore::TierStats tier_stats() const;
  void ResetTierStats();

  /// Kernel-ready view of `jt` against this table's storage, for the
  /// grouped kernels (SumPoolGroup / FusedPooledLookup) that read raw
  /// weight pointers. Dense backend: a pass-through (store_backed ==
  /// false; feed the original jt and weights). Tiered backend: the
  /// referenced rows are gathered once into `gathered` and `remapped`
  /// holds the same jagged structure with ids rewritten to gathered
  /// positions — feeding (remapped, gathered) to a kernel runs the
  /// identical float-op sequence. `row_weights` (one per jt row; empty
  /// = 1) are hot-tier admission weights — pass the IKJT inverse
  /// multiplicities on dedup paths.
  struct KernelFeature {
    bool store_backed = false;
    tensor::JaggedTensor remapped;
    DenseMatrix gathered;
    std::vector<std::size_t> row_ids;  // table rows, in gathered order
  };
  [[nodiscard]] KernelFeature MakeKernelFeature(
      const tensor::JaggedTensor& jt,
      std::span<const std::uint64_t> row_weights = {}) const;

  /// Assembles the kernels::GroupFeature for `view` (which must have
  /// been built from `original` by MakeKernelFeature on this table).
  /// The result borrows from `view`/`original`/this — keep all three
  /// alive across the kernel call.
  [[nodiscard]] kernels::GroupFeature GroupFeatureFor(
      const KernelFeature& view, const tensor::JaggedTensor& original) const;

 private:
  [[nodiscard]] std::size_t RowIndex(tensor::Id id) const;

  DenseMatrix weights_;  // dense backend; empty when store_ is set
  std::unique_ptr<embstore::TieredRowStore> store_;
  mutable DenseMatrix materialized_;  // weights() surface when tiered
  mutable common::AlignedVector<float> lookup_scratch_;
  OpStats stats_;
  kernels::KernelBackend backend_ = kernels::DefaultBackend();
};

}  // namespace recd::nn
