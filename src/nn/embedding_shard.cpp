#include "nn/embedding_shard.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace recd::nn {

void EmbeddingShardView::AddTable(std::size_t table_id,
                                  EmbeddingTable table) {
  const auto [it, inserted] = tables_.emplace(table_id, std::move(table));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("EmbeddingShardView: duplicate table id " +
                                std::to_string(table_id));
  }
}

bool EmbeddingShardView::Owns(std::size_t table_id) const {
  return tables_.contains(table_id);
}

EmbeddingTable& EmbeddingShardView::Table(std::size_t table_id) {
  const auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    throw std::out_of_range("EmbeddingShardView: table id " +
                            std::to_string(table_id) +
                            " is not in this shard");
  }
  return it->second;
}

const EmbeddingTable& EmbeddingShardView::Table(std::size_t table_id) const {
  const auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    throw std::out_of_range("EmbeddingShardView: table id " +
                            std::to_string(table_id) +
                            " is not in this shard");
  }
  return it->second;
}

std::vector<std::size_t> EmbeddingShardView::table_ids() const {
  std::vector<std::size_t> ids;
  ids.reserve(tables_.size());
  for (const auto& [id, table] : tables_) ids.push_back(id);
  return ids;
}

std::size_t EmbeddingShardView::param_bytes() const {
  std::size_t bytes = 0;
  for (const auto& [id, table] : tables_) bytes += table.param_bytes();
  return bytes;
}

void EmbeddingShardView::UseTieredStore(const embstore::TierConfig& config) {
  for (auto& [id, table] : tables_) table.UseTieredStore(config);
}

embstore::TierStats EmbeddingShardView::TierStatsTotal() const {
  embstore::TierStats total;
  for (const auto& [id, table] : tables_) total += table.tier_stats();
  return total;
}

void EmbeddingShardView::ResetTierStats() {
  for (auto& [id, table] : tables_) table.ResetTierStats();
}

}  // namespace recd::nn
