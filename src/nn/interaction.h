// DLRM feature-interaction layer: pairwise dot products (paper §2.2).
#pragma once

#include <vector>

#include "nn/dense_matrix.h"
#include "nn/op_stats.h"

namespace recd::nn {

/// Computes, per batch row, the concatenation of the first input's row
/// with all pairwise dot products among the inputs' rows:
///   out = [x_0 | <x_i, x_j> for i < j]
/// where x_0 is conventionally the bottom-MLP output and x_1..x_F the
/// pooled embeddings. All inputs must share rows and cols.
class FeatureInteraction {
 public:
  [[nodiscard]] DenseMatrix Forward(
      const std::vector<const DenseMatrix*>& inputs);

  /// Backward: fills `grad_inputs` (same shapes as the forward inputs)
  /// from dL/dout. Requires the most recent Forward's inputs.
  void Backward(const DenseMatrix& grad_out,
                const std::vector<const DenseMatrix*>& inputs,
                std::vector<DenseMatrix>& grad_inputs);

  /// Output width for F inputs of dimension d: d + F*(F-1)/2.
  [[nodiscard]] static std::size_t OutputDim(std::size_t num_inputs,
                                             std::size_t dim);

  [[nodiscard]] const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  OpStats stats_;
};

}  // namespace recd::nn
