#include "nn/dense_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "kernels/kernels.h"

namespace recd::nn {

DenseMatrix DenseMatrix::Xavier(std::size_t rows, std::size_t cols,
                                common::Rng& rng) {
  DenseMatrix m(rows, cols);
  const double scale =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.data_) {
    v = static_cast<float>((rng.UniformReal() * 2.0 - 1.0) * scale);
  }
  return m;
}

void MatmulABt(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix& c) {
  if (a.cols() != b.cols()) {
    throw std::invalid_argument("MatmulABt: inner dimension mismatch");
  }
  c = DenseMatrix(a.rows(), b.rows());
  kernels::MatmulABt(kernels::DefaultBackend(), a.data().data(), a.rows(),
                     a.cols(), b.data().data(), b.rows(), c.data().data());
}

void MatmulAB(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix& c) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("MatmulAB: inner dimension mismatch");
  }
  c = DenseMatrix(a.rows(), b.cols());
  kernels::MatmulAB(kernels::DefaultBackend(), a.data().data(), a.rows(),
                    a.cols(), b.data().data(), b.cols(), c.data().data());
}

DenseMatrix SliceRows(const DenseMatrix& m, std::size_t lo,
                      std::size_t hi) {
  if (lo > hi || hi > m.rows()) {
    throw std::out_of_range("SliceRows: bad row range");
  }
  DenseMatrix out(hi - lo, m.cols());
  const auto src = m.data();
  std::copy(src.begin() + static_cast<std::ptrdiff_t>(lo * m.cols()),
            src.begin() + static_cast<std::ptrdiff_t>(hi * m.cols()),
            out.data().begin());
  return out;
}

float MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("MaxAbsDiff: shape mismatch");
  }
  float max_diff = 0.0f;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(da[i] - db[i]));
  }
  return max_diff;
}

}  // namespace recd::nn
