#include "nn/mlp.h"

#include <stdexcept>
#include <utility>

#include "kernels/kernels.h"

namespace recd::nn {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, bool relu,
               common::Rng& rng)
    : w_(DenseMatrix::Xavier(out_dim, in_dim, rng)),
      b_(out_dim, 0.0f),
      relu_(relu),
      grad_w_(out_dim, in_dim),
      grad_b_(out_dim, 0.0f) {}

DenseMatrix Linear::Forward(const DenseMatrix& x) {
  if (x.cols() != w_.cols()) {
    throw std::invalid_argument("Linear::Forward: input dim mismatch");
  }
  last_input_ = x;
  DenseMatrix y(x.rows(), w_.rows());
  kernels::MatmulABt(backend_, x.data().data(), x.rows(), x.cols(),
                     w_.data().data(), w_.rows(), y.data().data());
  kernels::AddRowBias(backend_, y.data().data(), y.rows(), y.cols(),
                      b_.data());
  last_pre_act_ = y;
  if (relu_) {
    kernels::ReluInPlace(backend_, y.data().data(), y.size());
  }
  stats_.flops += 2ull * x.rows() * x.cols() * w_.rows();
  stats_.bytes_read += (x.byte_size() + w_.byte_size());
  stats_.bytes_written += y.byte_size();
  return y;
}

DenseMatrix Linear::Backward(const DenseMatrix& grad_out) {
  if (grad_out.rows() != last_input_.rows() ||
      grad_out.cols() != w_.rows()) {
    throw std::invalid_argument("Linear::Backward: grad shape mismatch");
  }
  DenseMatrix g = grad_out;
  if (relu_) {
    kernels::ReluMask(backend_, g.data().data(),
                      last_pre_act_.data().data(), g.size());
  }
  // dW += g^T X ; db += colsum g ; dX = g W
  kernels::AccumulateOuter(backend_, g.data().data(), g.rows(), w_.rows(),
                           last_input_.data().data(), w_.cols(),
                           grad_w_.data().data(), grad_b_.data());
  DenseMatrix grad_in(g.rows(), w_.cols());
  kernels::MatmulAB(backend_, g.data().data(), g.rows(), g.cols(),
                    w_.data().data(), w_.cols(), grad_in.data().data());
  stats_.flops += 4ull * g.rows() * g.cols() * w_.cols();
  return grad_in;
}

std::pair<DenseMatrix, std::vector<float>> Linear::TakeGradients() {
  std::pair<DenseMatrix, std::vector<float>> out{std::move(grad_w_),
                                                 std::move(grad_b_)};
  grad_w_ = DenseMatrix(w_.rows(), w_.cols());
  grad_b_.assign(b_.size(), 0.0f);
  return out;
}

void Linear::AccumulateGradients(const DenseMatrix& grad_w,
                                 std::span<const float> grad_b) {
  if (grad_w.rows() != w_.rows() || grad_w.cols() != w_.cols() ||
      grad_b.size() != b_.size()) {
    throw std::invalid_argument(
        "Linear::AccumulateGradients: shape mismatch");
  }
  kernels::AddInPlace(backend_, grad_w_.data().data(),
                      grad_w.data().data(), grad_w_.size());
  kernels::AddInPlace(backend_, grad_b_.data(), grad_b.data(),
                      grad_b_.size());
}

void Linear::LoadParameters(DenseMatrix weights, std::vector<float> bias) {
  if (weights.rows() != w_.rows() || weights.cols() != w_.cols() ||
      bias.size() != b_.size()) {
    throw std::invalid_argument("Linear::LoadParameters: shape mismatch");
  }
  w_ = std::move(weights);
  b_ = std::move(bias);
  grad_w_.Fill(0.0f);
  std::fill(grad_b_.begin(), grad_b_.end(), 0.0f);
}

void Linear::Step(float lr) {
  kernels::SgdUpdate(backend_, w_.data().data(), grad_w_.data().data(),
                     w_.size(), lr);
  kernels::SgdUpdate(backend_, b_.data(), grad_b_.data(), b_.size(), lr);
  grad_w_.Fill(0.0f);
  std::fill(grad_b_.begin(), grad_b_.end(), 0.0f);
}

Mlp::Mlp(const std::vector<std::size_t>& dims, common::Rng& rng) {
  if (dims.size() < 2) {
    throw std::invalid_argument("Mlp: need at least input and output dims");
  }
  layers_.reserve(dims.size() - 1);
  for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool relu = i + 2 < dims.size();
    layers_.emplace_back(dims[i], dims[i + 1], relu, rng);
  }
}

DenseMatrix Mlp::Forward(const DenseMatrix& x) {
  DenseMatrix h = x;
  for (auto& layer : layers_) h = layer.Forward(h);
  return h;
}

DenseMatrix Mlp::Backward(const DenseMatrix& grad_out) {
  DenseMatrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = it->Backward(g);
  }
  return g;
}

void Mlp::Step(float lr) {
  for (auto& layer : layers_) layer.Step(lr);
}

void MlpGradients::Add(const MlpGradients& other) {
  if (other.grad_w.size() != grad_w.size() ||
      other.grad_b.size() != grad_b.size()) {
    throw std::invalid_argument("MlpGradients::Add: layer count mismatch");
  }
  for (std::size_t l = 0; l < grad_w.size(); ++l) {
    auto dst = grad_w[l].data();
    const auto src = other.grad_w[l].data();
    if (src.size() != dst.size() ||
        other.grad_b[l].size() != grad_b[l].size()) {
      throw std::invalid_argument("MlpGradients::Add: shape mismatch");
    }
    kernels::AddInPlace(kernels::DefaultBackend(), dst.data(), src.data(),
                        dst.size());
    kernels::AddInPlace(kernels::DefaultBackend(), grad_b[l].data(),
                        other.grad_b[l].data(), grad_b[l].size());
  }
}

MlpGradients Mlp::TakeGradients() {
  MlpGradients out;
  out.grad_w.reserve(layers_.size());
  out.grad_b.reserve(layers_.size());
  for (auto& layer : layers_) {
    auto [gw, gb] = layer.TakeGradients();
    out.grad_w.push_back(std::move(gw));
    out.grad_b.push_back(std::move(gb));
  }
  return out;
}

MlpGradients Mlp::ZeroGradients() const {
  MlpGradients out;
  out.grad_w.reserve(layers_.size());
  out.grad_b.reserve(layers_.size());
  for (const auto& layer : layers_) {
    out.grad_w.emplace_back(layer.out_dim(), layer.in_dim());
    out.grad_b.emplace_back(layer.out_dim(), 0.0f);
  }
  return out;
}

void Mlp::LoadLayerParameters(std::size_t i, DenseMatrix weights,
                              std::vector<float> bias) {
  if (i >= layers_.size()) {
    throw std::invalid_argument("Mlp::LoadLayerParameters: no such layer");
  }
  layers_[i].LoadParameters(std::move(weights), std::move(bias));
}

void Mlp::AccumulateGradients(const MlpGradients& grads) {
  if (grads.grad_w.size() != layers_.size()) {
    throw std::invalid_argument(
        "Mlp::AccumulateGradients: layer count mismatch");
  }
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].AccumulateGradients(grads.grad_w[l], grads.grad_b[l]);
  }
}

std::size_t Mlp::num_params() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.num_params();
  return n;
}

OpStats Mlp::stats() const {
  OpStats s;
  for (const auto& layer : layers_) s += layer.stats();
  return s;
}

void Mlp::ResetStats() {
  for (auto& layer : layers_) layer.ResetStats();
}

void Mlp::set_backend(kernels::KernelBackend b) {
  for (auto& layer : layers_) layer.set_backend(b);
}

}  // namespace recd::nn
