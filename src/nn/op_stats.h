// Operation counters accumulated by every nn module.
//
// The distributed trainer simulation converts these counters — computed
// from *real* tensor math on real batches — into modeled GPU time
// (docs/ARCHITECTURE.md §1). Keeping them exact is what makes the iteration
// breakdown (Fig 8) a measurement of work, not a guess.
#pragma once

#include <cstddef>
#include <cstdint>

namespace recd::nn {

struct OpStats {
  std::uint64_t flops = 0;          // multiply-adds count as 2
  std::uint64_t bytes_read = 0;     // parameter/activation reads
  std::uint64_t bytes_written = 0;  // activation writes
  std::uint64_t lookups = 0;        // embedding row fetches

  OpStats& operator+=(const OpStats& other) {
    flops += other.flops;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    lookups += other.lookups;
    return *this;
  }
};

}  // namespace recd::nn
