#include "nn/embedding.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "kernels/kernels.h"

namespace recd::nn {

namespace {
kernels::Pool ToKernelPool(PoolingKind pooling) {
  switch (pooling) {
    case PoolingKind::kSum: return kernels::Pool::kSum;
    case PoolingKind::kMean: return kernels::Pool::kMean;
    case PoolingKind::kMax: return kernels::Pool::kMax;
  }
  throw std::invalid_argument("EmbeddingTable: unknown pooling kind");
}
}  // namespace

EmbeddingTable::EmbeddingTable(std::size_t hash_size, std::size_t dim,
                               common::Rng& rng) {
  if (hash_size == 0 || dim == 0) {
    throw std::invalid_argument("EmbeddingTable: zero hash_size or dim");
  }
  weights_ = DenseMatrix::Xavier(hash_size, dim, rng);
}

void EmbeddingTable::UseTieredStore(const embstore::TierConfig& config) {
  if (store_) {
    throw std::logic_error("EmbeddingTable: already tiered");
  }
  store_ = std::make_unique<embstore::TieredRowStore>(weights_, config);
  weights_ = DenseMatrix();
}

embstore::TierStats EmbeddingTable::tier_stats() const {
  return store_ ? store_->stats() : embstore::TierStats{};
}

void EmbeddingTable::ResetTierStats() {
  if (store_) store_->ResetStats();
}

const DenseMatrix& EmbeddingTable::weights() const {
  if (!store_) return weights_;
  materialized_ = store_->Materialize();
  return materialized_;
}

void EmbeddingTable::LoadWeights(DenseMatrix weights) {
  if (weights.rows() != hash_size() || weights.cols() != dim()) {
    throw std::invalid_argument("EmbeddingTable::LoadWeights: shape "
                                "mismatch");
  }
  if (store_) {
    store_->Load(weights);
    return;
  }
  weights_ = std::move(weights);
}

std::size_t EmbeddingTable::RowIndex(tensor::Id id) const {
  const auto u = static_cast<std::uint64_t>(id);
  return static_cast<std::size_t>(u % hash_size());
}

EmbeddingTable::KernelFeature EmbeddingTable::MakeKernelFeature(
    const tensor::JaggedTensor& jt,
    std::span<const std::uint64_t> row_weights) const {
  KernelFeature view;
  if (!store_) return view;  // dense pass-through
  view.store_backed = true;

  // Map each referenced table row to a gathered position (first
  // appearance order), rewriting ids in place; accumulate the per-row
  // admission weight as the sum of its occurrences' row weights.
  std::vector<tensor::Id> remapped_values(jt.total_values());
  std::vector<std::uint64_t> weights;
  std::unordered_map<std::size_t, std::size_t> position;
  std::size_t v = 0;
  for (std::size_t r = 0; r < jt.num_rows(); ++r) {
    const std::uint64_t w = row_weights.empty() ? 1 : row_weights[r];
    for (const auto id : jt.row(r)) {
      const std::size_t table_row = RowIndex(id);
      const auto [it, inserted] =
          position.try_emplace(table_row, view.row_ids.size());
      if (inserted) {
        view.row_ids.push_back(table_row);
        weights.push_back(0);
      }
      weights[it->second] += w;
      remapped_values[v++] = static_cast<tensor::Id>(it->second);
    }
  }

  view.gathered = DenseMatrix(view.row_ids.size(), dim());
  if (!view.row_ids.empty()) {
    store_->Gather(view.row_ids, weights, view.gathered.data().data());
  }
  view.remapped = tensor::JaggedTensor(
      std::move(remapped_values),
      std::vector<tensor::Offset>(jt.offsets().begin(), jt.offsets().end()));
  return view;
}

kernels::GroupFeature EmbeddingTable::GroupFeatureFor(
    const KernelFeature& view, const tensor::JaggedTensor& original) const {
  if (!view.store_backed) {
    return {&original, weights_.data().data(), weights_.rows()};
  }
  return {&view.remapped, view.gathered.data().data(),
          std::max<std::size_t>(view.gathered.rows(), 1)};
}

std::span<const float> EmbeddingTable::Lookup(tensor::Id id) const {
  if (!store_) return weights_.row(RowIndex(id));
  lookup_scratch_.resize(dim());
  const std::size_t row = RowIndex(id);
  store_->Gather(std::span<const std::size_t>(&row, 1), {},
                 lookup_scratch_.data());
  return {lookup_scratch_.data(), lookup_scratch_.size()};
}

DenseMatrix EmbeddingTable::PooledForward(const tensor::JaggedTensor& batch,
                                          PoolingKind pooling) {
  const std::size_t d = dim();
  DenseMatrix out(batch.num_rows(), d);
  if (!store_) {
    kernels::PooledLookup(backend_, batch, weights_.data().data(),
                          weights_.rows(), d, ToKernelPool(pooling),
                          out.data().data());
  } else {
    // Gather the referenced rows once, pool on the gathered scratch:
    // the remap preserves id order and row bits, so the kernel runs
    // the identical float-op sequence (bitwise-equal output).
    const auto view = MakeKernelFeature(batch);
    kernels::PooledLookup(backend_, view.remapped,
                          view.gathered.data().data(),
                          std::max<std::size_t>(view.gathered.rows(), 1), d,
                          ToKernelPool(pooling), out.data().data());
  }
  stats_.lookups += batch.total_values();
  stats_.flops += 2ull * batch.total_values() * d;
  stats_.bytes_read += batch.total_values() * d * sizeof(float);
  stats_.bytes_written += out.byte_size();
  return out;
}

DenseMatrix EmbeddingTable::FusedPooledForward(
    const tensor::JaggedTensor& unique,
    std::span<const std::int64_t> inverse) {
  const std::size_t d = dim();
  DenseMatrix out(inverse.size(), d);
  if (!store_) {
    const kernels::GroupFeature gf[] = {
        {&unique, weights_.data().data(), weights_.rows()}};
    kernels::FusedPooledLookup(backend_, gf, inverse, d, out.data().data());
  } else {
    // Inverse multiplicities are the admission weights: a unique row
    // referenced by many batch slots charges its table rows with the
    // full dedup skew.
    std::vector<std::uint64_t> mult(unique.num_rows(), 0);
    for (const auto i : inverse) mult[static_cast<std::size_t>(i)] += 1;
    const auto view = MakeKernelFeature(unique, mult);
    const kernels::GroupFeature gf[] = {GroupFeatureFor(view, unique)};
    kernels::FusedPooledLookup(backend_, gf, inverse, d, out.data().data());
  }
  // Same accounting as PooledForward on the unique rows (the gather
  // writes no new float math and the old two-step path counted only the
  // unique-row pooling).
  stats_.lookups += unique.total_values();
  stats_.flops += 2ull * unique.total_values() * d;
  stats_.bytes_read += unique.total_values() * d * sizeof(float);
  stats_.bytes_written += unique.num_rows() * d * sizeof(float);
  return out;
}

DenseMatrix EmbeddingTable::SequenceForward(
    const tensor::JaggedTensor& batch) {
  const std::size_t d = dim();
  DenseMatrix out(batch.total_values(), d);
  std::size_t pos = 0;
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    for (const auto id : batch.row(r)) {
      const auto w = Lookup(id);
      std::copy(w.begin(), w.end(), out.row(pos).begin());
      ++pos;
    }
  }
  stats_.lookups += batch.total_values();
  stats_.bytes_read += batch.total_values() * d * sizeof(float);
  stats_.bytes_written += out.byte_size();
  return out;
}

void EmbeddingTable::ApplyPooledGradient(const tensor::JaggedTensor& batch,
                                         const DenseMatrix& grad,
                                         PoolingKind pooling, float lr) {
  if (grad.rows() != batch.num_rows() || grad.cols() != dim()) {
    throw std::invalid_argument(
        "EmbeddingTable::ApplyPooledGradient: shape mismatch");
  }
  if (pooling == PoolingKind::kMax) {
    throw std::invalid_argument(
        "EmbeddingTable: max pooling backward unsupported");
  }
  if (!store_) {
    kernels::ScatterSgdUpdate(backend_, batch, grad.data().data(),
                              ToKernelPool(pooling), lr,
                              weights_.data().data(), weights_.rows(),
                              dim());
    return;
  }
  // Gather → identical scatter sequence on the scratch → exact
  // write-back. Two ids sharing a table row share one gathered row, so
  // their updates chain in batch order exactly as on the dense backend.
  auto view = MakeKernelFeature(batch);
  if (view.row_ids.empty()) return;
  kernels::ScatterSgdUpdate(backend_, view.remapped, grad.data().data(),
                            ToKernelPool(pooling), lr,
                            view.gathered.data().data(),
                            view.gathered.rows(), dim());
  store_->Update(view.row_ids, view.gathered.data().data());
}

}  // namespace recd::nn
