#include "nn/embedding.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "kernels/kernels.h"

namespace recd::nn {

namespace {
kernels::Pool ToKernelPool(PoolingKind pooling) {
  switch (pooling) {
    case PoolingKind::kSum: return kernels::Pool::kSum;
    case PoolingKind::kMean: return kernels::Pool::kMean;
    case PoolingKind::kMax: return kernels::Pool::kMax;
  }
  throw std::invalid_argument("EmbeddingTable: unknown pooling kind");
}
}  // namespace

EmbeddingTable::EmbeddingTable(std::size_t hash_size, std::size_t dim,
                               common::Rng& rng) {
  if (hash_size == 0 || dim == 0) {
    throw std::invalid_argument("EmbeddingTable: zero hash_size or dim");
  }
  weights_ = DenseMatrix::Xavier(hash_size, dim, rng);
}

void EmbeddingTable::LoadWeights(DenseMatrix weights) {
  if (weights.rows() != weights_.rows() ||
      weights.cols() != weights_.cols()) {
    throw std::invalid_argument("EmbeddingTable::LoadWeights: shape "
                                "mismatch");
  }
  weights_ = std::move(weights);
}

std::size_t EmbeddingTable::RowIndex(tensor::Id id) const {
  const auto u = static_cast<std::uint64_t>(id);
  return static_cast<std::size_t>(u % weights_.rows());
}

std::span<const float> EmbeddingTable::Lookup(tensor::Id id) const {
  return weights_.row(RowIndex(id));
}

DenseMatrix EmbeddingTable::PooledForward(const tensor::JaggedTensor& batch,
                                          PoolingKind pooling) {
  const std::size_t d = dim();
  DenseMatrix out(batch.num_rows(), d);
  kernels::PooledLookup(backend_, batch, weights_.data().data(),
                        weights_.rows(), d, ToKernelPool(pooling),
                        out.data().data());
  stats_.lookups += batch.total_values();
  stats_.flops += 2ull * batch.total_values() * d;
  stats_.bytes_read += batch.total_values() * d * sizeof(float);
  stats_.bytes_written += out.byte_size();
  return out;
}

DenseMatrix EmbeddingTable::FusedPooledForward(
    const tensor::JaggedTensor& unique,
    std::span<const std::int64_t> inverse) {
  const std::size_t d = dim();
  DenseMatrix out(inverse.size(), d);
  const kernels::GroupFeature gf[] = {
      {&unique, weights_.data().data(), weights_.rows()}};
  kernels::FusedPooledLookup(backend_, gf, inverse, d, out.data().data());
  // Same accounting as PooledForward on the unique rows (the gather
  // writes no new float math and the old two-step path counted only the
  // unique-row pooling).
  stats_.lookups += unique.total_values();
  stats_.flops += 2ull * unique.total_values() * d;
  stats_.bytes_read += unique.total_values() * d * sizeof(float);
  stats_.bytes_written += unique.num_rows() * d * sizeof(float);
  return out;
}

DenseMatrix EmbeddingTable::SequenceForward(
    const tensor::JaggedTensor& batch) {
  const std::size_t d = dim();
  DenseMatrix out(batch.total_values(), d);
  std::size_t pos = 0;
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    for (const auto id : batch.row(r)) {
      const auto w = Lookup(id);
      std::copy(w.begin(), w.end(), out.row(pos).begin());
      ++pos;
    }
  }
  stats_.lookups += batch.total_values();
  stats_.bytes_read += batch.total_values() * d * sizeof(float);
  stats_.bytes_written += out.byte_size();
  return out;
}

void EmbeddingTable::ApplyPooledGradient(const tensor::JaggedTensor& batch,
                                         const DenseMatrix& grad,
                                         PoolingKind pooling, float lr) {
  if (grad.rows() != batch.num_rows() || grad.cols() != dim()) {
    throw std::invalid_argument(
        "EmbeddingTable::ApplyPooledGradient: shape mismatch");
  }
  if (pooling == PoolingKind::kMax) {
    throw std::invalid_argument(
        "EmbeddingTable: max pooling backward unsupported");
  }
  kernels::ScatterSgdUpdate(backend_, batch, grad.data().data(),
                            ToKernelPool(pooling), lr,
                            weights_.data().data(), weights_.rows(), dim());
}

}  // namespace recd::nn
