#include "nn/embedding.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace recd::nn {

EmbeddingTable::EmbeddingTable(std::size_t hash_size, std::size_t dim,
                               common::Rng& rng) {
  if (hash_size == 0 || dim == 0) {
    throw std::invalid_argument("EmbeddingTable: zero hash_size or dim");
  }
  weights_ = DenseMatrix::Xavier(hash_size, dim, rng);
}

void EmbeddingTable::LoadWeights(DenseMatrix weights) {
  if (weights.rows() != weights_.rows() ||
      weights.cols() != weights_.cols()) {
    throw std::invalid_argument("EmbeddingTable::LoadWeights: shape "
                                "mismatch");
  }
  weights_ = std::move(weights);
}

std::size_t EmbeddingTable::RowIndex(tensor::Id id) const {
  const auto u = static_cast<std::uint64_t>(id);
  return static_cast<std::size_t>(u % weights_.rows());
}

std::span<const float> EmbeddingTable::Lookup(tensor::Id id) const {
  return weights_.row(RowIndex(id));
}

DenseMatrix EmbeddingTable::PooledForward(const tensor::JaggedTensor& batch,
                                          PoolingKind pooling) {
  const std::size_t d = dim();
  DenseMatrix out(batch.num_rows(), d);
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    const auto ids = batch.row(r);
    auto orow = out.row(r);
    if (ids.empty()) continue;
    switch (pooling) {
      case PoolingKind::kSum:
      case PoolingKind::kMean: {
        for (const auto id : ids) {
          const auto w = Lookup(id);
          for (std::size_t c = 0; c < d; ++c) orow[c] += w[c];
        }
        if (pooling == PoolingKind::kMean) {
          const float inv = 1.0f / static_cast<float>(ids.size());
          for (std::size_t c = 0; c < d; ++c) orow[c] *= inv;
        }
        break;
      }
      case PoolingKind::kMax: {
        std::copy(Lookup(ids[0]).begin(), Lookup(ids[0]).end(),
                  orow.begin());
        for (std::size_t i = 1; i < ids.size(); ++i) {
          const auto w = Lookup(ids[i]);
          for (std::size_t c = 0; c < d; ++c) {
            orow[c] = std::max(orow[c], w[c]);
          }
        }
        break;
      }
    }
  }
  stats_.lookups += batch.total_values();
  stats_.flops += 2ull * batch.total_values() * d;
  stats_.bytes_read += batch.total_values() * d * sizeof(float);
  stats_.bytes_written += out.byte_size();
  return out;
}

DenseMatrix EmbeddingTable::SequenceForward(
    const tensor::JaggedTensor& batch) {
  const std::size_t d = dim();
  DenseMatrix out(batch.total_values(), d);
  std::size_t pos = 0;
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    for (const auto id : batch.row(r)) {
      const auto w = Lookup(id);
      std::copy(w.begin(), w.end(), out.row(pos).begin());
      ++pos;
    }
  }
  stats_.lookups += batch.total_values();
  stats_.bytes_read += batch.total_values() * d * sizeof(float);
  stats_.bytes_written += out.byte_size();
  return out;
}

void EmbeddingTable::ApplyPooledGradient(const tensor::JaggedTensor& batch,
                                         const DenseMatrix& grad,
                                         PoolingKind pooling, float lr) {
  if (grad.rows() != batch.num_rows() || grad.cols() != dim()) {
    throw std::invalid_argument(
        "EmbeddingTable::ApplyPooledGradient: shape mismatch");
  }
  if (pooling == PoolingKind::kMax) {
    throw std::invalid_argument(
        "EmbeddingTable: max pooling backward unsupported");
  }
  for (std::size_t r = 0; r < batch.num_rows(); ++r) {
    const auto ids = batch.row(r);
    if (ids.empty()) continue;
    const auto g = grad.row(r);
    const float scale =
        pooling == PoolingKind::kMean
            ? lr / static_cast<float>(ids.size())
            : lr;
    for (const auto id : ids) {
      auto w = weights_.row(RowIndex(id));
      for (std::size_t c = 0; c < w.size(); ++c) w[c] -= scale * g[c];
    }
  }
}

}  // namespace recd::nn
