#include "nn/interaction.h"

#include <stdexcept>

namespace recd::nn {

std::size_t FeatureInteraction::OutputDim(std::size_t num_inputs,
                                          std::size_t dim) {
  return dim + num_inputs * (num_inputs - 1) / 2;
}

DenseMatrix FeatureInteraction::Forward(
    const std::vector<const DenseMatrix*>& inputs) {
  if (inputs.empty()) {
    throw std::invalid_argument("FeatureInteraction: no inputs");
  }
  const std::size_t rows = inputs[0]->rows();
  const std::size_t d = inputs[0]->cols();
  for (const auto* m : inputs) {
    if (m->rows() != rows || m->cols() != d) {
      throw std::invalid_argument("FeatureInteraction: shape mismatch");
    }
  }
  const std::size_t f = inputs.size();
  DenseMatrix out(rows, OutputDim(f, d));
  for (std::size_t r = 0; r < rows; ++r) {
    auto orow = out.row(r);
    const auto base = inputs[0]->row(r);
    std::copy(base.begin(), base.end(), orow.begin());
    std::size_t k = d;
    for (std::size_t i = 0; i < f; ++i) {
      const auto xi = inputs[i]->row(r);
      for (std::size_t j = i + 1; j < f; ++j) {
        const auto xj = inputs[j]->row(r);
        float dot = 0.0f;
        for (std::size_t c = 0; c < d; ++c) dot += xi[c] * xj[c];
        orow[k++] = dot;
      }
    }
  }
  stats_.flops += 2ull * rows * d * (f * (f - 1) / 2);
  stats_.bytes_written += out.byte_size();
  return out;
}

void FeatureInteraction::Backward(
    const DenseMatrix& grad_out,
    const std::vector<const DenseMatrix*>& inputs,
    std::vector<DenseMatrix>& grad_inputs) {
  const std::size_t rows = inputs[0]->rows();
  const std::size_t d = inputs[0]->cols();
  const std::size_t f = inputs.size();
  if (grad_out.rows() != rows || grad_out.cols() != OutputDim(f, d)) {
    throw std::invalid_argument(
        "FeatureInteraction::Backward: grad shape mismatch");
  }
  grad_inputs.assign(f, DenseMatrix(rows, d));
  for (std::size_t r = 0; r < rows; ++r) {
    const auto g = grad_out.row(r);
    // Pass-through of the copied x_0 block.
    auto g0 = grad_inputs[0].row(r);
    for (std::size_t c = 0; c < d; ++c) g0[c] += g[c];
    std::size_t k = d;
    for (std::size_t i = 0; i < f; ++i) {
      const auto xi = inputs[i]->row(r);
      auto gi = grad_inputs[i].row(r);
      for (std::size_t j = i + 1; j < f; ++j) {
        const auto xj = inputs[j]->row(r);
        auto gj = grad_inputs[j].row(r);
        const float gd = g[k++];
        if (gd == 0.0f) continue;
        for (std::size_t c = 0; c < d; ++c) {
          gi[c] += gd * xj[c];
          gj[c] += gd * xi[c];
        }
      }
    }
  }
  stats_.flops += 4ull * rows * d * (f * (f - 1) / 2);
}

}  // namespace recd::nn
