#include "stream/windowed_etl.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace recd::stream {

WindowedEtl::WindowedEtl(WindowedEtlOptions options,
                         storage::BlobStore& store, std::string table_name,
                         storage::StorageSchema schema,
                         storage::WriterOptions writer_options,
                         common::ThreadPool* pool, Sink sink)
    : options_(std::move(options)),
      store_(&store),
      writer_options_(writer_options),
      pool_(pool),
      sink_(std::move(sink)) {
  if (options_.window_ticks < 1) {
    throw std::invalid_argument("WindowedEtl: window_ticks must be >= 1");
  }
  if (options_.allowed_lateness < 0) {
    throw std::invalid_argument(
        "WindowedEtl: allowed_lateness must be >= 0");
  }
  table_.name = std::move(table_name);
  table_.schema = std::move(schema);
}

void WindowedEtl::Join(OpenWindow& window,
                       const datagen::FeatureLog& feature,
                       const datagen::EventLog& event) {
  window.samples.push_back(etl::JoinPair(feature, event));
}

bool WindowedEtl::Offer(const StreamMessage& message) {
  last_arrival_ = std::max(last_arrival_, message.arrival_tick);
  watermark_ = last_arrival_ - options_.allowed_lateness;

  // Close every window whose on-time messages must all have arrived:
  // features land by end + allowed_lateness, their events another
  // max_event_delay later. Closing happens in index order.
  while ((next_unclosed_ + 1) * options_.window_ticks +
             options_.max_event_delay <=
         watermark_) {
    if (!CloseWindow(next_unclosed_, message.arrival_tick)) return false;
    ++next_unclosed_;
  }

  if (message.kind == StreamMessage::Kind::kFeature) {
    const auto& feature = message.feature;
    const std::int64_t w = WindowOf(feature.timestamp);
    if (w < next_unclosed_) {
      late_features_.Increment();
      return true;
    }
    auto& window = open_[w];
    open_windows_gauge_.Set(static_cast<std::int64_t>(open_.size()));
    const auto event_it = pending_events_.find(feature.request_id);
    if (event_it != pending_events_.end()) {
      Join(window, feature, event_it->second);
      pending_events_.erase(event_it);
    } else {
      window.pending.emplace(feature.request_id, feature);
      pending_feature_window_.emplace(feature.request_id, w);
    }
    return true;
  }

  const auto& event = message.event;
  const auto feature_it = pending_feature_window_.find(event.request_id);
  if (feature_it != pending_feature_window_.end()) {
    auto& window = open_[feature_it->second];
    const auto pending_it = window.pending.find(event.request_id);
    Join(window, pending_it->second, event);
    window.pending.erase(pending_it);
    pending_feature_window_.erase(feature_it);
  } else {
    // Feature not seen (yet): either it is still in flight — reordering
    // can deliver the outcome first — or it was late-dropped. Buffer;
    // the close-time GC reaps events whose feature window has passed.
    pending_events_.emplace(event.request_id, event);
  }
  return true;
}

bool WindowedEtl::Finish(std::int64_t final_tick) {
  while (!open_.empty()) {
    const std::int64_t k = open_.begin()->first;
    if (!CloseWindow(k, final_tick)) return false;
    next_unclosed_ = std::max(next_unclosed_, k + 1);
  }
  late_events_.Add(static_cast<std::int64_t>(pending_events_.size()));
  pending_events_.clear();
  return true;
}

bool WindowedEtl::CloseWindow(std::int64_t index, std::int64_t land_tick) {
  RECD_TRACE_SCOPE_ARG("stream/close_window", "window", index);
  const std::int64_t end = (index + 1) * options_.window_ticks;

  // GC outcome events that can no longer join: their feature (whose
  // timestamp precedes the event's) belonged to this or an earlier
  // window, all closed once this one is.
  for (auto it = pending_events_.begin(); it != pending_events_.end();) {
    if (it->second.timestamp < end) {
      late_events_.Increment();
      it = pending_events_.erase(it);
    } else {
      ++it;
    }
  }

  const auto open_it = open_.find(index);
  if (open_it == open_.end()) return true;
  OpenWindow window = std::move(open_it->second);
  open_.erase(open_it);
  open_windows_gauge_.Set(static_cast<std::int64_t>(open_.size()));

  // Open joins carry over only until the close: on-time events have
  // arrived by now, so whatever is still pending lost its outcome
  // (mirrors batch JoinLogs dropping unmatched logs).
  unjoined_features_.Add(static_cast<std::int64_t>(window.pending.size()));
  for (const auto& [rid, feature] : window.pending) {
    pending_feature_window_.erase(rid);
  }
  if (window.samples.empty()) return true;

  // Canonical event-time order: arrival interleaving (and event-first
  // joins) must not leak into the landed bytes. Timestamps are unique
  // per impression; request_id breaks hypothetical ties.
  auto samples = std::move(window.samples);
  std::sort(samples.begin(), samples.end(),
            [](const datagen::Sample& a, const datagen::Sample& b) {
              return a.timestamp != b.timestamp
                         ? a.timestamp < b.timestamp
                         : a.request_id < b.request_id;
            });
  if (options_.downsample != etl::DownsampleMode::kNone) {
    samples = etl::Downsample(samples, options_.downsample,
                              options_.downsample_keep_rate,
                              options_.downsample_seed, pool_);
  }
  if (samples.empty()) return true;

  WindowStats stats;
  stats.index = index;
  stats.start_tick = index * options_.window_ticks;
  stats.end_tick = end;
  stats.land_tick = land_tick;
  stats.samples = samples.size();
  {
    std::unordered_set<std::int64_t> sessions;
    sessions.reserve(samples.size());
    for (const auto& s : samples) {
      sessions.insert(s.session_id);
      global_sessions_.insert(s.session_id);
      freshness_lag_sum_ += static_cast<double>(land_tick - s.timestamp);
    }
    stats.sessions = sessions.size();
  }
  total_samples_.Add(static_cast<std::int64_t>(samples.size()));
  window_samples_hist_.Observe(static_cast<std::int64_t>(samples.size()));
  AccumulateDedupStats(samples, stats);

  if (options_.cluster_by_session) etl::ClusterBySession(samples, pool_);
  auto partitions = etl::PartitionByCount(std::move(samples),
                                          options_.samples_per_partition);
  const std::size_t first_partition = table_.partitions.size();
  const auto appended = storage::AppendPartitions(
      *store_, table_, partitions, writer_options_, pool_);
  stats.stored_bytes = appended.stored_bytes;
  stored_bytes_.Add(static_cast<std::int64_t>(appended.stored_bytes));
  logical_bytes_.Add(static_cast<std::int64_t>(appended.logical_bytes));
  windows_landed_.Increment();

  LandedWindow landed;
  landed.window_index = index;
  landed.land_tick = land_tick;
  for (std::size_t p = first_partition; p < table_.partitions.size(); ++p) {
    for (const auto& file : table_.partitions[p].files) {
      landed.files.push_back(file);
    }
  }
  windows_.push_back(stats);
  return sink_ ? sink_(std::move(landed)) : true;
}

void WindowedEtl::AccumulateDedupStats(
    const std::vector<datagen::Sample>& samples, WindowStats& stats) const {
  // What a whole-window batch could deduplicate: for each IKJT group,
  // identical group contents collapse to one stored copy. Row identity
  // via a chained 64-bit hash (collisions are ~n^2/2^64, negligible at
  // window scale and only perturbing a statistic, never data).
  for (const auto& group : options_.dedup_groups) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(samples.size());
    for (const auto& s : samples) {
      std::uint64_t h = 0x9e3779b97f4a7c15ULL;
      std::size_t len = 0;
      for (const std::size_t f : group) {
        const auto& row = s.sparse.at(f);
        h = common::Mix64(h ^ (static_cast<std::uint64_t>(f) << 32 ^
                               static_cast<std::uint64_t>(row.size())));
        for (const auto id : row) {
          h = common::Mix64(h ^ static_cast<std::uint64_t>(id));
        }
        len += row.size();
      }
      stats.dedup_values_before += len;
      if (seen.insert(h).second) stats.dedup_values_after += len;
    }
  }
}

}  // namespace recd::stream
