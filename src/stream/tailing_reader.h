// TailingReader: the streaming reader tier — discovers freshly landed
// partitions and feeds the trainer while later windows are still being
// written.
//
// The batch reader::ReaderPool opens a finished table up front; a
// production reader fleet instead tails the table as the periodic ETL
// lands partition after partition (Zhao et al., "Understanding Data
// Storage and Ingestion for Large-Scale Deep Recommendation Model
// Training"). TailingReader runs the same Fig-5 stages over each
// arriving window: Fill (open the new files, fetch + decrypt +
// decompress + decode their stripes — pool-parallel with ordered
// reassembly), then batch cutting, Convert, and Process through the
// shared reader::BatchPipeline.
//
// Batch cutting is continuous across windows: leftover rows from one
// window wait for the next (exactly as the batch reader carries rows
// across partition boundaries), and only end-of-stream flushes a final
// partial batch. Together with the analytic per-stripe byte accounting
// this makes the one-whole-window stream deliver the byte-identical
// batch stream — and identical ReaderIoStats — of the batch reader
// (docs/ARCHITECTURE.md §8).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <vector>

#include "common/stopwatch.h"
#include "datagen/sample.h"
#include "reader/batch.h"
#include "reader/batch_pipeline.h"
#include "reader/dataloader.h"
#include "reader/reader.h"
#include "storage/blob_store.h"
#include "storage/column_file.h"
#include "stream/windowed_etl.h"

namespace recd::common {
class ThreadPool;
}  // namespace recd::common

namespace recd::stream {

class TailingReader {
 public:
  /// The sink receives every preprocessed batch, in scan order, on the
  /// thread calling Offer/Finish (typically it pushes into the bounded
  /// prefetch channel ahead of the trainer); returning false aborts the
  /// stage. Throws std::out_of_range if the config names a feature
  /// missing from the schema, std::invalid_argument on batch_size 0.
  using Sink = std::function<bool(reader::PreprocessedBatch)>;

  TailingReader(storage::BlobStore& store, storage::StorageSchema schema,
                reader::DataLoaderConfig config,
                reader::ReaderOptions options, common::ThreadPool* pool,
                Sink sink);

  // Not copyable or movable: pipeline_ points into this object's own
  // schema_/config_ members.
  TailingReader(const TailingReader&) = delete;
  TailingReader& operator=(const TailingReader&) = delete;

  /// Reads the window's files in scan order and emits every full batch.
  /// Returns false once the sink rejected a batch (shutdown).
  bool Offer(const LandedWindow& window);

  /// End of stream: emits the final partial batch, if any.
  bool Finish();

  /// Aggregated stage times; wall_s spans construction → Finish.
  [[nodiscard]] const reader::StageTimes& times() const { return times_; }
  [[nodiscard]] const reader::ReaderIoStats& io() const { return io_; }

 private:
  bool EmitBatch(std::size_t take);

  storage::BlobStore* store_;
  storage::StorageSchema schema_;
  reader::DataLoaderConfig config_;
  reader::ReaderOptions options_;
  storage::ReadProjection projection_;
  reader::BatchPipeline pipeline_;
  common::ThreadPool* pool_;
  Sink sink_;

  std::deque<datagen::Sample> buffer_;  // rows awaiting batch cutting
  reader::StageTimes times_;
  reader::ReaderIoStats io_;
  common::Stopwatch wall_;
  bool finished_ = false;
};

}  // namespace recd::stream
