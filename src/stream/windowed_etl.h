// WindowedEtl: the streaming ETL stage — event-time windows closed by
// watermarks, each window joined + clustered + downsampled and landed
// as incremental partitions of a live table.
//
// The batch ETL (src/etl/) sees the whole dataset at once; the paper's
// production ETL runs as periodic jobs over arriving traffic (§2.1),
// which changes what O2 clustering can capture: a session's samples can
// only be clustered together if they land in the *same* window, so
// sessions straddling a window boundary lose dedup. That window-size ↔
// captured-dedupe trade-off is exactly what this stage measures
// (per-window captured-dedupe stats; bench_stream_window_sweep sweeps
// it).
//
// Semantics:
//  - Window assignment is by event time: a sample belongs to window
//    k = feature_timestamp / window_ticks. Sessions are NOT carried
//    across windows — each window clusters only its own samples (the
//    open-session carry-over policy is "cut at the boundary", which is
//    what the production CLUSTER BY inside an hourly partition does).
//  - A window closes when the arrival watermark (latest arrival tick
//    minus allowed_lateness) passes its end plus max_event_delay, so
//    every on-time feature AND its outcome event have arrived. Windows
//    close in index order.
//  - Open joins carry over only until their window closes: features
//    whose event hasn't arrived by then are dropped (counted), exactly
//    like the batch JoinLogs drops unmatched logs. Messages for
//    already-closed windows are late (counted, dropped) — impossible
//    when allowed_lateness >= the source's real reorder bound, expected
//    when an operator trades loss for freshness.
//  - On close, the window's samples are put in canonical event-time
//    order, downsampled (§7 policies), clustered (O2), split into
//    samples_per_partition partitions, and appended to the live table
//    (storage::AppendPartitions); the landed window is announced to the
//    sink (the tailing reader).
//
// Everything above is a pure function of the observed message sequence
// — no wall-clock dependence — so results are identical for any thread
// count; `pool` only parallelizes the per-window sort/filter/encode
// work, which reassembles in deterministic order
// (docs/ARCHITECTURE.md §7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datagen/generator.h"
#include "etl/etl.h"
#include "obs/metrics.h"
#include "storage/blob_store.h"
#include "storage/table.h"
#include "stream/message.h"

namespace recd::common {
class ThreadPool;
}  // namespace recd::common

namespace recd::stream {

struct WindowedEtlOptions {
  /// Event-time span of one window. A window >= the whole dataset's
  /// span reproduces the batch ETL exactly.
  std::int64_t window_ticks = 4096;
  /// Watermark slack: a message with payload timestamp t is assumed to
  /// have arrived once the newest arrival tick exceeds
  /// t + allowed_lateness. Must be >= the source's reorder bound for
  /// zero late drops.
  std::int64_t allowed_lateness = 0;
  /// Extra close horizon for outcome events (how long after an
  /// impression its event can be logged).
  std::int64_t max_event_delay =
      datagen::TrafficGenerator::kMaxEventDelayTicks;
  bool cluster_by_session = true;
  etl::DownsampleMode downsample = etl::DownsampleMode::kNone;
  double downsample_keep_rate = 1.0;
  std::uint64_t downsample_seed = 0;
  std::size_t samples_per_partition = 10'000;
  /// Feature-index groups (into the storage schema) sharing one IKJT
  /// inverse_lookup; the per-window captured-dedupe stats count value
  /// duplication over these groups.
  std::vector<std::vector<std::size_t>> dedup_groups;
};

/// Per-window measurements, recorded at close time.
struct WindowStats {
  std::int64_t index = 0;
  std::int64_t start_tick = 0;  // inclusive
  std::int64_t end_tick = 0;    // exclusive
  std::int64_t land_tick = 0;   // arrival tick that closed the window
  std::size_t samples = 0;      // landed rows (post-downsample)
  std::size_t sessions = 0;     // distinct sessions within the window
  std::size_t dedup_values_before = 0;
  std::size_t dedup_values_after = 0;
  std::size_t stored_bytes = 0;

  [[nodiscard]] double samples_per_session() const {
    return sessions == 0
               ? 0.0
               : static_cast<double>(samples) / static_cast<double>(sessions);
  }
  /// Value-weighted dedupe factor the window's clustering makes
  /// capturable by a whole-window batch (1.0 when no dedup groups).
  [[nodiscard]] double captured_dedupe_factor() const {
    return dedup_values_after == 0
               ? 1.0
               : static_cast<double>(dedup_values_before) /
                     static_cast<double>(dedup_values_after);
  }
};

/// A closed window's landed partitions — what the tailing reader tails.
struct LandedWindow {
  std::int64_t window_index = 0;
  std::int64_t land_tick = 0;
  std::vector<std::string> files;  // scan order
};

class WindowedEtl {
 public:
  /// The sink receives every landed window, in window order, on the
  /// thread calling Offer/Finish; returning false aborts the stage
  /// (downstream shutdown).
  using Sink = std::function<bool(LandedWindow)>;

  WindowedEtl(WindowedEtlOptions options, storage::BlobStore& store,
              std::string table_name, storage::StorageSchema schema,
              storage::WriterOptions writer_options,
              common::ThreadPool* pool, Sink sink);

  /// Ingests one message; may close (and land) windows the advancing
  /// watermark passed. Returns false once the sink rejected a window.
  bool Offer(const StreamMessage& message);

  /// End of stream: closes every remaining window, in index order, at
  /// the final watermark. Returns false on sink rejection.
  bool Finish(std::int64_t final_tick);

  // ---- Results (stable once Finish returned). ------------------------
  [[nodiscard]] const storage::Table& table() const { return table_; }
  [[nodiscard]] const std::vector<WindowStats>& windows() const {
    return windows_;
  }
  // The scalar counters below are projections of the stage's metrics()
  // registry (`stream.*` series) — §14 single source of truth.
  [[nodiscard]] std::size_t late_features() const {
    return static_cast<std::size_t>(late_features_.Value());
  }
  [[nodiscard]] std::size_t late_events() const {
    return static_cast<std::size_t>(late_events_.Value());
  }
  [[nodiscard]] std::size_t unjoined_features() const {
    return static_cast<std::size_t>(unjoined_features_.Value());
  }
  [[nodiscard]] std::size_t total_samples() const {
    return static_cast<std::size_t>(total_samples_.Value());
  }
  [[nodiscard]] std::size_t distinct_sessions() const {
    return global_sessions_.size();
  }
  [[nodiscard]] std::size_t stored_bytes() const {
    return static_cast<std::size_t>(stored_bytes_.Value());
  }
  [[nodiscard]] std::size_t logical_bytes() const {
    return static_cast<std::size_t>(logical_bytes_.Value());
  }
  /// Sum over landed samples of (land_tick - event time): the freshness
  /// lag numerator (mean = / total_samples()).
  [[nodiscard]] double freshness_lag_sum() const {
    return freshness_lag_sum_;
  }

  /// The stage's metric registry: `stream.*` counters plus the
  /// per-window landed-sample histogram and open-window gauge.
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

 private:
  struct OpenWindow {
    std::vector<datagen::Sample> samples;
    // Features waiting for their outcome event, keyed by request id.
    std::unordered_map<std::int64_t, datagen::FeatureLog> pending;
  };

  [[nodiscard]] std::int64_t WindowOf(std::int64_t timestamp) const {
    return timestamp / options_.window_ticks;
  }
  void Join(OpenWindow& window, const datagen::FeatureLog& feature,
            const datagen::EventLog& event);
  /// Closes window `index` (no-op if it holds nothing) and GCs pending
  /// events that can no longer join. Returns false on sink rejection.
  bool CloseWindow(std::int64_t index, std::int64_t land_tick);
  void AccumulateDedupStats(const std::vector<datagen::Sample>& samples,
                            WindowStats& stats) const;

  WindowedEtlOptions options_;
  storage::BlobStore* store_;
  storage::WriterOptions writer_options_;
  common::ThreadPool* pool_;
  Sink sink_;

  storage::Table table_;
  std::map<std::int64_t, OpenWindow> open_;
  // request id -> window index of its pending feature (event-first
  // arrivals look the feature up here once it lands).
  std::unordered_map<std::int64_t, std::int64_t> pending_feature_window_;
  std::unordered_map<std::int64_t, datagen::EventLog> pending_events_;

  std::int64_t watermark_ = -1;
  std::int64_t last_arrival_ = -1;
  std::int64_t next_unclosed_ = 0;  // windows below this index are closed

  std::vector<WindowStats> windows_;
  std::unordered_set<std::int64_t> global_sessions_;
  double freshness_lag_sum_ = 0;

  // Lifecycle counters: registry-backed (single writer — Offer/Finish
  // run on one thread; the pool only parallelizes per-window encode).
  obs::Registry metrics_;
  obs::Counter& total_samples_ = metrics_.GetCounter("stream.total_samples");
  obs::Counter& stored_bytes_ = metrics_.GetCounter("stream.stored_bytes");
  obs::Counter& logical_bytes_ =
      metrics_.GetCounter("stream.logical_bytes");
  obs::Counter& late_features_ =
      metrics_.GetCounter("stream.late_features");
  obs::Counter& late_events_ = metrics_.GetCounter("stream.late_events");
  obs::Counter& unjoined_features_ =
      metrics_.GetCounter("stream.unjoined_features");
  obs::Counter& windows_landed_ =
      metrics_.GetCounter("stream.windows_landed");
  obs::HistogramMetric& window_samples_hist_ =
      metrics_.GetHistogram("stream.window_samples");
  obs::Gauge& open_windows_gauge_ =
      metrics_.GetGauge("stream.open_windows");
};

}  // namespace recd::stream
