// TrafficSource: replays generated traffic as a stream, in arrival-time
// order with bounded reordering.
//
// The batch pipeline hands whole log vectors between stages; production
// traffic instead trickles in over a message bus, slightly out of order
// (paper §2.1: inference servers and user-facing services log into
// Scribe independently). This source models that: every feature/event
// log gets an arrival tick = its payload timestamp plus a deterministic
// uniform delay in [0, reorder_ticks], and messages are emitted sorted
// by arrival tick (stable, so ties keep log order). reorder_ticks == 0
// replays exactly the generation order — the configuration under which
// the streaming pipeline must reproduce the batch pipeline byte for
// byte (docs/ARCHITECTURE.md §8).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/channel.h"
#include "datagen/generator.h"
#include "stream/message.h"

namespace recd::stream {

class TrafficSource {
 public:
  /// Builds the arrival schedule over `traffic`, which must outlive the
  /// source (the runner owns both). The delay draws come from `seed`
  /// alone, so a given (traffic, reorder_ticks, seed) triple always
  /// yields the same schedule.
  TrafficSource(const datagen::TrafficGenerator::Traffic& traffic,
                std::int64_t reorder_ticks, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return order_.size(); }

  /// Largest arrival tick in the schedule — the stream's end of time,
  /// used as the closing watermark for windows still open at exhaustion.
  [[nodiscard]] std::int64_t final_tick() const { return final_tick_; }

  /// Message `i` of the arrival schedule (copies the log payload).
  [[nodiscard]] StreamMessage Message(std::size_t i) const;

  /// Pushes the whole schedule into `out`, then closes it. Returns
  /// false if `out` was closed from the other side first (shutdown).
  bool PumpTo(common::Channel<StreamMessage>& out) const;

 private:
  struct Slot {
    std::int64_t arrival = 0;
    std::uint32_t index = 0;  // into traffic features/events
    bool is_event = false;
  };

  const datagen::TrafficGenerator::Traffic* traffic_;
  std::vector<Slot> order_;
  std::int64_t final_tick_ = 0;
};

}  // namespace recd::stream
