#include "stream/stream_pipeline.h"

#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/channel.h"
#include "common/thread_pool.h"
#include "etl/etl.h"
#include "stream/stream_scribe.h"
#include "stream/tailing_reader.h"
#include "stream/traffic_source.h"
#include "train/model.h"

namespace recd::stream {

StreamPipelineRunner::StreamPipelineRunner(datagen::DatasetSpec dataset,
                                           train::ModelConfig model,
                                           train::ClusterSpec cluster,
                                           core::PipelineOptions options,
                                           StreamOptions stream_options)
    : dataset_(std::move(dataset)),
      model_(std::move(model)),
      cluster_(cluster),
      options_(options),
      stream_options_(std::move(stream_options)) {
  core::ValidatePipelineOptions(options_);
  if (stream_options_.window_ticks < 1) {
    throw std::invalid_argument(
        "StreamOptions: window_ticks must be >= 1");
  }
  if (stream_options_.reorder_ticks < 0) {
    throw std::invalid_argument(
        "StreamOptions: reorder_ticks must be >= 0");
  }
  datagen::TrafficGenerator generator(dataset_);
  traffic_ = generator.Generate(options_.num_samples);
}

StreamResult StreamPipelineRunner::Run(const core::RecdConfig& config) {
  StreamResult result;

  // One pool drives the data-parallel work inside every stage; absent
  // (num_threads <= 1) the stages take their sequential paths. The
  // stage threads below are structural, not part of this budget.
  std::optional<common::ThreadPool> pool_storage;
  common::ThreadPool* pool = nullptr;
  if (options_.num_threads > 1) {
    pool_storage.emplace(options_.num_threads);
    pool = &*pool_storage;
  }

  TrafficSource source(traffic_, stream_options_.reorder_ticks,
                       dataset_.seed);
  const std::int64_t final_tick = source.final_tick();

  const auto schema = core::MakePipelineSchema(dataset_);

  train::ModelConfig model = model_;
  if (config.emb_dim_override.has_value()) {
    model.emb_dim = *config.emb_dim_override;
  }
  auto loader = core::MakePipelineLoader(model, config);

  WindowedEtlOptions eopts;
  eopts.window_ticks = stream_options_.window_ticks;
  eopts.allowed_lateness = stream_options_.allowed_lateness < 0
                               ? stream_options_.reorder_ticks
                               : stream_options_.allowed_lateness;
  eopts.cluster_by_session = config.cluster_by_session;
  eopts.downsample = config.downsample;
  eopts.downsample_keep_rate = config.downsample_keep_rate;
  eopts.downsample_seed = dataset_.seed;
  eopts.samples_per_partition = options_.samples_per_partition;
  // Captured-dedupe stats always count over the model's IKJT groups
  // (independent of config.use_ikjt) so the metric stays comparable
  // between baseline and RecD runs of the same model.
  const auto dedup_loader =
      train::MakeDataLoaderConfig(model, config.batch_size,
                                  /*recd_enabled=*/true);
  for (const auto& group : dedup_loader.dedup_sparse_features) {
    std::vector<std::size_t> indices;
    indices.reserve(group.size());
    for (const auto& name : group) {
      indices.push_back(schema.FeatureIndex(name));
    }
    eopts.dedup_groups.push_back(std::move(indices));
  }

  storage::BlobStore store;
  storage::WriterOptions wopts;
  wopts.rows_per_stripe = options_.rows_per_stripe;
  wopts.pool = pool;

  common::Channel<StreamMessage> scribe_in(
      std::max<std::size_t>(1, stream_options_.message_channel_capacity));
  common::Channel<StreamMessage> etl_in(
      std::max<std::size_t>(1, stream_options_.message_channel_capacity));
  common::Channel<LandedWindow> landed(
      std::max<std::size_t>(1, stream_options_.window_channel_capacity));
  common::Channel<reader::PreprocessedBatch> batches(
      stream_options_.prefetch_batches > 0 ? stream_options_.prefetch_batches
                                           : 4);

  StreamScribe scribe(options_.num_scribe_shards,
                      config.shard_by_session
                          ? scribe::ShardKeyPolicy::kSessionId
                          : scribe::ShardKeyPolicy::kRandomHash,
                      stream_options_.scribe_flush_every, pool);
  WindowedEtl etl(eopts, store, "table", schema, wopts, pool,
                  [&landed](LandedWindow w) {
                    return landed.Push(std::move(w));
                  });
  reader::ReaderOptions ropts;
  ropts.use_ikjt = config.use_ikjt;
  TailingReader tail(store, schema, loader, ropts, pool,
                     [&batches](reader::PreprocessedBatch b) {
                       return batches.Push(std::move(b));
                     });

  // First stage exception wins; closing every channel unblocks the rest.
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto fail = [&](std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::move(e);
    }
    scribe_in.Close();
    etl_in.Close();
    landed.Close();
    batches.Close();
  };

  std::thread source_thread([&] {
    try {
      source.PumpTo(scribe_in);
    } catch (...) {
      fail(std::current_exception());
    }
  });
  std::thread scribe_thread([&] {
    try {
      while (auto message = scribe_in.Pop()) {
        scribe.Offer(*message);
        if (!etl_in.Push(std::move(*message))) break;
      }
      scribe.Finish();
    } catch (...) {
      fail(std::current_exception());
    }
    etl_in.Close();
  });
  std::thread etl_thread([&] {
    try {
      while (auto message = etl_in.Pop()) {
        if (!etl.Offer(*message)) break;
      }
      etl.Finish(final_tick);
    } catch (...) {
      fail(std::current_exception());
    }
    landed.Close();
  });
  std::thread reader_thread([&] {
    try {
      while (auto window = landed.Pop()) {
        if (!tail.Offer(*window)) break;
      }
      tail.Finish();
    } catch (...) {
      fail(std::current_exception());
    }
    batches.Close();
  });

  core::BatchConsumer consumer(model, cluster_, config,
                               options_.trainer_scale,
                               options_.max_trainer_batches);
  try {
    while (auto batch = batches.Pop()) {
      if (stream_options_.batch_observer) {
        stream_options_.batch_observer(*batch);
      }
      consumer.Consume(*batch);
    }
  } catch (...) {
    fail(std::current_exception());
  }
  source_thread.join();
  scribe_thread.join();
  etl_thread.join();
  reader_thread.join();
  {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (error) std::rethrow_exception(error);
  }

  // ---- Assemble the batch-compatible counters. -----------------------
  result.pipeline.scribe_compression_ratio =
      scribe.cluster().totals().compression_ratio();
  result.pipeline.storage_compression_ratio =
      compress::CompressionRatio(etl.logical_bytes(), etl.stored_bytes());
  result.pipeline.stored_bytes = etl.stored_bytes();
  result.pipeline.samples_per_session =
      etl.distinct_sessions() == 0
          ? 0.0
          : static_cast<double>(etl.total_samples()) /
                static_cast<double>(etl.distinct_sessions());
  consumer.Finalize(tail.times(), tail.io(), result.pipeline);

  // ---- Streaming counters. -------------------------------------------
  result.windows_landed = etl.windows().size();
  result.late_features = etl.late_features();
  result.late_events = etl.late_events();
  result.unjoined_features = etl.unjoined_features();
  result.scribe_incremental_flushes = scribe.incremental_flushes();
  result.freshness_lag_mean =
      etl.total_samples() == 0
          ? 0.0
          : etl.freshness_lag_sum() /
                static_cast<double>(etl.total_samples());
  std::size_t before = 0;
  std::size_t after = 0;
  for (const auto& w : etl.windows()) {
    before += w.dedup_values_before;
    after += w.dedup_values_after;
  }
  result.captured_dedupe_factor =
      after == 0 ? 1.0
                 : static_cast<double>(before) / static_cast<double>(after);
  result.windows = etl.windows();
  return result;
}

}  // namespace recd::stream
