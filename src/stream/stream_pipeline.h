// StreamPipelineRunner: the Fig-1 pipeline as a long-lived streaming
// flow instead of one batch pass.
//
//   TrafficSource ─► StreamScribe ─► WindowedEtl ─► TailingReader ─► trainer
//        (pump)        (log bus)      (windowed       (tailing         (main
//                                      land)           batches)        thread)
//
// Stages run on their own threads, connected by bounded
// common::Channel hand-offs (backpressure end to end: a slow trainer
// stalls the reader, a slow land stalls the ETL buffer, all the way
// back to the source). A shared common::ThreadPool of
// PipelineOptions::num_threads workers drives the data-parallel work
// *inside* stages — Scribe block compression, per-window
// cluster/downsample/stripe-encode, stripe fetch+decode — exactly as in
// the batch runner; the stage threads themselves are structural, like
// reader::ReaderPool's workers.
//
// The determinism contract extends to streaming
// (docs/ARCHITECTURE.md §8): every stage is a pure function of its
// input sequence, so a given (dataset, options, config) produces
// identical results for any num_threads. And with one window covering
// the whole dataset plus zero reordering, the stream delivers the
// byte-identical batch stream and identical non-timing counters of
// core::PipelineRunner::Run — enforced by tests/stream_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/pipeline.h"
#include "stream/windowed_etl.h"

namespace recd::stream {

struct StreamOptions {
  /// Event-time ticks per ETL window (>= the dataset's total ticks
  /// reproduces the batch pipeline).
  std::int64_t window_ticks = 4096;
  /// Bound on source arrival reordering (0 = replay generation order).
  std::int64_t reorder_ticks = 0;
  /// Watermark slack; < 0 means "match reorder_ticks" (no late drops).
  /// Setting it below reorder_ticks trades deterministic, counted late
  /// drops for earlier window closes (fresher data).
  std::int64_t allowed_lateness = -1;
  /// Messages between incremental full-block Scribe flushes (0 = flush
  /// only at end of stream).
  std::size_t scribe_flush_every = 4096;
  /// Capacity of the source→scribe→etl message channels.
  std::size_t message_channel_capacity = 1024;
  /// Capacity of the landed-window channel (etl→reader).
  std::size_t window_channel_capacity = 4;
  /// Batches buffered ahead of the trainer (0 picks 4).
  std::size_t prefetch_batches = 0;
  /// Diagnostic/test hook: observes every delivered batch on the
  /// consumer thread, in order, before the trainer sim sees it.
  std::function<void(const reader::PreprocessedBatch&)> batch_observer;
};

/// Everything the batch pipeline reports, plus the streaming counters.
struct StreamResult {
  /// Counter-compatible with PipelineRunner::Run (identical values in
  /// the one-whole-window, zero-reordering configuration).
  core::PipelineResult pipeline;

  std::size_t windows_landed = 0;
  std::size_t late_features = 0;     // arrived after their window closed
  std::size_t late_events = 0;       // outcome could no longer join
  std::size_t unjoined_features = 0;  // window closed before the outcome
  std::size_t scribe_incremental_flushes = 0;
  /// Mean ticks between a sample's event time and its window landing —
  /// the end-to-end freshness the window size buys (smaller = fresher).
  double freshness_lag_mean = 0;
  /// Value-weighted dedupe factor the windowed clustering made
  /// capturable (duplicates only count within a window — the
  /// window-size ↔ dedupe trade-off the sweep bench measures).
  double captured_dedupe_factor = 1.0;
  std::vector<WindowStats> windows;
};

class StreamPipelineRunner {
 public:
  /// Mirrors core::PipelineRunner: generates traffic once (and builds
  /// the arrival schedule); each Run replays it under a different
  /// RecdConfig over identical data. Throws std::invalid_argument on
  /// violated PipelineOptions invariants or bad stream options.
  StreamPipelineRunner(datagen::DatasetSpec dataset,
                       train::ModelConfig model, train::ClusterSpec cluster,
                       core::PipelineOptions options = {},
                       StreamOptions stream_options = {});

  [[nodiscard]] StreamResult Run(const core::RecdConfig& config);

  [[nodiscard]] const datagen::DatasetSpec& dataset() const {
    return dataset_;
  }
  [[nodiscard]] const train::ModelConfig& model() const { return model_; }
  [[nodiscard]] const StreamOptions& stream_options() const {
    return stream_options_;
  }

 private:
  datagen::DatasetSpec dataset_;
  train::ModelConfig model_;
  train::ClusterSpec cluster_;
  core::PipelineOptions options_;
  StreamOptions stream_options_;

  datagen::TrafficGenerator::Traffic traffic_;
};

}  // namespace recd::stream
