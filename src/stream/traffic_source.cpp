#include "stream/traffic_source.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace recd::stream {

TrafficSource::TrafficSource(
    const datagen::TrafficGenerator::Traffic& traffic,
    std::int64_t reorder_ticks, std::uint64_t seed)
    : traffic_(&traffic) {
  if (reorder_ticks < 0) {
    throw std::invalid_argument(
        "TrafficSource: reorder_ticks must be >= 0");
  }
  if (traffic.features.size() != traffic.events.size()) {
    throw std::invalid_argument(
        "TrafficSource: features/events must pair up");
  }
  // Interleave in generation order (feature_i, event_i, ...), then
  // stable-sort by arrival so ties keep that order. With reorder 0 the
  // relative order of features is untouched — which is what makes the
  // streaming Scribe buffers byte-identical to batch logging.
  common::Rng rng(seed ^ 0x5eeded5060c3ULL);
  order_.reserve(2 * traffic.features.size());
  for (std::size_t i = 0; i < traffic.features.size(); ++i) {
    Slot f;
    f.index = static_cast<std::uint32_t>(i);
    f.arrival = traffic.features[i].timestamp;
    Slot e;
    e.index = static_cast<std::uint32_t>(i);
    e.is_event = true;
    e.arrival = traffic.events[i].timestamp;
    if (reorder_ticks > 0) {
      f.arrival += rng.Uniform(0, reorder_ticks);
      e.arrival += rng.Uniform(0, reorder_ticks);
    }
    order_.push_back(f);
    order_.push_back(e);
  }
  std::stable_sort(order_.begin(), order_.end(),
                   [](const Slot& a, const Slot& b) {
                     return a.arrival < b.arrival;
                   });
  if (!order_.empty()) final_tick_ = order_.back().arrival;
}

StreamMessage TrafficSource::Message(std::size_t i) const {
  const Slot& slot = order_.at(i);
  StreamMessage msg;
  msg.arrival_tick = slot.arrival;
  if (slot.is_event) {
    msg.kind = StreamMessage::Kind::kEvent;
    msg.event = traffic_->events[slot.index];
  } else {
    msg.kind = StreamMessage::Kind::kFeature;
    msg.feature = traffic_->features[slot.index];
  }
  return msg;
}

bool TrafficSource::PumpTo(common::Channel<StreamMessage>& out) const {
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (!out.Push(Message(i))) return false;
  }
  out.Close();
  return true;
}

}  // namespace recd::stream
