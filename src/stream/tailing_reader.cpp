#include "stream/tailing_reader.h"

#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"

namespace recd::stream {

TailingReader::TailingReader(storage::BlobStore& store,
                             storage::StorageSchema schema,
                             reader::DataLoaderConfig config,
                             reader::ReaderOptions options,
                             common::ThreadPool* pool, Sink sink)
    : store_(&store),
      schema_(std::move(schema)),
      config_(std::move(config)),
      options_(options),
      projection_(reader::BatchPipeline::BuildProjection(schema_, config_)),
      pipeline_(schema_, config_, options_.use_ikjt),
      pool_(pool),
      sink_(std::move(sink)) {
  if (config_.batch_size == 0) {
    throw std::invalid_argument(
        "TailingReader: batch_size must be positive");
  }
  wall_.Start();
}

bool TailingReader::Offer(const LandedWindow& window) {
  for (const auto& name : window.files) {
    // Fill (paper Fig 5): open the fresh file, then fetch + decrypt +
    // decompress + decode every stripe. Stripes decode concurrently on
    // the pool and reassemble in stripe order, and IO is accounted
    // analytically (open_bytes + per-stripe StripeBytes) exactly like
    // reader::ReaderPool — which is what keeps the stream's ReaderIoStats
    // identical to the batch reader's for any thread count.
    common::Stopwatch fill;
    fill.Start();
    storage::ColumnFileReader file(*store_, name);
    io_.bytes_read += file.open_bytes();
    const std::size_t stripes = file.num_stripes();
    std::vector<std::vector<datagen::Sample>> decoded(stripes);
    const auto read_one = [&](std::size_t s) {
      decoded[s] = file.ReadStripe(s, projection_);
    };
    if (pool_ != nullptr && stripes > 1) {
      pool_->ParallelFor(0, stripes, read_one);
    } else {
      for (std::size_t s = 0; s < stripes; ++s) read_one(s);
    }
    for (std::size_t s = 0; s < stripes; ++s) {
      io_.bytes_read += file.StripeBytes(s, projection_);
      io_.rows_read += decoded[s].size();
      for (auto& row : decoded[s]) buffer_.push_back(std::move(row));
    }
    fill.Stop();
    times_.fill_s += fill.seconds();

    while (buffer_.size() >= config_.batch_size) {
      if (!EmitBatch(config_.batch_size)) return false;
    }
  }
  return true;
}

bool TailingReader::Finish() {
  if (finished_) return true;
  finished_ = true;
  bool ok = true;
  if (!buffer_.empty()) ok = EmitBatch(buffer_.size());
  wall_.Stop();
  times_.wall_s = wall_.seconds();
  return ok;
}

bool TailingReader::EmitBatch(std::size_t take) {
  std::vector<datagen::Sample> rows;
  rows.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    rows.push_back(std::move(buffer_.front()));
    buffer_.pop_front();
  }
  common::Stopwatch convert_sw;
  convert_sw.Start();
  reader::PreprocessedBatch batch = pipeline_.Convert(std::move(rows));
  convert_sw.Stop();
  times_.convert_s += convert_sw.seconds();

  common::Stopwatch process_sw;
  process_sw.Start();
  io_.sparse_elements_processed += pipeline_.Process(batch);
  process_sw.Stop();
  times_.process_s += process_sw.seconds();

  io_.bytes_sent += batch.WireBytes();
  io_.batches_produced += 1;
  return sink_ ? sink_(std::move(batch)) : true;
}

}  // namespace recd::stream
