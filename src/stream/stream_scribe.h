// StreamScribe: tails the traffic stream into the sharded Scribe.
//
// In the batch runner, Scribe ingests every log and compresses once at
// the end. A long-lived bus can't wait: its storage nodes compress
// buffered chunks periodically while traffic keeps arriving (paper
// §2.1: Scribe buffers "in memory and on disk" in bounded chunks).
// StreamScribe models that cadence — every `flush_every_messages`
// messages it compresses the shards' *complete* blocks
// (ScribeCluster::Flush with include_tail = false). Block boundaries
// stay at exact block-size multiples no matter how often the
// incremental flush runs, so the compressed bytes — and the O1
// compression-ratio measurement — are identical to one batch flush.
#pragma once

#include <cstddef>

#include "scribe/scribe.h"
#include "stream/message.h"

namespace recd::common {
class ThreadPool;
}  // namespace recd::common

namespace recd::stream {

class StreamScribe {
 public:
  /// `flush_every_messages` = 0 disables incremental flushing (all
  /// compression happens in Finish, like the batch path).
  StreamScribe(std::size_t num_shards, scribe::ShardKeyPolicy policy,
               std::size_t flush_every_messages, common::ThreadPool* pool);

  /// Logs one message as it arrives, incrementally flushing on cadence.
  void Offer(const StreamMessage& message);

  /// End of stream: compresses everything left, including partial tails.
  void Finish();

  [[nodiscard]] scribe::ScribeCluster& cluster() { return cluster_; }
  [[nodiscard]] std::size_t incremental_flushes() const {
    return incremental_flushes_;
  }

 private:
  scribe::ScribeCluster cluster_;
  std::size_t flush_every_;
  common::ThreadPool* pool_;
  std::size_t since_flush_ = 0;
  std::size_t incremental_flushes_ = 0;
};

}  // namespace recd::stream
