// The unit flowing through the streaming ingestion pipeline
// (src/stream/): one raw log message plus the virtual tick at which it
// arrived at the ingestion tier.
//
// Event time vs arrival time: the payload's `timestamp` is when the
// impression (or outcome) happened; `arrival_tick` is when the message
// reached the bus, which bounded network reordering can push later
// (stream::TrafficSource). Watermarks — and therefore window closes —
// are driven by arrival ticks only, so every stage's behavior is a pure
// function of the message sequence, never of wall-clock timing.
#pragma once

#include <cstdint>

#include "datagen/sample.h"

namespace recd::stream {

struct StreamMessage {
  enum class Kind : std::uint8_t { kFeature, kEvent };
  Kind kind = Kind::kFeature;
  std::int64_t arrival_tick = 0;
  datagen::FeatureLog feature;  // valid when kind == kFeature
  datagen::EventLog event;      // valid when kind == kEvent
};

}  // namespace recd::stream
