#include "stream/stream_scribe.h"

namespace recd::stream {

StreamScribe::StreamScribe(std::size_t num_shards,
                           scribe::ShardKeyPolicy policy,
                           std::size_t flush_every_messages,
                           common::ThreadPool* pool)
    : cluster_(num_shards, policy),
      flush_every_(flush_every_messages),
      pool_(pool) {}

void StreamScribe::Offer(const StreamMessage& message) {
  if (message.kind == StreamMessage::Kind::kFeature) {
    cluster_.LogFeature(message.feature);
  } else {
    cluster_.LogEvent(message.event);
  }
  if (flush_every_ > 0 && ++since_flush_ >= flush_every_) {
    cluster_.Flush(pool_, /*include_tail=*/false);
    since_flush_ = 0;
    ++incremental_flushes_;
  }
}

void StreamScribe::Finish() { cluster_.Flush(pool_, /*include_tail=*/true); }

}  // namespace recd::stream
