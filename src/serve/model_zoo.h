// The serving model zoo (docs/ARCHITECTURE.md §9).
//
// DeepRecSys-style at-scale serving runs a *zoo* of recommendation
// models with different sparse-vs-dense balance behind one endpoint;
// requests carry a model id and route to that model's own batcher and
// worker lane. ModelSpec is the one struct where a model's whole
// serving story lives — architecture, weight seed, kernel backend,
// embedding tiering (via `config.tiering`), and its dynamic-batching
// defaults — and FleetSpec is layer 2 of the serving spec: the zoo plus
// pool-level capacity knobs. Neither says anything about the query
// trace (layer 1, serve::TraceSpec) or a particular run (layer 3,
// serve::RunPolicy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/presets.h"
#include "kernels/backend.h"
#include "serve/batcher.h"
#include "train/model.h"

namespace recd::serve {

/// Everything one model needs to serve. A model's precision/backend/
/// tiering knobs live here (and in `config.tiering`) and nowhere else —
/// the runner and server take them from the spec, never from run-time
/// options.
struct ModelSpec {
  /// Label used in per-model stats, metrics labels, and bench rows.
  std::string name = "model";
  /// Architecture + embedding tiering (`config.tiering`, §13).
  train::ModelConfig config;
  /// Seed for every worker replica of this model (identical weights).
  std::uint64_t seed = 0x5eedf00d;
  /// Kernel backend for this model's replicas (bitwise-neutral, §12).
  kernels::KernelBackend backend = kernels::DefaultBackend();
  /// Per-model dynamic-batching defaults; RunPolicy may override.
  BatcherOptions batcher;
};

/// Layer 2 of the serving spec: the worker fleet.
struct FleetSpec {
  std::vector<ModelSpec> models;
  /// Worker threads per model when `workers` is empty.
  std::size_t default_workers = 1;
  /// Optional per-model worker counts; empty, or one entry per model.
  std::vector<std::size_t> workers;
  /// Bounded batch queue ahead of each model's workers.
  std::size_t batch_channel_capacity = 4;

  [[nodiscard]] std::size_t num_models() const { return models.size(); }
  [[nodiscard]] std::size_t workers_for(std::size_t model_id) const {
    return workers.empty() ? default_workers : workers.at(model_id);
  }

  /// The one-model fleet (the pre-zoo serving shape).
  [[nodiscard]] static FleetSpec Single(ModelSpec model,
                                        std::size_t num_workers = 1) {
    FleetSpec fleet;
    fleet.models.push_back(std::move(model));
    fleet.default_workers = num_workers;
    return fleet;
  }

  /// Throws std::invalid_argument on an empty zoo, a zero worker
  /// count, or a `workers` list that does not match `models`.
  void Validate() const;
};

/// An RM-flavored zoo member over a shared dataset: the config comes
/// from train::RmServeVariant (sequence groups from the dataset's sync
/// groups; `kind` sets the sparse-vs-dense balance), the name from the
/// variant, and the seed perturbed per kind so zoo members never share
/// weights.
[[nodiscard]] ModelSpec ZooVariant(datagen::RmKind kind,
                                   const datagen::DatasetSpec& dataset,
                                   std::uint64_t seed = 0x5eedf00d);

/// RM1/RM2/RM3-style variants (cycled when `size > 3`) over one shared
/// dataset — the default heterogeneous zoo the scale bench and the
/// multi-model determinism tests serve.
[[nodiscard]] std::vector<ModelSpec> DefaultZoo(
    const datagen::DatasetSpec& dataset, std::size_t size,
    std::uint64_t seed = 0x5eedf00d);

}  // namespace recd::serve
