// Open-loop synthetic query load for the serving subsystem.
//
// Derives ranking requests from the same session process that generates
// training traffic (datagen::SessionState): a pool of concurrent user
// sessions, each request picking one user, advancing their user-class
// features under the stay probabilities d(f), and drawing K fresh
// candidate items. Arrivals are a seeded Poisson process at the
// configured QPS, so a trace is fully deterministic: the same
// (DatasetSpec, QueryGenOptions) always yields byte-identical requests
// and arrival times — the precondition for the serving determinism and
// parity tests.
#pragma once

#include <cstdint>
#include <vector>

#include "datagen/schema.h"
#include "serve/request.h"

namespace recd::serve {

struct QueryGenOptions {
  std::size_t num_requests = 1024;
  /// Candidate items scored per request (K).
  std::size_t candidates = 8;
  /// Offered load (requests/second) shaping the arrival timestamps.
  double qps = 2000.0;
  /// true: exponential inter-arrivals (Poisson process); false: fixed
  /// 1/qps spacing (useful for batching edge-case tests).
  bool poisson_arrivals = true;
};

class QueryGenerator {
 public:
  /// The dataset spec supplies the feature schema, stay probabilities,
  /// seed, and `concurrent_sessions` (the number of users with requests
  /// in flight). Throws std::invalid_argument on a zero option.
  QueryGenerator(datagen::DatasetSpec spec, QueryGenOptions options);

  /// Generates the full deterministic request trace, arrival-ordered.
  [[nodiscard]] std::vector<Request> Generate();

  [[nodiscard]] const datagen::DatasetSpec& spec() const { return spec_; }
  [[nodiscard]] const QueryGenOptions& options() const { return options_; }

 private:
  datagen::DatasetSpec spec_;
  QueryGenOptions options_;
};

}  // namespace recd::serve
