// Open-loop synthetic query load for the serving subsystem.
//
// Derives ranking requests from the same session process that generates
// training traffic (datagen::SessionState): a pool of concurrent user
// sessions, each request picking one user, advancing their user-class
// features under the stay probabilities d(f), and drawing K fresh
// candidate items. DeepRecSys observes that at-scale inference traffic
// is *diverse* — arrival processes burst and swing diurnally, and
// candidate-set sizes are heavy-tailed — so both the arrival process
// and the per-request size are named, seeded shapes. A trace is fully
// deterministic: the same TraceSpec always yields byte-identical
// requests, model routing, and arrival times — the precondition for the
// serving determinism and parity tests.
#pragma once

#include <cstdint>
#include <vector>

#include "datagen/schema.h"
#include "serve/request.h"

namespace recd::serve {

/// Named arrival processes (all seeded, all replayable).
enum class ArrivalShape : std::uint8_t {
  /// Stationary arrivals at `qps`: Poisson inter-arrivals when
  /// `poisson_arrivals`, fixed 1/qps spacing otherwise.
  kSteady,
  /// On/off rate modulation: the rate alternates between
  /// `qps * burst_high_x` (on-dwells) and `qps * burst_low_x`
  /// (off-dwells), dwell lengths drawn exponentially with the
  /// configured means. Each gap is exponential at the dwell's rate —
  /// a seeded rate-modulated Poisson approximation of bursty traffic.
  kBursty,
  /// Sinusoidal rate curve: rate(t) = qps * (trough + (1 - trough) *
  /// (1 + sin(2*pi*t/period)) / 2), one seeded exponential gap at the
  /// instantaneous rate — a compressed diurnal cycle.
  kDiurnal,
};

/// Named candidate-count distributions.
enum class SizeShape : std::uint8_t {
  /// Every request scores exactly `candidates` items.
  kFixed,
  /// Bounded-Pareto candidate counts in [candidates, max_candidates]:
  /// K = min(max, candidates * U^(-1/alpha)) — most requests near the
  /// floor, a heavy tail of large ranking requests.
  kHeavyTailed,
};

struct QueryGenOptions {
  std::size_t num_requests = 1024;
  /// Candidate items scored per request (K): exact under
  /// SizeShape::kFixed, the distribution floor under kHeavyTailed.
  std::size_t candidates = 8;
  /// Offered load (requests/second): the rate under kSteady, the base
  /// rate the bursty/diurnal modulations multiply.
  double qps = 2000.0;
  /// kSteady only — true: exponential inter-arrivals (Poisson);
  /// false: fixed 1/qps spacing (for batching edge-case tests).
  bool poisson_arrivals = true;

  ArrivalShape arrival = ArrivalShape::kSteady;
  SizeShape size = SizeShape::kFixed;

  // --- kBursty knobs -------------------------------------------------
  double burst_high_x = 4.0;         // on-dwell rate multiplier
  double burst_low_x = 0.25;         // off-dwell rate multiplier
  double burst_on_mean_us = 20'000;  // mean on-dwell length
  double burst_off_mean_us = 60'000; // mean off-dwell length

  // --- kDiurnal knobs ------------------------------------------------
  double diurnal_period_us = 1e6;  // one compressed "day"
  double diurnal_trough = 0.1;     // trough rate as a fraction of qps

  // --- kHeavyTailed knobs --------------------------------------------
  double size_tail_alpha = 1.1;      // Pareto tail index (smaller = fatter)
  std::size_t max_candidates = 64;   // hard cap on K

  /// Requests are routed uniformly (seeded) across this many models:
  /// each request's `model_id` is drawn in [0, num_models). 1 = the
  /// single-model case (every request routes to model 0).
  std::size_t num_models = 1;
};

/// Layer 1 of the serving spec (docs/ARCHITECTURE.md §9): everything
/// that determines the query trace and nothing that doesn't. The seed
/// is `dataset.seed`; two TraceSpecs with equal fields replay to
/// byte-identical traces no matter what fleet serves them.
struct TraceSpec {
  /// Feature schema, stay probabilities, seed, and
  /// `concurrent_sessions` (users with requests in flight).
  datagen::DatasetSpec dataset;
  /// Arrival/size shapes, request count, offered load, model routing.
  QueryGenOptions query;
};

class QueryGenerator {
 public:
  /// Throws std::invalid_argument on a zero/invalid option.
  explicit QueryGenerator(TraceSpec spec);

  /// Generates the full deterministic request trace, arrival-ordered.
  [[nodiscard]] std::vector<Request> Generate();

  [[nodiscard]] const TraceSpec& spec() const { return spec_; }
  [[nodiscard]] const QueryGenOptions& options() const {
    return spec_.query;
  }

 private:
  TraceSpec spec_;
};

/// The requests of `trace` routed to `model_id`, with `model_id`
/// rebased to 0 — the sub-trace a single-model fleet would serve. The
/// multi-model determinism rule: serving the full trace through a zoo
/// scores each sub-trace bitwise identically to serving it alone.
[[nodiscard]] std::vector<Request> SubTraceForModel(
    const std::vector<Request>& trace, std::size_t model_id);

}  // namespace recd::serve
