#include "serve/model_server.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "reader/batch_pipeline.h"
#include "train/reference.h"

namespace recd::serve {

ModelServer::ModelServer(const FleetSpec& fleet,
                         const storage::StorageSchema& schema,
                         const std::vector<reader::DataLoaderConfig>& loaders,
                         Options options)
    : fleet_(&fleet),
      schema_(&schema),
      loaders_(&loaders),
      options_(std::move(options)) {
  fleet.Validate();
  if (loaders.size() != fleet.models.size()) {
    throw std::invalid_argument(
        "ModelServer: need one loader config per zoo model");
  }
  lanes_.reserve(fleet.models.size());
  for (std::size_t m = 0; m < fleet.models.size(); ++m) {
    Lane lane;
    lane.queue = std::make_unique<common::Channel<Batch>>(
        std::max<std::size_t>(1, fleet.batch_channel_capacity));
    lane.num_workers = fleet.workers_for(m);
    const obs::Labels labels = {{"model", fleet.models[m].name}};
    lane.batches = &metrics_.GetCounter("serve.batches", labels);
    lane.requests = &metrics_.GetCounter("serve.requests", labels);
    lane.rows = &metrics_.GetCounter("serve.rows", labels);
    lane.latency = &metrics_.GetHistogram("serve.latency_us", labels);
    total_workers_ += lane.num_workers;
    lanes_.push_back(std::move(lane));
  }
}

ModelServer::~ModelServer() {
  try {
    Shutdown();
  } catch (...) {
    // Destructor swallows worker errors; call Shutdown() to observe them.
  }
}

void ModelServer::Start() {
  if (!workers_.empty()) {
    throw std::logic_error("ModelServer: already started");
  }
  workers_.reserve(total_workers_);
  for (std::size_t m = 0; m < lanes_.size(); ++m) {
    for (std::size_t i = 0; i < lanes_[m].num_workers; ++i) {
      workers_.emplace_back([this, m] { WorkerLoop(m); });
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  ready_cv_.wait(lock, [this] { return ready_workers_ == total_workers_; });
}

bool ModelServer::Submit(std::size_t model_id, Batch batch) {
  // The span covers the (possibly blocking) push into the lane's
  // bounded queue — backpressure from its workers shows up as duration.
  RECD_TRACE_SCOPE("serve/enqueue");
  return lanes_.at(model_id).queue->Push(std::move(batch));
}

void ModelServer::CloseAllQueues() {
  for (auto& lane : lanes_) lane.queue->Close();
}

ServeWorkStats ModelServer::model_work_stats(std::size_t model_id) const {
  const auto& lane = lanes_.at(model_id);
  const auto u = [](const obs::Counter* c) {
    return static_cast<std::size_t>(c->Value());
  };
  ServeWorkStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats = lane.work;
  }
  stats.batches = u(lane.batches);
  stats.requests = u(lane.requests);
  stats.rows = u(lane.rows);
  return stats;
}

ServeWorkStats ModelServer::work_stats() const {
  ServeWorkStats total;
  for (std::size_t m = 0; m < lanes_.size(); ++m) {
    const auto lane = model_work_stats(m);
    total.batches += lane.batches;
    total.requests += lane.requests;
    total.rows += lane.rows;
    total.values_before += lane.values_before;
    total.values_after += lane.values_after;
    total.ops += lane.ops;
    total.tier += lane.tier;
  }
  return total;
}

common::Histogram ModelServer::model_latency_us(std::size_t model_id) const {
  return lanes_.at(model_id).latency->snapshot();
}

common::Histogram ModelServer::latency_us() const {
  common::Histogram merged;
  for (const auto& lane : lanes_) merged.Merge(lane.latency->snapshot());
  return merged;
}

void ModelServer::Shutdown() {
  CloseAllQueues();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (first_error_) std::rethrow_exception(first_error_);
}

std::vector<ScoredRequest> ModelServer::TakeScored() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::sort(scored_.begin(), scored_.end(),
            [](const ScoredRequest& a, const ScoredRequest& b) {
              return a.request_id < b.request_id;
            });
  return std::move(scored_);
}

void ModelServer::WorkerLoop(std::size_t model_id) {
  // Per-worker replica of the lane's model: identical seed =>
  // bitwise-equal weights, so any worker of a lane scoring any of its
  // batches yields the same logits. Construction is signaled to Start()
  // so request latencies never include model-build time; a failed build
  // surfaces through Shutdown() like any worker error.
  Lane& lane = lanes_[model_id];
  const ModelSpec& spec = fleet_->models[model_id];
  std::optional<reader::BatchPipeline> pipeline;
  std::optional<train::ReferenceDlrm> dlrm;
  try {
    pipeline.emplace(*schema_, (*loaders_)[model_id], options_.recd);
    dlrm.emplace(spec.config, spec.seed);
    dlrm->SetKernelBackend(spec.backend);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
    CloseAllQueues();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ready_workers_ += 1;
  }
  ready_cv_.notify_all();
  if (!dlrm.has_value()) return;

  struct RequestMeta {
    std::int64_t request_id = 0;
    std::int64_t user_id = 0;
    std::int64_t arrival_us = 0;
    std::size_t rows = 0;
  };

  std::vector<ScoredRequest> local_scored;
  ServeWorkStats local;
  try {
    while (auto item = lane.queue->Pop()) {
      Batch batch = std::move(*item);

      std::vector<RequestMeta> metas;
      metas.reserve(batch.requests.size());
      std::vector<datagen::Sample> rows;
      rows.reserve(batch.rows());
      for (auto& r : batch.requests) {
        metas.push_back({r.request_id, r.user_id, r.arrival_us,
                         r.rows.size()});
        for (auto& row : r.rows) rows.push_back(std::move(row));
      }

      obs::Tracer::Scope score_span(
          "serve/score", "rows", static_cast<std::int64_t>(rows.size()));
      // A batch of only zero-candidate requests has nothing to score;
      // skip the pipeline but still complete its requests below.
      std::optional<reader::PreprocessedBatch> pre;
      std::optional<nn::DenseMatrix> logits;
      if (!rows.empty()) {
        pre = pipeline->Convert(std::move(rows));
        (void)pipeline->Process(*pre);
        logits = dlrm->Forward(*pre, options_.recd);
      }

      const std::int64_t completion =
          options_.completion_clock ? options_.completion_clock()
                                    : batch.formed_us;
      local.batches += 1;
      local.requests += metas.size();
      if (pre) {
        local.rows += pre->batch_size;
        for (const auto& s : pre->group_stats) {
          local.values_before += static_cast<double>(s.values_before);
          local.values_after += static_cast<double>(s.values_after);
        }
      }

      std::size_t row = 0;
      for (const auto& m : metas) {
        ScoredRequest sr;
        sr.request_id = m.request_id;
        sr.user_id = m.user_id;
        sr.model_id = model_id;
        sr.arrival_us = m.arrival_us;
        sr.completion_us = completion;
        sr.latency_us =
            std::max<std::int64_t>(1, completion - m.arrival_us);
        sr.scores.reserve(m.rows);
        for (std::size_t i = 0; i < m.rows; ++i) {
          sr.scores.push_back(logits->at(row++, 0));
        }
        local_scored.push_back(std::move(sr));
      }
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Stop accepting work so the pump does not block on a dead pool.
    CloseAllQueues();
  }

  local.ops = dlrm->Stats();
  local.tier = dlrm->TierStats();
  lane.batches->Add(static_cast<std::int64_t>(local.batches));
  lane.requests->Add(static_cast<std::int64_t>(local.requests));
  lane.rows->Add(static_cast<std::int64_t>(local.rows));
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& sr : local_scored) {
    lane.latency->Observe(sr.latency_us);
    scored_.push_back(std::move(sr));
  }
  lane.work.values_before += local.values_before;
  lane.work.values_after += local.values_after;
  lane.work.ops += local.ops;
  lane.work.tier += local.tier;
}

}  // namespace recd::serve
