#include "serve/model_server.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "reader/batch_pipeline.h"
#include "train/reference.h"

namespace recd::serve {

ModelServer::ModelServer(const train::ModelConfig& model,
                         const storage::StorageSchema& schema,
                         const reader::DataLoaderConfig& loader,
                         Options options)
    : model_(&model),
      schema_(&schema),
      loader_(&loader),
      options_(std::move(options)),
      queue_(std::max<std::size_t>(1, options_.channel_capacity)) {
  if (options_.num_workers == 0) {
    throw std::invalid_argument("ModelServer: num_workers must be >= 1");
  }
}

ModelServer::~ModelServer() {
  try {
    Shutdown();
  } catch (...) {
    // Destructor swallows worker errors; call Shutdown() to observe them.
  }
}

void ModelServer::Start() {
  if (!workers_.empty()) {
    throw std::logic_error("ModelServer: already started");
  }
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  std::unique_lock<std::mutex> lock(mutex_);
  ready_cv_.wait(lock, [this] {
    return ready_workers_ == options_.num_workers;
  });
}

bool ModelServer::Submit(Batch batch) {
  // The span covers the (possibly blocking) push into the bounded
  // queue — backpressure from the workers shows up as its duration.
  RECD_TRACE_SCOPE("serve/enqueue");
  return queue_.Push(std::move(batch));
}

ServeWorkStats ModelServer::work_stats() const {
  const auto u = [](const obs::Counter& c) {
    return static_cast<std::size_t>(c.Value());
  };
  ServeWorkStats stats = work_;
  stats.batches = u(batches_counter_);
  stats.requests = u(requests_counter_);
  stats.rows = u(rows_counter_);
  return stats;
}

void ModelServer::Shutdown() {
  queue_.Close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (first_error_) std::rethrow_exception(first_error_);
}

std::vector<ScoredRequest> ModelServer::TakeScored() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::sort(scored_.begin(), scored_.end(),
            [](const ScoredRequest& a, const ScoredRequest& b) {
              return a.request_id < b.request_id;
            });
  return std::move(scored_);
}

void ModelServer::WorkerLoop() {
  // Per-worker replica: identical seed => bitwise-equal weights, so any
  // worker scoring any batch yields the same logits. Construction is
  // signaled to Start() so request latencies never include model-build
  // time; a failed build surfaces through Shutdown() like any worker
  // error.
  std::optional<reader::BatchPipeline> pipeline;
  std::optional<train::ReferenceDlrm> dlrm;
  try {
    pipeline.emplace(*schema_, *loader_, options_.recd);
    dlrm.emplace(*model_, options_.model_seed);
    dlrm->SetKernelBackend(options_.backend);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
    queue_.Close();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ready_workers_ += 1;
  }
  ready_cv_.notify_all();
  if (!dlrm.has_value()) return;

  struct RequestMeta {
    std::int64_t request_id = 0;
    std::int64_t user_id = 0;
    std::int64_t arrival_us = 0;
    std::size_t rows = 0;
  };

  std::vector<ScoredRequest> local_scored;
  ServeWorkStats local;
  try {
    while (auto item = queue_.Pop()) {
      Batch batch = std::move(*item);

      std::vector<RequestMeta> metas;
      metas.reserve(batch.requests.size());
      std::vector<datagen::Sample> rows;
      rows.reserve(batch.rows());
      for (auto& r : batch.requests) {
        metas.push_back({r.request_id, r.user_id, r.arrival_us,
                         r.rows.size()});
        for (auto& row : r.rows) rows.push_back(std::move(row));
      }

      obs::Tracer::Scope score_span(
          "serve/score", "rows", static_cast<std::int64_t>(batch.rows()));
      auto pre = pipeline->Convert(std::move(rows));
      (void)pipeline->Process(pre);
      const auto logits = dlrm->Forward(pre, options_.recd);

      const std::int64_t completion =
          options_.completion_clock ? options_.completion_clock()
                                    : batch.formed_us;
      local.batches += 1;
      local.requests += metas.size();
      local.rows += pre.batch_size;
      for (const auto& s : pre.group_stats) {
        local.values_before += static_cast<double>(s.values_before);
        local.values_after += static_cast<double>(s.values_after);
      }

      std::size_t row = 0;
      for (const auto& m : metas) {
        ScoredRequest sr;
        sr.request_id = m.request_id;
        sr.user_id = m.user_id;
        sr.arrival_us = m.arrival_us;
        sr.completion_us = completion;
        sr.latency_us =
            std::max<std::int64_t>(1, completion - m.arrival_us);
        sr.scores.reserve(m.rows);
        for (std::size_t i = 0; i < m.rows; ++i) {
          sr.scores.push_back(logits.at(row++, 0));
        }
        local_scored.push_back(std::move(sr));
      }
    }
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    // Stop accepting work so the pump does not block on a dead pool.
    queue_.Close();
  }

  local.ops = dlrm->Stats();
  local.tier = dlrm->TierStats();
  batches_counter_.Add(static_cast<std::int64_t>(local.batches));
  requests_counter_.Add(static_cast<std::int64_t>(local.requests));
  rows_counter_.Add(static_cast<std::int64_t>(local.rows));
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& sr : local_scored) {
    latency_hist_.Observe(sr.latency_us);
    scored_.push_back(std::move(sr));
  }
  work_.values_before += local.values_before;
  work_.values_after += local.values_after;
  work_.ops += local.ops;
  work_.tier += local.tier;
}

}  // namespace recd::serve
