// ServerRunner: closes the loop from logged traffic back to query
// serving (docs/ARCHITECTURE.md §9).
//
//   QueryGenerator ─► Batcher ─► ModelServer workers ─► scored requests
//       (open-loop      (SLA        (BatchPipeline convert +
//        arrivals)       window)     ReferenceDlrm forward)
//
// Mirrors core::PipelineRunner's config/result API: the constructor
// generates the query trace once; each Run replays the identical trace
// under a different ServeConfig, so baseline and RecD measurements — and
// any two worker counts — serve exactly the same requests.
//
// Two clock modes:
//  * replay (pace_arrivals = false): the batcher runs on the virtual
//    arrival clock. Batch composition, scores, dedupe/op counters, and
//    the latency histogram (pure batching delay) are all deterministic.
//  * paced (pace_arrivals = true): arrivals are released in real time at
//    the trace's offered QPS and latency is measured end to end
//    (batching delay + queueing + model time) — the DeepRecSys-style
//    load experiment. Scores remain bitwise identical to replay mode
//    because the forward math is row-local (the batcher determinism
//    rule; see ModelServer).
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "datagen/schema.h"
#include "serve/batcher.h"
#include "serve/model_server.h"
#include "serve/query_gen.h"
#include "serve/request.h"
#include "storage/column_file.h"
#include "train/model.h"

namespace recd::serve {

/// Per-Run switches (what baseline-vs-RecD sweeps vary).
struct ServeConfig {
  /// RecD serving: per-batch IKJTs deduplicating user rows across
  /// requests (O3), unique-row lookups (O5) and pooling (O7).
  bool recd = true;
  std::size_t num_workers = 1;
  BatcherOptions batcher;
  /// false = replay mode (deterministic), true = real-time pacing.
  bool pace_arrivals = false;

  [[nodiscard]] static ServeConfig Baseline() {
    ServeConfig c;
    c.recd = false;
    return c;
  }
  [[nodiscard]] static ServeConfig Recd() { return ServeConfig{}; }
};

/// Trace-level knobs fixed across a runner's lifetime.
struct ServeOptions {
  QueryGenOptions query;
  std::uint64_t model_seed = 0x5eedf00d;
  std::size_t batch_channel_capacity = 4;
  /// Kernel backend for the worker replicas (bitwise-neutral).
  kernels::KernelBackend backend = kernels::DefaultBackend();
};

struct ServeStats {
  std::size_t requests = 0;
  std::size_t rows = 0;  // candidates scored
  std::size_t batches = 0;
  std::size_t size_flushes = 0;
  std::size_t deadline_flushes = 0;
  std::size_t final_flushes = 0;
  double mean_batch_requests = 0;
  double mean_batch_rows = 0;

  double offered_qps = 0;
  double achieved_qps = 0;  // requests / wall seconds
  double rows_per_second = 0;
  double wall_s = 0;

  /// Request dedupe factor: group values before / after dedup across
  /// all served batches (1.0 on the baseline path).
  double request_dedupe_factor = 1.0;
  /// Embedding rows actually fetched / flops actually executed.
  double embedding_lookups = 0;
  double flops = 0;

  /// Embedding-tier counters summed over worker replicas (all-zero
  /// when the model serves from dense tables). hit_rate() is the
  /// fraction of row fetches served from the hot tier.
  embstore::TierStats tier;

  /// Request latency (µs): end-to-end in paced mode, batching delay in
  /// replay mode (see ServerRunner header).
  double latency_mean_us = 0;
  double latency_p50_us = 0;
  double latency_p95_us = 0;
  double latency_p99_us = 0;
  std::int64_t latency_max_us = 0;
  common::Histogram latency_us;
};

struct ServeResult {
  ServeStats stats;
  /// Every request scored, sorted by request_id.
  std::vector<ScoredRequest> requests;
  /// Snapshot of the server's metrics() registry (`serve.*` series),
  /// taken after Shutdown — the server itself dies with Run().
  obs::MetricsSnapshot obs_metrics;
};

class ServerRunner {
 public:
  /// Generates the deterministic query trace once. Throws
  /// std::invalid_argument on bad options (via QueryGenerator).
  ServerRunner(datagen::DatasetSpec dataset, train::ModelConfig model,
               ServeOptions options = {});

  /// Serves the whole trace under `config`. Replay-mode Runs are fully
  /// deterministic; every Run scores every request exactly once.
  [[nodiscard]] ServeResult Run(const ServeConfig& config);

  [[nodiscard]] const datagen::DatasetSpec& dataset() const {
    return dataset_;
  }
  [[nodiscard]] const train::ModelConfig& model() const { return model_; }
  [[nodiscard]] const std::vector<Request>& trace() const { return trace_; }

 private:
  datagen::DatasetSpec dataset_;
  train::ModelConfig model_;
  ServeOptions options_;
  storage::StorageSchema schema_;
  std::vector<Request> trace_;
};

}  // namespace recd::serve
