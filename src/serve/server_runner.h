// ServerRunner: closes the loop from logged traffic back to query
// serving, at fleet scale (docs/ARCHITECTURE.md §9).
//
//   QueryGenerator ─► per-model Batchers ─► ModelServer lanes ─► scores
//       (open-loop      (one SLA window       (per-model queue +
//        arrivals,       per zoo model,        workers; BatchPipeline
//        model routing)  routed by model_id)   convert + ReferenceDlrm)
//
// The serving spec is layered so each concern lives in exactly one
// struct:
//   layer 1  serve::TraceSpec  — what traffic: dataset, arrival/size
//            shapes, model routing, seed. Fixed per runner; the
//            constructor generates the trace once.
//   layer 2  serve::FleetSpec  — who serves: the model zoo
//            (serve::ModelSpec each), worker counts, queue capacities.
//            Fixed per runner; each Run builds a fresh fleet from it.
//   layer 3  serve::RunPolicy  — how this run serves: recd on/off,
//            replay vs paced clock, per-model batcher overrides. Varies
//            per Run; baseline-vs-RecD sweeps vary only this layer.
//
// Two clock modes:
//  * replay (pace_arrivals = false): the batchers run on the virtual
//    arrival clock; cross-model deadline flushes fire in global
//    deadline order. Batch composition, scores, dedupe/op counters, and
//    the latency histograms (pure batching delay) are all deterministic.
//  * paced (pace_arrivals = true): arrivals are released in real time at
//    the trace's offered QPS and latency is measured end to end
//    (batching delay + queueing + model time) — the DeepRecSys-style
//    load experiment. Scores remain bitwise identical to replay mode
//    because the forward math is row-local (the batcher determinism
//    rule; see ModelServer).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/histogram.h"
#include "serve/batcher.h"
#include "serve/model_server.h"
#include "serve/model_zoo.h"
#include "serve/query_gen.h"
#include "serve/request.h"
#include "storage/column_file.h"

namespace recd::serve {

/// Layer 3 of the serving spec: per-Run switches (what baseline-vs-RecD
/// sweeps vary). Everything that identifies a *model* — seed, backend,
/// tiering, batching defaults — lives in its ModelSpec instead.
struct RunPolicy {
  /// RecD serving: per-batch IKJTs deduplicating user rows across
  /// requests (O3), unique-row lookups (O5) and pooling (O7).
  bool recd = true;
  /// false = replay mode (deterministic), true = real-time pacing.
  bool pace_arrivals = false;
  /// Fleet-wide batcher override: when set, every model batches with
  /// these options instead of its ModelSpec::batcher defaults.
  std::optional<BatcherOptions> batcher;
  /// Per-model overrides keyed by model id — what the tail-latency
  /// scheduler emits. Wins over both the fleet-wide override and the
  /// ModelSpec defaults.
  std::map<std::size_t, BatcherOptions> batcher_overrides;

  [[nodiscard]] static RunPolicy Baseline() {
    RunPolicy p;
    p.recd = false;
    return p;
  }
  [[nodiscard]] static RunPolicy Recd() { return RunPolicy{}; }

  /// The batching options model `model_id` runs under this policy.
  [[nodiscard]] BatcherOptions batcher_for(const FleetSpec& fleet,
                                           std::size_t model_id) const;
};

/// Counters for one run — fleet-wide in ServeResult::stats, one per zoo
/// model in ServeResult::model_stats. Latency percentiles are computed
/// on demand from `latency_us` (one source of truth, no copied fields).
struct ServeStats {
  std::size_t requests = 0;
  std::size_t rows = 0;  // candidates scored
  std::size_t batches = 0;
  std::size_t size_flushes = 0;
  std::size_t deadline_flushes = 0;
  std::size_t final_flushes = 0;
  double mean_batch_requests = 0;
  double mean_batch_rows = 0;

  double offered_qps = 0;
  double achieved_qps = 0;  // requests / wall seconds
  double rows_per_second = 0;
  double wall_s = 0;

  /// Request dedupe factor: group values before / after dedup across
  /// all served batches (1.0 on the baseline path).
  double request_dedupe_factor = 1.0;
  /// Embedding rows actually fetched / flops actually executed.
  double embedding_lookups = 0;
  double flops = 0;

  /// Embedding-tier counters summed over worker replicas (all-zero
  /// when the model serves from dense tables). hit_rate() is the
  /// fraction of row fetches served from the hot tier.
  embstore::TierStats tier;

  /// Request latency (µs): end-to-end in paced mode, batching delay in
  /// replay mode (see header comment). The accessors below are the
  /// only latency summary — they read this histogram directly.
  common::Histogram latency_us;

  [[nodiscard]] double latency_mean_us() const { return latency_us.mean(); }
  [[nodiscard]] double latency_p50_us() const {
    return latency_us.Percentile(0.5);
  }
  [[nodiscard]] double latency_p95_us() const {
    return latency_us.Percentile(0.95);
  }
  [[nodiscard]] double latency_p99_us() const {
    return latency_us.Percentile(0.99);
  }
  [[nodiscard]] std::int64_t latency_max_us() const {
    return latency_us.max();
  }
};

struct ServeResult {
  /// Fleet-wide counters.
  ServeStats stats;
  /// Per-model counters, indexed by model id (names in the FleetSpec).
  std::vector<ServeStats> model_stats;
  /// Every request scored, sorted by request_id.
  std::vector<ScoredRequest> requests;
  /// Snapshot of the server's metrics() registry (`serve.*` series,
  /// labeled per model), taken after Shutdown — the server itself dies
  /// with Run().
  obs::MetricsSnapshot obs_metrics;
};

class ServerRunner {
 public:
  /// Generates the deterministic query trace once. Throws
  /// std::invalid_argument on bad options (via QueryGenerator /
  /// FleetSpec::Validate), or when the trace routes to a model id the
  /// fleet does not have.
  ServerRunner(TraceSpec trace, FleetSpec fleet);

  /// Serves an explicit trace instead of generating one — sub-trace
  /// runs (multi-model determinism tests) and offline scheduler
  /// replays. `spec.dataset` must still describe the trace's feature
  /// schema; `spec.query` is kept for offered-QPS accounting only.
  ServerRunner(TraceSpec spec, FleetSpec fleet, std::vector<Request> trace);

  /// Serves the whole trace under `policy`. Replay-mode Runs are fully
  /// deterministic; every Run scores every request exactly once.
  [[nodiscard]] ServeResult Run(const RunPolicy& policy);

  [[nodiscard]] const TraceSpec& trace_spec() const { return spec_; }
  [[nodiscard]] const FleetSpec& fleet() const { return fleet_; }
  [[nodiscard]] const std::vector<Request>& trace() const { return trace_; }

 private:
  TraceSpec spec_;
  FleetSpec fleet_;
  storage::StorageSchema schema_;
  std::vector<Request> trace_;
};

}  // namespace recd::serve
