// ModelServer: a DLRM inference worker pool.
//
// Workers pop formed batches from a bounded common::Channel (backpressure
// toward the batcher), convert them through the *training* reader's
// reader::BatchPipeline — baseline KJT or RecD IKJT form (O3 across
// requests) — run preprocessing (O4 over deduplicated slices), and score
// every candidate with the real train::ReferenceDlrm forward pass (O5
// lookups and O7 pooling on unique rows in RecD mode).
//
// Each worker owns a model replica seeded identically, so all replicas
// hold bitwise-equal weights. Combined with the row-local forward math
// (every logit depends only on its own row's features and the weights —
// never on batchmates), per-request scores are bitwise independent of
// batch composition, worker count, and scheduling: the serving
// determinism rule asserted in tests/serve_test.cpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/channel.h"
#include "common/histogram.h"
#include "embstore/tier_config.h"
#include "obs/metrics.h"
#include "kernels/backend.h"
#include "nn/op_stats.h"
#include "reader/dataloader.h"
#include "serve/batcher.h"
#include "serve/request.h"
#include "storage/column_file.h"
#include "train/model.h"

namespace recd::serve {

/// Aggregate work counters across all workers (stable across worker
/// counts for a fixed batch stream).
struct ServeWorkStats {
  std::size_t batches = 0;
  std::size_t requests = 0;
  std::size_t rows = 0;
  /// Dedup group value sums over scored batches (values_before ==
  /// values_after when serving the baseline KJT path).
  double values_before = 0;
  double values_after = 0;
  /// Model op counters (embedding lookups, flops) summed over replicas.
  nn::OpStats ops;
  /// Embedding-tier counters summed over replicas — all-zero unless the
  /// model config enables tiering (docs/ARCHITECTURE.md §13).
  embstore::TierStats tier;
};

class ModelServer {
 public:
  struct Options {
    std::size_t num_workers = 1;
    /// RecD serving path: convert batches to IKJTs and run the
    /// deduplicated forward. false = baseline KJT path.
    bool recd = true;
    /// Seed for every worker's model replica (identical weights).
    std::uint64_t model_seed = 0x5eedf00d;
    /// Kernel backend for every worker replica's forward math.
    /// Bitwise-neutral; pinned so serve parity tests can cross
    /// backends against each other.
    kernels::KernelBackend backend = kernels::DefaultBackend();
    /// Bounded batch queue ahead of the workers.
    std::size_t channel_capacity = 4;
    /// Completion timestamps for latency accounting. Unset (replay
    /// mode): completion_us = Batch::formed_us, so latency is the
    /// deterministic batching delay.
    std::function<std::int64_t()> completion_clock;
  };

  /// `model`, `schema`, and `loader` must outlive the server (the
  /// runner owns all three). `loader` must match `options.recd` (IKJT
  /// groups present iff recd). Call Start() before Submit().
  ModelServer(const train::ModelConfig& model,
              const storage::StorageSchema& schema,
              const reader::DataLoaderConfig& loader, Options options);
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Spawns the workers and blocks until every replica is constructed,
  /// so the first requests are not charged model-build time.
  void Start();

  /// Blocks while the batch queue is full. False once Shutdown began.
  bool Submit(Batch batch);

  /// Closes the queue, drains every accepted batch, joins the workers,
  /// and rethrows the first worker exception, if any. Idempotent.
  void Shutdown();

  /// Scored requests sorted by request_id. Valid after Shutdown().
  [[nodiscard]] std::vector<ScoredRequest> TakeScored();

  /// Valid after Shutdown(). Assembled from the server's metrics()
  /// registry (`serve.*` counters) plus the struct-valued op/tier
  /// merges (§14: the registry is the single source of truth for the
  /// scalar counters; this struct is a projection).
  [[nodiscard]] ServeWorkStats work_stats() const;
  /// Request latency histogram (`serve.latency_us` in the registry).
  [[nodiscard]] common::Histogram latency_us() const {
    return latency_hist_.snapshot();
  }

  /// The server's metric registry (`serve.*` series).
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

 private:
  void WorkerLoop();

  const train::ModelConfig* model_;
  const storage::StorageSchema* schema_;
  const reader::DataLoaderConfig* loader_;
  Options options_;

  common::Channel<Batch> queue_;
  std::vector<std::thread> workers_;
  bool shutdown_done_ = false;

  std::mutex mutex_;  // guards everything below
  std::condition_variable ready_cv_;
  std::size_t ready_workers_ = 0;
  std::vector<ScoredRequest> scored_;
  // Struct-valued merges (op counters, tier stats, dedupe value sums);
  // the scalar work counters live in metrics_ below.
  ServeWorkStats work_;
  std::exception_ptr first_error_;

  // Work counters: registry-backed, workers add their batched locals.
  obs::Registry metrics_;
  obs::Counter& batches_counter_ = metrics_.GetCounter("serve.batches");
  obs::Counter& requests_counter_ = metrics_.GetCounter("serve.requests");
  obs::Counter& rows_counter_ = metrics_.GetCounter("serve.rows");
  obs::HistogramMetric& latency_hist_ =
      metrics_.GetHistogram("serve.latency_us");
};

}  // namespace recd::serve
