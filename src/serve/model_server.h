// ModelServer: a heterogeneous DLRM inference worker pool.
//
// One lane per zoo model (docs/ARCHITECTURE.md §9): each lane owns a
// bounded common::Channel of formed batches (backpressure toward that
// model's batcher) and its own worker threads. A worker converts
// batches through the *training* reader's reader::BatchPipeline —
// baseline KJT or RecD IKJT form (O3 across requests) — runs
// preprocessing (O4 over deduplicated slices), and scores every
// candidate with a real train::ReferenceDlrm replica of its lane's
// model (O5 lookups and O7 pooling on unique rows in RecD mode).
//
// All replicas of one model are seeded identically, so they hold
// bitwise-equal weights. Combined with the row-local forward math
// (every logit depends only on its own row's features and the weights —
// never on batchmates), per-request scores are bitwise independent of
// batch composition, worker count, scheduling, and the rest of the zoo:
// the serving determinism rule asserted in tests/serve_test.cpp.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/channel.h"
#include "common/histogram.h"
#include "embstore/tier_config.h"
#include "obs/metrics.h"
#include "nn/op_stats.h"
#include "reader/dataloader.h"
#include "serve/batcher.h"
#include "serve/model_zoo.h"
#include "serve/request.h"
#include "storage/column_file.h"

namespace recd::serve {

/// Aggregate work counters for one model lane — or, summed, the fleet
/// (stable across worker counts for a fixed batch stream).
struct ServeWorkStats {
  std::size_t batches = 0;
  std::size_t requests = 0;
  std::size_t rows = 0;
  /// Dedup group value sums over scored batches (values_before ==
  /// values_after when serving the baseline KJT path).
  double values_before = 0;
  double values_after = 0;
  /// Model op counters (embedding lookups, flops) summed over replicas.
  nn::OpStats ops;
  /// Embedding-tier counters summed over replicas — all-zero unless the
  /// model spec enables tiering (docs/ARCHITECTURE.md §13).
  embstore::TierStats tier;
};

class ModelServer {
 public:
  struct Options {
    /// RecD serving path: convert batches to IKJTs and run the
    /// deduplicated forward. false = baseline KJT path.
    bool recd = true;
    /// Completion timestamps for latency accounting. Unset (replay
    /// mode): completion_us = Batch::formed_us, so latency is the
    /// deterministic batching delay.
    std::function<std::int64_t()> completion_clock;
  };

  /// `fleet`, `schema`, and `loaders` must outlive the server (the
  /// runner owns all three). `loaders` carries one DataLoaderConfig per
  /// zoo model, matching `options.recd` (IKJT groups present iff recd).
  /// Worker counts and queue capacity come from `fleet`. Call Start()
  /// before Submit(). Throws std::invalid_argument on a bad fleet or a
  /// loaders/models size mismatch.
  ModelServer(const FleetSpec& fleet, const storage::StorageSchema& schema,
              const std::vector<reader::DataLoaderConfig>& loaders,
              Options options);
  ~ModelServer();

  ModelServer(const ModelServer&) = delete;
  ModelServer& operator=(const ModelServer&) = delete;

  /// Spawns every lane's workers and blocks until every replica is
  /// constructed, so the first requests are not charged model-build
  /// time.
  void Start();

  /// Submits a formed batch to `model_id`'s lane. Blocks while that
  /// lane's queue is full. False once Shutdown began (any lane's
  /// worker failure closes every queue).
  bool Submit(std::size_t model_id, Batch batch);

  /// Closes every queue, drains every accepted batch (a lane whose
  /// queue still holds work finishes it before its workers exit), joins
  /// the workers, and rethrows the first worker exception, if any.
  /// Idempotent.
  void Shutdown();

  /// Scored requests across all lanes, sorted by request_id. Valid
  /// after Shutdown().
  [[nodiscard]] std::vector<ScoredRequest> TakeScored();

  /// Fleet-wide work counters: sum of every lane. Valid after
  /// Shutdown(). Assembled from the server's metrics() registry
  /// (`serve.*` counters labeled per model) plus the struct-valued
  /// op/tier merges (§14: the registry is the single source of truth
  /// for the scalar counters; this struct is a projection).
  [[nodiscard]] ServeWorkStats work_stats() const;
  /// One lane's work counters.
  [[nodiscard]] ServeWorkStats model_work_stats(std::size_t model_id) const;

  /// Fleet-wide request latency (merge of every lane's
  /// `serve.latency_us{model=...}` series).
  [[nodiscard]] common::Histogram latency_us() const;
  /// One lane's request latency histogram.
  [[nodiscard]] common::Histogram model_latency_us(
      std::size_t model_id) const;

  /// The server's metric registry (`serve.*` series, one per lane,
  /// labeled {model: spec.name}).
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  [[nodiscard]] std::size_t num_models() const { return lanes_.size(); }

 private:
  struct Lane {
    std::unique_ptr<common::Channel<Batch>> queue;
    std::size_t num_workers = 1;
    // Registry-backed work counters (workers add batched locals).
    obs::Counter* batches = nullptr;
    obs::Counter* requests = nullptr;
    obs::Counter* rows = nullptr;
    obs::HistogramMetric* latency = nullptr;
    // Struct-valued merges (op counters, tier stats, dedupe value
    // sums); guarded by mutex_.
    ServeWorkStats work;
  };

  void WorkerLoop(std::size_t model_id);
  void CloseAllQueues();

  const FleetSpec* fleet_;
  const storage::StorageSchema* schema_;
  const std::vector<reader::DataLoaderConfig>* loaders_;
  Options options_;

  std::vector<Lane> lanes_;
  std::vector<std::thread> workers_;
  std::size_t total_workers_ = 0;
  bool shutdown_done_ = false;

  mutable std::mutex mutex_;  // guards everything below
  std::condition_variable ready_cv_;
  std::size_t ready_workers_ = 0;
  std::vector<ScoredRequest> scored_;
  std::exception_ptr first_error_;

  obs::Registry metrics_;
};

}  // namespace recd::serve
