#include "serve/server_runner.h"

#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "core/pipeline.h"
#include "obs/trace.h"

namespace recd::serve {

namespace {

std::int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ServerRunner::ServerRunner(datagen::DatasetSpec dataset,
                           train::ModelConfig model, ServeOptions options)
    : dataset_(std::move(dataset)),
      model_(std::move(model)),
      options_(options),
      schema_(core::MakePipelineSchema(dataset_)) {
  QueryGenerator gen(dataset_, options_.query);
  trace_ = gen.Generate();
}

ServeResult ServerRunner::Run(const ServeConfig& config) {
  // The serving path reuses the training loader wholesale: same feature
  // groups, same preprocessing transforms (O4), same conversion code.
  auto recd_cfg = config.recd
                      ? core::RecdConfig::Full(
                            options_.query.candidates *
                            config.batcher.max_batch_requests)
                      : core::RecdConfig::Baseline(
                            options_.query.candidates *
                            config.batcher.max_batch_requests);
  const auto loader = core::MakePipelineLoader(model_, recd_cfg);

  // Clock zero is reset *after* Start() returns (replicas built), so no
  // request is ever charged model-build time. The shared_ptr keeps the
  // workers' completion_clock valid for the server's whole lifetime.
  auto start = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());

  ModelServer::Options server_options;
  server_options.num_workers = config.num_workers;
  server_options.recd = config.recd;
  server_options.model_seed = options_.model_seed;
  server_options.backend = options_.backend;
  server_options.channel_capacity = options_.batch_channel_capacity;
  if (config.pace_arrivals) {
    server_options.completion_clock = [start] {
      return MicrosSince(*start);
    };
  }
  ModelServer server(model_, schema_, loader, server_options);
  server.Start();
  *start = std::chrono::steady_clock::now();

  Batcher batcher(config.batcher);
  std::int64_t now = 0;
  bool accepting = true;
  auto submit = [&](Batch batch) {
    if (accepting && !server.Submit(std::move(batch))) accepting = false;
  };

  for (const auto& r : trace_) {
    if (!accepting) break;  // worker failure closed the queue
    if (config.pace_arrivals) {
      // Release the request at its arrival time, honoring any batching
      // deadline that expires while we wait.
      for (;;) {
        now = MicrosSince(*start);
        const auto deadline = batcher.deadline_us();
        if (deadline && now >= *deadline) {
          if (auto batch = batcher.PollExpired(now)) {
            submit(std::move(*batch));
          }
          continue;
        }
        if (now >= r.arrival_us) break;
        std::int64_t wake = r.arrival_us;
        if (deadline && *deadline < wake) wake = *deadline;
        std::this_thread::sleep_until(
            *start + std::chrono::microseconds(wake));
      }
    } else {
      now = r.arrival_us;
      // Drive the tracer's virtual clock from the replay arrival clock:
      // replayed-trace timestamps then come from the query trace, never
      // the host's wall clock (see obs/trace.h on what that does and
      // does not pin down).
      obs::Tracer::Global().SetVirtualTimeUs(now);
      // Stamp deadline flushes at the deadline itself — when a paced
      // server would emit them — not at the next arrival, so replay
      // latency is the exact batching delay (<= max_delay_us).
      const auto deadline = batcher.deadline_us();
      if (deadline && *deadline <= now) {
        if (auto batch = batcher.PollExpired(*deadline)) {
          submit(std::move(*batch));
        }
      }
    }
    for (auto& batch : batcher.Add(r, now)) submit(std::move(batch));
  }

  if (config.pace_arrivals) {
    now = MicrosSince(*start);
  } else if (const auto deadline = batcher.deadline_us()) {
    // End of trace: the pending batch would have flushed at its
    // deadline, so that is its virtual flush time.
    now = std::max(now, *deadline);
  }
  if (auto batch = batcher.Flush(now)) submit(std::move(*batch));
  server.Shutdown();  // drains accepted batches; rethrows worker errors

  const double wall_s =
      static_cast<double>(MicrosSince(*start)) / 1e6;

  ServeResult result;
  result.requests = server.TakeScored();
  result.obs_metrics = server.metrics().Snapshot();

  auto& s = result.stats;
  const auto& work = server.work_stats();
  const auto& bstats = batcher.stats();
  s.requests = work.requests;
  s.rows = work.rows;
  s.batches = work.batches;
  s.size_flushes = bstats.size_flushes;
  s.deadline_flushes = bstats.deadline_flushes;
  s.final_flushes = bstats.final_flushes;
  if (work.batches > 0) {
    s.mean_batch_requests =
        static_cast<double>(work.requests) / static_cast<double>(work.batches);
    s.mean_batch_rows =
        static_cast<double>(work.rows) / static_cast<double>(work.batches);
  }
  s.offered_qps = options_.query.qps;
  s.wall_s = wall_s;
  if (wall_s > 0) {
    s.achieved_qps = static_cast<double>(work.requests) / wall_s;
    s.rows_per_second = static_cast<double>(work.rows) / wall_s;
  }
  s.request_dedupe_factor =
      work.values_after > 0 ? work.values_before / work.values_after : 1.0;
  s.embedding_lookups = static_cast<double>(work.ops.lookups);
  s.flops = static_cast<double>(work.ops.flops);
  s.tier = work.tier;
  s.latency_us = server.latency_us();
  s.latency_mean_us = s.latency_us.mean();
  s.latency_p50_us = s.latency_us.Percentile(0.5);
  s.latency_p95_us = s.latency_us.Percentile(0.95);
  s.latency_p99_us = s.latency_us.Percentile(0.99);
  s.latency_max_us = s.latency_us.max();
  return result;
}

}  // namespace recd::serve
