#include "serve/server_runner.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/pipeline.h"
#include "obs/trace.h"

namespace recd::serve {

namespace {

std::int64_t MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void ValidateTraceRouting(const std::vector<Request>& trace,
                          const FleetSpec& fleet) {
  for (const auto& r : trace) {
    if (r.model_id >= fleet.num_models()) {
      throw std::invalid_argument(
          "ServerRunner: trace routes to model id " +
          std::to_string(r.model_id) + " but the fleet has only " +
          std::to_string(fleet.num_models()) + " model(s)");
    }
  }
}

}  // namespace

BatcherOptions RunPolicy::batcher_for(const FleetSpec& fleet,
                                      std::size_t model_id) const {
  if (const auto it = batcher_overrides.find(model_id);
      it != batcher_overrides.end()) {
    return it->second;
  }
  if (batcher.has_value()) return *batcher;
  return fleet.models.at(model_id).batcher;
}

ServerRunner::ServerRunner(TraceSpec trace, FleetSpec fleet)
    : spec_(std::move(trace)),
      fleet_(std::move(fleet)),
      schema_(core::MakePipelineSchema(spec_.dataset)) {
  fleet_.Validate();
  QueryGenerator gen(spec_);
  trace_ = gen.Generate();
  ValidateTraceRouting(trace_, fleet_);
}

ServerRunner::ServerRunner(TraceSpec spec, FleetSpec fleet,
                           std::vector<Request> trace)
    : spec_(std::move(spec)),
      fleet_(std::move(fleet)),
      schema_(core::MakePipelineSchema(spec_.dataset)),
      trace_(std::move(trace)) {
  fleet_.Validate();
  ValidateTraceRouting(trace_, fleet_);
}

ServeResult ServerRunner::Run(const RunPolicy& policy) {
  const std::size_t num_models = fleet_.num_models();

  std::vector<BatcherOptions> bopts;
  bopts.reserve(num_models);
  for (std::size_t m = 0; m < num_models; ++m) {
    bopts.push_back(policy.batcher_for(fleet_, m));
  }

  // The serving path reuses the training loader wholesale: same feature
  // groups, same preprocessing transforms (O4), same conversion code.
  // The batch-size hint is the lane's worst case: the widest request
  // the trace can draw times its batcher's size cap.
  const std::size_t worst_candidates =
      spec_.query.size == SizeShape::kHeavyTailed ? spec_.query.max_candidates
                                                  : spec_.query.candidates;
  std::vector<reader::DataLoaderConfig> loaders;
  loaders.reserve(num_models);
  for (std::size_t m = 0; m < num_models; ++m) {
    const std::size_t hint = std::max<std::size_t>(
        1, worst_candidates * bopts[m].max_batch_requests);
    const auto recd_cfg = policy.recd ? core::RecdConfig::Full(hint)
                                      : core::RecdConfig::Baseline(hint);
    loaders.push_back(
        core::MakePipelineLoader(fleet_.models[m].config, recd_cfg));
  }

  // Clock zero is reset *after* Start() returns (replicas built), so no
  // request is ever charged model-build time. The shared_ptr keeps the
  // workers' completion_clock valid for the server's whole lifetime.
  auto start = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());

  ModelServer::Options server_options;
  server_options.recd = policy.recd;
  if (policy.pace_arrivals) {
    server_options.completion_clock = [start] { return MicrosSince(*start); };
  }
  ModelServer server(fleet_, schema_, loaders, server_options);
  server.Start();
  *start = std::chrono::steady_clock::now();

  std::vector<Batcher> batchers;
  batchers.reserve(num_models);
  for (std::size_t m = 0; m < num_models; ++m) batchers.emplace_back(bopts[m]);

  bool accepting = true;
  auto submit = [&](std::size_t m, Batch batch) {
    if (accepting && !server.Submit(m, std::move(batch))) accepting = false;
  };
  // Earliest pending deadline across lanes; ties break toward the lower
  // model id, giving replay mode one global (deadline, model) order.
  auto earliest = [&]() -> std::optional<std::pair<std::int64_t, std::size_t>> {
    std::optional<std::pair<std::int64_t, std::size_t>> best;
    for (std::size_t m = 0; m < num_models; ++m) {
      const auto d = batchers[m].deadline_us();
      if (d && (!best || *d < best->first)) best.emplace(*d, m);
    }
    return best;
  };

  std::int64_t now = 0;
  for (const auto& r : trace_) {
    if (!accepting) break;  // worker failure closed the queues
    if (policy.pace_arrivals) {
      // Release the request at its arrival time, honoring any lane's
      // batching deadline that expires while we wait.
      for (;;) {
        now = MicrosSince(*start);
        const auto due = earliest();
        if (due && now >= due->first) {
          if (auto batch = batchers[due->second].PollExpired(now)) {
            submit(due->second, std::move(*batch));
          }
          continue;
        }
        if (now >= r.arrival_us) break;
        std::int64_t wake = r.arrival_us;
        if (due && due->first < wake) wake = due->first;
        std::this_thread::sleep_until(*start +
                                      std::chrono::microseconds(wake));
      }
    } else {
      now = r.arrival_us;
      // Fire every window that expires at or before this arrival, in
      // global deadline order, each stamped at its own deadline — when
      // a paced server would emit it, not at the next arrival — so
      // replay latency is the exact batching delay (<= max_delay_us)
      // regardless of which lane the next arrival feeds.
      while (const auto due = earliest()) {
        if (due->first > now) break;
        // Drive the tracer's virtual clock from the replay deadline /
        // arrival clock: replayed-trace timestamps then come from the
        // query trace, never the host's wall clock (see obs/trace.h).
        obs::Tracer::Global().SetVirtualTimeUs(due->first);
        if (auto batch = batchers[due->second].PollExpired(due->first)) {
          submit(due->second, std::move(*batch));
        }
      }
      obs::Tracer::Global().SetVirtualTimeUs(now);
    }
    for (auto& batch : batchers[r.model_id].Add(r, now)) {
      submit(r.model_id, std::move(batch));
    }
  }

  // End of trace: flush every lane's pending batch.
  if (policy.pace_arrivals) {
    now = MicrosSince(*start);
    for (std::size_t m = 0; m < num_models; ++m) {
      if (auto batch = batchers[m].Flush(now)) submit(m, std::move(*batch));
    }
  } else {
    // Replay: each pending batch would have flushed at its own deadline
    // (always past that lane's last arrival — Add pre-flushes expired
    // windows), so that is its virtual flush time; fire in global
    // deadline order like the in-trace pump.
    while (const auto due = earliest()) {
      obs::Tracer::Global().SetVirtualTimeUs(due->first);
      if (auto batch = batchers[due->second].Flush(due->first)) {
        submit(due->second, std::move(*batch));
      }
    }
  }
  server.Shutdown();  // drains accepted batches; rethrows worker errors

  const double wall_s = static_cast<double>(MicrosSince(*start)) / 1e6;

  ServeResult result;
  result.requests = server.TakeScored();
  result.obs_metrics = server.metrics().Snapshot();

  const auto fill = [&](ServeStats& s, const ServeWorkStats& work,
                        const BatcherStats& bstats, common::Histogram latency,
                        double offered_qps) {
    s.requests = work.requests;
    s.rows = work.rows;
    s.batches = work.batches;
    s.size_flushes = bstats.size_flushes;
    s.deadline_flushes = bstats.deadline_flushes;
    s.final_flushes = bstats.final_flushes;
    if (work.batches > 0) {
      s.mean_batch_requests = static_cast<double>(work.requests) /
                              static_cast<double>(work.batches);
      s.mean_batch_rows =
          static_cast<double>(work.rows) / static_cast<double>(work.batches);
    }
    s.offered_qps = offered_qps;
    s.wall_s = wall_s;
    if (wall_s > 0) {
      s.achieved_qps = static_cast<double>(work.requests) / wall_s;
      s.rows_per_second = static_cast<double>(work.rows) / wall_s;
    }
    s.request_dedupe_factor =
        work.values_after > 0 ? work.values_before / work.values_after : 1.0;
    s.embedding_lookups = static_cast<double>(work.ops.lookups);
    s.flops = static_cast<double>(work.ops.flops);
    s.tier = work.tier;
    s.latency_us = std::move(latency);
  };

  // Per-model offered load: the model's share of the trace at the
  // trace's offered QPS (routing is part of the trace, not the run).
  std::vector<std::size_t> routed(num_models, 0);
  for (const auto& r : trace_) routed[r.model_id] += 1;

  BatcherStats fleet_bstats;
  result.model_stats.resize(num_models);
  for (std::size_t m = 0; m < num_models; ++m) {
    const auto& bstats = batchers[m].stats();
    fleet_bstats.size_flushes += bstats.size_flushes;
    fleet_bstats.deadline_flushes += bstats.deadline_flushes;
    fleet_bstats.final_flushes += bstats.final_flushes;
    const double offered =
        trace_.empty() ? 0.0
                       : spec_.query.qps * static_cast<double>(routed[m]) /
                             static_cast<double>(trace_.size());
    fill(result.model_stats[m], server.model_work_stats(m), bstats,
         server.model_latency_us(m), offered);
  }
  fill(result.stats, server.work_stats(), fleet_bstats, server.latency_us(),
       spec_.query.qps);
  return result;
}

}  // namespace recd::serve
