#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "serve/query_gen.h"

namespace recd::serve {

ServiceModel ServiceModel::FromMeasured(double rows_per_second,
                                        double mean_batch_rows,
                                        double mean_batch_us) {
  if (rows_per_second <= 0 || mean_batch_rows <= 0 || mean_batch_us <= 0) {
    throw std::invalid_argument(
        "ServiceModel::FromMeasured: all measurements must be > 0");
  }
  ServiceModel model;
  model.us_per_row = 1e6 / rows_per_second;
  model.batch_overhead_us =
      std::max(0.0, mean_batch_us - model.us_per_row * mean_batch_rows);
  return model;
}

LaneSimResult SimulateLane(const std::vector<Request>& trace,
                           const BatcherOptions& options, std::size_t workers,
                           const ServiceModel& service) {
  if (workers == 0) {
    throw std::invalid_argument("SimulateLane: workers must be >= 1");
  }
  Batcher batcher(options);
  // free_at[w]: when server w finishes its current batch. Earliest-free
  // dispatch with a fixed scan order keeps the sim deterministic.
  std::vector<double> free_at(workers, 0.0);
  LaneSimResult result;

  const auto serve_batch = [&](const Batch& batch) {
    auto slot = std::min_element(free_at.begin(), free_at.end());
    const double start =
        std::max(*slot, static_cast<double>(batch.formed_us));
    const double done = start + service.ServiceUs(batch.rows());
    *slot = done;
    const auto done_us = static_cast<std::int64_t>(std::llround(done));
    result.makespan_us = std::max(result.makespan_us, done_us);
    result.batches += 1;
    for (const auto& r : batch.requests) {
      result.requests += 1;
      result.latency_us.Add(
          std::max<std::int64_t>(1, done_us - r.arrival_us));
    }
  };

  // Same replay discipline as the runner's pump: deadline flushes fire
  // at their deadlines, the trailing batch at its own deadline.
  for (const auto& r : trace) {
    if (const auto d = batcher.deadline_us(); d && *d <= r.arrival_us) {
      if (auto batch = batcher.PollExpired(*d)) serve_batch(*batch);
    }
    for (auto& batch : batcher.Add(r, r.arrival_us)) serve_batch(batch);
  }
  if (const auto d = batcher.deadline_us()) {
    if (auto batch = batcher.Flush(*d)) serve_batch(*batch);
  }
  return result;
}

namespace {

// (batch size cap, window, workers) — the climber's search point.
using Config = std::tuple<std::size_t, std::int64_t, std::size_t>;

// Lexicographic objective: meet the SLA first, then shed workers, then
// shave p99. Strictly-less comparisons make plateau behavior (and so
// the whole climb) deterministic.
using Objective = std::tuple<double, std::size_t, double>;

Objective ObjectiveOf(double p99, std::size_t workers, double sla) {
  return {std::max(0.0, p99 - sla), workers, p99};
}

}  // namespace

LaneTuning TuneLane(const std::vector<Request>& trace,
                    const ServiceModel& service, const TuneOptions& options,
                    BatcherOptions seed_batcher, std::size_t seed_workers) {
  if (options.max_workers == 0 || options.max_batch_requests == 0 ||
      options.max_steps == 0) {
    throw std::invalid_argument("TuneLane: bounds must be >= 1");
  }
  if (options.min_delay_us < 0 ||
      options.min_delay_us > options.max_delay_us) {
    throw std::invalid_argument(
        "TuneLane: need 0 <= min_delay_us <= max_delay_us");
  }
  const auto clamp_config = [&](Config c) -> Config {
    auto& [batch, delay, workers] = c;
    batch = std::clamp<std::size_t>(batch, 1, options.max_batch_requests);
    delay = std::clamp<std::int64_t>(delay, options.min_delay_us,
                                     options.max_delay_us);
    workers = std::clamp<std::size_t>(workers, 1, options.max_workers);
    return c;
  };

  std::map<Config, double> cache;
  std::size_t evaluations = 0;
  const auto eval = [&](const Config& c) {
    if (const auto it = cache.find(c); it != cache.end()) return it->second;
    BatcherOptions b;
    b.max_batch_requests = std::get<0>(c);
    b.max_delay_us = std::get<1>(c);
    const double p99 =
        SimulateLane(trace, b, std::get<2>(c), service).p99_us();
    cache.emplace(c, p99);
    evaluations += 1;
    return p99;
  };

  Config current = clamp_config(
      {seed_batcher.max_batch_requests, seed_batcher.max_delay_us,
       seed_workers});
  double current_p99 = eval(current);

  for (std::size_t step = 0; step < options.max_steps; ++step) {
    const auto [batch, delay, workers] = current;
    // Fixed neighbor order (first strict winner takes ties).
    const Config neighbors[] = {
        {batch * 2, delay, workers},
        {batch / 2, delay, workers},
        {batch, delay > 0 ? delay * 2 : 250, workers},
        {batch, delay / 2, workers},
        {batch, delay, workers + 1},
        {batch, delay, workers > 1 ? workers - 1 : 1},
    };
    Config best = current;
    double best_p99 = current_p99;
    auto best_obj =
        ObjectiveOf(current_p99, std::get<2>(current), options.sla_p99_us);
    for (const auto& raw : neighbors) {
      const Config n = clamp_config(raw);
      if (n == current) continue;
      const double p99 = eval(n);
      const auto obj = ObjectiveOf(p99, std::get<2>(n), options.sla_p99_us);
      if (obj < best_obj) {
        best = n;
        best_p99 = p99;
        best_obj = obj;
      }
    }
    if (best == current) break;  // local optimum
    current = best;
    current_p99 = best_p99;
  }

  LaneTuning tuning;
  tuning.batcher.max_batch_requests = std::get<0>(current);
  tuning.batcher.max_delay_us = std::get<1>(current);
  tuning.workers = std::get<2>(current);
  tuning.p99_us = current_p99;
  tuning.meets_sla = current_p99 <= options.sla_p99_us;
  tuning.evaluations = evaluations;
  return tuning;
}

std::map<std::size_t, BatcherOptions> FleetTuning::batcher_overrides() const {
  std::map<std::size_t, BatcherOptions> overrides;
  for (std::size_t m = 0; m < lanes.size(); ++m) {
    overrides.emplace(m, lanes[m].batcher);
  }
  return overrides;
}

std::vector<std::size_t> FleetTuning::workers() const {
  std::vector<std::size_t> counts;
  counts.reserve(lanes.size());
  for (const auto& lane : lanes) counts.push_back(lane.workers);
  return counts;
}

FleetTuning TuneFleet(const std::vector<Request>& trace,
                      const FleetSpec& fleet, const ServiceModel& service,
                      const TuneOptions& options) {
  fleet.Validate();
  FleetTuning tuning;
  tuning.lanes.reserve(fleet.num_models());
  for (std::size_t m = 0; m < fleet.num_models(); ++m) {
    tuning.lanes.push_back(TuneLane(SubTraceForModel(trace, m), service,
                                    options, fleet.models[m].batcher,
                                    fleet.workers_for(m)));
  }
  return tuning;
}

std::vector<Request> ScaleTrace(std::vector<Request> trace,
                                double load_factor) {
  if (!(load_factor > 0)) {
    throw std::invalid_argument("ScaleTrace: load_factor must be > 0");
  }
  for (auto& r : trace) {
    r.arrival_us = static_cast<std::int64_t>(
        std::llround(static_cast<double>(r.arrival_us) / load_factor));
  }
  return trace;
}

}  // namespace recd::serve
