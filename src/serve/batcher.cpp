#include "serve/batcher.h"

#include <stdexcept>
#include <utility>

namespace recd::serve {

Batcher::Batcher(BatcherOptions options) : options_(options) {
  if (options_.max_batch_requests == 0) {
    throw std::invalid_argument("Batcher: max_batch_requests must be >= 1");
  }
  if (options_.max_delay_us < 0) {
    throw std::invalid_argument("Batcher: max_delay_us must be >= 0");
  }
}

void Batcher::CheckClock(std::int64_t now_us) {
  if (now_us < last_now_us_) {
    throw std::invalid_argument("Batcher: clock went backwards");
  }
  last_now_us_ = now_us;
}

Batch Batcher::Cut(std::int64_t now_us, FlushReason reason) {
  Batch batch;
  batch.requests = std::move(pending_);
  pending_.clear();
  batch.formed_us = now_us;
  batch.reason = reason;
  stats_.batches += 1;
  switch (reason) {
    case FlushReason::kSize:
      stats_.size_flushes += 1;
      break;
    case FlushReason::kDeadline:
      stats_.deadline_flushes += 1;
      break;
    case FlushReason::kFinal:
      stats_.final_flushes += 1;
      break;
  }
  return batch;
}

std::vector<Batch> Batcher::Add(Request request, std::int64_t now_us) {
  CheckClock(now_us);
  std::vector<Batch> out;
  if (!pending_.empty() &&
      now_us >= oldest_admit_us_ + options_.max_delay_us) {
    // The forming batch's window expired before this arrival: it must
    // not wait for the newcomer.
    out.push_back(Cut(now_us, FlushReason::kDeadline));
  }
  if (pending_.empty()) oldest_admit_us_ = now_us;
  stats_.requests += 1;
  stats_.rows += request.rows.size();
  pending_.push_back(std::move(request));
  if (pending_.size() >= options_.max_batch_requests) {
    out.push_back(Cut(now_us, FlushReason::kSize));
  } else if (options_.max_delay_us == 0) {
    // Degenerate no-batching mode: flush every admission immediately.
    out.push_back(Cut(now_us, FlushReason::kDeadline));
  }
  return out;
}

std::optional<Batch> Batcher::PollExpired(std::int64_t now_us) {
  CheckClock(now_us);
  if (pending_.empty() ||
      now_us < oldest_admit_us_ + options_.max_delay_us) {
    return std::nullopt;
  }
  return Cut(now_us, FlushReason::kDeadline);
}

std::optional<std::int64_t> Batcher::deadline_us() const {
  if (pending_.empty()) return std::nullopt;
  return oldest_admit_us_ + options_.max_delay_us;
}

std::optional<Batch> Batcher::Flush(std::int64_t now_us) {
  CheckClock(now_us);
  if (pending_.empty()) return std::nullopt;
  return Cut(now_us, FlushReason::kFinal);
}

}  // namespace recd::serve
