// SLA-aware dynamic request batcher (DeepRecSys-style).
//
// Coalesces in-flight ranking requests into model batches under two
// knobs: `max_batch_requests` (flush when the forming batch is full) and
// `max_delay_us` (flush when the oldest admitted request has waited out
// its batching window — the SLA lever: a wider window buys bigger
// batches and more cross-request dedupe at the cost of queueing delay).
//
// The batcher is single-threaded and clock-explicit: every call takes
// `now_us` on one non-decreasing timeline supplied by the caller — the
// wall clock in paced serving, the request arrival clock in replay mode.
// That makes batch composition a pure function of (trace, options) in
// replay mode, which the determinism tests exploit, and makes every
// flush/SLA edge case drivable from a unit test without sleeping.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace recd::serve {

struct BatcherOptions {
  /// Requests per batch before a size flush.
  std::size_t max_batch_requests = 8;
  /// Batching window: a batch flushes once its oldest request has been
  /// pending this long. 0 degenerates to no batching (every Add
  /// flushes a single-request batch immediately).
  std::int64_t max_delay_us = 2000;
};

enum class FlushReason : std::uint8_t { kSize, kDeadline, kFinal };

/// A formed batch on its way to the model server.
struct Batch {
  std::vector<Request> requests;
  /// The batcher clock value at flush time; replay-mode latency is
  /// formed_us - arrival_us (deterministic queueing delay).
  std::int64_t formed_us = 0;
  FlushReason reason = FlushReason::kSize;

  [[nodiscard]] std::size_t rows() const {
    std::size_t n = 0;
    for (const auto& r : requests) n += r.rows.size();
    return n;
  }
};

struct BatcherStats {
  std::size_t requests = 0;
  std::size_t rows = 0;
  std::size_t batches = 0;
  std::size_t size_flushes = 0;
  std::size_t deadline_flushes = 0;
  std::size_t final_flushes = 0;
};

class Batcher {
 public:
  explicit Batcher(BatcherOptions options);

  /// Admits a request at `now_us`. Returns the batches this admission
  /// caused, in submit order: a deadline flush of the forming batch if
  /// its window has expired (deadline <= now_us — an arrival landing
  /// exactly at the deadline starts the *next* batch), then a size
  /// flush if the admission filled the batch (so at most two). Throws
  /// std::invalid_argument if `now_us` goes backwards.
  [[nodiscard]] std::vector<Batch> Add(Request request, std::int64_t now_us);

  /// Deadline check between admissions (the paced pump calls this when
  /// the window expires before the next arrival). Returns the forming
  /// batch iff its deadline has passed at `now_us`.
  [[nodiscard]] std::optional<Batch> PollExpired(std::int64_t now_us);

  /// When the forming batch must flush (oldest admission + max_delay_us);
  /// nullopt when nothing is pending. Lets the pump sleep precisely.
  [[nodiscard]] std::optional<std::int64_t> deadline_us() const;

  /// End-of-stream flush of whatever is pending.
  [[nodiscard]] std::optional<Batch> Flush(std::int64_t now_us);

  [[nodiscard]] std::size_t pending_requests() const {
    return pending_.size();
  }
  [[nodiscard]] const BatcherStats& stats() const { return stats_; }

 private:
  [[nodiscard]] Batch Cut(std::int64_t now_us, FlushReason reason);
  void CheckClock(std::int64_t now_us);

  BatcherOptions options_;
  std::vector<Request> pending_;
  std::int64_t oldest_admit_us_ = 0;  // valid while pending_ is non-empty
  std::int64_t last_now_us_ = 0;
  BatcherStats stats_;
};

}  // namespace recd::serve
