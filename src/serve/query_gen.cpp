#include "serve/query_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "datagen/generator.h"

namespace recd::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Tracks the bursty shape's on/off dwell state along the virtual clock.
struct BurstState {
  bool on = true;
  double dwell_end_us = 0;
};

double BurstyRate(const QueryGenOptions& o, common::Rng& rng,
                  double clock_us, BurstState& state) {
  while (clock_us >= state.dwell_end_us) {
    state.on = !state.on;
    const double mean =
        state.on ? o.burst_on_mean_us : o.burst_off_mean_us;
    state.dwell_end_us += rng.Exponential(mean);
  }
  return o.qps * (state.on ? o.burst_high_x : o.burst_low_x);
}

double DiurnalRate(const QueryGenOptions& o, double clock_us) {
  const double phase = 2.0 * kPi * clock_us / o.diurnal_period_us;
  const double swing = (1.0 + std::sin(phase)) / 2.0;
  return o.qps * (o.diurnal_trough + (1.0 - o.diurnal_trough) * swing);
}

std::size_t DrawCandidates(const QueryGenOptions& o, common::Rng& rng) {
  if (o.size == SizeShape::kFixed) return o.candidates;
  // Bounded Pareto: K = candidates * U^(-1/alpha), capped. U in [0, 1)
  // is flipped to (0, 1] so the tail draw is finite.
  const double u = 1.0 - rng.UniformReal();
  const double k = static_cast<double>(o.candidates) *
                   std::pow(u, -1.0 / o.size_tail_alpha);
  const double capped =
      std::min(k, static_cast<double>(o.max_candidates));
  return std::max<std::size_t>(
      o.candidates, static_cast<std::size_t>(std::llround(capped)));
}

}  // namespace

QueryGenerator::QueryGenerator(TraceSpec spec) : spec_(std::move(spec)) {
  const auto& o = spec_.query;
  if (o.num_requests == 0) {
    throw std::invalid_argument("QueryGenerator: num_requests must be >= 1");
  }
  if (o.candidates == 0) {
    throw std::invalid_argument("QueryGenerator: candidates must be >= 1");
  }
  if (!(o.qps > 0)) {
    throw std::invalid_argument("QueryGenerator: qps must be positive");
  }
  if (o.num_models == 0) {
    throw std::invalid_argument("QueryGenerator: num_models must be >= 1");
  }
  if (o.size == SizeShape::kHeavyTailed) {
    if (o.max_candidates < o.candidates) {
      throw std::invalid_argument(
          "QueryGenerator: max_candidates must be >= candidates");
    }
    if (!(o.size_tail_alpha > 0)) {
      throw std::invalid_argument(
          "QueryGenerator: size_tail_alpha must be positive");
    }
  }
  if (o.arrival == ArrivalShape::kBursty &&
      (!(o.burst_high_x > 0) || !(o.burst_low_x > 0) ||
       !(o.burst_on_mean_us > 0) || !(o.burst_off_mean_us > 0))) {
    throw std::invalid_argument(
        "QueryGenerator: bursty knobs must be positive");
  }
  if (o.arrival == ArrivalShape::kDiurnal &&
      (!(o.diurnal_period_us > 0) || o.diurnal_trough <= 0 ||
       o.diurnal_trough > 1)) {
    throw std::invalid_argument(
        "QueryGenerator: diurnal knobs out of range");
  }
  if (spec_.dataset.concurrent_sessions == 0) {
    throw std::invalid_argument(
        "QueryGenerator: concurrent_sessions must be positive");
  }
}

std::vector<Request> QueryGenerator::Generate() {
  const auto& o = spec_.query;
  common::Rng rng(spec_.dataset.seed);
  std::vector<datagen::SessionState> active;
  std::int64_t next_session_id = 1;
  auto refill = [&] {
    while (active.size() < spec_.dataset.concurrent_sessions) {
      const std::int64_t size = common::SampleSessionSize(
          rng, spec_.dataset.mean_session_size);
      active.emplace_back(spec_.dataset, rng, next_session_id++, size);
    }
  };

  BurstState burst;
  std::vector<Request> out;
  out.reserve(o.num_requests);
  double clock_us = 0;
  for (std::size_t i = 0; i < o.num_requests; ++i) {
    refill();
    switch (o.arrival) {
      case ArrivalShape::kSteady: {
        const double mean_gap_us = 1e6 / o.qps;
        clock_us += o.poisson_arrivals ? rng.Exponential(mean_gap_us)
                                       : mean_gap_us;
        break;
      }
      case ArrivalShape::kBursty:
        clock_us += rng.Exponential(1e6 / BurstyRate(o, rng, clock_us,
                                                     burst));
        break;
      case ArrivalShape::kDiurnal:
        clock_us += rng.Exponential(1e6 / DiurnalRate(o, clock_us));
        break;
    }
    const std::size_t pick = static_cast<std::size_t>(
        rng.Uniform(0, static_cast<std::int64_t>(active.size()) - 1));
    auto& session = active[pick];

    Request r;
    r.request_id = static_cast<std::int64_t>(i) + 1;
    r.user_id = session.session_id();
    // Routing consumes a draw only for real zoos, so single-model
    // traces are byte-identical to pre-zoo ones (same RNG stream).
    r.model_id = o.num_models > 1
                     ? static_cast<std::size_t>(rng.Uniform(
                           0, static_cast<std::int64_t>(o.num_models) - 1))
                     : 0;
    r.arrival_us = static_cast<std::int64_t>(std::llround(clock_us));
    const std::size_t candidates = DrawCandidates(o, rng);
    auto logs = session.NextRequest(rng, r.request_id, r.arrival_us,
                                    candidates);
    r.rows.reserve(logs.size());
    for (auto& log : logs) {
      datagen::Sample row;
      row.request_id = log.request_id;
      row.session_id = log.session_id;
      row.timestamp = log.timestamp;
      row.label = 0;  // serving has no outcome yet
      row.dense = std::move(log.dense);
      row.sparse = std::move(log.sparse);
      r.rows.push_back(std::move(row));
    }
    out.push_back(std::move(r));

    if (session.remaining() == 0) {
      std::swap(active[pick], active.back());
      active.pop_back();
    }
  }
  return out;
}

std::vector<Request> SubTraceForModel(const std::vector<Request>& trace,
                                      std::size_t model_id) {
  std::vector<Request> out;
  for (const auto& r : trace) {
    if (r.model_id != model_id) continue;
    out.push_back(r);
    out.back().model_id = 0;
  }
  return out;
}

}  // namespace recd::serve
