#include "serve/query_gen.h"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "datagen/generator.h"

namespace recd::serve {

QueryGenerator::QueryGenerator(datagen::DatasetSpec spec,
                               QueryGenOptions options)
    : spec_(std::move(spec)), options_(options) {
  if (options_.num_requests == 0) {
    throw std::invalid_argument("QueryGenerator: num_requests must be >= 1");
  }
  if (options_.candidates == 0) {
    throw std::invalid_argument("QueryGenerator: candidates must be >= 1");
  }
  if (!(options_.qps > 0)) {
    throw std::invalid_argument("QueryGenerator: qps must be positive");
  }
  if (spec_.concurrent_sessions == 0) {
    throw std::invalid_argument(
        "QueryGenerator: concurrent_sessions must be positive");
  }
}

std::vector<Request> QueryGenerator::Generate() {
  common::Rng rng(spec_.seed);
  std::vector<datagen::SessionState> active;
  std::int64_t next_session_id = 1;
  auto refill = [&] {
    while (active.size() < spec_.concurrent_sessions) {
      const std::int64_t size =
          common::SampleSessionSize(rng, spec_.mean_session_size);
      active.emplace_back(spec_, rng, next_session_id++, size);
    }
  };

  const double mean_gap_us = 1e6 / options_.qps;
  std::vector<Request> out;
  out.reserve(options_.num_requests);
  double clock_us = 0;
  for (std::size_t i = 0; i < options_.num_requests; ++i) {
    refill();
    clock_us += options_.poisson_arrivals ? rng.Exponential(mean_gap_us)
                                          : mean_gap_us;
    const std::size_t pick = static_cast<std::size_t>(
        rng.Uniform(0, static_cast<std::int64_t>(active.size()) - 1));
    auto& session = active[pick];

    Request r;
    r.request_id = static_cast<std::int64_t>(i) + 1;
    r.user_id = session.session_id();
    r.arrival_us = static_cast<std::int64_t>(std::llround(clock_us));
    auto logs = session.NextRequest(rng, r.request_id, r.arrival_us,
                                    options_.candidates);
    r.rows.reserve(logs.size());
    for (auto& log : logs) {
      datagen::Sample row;
      row.request_id = log.request_id;
      row.session_id = log.session_id;
      row.timestamp = log.timestamp;
      row.label = 0;  // serving has no outcome yet
      row.dense = std::move(log.dense);
      row.sparse = std::move(log.sparse);
      r.rows.push_back(std::move(row));
    }
    out.push_back(std::move(r));

    if (session.remaining() == 0) {
      std::swap(active[pick], active.back());
      active.pop_back();
    }
  }
  return out;
}

}  // namespace recd::serve
