// Offline tail-latency scheduler (DeepRecSys-style).
//
// DeepRecSys' scheduler picks per-model batching and parallelism by
// hill-climbing a latency/throughput objective against recorded
// traffic. We reproduce that shape offline: replay a model's sub-trace
// through its Batcher (the real one — same flush rules as serving) and
// a deterministic discrete-event queue of `workers` identical servers
// whose per-batch service time comes from a two-parameter ServiceModel.
// The climber then walks (max_batch_requests, max_delay_us, workers)
// to meet a p99 SLA with the fewest workers.
//
// Everything here is pure arithmetic over the trace — no threads, no
// clocks — so a tuning run is a deterministic function of
// (trace, ServiceModel, TuneOptions, seed config): the property the
// scheduler determinism test asserts. The output plugs straight back
// into the serving spec: LaneTuning::batcher per model via
// RunPolicy::batcher_overrides, worker counts via FleetSpec::workers.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/histogram.h"
#include "serve/batcher.h"
#include "serve/model_zoo.h"
#include "serve/request.h"

namespace recd::serve {

/// Two-parameter cost model of one worker scoring one batch:
/// service_us = batch_overhead_us + us_per_row * rows. Calibrate from a
/// measured serving run (see FromMeasured) so simulated latencies track
/// the host.
struct ServiceModel {
  double batch_overhead_us = 200.0;
  double us_per_row = 25.0;

  [[nodiscard]] double ServiceUs(std::size_t rows) const {
    return batch_overhead_us + us_per_row * static_cast<double>(rows);
  }

  /// Fits the model to a measured run: `rows_per_second` from a
  /// saturated serving run pins the per-row slope; the overhead is the
  /// residual of the measured mean batch time over the slope's share.
  /// Both inputs must be > 0.
  [[nodiscard]] static ServiceModel FromMeasured(double rows_per_second,
                                                 double mean_batch_rows,
                                                 double mean_batch_us);
};

/// One simulated serving run of a single lane.
struct LaneSimResult {
  std::size_t requests = 0;
  std::size_t batches = 0;
  /// Per-request latency (µs): completion - arrival, where completion
  /// comes from the W-server queue. Same floor (>= 1) as the server.
  common::Histogram latency_us;
  /// Completion time of the last batch — the simulated makespan.
  std::int64_t makespan_us = 0;

  [[nodiscard]] double p99_us() const { return latency_us.Percentile(0.99); }
};

/// Replays `trace` (one lane's requests, arrival-ordered) through a
/// Batcher with `options`, then services each formed batch on the
/// earliest-free of `workers` identical servers under `service`.
/// Deadline flushes fire at their deadlines, exactly like the replay
/// pump. Open-loop: queue backpressure onto the batcher is not modeled.
/// Throws std::invalid_argument when `workers` is 0.
[[nodiscard]] LaneSimResult SimulateLane(const std::vector<Request>& trace,
                                         const BatcherOptions& options,
                                         std::size_t workers,
                                         const ServiceModel& service);

/// Hill-climber bounds and objective.
struct TuneOptions {
  /// The p99 SLA (µs) the climber tries to meet.
  double sla_p99_us = 20'000;
  std::size_t max_workers = 8;
  std::size_t max_batch_requests = 64;
  std::int64_t max_delay_us = 50'000;
  /// Floor for the batching window. The ServiceModel is calibrated per
  /// lane in isolation, so it understates what degenerate per-request
  /// batching costs a contended host (dispatch churn, lost cross-request
  /// dedupe); a small floor keeps the climber out of that corner.
  std::int64_t min_delay_us = 0;
  /// Climb steps (each step evaluates every neighbor of the current
  /// config; cached configs are not re-simulated).
  std::size_t max_steps = 32;
};

/// A tuned lane configuration.
struct LaneTuning {
  BatcherOptions batcher;
  std::size_t workers = 1;
  /// Simulated p99 of the tuned config over the lane's sub-trace.
  double p99_us = 0;
  bool meets_sla = false;
  /// Distinct configs simulated while climbing.
  std::size_t evaluations = 0;
};

/// Tunes one lane by steepest-descent hill climbing from
/// (`seed_batcher`, `seed_workers`). Neighbors halve/double the batch
/// size and window and step workers by one; the objective is
/// lexicographic — SLA violation first, then fewer workers, then lower
/// p99, so the climber spends workers only when the SLA demands them.
/// Deterministic given its inputs.
[[nodiscard]] LaneTuning TuneLane(const std::vector<Request>& trace,
                                  const ServiceModel& service,
                                  const TuneOptions& options,
                                  BatcherOptions seed_batcher,
                                  std::size_t seed_workers = 1);

/// A full-fleet tuning: one LaneTuning per zoo model.
struct FleetTuning {
  std::vector<LaneTuning> lanes;

  /// The per-model overrides for RunPolicy::batcher_overrides.
  [[nodiscard]] std::map<std::size_t, BatcherOptions> batcher_overrides()
      const;
  /// The per-model worker counts for FleetSpec::workers.
  [[nodiscard]] std::vector<std::size_t> workers() const;
};

/// Tunes every lane of `fleet` against its sub-trace of `trace`
/// (SubTraceForModel), seeding each climb from the fleet's own batcher
/// defaults and worker counts.
[[nodiscard]] FleetTuning TuneFleet(const std::vector<Request>& trace,
                                    const FleetSpec& fleet,
                                    const ServiceModel& service,
                                    const TuneOptions& options);

/// `trace` with arrivals compressed by `load_factor` (> 1 = hotter:
/// the same requests offered proportionally faster). Rows, routing, and
/// ordering are untouched, so scores are unchanged — only the clock
/// scales. Used to sweep a recorded trace across offered loads.
[[nodiscard]] std::vector<Request> ScaleTrace(std::vector<Request> trace,
                                              double load_factor);

}  // namespace recd::serve
