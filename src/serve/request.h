// Online serving request types (docs/ARCHITECTURE.md §9).
//
// A ranking request carries one user's features replicated across K
// candidate items: every row shares the user-class feature lists exactly,
// so the RecD observation — user features duplicate across a session's
// samples — holds *within* a request at inference time, and across the
// concurrent requests of one user that a dynamic batcher coalesces.
// Rows are datagen::Samples so the serving path converts batches through
// the exact reader::BatchPipeline the training readers use.
#pragma once

#include <cstdint>
#include <vector>

#include "datagen/sample.h"

namespace recd::serve {

/// One ranking request: score `rows.size()` candidate items for one user.
struct Request {
  std::int64_t request_id = 0;
  std::int64_t user_id = 0;  // session id in datagen terms
  /// Which model of the fleet's zoo serves this request (index into
  /// `FleetSpec::models`); the runner routes it to that model's batcher
  /// and queue. Scores never depend on it — it is routing, not input.
  std::size_t model_id = 0;
  /// Arrival offset from trace start (µs); deterministic from the
  /// generator seed. Doubles as the batching clock in replay mode.
  std::int64_t arrival_us = 0;
  /// K candidate rows, user features identical across rows, labels
  /// unused. May be empty (a zero-candidate request scores nothing but
  /// still flows through batching and completion accounting).
  std::vector<datagen::Sample> rows;
};

/// What the model server hands back per request.
struct ScoredRequest {
  std::int64_t request_id = 0;
  std::int64_t user_id = 0;
  std::size_t model_id = 0;
  std::int64_t arrival_us = 0;
  std::int64_t completion_us = 0;
  /// End-to-end latency (µs, clamped to >= 1): completion - arrival in
  /// paced mode; the pure batching delay in replay mode.
  std::int64_t latency_us = 1;
  /// One prediction logit per candidate, in request row order.
  std::vector<float> scores;
};

}  // namespace recd::serve
