#include "serve/model_zoo.h"

#include <stdexcept>
#include <utility>

namespace recd::serve {

void FleetSpec::Validate() const {
  if (models.empty()) {
    throw std::invalid_argument("FleetSpec: need at least one model");
  }
  if (!workers.empty() && workers.size() != models.size()) {
    throw std::invalid_argument(
        "FleetSpec: workers must be empty or one entry per model");
  }
  if (default_workers == 0) {
    throw std::invalid_argument("FleetSpec: default_workers must be >= 1");
  }
  for (const auto w : workers) {
    if (w == 0) {
      throw std::invalid_argument("FleetSpec: worker counts must be >= 1");
    }
  }
}

ModelSpec ZooVariant(datagen::RmKind kind,
                     const datagen::DatasetSpec& dataset,
                     std::uint64_t seed) {
  ModelSpec spec;
  spec.config = train::RmServeVariant(kind, dataset);
  spec.name = spec.config.name;
  // Distinct weights per kind even when callers pass one base seed.
  spec.seed = seed + static_cast<std::uint64_t>(kind) * 0x9e3779b97f4a7c15ULL;
  return spec;
}

std::vector<ModelSpec> DefaultZoo(const datagen::DatasetSpec& dataset,
                                  std::size_t size, std::uint64_t seed) {
  if (size == 0) {
    throw std::invalid_argument("DefaultZoo: size must be >= 1");
  }
  constexpr datagen::RmKind kKinds[] = {
      datagen::RmKind::kRm1, datagen::RmKind::kRm2, datagen::RmKind::kRm3};
  std::vector<ModelSpec> zoo;
  zoo.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    auto spec = ZooVariant(kKinds[i % 3], dataset, seed + i);
    if (size > 3) {
      spec.name += '#';
      spec.name += std::to_string(i);
    }
    zoo.push_back(std::move(spec));
  }
  return zoo;
}

}  // namespace recd::serve
