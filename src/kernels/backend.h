// Kernel backend selection for the vectorized kernel layer
// (docs/ARCHITECTURE.md §12).
//
// Every hot-path kernel (pooled embedding lookup, the MLP GEMMs, BCE
// loss, SGD updates, dense transforms) exists twice: a scalar reference
// implementation — the bitwise oracle — and a SIMD implementation that
// vectorizes only non-reduction axes, so the two produce bit-identical
// floats. kVectorized is therefore safe to use as the process default:
// it changes wall-clock, never results. Hosts without AVX2 silently run
// the scalar path under either selector.
#pragma once

#include <cstdint>
#include <string_view>

namespace recd::kernels {

enum class KernelBackend : std::uint8_t {
  kScalar,      // reference loops; the determinism oracle
  kVectorized,  // runtime-dispatched SIMD (AVX2 today); bitwise == scalar
};

/// True when the running CPU can execute the SIMD implementations
/// (x86-64 with AVX2). When false, kVectorized falls back to scalar.
[[nodiscard]] bool VectorizedAvailable();

/// Parses "scalar" / "vectorized"; throws std::invalid_argument on
/// anything else.
[[nodiscard]] KernelBackend ParseBackend(std::string_view name);

[[nodiscard]] const char* BackendName(KernelBackend backend);

/// Process-wide default: RECD_KERNEL_BACKEND=scalar|vectorized when set
/// (read once, first call), otherwise kVectorized (which self-falls-back
/// on hosts without SIMD support). Every layer object (EmbeddingTable,
/// Linear, ReferenceDlrm, ...) captures this at construction and can be
/// overridden per instance for parity tests.
[[nodiscard]] KernelBackend DefaultBackend();

}  // namespace recd::kernels
