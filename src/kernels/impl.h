// Internal split of the kernel layer: `detail` holds the scalar
// reference implementations (kernels.cpp — the bitwise oracle), `simd`
// the AVX2 implementations (kernels_simd.cpp). The public dispatchers in
// kernels.cpp pick one per call; nothing outside src/kernels/ includes
// this header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "kernels/kernels.h"

namespace recd::kernels::detail {

void PooledLookup(const tensor::JaggedTensor& batch, const float* weights,
                  std::size_t hash_size, std::size_t dim, Pool pool,
                  float* out);
void SumPoolGroup(std::span<const GroupFeature> group, std::size_t dim,
                  float* out);
void FusedPooledLookup(std::span<const GroupFeature> group,
                       std::span<const std::int64_t> inverse,
                       std::size_t dim, float* out);
void ScatterSgdUpdate(const tensor::JaggedTensor& batch, const float* grad,
                      Pool pool, float lr, float* weights,
                      std::size_t hash_size, std::size_t dim);
void MatmulABt(const float* a, std::size_t m, std::size_t k, const float* b,
               std::size_t n, float* c);
void MatmulAB(const float* a, std::size_t m, std::size_t k, const float* b,
              std::size_t n, float* c);
void AccumulateOuter(const float* g, std::size_t rows, std::size_t out_dim,
                     const float* x, std::size_t in_dim, float* grad_w,
                     float* grad_b);
[[nodiscard]] double BceLossSum(const float* logits, const float* labels,
                                std::size_t n);
void BceGrad(const float* logits, const float* labels, std::size_t n,
             float inv_denom, float* grad);
void SgdUpdate(float* w, const float* g, std::size_t n, float lr);
void AddInPlace(float* dst, const float* src, std::size_t n);
void AddRowBias(float* y, std::size_t rows, std::size_t cols,
                const float* bias);
void ReluInPlace(float* v, std::size_t n);
void ReluMask(float* g, const float* pre, std::size_t n);
void DenseNormalize(float* x, std::size_t n, float mean, float inv_scale);
void DenseClamp(float* x, std::size_t n, float lo, float hi);

/// Slot buckets of an inverse lookup: slots[offsets[u] .. offsets[u+1])
/// lists the batch slots mapping to unique row u, in ascending slot
/// order. Integer-only prep shared by both fused implementations.
struct InverseBuckets {
  std::vector<std::int64_t> slots;
  std::vector<std::size_t> offsets;  // unique_rows + 1 entries
};
[[nodiscard]] InverseBuckets BucketInverse(
    std::span<const std::int64_t> inverse, std::size_t unique_rows);

}  // namespace recd::kernels::detail

namespace recd::kernels::simd {

// Same contracts as the detail:: functions; bitwise-identical results.
// On platforms without AVX2 these are thin wrappers over detail:: (the
// dispatcher never selects them there, but they must link).
void PooledLookup(const tensor::JaggedTensor& batch, const float* weights,
                  std::size_t hash_size, std::size_t dim, Pool pool,
                  float* out);
void SumPoolGroup(std::span<const GroupFeature> group, std::size_t dim,
                  float* out);
void FusedPooledLookup(std::span<const GroupFeature> group,
                       std::span<const std::int64_t> inverse,
                       std::size_t dim, float* out);
void ScatterSgdUpdate(const tensor::JaggedTensor& batch, const float* grad,
                      Pool pool, float lr, float* weights,
                      std::size_t hash_size, std::size_t dim);
void MatmulABt(const float* a, std::size_t m, std::size_t k, const float* b,
               std::size_t n, float* c);
void MatmulAB(const float* a, std::size_t m, std::size_t k, const float* b,
              std::size_t n, float* c);
void AccumulateOuter(const float* g, std::size_t rows, std::size_t out_dim,
                     const float* x, std::size_t in_dim, float* grad_w,
                     float* grad_b);
[[nodiscard]] double BceLossSum(const float* logits, const float* labels,
                                std::size_t n);
void BceGrad(const float* logits, const float* labels, std::size_t n,
             float inv_denom, float* grad);
void SgdUpdate(float* w, const float* g, std::size_t n, float lr);
void AddInPlace(float* dst, const float* src, std::size_t n);
void AddRowBias(float* y, std::size_t rows, std::size_t cols,
                const float* bias);
void ReluInPlace(float* v, std::size_t n);
void ReluMask(float* g, const float* pre, std::size_t n);
void DenseNormalize(float* x, std::size_t n, float mean, float inv_scale);
void DenseClamp(float* x, std::size_t n, float lo, float hi);

}  // namespace recd::kernels::simd
