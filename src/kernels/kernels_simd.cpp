// AVX2 implementations of the kernel layer.
//
// Bitwise contract with the scalar oracle (kernels.cpp): SIMD lanes run
// only across non-reduction axes, so every output element sees exactly
// the scalar path's float-op sequence —
//   * pooling / SGD / elementwise ops: 8 dim-columns per lane set, ids
//     and rows still visited in scalar order;
//   * MatmulABt: 8 j-columns per lane set; each lane's k-chain is the
//     scalar `acc += a*b` chain in ascending k (b is packed k-major per
//     j-tile so the inner loads are contiguous — the cache-blocking);
//   * MatmulAB / AccumulateOuter: 8 j-columns per lane set with the
//     scalar zero-skip applied per (i,k) before broadcasting;
//   * comparisons (max pooling, ReLU, clamp) use cmp+blend/andnot
//     sequences chosen to reproduce the scalar branch bit-for-bit,
//     including -0.0 and NaN behavior (documented per helper).
// Separate mul/add intrinsics (never FMA) pair with the tree-wide
// -ffp-contract=off so neither path contracts where the other does not.
//
// Tails (dim % 8, n % 8) fall back to the scalar loop over the exact
// remaining elements — per-element order unchanged.
//
// Everything is compiled for the baseline target; the AVX2 functions
// carry a per-function target attribute and are only reached when
// VectorizedAvailable() said the CPU can run them.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/impl.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define RECD_KERNELS_AVX2 1
#include <immintrin.h>
#endif

namespace recd::kernels::simd {

#if defined(RECD_KERNELS_AVX2)

#define RECD_AVX2 __attribute__((target("avx2")))

namespace {

constexpr std::size_t kLanes = 8;

// dst[0..d) += src[0..d)
RECD_AVX2 inline void AddRows(float* dst, const float* src,
                              std::size_t d) {
  std::size_t c = 0;
  for (; c + kLanes <= d; c += kLanes) {
    _mm256_storeu_ps(dst + c,
                     _mm256_add_ps(_mm256_loadu_ps(dst + c),
                                   _mm256_loadu_ps(src + c)));
  }
  for (; c < d; ++c) dst[c] += src[c];
}

// dst[0..d) = max(dst, src) with std::max(a,b) = (a<b)?b:a semantics:
// blendv picks src only where dst < src (ordered, quiet), so NaN in
// either operand and ±0 ties resolve exactly like the scalar branch.
RECD_AVX2 inline void MaxRows(float* dst, const float* src,
                              std::size_t d) {
  std::size_t c = 0;
  for (; c + kLanes <= d; c += kLanes) {
    const __m256 a = _mm256_loadu_ps(dst + c);
    const __m256 b = _mm256_loadu_ps(src + c);
    const __m256 lt = _mm256_cmp_ps(a, b, _CMP_LT_OQ);
    _mm256_storeu_ps(dst + c, _mm256_blendv_ps(a, b, lt));
  }
  for (; c < d; ++c) dst[c] = std::max(dst[c], src[c]);
}

// dst[0..d) *= s
RECD_AVX2 inline void ScaleRow(float* dst, float s, std::size_t d) {
  const __m256 sv = _mm256_set1_ps(s);
  std::size_t c = 0;
  for (; c + kLanes <= d; c += kLanes) {
    _mm256_storeu_ps(dst + c,
                     _mm256_mul_ps(_mm256_loadu_ps(dst + c), sv));
  }
  for (; c < d; ++c) dst[c] *= s;
}

// dst[0..d) -= s * src[0..d)  (mul then sub, like the scalar update)
RECD_AVX2 inline void SubScaledRow(float* dst, const float* src, float s,
                                   std::size_t d) {
  const __m256 sv = _mm256_set1_ps(s);
  std::size_t c = 0;
  for (; c + kLanes <= d; c += kLanes) {
    _mm256_storeu_ps(
        dst + c,
        _mm256_sub_ps(_mm256_loadu_ps(dst + c),
                      _mm256_mul_ps(sv, _mm256_loadu_ps(src + c))));
  }
  for (; c < d; ++c) dst[c] -= s * src[c];
}

// dst[0..d) += s * src[0..d)
RECD_AVX2 inline void AddScaledRow(float* dst, const float* src, float s,
                                   std::size_t d) {
  const __m256 sv = _mm256_set1_ps(s);
  std::size_t c = 0;
  for (; c + kLanes <= d; c += kLanes) {
    _mm256_storeu_ps(
        dst + c,
        _mm256_add_ps(_mm256_loadu_ps(dst + c),
                      _mm256_mul_ps(sv, _mm256_loadu_ps(src + c))));
  }
  for (; c < d; ++c) dst[c] += s * src[c];
}

}  // namespace

RECD_AVX2 void PooledLookup(const tensor::JaggedTensor& batch,
                            const float* weights, std::size_t hash_size,
                            std::size_t dim, Pool pool, float* out) {
  const std::size_t rows = batch.num_rows();
  std::memset(out, 0, rows * dim * sizeof(float));
  for (std::size_t r = 0; r < rows; ++r) {
    const auto ids = batch.row(r);
    if (ids.empty()) continue;
    float* orow = out + r * dim;
    switch (pool) {
      case Pool::kSum:
      case Pool::kMean: {
        for (const auto id : ids) {
          AddRows(orow, weights + TableRow(id, hash_size) * dim, dim);
        }
        if (pool == Pool::kMean) {
          ScaleRow(orow, 1.0f / static_cast<float>(ids.size()), dim);
        }
        break;
      }
      case Pool::kMax: {
        std::memcpy(orow, weights + TableRow(ids[0], hash_size) * dim,
                    dim * sizeof(float));
        for (std::size_t i = 1; i < ids.size(); ++i) {
          MaxRows(orow, weights + TableRow(ids[i], hash_size) * dim, dim);
        }
        break;
      }
    }
  }
}

RECD_AVX2 void SumPoolGroup(std::span<const GroupFeature> group,
                            std::size_t dim, float* out) {
  const std::size_t rows = group.front().jt->num_rows();
  std::memset(out, 0, rows * dim * sizeof(float));
  for (std::size_t r = 0; r < rows; ++r) {
    float* orow = out + r * dim;
    for (const auto& f : group) {
      for (const auto id : f.jt->row(r)) {
        AddRows(orow, f.weights + TableRow(id, f.hash_size) * dim, dim);
      }
    }
  }
}

RECD_AVX2 void FusedPooledLookup(std::span<const GroupFeature> group,
                                 std::span<const std::int64_t> inverse,
                                 std::size_t dim, float* out) {
  const std::size_t unique_rows = group.front().jt->num_rows();
  const detail::InverseBuckets buckets =
      detail::BucketInverse(inverse, unique_rows);
  std::vector<float> buf(dim);
  for (std::size_t u = 0; u < unique_rows; ++u) {
    std::memset(buf.data(), 0, dim * sizeof(float));
    for (const auto& f : group) {
      for (const auto id : f.jt->row(u)) {
        AddRows(buf.data(), f.weights + TableRow(id, f.hash_size) * dim,
                dim);
      }
    }
    for (std::size_t s = buckets.offsets[u]; s < buckets.offsets[u + 1];
         ++s) {
      std::memcpy(out + static_cast<std::size_t>(buckets.slots[s]) * dim,
                  buf.data(), dim * sizeof(float));
    }
  }
}

RECD_AVX2 void ScatterSgdUpdate(const tensor::JaggedTensor& batch,
                                const float* grad, Pool pool, float lr,
                                float* weights, std::size_t hash_size,
                                std::size_t dim) {
  const std::size_t rows = batch.num_rows();
  for (std::size_t r = 0; r < rows; ++r) {
    const auto ids = batch.row(r);
    if (ids.empty()) continue;
    const float* g = grad + r * dim;
    const float scale = pool == Pool::kMean
                            ? lr / static_cast<float>(ids.size())
                            : lr;
    for (const auto id : ids) {
      SubScaledRow(weights + TableRow(id, hash_size) * dim, g, scale, dim);
    }
  }
}

RECD_AVX2 void MatmulABt(const float* a, std::size_t m, std::size_t k,
                         const float* b, std::size_t n, float* c) {
  // Pack 8 rows of b (8 output columns) k-major, then every a-row runs
  // 8 independent k-chains out of one contiguous stream. The pack is
  // reused across all m rows — the cache-blocking that makes the
  // column-major access pattern disappear.
  std::vector<float> pack(k * kLanes);
  for (std::size_t j0 = 0; j0 < n; j0 += kLanes) {
    const std::size_t jw = std::min(kLanes, n - j0);
    for (std::size_t kk = 0; kk < k; ++kk) {
      float* p = pack.data() + kk * kLanes;
      for (std::size_t jj = 0; jj < jw; ++jj) {
        p[jj] = b[(j0 + jj) * k + kk];
      }
      for (std::size_t jj = jw; jj < kLanes; ++jj) p[jj] = 0.0f;
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float* ar = a + i * k;
      __m256 acc = _mm256_setzero_ps();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const __m256 av = _mm256_set1_ps(ar[kk]);
        const __m256 bv = _mm256_loadu_ps(pack.data() + kk * kLanes);
        acc = _mm256_add_ps(acc, _mm256_mul_ps(av, bv));
      }
      float* cr = c + i * n + j0;
      if (jw == kLanes) {
        _mm256_storeu_ps(cr, acc);
      } else {
        float tmp[kLanes];
        _mm256_storeu_ps(tmp, acc);
        std::memcpy(cr, tmp, jw * sizeof(float));
      }
    }
  }
}

RECD_AVX2 void MatmulAB(const float* a, std::size_t m, std::size_t k,
                        const float* b, std::size_t n, float* c) {
  std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t i = 0; i < m; ++i) {
    const float* ar = a + i * k;
    float* cr = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = ar[kk];
      if (av == 0.0f) continue;
      AddScaledRow(cr, b + kk * n, av, n);
    }
  }
}

RECD_AVX2 void AccumulateOuter(const float* g, std::size_t rows,
                               std::size_t out_dim, const float* x,
                               std::size_t in_dim, float* grad_w,
                               float* grad_b) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* gr = g + r * out_dim;
    const float* xr = x + r * in_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      const float gv = gr[o];
      if (gv == 0.0f) continue;
      AddScaledRow(grad_w + o * in_dim, xr, gv, in_dim);
      grad_b[o] += gv;
    }
  }
}

RECD_AVX2 double BceLossSum(const float* logits, const float* labels,
                            std::size_t n) {
  // SIMD computes the algebraic parts alg = max(z,0) - z*y and
  // t = -|z|; log1p/exp stay scalar libm (a vector exp would not be
  // bit-identical). The double accumulation runs in row order, and
  // alg + log1p(exp(t)) reproduces the scalar expression's float
  // evaluation order.
  constexpr std::size_t kBlock = 256;
  alignas(32) float alg[kBlock];
  alignas(32) float t[kBlock];
  const __m256 zero = _mm256_setzero_ps();
  const __m256 sign = _mm256_set1_ps(-0.0f);
  double total = 0.0;
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t len = std::min(kBlock, n - base);
    std::size_t i = 0;
    for (; i + kLanes <= len; i += kLanes) {
      const __m256 z = _mm256_loadu_ps(logits + base + i);
      const __m256 y = _mm256_loadu_ps(labels + base + i);
      // max(z, 0.0f) as vmaxps(0, z): ±0 and NaN resolve to the second
      // operand, matching std::max's (a<b)?b:a with a==z.
      const __m256 mz = _mm256_max_ps(zero, z);
      _mm256_storeu_ps(alg + i,
                       _mm256_sub_ps(mz, _mm256_mul_ps(z, y)));
      // -|z| = z with the sign bit forced on — bit-exact.
      _mm256_storeu_ps(t + i, _mm256_or_ps(_mm256_andnot_ps(sign, z),
                                           sign));
    }
    for (; i < len; ++i) {
      const float z = logits[base + i];
      alg[i] = std::max(z, 0.0f) - z * labels[base + i];
      t[i] = -std::abs(z);
    }
    for (std::size_t r = 0; r < len; ++r) {
      total += alg[r] + std::log1p(std::exp(t[r]));
    }
  }
  return total;
}

RECD_AVX2 void BceGrad(const float* logits, const float* labels,
                       std::size_t n, float inv_denom, float* grad) {
  // The branchy stable sigmoid stays scalar; the (s - y) * inv_denom
  // epilogue runs vectorized over rows (elementwise — no reduction).
  for (std::size_t r = 0; r < n; ++r) {
    const float z = logits[r];
    if (z >= 0.0f) {
      grad[r] = 1.0f / (1.0f + std::exp(-z));
    } else {
      const float e = std::exp(z);
      grad[r] = e / (1.0f + e);
    }
  }
  const __m256 inv = _mm256_set1_ps(inv_denom);
  std::size_t r = 0;
  for (; r + kLanes <= n; r += kLanes) {
    const __m256 s = _mm256_loadu_ps(grad + r);
    const __m256 y = _mm256_loadu_ps(labels + r);
    _mm256_storeu_ps(grad + r,
                     _mm256_mul_ps(_mm256_sub_ps(s, y), inv));
  }
  for (; r < n; ++r) grad[r] = (grad[r] - labels[r]) * inv_denom;
}

RECD_AVX2 void SgdUpdate(float* w, const float* g, std::size_t n,
                         float lr) {
  SubScaledRow(w, g, lr, n);
}

RECD_AVX2 void AddInPlace(float* dst, const float* src, std::size_t n) {
  AddRows(dst, src, n);
}

RECD_AVX2 void AddRowBias(float* y, std::size_t rows, std::size_t cols,
                          const float* bias) {
  for (std::size_t r = 0; r < rows; ++r) {
    AddRows(y + r * cols, bias, cols);
  }
}

RECD_AVX2 void ReluInPlace(float* v, std::size_t n) {
  // Zero exactly where v < 0 (ordered: NaN stays, -0 stays) — the
  // scalar branch, lane-parallel.
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 x = _mm256_loadu_ps(v + i);
    const __m256 neg = _mm256_cmp_ps(x, zero, _CMP_LT_OQ);
    _mm256_storeu_ps(v + i, _mm256_andnot_ps(neg, x));
  }
  for (; i < n; ++i) {
    if (v[i] < 0.0f) v[i] = 0.0f;
  }
}

RECD_AVX2 void ReluMask(float* g, const float* pre, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 p = _mm256_loadu_ps(pre + i);
    const __m256 off = _mm256_cmp_ps(p, zero, _CMP_LE_OQ);
    _mm256_storeu_ps(g + i,
                     _mm256_andnot_ps(off, _mm256_loadu_ps(g + i)));
  }
  for (; i < n; ++i) {
    if (pre[i] <= 0.0f) g[i] = 0.0f;
  }
}

RECD_AVX2 void DenseNormalize(float* x, std::size_t n, float mean,
                              float inv_scale) {
  const __m256 mv = _mm256_set1_ps(mean);
  const __m256 iv = _mm256_set1_ps(inv_scale);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_ps(
        x + i,
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), mv), iv));
  }
  for (; i < n; ++i) x[i] = (x[i] - mean) * inv_scale;
}

RECD_AVX2 void DenseClamp(float* x, std::size_t n, float lo, float hi) {
  // std::clamp is (v < lo) ? lo : (hi < v) ? hi : v — apply the hi
  // replacement first, then lo, so lo has the same priority as the
  // nested ternary; NaN fails both ordered compares and passes through.
  const __m256 lov = _mm256_set1_ps(lo);
  const __m256 hiv = _mm256_set1_ps(hi);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 gt = _mm256_cmp_ps(hiv, v, _CMP_LT_OQ);
    const __m256 lt = _mm256_cmp_ps(v, lov, _CMP_LT_OQ);
    __m256 r = _mm256_blendv_ps(v, hiv, gt);
    r = _mm256_blendv_ps(r, lov, lt);
    _mm256_storeu_ps(x + i, r);
  }
  for (; i < n; ++i) x[i] = std::clamp(x[i], lo, hi);
}

#undef RECD_AVX2

#else  // !RECD_KERNELS_AVX2

// Non-x86 (or non-GNU) builds: the dispatcher never selects simd::
// (VectorizedAvailable() is false), but the symbols must exist.
void PooledLookup(const tensor::JaggedTensor& batch, const float* weights,
                  std::size_t hash_size, std::size_t dim, Pool pool,
                  float* out) {
  detail::PooledLookup(batch, weights, hash_size, dim, pool, out);
}
void SumPoolGroup(std::span<const GroupFeature> group, std::size_t dim,
                  float* out) {
  detail::SumPoolGroup(group, dim, out);
}
void FusedPooledLookup(std::span<const GroupFeature> group,
                       std::span<const std::int64_t> inverse,
                       std::size_t dim, float* out) {
  detail::FusedPooledLookup(group, inverse, dim, out);
}
void ScatterSgdUpdate(const tensor::JaggedTensor& batch, const float* grad,
                      Pool pool, float lr, float* weights,
                      std::size_t hash_size, std::size_t dim) {
  detail::ScatterSgdUpdate(batch, grad, pool, lr, weights, hash_size, dim);
}
void MatmulABt(const float* a, std::size_t m, std::size_t k, const float* b,
               std::size_t n, float* c) {
  detail::MatmulABt(a, m, k, b, n, c);
}
void MatmulAB(const float* a, std::size_t m, std::size_t k, const float* b,
              std::size_t n, float* c) {
  detail::MatmulAB(a, m, k, b, n, c);
}
void AccumulateOuter(const float* g, std::size_t rows, std::size_t out_dim,
                     const float* x, std::size_t in_dim, float* grad_w,
                     float* grad_b) {
  detail::AccumulateOuter(g, rows, out_dim, x, in_dim, grad_w, grad_b);
}
double BceLossSum(const float* logits, const float* labels, std::size_t n) {
  return detail::BceLossSum(logits, labels, n);
}
void BceGrad(const float* logits, const float* labels, std::size_t n,
             float inv_denom, float* grad) {
  detail::BceGrad(logits, labels, n, inv_denom, grad);
}
void SgdUpdate(float* w, const float* g, std::size_t n, float lr) {
  detail::SgdUpdate(w, g, n, lr);
}
void AddInPlace(float* dst, const float* src, std::size_t n) {
  detail::AddInPlace(dst, src, n);
}
void AddRowBias(float* y, std::size_t rows, std::size_t cols,
                const float* bias) {
  detail::AddRowBias(y, rows, cols, bias);
}
void ReluInPlace(float* v, std::size_t n) { detail::ReluInPlace(v, n); }
void ReluMask(float* g, const float* pre, std::size_t n) {
  detail::ReluMask(g, pre, n);
}
void DenseNormalize(float* x, std::size_t n, float mean, float inv_scale) {
  detail::DenseNormalize(x, n, mean, inv_scale);
}
void DenseClamp(float* x, std::size_t n, float lo, float hi) {
  detail::DenseClamp(x, n, lo, hi);
}

#endif  // RECD_KERNELS_AVX2

}  // namespace recd::kernels::simd
