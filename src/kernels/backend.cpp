#include "kernels/backend.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace recd::kernels {

bool VectorizedAvailable() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool avx2 = __builtin_cpu_supports("avx2") != 0;
  return avx2;
#else
  return false;
#endif
}

KernelBackend ParseBackend(std::string_view name) {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "vectorized") return KernelBackend::kVectorized;
  throw std::invalid_argument(
      "ParseBackend: expected 'scalar' or 'vectorized', got '" +
      std::string(name) + "'");
}

const char* BackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kVectorized:
      return "vectorized";
  }
  return "?";
}

KernelBackend DefaultBackend() {
  static const KernelBackend def = [] {
    const char* v = std::getenv("RECD_KERNEL_BACKEND");
    if (v != nullptr && *v != '\0') return ParseBackend(v);
    return KernelBackend::kVectorized;
  }();
  return def;
}

}  // namespace recd::kernels
