// The fused/vectorized kernel layer (docs/ARCHITECTURE.md §12).
//
// Every kernel takes an explicit KernelBackend and is implemented twice:
// kernels.cpp holds the scalar reference loops (the bitwise oracle) and
// kernels_simd.cpp the AVX2 implementations, selected at runtime. The
// bitwise contract — vectorized output identical to scalar output, bit
// for bit — holds because SIMD is applied only along non-reduction axes:
// pooling and SGD vectorize across the embedding-dim axis while ids are
// still visited in row order, the GEMMs vectorize across output columns
// while the k-reduction of each output element stays a single scalar
// chain in ascending-k order, and elementwise ops have no cross-lane
// dependence at all. Nothing here reassociates a float sum, and the
// build compiles with -ffp-contract=off so no path can fuse a*b+c into
// an FMA the other path did not.
//
// Callers (nn::EmbeddingTable, nn::Linear, loss, transforms) own all
// shape validation and OpStats accounting; kernels trust their
// arguments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "kernels/backend.h"
#include "tensor/jagged.h"

namespace recd::kernels {

enum class Pool : std::uint8_t { kSum, kMean, kMax };

/// Table row for id under the modulo hash-trick shared by every caller.
[[nodiscard]] inline std::size_t TableRow(tensor::Id id,
                                          std::size_t hash_size) {
  return static_cast<std::size_t>(static_cast<std::uint64_t>(id) %
                                  hash_size);
}

// ---------------------------------------------------------------------------
// Pooled embedding lookup
// ---------------------------------------------------------------------------

/// out(r, :) = pool(weights rows of batch row r); out is
/// batch.num_rows() x dim and is zero-filled first (empty rows pool to
/// zero). Ids accumulate in row order; lanes run across dim.
void PooledLookup(KernelBackend backend, const tensor::JaggedTensor& batch,
                  const float* weights, std::size_t hash_size,
                  std::size_t dim, Pool pool, float* out);

/// One feature of a synchronized group: a (possibly deduplicated) jagged
/// tensor plus the embedding table it looks up into. All features of a
/// group share `dim` and row count.
struct GroupFeature {
  const tensor::JaggedTensor* jt = nullptr;
  const float* weights = nullptr;
  std::size_t hash_size = 0;
};

/// Concatenated-group sum pooling at batch rows:
/// out(r, :) = sum over features k, then ids of jt_k row r, of the
/// looked-up embedding — the float-op sequence of
/// train::SumPoolConcatGroup. out is rows x dim, zero-filled first.
void SumPoolGroup(KernelBackend backend,
                  std::span<const GroupFeature> group, std::size_t dim,
                  float* out);

/// Fused dedup-aware pooled lookup (RecD O5+O6 in one pass): pools each
/// *unique* row exactly once — features' ids in concatenation order,
/// identical to SumPoolGroup on the expanded rows — then writes the
/// pooled vector into every batch slot i with inverse[i] == u. The
/// expanded KJT is never materialized and no unique row is pooled
/// twice. `group` features are the IKJT's unique tensors; out is
/// inverse.size() x dim. Every inverse entry must be in
/// [0, unique rows).
void FusedPooledLookup(KernelBackend backend,
                       std::span<const GroupFeature> group,
                       std::span<const std::int64_t> inverse,
                       std::size_t dim, float* out);

/// Sparse SGD scatter-update for sum/mean pooling: for each batch row r
/// (in order) and each id of the row (in order),
/// weights[row(id)] -= scale_r * grad(r, :), scale_r = lr or lr/len for
/// mean pooling — the float-op sequence of
/// EmbeddingTable::ApplyPooledGradient. `pool` must be kSum or kMean.
void ScatterSgdUpdate(KernelBackend backend,
                      const tensor::JaggedTensor& batch, const float* grad,
                      Pool pool, float lr, float* weights,
                      std::size_t hash_size, std::size_t dim);

/// out(i, :) = src(index[i], :) — the RecD post-pooling expansion and
/// checkpoint gather. Pure row copies (no float arithmetic), so both
/// backends share one implementation.
void GatherRows(KernelBackend backend, const float* src, std::size_t dim,
                std::span<const std::int64_t> index, float* out);

// ---------------------------------------------------------------------------
// GEMM (the MLP forward/backward shapes)
// ---------------------------------------------------------------------------

/// c = a * b^T (a: m x k, b: n x k, c: m x n) — Linear::Forward. Each
/// c(i,j) is one scalar chain over ascending k; the vectorized path
/// packs b into k-major j-tiles and runs 8 j-chains per AVX2 lane set,
/// preserving each chain's order exactly.
void MatmulABt(KernelBackend backend, const float* a, std::size_t m,
               std::size_t k, const float* b, std::size_t n, float* c);

/// c = a * b (a: m x k, b: k x n, c: m x n), c zero-filled first —
/// Linear::Backward's dX. Preserves the scalar path's a(i,k)==0 row
/// skip (skipping changes bits when b holds non-finite values or -0
/// outputs, so both paths must skip identically).
void MatmulAB(KernelBackend backend, const float* a, std::size_t m,
              std::size_t k, const float* b, std::size_t n, float* c);

/// Linear::Backward's accumulation: for each batch row r in order,
/// grad_w(o, :) += g(r, o) * x(r, :) and grad_b[o] += g(r, o), with the
/// scalar path's g(r,o)==0 skip. g is rows x out_dim, x is rows x
/// in_dim, grad_w is out_dim x in_dim.
void AccumulateOuter(KernelBackend backend, const float* g,
                     std::size_t rows, std::size_t out_dim, const float* x,
                     std::size_t in_dim, float* grad_w, float* grad_b);

// ---------------------------------------------------------------------------
// Loss
// ---------------------------------------------------------------------------

/// Sum over rows of the stable BCE-with-logits term
/// max(z,0) - z*y + log1p(exp(-|z|)), accumulated into double in row
/// order. The transcendentals stay scalar libm calls (a vector exp
/// would not be bit-identical); the vectorized path precomputes the
/// algebraic parts max(z,0) - z*y and -|z| with SIMD.
[[nodiscard]] double BceLossSum(KernelBackend backend, const float* logits,
                                const float* labels, std::size_t n);

/// grad[r] = (sigmoid(logits[r]) - labels[r]) * inv_denom, with the
/// branchy numerically-stable sigmoid evaluated scalar per row.
void BceGrad(KernelBackend backend, const float* logits,
             const float* labels, std::size_t n, float inv_denom,
             float* grad);

// ---------------------------------------------------------------------------
// Elementwise (SGD step, gradient combine, MLP epilogues, transforms)
// ---------------------------------------------------------------------------

/// w[i] -= lr * g[i] — the dense SGD row update (Linear::Step).
void SgdUpdate(KernelBackend backend, float* w, const float* g,
               std::size_t n, float lr);

/// dst[i] += src[i] — gradient accumulation / the chunk combine.
void AddInPlace(KernelBackend backend, float* dst, const float* src,
                std::size_t n);

/// y(r, :) += bias — the Linear::Forward bias epilogue.
void AddRowBias(KernelBackend backend, float* y, std::size_t rows,
                std::size_t cols, const float* bias);

/// v = (v < 0) ? 0 : v, preserving the scalar branch exactly
/// (-0 and NaN pass through unchanged).
void ReluInPlace(KernelBackend backend, float* v, std::size_t n);

/// g[i] = 0 where pre[i] <= 0 — the ReLU backward mask.
void ReluMask(KernelBackend backend, float* g, const float* pre,
              std::size_t n);

/// x = (x - mean) * inv_scale — reader kDenseNormalize.
void DenseNormalize(KernelBackend backend, float* x, std::size_t n,
                    float mean, float inv_scale);

/// x = clamp(x, lo, hi) with std::clamp's exact comparison order
/// (x < lo ? lo : hi < x ? hi : x).
void DenseClamp(KernelBackend backend, float* x, std::size_t n, float lo,
                float hi);

}  // namespace recd::kernels
