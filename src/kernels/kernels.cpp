// Scalar reference implementations (the bitwise oracle) and the public
// per-call dispatchers. Every loop here is the honest scalar baseline
// the SIMD path is diffed against: bounds hoisted, no hidden
// re-computation, and exactly the float-op sequence documented in
// kernels.h.
#include "kernels/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "kernels/impl.h"

namespace recd::kernels {

namespace detail {

InverseBuckets BucketInverse(std::span<const std::int64_t> inverse,
                             std::size_t unique_rows) {
  InverseBuckets b;
  b.offsets.assign(unique_rows + 1, 0);
  for (const auto u : inverse) {
    b.offsets[static_cast<std::size_t>(u) + 1] += 1;
  }
  for (std::size_t u = 0; u < unique_rows; ++u) {
    b.offsets[u + 1] += b.offsets[u];
  }
  b.slots.resize(inverse.size());
  std::vector<std::size_t> cursor(b.offsets.begin(), b.offsets.end() - 1);
  for (std::size_t i = 0; i < inverse.size(); ++i) {
    b.slots[cursor[static_cast<std::size_t>(inverse[i])]++] =
        static_cast<std::int64_t>(i);
  }
  return b;
}

void PooledLookup(const tensor::JaggedTensor& batch, const float* weights,
                  std::size_t hash_size, std::size_t dim, Pool pool,
                  float* out) {
  const std::size_t rows = batch.num_rows();
  std::memset(out, 0, rows * dim * sizeof(float));
  for (std::size_t r = 0; r < rows; ++r) {
    const auto ids = batch.row(r);
    if (ids.empty()) continue;
    float* orow = out + r * dim;
    switch (pool) {
      case Pool::kSum:
      case Pool::kMean: {
        for (const auto id : ids) {
          const float* w = weights + TableRow(id, hash_size) * dim;
          for (std::size_t c = 0; c < dim; ++c) orow[c] += w[c];
        }
        if (pool == Pool::kMean) {
          const float inv = 1.0f / static_cast<float>(ids.size());
          for (std::size_t c = 0; c < dim; ++c) orow[c] *= inv;
        }
        break;
      }
      case Pool::kMax: {
        const float* w0 = weights + TableRow(ids[0], hash_size) * dim;
        std::memcpy(orow, w0, dim * sizeof(float));
        for (std::size_t i = 1; i < ids.size(); ++i) {
          const float* w = weights + TableRow(ids[i], hash_size) * dim;
          for (std::size_t c = 0; c < dim; ++c) {
            orow[c] = std::max(orow[c], w[c]);
          }
        }
        break;
      }
    }
  }
}

void SumPoolGroup(std::span<const GroupFeature> group, std::size_t dim,
                  float* out) {
  const std::size_t rows = group.front().jt->num_rows();
  std::memset(out, 0, rows * dim * sizeof(float));
  for (std::size_t r = 0; r < rows; ++r) {
    float* orow = out + r * dim;
    for (const auto& f : group) {
      for (const auto id : f.jt->row(r)) {
        const float* w = f.weights + TableRow(id, f.hash_size) * dim;
        for (std::size_t c = 0; c < dim; ++c) orow[c] += w[c];
      }
    }
  }
}

void FusedPooledLookup(std::span<const GroupFeature> group,
                       std::span<const std::int64_t> inverse,
                       std::size_t dim, float* out) {
  const std::size_t unique_rows = group.front().jt->num_rows();
  const InverseBuckets buckets = BucketInverse(inverse, unique_rows);
  std::vector<float> buf(dim);
  for (std::size_t u = 0; u < unique_rows; ++u) {
    std::memset(buf.data(), 0, dim * sizeof(float));
    for (const auto& f : group) {
      for (const auto id : f.jt->row(u)) {
        const float* w = f.weights + TableRow(id, f.hash_size) * dim;
        for (std::size_t c = 0; c < dim; ++c) buf[c] += w[c];
      }
    }
    for (std::size_t s = buckets.offsets[u]; s < buckets.offsets[u + 1];
         ++s) {
      std::memcpy(out + static_cast<std::size_t>(buckets.slots[s]) * dim,
                  buf.data(), dim * sizeof(float));
    }
  }
}

void ScatterSgdUpdate(const tensor::JaggedTensor& batch, const float* grad,
                      Pool pool, float lr, float* weights,
                      std::size_t hash_size, std::size_t dim) {
  const std::size_t rows = batch.num_rows();
  for (std::size_t r = 0; r < rows; ++r) {
    const auto ids = batch.row(r);
    if (ids.empty()) continue;
    const float* g = grad + r * dim;
    const float scale = pool == Pool::kMean
                            ? lr / static_cast<float>(ids.size())
                            : lr;
    for (const auto id : ids) {
      float* w = weights + TableRow(id, hash_size) * dim;
      for (std::size_t c = 0; c < dim; ++c) w[c] -= scale * g[c];
    }
  }
}

void MatmulABt(const float* a, std::size_t m, std::size_t k, const float* b,
               std::size_t n, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* ar = a + i * k;
    float* cr = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* br = b + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += ar[kk] * br[kk];
      cr[j] = acc;
    }
  }
}

void MatmulAB(const float* a, std::size_t m, std::size_t k, const float* b,
              std::size_t n, float* c) {
  std::memset(c, 0, m * n * sizeof(float));
  for (std::size_t i = 0; i < m; ++i) {
    const float* ar = a + i * k;
    float* cr = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = ar[kk];
      if (av == 0.0f) continue;
      const float* br = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) cr[j] += av * br[j];
    }
  }
}

void AccumulateOuter(const float* g, std::size_t rows, std::size_t out_dim,
                     const float* x, std::size_t in_dim, float* grad_w,
                     float* grad_b) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* gr = g + r * out_dim;
    const float* xr = x + r * in_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      const float gv = gr[o];
      if (gv == 0.0f) continue;
      float* wr = grad_w + o * in_dim;
      for (std::size_t i = 0; i < in_dim; ++i) wr[i] += gv * xr[i];
      grad_b[o] += gv;
    }
  }
}

double BceLossSum(const float* logits, const float* labels, std::size_t n) {
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const float z = logits[r];
    const float y = labels[r];
    total += std::max(z, 0.0f) - z * y +
             std::log1p(std::exp(-std::abs(z)));
  }
  return total;
}

namespace {

// Matches nn::Sigmoid exactly (loss.cpp keeps the public symbol).
float StableSigmoid(float x) {
  if (x >= 0.0f) {
    return 1.0f / (1.0f + std::exp(-x));
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

}  // namespace

void BceGrad(const float* logits, const float* labels, std::size_t n,
             float inv_denom, float* grad) {
  for (std::size_t r = 0; r < n; ++r) {
    grad[r] = (StableSigmoid(logits[r]) - labels[r]) * inv_denom;
  }
}

void SgdUpdate(float* w, const float* g, std::size_t n, float lr) {
  for (std::size_t i = 0; i < n; ++i) w[i] -= lr * g[i];
}

void AddInPlace(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void AddRowBias(float* y, std::size_t rows, std::size_t cols,
                const float* bias) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* yr = y + r * cols;
    for (std::size_t c = 0; c < cols; ++c) yr[c] += bias[c];
  }
}

void ReluInPlace(float* v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] < 0.0f) v[i] = 0.0f;
  }
}

void ReluMask(float* g, const float* pre, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (pre[i] <= 0.0f) g[i] = 0.0f;
  }
}

void DenseNormalize(float* x, std::size_t n, float mean, float inv_scale) {
  for (std::size_t i = 0; i < n; ++i) x[i] = (x[i] - mean) * inv_scale;
}

void DenseClamp(float* x, std::size_t n, float lo, float hi) {
  for (std::size_t i = 0; i < n; ++i) x[i] = std::clamp(x[i], lo, hi);
}

}  // namespace detail

namespace {

[[nodiscard]] bool UseSimd(KernelBackend backend) {
  return backend == KernelBackend::kVectorized && VectorizedAvailable();
}

}  // namespace

void PooledLookup(KernelBackend backend, const tensor::JaggedTensor& batch,
                  const float* weights, std::size_t hash_size,
                  std::size_t dim, Pool pool, float* out) {
  if (UseSimd(backend)) {
    simd::PooledLookup(batch, weights, hash_size, dim, pool, out);
  } else {
    detail::PooledLookup(batch, weights, hash_size, dim, pool, out);
  }
}

void SumPoolGroup(KernelBackend backend,
                  std::span<const GroupFeature> group, std::size_t dim,
                  float* out) {
  if (UseSimd(backend)) {
    simd::SumPoolGroup(group, dim, out);
  } else {
    detail::SumPoolGroup(group, dim, out);
  }
}

void FusedPooledLookup(KernelBackend backend,
                       std::span<const GroupFeature> group,
                       std::span<const std::int64_t> inverse,
                       std::size_t dim, float* out) {
  if (UseSimd(backend)) {
    simd::FusedPooledLookup(group, inverse, dim, out);
  } else {
    detail::FusedPooledLookup(group, inverse, dim, out);
  }
}

void ScatterSgdUpdate(KernelBackend backend,
                      const tensor::JaggedTensor& batch, const float* grad,
                      Pool pool, float lr, float* weights,
                      std::size_t hash_size, std::size_t dim) {
  if (UseSimd(backend)) {
    simd::ScatterSgdUpdate(batch, grad, pool, lr, weights, hash_size, dim);
  } else {
    detail::ScatterSgdUpdate(batch, grad, pool, lr, weights, hash_size,
                             dim);
  }
}

void GatherRows(KernelBackend backend, const float* src, std::size_t dim,
                std::span<const std::int64_t> index, float* out) {
  // Row copies carry no float arithmetic; one implementation serves
  // both backends.
  (void)backend;
  for (std::size_t i = 0; i < index.size(); ++i) {
    std::memcpy(out + i * dim,
                src + static_cast<std::size_t>(index[i]) * dim,
                dim * sizeof(float));
  }
}

void MatmulABt(KernelBackend backend, const float* a, std::size_t m,
               std::size_t k, const float* b, std::size_t n, float* c) {
  if (UseSimd(backend)) {
    simd::MatmulABt(a, m, k, b, n, c);
  } else {
    detail::MatmulABt(a, m, k, b, n, c);
  }
}

void MatmulAB(KernelBackend backend, const float* a, std::size_t m,
              std::size_t k, const float* b, std::size_t n, float* c) {
  if (UseSimd(backend)) {
    simd::MatmulAB(a, m, k, b, n, c);
  } else {
    detail::MatmulAB(a, m, k, b, n, c);
  }
}

void AccumulateOuter(KernelBackend backend, const float* g,
                     std::size_t rows, std::size_t out_dim, const float* x,
                     std::size_t in_dim, float* grad_w, float* grad_b) {
  if (UseSimd(backend)) {
    simd::AccumulateOuter(g, rows, out_dim, x, in_dim, grad_w, grad_b);
  } else {
    detail::AccumulateOuter(g, rows, out_dim, x, in_dim, grad_w, grad_b);
  }
}

double BceLossSum(KernelBackend backend, const float* logits,
                  const float* labels, std::size_t n) {
  if (UseSimd(backend)) return simd::BceLossSum(logits, labels, n);
  return detail::BceLossSum(logits, labels, n);
}

void BceGrad(KernelBackend backend, const float* logits,
             const float* labels, std::size_t n, float inv_denom,
             float* grad) {
  if (UseSimd(backend)) {
    simd::BceGrad(logits, labels, n, inv_denom, grad);
  } else {
    detail::BceGrad(logits, labels, n, inv_denom, grad);
  }
}

void SgdUpdate(KernelBackend backend, float* w, const float* g,
               std::size_t n, float lr) {
  if (UseSimd(backend)) {
    simd::SgdUpdate(w, g, n, lr);
  } else {
    detail::SgdUpdate(w, g, n, lr);
  }
}

void AddInPlace(KernelBackend backend, float* dst, const float* src,
                std::size_t n) {
  if (UseSimd(backend)) {
    simd::AddInPlace(dst, src, n);
  } else {
    detail::AddInPlace(dst, src, n);
  }
}

void AddRowBias(KernelBackend backend, float* y, std::size_t rows,
                std::size_t cols, const float* bias) {
  if (UseSimd(backend)) {
    simd::AddRowBias(y, rows, cols, bias);
  } else {
    detail::AddRowBias(y, rows, cols, bias);
  }
}

void ReluInPlace(KernelBackend backend, float* v, std::size_t n) {
  if (UseSimd(backend)) {
    simd::ReluInPlace(v, n);
  } else {
    detail::ReluInPlace(v, n);
  }
}

void ReluMask(KernelBackend backend, float* g, const float* pre,
              std::size_t n) {
  if (UseSimd(backend)) {
    simd::ReluMask(g, pre, n);
  } else {
    detail::ReluMask(g, pre, n);
  }
}

void DenseNormalize(KernelBackend backend, float* x, std::size_t n,
                    float mean, float inv_scale) {
  if (UseSimd(backend)) {
    simd::DenseNormalize(x, n, mean, inv_scale);
  } else {
    detail::DenseNormalize(x, n, mean, inv_scale);
  }
}

void DenseClamp(KernelBackend backend, float* x, std::size_t n, float lo,
                float hi) {
  if (UseSimd(backend)) {
    simd::DenseClamp(x, n, lo, hi);
  } else {
    detail::DenseClamp(x, n, lo, hi);
  }
}

}  // namespace recd::kernels
