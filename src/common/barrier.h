// Cyclic barrier: N participants block in Arrive() until every
// participant of the round has arrived, then all are released and the
// barrier resets for the next round.
//
// The phase separator of the executed distributed trainer
// (train::CollectiveGroup): an all-to-all pushes every rank's buffers
// first, arrives here, and only then pops — so receives never block on
// a peer that has not sent yet, and consecutive exchange rounds cannot
// interleave. Generation counting makes reuse safe: a thread released
// from round g cannot be confused with a waiter of round g+1.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>

namespace recd::common {

class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    if (parties == 0) {
      throw std::invalid_argument("Barrier: parties must be positive");
    }
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until `parties` threads have arrived in this round.
  /// Throws std::runtime_error if the barrier is (or becomes) aborted
  /// while waiting.
  void Arrive() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw std::runtime_error("Barrier: aborted");
    const std::size_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      lock.unlock();
      released_.notify_all();
      return;
    }
    released_.wait(lock,
                   [&] { return generation_ != generation || aborted_; });
    if (generation_ == generation) {
      throw std::runtime_error("Barrier: aborted");
    }
  }

  /// Arrive with a deadline: like Arrive, but returns false if the
  /// round did not complete within `timeout` — the waiter withdraws
  /// (its arrival is rescinded) so the count stays consistent for
  /// whoever shows up later. Returning false means a participant is
  /// missing or late; callers that cannot tolerate that should Abort()
  /// the barrier and surface the failure (train::CollectiveGroup turns
  /// it into RankFailure). Throws std::runtime_error on abort.
  [[nodiscard]] bool ArriveFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw std::runtime_error("Barrier: aborted");
    const std::size_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      lock.unlock();
      released_.notify_all();
      return true;
    }
    const bool released = released_.wait_for(
        lock, timeout,
        [&] { return generation_ != generation || aborted_; });
    if (aborted_ && generation_ == generation) {
      throw std::runtime_error("Barrier: aborted");
    }
    if (!released) {
      --waiting_;  // withdraw: this round never completed for us
      return false;
    }
    return true;
  }

  /// Poisons the barrier: every current and future Arrive throws. The
  /// escape hatch when a participant dies mid-round — its peers must
  /// unwind rather than wait forever. Irreversible, idempotent.
  void Abort() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    released_.notify_all();
  }

  [[nodiscard]] std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  std::mutex mutex_;
  std::condition_variable released_;
  std::size_t waiting_ = 0;
  std::size_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace recd::common
