// 64-bit non-cryptographic hashing for spans of trivially-copyable data.
//
// RecD detects duplicate feature values during feature conversion "via
// hashing" (paper §6.3). The hot path hashes int64 ID lists, so the
// implementation is a wyhash-style multiply-fold over 8-byte lanes: fast,
// well-mixed, and deterministic across runs (required so that tests and
// benchmarks are reproducible).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace recd::common {

/// Mixes a 64-bit value (splitmix64 finalizer). Useful as an integer hash.
[[nodiscard]] std::uint64_t Mix64(std::uint64_t x) noexcept;

/// Hashes an arbitrary byte span with the given seed.
[[nodiscard]] std::uint64_t HashBytes(std::span<const std::byte> data,
                                      std::uint64_t seed = 0) noexcept;

/// Hashes a span of 64-bit IDs (the dominant case: sparse feature lists).
[[nodiscard]] std::uint64_t HashIds(std::span<const std::int64_t> ids,
                                    std::uint64_t seed = 0) noexcept;

/// Hashes a string (feature keys, shard keys).
[[nodiscard]] std::uint64_t HashString(std::string_view s,
                                       std::uint64_t seed = 0) noexcept;

/// Combines two hashes order-dependently (for multi-feature group hashing).
[[nodiscard]] std::uint64_t HashCombine(std::uint64_t a,
                                        std::uint64_t b) noexcept;

}  // namespace recd::common
