// 64-byte-aligned allocator for dense float storage. The kernel layer
// (src/kernels/) uses unaligned loads so alignment is never required
// for correctness, but cacheline-aligned rows avoid split loads on the
// hot GEMM and pooling paths and keep aliasing with neighbouring heap
// blocks out of benchmark noise.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace recd::common {

inline constexpr std::size_t kCachelineAlign = 64;

template <typename T, std::size_t Align = kCachelineAlign>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector with cacheline-aligned storage. Element access, spans,
/// and value semantics are unchanged from std::vector<T>.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace recd::common
