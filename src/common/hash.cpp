#include "common/hash.h"

#include <cstring>

namespace recd::common {
namespace {

constexpr std::uint64_t kMul0 = 0xa0761d6478bd642fULL;
constexpr std::uint64_t kMul1 = 0xe7037ed1a0b428dbULL;
constexpr std::uint64_t kMul2 = 0x8ebc6af09c88c6e3ULL;

// 128-bit multiply folded to 64 bits (the wyhash "mum" primitive).
std::uint64_t Mum(std::uint64_t a, std::uint64_t b) noexcept {
  const unsigned __int128 r =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  return static_cast<std::uint64_t>(r) ^ static_cast<std::uint64_t>(r >> 64);
}

std::uint64_t Load64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint64_t LoadTail(const std::byte* p, std::size_t n) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}

}  // namespace

std::uint64_t Mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashBytes(std::span<const std::byte> data,
                        std::uint64_t seed) noexcept {
  const std::byte* p = data.data();
  std::size_t n = data.size();
  std::uint64_t h = seed ^ Mum(n ^ kMul0, kMul1);
  while (n >= 16) {
    h = Mum(Load64(p) ^ kMul1, Load64(p + 8) ^ h);
    p += 16;
    n -= 16;
  }
  if (n >= 8) {
    h = Mum(Load64(p) ^ kMul2, h);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    h = Mum(LoadTail(p, n) ^ kMul0, h ^ static_cast<std::uint64_t>(n));
  }
  return Mix64(h);
}

std::uint64_t HashIds(std::span<const std::int64_t> ids,
                      std::uint64_t seed) noexcept {
  return HashBytes(std::as_bytes(ids), seed);
}

std::uint64_t HashString(std::string_view s, std::uint64_t seed) noexcept {
  return HashBytes(
      std::as_bytes(std::span<const char>(s.data(), s.size())), seed);
}

std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return Mum(a ^ kMul1, b ^ kMul2);
}

}  // namespace recd::common
