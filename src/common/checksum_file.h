// Checksummed single-payload files: the durability envelope under the
// trainer checkpoints (train/checkpoint.h) and any other state that
// must survive a process death *verifiably*.
//
// Layout (all integers little-endian, written on the host byte order
// and guarded by an explicit endianness marker):
//
//   u32 magic        caller-chosen file type tag
//   u32 version      caller-chosen format version
//   u32 endian       kEndianMarker as written by the producer host
//   u64 payload_size
//   payload bytes
//   u64 checksum     HashBytes(payload, seed = version)
//
// Read validates every field before returning the payload: wrong magic,
// unsupported version, foreign endianness, a truncated payload, or a
// checksum mismatch each throw ChecksumError with a distinct message —
// a damaged file is *rejected*, never partially decoded into a wrong
// restore.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace recd::common {

/// Thrown on any validation failure while reading a checksummed file
/// (and on I/O failures in either direction).
class ChecksumError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The byte-order probe value. A file written on a host with different
/// endianness decodes this field to something else and is rejected.
inline constexpr std::uint32_t kEndianMarker = 0x01020304u;

/// Writes `payload` to `path` under the envelope above. Overwrites an
/// existing file. Throws ChecksumError if the file cannot be written.
void WriteChecksummedFile(const std::string& path, std::uint32_t magic,
                          std::uint32_t version,
                          std::span<const std::byte> payload);

/// Reads and fully validates `path`; returns the payload. `magic` must
/// match the producer's and `max_version` gates forward compatibility:
/// files with version > max_version are rejected as unsupported.
[[nodiscard]] std::vector<std::byte> ReadChecksummedFile(
    const std::string& path, std::uint32_t magic, std::uint32_t max_version);

/// Flips one payload byte of an existing checksummed file in place —
/// the corruption half of the fault-injection harness
/// (train::FaultInjector). `payload_offset` is clamped into the
/// payload; throws ChecksumError if the file is too short to carry one.
void CorruptChecksummedFile(const std::string& path,
                            std::size_t payload_offset);

}  // namespace recd::common
