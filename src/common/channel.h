// Channel<T>: bounded multi-producer multi-consumer FIFO.
//
// The hand-off primitive between pipeline stages (fill workers → batch
// assembler → convert workers → trainer in reader::ReaderPool). The
// capacity bound provides backpressure: producers block in Push once
// `capacity` items are in flight, so a fast fill stage cannot buffer an
// unbounded number of decoded stripes ahead of a slow consumer.
//
// Close() ends the stream: blocked producers wake and Push returns
// false; consumers drain the remaining items and then Pop returns
// nullopt. Closing is idempotent and the usual shutdown path — a
// stage's last worker closes its output channel when its input is
// exhausted.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace recd::common {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("Channel: capacity must be positive");
    }
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. Returns false (dropping `value`)
  /// if the channel is or becomes closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking Push; false if full or closed.
  bool TryPush(T& value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the channel is empty and open. Returns nullopt once
  /// the channel is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Pop with a deadline: blocks at most `timeout`. Returns the item,
  /// or nullopt with `*timed_out = true` if the deadline passed with
  /// the channel still open and empty, or nullopt with `*timed_out =
  /// false` once the channel is closed and drained. The poll path that
  /// lets a consumer detect a dead producer instead of blocking
  /// forever (train::CollectiveGroup's peer deadline).
  std::optional<T> PopFor(std::chrono::milliseconds timeout,
                          bool* timed_out = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool ready = not_empty_.wait_for(
        lock, timeout, [this] { return closed_ || !items_.empty(); });
    if (timed_out != nullptr) *timed_out = !ready;
    if (!ready || items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking Pop; nullopt if nothing is available right now.
  std::optional<T> TryPop() {
    std::optional<T> value;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Ends the stream: wakes every blocked producer (Push → false) and,
  /// once drained, every blocked consumer (Pop → nullopt). Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace recd::common
