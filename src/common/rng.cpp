#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace recd::common {

std::int64_t Rng::Uniform(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::Uniform: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::UniformReal() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

std::int64_t Rng::Poisson(double mean) {
  if (mean <= 0) return 0;
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

double Rng::Exponential(double mean) {
  if (mean <= 0) {
    throw std::invalid_argument("Rng::Exponential: mean must be positive");
  }
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::int64_t Rng::Zipf(std::int64_t n, double s) {
  if (n <= 0) throw std::invalid_argument("Rng::Zipf: n must be positive");
  if (s <= 0) throw std::invalid_argument("Rng::Zipf: s must be positive");
  // Rejection-inversion sampling (Hörmann & Derflinger 1996), ranks 1..n,
  // returned zero-based.
  const double nd = static_cast<double>(n);
  auto h = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double x) {
    if (std::abs(s - 1.0) < 1e-12) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(nd + 0.5);
  std::uniform_real_distribution<double> uni(hx0, hn);
  while (true) {
    const double u = uni(engine_);
    const double x = h_inv(u);
    const auto k = static_cast<std::int64_t>(std::llround(x));
    const double kk = static_cast<double>(std::clamp<std::int64_t>(k, 1, n));
    if (u >= h(kk + 0.5) - std::pow(kk, -s)) {
      return std::clamp<std::int64_t>(k, 1, n) - 1;
    }
  }
}

std::int64_t SampleSessionSize(Rng& rng, double mean) {
  if (mean <= 1.0) return 1;
  // ~2% of sessions come from a pareto tail whose minimum scales with
  // the target mean (so small-mean datasets are not tail-dominated); the
  // body is log-normal with its mean solved so the blend hits `mean`.
  // For mean 16.5 the tail reaches beyond 1000 samples/session (Fig 3).
  constexpr double kTailProb = 0.02;
  constexpr double kTailAlpha = 1.5;
  const double tail_min = 8.0 * mean;
  const double tail_mean = tail_min * kTailAlpha / (kTailAlpha - 1.0);
  double body_mean =
      (mean - kTailProb * tail_mean) / (1.0 - kTailProb);
  body_mean = std::max(1.2, body_mean);
  if (rng.Bernoulli(kTailProb)) {
    const double u = std::max(1e-12, rng.UniformReal());
    const double x = tail_min / std::pow(u, 1.0 / kTailAlpha);
    return static_cast<std::int64_t>(std::min(x, 4096.0));
  }
  constexpr double kSigma = 0.8;
  const double mu = std::log(body_mean) - 0.5 * kSigma * kSigma;
  const double x = rng.LogNormal(mu, kSigma);
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(x)));
}

}  // namespace recd::common
