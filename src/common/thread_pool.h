// ThreadPool: the shared execution engine behind every parallel stage
// (storage stripe encode/decode, Scribe shard flush, ETL clustering, and
// the DPP-style reader workers).
//
// A fixed set of worker threads drains one FIFO task queue. Two usage
// patterns are supported:
//
//  - Submit(f): run `f` on a worker, observe the result (or exception)
//    through the returned std::future.
//  - ParallelFor(begin, end, body): index-parallel loop. Indices are
//    claimed from a shared atomic cursor so load self-balances across
//    workers (work-stealing-friendly: fast workers simply claim more),
//    and the *calling* thread participates too. While waiting for
//    stragglers the caller helps drain the task queue, which makes
//    nested ParallelFor calls (e.g. LandTable over partitions, each
//    partition encoding stripes in parallel) deadlock-free.
//
// Exceptions thrown by ParallelFor bodies cancel the remaining indices
// and the first one is rethrown on the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace recd::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(std::size_t num_threads);

  /// Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Enqueues a fire-and-forget task.
  void Post(std::function<void()> task);

  /// Enqueues `f` and returns a future for its result; exceptions
  /// propagate through the future.
  template <typename F, typename R = std::invoke_result_t<F&>>
  [[nodiscard]] std::future<R> Submit(F f) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    auto future = task->get_future();
    Post([task] { (*task)(); });
    return future;
  }

  /// Runs body(i) for every i in [begin, end), distributing `grain`-sized
  /// index runs across the workers and the calling thread. Returns when
  /// every index has completed; rethrows the first body exception.
  void ParallelFor(std::size_t begin, std::size_t end,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain = 1);

 private:
  void WorkerLoop();
  /// Pops and runs one queued task; false if the queue was empty.
  bool RunOne();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace recd::common
