#include "common/checksum_file.h"

#include <cstdio>
#include <memory>

#include "common/hash.h"

namespace recd::common {

namespace {

// Fixed header: magic + version + endian marker + payload size.
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint32_t) +
                                     sizeof(std::uint64_t);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void WriteRaw(std::FILE* f, const void* data, std::size_t n,
              const std::string& path) {
  if (std::fwrite(data, 1, n, f) != n) {
    throw ChecksumError("checksum_file: short write to " + path);
  }
}

void ReadRaw(std::FILE* f, void* data, std::size_t n,
             const std::string& path, const char* what) {
  if (std::fread(data, 1, n, f) != n) {
    throw ChecksumError("checksum_file: " + path + " truncated (" + what +
                        ")");
  }
}

}  // namespace

void WriteChecksummedFile(const std::string& path, std::uint32_t magic,
                          std::uint32_t version,
                          std::span<const std::byte> payload) {
  File f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw ChecksumError("checksum_file: cannot open " + path +
                        " for writing");
  }
  const std::uint32_t endian = kEndianMarker;
  const auto size = static_cast<std::uint64_t>(payload.size());
  const std::uint64_t checksum = HashBytes(payload, version);
  WriteRaw(f.get(), &magic, sizeof(magic), path);
  WriteRaw(f.get(), &version, sizeof(version), path);
  WriteRaw(f.get(), &endian, sizeof(endian), path);
  WriteRaw(f.get(), &size, sizeof(size), path);
  if (!payload.empty()) {
    WriteRaw(f.get(), payload.data(), payload.size(), path);
  }
  WriteRaw(f.get(), &checksum, sizeof(checksum), path);
  if (std::fflush(f.get()) != 0) {
    throw ChecksumError("checksum_file: flush failed for " + path);
  }
}

std::vector<std::byte> ReadChecksummedFile(const std::string& path,
                                           std::uint32_t magic,
                                           std::uint32_t max_version) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw ChecksumError("checksum_file: cannot open " + path);
  }
  std::uint32_t file_magic = 0;
  std::uint32_t version = 0;
  std::uint32_t endian = 0;
  std::uint64_t size = 0;
  ReadRaw(f.get(), &file_magic, sizeof(file_magic), path, "magic");
  if (file_magic != magic) {
    throw ChecksumError("checksum_file: " + path +
                        " has wrong magic (not this file type)");
  }
  ReadRaw(f.get(), &version, sizeof(version), path, "version");
  if (version > max_version) {
    throw ChecksumError("checksum_file: " + path + " has version " +
                        std::to_string(version) +
                        " > supported " + std::to_string(max_version));
  }
  ReadRaw(f.get(), &endian, sizeof(endian), path, "endian marker");
  if (endian != kEndianMarker) {
    throw ChecksumError("checksum_file: " + path +
                        " was written on a host with different endianness");
  }
  ReadRaw(f.get(), &size, sizeof(size), path, "payload size");
  std::vector<std::byte> payload(static_cast<std::size_t>(size));
  if (!payload.empty()) {
    ReadRaw(f.get(), payload.data(), payload.size(), path, "payload");
  }
  std::uint64_t checksum = 0;
  ReadRaw(f.get(), &checksum, sizeof(checksum), path, "checksum");
  if (checksum != HashBytes(payload, version)) {
    throw ChecksumError("checksum_file: " + path +
                        " failed checksum validation (corrupt payload)");
  }
  // Trailing garbage would mean the writer and reader disagree on the
  // format — reject rather than silently ignore.
  std::byte extra;
  if (std::fread(&extra, 1, 1, f.get()) != 0) {
    throw ChecksumError("checksum_file: " + path +
                        " has trailing bytes after the checksum");
  }
  return payload;
}

void CorruptChecksummedFile(const std::string& path,
                            std::size_t payload_offset) {
  File f(std::fopen(path.c_str(), "rb+"));
  if (!f) {
    throw ChecksumError("checksum_file: cannot open " + path +
                        " for corruption");
  }
  std::fseek(f.get(), 0, SEEK_END);
  const long end = std::ftell(f.get());
  const long payload_bytes = end - static_cast<long>(kHeaderBytes) -
                             static_cast<long>(sizeof(std::uint64_t));
  if (payload_bytes <= 0) {
    throw ChecksumError("checksum_file: " + path +
                        " has no payload byte to corrupt");
  }
  const long target =
      static_cast<long>(kHeaderBytes) +
      static_cast<long>(payload_offset % static_cast<std::size_t>(
                                             payload_bytes));
  std::fseek(f.get(), target, SEEK_SET);
  unsigned char byte = 0;
  ReadRaw(f.get(), &byte, 1, path, "corruption target");
  byte ^= 0xFFu;
  std::fseek(f.get(), target, SEEK_SET);
  WriteRaw(f.get(), &byte, 1, path);
}

}  // namespace recd::common
