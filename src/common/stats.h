// Small online / batch statistics helpers used across benches and tests.
#pragma once

#include <cstdint>
#include <vector>

namespace recd::common {

/// Welford online accumulator for mean/variance.
class RunningStats {
 public:
  void Add(double x);
  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Exact percentile of a sample (copies + sorts; fine for bench reporting).
[[nodiscard]] double Percentile(std::vector<double> xs, double q);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double Mean(const std::vector<double>& xs);

}  // namespace recd::common
