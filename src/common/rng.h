// Deterministic random distributions used by the synthetic workload
// generator.
//
// The session process needs heavy-tailed session sizes (paper Fig 3 shows
// mean 16.5 with a tail beyond 1000 samples/session) and zipf-distributed
// sparse IDs (standard DLRM access skew, cf. RecShard). All draws go
// through a single seeded engine so every dataset is reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace recd::common {

/// Seeded pseudo-random source wrapping the distributions the workload
/// generator needs. Not thread-safe; use one per generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t Uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  [[nodiscard]] double UniformReal();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool Bernoulli(double p);

  /// Log-normal sample with the given mean/sigma of the underlying normal.
  [[nodiscard]] double LogNormal(double mu, double sigma);

  /// Poisson sample with the given mean.
  [[nodiscard]] std::int64_t Poisson(double mean);

  /// Exponential sample with the given mean (> 0) — inter-arrival times
  /// of a Poisson process (the serving query generator's open-loop
  /// arrivals).
  [[nodiscard]] double Exponential(double mean);

  /// Gaussian sample.
  [[nodiscard]] double Gaussian(double mean, double stddev);

  /// Zipf-distributed integer in [0, n) with exponent s (s > 0). Uses
  /// rejection-inversion (Hörmann) so large n stays O(1) per sample.
  [[nodiscard]] std::int64_t Zipf(std::int64_t n, double s);

  /// Underlying engine access for std:: algorithms (e.g. std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Samples a heavy-tailed session size (number of impressions) with the
/// requested mean; min 1. Log-normal body plus occasional power-law tail,
/// shaped to match the paper's Fig 3 (mean ~16.5, tail > 1000).
[[nodiscard]] std::int64_t SampleSessionSize(Rng& rng, double mean);

}  // namespace recd::common
