// Wall-clock stopwatch for reader stage timing (paper Fig 10 measures CPU
// time per Fill/Convert/Process stage).
#pragma once

#include <cassert>
#include <chrono>

namespace recd::common {

/// Monotonic stopwatch; Start/Stop accumulate into a running total so a
/// stage can be timed across many batches.
///
/// Contract: Start and Stop come in strictly alternating pairs. A Stop
/// without a prior Start would silently add garbage (the gap back to
/// epoch), so the pairing is debug-asserted; release builds keep the
/// old unchecked speed. Reset may be called in either state and leaves
/// the stopwatch stopped.
class Stopwatch {
 public:
  void Start() {
    assert(!running_ && "Stopwatch::Start: already running");
    running_ = true;
    start_ = Clock::now();
  }
  void Stop() {
    assert(running_ && "Stopwatch::Stop: Stop without a prior Start");
    running_ = false;
    total_ += Clock::now() - start_;
  }

  /// True between a Start and its matching Stop (debug aid; the
  /// asserts above are the enforcement).
  [[nodiscard]] bool running() const { return running_; }

  /// Accumulated time in seconds (excludes a still-running interval).
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(total_).count();
  }
  void Reset() {
    total_ = {};
    running_ = false;
  }

  /// RAII scope: times the enclosing block into the given stopwatch —
  /// one Start at construction, one Stop at destruction, nothing else.
  /// There is deliberately no Pause/Resume: a scope measures exactly
  /// its own lifetime, so nested or overlapping measurement needs a
  /// second stopwatch, not a mutated one (which is what keeps stage
  /// sums additive across workers).
  class Scope {
   public:
    explicit Scope(Stopwatch& sw) : sw_(sw) { sw_.Start(); }
    ~Scope() { sw_.Stop(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Stopwatch& sw_;
  };

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  Clock::duration total_{};
  bool running_ = false;
};

}  // namespace recd::common
