// Wall-clock stopwatch for reader stage timing (paper Fig 10 measures CPU
// time per Fill/Convert/Process stage).
#pragma once

#include <chrono>

namespace recd::common {

/// Monotonic stopwatch; Start/Stop accumulate into a running total so a
/// stage can be timed across many batches.
class Stopwatch {
 public:
  void Start() { start_ = Clock::now(); }
  void Stop() { total_ += Clock::now() - start_; }

  /// Accumulated time in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(total_).count();
  }
  void Reset() { total_ = {}; }

  /// RAII scope: times the enclosing block into the given stopwatch.
  class Scope {
   public:
    explicit Scope(Stopwatch& sw) : sw_(sw) { sw_.Start(); }
    ~Scope() { sw_.Stop(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Stopwatch& sw_;
  };

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  Clock::duration total_{};
};

}  // namespace recd::common
