// Byte-stream serialization with varint / zigzag coding.
//
// Used by every subsystem that moves bytes: Scribe log framing, columnar
// file streams, and reader→trainer tensor serialization (the paper's
// over-the-network byte accounting depends on these encodings).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace recd::common {

/// Append-only byte buffer with primitive encoders.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutU8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutF32(float v);
  void PutF64(double v);

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(std::uint64_t v);
  /// ZigZag-mapped signed varint; small magnitudes stay short.
  void PutSVarint(std::int64_t v);
  /// Length-prefixed string.
  void PutString(std::string_view s);
  /// Raw bytes, no length prefix.
  void PutBytes(std::span<const std::byte> data);

  [[nodiscard]] std::span<const std::byte> bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::byte> Take() && { return std::move(buf_); }
  void Clear() { buf_.clear(); }

 private:
  std::vector<std::byte> buf_;
};

/// Thrown when a ByteReader runs past the end of its buffer or decodes a
/// malformed varint. Storage/Scribe surfaces this as data corruption.
class ByteStreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Non-owning sequential decoder over a byte span.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::uint8_t GetU8();
  [[nodiscard]] std::uint32_t GetU32();
  [[nodiscard]] std::uint64_t GetU64();
  [[nodiscard]] float GetF32();
  [[nodiscard]] double GetF64();
  [[nodiscard]] std::uint64_t GetVarint();
  [[nodiscard]] std::int64_t GetSVarint();
  [[nodiscard]] std::string GetString();
  [[nodiscard]] std::span<const std::byte> GetBytes(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void Require(std::size_t n) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// ZigZag mapping helpers (exposed for the integer codecs).
[[nodiscard]] constexpr std::uint64_t ZigZagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t ZigZagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

}  // namespace recd::common
