#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace recd::common {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double idx = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

}  // namespace recd::common
