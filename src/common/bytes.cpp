#include "common/bytes.h"

#include <cstring>

namespace recd::common {

namespace {
template <typename T>
void PutFixed(std::vector<std::byte>& buf, T v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}
}  // namespace

void ByteWriter::PutU32(std::uint32_t v) { PutFixed(buf_, v); }
void ByteWriter::PutU64(std::uint64_t v) { PutFixed(buf_, v); }
void ByteWriter::PutF32(float v) { PutFixed(buf_, v); }
void ByteWriter::PutF64(double v) { PutFixed(buf_, v); }

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<std::byte>(v));
}

void ByteWriter::PutSVarint(std::int64_t v) { PutVarint(ZigZagEncode(v)); }

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void ByteWriter::PutBytes(std::span<const std::byte> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteReader::Require(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw ByteStreamError("ByteReader: read past end of buffer");
  }
}

std::uint8_t ByteReader::GetU8() {
  Require(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

namespace {
template <typename T>
T GetFixed(std::span<const std::byte> data, std::size_t& pos) {
  T v;
  std::memcpy(&v, data.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}
}  // namespace

std::uint32_t ByteReader::GetU32() {
  Require(4);
  return GetFixed<std::uint32_t>(data_, pos_);
}

std::uint64_t ByteReader::GetU64() {
  Require(8);
  return GetFixed<std::uint64_t>(data_, pos_);
}

float ByteReader::GetF32() {
  Require(4);
  return GetFixed<float>(data_, pos_);
}

double ByteReader::GetF64() {
  Require(8);
  return GetFixed<double>(data_, pos_);
}

std::uint64_t ByteReader::GetVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    Require(1);
    const auto b = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift >= 64) throw ByteStreamError("ByteReader: varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t ByteReader::GetSVarint() { return ZigZagDecode(GetVarint()); }

std::string ByteReader::GetString() {
  const std::size_t n = GetVarint();
  Require(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::span<const std::byte> ByteReader::GetBytes(std::size_t n) {
  Require(n);
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

}  // namespace recd::common
