#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace recd::common {

namespace {
std::size_t BucketIndex(std::int64_t value) {
  // value >= 1; bucket b covers [2^b, 2^(b+1)-1].
  return static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(value)) - 1);
}
}  // namespace

void Histogram::Add(std::int64_t value, std::int64_t count) {
  if (value < 1) throw std::invalid_argument("Histogram::Add: value < 1");
  if (count <= 0) return;
  const std::size_t b = BucketIndex(value);
  if (b >= counts_.size()) counts_.resize(b + 1, 0);
  counts_[b] += count;
  total_count_ += count;
  total_sum_ += static_cast<double>(value) * static_cast<double>(count);
  max_ = std::max(max_, value);
  min_ = min_ == 0 ? value : std::min(min_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.total_count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t b = 0; b < other.counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_count_ += other.total_count_;
  total_sum_ += other.total_sum_;
  max_ = std::max(max_, other.max_);
  min_ = min_ == 0 ? other.min_ : std::min(min_, other.min_);
}

double Histogram::mean() const {
  return total_count_ == 0 ? 0.0
                           : total_sum_ / static_cast<double>(total_count_);
}

double Histogram::Percentile(double q) const {
  if (total_count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_count_);
  double seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    const double next = seen + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double lo = std::ldexp(1.0, static_cast<int>(b));
      const double hi = std::ldexp(1.0, static_cast<int>(b) + 1) - 1.0;
      const double frac =
          counts_[b] == 0 ? 0.0 : (target - seen) / static_cast<double>(counts_[b]);
      // Bucket bounds can exceed what was actually observed; clamp to
      // the exact [min, max] (q=0 therefore reports the exact minimum).
      return std::clamp(lo + frac * (hi - lo), static_cast<double>(min_),
                        static_cast<double>(max_));
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    Bucket bucket;
    bucket.lo = static_cast<std::int64_t>(1) << b;
    bucket.hi = (static_cast<std::int64_t>(1) << (b + 1)) - 1;
    bucket.count = counts_[b];
    out.push_back(bucket);
  }
  return out;
}

std::string Histogram::ToAscii(int width) const {
  const auto bs = buckets();
  std::int64_t peak = 1;
  for (const auto& b : bs) peak = std::max(peak, b.count);
  std::ostringstream os;
  for (const auto& b : bs) {
    const int bar = static_cast<int>(
        std::llround(static_cast<double>(b.count) * width /
                     static_cast<double>(peak)));
    os << "[" << b.lo << "-" << b.hi << "]\t" << b.count << "\t"
       << std::string(static_cast<std::size_t>(std::max(bar, b.count > 0 ? 1 : 0)), '#')
       << "\n";
  }
  return os.str();
}

}  // namespace recd::common
