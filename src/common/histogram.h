// Log-bucketed histogram for characterization plots (paper Figs 3 and 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace recd::common {

/// Histogram over positive integer observations with power-of-two buckets
/// ([1], [2-3], [4-7], ...). Tracks exact count, sum, and max so means and
/// tails can be reported alongside the bucketed shape.
class Histogram {
 public:
  void Add(std::int64_t value, std::int64_t count = 1);

  /// Merges another histogram into this one: bucket counts, total
  /// count/sum, min, and max all combine exactly, so merging per-worker
  /// histograms equals having observed every value in one histogram.
  /// Associative and commutative (asserted in tests/common_test.cpp) —
  /// the aggregation primitive behind obs::HistogramMetric and registry
  /// snapshot merges.
  void Merge(const Histogram& other);

  [[nodiscard]] std::int64_t total_count() const { return total_count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::int64_t max() const { return max_; }
  /// Exact smallest observation; 0 when empty.
  [[nodiscard]] std::int64_t min() const { return min_; }

  /// Approximate percentile (q in [0,1], clamped) from bucket
  /// boundaries, linearly interpolated within the target bucket and
  /// clamped to the exact observed [min, max].
  ///
  /// Approximation error: observations are only located to their
  /// power-of-two bucket [2^b, 2^(b+1)-1], so the returned value can
  /// deviate from the exact sample percentile by up to the bucket
  /// width — a factor of < 2 relative error, growing with the value
  /// (serving latency tails: a reported p99 of ~90ms means "somewhere
  /// in [64ms, 128ms)"). q=0 returns the exact min; q=1 returns the
  /// exact max; an empty histogram returns 0. Counts, mean, min, and
  /// max are always exact.
  [[nodiscard]] double Percentile(double q) const;

  struct Bucket {
    std::int64_t lo = 0;  // inclusive
    std::int64_t hi = 0;  // inclusive
    std::int64_t count = 0;
  };
  /// Non-empty buckets in ascending order.
  [[nodiscard]] std::vector<Bucket> buckets() const;

  /// Renders an ASCII bar chart (for bench harness output).
  [[nodiscard]] std::string ToAscii(int width = 48) const;

 private:
  std::vector<std::int64_t> counts_;  // counts_[b] covers [2^b, 2^(b+1)-1]
  std::int64_t total_count_ = 0;
  double total_sum_ = 0;
  std::int64_t max_ = 0;
  std::int64_t min_ = 0;  // exact; 0 only while empty
};

}  // namespace recd::common
