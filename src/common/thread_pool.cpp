#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>

namespace recd::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("ThreadPool: need at least one thread");
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::RunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;

  struct State {
    std::atomic<std::size_t> cursor;
    std::atomic<bool> failed{false};
    std::size_t end = 0;
    std::size_t grain = 1;
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t live = 0;  // helper tasks still running
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->cursor = begin;
  state->end = end;
  state->grain = grain;

  // The claim loop every participant runs: grab the next run of `grain`
  // indices until the range is exhausted or a body threw.
  const auto drain = [&body](State& s) {
    while (!s.failed.load(std::memory_order_relaxed)) {
      const std::size_t lo =
          s.cursor.fetch_add(s.grain, std::memory_order_relaxed);
      if (lo >= s.end) break;
      const std::size_t hi = std::min(s.end, lo + s.grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.mutex);
        if (!s.error) s.error = std::current_exception();
        s.failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  // One helper task per worker, capped by the number of index runs
  // beyond the one the caller will claim itself.
  const std::size_t runs = (n + grain - 1) / grain;
  const std::size_t helpers =
      std::min(threads_.size(), runs > 0 ? runs - 1 : 0);
  state->live = helpers;
  for (std::size_t h = 0; h < helpers; ++h) {
    // `body` outlives the loop because the caller blocks below until
    // every helper has finished, so capturing its address is safe.
    Post([state, drain] {
      drain(*state);
      std::lock_guard<std::mutex> lock(state->mutex);
      if (--state->live == 0) state->done_cv.notify_all();
    });
  }

  drain(*state);

  // Wait for helpers, lending a hand to whatever sits in the queue —
  // including nested ParallelFor helpers — so waiting never deadlocks.
  std::unique_lock<std::mutex> lock(state->mutex);
  while (state->live > 0) {
    lock.unlock();
    const bool ran = RunOne();
    lock.lock();
    if (!ran && state->live > 0) {
      state->done_cv.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace recd::common
