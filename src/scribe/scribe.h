// Scribe: simulated distributed message bus (paper §2.1, §4.1).
//
// Inference servers log features/events into Scribe, which consistently
// hashes each message to a shard on a storage node that buffers and
// compresses it. RecD's O1 swaps the shard key from per-message hashing
// to the session ID, which co-locates a session's (highly similar) logs
// in one shard's buffer and measurably raises the black-box compression
// ratio — this module reproduces that measurement with real serialized
// logs and a real codec.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/codec.h"
#include "datagen/sample.h"

namespace recd::common {
class ThreadPool;
}  // namespace recd::common

namespace recd::scribe {

/// O1: how messages are routed to shards.
enum class ShardKeyPolicy {
  kRandomHash,  // baseline: hash of the message (request) id
  kSessionId,   // RecD: hash of the session id
};

struct ShardStats {
  std::size_t messages = 0;
  std::size_t rx_bytes = 0;          // serialized bytes received
  std::size_t buffered_bytes = 0;    // raw bytes sitting in the buffer
  std::size_t compressed_bytes = 0;  // after block compression
};

class ScribeCluster {
 public:
  /// `block_bytes` is the buffer granularity at which a shard compresses
  /// (Scribe buffers "in memory and on disk" in bounded chunks).
  ScribeCluster(std::size_t num_shards, ShardKeyPolicy policy,
                compress::CodecKind codec = compress::CodecKind::kLz77,
                std::size_t block_bytes = 256 * 1024);

  void LogFeature(const datagen::FeatureLog& log);
  void LogEvent(const datagen::EventLog& log);

  /// Compresses every still-uncompressed buffered block. Safe to call
  /// any number of times (later calls only see new bytes). With `pool`,
  /// shards compress concurrently — block boundaries are fixed by
  /// `block_bytes`, so the compressed output is identical either way.
  /// Calling Flush explicitly is optional: the stats accessors flush the
  /// uncompressed tail themselves before reporting.
  ///
  /// `include_tail = false` compresses only *complete* `block_bytes`
  /// blocks, leaving the partial tail buffered. This is the incremental
  /// streaming mode (stream::StreamScribe flushes periodically while
  /// traffic keeps arriving): because block boundaries stay at exact
  /// multiples of `block_bytes` no matter how often it is called, any
  /// sequence of incremental flushes followed by one final full Flush
  /// produces byte-identical compressed blocks — and identical stats —
  /// to a single batch Flush.
  void Flush(common::ThreadPool* pool = nullptr, bool include_tail = true);

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  /// Per-shard stats; flushes first so compressed_bytes is never stale.
  [[nodiscard]] const ShardStats& shard_stats(std::size_t i) {
    Flush();
    return shards_[i].stats;
  }

  struct Totals {
    std::size_t messages = 0;
    std::size_t rx_bytes = 0;
    std::size_t buffered_bytes = 0;
    std::size_t compressed_bytes = 0;
    [[nodiscard]] double compression_ratio() const {
      return compress::CompressionRatio(buffered_bytes, compressed_bytes);
    }
  };
  /// Cluster-wide stats; flushes first so compressed_bytes is never
  /// stale.
  [[nodiscard]] Totals totals();

  /// Drains all feature logs, shard by shard (ETL ingestion order:
  /// per-shard network reads). Decompresses and deserializes, verifying
  /// the round trip.
  [[nodiscard]] std::vector<datagen::FeatureLog> DrainFeatures();
  [[nodiscard]] std::vector<datagen::EventLog> DrainEvents();

 private:
  struct Shard {
    // Raw serialized message frames, compressed lazily in blocks.
    std::vector<std::byte> feature_buffer;
    std::vector<std::byte> event_buffer;
    std::vector<std::vector<std::byte>> compressed_blocks;
    std::size_t feature_compress_watermark = 0;
    ShardStats stats;
  };

  [[nodiscard]] std::size_t Route(std::int64_t request_id,
                                  std::int64_t session_id) const;
  void FlushShard(Shard& shard, bool include_tail);

  std::vector<Shard> shards_;
  ShardKeyPolicy policy_;
  const compress::Codec* codec_;
  std::size_t block_bytes_;
};

}  // namespace recd::scribe
