#include "scribe/scribe.h"

#include <stdexcept>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/thread_pool.h"

namespace recd::scribe {

ScribeCluster::ScribeCluster(std::size_t num_shards, ShardKeyPolicy policy,
                             compress::CodecKind codec,
                             std::size_t block_bytes)
    : shards_(num_shards),
      policy_(policy),
      codec_(&compress::GetCodec(codec)),
      block_bytes_(block_bytes) {
  if (num_shards == 0) {
    throw std::invalid_argument("ScribeCluster: need at least one shard");
  }
}

std::size_t ScribeCluster::Route(std::int64_t request_id,
                                 std::int64_t session_id) const {
  const std::uint64_t key =
      policy_ == ShardKeyPolicy::kSessionId
          ? static_cast<std::uint64_t>(session_id)
          : static_cast<std::uint64_t>(request_id);
  return static_cast<std::size_t>(common::Mix64(key) % shards_.size());
}

void ScribeCluster::FlushShard(Shard& shard, bool include_tail) {
  // Compress everything above the watermark in `block_bytes_` chunks
  // plus a final partial block (skipped when `include_tail` is false, so
  // incremental flushes keep block boundaries at block_bytes_ multiples).
  // Blocks are independent (as a log store's chunks are), so the
  // compressor's window only sees co-located messages — which is what
  // makes the shard key choice matter — and shards can flush
  // concurrently without affecting the compressed output.
  while (shard.feature_compress_watermark < shard.feature_buffer.size()) {
    const std::size_t remaining =
        shard.feature_buffer.size() - shard.feature_compress_watermark;
    if (!include_tail && remaining < block_bytes_) break;
    const std::size_t len = std::min(block_bytes_, remaining);
    const std::span<const std::byte> block(
        shard.feature_buffer.data() + shard.feature_compress_watermark,
        len);
    auto compressed = codec_->Compress(block);
    shard.stats.compressed_bytes += compressed.size();
    shard.compressed_blocks.push_back(std::move(compressed));
    shard.feature_compress_watermark += len;
  }
}

void ScribeCluster::LogFeature(const datagen::FeatureLog& log) {
  auto& shard = shards_[Route(log.request_id, log.session_id)];
  common::ByteWriter frame;
  datagen::SerializeFeatureLog(log, frame);
  common::ByteWriter framed;
  framed.PutVarint(frame.size());
  framed.PutBytes(frame.bytes());
  shard.stats.messages += 1;
  shard.stats.rx_bytes += framed.size();
  shard.stats.buffered_bytes += framed.size();
  const auto bytes = framed.bytes();
  shard.feature_buffer.insert(shard.feature_buffer.end(), bytes.begin(),
                              bytes.end());
  // Compression is deferred to Flush(): the logging hot path stays a
  // cheap append, and the codec work — the bulk of the Scribe stage —
  // parallelizes across shards.
}

void ScribeCluster::LogEvent(const datagen::EventLog& log) {
  auto& shard = shards_[Route(log.request_id, log.session_id)];
  common::ByteWriter frame;
  datagen::SerializeEventLog(log, frame);
  common::ByteWriter framed;
  framed.PutVarint(frame.size());
  framed.PutBytes(frame.bytes());
  shard.stats.messages += 1;
  shard.stats.rx_bytes += framed.size();
  const auto bytes = framed.bytes();
  shard.event_buffer.insert(shard.event_buffer.end(), bytes.begin(),
                            bytes.end());
  // Event logs are tiny relative to feature logs; they are accounted in
  // rx bytes but the compression experiment (O1) concerns feature logs.
}

void ScribeCluster::Flush(common::ThreadPool* pool, bool include_tail) {
  if (pool != nullptr && shards_.size() > 1) {
    pool->ParallelFor(0, shards_.size(), [this, include_tail](std::size_t i) {
      FlushShard(shards_[i], include_tail);
    });
  } else {
    for (auto& shard : shards_) FlushShard(shard, include_tail);
  }
}

ScribeCluster::Totals ScribeCluster::totals() {
  Flush();
  Totals t;
  for (const auto& shard : shards_) {
    t.messages += shard.stats.messages;
    t.rx_bytes += shard.stats.rx_bytes;
    t.buffered_bytes += shard.stats.buffered_bytes;
    t.compressed_bytes += shard.stats.compressed_bytes;
  }
  return t;
}

std::vector<datagen::FeatureLog> ScribeCluster::DrainFeatures() {
  std::vector<datagen::FeatureLog> out;
  for (auto& shard : shards_) {
    // Reassemble the raw stream from compressed blocks + uncompressed
    // tail, verifying the codec round trip end-to-end.
    std::vector<std::byte> raw;
    for (const auto& block : shard.compressed_blocks) {
      auto decompressed = codec_->Decompress(block);
      raw.insert(raw.end(), decompressed.begin(), decompressed.end());
    }
    raw.insert(raw.end(),
               shard.feature_buffer.begin() +
                   static_cast<std::ptrdiff_t>(
                       shard.feature_compress_watermark),
               shard.feature_buffer.end());
    common::ByteReader reader(raw);
    while (!reader.AtEnd()) {
      const std::uint64_t frame_len = reader.GetVarint();
      common::ByteReader frame(reader.GetBytes(frame_len));
      out.push_back(datagen::DeserializeFeatureLog(frame));
    }
    shard.feature_buffer.clear();
    shard.compressed_blocks.clear();
    shard.feature_compress_watermark = 0;
  }
  return out;
}

std::vector<datagen::EventLog> ScribeCluster::DrainEvents() {
  std::vector<datagen::EventLog> out;
  for (auto& shard : shards_) {
    common::ByteReader reader(shard.event_buffer);
    while (!reader.AtEnd()) {
      const std::uint64_t frame_len = reader.GetVarint();
      common::ByteReader frame(reader.GetBytes(frame_len));
      out.push_back(datagen::DeserializeEventLog(frame));
    }
    shard.event_buffer.clear();
  }
  return out;
}

}  // namespace recd::scribe
