#include "compress/int_codec.h"

#include <stdexcept>

namespace recd::compress {

namespace {

void EncodeVarint(std::span<const std::int64_t> values,
                  common::ByteWriter& out) {
  for (const auto v : values) out.PutSVarint(v);
}

void EncodeDelta(std::span<const std::int64_t> values,
                 common::ByteWriter& out) {
  std::int64_t prev = 0;
  for (const auto v : values) {
    out.PutSVarint(v - prev);
    prev = v;
  }
}

void EncodeRle(std::span<const std::int64_t> values,
               common::ByteWriter& out) {
  std::size_t i = 0;
  while (i < values.size()) {
    std::size_t run = 1;
    while (i + run < values.size() && values[i + run] == values[i]) ++run;
    out.PutVarint(run);
    out.PutSVarint(values[i]);
    i += run;
  }
}

}  // namespace

void EncodeInts(std::span<const std::int64_t> values, IntEncoding encoding,
                common::ByteWriter& out) {
  out.PutU8(static_cast<std::uint8_t>(encoding));
  out.PutVarint(values.size());
  switch (encoding) {
    case IntEncoding::kVarint:
      EncodeVarint(values, out);
      return;
    case IntEncoding::kDeltaVarint:
      EncodeDelta(values, out);
      return;
    case IntEncoding::kRle:
      EncodeRle(values, out);
      return;
  }
  throw std::invalid_argument("EncodeInts: unknown encoding");
}

void EncodeIntsAuto(std::span<const std::int64_t> values,
                    common::ByteWriter& out) {
  common::ByteWriter plain;
  EncodeInts(values, IntEncoding::kVarint, plain);
  common::ByteWriter delta;
  EncodeInts(values, IntEncoding::kDeltaVarint, delta);
  common::ByteWriter rle;
  EncodeInts(values, IntEncoding::kRle, rle);
  const common::ByteWriter* best = &plain;
  if (delta.size() < best->size()) best = &delta;
  if (rle.size() < best->size()) best = &rle;
  out.PutBytes(best->bytes());
}

std::vector<std::int64_t> DecodeInts(common::ByteReader& in) {
  const auto encoding = static_cast<IntEncoding>(in.GetU8());
  const std::uint64_t count = in.GetVarint();
  std::vector<std::int64_t> out;
  out.reserve(count);
  switch (encoding) {
    case IntEncoding::kVarint:
      for (std::uint64_t i = 0; i < count; ++i) out.push_back(in.GetSVarint());
      return out;
    case IntEncoding::kDeltaVarint: {
      std::int64_t prev = 0;
      for (std::uint64_t i = 0; i < count; ++i) {
        prev += in.GetSVarint();
        out.push_back(prev);
      }
      return out;
    }
    case IntEncoding::kRle: {
      while (out.size() < count) {
        const std::uint64_t run = in.GetVarint();
        const std::int64_t v = in.GetSVarint();
        if (out.size() + run > count) {
          throw common::ByteStreamError("DecodeInts: RLE run overflow");
        }
        out.insert(out.end(), run, v);
      }
      return out;
    }
  }
  throw common::ByteStreamError("DecodeInts: unknown encoding tag");
}

}  // namespace recd::compress
