#include "compress/codec.h"

#include <stdexcept>

#include "compress/lz77.h"

namespace recd::compress {

std::vector<std::byte> IdentityCodec::Compress(
    std::span<const std::byte> input) const {
  return {input.begin(), input.end()};
}

std::vector<std::byte> IdentityCodec::Decompress(
    std::span<const std::byte> input) const {
  return {input.begin(), input.end()};
}

const Codec& GetCodec(CodecKind kind) {
  static const IdentityCodec identity;
  static const Lz77Codec lz77;
  switch (kind) {
    case CodecKind::kIdentity:
      return identity;
    case CodecKind::kLz77:
      return lz77;
  }
  throw std::invalid_argument("GetCodec: unknown codec kind");
}

double CompressionRatio(std::size_t uncompressed, std::size_t compressed) {
  if (compressed == 0) return 0.0;
  return static_cast<double>(uncompressed) /
         static_cast<double>(compressed);
}

}  // namespace recd::compress
