// LZ77 block codec with a hash-chain match finder.
//
// This is the repository's zstd stand-in (see docs/ARCHITECTURE.md §1). The format:
//   [varint raw_size] then a token stream; each token is
//   [varint literal_len][literal bytes][varint match_len][varint distance]
// A match_len of 0 terminates (trailing literals only). Minimum match is
// 4 bytes; window is 1 MiB so duplicate feature rows that land in the
// same stripe — even hundreds of KB apart — still match, which is exactly
// the mechanism the paper's clustering optimization (O2) exploits.
#pragma once

#include "compress/codec.h"

namespace recd::compress {

class Lz77Codec final : public Codec {
 public:
  /// Tuning knobs; defaults balance speed and ratio for stripe-sized
  /// blocks (tens of KB to a few MB).
  struct Options {
    std::size_t window = 1 << 20;    // max match distance
    std::size_t min_match = 4;       // shortest usable match
    std::size_t max_match = 1 << 16; // cap to bound token magnitude
    int max_chain = 32;              // match-finder effort
  };

  Lz77Codec() = default;
  explicit Lz77Codec(Options options) : options_(options) {}

  [[nodiscard]] std::vector<std::byte> Compress(
      std::span<const std::byte> input) const override;
  [[nodiscard]] std::vector<std::byte> Decompress(
      std::span<const std::byte> input) const override;
  [[nodiscard]] CodecKind kind() const override { return CodecKind::kLz77; }
  [[nodiscard]] std::string name() const override { return "lz77"; }

 private:
  Options options_;
};

}  // namespace recd::compress
