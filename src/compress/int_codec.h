// Integer stream encodings for columnar storage (ORC/DWRF-style).
//
// Feature columns in the storage layer are int64 ID lists plus lengths;
// encoding them as delta+varint (IDs are often sorted/clustered) or RLE
// (lengths repeat) before block compression mirrors how DWRF encodes
// streams before zstd.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace recd::compress {

enum class IntEncoding : std::uint8_t {
  kVarint = 0,       // plain zigzag varints
  kDeltaVarint = 1,  // zigzag varint of successive differences
  kRle = 2,          // (run_length, value) pairs
};

/// Encodes values with the chosen encoding into `out` (self-framing:
/// leading encoding tag + count).
void EncodeInts(std::span<const std::int64_t> values, IntEncoding encoding,
                common::ByteWriter& out);

/// Picks the smallest of the supported encodings for `values`.
void EncodeIntsAuto(std::span<const std::int64_t> values,
                    common::ByteWriter& out);

/// Decodes a stream written by EncodeInts/EncodeIntsAuto.
[[nodiscard]] std::vector<std::int64_t> DecodeInts(common::ByteReader& in);

}  // namespace recd::compress
