#include "compress/lz77.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/bytes.h"

namespace recd::compress {

namespace {

constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t HashQuad(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::size_t MatchLength(const std::byte* a, const std::byte* b,
                        std::size_t limit) {
  std::size_t n = 0;
  while (n + 8 <= limit) {
    std::uint64_t va;
    std::uint64_t vb;
    std::memcpy(&va, a + n, 8);
    std::memcpy(&vb, b + n, 8);
    if (va != vb) {
      return n + static_cast<std::size_t>(
                     std::countr_zero(va ^ vb) >> 3);
    }
    n += 8;
  }
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

std::vector<std::byte> Lz77Codec::Compress(
    std::span<const std::byte> input) const {
  common::ByteWriter out;
  out.PutVarint(input.size());
  const std::size_t n = input.size();
  if (n == 0) return std::move(out).Take();
  const std::byte* base = input.data();

  // head[h] = most recent position with hash h; chain[i] = previous
  // position with the same hash as i. Positions offset by +1, 0 = none.
  std::vector<std::uint32_t> head(kHashSize, 0);
  std::vector<std::uint32_t> chain(n, 0);

  std::size_t literal_start = 0;
  std::size_t i = 0;
  auto emit = [&](std::size_t match_len, std::size_t distance) {
    out.PutVarint(i - literal_start);
    out.PutBytes(input.subspan(literal_start, i - literal_start));
    out.PutVarint(match_len);
    if (match_len > 0) out.PutVarint(distance);
  };

  while (i + options_.min_match <= n) {
    const std::uint32_t h = HashQuad(base + i);
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    std::uint32_t cand = head[h];
    int chain_left = options_.max_chain;
    const std::size_t limit = std::min(n - i, options_.max_match);
    while (cand != 0 && chain_left-- > 0) {
      const std::size_t pos = cand - 1;
      const std::size_t dist = i - pos;
      if (dist > options_.window) break;
      const std::size_t len = MatchLength(base + pos, base + i, limit);
      if (len > best_len) {
        best_len = len;
        best_dist = dist;
        if (len >= limit) break;
      }
      cand = chain[pos];
    }
    if (best_len >= options_.min_match) {
      emit(best_len, best_dist);
      // Insert hash entries for the matched region (sparsely for speed).
      const std::size_t end = i + best_len;
      const std::size_t step = best_len > 64 ? 4 : 1;
      while (i < end && i + 4 <= n) {
        const std::uint32_t hh = HashQuad(base + i);
        chain[i] = head[hh];
        head[hh] = static_cast<std::uint32_t>(i + 1);
        i += step;
      }
      i = end;
      literal_start = i;
    } else {
      chain[i] = head[h];
      head[h] = static_cast<std::uint32_t>(i + 1);
      ++i;
    }
  }
  i = n;
  // Final token: trailing literals, match_len 0.
  out.PutVarint(i - literal_start);
  out.PutBytes(input.subspan(literal_start, i - literal_start));
  out.PutVarint(0);
  return std::move(out).Take();
}

std::vector<std::byte> Lz77Codec::Decompress(
    std::span<const std::byte> input) const {
  common::ByteReader in(input);
  const std::uint64_t raw_size = in.GetVarint();
  std::vector<std::byte> out;
  out.reserve(raw_size);
  while (out.size() < raw_size || !in.AtEnd()) {
    const std::uint64_t literal_len = in.GetVarint();
    auto lit = in.GetBytes(literal_len);
    out.insert(out.end(), lit.begin(), lit.end());
    const std::uint64_t match_len = in.GetVarint();
    if (match_len == 0) break;
    const std::uint64_t distance = in.GetVarint();
    if (distance == 0 || distance > out.size()) {
      throw common::ByteStreamError("Lz77: invalid match distance");
    }
    // Byte-by-byte copy: overlapping matches (distance < match_len)
    // replicate runs, matching standard LZ semantics.
    std::size_t src = out.size() - distance;
    for (std::uint64_t k = 0; k < match_len; ++k) {
      out.push_back(out[src + k]);
    }
  }
  if (out.size() != raw_size) {
    throw common::ByteStreamError("Lz77: size mismatch after decompress");
  }
  return out;
}

}  // namespace recd::compress
