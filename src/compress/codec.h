// Block compression codec interface.
//
// Stands in for zstd in the paper's pipeline: Scribe shard buffers and
// DWRF stripe streams are compressed through this interface, so the
// compression-ratio experiments (O1 sharding, O2 clustering, Fig 7
// storage, Table 3 read bytes) measure real compressed sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace recd::compress {

enum class CodecKind : std::uint8_t {
  kIdentity = 0,  // no compression (baseline / incompressible streams)
  kLz77 = 1,      // general-purpose LZ (zstd stand-in)
};

/// Abstract block codec. Implementations must be stateless across calls so
/// one instance can be shared by all stripes/shards.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Compresses a block. The output is self-contained (carries whatever
  /// framing Decompress needs besides the codec identity).
  [[nodiscard]] virtual std::vector<std::byte> Compress(
      std::span<const std::byte> input) const = 0;

  /// Inverse of Compress. Throws recd::common::ByteStreamError (or
  /// std::runtime_error) on malformed input.
  [[nodiscard]] virtual std::vector<std::byte> Decompress(
      std::span<const std::byte> input) const = 0;

  [[nodiscard]] virtual CodecKind kind() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Pass-through codec.
class IdentityCodec final : public Codec {
 public:
  [[nodiscard]] std::vector<std::byte> Compress(
      std::span<const std::byte> input) const override;
  [[nodiscard]] std::vector<std::byte> Decompress(
      std::span<const std::byte> input) const override;
  [[nodiscard]] CodecKind kind() const override {
    return CodecKind::kIdentity;
  }
  [[nodiscard]] std::string name() const override { return "identity"; }
};

/// Returns the process-wide shared instance for a codec kind.
[[nodiscard]] const Codec& GetCodec(CodecKind kind);

/// Convenience: compression ratio (uncompressed/compressed); 0 if empty.
[[nodiscard]] double CompressionRatio(std::size_t uncompressed,
                                      std::size_t compressed);

}  // namespace recd::compress
