#include "core/pipeline.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "common/thread_pool.h"
#include "reader/reader_pool.h"
#include "train/model.h"

namespace recd::core {

void ValidatePipelineOptions(const PipelineOptions& options) {
  if (options.num_scribe_shards == 0) {
    throw std::invalid_argument(
        "PipelineOptions: num_scribe_shards must be >= 1");
  }
  if (options.samples_per_partition == 0) {
    throw std::invalid_argument(
        "PipelineOptions: samples_per_partition must be >= 1");
  }
  if (options.rows_per_stripe == 0) {
    throw std::invalid_argument(
        "PipelineOptions: rows_per_stripe must be >= 1");
  }
}

reader::DataLoaderConfig MakePipelineLoader(const train::ModelConfig& model,
                                            const RecdConfig& config) {
  auto loader =
      train::MakeDataLoaderConfig(model, config.batch_size, config.use_ikjt);
  // A representative preprocessing pipeline: hash the first dedup-able
  // feature group and normalize dense inputs.
  if (!model.elementwise_features.empty()) {
    loader.transforms.push_back({reader::TransformKind::kSparseHash,
                                 model.elementwise_features.front(),
                                 1'000'003, 0});
  }
  for (const auto& group : model.sequence_groups) {
    loader.transforms.push_back(
        {reader::TransformKind::kSparseHash, group.features.front(),
         1'000'003, 0});
  }
  loader.transforms.push_back(
      {reader::TransformKind::kDenseNormalize, "", 0.0, 1.0});
  return loader;
}

storage::StorageSchema MakePipelineSchema(
    const datagen::DatasetSpec& dataset) {
  storage::StorageSchema schema;
  schema.num_dense = dataset.num_dense;
  for (const auto& f : dataset.sparse) schema.sparse_names.push_back(f.name);
  return schema;
}

BatchConsumer::BatchConsumer(const train::ModelConfig& model,
                             const train::ClusterSpec& cluster,
                             const RecdConfig& config,
                             const train::ShapeScale& scale,
                             std::size_t max_trainer_batches)
    : trainer_(model, cluster, config.trainer, scale),
      batch_size_(config.batch_size),
      max_batches_(max_trainer_batches),
      num_gpus_(cluster.num_gpus) {}

void BatchConsumer::Consume(const reader::PreprocessedBatch& batch) {
  spc_sum_ += batch.SamplesPerSession();
  for (const auto& stats : batch.group_stats) {
    values_before_ += static_cast<double>(stats.values_before);
    values_after_ += static_cast<double>(stats.values_after);
  }
  if (iterations_ < max_batches_ && batch.batch_size == batch_size_) {
    const auto it = trainer_.SimulateIteration(batch);
    if (iterations_ == 0) {
      accum_ = it;
    } else {
      accum_.emb_s += it.emb_s;
      accum_.gemm_s += it.gemm_s;
      accum_.a2a_exposed_s += it.a2a_exposed_s;
      accum_.other_s += it.other_s;
      accum_.a2a_raw_s += it.a2a_raw_s;
      accum_.sdd_bytes += it.sdd_bytes;
      accum_.emb_a2a_bytes += it.emb_a2a_bytes;
      accum_.lookups += it.lookups;
      accum_.flops += it.flops;
      accum_.flops_logical += it.flops_logical;
      accum_.mem_util_max = std::max(accum_.mem_util_max, it.mem_util_max);
      accum_.mem_util_avg += it.mem_util_avg;
      accum_.dynamic_mem_bytes =
          std::max(accum_.dynamic_mem_bytes, it.dynamic_mem_bytes);
    }
    ++iterations_;
  }
}

void BatchConsumer::Finalize(const reader::StageTimes& times,
                             const reader::ReaderIoStats& io,
                             PipelineResult& result) const {
  const std::size_t batches = io.batches_produced;
  result.batch_samples_per_session =
      batches == 0 ? 0.0 : spc_sum_ / static_cast<double>(batches);
  result.mean_dedupe_factor =
      values_after_ == 0 ? 1.0 : values_before_ / values_after_;
  result.reader_times = times;
  result.reader_io = io;
  // The pool reports wall_s (its stage sums are CPU seconds across
  // overlapping workers); the single-threaded path's total_s is already
  // wall time. Caveat: wall_s spans construction to exhaustion, so the
  // few iterations the trainer sim runs between batches are included —
  // the reader keeps prefetching through them, but the metric is
  // pipeline-as-consumed throughput, not isolated reader speed. Compare
  // rows/s across num_threads values with
  // bench_fig10_reader_breakdown's scaling section (a tight drain
  // loop), not across differently-shaped Run() configs.
  const double reader_s = times.wall_s > 0 ? times.wall_s : times.total_s();
  result.reader_rows_per_second =
      reader_s == 0 ? 0.0 : static_cast<double>(io.rows_read) / reader_s;

  if (iterations_ > 0) {
    auto accum = accum_;
    const double inv = 1.0 / static_cast<double>(iterations_);
    accum.emb_s *= inv;
    accum.gemm_s *= inv;
    accum.a2a_exposed_s *= inv;
    accum.other_s *= inv;
    accum.a2a_raw_s *= inv;
    accum.sdd_bytes *= inv;
    accum.emb_a2a_bytes *= inv;
    accum.lookups *= inv;
    accum.flops *= inv;
    accum.flops_logical *= inv;
    accum.mem_util_avg *= iterations_ > 1 ? inv : 1.0;
    accum.qps = accum.global_batch_rows / accum.total_s();
    accum.achieved_flops_per_gpu =
        accum.flops / accum.total_s() / static_cast<double>(num_gpus_);
    accum.logical_flops_per_gpu =
        accum.flops_logical / accum.total_s() /
        static_cast<double>(num_gpus_);
    result.trainer = accum;
    result.trainer_qps = accum.qps;
  }
}

PipelineRunner::PipelineRunner(datagen::DatasetSpec dataset,
                               train::ModelConfig model,
                               train::ClusterSpec cluster,
                               PipelineOptions options)
    : dataset_(std::move(dataset)),
      model_(std::move(model)),
      cluster_(cluster),
      options_(options) {
  ValidatePipelineOptions(options_);
  datagen::TrafficGenerator generator(dataset_);
  traffic_ = generator.Generate(options_.num_samples);
  samples_ = etl::JoinLogs(traffic_.features, traffic_.events);
}

PipelineResult PipelineRunner::Run(const RecdConfig& config) {
  PipelineResult result;

  // One pool drives every parallel stage; absent (num_threads <= 1) the
  // stages take their original single-threaded paths.
  std::optional<common::ThreadPool> pool_storage;
  common::ThreadPool* pool = nullptr;
  if (options_.num_threads > 1) {
    pool_storage.emplace(options_.num_threads);
    pool = &*pool_storage;
  }

  // ---- O1: Scribe sharding + compression. ----------------------------
  scribe::ScribeCluster scribe_cluster(
      options_.num_scribe_shards,
      config.shard_by_session ? scribe::ShardKeyPolicy::kSessionId
                              : scribe::ShardKeyPolicy::kRandomHash);
  for (const auto& log : traffic_.features) {
    scribe_cluster.LogFeature(log);
  }
  for (const auto& log : traffic_.events) scribe_cluster.LogEvent(log);
  scribe_cluster.Flush(pool);
  result.scribe_compression_ratio =
      scribe_cluster.totals().compression_ratio();

  // ---- ETL: join (pre-joined in ctor) + downsample (§7) + O2 ----------
  // clustering + landing.
  std::vector<datagen::Sample> samples = samples_;
  if (config.downsample != etl::DownsampleMode::kNone) {
    samples = etl::Downsample(samples, config.downsample,
                              config.downsample_keep_rate, dataset_.seed,
                              pool);
  }
  if (config.cluster_by_session) etl::ClusterBySession(samples, pool);
  result.samples_per_session = etl::MeanSamplesPerSession(samples);
  auto partitions =
      etl::PartitionByCount(std::move(samples), options_.samples_per_partition);

  const auto schema = MakePipelineSchema(dataset_);
  storage::BlobStore store;
  storage::WriterOptions wopts;
  wopts.rows_per_stripe = options_.rows_per_stripe;
  wopts.pool = pool;
  const auto landed =
      storage::LandTable(store, "table", schema, partitions, wopts, pool);
  result.storage_compression_ratio = landed.compression_ratio();
  result.stored_bytes = landed.stored_bytes;

  // ---- Reader tier (O3/O4) feeding the trainer (O5-O7). ---------------
  train::ModelConfig model = model_;
  if (config.emb_dim_override.has_value()) {
    model.emb_dim = *config.emb_dim_override;
  }
  auto loader = MakePipelineLoader(model, config);

  // The land is the pool's last job; release its threads before the
  // reader spawns its own workers so the host is not oversubscribed
  // with idle ThreadPool threads during the read/train phase.
  pool = nullptr;
  pool_storage.reset();

  loader.num_workers = options_.num_threads;
  reader::ReaderOptions ropts;
  ropts.use_ikjt = config.use_ikjt;
  reader::ReaderPool rdr(store, landed.table, loader, ropts);

  BatchConsumer consumer(model, cluster_, config, options_.trainer_scale,
                         options_.max_trainer_batches);
  while (auto batch = rdr.NextBatch()) consumer.Consume(*batch);
  consumer.Finalize(rdr.times(), rdr.io(), result);
  return result;
}

}  // namespace recd::core
