#include "core/characterize.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace recd::core {

namespace {

/// Session id -> indices of its samples within the partition.
std::unordered_map<std::int64_t, std::vector<std::size_t>> GroupBySession(
    const std::vector<datagen::Sample>& partition) {
  std::unordered_map<std::int64_t, std::vector<std::size_t>> sessions;
  for (std::size_t i = 0; i < partition.size(); ++i) {
    sessions[partition[i].session_id].push_back(i);
  }
  return sessions;
}

}  // namespace

DuplicationReport AnalyzeDuplication(
    const std::vector<datagen::Sample>& partition,
    const datagen::DatasetSpec& spec, std::size_t batch_size) {
  DuplicationReport report;
  if (partition.empty()) return report;

  const auto sessions = GroupBySession(partition);
  for (const auto& [sid, indices] : sessions) {
    report.samples_per_session.Add(
        static_cast<std::int64_t>(indices.size()));
  }
  report.mean_samples_per_session = report.samples_per_session.mean();

  // Fig 3 right: group within each consecutive batch of the partition's
  // *current* order (interleaved unless clustered).
  double batch_spc_sum = 0;
  std::size_t num_batches = 0;
  for (std::size_t start = 0; start < partition.size();
       start += batch_size) {
    const std::size_t end = std::min(partition.size(), start + batch_size);
    std::unordered_map<std::int64_t, std::int64_t> counts;
    for (std::size_t i = start; i < end; ++i) {
      ++counts[partition[i].session_id];
    }
    for (const auto& [sid, count] : counts) {
      report.batch_samples_per_session.Add(count);
    }
    batch_spc_sum += static_cast<double>(end - start) /
                     static_cast<double>(counts.size());
    ++num_batches;
  }
  report.mean_batch_samples_per_session =
      num_batches == 0 ? 0.0 : batch_spc_sum / static_cast<double>(num_batches);

  // Per-feature duplication across each session's samples.
  const std::size_t num_features = spec.num_sparse();
  report.features.resize(num_features);
  double exact_sum = 0;
  double partial_sum = 0;
  double exact_ids_weighted = 0;
  double partial_ids_weighted = 0;
  double total_ids_all = 0;
  for (std::size_t f = 0; f < num_features; ++f) {
    auto& fd = report.features[f];
    fd.name = spec.sparse[f].name;
    fd.klass = spec.sparse[f].klass;
    std::size_t exact_dups = 0;      // samples repeating an in-session list
    std::size_t total_samples = 0;
    std::size_t distinct_ids = 0;    // per-session distinct id values
    std::size_t total_ids = 0;
    for (const auto& [sid, indices] : sessions) {
      std::unordered_set<std::uint64_t> seen_lists;
      std::unordered_set<std::int64_t> seen_ids;
      for (const auto i : indices) {
        const auto& list = partition[i].sparse[f];
        ++total_samples;
        total_ids += list.size();
        const std::uint64_t h = common::HashIds(list);
        if (!seen_lists.insert(h).second) ++exact_dups;
        for (const auto id : list) seen_ids.insert(id);
      }
      distinct_ids += seen_ids.size();
    }
    fd.exact_duplicate_pct =
        total_samples == 0
            ? 0.0
            : 100.0 * static_cast<double>(exact_dups) /
                  static_cast<double>(total_samples);
    fd.partial_duplicate_pct =
        total_ids == 0 ? 0.0
                       : 100.0 *
                             static_cast<double>(total_ids - distinct_ids) /
                             static_cast<double>(total_ids);
    fd.total_ids = total_ids;
    fd.mean_length = total_samples == 0
                         ? 0.0
                         : static_cast<double>(total_ids) /
                               static_cast<double>(total_samples);
    exact_sum += fd.exact_duplicate_pct;
    partial_sum += fd.partial_duplicate_pct;
    exact_ids_weighted +=
        fd.exact_duplicate_pct * static_cast<double>(total_ids);
    partial_ids_weighted +=
        fd.partial_duplicate_pct * static_cast<double>(total_ids);
    total_ids_all += static_cast<double>(total_ids);
  }
  report.mean_exact_pct = exact_sum / static_cast<double>(num_features);
  report.mean_partial_pct = partial_sum / static_cast<double>(num_features);
  if (total_ids_all > 0) {
    report.byte_weighted_exact_pct = exact_ids_weighted / total_ids_all;
    report.byte_weighted_partial_pct = partial_ids_weighted / total_ids_all;
  }
  std::sort(report.features.begin(), report.features.end(),
            [](const FeatureDuplication& a, const FeatureDuplication& b) {
              return a.exact_duplicate_pct > b.exact_duplicate_pct;
            });
  return report;
}

}  // namespace recd::core
