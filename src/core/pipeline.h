// End-to-end pipeline runner: datagen → Scribe → ETL → storage → reader
// tier → trainer (paper Fig 1), with every RecD optimization toggleable.
//
// One runner instance generates traffic once; each Run() replays it
// through the pipeline under a different RecdConfig so baseline and RecD
// measurements compare identical data (as the paper's clustered table
// "contains the same data as the baseline table").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/characterize.h"
#include "datagen/generator.h"
#include "etl/etl.h"
#include "reader/reader.h"
#include "scribe/scribe.h"
#include "storage/table.h"
#include "train/trainer_sim.h"

namespace recd::core {

/// Which RecD optimizations are enabled (Table 1), plus the §7
/// dataset-thinning policy.
struct RecdConfig {
  bool shard_by_session = true;    // O1 (Scribe shard key)
  bool cluster_by_session = true;  // O2 (ETL clustering)
  bool use_ikjt = true;            // O3 (+O4: dedup preprocessing)
  /// §7 "Boosting Dedupe Factors": per-session downsampling preserves S
  /// where per-sample downsampling destroys it.
  etl::DownsampleMode downsample = etl::DownsampleMode::kNone;
  double downsample_keep_rate = 1.0;
  train::TrainerFlags trainer = train::TrainerFlags::Recd();  // O5-O7
  std::size_t batch_size = 2048;
  std::optional<std::size_t> emb_dim_override;  // Table 2's EMB D256 row

  [[nodiscard]] static RecdConfig Baseline(std::size_t batch_size) {
    RecdConfig c;
    c.shard_by_session = false;
    c.cluster_by_session = false;
    c.use_ikjt = false;
    c.trainer = train::TrainerFlags::Baseline();
    c.batch_size = batch_size;
    return c;
  }
  [[nodiscard]] static RecdConfig Full(std::size_t batch_size) {
    RecdConfig c;
    c.batch_size = batch_size;
    return c;
  }
};

/// Invariants (checked by ValidatePipelineOptions, enforced at
/// construction by PipelineRunner and stream::StreamPipelineRunner):
/// `num_scribe_shards`, `samples_per_partition`, and `rows_per_stripe`
/// must all be >= 1. Zero used to surface as a throw deep inside Run()
/// (or, for a would-be zero-row stripe cut, silent misbehavior);
/// validating up front names the offending knob instead.
struct PipelineOptions {
  std::size_t num_samples = 20'000;
  /// Trainer shape multipliers (see train::ShapeScale); benches use
  /// {8, 4} to restore paper magnitudes.
  train::ShapeScale trainer_scale;
  std::size_t num_scribe_shards = 8;
  std::size_t samples_per_partition = 10'000;
  std::size_t rows_per_stripe = 1024;
  std::size_t max_trainer_batches = 4;  // iterations averaged for QPS
  /// Worker threads for every parallel stage: Scribe flush, ETL
  /// clustering/downsampling, storage stripe encode, and the reader
  /// pool (reader::ReaderPool with this many workers). 1 = the original
  /// single-threaded pipeline. Any value yields byte-identical sample
  /// data and identical non-timing PipelineResult counters — stages
  /// reassemble their outputs in scan order (docs/ARCHITECTURE.md §7).
  std::size_t num_threads = 1;
};

/// Everything the benchmarks report, measured in one pass.
struct PipelineResult {
  // O1: Scribe.
  double scribe_compression_ratio = 0;
  // O2 + storage.
  double storage_compression_ratio = 0;
  std::size_t stored_bytes = 0;
  double samples_per_session = 0;       // S in the landed table
  double batch_samples_per_session = 0; // within training batches
  // Readers.
  reader::StageTimes reader_times;
  reader::ReaderIoStats reader_io;
  double reader_rows_per_second = 0;
  // Dedup outcome.
  double mean_dedupe_factor = 0;  // across dedup groups, value-weighted
  // Trainer.
  train::IterationBreakdown trainer;
  double trainer_qps = 0;
};

/// Throws std::invalid_argument naming the first violated PipelineOptions
/// invariant (see the struct comment). Shared by the batch and streaming
/// runners so both reject bad knobs at construction.
void ValidatePipelineOptions(const PipelineOptions& options);

/// Accumulates the trainer-side measurements of PipelineResult from a
/// stream of preprocessed batches: samples/session within batches,
/// measured dedupe factor, and the simulated training iterations.
/// Factored out of PipelineRunner::Run so the streaming runner consumes
/// batches through the *same* code — identical batch streams then yield
/// identical counters by construction, not by parallel maintenance.
class BatchConsumer {
 public:
  /// `model` must already carry any emb_dim_override.
  BatchConsumer(const train::ModelConfig& model,
                const train::ClusterSpec& cluster, const RecdConfig& config,
                const train::ShapeScale& scale,
                std::size_t max_trainer_batches);

  void Consume(const reader::PreprocessedBatch& batch);

  /// Writes the consumed measurements plus the reader's final stats
  /// into `result` (batch_samples_per_session, mean_dedupe_factor,
  /// reader_times/io/rows-per-second, trainer breakdown and QPS).
  void Finalize(const reader::StageTimes& times,
                const reader::ReaderIoStats& io,
                PipelineResult& result) const;

 private:
  train::TrainerSim trainer_;
  std::size_t batch_size_;
  std::size_t max_batches_;
  std::size_t num_gpus_;
  double spc_sum_ = 0;
  double values_before_ = 0;
  double values_after_ = 0;
  std::size_t iterations_ = 0;
  train::IterationBreakdown accum_;
};

/// The DataLoader configuration PipelineRunner::Run derives from a model
/// + RecdConfig: batch size, IKJT groups, and the representative
/// preprocessing transforms (hash the first feature of every dedup-able
/// group, normalize dense). Factored out so the streaming runner feeds
/// its tailing readers the exact same loader — a precondition for the
/// streaming-equals-batch contract. `model` must already carry any
/// emb_dim_override.
[[nodiscard]] reader::DataLoaderConfig MakePipelineLoader(
    const train::ModelConfig& model, const RecdConfig& config);

/// The storage schema the pipeline lands a dataset under (dense width +
/// every sparse feature, in spec order). Shared by both runners for the
/// same reason as MakePipelineLoader: the streaming table must be
/// shaped exactly like the batch table by construction.
[[nodiscard]] storage::StorageSchema MakePipelineSchema(
    const datagen::DatasetSpec& dataset);

class PipelineRunner {
 public:
  /// Throws std::invalid_argument if `options` violates an invariant
  /// (ValidatePipelineOptions).
  PipelineRunner(datagen::DatasetSpec dataset, train::ModelConfig model,
                 train::ClusterSpec cluster, PipelineOptions options = {});

  /// Runs the full pipeline under `config`. Deterministic: identical
  /// configs give identical results.
  [[nodiscard]] PipelineResult Run(const RecdConfig& config);

  [[nodiscard]] const datagen::DatasetSpec& dataset() const {
    return dataset_;
  }
  [[nodiscard]] const train::ModelConfig& model() const { return model_; }

  /// The joined, un-clustered sample stream (for characterization).
  [[nodiscard]] const std::vector<datagen::Sample>& raw_samples() const {
    return samples_;
  }

 private:
  datagen::DatasetSpec dataset_;
  train::ModelConfig model_;
  train::ClusterSpec cluster_;
  PipelineOptions options_;

  datagen::TrafficGenerator::Traffic traffic_;
  std::vector<datagen::Sample> samples_;  // joined, inference order
};

}  // namespace recd::core
