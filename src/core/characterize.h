// Dataset duplication characterization (paper §3, Figs 3 and 4).
//
// Measures, over a partition of samples: the samples-per-session
// distribution (partition-wide and within training batches) and, per
// sparse feature, the fraction of exact-duplicate values and of
// partially-duplicated IDs across each session's samples — including the
// byte-weighted aggregates the paper reports (81.6% / 89.4%).
#pragma once

#include <string>
#include <vector>

#include "common/histogram.h"
#include "datagen/sample.h"
#include "datagen/schema.h"

namespace recd::core {

struct FeatureDuplication {
  std::string name;
  datagen::FeatureClass klass = datagen::FeatureClass::kUser;
  double exact_duplicate_pct = 0;    // % samples whose list repeats in-session
  double partial_duplicate_pct = 0;  // % IDs shared within the session
  double mean_length = 0;
  std::size_t total_ids = 0;         // feature volume (bytes / 8)
};

struct DuplicationReport {
  common::Histogram samples_per_session;       // Fig 3 left
  common::Histogram batch_samples_per_session; // Fig 3 right
  double mean_samples_per_session = 0;
  double mean_batch_samples_per_session = 0;

  std::vector<FeatureDuplication> features;    // Fig 4, sorted descending
  double mean_exact_pct = 0;                   // unweighted feature mean
  double mean_partial_pct = 0;
  double byte_weighted_exact_pct = 0;          // ID-volume weighted
  double byte_weighted_partial_pct = 0;
};

/// Analyzes one partition. `batch_size` drives the Fig 3-right view
/// (sessions per training batch under the partition's current order).
[[nodiscard]] DuplicationReport AnalyzeDuplication(
    const std::vector<datagen::Sample>& partition,
    const datagen::DatasetSpec& spec, std::size_t batch_size = 4096);

}  // namespace recd::core
