// The paper's analytical deduplication model (§4.2, "Using IKJTs").
//
//   DedupeLen(f)    = l(f) * B * (1 - (S-1) * S^-1 * d(f))
//   DedupeFactor(f) = l(f) * B / DedupeLen(f)
//
// where S = samples per session, B = batch size, d(f) = probability the
// feature's value stays the same across adjacent rows, l(f) = average
// list length. ML engineers deduplicate features with factor > ~1.5 (§7).
#pragma once

namespace recd::core {

struct DedupeModel {
  /// Expected deduplicated values-slice length for one batch.
  [[nodiscard]] static double DedupeLen(double mean_length,
                                        double batch_size,
                                        double samples_per_session,
                                        double stay_prob);

  /// Expected ratio of original to deduplicated values length (>= 1).
  [[nodiscard]] static double DedupeFactor(double mean_length,
                                           double batch_size,
                                           double samples_per_session,
                                           double stay_prob);

  /// The paper's rule-of-thumb threshold for deduplicating a feature.
  static constexpr double kWorthItThreshold = 1.5;
};

}  // namespace recd::core
