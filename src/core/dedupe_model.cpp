#include "core/dedupe_model.h"

#include <stdexcept>

namespace recd::core {

double DedupeModel::DedupeLen(double mean_length, double batch_size,
                              double samples_per_session,
                              double stay_prob) {
  if (mean_length <= 0 || batch_size <= 0 || samples_per_session < 1) {
    throw std::invalid_argument("DedupeLen: parameters must be positive");
  }
  if (stay_prob < 0 || stay_prob > 1) {
    throw std::invalid_argument("DedupeLen: stay_prob must be in [0,1]");
  }
  const double s = samples_per_session;
  return mean_length * batch_size * (1.0 - (s - 1.0) / s * stay_prob);
}

double DedupeModel::DedupeFactor(double mean_length, double batch_size,
                                 double samples_per_session,
                                 double stay_prob) {
  const double dedup_len =
      DedupeLen(mean_length, batch_size, samples_per_session, stay_prob);
  return mean_length * batch_size / dedup_len;
}

}  // namespace recd::core
