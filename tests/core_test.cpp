// Tests for the core module: the analytical DedupeFactor model (§4.2),
// the duplication characterization (§3), and the end-to-end pipeline
// runner's cross-system relations.
#include <gtest/gtest.h>

#include "core/characterize.h"
#include "core/dedupe_model.h"
#include "core/pipeline.h"
#include "datagen/presets.h"

namespace recd::core {
namespace {

// ---------------------------------------------------------- DedupeModel --

TEST(DedupeModelTest, PaperWorkedExample) {
  // Paper §4.2: B = S = 3, l(b) = 3, d(b) = 0.5 gives DedupeLen = 6 and
  // DedupeFactor = 1.5.
  EXPECT_DOUBLE_EQ(DedupeModel::DedupeLen(3, 3, 3, 0.5), 6.0);
  EXPECT_DOUBLE_EQ(DedupeModel::DedupeFactor(3, 3, 3, 0.5), 1.5);
}

TEST(DedupeModelTest, NoDuplicationMeansFactorOne) {
  EXPECT_DOUBLE_EQ(DedupeModel::DedupeFactor(10, 100, 16.5, 0.0), 1.0);
}

TEST(DedupeModelTest, FactorGrowsWithSAndD) {
  // The §4.2 observation driving §7's per-session downsampling: factor
  // increases with samples/session and with feature stability.
  const double low_s = DedupeModel::DedupeFactor(10, 4096, 4, 0.9);
  const double high_s = DedupeModel::DedupeFactor(10, 4096, 32, 0.9);
  EXPECT_GT(high_s, low_s);
  const double low_d = DedupeModel::DedupeFactor(10, 4096, 16.5, 0.5);
  const double high_d = DedupeModel::DedupeFactor(10, 4096, 16.5, 0.95);
  EXPECT_GT(high_d, low_d);
}

TEST(DedupeModelTest, PaperRangeFactorsForStableFeatures) {
  // S = 16.5 and d in [0.93, 0.97] lands in the paper's 4-15x range.
  const double lo = DedupeModel::DedupeFactor(100, 2048, 16.5, 0.93);
  const double hi = DedupeModel::DedupeFactor(100, 2048, 16.5, 0.97);
  EXPECT_GT(lo, 4.0);
  EXPECT_LT(hi, 15.0);
}

TEST(DedupeModelTest, InvalidArgsThrow) {
  EXPECT_THROW((void)DedupeModel::DedupeLen(0, 1, 1, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)DedupeModel::DedupeLen(1, 1, 0.5, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)DedupeModel::DedupeLen(1, 1, 1, 1.5),
               std::invalid_argument);
}

// ------------------------------------------------------ characterization --

TEST(CharacterizeTest, HandCraftedPartition) {
  // One session with 3 samples; feature 0 repeats on rows 0/2 (1 exact
  // duplicate of 3 samples = 33.3%); feature 1 never repeats.
  datagen::DatasetSpec spec;
  spec.sparse.resize(2);
  spec.sparse[0].name = "f0";
  spec.sparse[1].name = "f1";
  std::vector<datagen::Sample> partition(3);
  for (std::size_t i = 0; i < 3; ++i) {
    partition[i].session_id = 1;
    partition[i].timestamp = static_cast<std::int64_t>(i);
    partition[i].sparse.resize(2);
  }
  partition[0].sparse[0] = {1, 2};
  partition[1].sparse[0] = {3, 4};
  partition[2].sparse[0] = {1, 2};
  partition[0].sparse[1] = {10};
  partition[1].sparse[1] = {11};
  partition[2].sparse[1] = {12};

  const auto report = AnalyzeDuplication(partition, spec, 4096);
  EXPECT_DOUBLE_EQ(report.mean_samples_per_session, 3.0);
  // Features are sorted by exact pct descending; f0 first.
  ASSERT_EQ(report.features.size(), 2u);
  EXPECT_EQ(report.features[0].name, "f0");
  EXPECT_NEAR(report.features[0].exact_duplicate_pct, 100.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.features[1].exact_duplicate_pct, 0.0);
  // f0 partial: ids {1,2,3,4,1,2}: 6 total, 4 distinct -> 33.3%.
  EXPECT_NEAR(report.features[0].partial_duplicate_pct, 100.0 / 3.0, 1e-9);
  // f1 partial: 3 total, 3 distinct -> 0%.
  EXPECT_DOUBLE_EQ(report.features[1].partial_duplicate_pct, 0.0);
}

TEST(CharacterizeTest, PartialCapturesShiftedLists) {
  // The paper's partial example: two samples, 100-id list shifted by one
  // -> 99/200 = 49.5% partial duplication, 0% exact.
  datagen::DatasetSpec spec;
  spec.sparse.resize(1);
  spec.sparse[0].name = "f";
  std::vector<datagen::Sample> partition(2);
  partition[0].session_id = partition[1].session_id = 5;
  partition[0].sparse.resize(1);
  partition[1].sparse.resize(1);
  for (int i = 0; i < 100; ++i) {
    partition[0].sparse[0].push_back(i);
    partition[1].sparse[0].push_back(i + 1);
  }
  const auto report = AnalyzeDuplication(partition, spec, 4096);
  EXPECT_DOUBLE_EQ(report.features[0].exact_duplicate_pct, 0.0);
  EXPECT_NEAR(report.features[0].partial_duplicate_pct, 49.5, 1e-9);
}

TEST(CharacterizeTest, EmptyPartition) {
  datagen::DatasetSpec spec;
  const auto report = AnalyzeDuplication({}, spec, 128);
  EXPECT_EQ(report.mean_samples_per_session, 0.0);
  EXPECT_TRUE(report.features.empty());
}

TEST(CharacterizeTest, SyntheticDatasetMatchesPaperShape) {
  // The characterization dataset must reproduce the paper's qualitative
  // findings: high mean exact duplication, partial >= exact, user
  // features above item features.
  auto spec = datagen::CharacterizationDataset(16, 0.4);
  spec.mean_session_size = 16.5;
  // Interleave must dwarf the batch for the Fig 3-right effect; S is
  // bounded by samples/(concurrent + retired sessions).
  spec.concurrent_sessions = 1024;
  datagen::TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(20000);
  std::vector<datagen::Sample> partition;
  for (std::size_t i = 0; i < traffic.features.size(); ++i) {
    datagen::Sample s;
    s.session_id = traffic.features[i].session_id;
    s.sparse = traffic.features[i].sparse;
    partition.push_back(std::move(s));
  }
  const auto report = AnalyzeDuplication(partition, spec, 256);
  EXPECT_GT(report.mean_exact_pct, 50.0);
  EXPECT_GE(report.byte_weighted_partial_pct,
            report.byte_weighted_exact_pct);
  double user_exact = 0;
  double item_exact = 0;
  std::size_t users = 0;
  std::size_t items = 0;
  for (const auto& f : report.features) {
    if (f.klass == datagen::FeatureClass::kUser) {
      user_exact += f.exact_duplicate_pct;
      ++users;
    } else {
      item_exact += f.exact_duplicate_pct;
      ++items;
    }
  }
  EXPECT_GT(user_exact / users, 2.0 * (item_exact / items));
  // Interleaved batches hold ~1 sample per session (Fig 3 right) while
  // the partition-wide S stays much higher.
  EXPECT_LT(report.mean_batch_samples_per_session, 2.5);
  EXPECT_GT(report.mean_samples_per_session,
            2.0 * report.mean_batch_samples_per_session);
}

// -------------------------------------------------------- PipelineRunner --

class PipelineTest : public ::testing::Test {
 protected:
  static PipelineRunner MakeRunner() {
    auto spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.08);
    // Concurrency above the training batch size so baseline batches are
    // genuinely interleaved, while S stays usefully high.
    spec.concurrent_sessions = 512;
    spec.mean_session_size = 12.0;
    auto model = RmModelForTest(spec);
    PipelineOptions opts;
    opts.num_samples = 6000;
    opts.samples_per_partition = 6000;
    opts.max_trainer_batches = 2;
    return PipelineRunner(spec, model,
                          train::ZionEx(8), opts);
  }
  static train::ModelConfig RmModelForTest(
      const datagen::DatasetSpec& spec) {
    auto model = train::RmModel(datagen::RmKind::kRm1, spec);
    model.emb_hash_size = 10'000;
    return model;
  }
};

TEST_F(PipelineTest, RecdBeatsBaselineAcrossTheBoard) {
  auto runner = MakeRunner();
  const auto base = runner.Run(RecdConfig::Baseline(256));
  const auto recd = runner.Run(RecdConfig::Full(256));
  // O1: session sharding improves Scribe compression.
  EXPECT_GT(recd.scribe_compression_ratio,
            base.scribe_compression_ratio);
  // O2: clustering improves table compression and in-batch coalescing.
  EXPECT_GT(recd.storage_compression_ratio,
            1.2 * base.storage_compression_ratio);
  EXPECT_GT(recd.batch_samples_per_session,
            2.0 * base.batch_samples_per_session);
  // O3: real dedup factor above the worth-it threshold.
  EXPECT_GT(recd.mean_dedupe_factor, DedupeModel::kWorthItThreshold);
  // Readers: fewer bytes read (compression) and sent (IKJT).
  EXPECT_LT(recd.reader_io.bytes_read, base.reader_io.bytes_read);
  EXPECT_LT(recd.reader_io.bytes_sent, base.reader_io.bytes_sent);
  // Trainers: higher throughput.
  EXPECT_GT(recd.trainer_qps, base.trainer_qps);
  EXPECT_LT(recd.trainer.mem_util_max, base.trainer.mem_util_max);
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  auto runner = MakeRunner();
  const auto a = runner.Run(RecdConfig::Full(256));
  const auto b = runner.Run(RecdConfig::Full(256));
  EXPECT_DOUBLE_EQ(a.storage_compression_ratio,
                   b.storage_compression_ratio);
  EXPECT_EQ(a.reader_io.bytes_read, b.reader_io.bytes_read);
  EXPECT_DOUBLE_EQ(a.trainer.sdd_bytes, b.trainer.sdd_bytes);
}

TEST_F(PipelineTest, ClusteringAloneDoesNotHelpTrainers) {
  // Fig 9's first bar: a clustered table with KJTs gives ~no trainer
  // gain; IKJTs are required.
  auto runner = MakeRunner();
  RecdConfig ct_only = RecdConfig::Baseline(256);
  ct_only.cluster_by_session = true;
  const auto base = runner.Run(RecdConfig::Baseline(256));
  const auto ct = runner.Run(ct_only);
  EXPECT_NEAR(ct.trainer_qps / base.trainer_qps, 1.0, 0.05);
  // But it *does* help storage.
  EXPECT_GT(ct.storage_compression_ratio,
            base.storage_compression_ratio);
}

TEST_F(PipelineTest, PerSessionDownsamplingPreservesDedupeFactor) {
  // §7: at equal keep-rate, per-session downsampling keeps S (and hence
  // the measured in-batch dedupe factor) far better than per-sample.
  auto runner = MakeRunner();
  auto per_sample = RecdConfig::Full(256);
  per_sample.downsample = etl::DownsampleMode::kPerSample;
  per_sample.downsample_keep_rate = 0.5;
  auto per_session = RecdConfig::Full(256);
  per_session.downsample = etl::DownsampleMode::kPerSession;
  per_session.downsample_keep_rate = 0.5;
  const auto a = runner.Run(per_sample);
  const auto b = runner.Run(per_session);
  EXPECT_GT(b.samples_per_session, 1.5 * a.samples_per_session);
  EXPECT_GT(b.mean_dedupe_factor, a.mean_dedupe_factor);
}

TEST_F(PipelineTest, SamplesPerSessionSurvivesPipeline) {
  auto runner = MakeRunner();
  const auto result = runner.Run(RecdConfig::Full(256));
  EXPECT_GT(result.samples_per_session, 4.0);
}

TEST_F(PipelineTest, RejectsInvalidOptionsAtConstruction) {
  // The documented PipelineOptions invariants (shared with the stream
  // runner): zero-valued sizing knobs throw std::invalid_argument up
  // front instead of failing deep inside Run() or silently misbehaving.
  const auto spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.08);
  const auto model = RmModelForTest(spec);
  const auto make = [&](PipelineOptions opts) {
    opts.num_samples = 16;  // keep the would-be construction cheap
    PipelineRunner runner(spec, model, train::ZionEx(8), opts);
  };
  EXPECT_NO_THROW(make({}));
  PipelineOptions opts;
  opts.samples_per_partition = 0;
  EXPECT_THROW(make(opts), std::invalid_argument);
  opts = {};
  opts.rows_per_stripe = 0;
  EXPECT_THROW(make(opts), std::invalid_argument);
  opts = {};
  opts.num_scribe_shards = 0;
  EXPECT_THROW(make(opts), std::invalid_argument);
}

}  // namespace
}  // namespace recd::core
