// Tests for the concurrency primitives in src/common/: ThreadPool
// (submit/futures, ParallelFor, exception propagation, shutdown,
// nesting) and the bounded MPMC Channel (FIFO order, backpressure,
// close semantics, producer/consumer stress).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/channel.h"
#include "common/thread_pool.h"

namespace recd::common {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------- ThreadPool --

TEST(ThreadPoolTest, NeedsAtLeastOneThread) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, SubmitDeliversResultsThroughFutures) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(32);
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto future = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHonorsGrainAndRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(10, 60, [&](std::size_t i) { hits[i].fetch_add(1); },
                   /*grain=*/7);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i >= 10 && i < 60 ? 1 : 0) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(0, 1000,
                       [&](std::size_t i) {
                         ran.fetch_add(1);
                         if (i == 17) {
                           throw std::runtime_error("body failed");
                         }
                       }),
      std::runtime_error);
  // Cancellation: the failure stops remaining indices from running
  // (some in-flight ones may still finish).
  EXPECT_LT(ran.load(), 1000);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // LandTable-over-partitions x stripe-encode shape: outer and inner
  // loops share one pool; waiting threads must help drain the queue.
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.ParallelFor(0, 4, [&](std::size_t) {
    pool.ParallelFor(0, 64, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4u * 64u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Post([&done] {
        std::this_thread::sleep_for(1ms);
        done.fetch_add(1);
      });
    }
  }  // ~ThreadPool joins after finishing the queue
  EXPECT_EQ(done.load(), 16);
}

// ---------------------------------------------------------- Channel --

TEST(ChannelTest, NeedsPositiveCapacity) {
  EXPECT_THROW(Channel<int>(0), std::invalid_argument);
}

TEST(ChannelTest, FifoOrder) {
  Channel<int> ch(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ch.Push(i));
  for (int i = 0; i < 4; ++i) {
    const auto v = ch.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(ChannelTest, TryPushRespectsCapacity) {
  Channel<int> ch(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(ch.TryPush(a));
  EXPECT_TRUE(ch.TryPush(b));
  EXPECT_FALSE(ch.TryPush(c));  // full
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.Pop().value(), 1);
  EXPECT_TRUE(ch.TryPush(c));
}

TEST(ChannelTest, TryPopOnEmptyReturnsNullopt) {
  Channel<int> ch(1);
  EXPECT_FALSE(ch.TryPop().has_value());
  EXPECT_TRUE(ch.Push(7));
  EXPECT_EQ(ch.TryPop().value(), 7);
}

TEST(ChannelTest, PushBlocksOnBackpressureUntilPop) {
  Channel<int> ch(1);
  EXPECT_TRUE(ch.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(ch.Push(2));  // blocks: capacity 1, item in flight
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(second_pushed.load()) << "Push must block while full";
  EXPECT_EQ(ch.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(ch.Pop().value(), 2);
}

TEST(ChannelTest, PopForTimesOutOnlyWhileOpenAndEmpty) {
  Channel<int> ch(2);
  // Deadline passes with the channel open and empty: timed out.
  bool timed_out = false;
  EXPECT_FALSE(ch.PopFor(10ms, &timed_out).has_value());
  EXPECT_TRUE(timed_out);
  // An available item returns immediately, no timeout flag.
  EXPECT_TRUE(ch.Push(7));
  EXPECT_EQ(ch.PopFor(10ms, &timed_out).value(), 7);
  EXPECT_FALSE(timed_out);
  // An item arriving within the deadline wakes the waiter.
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    EXPECT_TRUE(ch.Push(8));
  });
  EXPECT_EQ(ch.PopFor(10s, &timed_out).value(), 8);
  EXPECT_FALSE(timed_out);
  producer.join();
  // Closed and drained is end-of-stream, *not* a timeout — the caller
  // must be able to tell a dead producer from a finished one.
  ch.Close();
  EXPECT_FALSE(ch.PopFor(10ms, &timed_out).has_value());
  EXPECT_FALSE(timed_out);
}

TEST(ChannelTest, CloseDrainsThenEndsStream) {
  Channel<int> ch(4);
  EXPECT_TRUE(ch.Push(1));
  EXPECT_TRUE(ch.Push(2));
  ch.Close();
  EXPECT_FALSE(ch.Push(3));  // producers see the close immediately
  EXPECT_EQ(ch.Pop().value(), 1);  // consumers drain whats buffered
  EXPECT_EQ(ch.Pop().value(), 2);
  EXPECT_FALSE(ch.Pop().has_value());  // then observe end of stream
}

TEST(ChannelTest, CloseWakesBlockedConsumerAndProducer) {
  Channel<int> full(1);
  EXPECT_TRUE(full.Push(1));
  Channel<int> empty(1);
  std::atomic<bool> push_returned{false};
  std::atomic<bool> pop_returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(full.Push(2));  // blocked on backpressure, then closed
    push_returned.store(true);
  });
  std::thread consumer([&] {
    EXPECT_FALSE(empty.Pop().has_value());  // blocked on empty, closed
    pop_returned.store(true);
  });
  std::this_thread::sleep_for(20ms);
  full.Close();
  empty.Close();
  producer.join();
  consumer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_TRUE(pop_returned.load());
}

TEST(ChannelTest, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kConsumers = 4;
  constexpr std::size_t kPerProducer = 2'000;
  Channel<std::size_t> ch(8);  // small capacity: exercise backpressure

  std::mutex seen_mutex;
  std::multiset<std::size_t> seen;
  std::vector<std::thread> threads;
  threads.reserve(kProducers + kConsumers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&ch, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(ch.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = ch.Pop()) {
        std::lock_guard<std::mutex> lock(seen_mutex);
        seen.insert(*v);
      }
    });
  }
  for (std::size_t p = 0; p < kProducers; ++p) threads[p].join();
  ch.Close();
  for (std::size_t c = 0; c < kConsumers; ++c) {
    threads[kProducers + c].join();
  }

  ASSERT_EQ(seen.size(), kProducers * kPerProducer);
  for (std::size_t v = 0; v < kProducers * kPerProducer; ++v) {
    ASSERT_EQ(seen.count(v), 1u) << "item " << v;
  }
}

}  // namespace
}  // namespace recd::common
