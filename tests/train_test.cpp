// Tests for the trainer: collective cost models, model configs, the
// distributed iteration simulator (O5-O7 resource relations), and the
// reference DLRM's KJT/IKJT numerical equivalence — the paper's "IKJTs
// encode the exact same logical data as KJTs" claim, checked in floats.
#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "etl/etl.h"
#include "nn/dense_matrix.h"
#include "reader/reader.h"
#include "storage/table.h"
#include "train/collectives.h"
#include "train/model.h"
#include "train/reference.h"
#include "train/trainer_sim.h"

namespace recd::train {
namespace {

// Shared fixture: a small clustered RM1-style dataset landed in storage,
// read back as both RecD (IKJT) and baseline (KJT) batches.
struct Fixture {
  datagen::DatasetSpec spec;
  ModelConfig model;
  storage::BlobStore store;
  storage::Table table;
  reader::PreprocessedBatch recd_batch;
  reader::PreprocessedBatch base_batch;
};

Fixture MakeFixture(std::size_t batch_size = 128, double scale = 0.08,
                    datagen::RmKind kind = datagen::RmKind::kRm1) {
  Fixture fx;
  fx.spec = datagen::RmDataset(kind, scale);
  fx.spec.concurrent_sessions = 16;  // heavy in-batch duplication
  fx.model = RmModel(kind, fx.spec);
  fx.model.emb_hash_size = 5'000;  // keep reference tables small
  datagen::TrafficGenerator gen(fx.spec);
  const auto traffic = gen.Generate(batch_size * 2);
  auto samples = etl::JoinLogs(traffic.features, traffic.events);
  etl::ClusterBySession(samples);
  storage::StorageSchema schema;
  schema.num_dense = fx.spec.num_dense;
  for (const auto& f : fx.spec.sparse) {
    schema.sparse_names.push_back(f.name);
  }
  auto landed = storage::LandTable(fx.store, "t", schema,
                                   {std::move(samples)});
  fx.table = std::move(landed.table);

  reader::Reader recd(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, true),
                      reader::ReaderOptions{.use_ikjt = true});
  reader::Reader base(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, false),
                      reader::ReaderOptions{.use_ikjt = false});
  fx.recd_batch = *recd.NextBatch();
  fx.base_batch = *base.NextBatch();
  return fx;
}

// ----------------------------------------------------------- collectives --

TEST(CollectivesTest, ZeroCases) {
  const auto cluster = ZionEx(8);
  EXPECT_DOUBLE_EQ(AllToAllSeconds(cluster, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(AllReduceSeconds(cluster, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(AllToAllSeconds(ZionEx(1), 1e9), 0.0);
}

TEST(CollectivesTest, TimeMonotonicInBytes) {
  const auto cluster = ZionEx(16);
  EXPECT_LT(AllToAllSeconds(cluster, 1e6), AllToAllSeconds(cluster, 1e8));
  EXPECT_LT(AllReduceSeconds(cluster, 1e6), AllReduceSeconds(cluster, 1e8));
}

TEST(CollectivesTest, SingleNodeUsesNvlink) {
  // Same payload is much faster within a node than across RoCE.
  const double intra = AllToAllSeconds(ZionEx(8), 1e9);
  const double inter = AllToAllSeconds(ZionEx(16), 1e9);
  EXPECT_LT(intra, inter);
}

TEST(CollectivesTest, LatencyFloorApplies) {
  const auto cluster = ZionEx(8);
  EXPECT_GE(AllToAllSeconds(cluster, 1.0), cluster.collective_latency_s);
}

// ----------------------------------------------------------- model config --

TEST(ModelConfigTest, RmPresetShapes) {
  const auto spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.1);
  const auto model = RmModel(datagen::RmKind::kRm1, spec);
  EXPECT_EQ(model.sequence_groups.size(), 5u);
  for (const auto& g : model.sequence_groups) EXPECT_TRUE(g.attention);
  EXPECT_FALSE(model.elementwise_features.empty());
  EXPECT_FALSE(model.plain_features.empty());
  EXPECT_EQ(model.num_tables(), spec.num_sparse());
  const auto bottom = model.BottomMlpDims();
  EXPECT_EQ(bottom.front(), spec.num_dense);
  EXPECT_EQ(bottom.back(), model.emb_dim);
  const auto top = model.TopMlpDims();
  const std::size_t f = model.num_interaction_inputs();
  EXPECT_EQ(top.front(), model.emb_dim + f * (f - 1) / 2);
  EXPECT_EQ(top.back(), 1u);
}

TEST(ModelConfigTest, Rm2UsesNonAttentionSequenceGroup) {
  const auto spec = datagen::RmDataset(datagen::RmKind::kRm2, 0.1);
  const auto model = RmModel(datagen::RmKind::kRm2, spec);
  ASSERT_EQ(model.sequence_groups.size(), 1u);
  EXPECT_FALSE(model.sequence_groups[0].attention);
}

TEST(ModelConfigTest, DataLoaderConfigSplitsFeatures) {
  const auto spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.1);
  const auto model = RmModel(datagen::RmKind::kRm1, spec);
  const auto recd_cfg = MakeDataLoaderConfig(model, 64, true);
  EXPECT_EQ(recd_cfg.dedup_sparse_features.size(),
            model.sequence_groups.size() +
                model.elementwise_features.size());
  const auto base_cfg = MakeDataLoaderConfig(model, 64, false);
  EXPECT_TRUE(base_cfg.dedup_sparse_features.empty());
  // Baseline keeps every feature, just not deduplicated.
  std::size_t recd_total = recd_cfg.sparse_features.size();
  for (const auto& g : recd_cfg.dedup_sparse_features) {
    recd_total += g.size();
  }
  EXPECT_EQ(base_cfg.sparse_features.size(), recd_total);
}

// ------------------------------------------------------------ TrainerSim --

TEST(TrainerSimTest, RecdShrinksSddBytes) {
  auto fx = MakeFixture();
  const auto cluster = ZionEx(8);
  TrainerSim base(fx.model, cluster, TrainerFlags::Baseline());
  TrainerSim recd(fx.model, cluster, TrainerFlags::Recd());
  const auto b = base.SimulateIteration(fx.base_batch);
  const auto r = recd.SimulateIteration(fx.recd_batch);
  EXPECT_LT(r.sdd_bytes, b.sdd_bytes);
  EXPECT_LT(r.emb_a2a_bytes, b.emb_a2a_bytes);
  EXPECT_LT(r.lookups, b.lookups);
  EXPECT_LT(r.flops, b.flops);
  EXPECT_LT(r.dynamic_mem_bytes, b.dynamic_mem_bytes);
  EXPECT_GT(r.qps, b.qps);
}

TEST(TrainerSimTest, BaselineFlagsIgnoreIkjtSavings) {
  // Feeding a RecD batch to a baseline-flags trainer must reproduce the
  // baseline counts: flags, not the batch format, decide the savings.
  auto fx = MakeFixture();
  const auto cluster = ZionEx(8);
  TrainerSim base(fx.model, cluster, TrainerFlags::Baseline());
  const auto from_recd_batch = base.SimulateIteration(fx.recd_batch);
  const auto from_base_batch = base.SimulateIteration(fx.base_batch);
  EXPECT_NEAR(from_recd_batch.sdd_bytes, from_base_batch.sdd_bytes,
              1.0);
  EXPECT_NEAR(from_recd_batch.lookups, from_base_batch.lookups, 1.0);
}

TEST(TrainerSimTest, AblationOrderingMatchesPaperFig9) {
  // CT only < +DE+JIS < +DC (throughput strictly improves as trainer
  // optimizations stack, Fig 9).
  auto fx = MakeFixture();
  const auto cluster = ZionEx(8);
  const auto ct = TrainerSim(fx.model, cluster, TrainerFlags::Baseline())
                      .SimulateIteration(fx.base_batch);
  TrainerFlags de_jis;
  de_jis.dedup_emb = true;
  de_jis.jagged_index_select = true;
  de_jis.dedup_compute = false;
  const auto de = TrainerSim(fx.model, cluster, de_jis)
                      .SimulateIteration(fx.recd_batch);
  const auto dc = TrainerSim(fx.model, cluster, TrainerFlags::Recd())
                      .SimulateIteration(fx.recd_batch);
  EXPECT_GT(de.qps, ct.qps);
  EXPECT_GT(dc.qps, de.qps);
}

TEST(TrainerSimTest, JaggedIndexSelectBeatsPadToDense) {
  // O6: with dedup_emb but not dedup_compute, the jagged expansion path
  // must use less memory and be faster than the padded-dense path.
  auto fx = MakeFixture();
  const auto cluster = ZionEx(8);
  TrainerFlags no_jis;
  no_jis.dedup_emb = true;
  no_jis.jagged_index_select = false;
  no_jis.dedup_compute = false;
  TrainerFlags jis = no_jis;
  jis.jagged_index_select = true;
  const auto padded = TrainerSim(fx.model, cluster, no_jis)
                          .SimulateIteration(fx.recd_batch);
  const auto jagged = TrainerSim(fx.model, cluster, jis)
                          .SimulateIteration(fx.recd_batch);
  EXPECT_LT(jagged.dynamic_mem_bytes, padded.dynamic_mem_bytes);
  EXPECT_LE(jagged.total_s(), padded.total_s());
}

TEST(TrainerSimTest, ExposedA2aShrinksWithRecd) {
  auto fx = MakeFixture();
  const auto cluster = ZionEx(48);
  const auto b = TrainerSim(fx.model, cluster, TrainerFlags::Baseline())
                     .SimulateIteration(fx.base_batch);
  const auto r = TrainerSim(fx.model, cluster, TrainerFlags::Recd())
                     .SimulateIteration(fx.recd_batch);
  EXPECT_LT(r.a2a_raw_s, b.a2a_raw_s);
  EXPECT_LE(r.a2a_exposed_s, b.a2a_exposed_s);
}

TEST(TrainerSimTest, MemoryScalesWithBatchSize) {
  auto fx_small = MakeFixture(64);
  auto fx_large = MakeFixture(256);
  const auto cluster = ZionEx(8);
  TrainerSim sim(fx_small.model, cluster, TrainerFlags::Recd());
  const auto small = sim.SimulateIteration(fx_small.recd_batch);
  const auto large = sim.SimulateIteration(fx_large.recd_batch);
  EXPECT_GT(large.dynamic_mem_bytes, small.dynamic_mem_bytes);
}

TEST(TrainerSimTest, SingleNodeStillBenefits) {
  // §6.2 single-node: RecD helps even with NVLink-only communication
  // because compute/memory savings remain.
  auto fx = MakeFixture();
  const auto cluster = ZionEx(8);  // one node
  const auto b = TrainerSim(fx.model, cluster, TrainerFlags::Baseline())
                     .SimulateIteration(fx.base_batch);
  const auto r = TrainerSim(fx.model, cluster, TrainerFlags::Recd())
                     .SimulateIteration(fx.recd_batch);
  EXPECT_GT(r.qps, b.qps);
}

TEST(TrainerSimTest, StaticMemorySplitsTablesAcrossGpus) {
  auto fx = MakeFixture();
  TrainerSim g8(fx.model, ZionEx(8), TrainerFlags::Recd());
  TrainerSim g16(fx.model, ZionEx(16), TrainerFlags::Recd());
  EXPECT_GT(g8.StaticMemoryBytesPerGpu(), g16.StaticMemoryBytesPerGpu());
}

TEST(TrainerSimTest, ShapeScaleMultipliesWork) {
  auto fx = MakeFixture();
  const auto cluster = ZionEx(8);
  TrainerSim unit(fx.model, cluster, TrainerFlags::Recd(), {1.0, 1.0});
  TrainerSim scaled(fx.model, cluster, TrainerFlags::Recd(), {8.0, 4.0});
  const auto a = unit.SimulateIteration(fx.recd_batch);
  const auto b = scaled.SimulateIteration(fx.recd_batch);
  // Rows x8, lengths x4: lookups/values scale x32, batch rows x8.
  EXPECT_NEAR(b.lookups / a.lookups, 32.0, 0.5);
  EXPECT_NEAR(b.global_batch_rows / a.global_batch_rows, 8.0, 1e-9);
  // SDD payload: values scale x32, offsets only x8, so the blend lands
  // between.
  EXPECT_GT(b.sdd_bytes, 8.0 * a.sdd_bytes);
  EXPECT_LE(b.sdd_bytes, 32.0 * a.sdd_bytes);
  EXPECT_GT(b.flops, a.flops);
}

TEST(TrainerSimTest, LogicalFlopsAtLeastExecutedFlops) {
  auto fx = MakeFixture();
  const auto cluster = ZionEx(8);
  const auto recd = TrainerSim(fx.model, cluster, TrainerFlags::Recd())
                        .SimulateIteration(fx.recd_batch);
  EXPECT_GT(recd.flops_logical, recd.flops);
  const auto base = TrainerSim(fx.model, cluster, TrainerFlags::Baseline())
                        .SimulateIteration(fx.base_batch);
  EXPECT_NEAR(base.flops_logical, base.flops, 1.0);
  // Logical efficiency rises with RecD (Table 2's metric).
  EXPECT_GT(recd.logical_flops_per_gpu, base.logical_flops_per_gpu);
}

TEST(CollectivesTest, HierarchicalAllReduceBeatsFlatInterNode) {
  // The hierarchical model shards inter-node traffic across a node's
  // NICs, so doubling node count at fixed payload grows time sublinearly.
  const double t16 = AllReduceSeconds(ZionEx(16), 64e6);
  const double t64 = AllReduceSeconds(ZionEx(64), 64e6);
  EXPECT_LT(t64, 2.0 * t16);
  EXPECT_GT(t64, t16 * 0.99);
}

// --------------------------------------------------------- ReferenceDlrm --

TEST(ReferenceDlrmTest, RecdForwardIsNumericallyIdenticalToBaseline) {
  // The paper's central accuracy claim, tested in real floats including
  // attention pooling: pool-unique-then-expand == expand-then-pool.
  auto fx = MakeFixture(96, 0.05);
  ReferenceDlrm dlrm(fx.model, /*seed=*/77);
  const auto logits_base = dlrm.Forward(fx.recd_batch, /*recd=*/false);
  const auto logits_recd = dlrm.Forward(fx.recd_batch, /*recd=*/true);
  ASSERT_EQ(logits_base.rows(), logits_recd.rows());
  EXPECT_EQ(nn::MaxAbsDiff(logits_base, logits_recd), 0.0f)
      << "IKJT forward must be bit-identical to KJT forward";
}

TEST(ReferenceDlrmTest, BaselineBatchAndRecdBatchAgree) {
  // Baseline path over the KJT batch == baseline path over the IKJT
  // batch (expansion reconstructs identical inputs end-to-end).
  auto fx = MakeFixture(96, 0.05);
  ReferenceDlrm dlrm(fx.model, 77);
  const auto from_base = dlrm.Forward(fx.base_batch, false);
  const auto from_recd = dlrm.Forward(fx.recd_batch, false);
  EXPECT_EQ(nn::MaxAbsDiff(from_base, from_recd), 0.0f);
}

TEST(ReferenceDlrmTest, RecdPathRequiresIkjtBatch) {
  auto fx = MakeFixture(64, 0.05);
  ReferenceDlrm dlrm(fx.model, 77);
  EXPECT_THROW((void)dlrm.Forward(fx.base_batch, /*recd=*/true),
               std::invalid_argument);
}

TEST(ReferenceDlrmTest, TrainingReducesLoss) {
  auto fx = MakeFixture(128, 0.05);
  ReferenceDlrm dlrm(fx.model, 99);
  const float initial = dlrm.EvalLoss(fx.recd_batch);
  float final_loss = initial;
  for (int i = 0; i < 30; ++i) {
    final_loss = dlrm.TrainStep(fx.recd_batch, 0.05f);
  }
  EXPECT_LT(final_loss, initial);
}

TEST(ReferenceDlrmTest, StatsAccumulateAndReset) {
  auto fx = MakeFixture(64, 0.05);
  ReferenceDlrm dlrm(fx.model, 1);
  (void)dlrm.Forward(fx.recd_batch, true);
  EXPECT_GT(dlrm.Stats().flops, 0u);
  EXPECT_GT(dlrm.Stats().lookups, 0u);
  dlrm.ResetStats();
  EXPECT_EQ(dlrm.Stats().flops, 0u);
}

TEST(ExpandRowsTest, GathersByInverseLookup) {
  nn::DenseMatrix pooled(2, 2);
  pooled.at(0, 0) = 1;
  pooled.at(0, 1) = 2;
  pooled.at(1, 0) = 3;
  pooled.at(1, 1) = 4;
  const std::vector<std::int64_t> inverse = {1, 0, 1};
  const auto out = ExpandRows(pooled, inverse);
  ASSERT_EQ(out.rows(), 3u);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2);
  EXPECT_FLOAT_EQ(out.at(2, 0), 3);
}

// Equivalence sweep across RM presets and batch sizes.
class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<datagen::RmKind, int>> {};

TEST_P(EquivalenceSweep, ForwardEquivalenceHolds) {
  const auto [kind, batch_size] = GetParam();
  auto fx = MakeFixture(static_cast<std::size_t>(batch_size), 0.05, kind);
  ReferenceDlrm dlrm(fx.model, 7);
  const auto base = dlrm.Forward(fx.recd_batch, false);
  const auto recd = dlrm.Forward(fx.recd_batch, true);
  EXPECT_EQ(nn::MaxAbsDiff(base, recd), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceSweep,
    ::testing::Combine(::testing::Values(datagen::RmKind::kRm1,
                                         datagen::RmKind::kRm2,
                                         datagen::RmKind::kRm3),
                       ::testing::Values(32, 128)));

}  // namespace
}  // namespace recd::train
