// Tests for the online serving subsystem (src/serve): deterministic
// query generation across load shapes, batcher flush/SLA edge cases,
// baseline-vs-RecD score parity, multi-model determinism across worker
// counts and zoo compositions, the offline tail-latency scheduler, and
// clean shutdown under load (ISSUE acceptance criteria).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "datagen/presets.h"
#include "serve/batcher.h"
#include "serve/model_server.h"
#include "serve/model_zoo.h"
#include "serve/query_gen.h"
#include "serve/scheduler.h"
#include "serve/server_runner.h"
#include "train/model.h"

namespace recd::serve {
namespace {

datagen::DatasetSpec MakeSpec(datagen::RmKind kind = datagen::RmKind::kRm2,
                              double scale = 0.08) {
  auto spec = datagen::RmDataset(kind, scale);
  spec.concurrent_sessions = 8;  // few users => requests revisit users
  spec.mean_session_size = 24;   // long-lived serving sessions
  return spec;
}

train::ModelConfig MakeModel(const datagen::DatasetSpec& spec,
                             datagen::RmKind kind = datagen::RmKind::kRm2) {
  auto model = train::RmModel(kind, spec);
  model.emb_hash_size = 2'000;  // small per-worker replicas
  model.emb_dim = 16;
  model.bottom_mlp_hidden = {32};
  model.top_mlp_hidden = {64, 32};
  return model;
}

QueryGenOptions SmallQuery(std::size_t requests = 48,
                           std::size_t candidates = 4) {
  QueryGenOptions q;
  q.num_requests = requests;
  q.candidates = candidates;
  q.qps = 50'000;  // ~20 µs mean gaps: several requests per window
  return q;
}

TraceSpec MakeTrace(QueryGenOptions query,
                    datagen::RmKind kind = datagen::RmKind::kRm2,
                    double scale = 0.08) {
  TraceSpec t;
  t.dataset = MakeSpec(kind, scale);
  t.query = query;
  return t;
}

/// A test-sized zoo member: real RM-variant architecture over the
/// shared dataset, shrunk so per-worker replicas stay cheap; each model
/// gets its own seed and its own batching defaults (heterogeneity is
/// the point of the zoo).
ModelSpec SmallVariant(const datagen::DatasetSpec& dataset,
                       datagen::RmKind kind, std::uint64_t seed) {
  ModelSpec m;
  m.config = train::RmServeVariant(kind, dataset);
  m.config.emb_hash_size = 2'000;
  m.config.emb_dim = 16;
  m.config.bottom_mlp_hidden = {32};
  m.config.top_mlp_hidden = {64, 32};
  m.name = m.config.name;
  m.seed = seed;
  return m;
}

std::vector<ModelSpec> SmallZoo(const datagen::DatasetSpec& dataset,
                                std::size_t size) {
  constexpr datagen::RmKind kKinds[] = {
      datagen::RmKind::kRm1, datagen::RmKind::kRm2, datagen::RmKind::kRm3};
  std::vector<ModelSpec> zoo;
  for (std::size_t m = 0; m < size; ++m) {
    auto spec = SmallVariant(dataset, kKinds[m % 3], 0x100 + m);
    spec.batcher.max_batch_requests = 2 + m;  // per-model batching
    spec.batcher.max_delay_us = 100 * static_cast<std::int64_t>(m + 1);
    zoo.push_back(std::move(spec));
  }
  return zoo;
}

FleetSpec SingleFleet(const datagen::DatasetSpec& dataset,
                      std::size_t workers = 1) {
  ModelSpec m;
  m.config = MakeModel(dataset);
  return FleetSpec::Single(std::move(m), workers);
}

Request MakeRequest(std::int64_t id, std::size_t rows = 1) {
  Request r;
  r.request_id = id;
  r.user_id = id;
  r.rows.resize(rows);
  return r;
}

RunPolicy ReplayPolicy(bool recd) {
  RunPolicy p = recd ? RunPolicy::Recd() : RunPolicy::Baseline();
  BatcherOptions b;
  b.max_batch_requests = 4;
  b.max_delay_us = 100;
  p.batcher = b;
  p.pace_arrivals = false;
  return p;
}

// ---------------------------------------------------------- query gen --

TEST(QueryGeneratorTest, TraceIsDeterministicAndShaped) {
  const auto trace_spec = MakeTrace(SmallQuery(32, 5));
  auto a = QueryGenerator(trace_spec).Generate();
  auto b = QueryGenerator(trace_spec).Generate();
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].user_id, b[i].user_id);
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].model_id, 0u);  // num_models = 1: all route to 0
    ASSERT_EQ(a[i].rows.size(), 5u);
    for (std::size_t c = 0; c < a[i].rows.size(); ++c) {
      EXPECT_EQ(a[i].rows[c], b[i].rows[c]);
    }
    if (i > 0) {
      EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    }
  }
}

TEST(QueryGeneratorTest, CandidatesShareUserFeaturesExactly) {
  const auto trace_spec = MakeTrace(SmallQuery(16, 6));
  const auto& spec = trace_spec.dataset;
  const auto trace = QueryGenerator(trace_spec).Generate();
  for (const auto& r : trace) {
    const auto& first = r.rows.front();
    for (const auto& row : r.rows) {
      EXPECT_EQ(row.session_id, r.user_id);
      EXPECT_EQ(row.dense, first.dense);  // dense is user/request state
      for (std::size_t f = 0; f < spec.num_sparse(); ++f) {
        if (spec.sparse[f].klass == datagen::FeatureClass::kUser) {
          EXPECT_EQ(row.sparse[f], first.sparse[f])
              << "user feature diverged across candidates: "
              << spec.sparse[f].name;
        }
      }
    }
  }
}

TEST(QueryGeneratorTest, ShapedTracesAreDeterministicAndOrdered) {
  // Every (arrival, size) shape pair replays byte-identically and keeps
  // arrivals non-decreasing; heavy-tailed sizes stay within bounds and
  // actually produce a tail.
  for (const auto arrival : {ArrivalShape::kSteady, ArrivalShape::kBursty,
                             ArrivalShape::kDiurnal}) {
    for (const auto size : {SizeShape::kFixed, SizeShape::kHeavyTailed}) {
      auto q = SmallQuery(64, 3);
      q.arrival = arrival;
      q.size = size;
      q.max_candidates = 12;
      q.num_models = 3;
      const auto trace_spec = MakeTrace(q);
      const auto a = QueryGenerator(trace_spec).Generate();
      const auto b = QueryGenerator(trace_spec).Generate();
      ASSERT_EQ(a.size(), 64u);
      std::size_t max_rows = 0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
        EXPECT_EQ(a[i].model_id, b[i].model_id);
        EXPECT_EQ(a[i].rows.size(), b[i].rows.size());
        EXPECT_LT(a[i].model_id, 3u);
        if (i > 0) {
          EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
        }
        if (size == SizeShape::kFixed) {
          EXPECT_EQ(a[i].rows.size(), 3u);
        } else {
          EXPECT_GE(a[i].rows.size(), 3u);
          EXPECT_LE(a[i].rows.size(), 12u);
        }
        max_rows = std::max(max_rows, a[i].rows.size());
      }
      if (size == SizeShape::kHeavyTailed) {
        EXPECT_GT(max_rows, 3u) << "no tail drawn in 64 requests";
      }
    }
  }
}

TEST(QueryGeneratorTest, SubTraceForModelPartitionsTheTrace) {
  auto q = SmallQuery(60, 2);
  q.num_models = 3;
  const auto trace = QueryGenerator(MakeTrace(q)).Generate();
  std::size_t total = 0;
  for (std::size_t m = 0; m < 3; ++m) {
    const auto sub = SubTraceForModel(trace, m);
    total += sub.size();
    for (const auto& r : sub) {
      EXPECT_EQ(r.model_id, 0u);  // rebased for single-model serving
    }
  }
  EXPECT_EQ(total, trace.size());
}

TEST(QueryGeneratorTest, RejectsBadOptions) {
  auto make = [](QueryGenOptions q) {
    return QueryGenerator(MakeTrace(q));
  };
  QueryGenOptions q;
  q.num_requests = 0;
  EXPECT_THROW(make(q), std::invalid_argument);
  q = {};
  q.candidates = 0;
  EXPECT_THROW(make(q), std::invalid_argument);
  q = {};
  q.qps = 0;
  EXPECT_THROW(make(q), std::invalid_argument);
  q = {};
  q.num_models = 0;
  EXPECT_THROW(make(q), std::invalid_argument);
  q = {};
  q.size = SizeShape::kHeavyTailed;
  q.candidates = 8;
  q.max_candidates = 4;  // cap below floor
  EXPECT_THROW(make(q), std::invalid_argument);
  q = {};
  q.arrival = ArrivalShape::kBursty;
  q.burst_low_x = 0;
  EXPECT_THROW(make(q), std::invalid_argument);
  q = {};
  q.arrival = ArrivalShape::kDiurnal;
  q.diurnal_trough = 0;
  EXPECT_THROW(make(q), std::invalid_argument);
}

// ------------------------------------------------------------- batcher --

TEST(BatcherTest, SizeFlushOnFullBatch) {
  Batcher b({.max_batch_requests = 3, .max_delay_us = 1'000'000});
  EXPECT_TRUE(b.Add(MakeRequest(1), 10).empty());
  EXPECT_TRUE(b.Add(MakeRequest(2), 20).empty());
  auto out = b.Add(MakeRequest(3), 30);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].reason, FlushReason::kSize);
  EXPECT_EQ(out[0].requests.size(), 3u);
  EXPECT_EQ(out[0].formed_us, 30);
  EXPECT_EQ(b.pending_requests(), 0u);
  EXPECT_EQ(b.stats().size_flushes, 1u);
}

TEST(BatcherTest, DeadlineFlushAtWindowExpiry) {
  Batcher b({.max_batch_requests = 8, .max_delay_us = 100});
  (void)b.Add(MakeRequest(1), 50);
  EXPECT_EQ(b.deadline_us(), 150);
  EXPECT_FALSE(b.PollExpired(149).has_value());  // window still open
  auto batch = b.PollExpired(150);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->reason, FlushReason::kDeadline);
  EXPECT_EQ(batch->requests.size(), 1u);
  EXPECT_FALSE(b.deadline_us().has_value());
}

TEST(BatcherTest, AddFlushesExpiredBatchBeforeAdmitting) {
  Batcher b({.max_batch_requests = 8, .max_delay_us = 100});
  (void)b.Add(MakeRequest(1), 0);
  (void)b.Add(MakeRequest(2), 40);
  // Arrival after the window expired: the forming batch must not wait
  // for the newcomer.
  auto out = b.Add(MakeRequest(3), 500);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].reason, FlushReason::kDeadline);
  ASSERT_EQ(out[0].requests.size(), 2u);
  EXPECT_EQ(out[0].requests[0].request_id, 1);
  EXPECT_EQ(b.pending_requests(), 1u);
  EXPECT_EQ(b.deadline_us(), 600);  // newcomer's own window
}

TEST(BatcherTest, ZeroDelayDegeneratesToNoBatching) {
  Batcher b({.max_batch_requests = 8, .max_delay_us = 0});
  for (int i = 1; i <= 4; ++i) {
    auto out = b.Add(MakeRequest(i), i * 10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].requests.size(), 1u);
  }
  EXPECT_EQ(b.stats().batches, 4u);
  EXPECT_FALSE(b.Flush(100).has_value());
}

TEST(BatcherTest, FinalFlushAndStats) {
  Batcher b({.max_batch_requests = 2, .max_delay_us = 1'000});
  (void)b.Add(MakeRequest(1, 3), 0);
  (void)b.Add(MakeRequest(2, 3), 1);  // size flush
  (void)b.Add(MakeRequest(3, 2), 2);
  auto fin = b.Flush(10);
  ASSERT_TRUE(fin.has_value());
  EXPECT_EQ(fin->reason, FlushReason::kFinal);
  EXPECT_EQ(fin->rows(), 2u);
  const auto& s = b.stats();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.rows, 8u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.size_flushes, 1u);
  EXPECT_EQ(s.final_flushes, 1u);
}

TEST(BatcherTest, RejectsBackwardsClockAndBadOptions) {
  EXPECT_THROW(Batcher({.max_batch_requests = 0}), std::invalid_argument);
  EXPECT_THROW(Batcher({.max_batch_requests = 1, .max_delay_us = -1}),
               std::invalid_argument);
  Batcher b({.max_batch_requests = 4, .max_delay_us = 10});
  (void)b.Add(MakeRequest(1), 100);
  EXPECT_THROW((void)b.Add(MakeRequest(2), 99), std::invalid_argument);
}

// -------------------------------------------------- end-to-end serving --

void ExpectSameScores(const std::vector<ScoredRequest>& a,
                      const std::vector<ScoredRequest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a[i];
    const auto& rb = b[i];
    ASSERT_EQ(ra.request_id, rb.request_id);
    ASSERT_EQ(ra.scores.size(), rb.scores.size());
    for (std::size_t k = 0; k < ra.scores.size(); ++k) {
      EXPECT_EQ(ra.scores[k], rb.scores[k])
          << "request " << ra.request_id << " candidate " << k;
    }
  }
}

void ExpectSameScores(const ServeResult& a, const ServeResult& b) {
  ExpectSameScores(a.requests, b.requests);
}

TEST(ServerRunnerTest, BaselineAndRecdScoresAreBitwiseIdentical) {
  const auto trace_spec = MakeTrace(SmallQuery(48, 4));
  ServerRunner runner(trace_spec, SingleFleet(trace_spec.dataset));
  const auto base = runner.Run(ReplayPolicy(/*recd=*/false));
  const auto recd = runner.Run(ReplayPolicy(/*recd=*/true));
  ASSERT_EQ(base.requests.size(), 48u);
  ExpectSameScores(base, recd);
  // RecD must have deduplicated across candidates/requests and saved
  // embedding lookups doing it.
  EXPECT_GT(recd.stats.request_dedupe_factor, 1.0);
  EXPECT_DOUBLE_EQ(base.stats.request_dedupe_factor, 1.0);
  EXPECT_LT(recd.stats.embedding_lookups, base.stats.embedding_lookups);
  EXPECT_LT(recd.stats.flops, base.stats.flops);
}

TEST(ServerRunnerTest, ScoresBitwiseIdenticalAcrossKernelBackends) {
  // Scalar and vectorized kernel backends must replay to identical
  // scores, on both serving paths (the kernel layer's bitwise
  // contract, observed end to end through the worker pool). The
  // backend is a ModelSpec knob now — the trace spec is shared.
  const auto trace_spec = MakeTrace(SmallQuery(48, 4));
  auto scalar_fleet = SingleFleet(trace_spec.dataset);
  scalar_fleet.models[0].backend = kernels::KernelBackend::kScalar;
  auto vec_fleet = SingleFleet(trace_spec.dataset);
  vec_fleet.models[0].backend = kernels::KernelBackend::kVectorized;
  ServerRunner scalar_runner(trace_spec, scalar_fleet);
  ServerRunner vec_runner(trace_spec, vec_fleet);
  for (const bool recd : {false, true}) {
    const auto a = scalar_runner.Run(ReplayPolicy(recd));
    const auto b = vec_runner.Run(ReplayPolicy(recd));
    ExpectSameScores(a, b);
  }
}

TEST(ServerRunnerTest, ParityHoldsWithAttentionPooling) {
  // RM1 pools sequence groups with self-attention: O7 at inference.
  const auto trace_spec =
      MakeTrace(SmallQuery(24, 4), datagen::RmKind::kRm1, 0.05);
  ModelSpec m;
  m.config = MakeModel(trace_spec.dataset, datagen::RmKind::kRm1);
  ServerRunner runner(trace_spec, FleetSpec::Single(std::move(m)));
  const auto base = runner.Run(ReplayPolicy(false));
  const auto recd = runner.Run(ReplayPolicy(true));
  ExpectSameScores(base, recd);
  EXPECT_GT(recd.stats.request_dedupe_factor, 1.0);
}

TEST(ServerRunnerTest, PerRequestOutputsIdenticalForAnyWorkerCount) {
  const auto trace_spec = MakeTrace(SmallQuery(64, 4));
  ServerRunner one_runner(trace_spec, SingleFleet(trace_spec.dataset, 1));
  ServerRunner four_runner(trace_spec, SingleFleet(trace_spec.dataset, 4));
  const auto one = one_runner.Run(ReplayPolicy(true));
  const auto four = four_runner.Run(ReplayPolicy(true));
  ExpectSameScores(one, four);
  // Replay mode fixes batch composition, so latency (batching delay),
  // dedupe, and op counters are worker-count invariant too.
  ASSERT_EQ(one.requests.size(), four.requests.size());
  for (std::size_t i = 0; i < one.requests.size(); ++i) {
    EXPECT_EQ(one.requests[i].latency_us, four.requests[i].latency_us);
    // Replay latency is the exact batching delay, which the SLA bounds
    // (deadline flushes are stamped at the deadline itself).
    EXPECT_LE(one.requests[i].latency_us, 100);
  }
  EXPECT_EQ(one.stats.batches, four.stats.batches);
  EXPECT_DOUBLE_EQ(one.stats.request_dedupe_factor,
                   four.stats.request_dedupe_factor);
  EXPECT_DOUBLE_EQ(one.stats.embedding_lookups,
                   four.stats.embedding_lookups);
  EXPECT_DOUBLE_EQ(one.stats.flops, four.stats.flops);
  const auto ba = one.stats.latency_us.buckets();
  const auto bb = four.stats.latency_us.buckets();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].lo, bb[i].lo);
    EXPECT_EQ(ba[i].count, bb[i].count);
  }
}

TEST(ServerRunnerTest, ReplayRunsAreReproducible) {
  const auto trace_spec = MakeTrace(SmallQuery(32, 3));
  ServerRunner runner(trace_spec, SingleFleet(trace_spec.dataset, 2));
  const auto a = runner.Run(ReplayPolicy(true));
  const auto b = runner.Run(ReplayPolicy(true));
  ExpectSameScores(a, b);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].latency_us, b.requests[i].latency_us);
    EXPECT_EQ(a.requests[i].completion_us, b.requests[i].completion_us);
  }
}

TEST(ServerRunnerTest, PacedModeServesEveryRequestWithSameScores) {
  auto q = SmallQuery(24, 3);
  q.qps = 20'000;  // finishes in ~a millisecond of pacing
  const auto trace_spec = MakeTrace(q);
  ServerRunner runner(trace_spec, SingleFleet(trace_spec.dataset, 2));
  const auto replay = runner.Run(ReplayPolicy(true));
  auto paced = ReplayPolicy(true);
  paced.pace_arrivals = true;
  const auto paced_result = runner.Run(paced);
  // Batch composition differs (wall clock), but scores are row-local:
  // the batcher determinism rule.
  ExpectSameScores(replay, paced_result);
  EXPECT_EQ(paced_result.stats.requests, 24u);
  for (const auto& r : paced_result.requests) {
    EXPECT_GE(r.latency_us, 1);
    EXPECT_GE(r.completion_us, r.arrival_us);
  }
  EXPECT_GT(paced_result.stats.achieved_qps, 0.0);
}

TEST(ServerRunnerTest, BatchSizeSweepNeverLosesRequests) {
  const auto trace_spec = MakeTrace(SmallQuery(40, 2));
  ServerRunner runner(trace_spec, SingleFleet(trace_spec.dataset, 2));
  for (const std::size_t max_requests : {1u, 3u, 40u, 64u}) {
    auto policy = ReplayPolicy(true);
    policy.batcher->max_batch_requests = max_requests;
    const auto r = runner.Run(policy);
    EXPECT_EQ(r.stats.requests, 40u) << "max_requests=" << max_requests;
    EXPECT_EQ(r.requests.size(), 40u);
    EXPECT_EQ(r.stats.rows, 80u);
    if (max_requests == 1) {
      // No coalescing: one scored batch per request.
      EXPECT_EQ(r.stats.batches, 40u);
      EXPECT_DOUBLE_EQ(r.stats.mean_batch_requests, 1.0);
    }
  }
}

TEST(ServerRunnerTest, ZeroCandidateRequestsCompleteWithEmptyScores) {
  // A retrieval stage can emit an empty candidate set; the request must
  // still flow through batching and complete with zero scores, without
  // perturbing its batchmates.
  const auto trace_spec = MakeTrace(SmallQuery(12, 2));
  auto trace = QueryGenerator(trace_spec).Generate();
  trace[3].rows.clear();
  trace[7].rows.clear();
  ServerRunner runner(trace_spec, SingleFleet(trace_spec.dataset, 2), trace);
  for (const bool recd : {false, true}) {
    const auto r = runner.Run(ReplayPolicy(recd));
    ASSERT_EQ(r.requests.size(), 12u);
    EXPECT_EQ(r.stats.requests, 12u);
    EXPECT_EQ(r.stats.rows, 20u);  // two requests contributed nothing
    for (const auto& sr : r.requests) {
      const bool emptied = sr.request_id == 4 || sr.request_id == 8;
      EXPECT_EQ(sr.scores.size(), emptied ? 0u : 2u)
          << "request " << sr.request_id;
      EXPECT_GE(sr.latency_us, 1);
    }
  }
}

TEST(ServerRunnerTest, RejectsTraceRoutedOutsideTheFleet) {
  auto q = SmallQuery(16, 2);
  q.num_models = 3;  // trace routes across 3 models...
  const auto trace_spec = MakeTrace(q);
  // ...but the fleet has one. Both constructors must reject it.
  EXPECT_THROW(ServerRunner(trace_spec, SingleFleet(trace_spec.dataset)),
               std::invalid_argument);
  const auto trace = QueryGenerator(trace_spec).Generate();
  EXPECT_THROW(
      ServerRunner(trace_spec, SingleFleet(trace_spec.dataset), trace),
      std::invalid_argument);
}

// ------------------------------------------------- multi-model serving --

TEST(MultiModelServingTest, ScoresIdenticalAcrossWorkerCounts) {
  // The determinism rule at fleet scale: scores and replay latencies
  // are bitwise invariant to per-lane worker counts, for zoo sizes 1
  // and 3, on both serving paths.
  for (const std::size_t zoo_size : {1u, 3u}) {
    auto q = SmallQuery(72, 3);
    q.num_models = zoo_size;
    const auto trace_spec = MakeTrace(q);
    FleetSpec narrow;
    narrow.models = SmallZoo(trace_spec.dataset, zoo_size);
    narrow.default_workers = 1;
    FleetSpec wide = narrow;
    wide.default_workers = 8;
    ServerRunner narrow_runner(trace_spec, narrow);
    ServerRunner wide_runner(trace_spec, wide);
    for (const bool recd : {false, true}) {
      RunPolicy policy = recd ? RunPolicy::Recd() : RunPolicy::Baseline();
      const auto a = narrow_runner.Run(policy);
      const auto b = wide_runner.Run(policy);
      ExpectSameScores(a, b);
      ASSERT_EQ(a.model_stats.size(), zoo_size);
      for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].latency_us, b.requests[i].latency_us);
        EXPECT_EQ(a.requests[i].model_id, b.requests[i].model_id);
      }
      for (std::size_t m = 0; m < zoo_size; ++m) {
        EXPECT_EQ(a.model_stats[m].batches, b.model_stats[m].batches);
        EXPECT_DOUBLE_EQ(a.model_stats[m].embedding_lookups,
                         b.model_stats[m].embedding_lookups);
      }
    }
  }
}

TEST(MultiModelServingTest, ZooServingMatchesSingleModelSubTraces) {
  // Serving the full trace through a 3-model zoo must score each
  // model's sub-trace bitwise identically — scores AND replay
  // latencies — to serving that sub-trace alone through a single-model
  // fleet (zoo composition cannot leak into results).
  auto q = SmallQuery(72, 3);
  q.num_models = 3;
  const auto trace_spec = MakeTrace(q);
  const auto zoo = SmallZoo(trace_spec.dataset, 3);
  FleetSpec fleet;
  fleet.models = zoo;
  fleet.default_workers = 2;
  ServerRunner zoo_runner(trace_spec, fleet);
  const auto full = zoo_runner.Run(RunPolicy::Recd());

  for (std::size_t m = 0; m < 3; ++m) {
    const auto sub = SubTraceForModel(zoo_runner.trace(), m);
    ASSERT_FALSE(sub.empty());
    ServerRunner solo(trace_spec, FleetSpec::Single(zoo[m]), sub);
    const auto alone = solo.Run(RunPolicy::Recd());

    std::vector<ScoredRequest> from_zoo;
    for (const auto& sr : full.requests) {
      if (sr.model_id == m) from_zoo.push_back(sr);
    }
    ExpectSameScores(from_zoo, alone.requests);
    ASSERT_EQ(from_zoo.size(), alone.requests.size());
    for (std::size_t i = 0; i < from_zoo.size(); ++i) {
      EXPECT_EQ(from_zoo[i].latency_us, alone.requests[i].latency_us)
          << "request " << from_zoo[i].request_id;
    }
    EXPECT_EQ(full.model_stats[m].batches, alone.stats.batches);
    EXPECT_DOUBLE_EQ(full.model_stats[m].embedding_lookups,
                     alone.stats.embedding_lookups);
    EXPECT_DOUBLE_EQ(full.model_stats[m].flops, alone.stats.flops);
  }
}

TEST(MultiModelServingTest, PerModelBatcherOverridesApply) {
  auto q = SmallQuery(48, 2);
  q.num_models = 2;
  const auto trace_spec = MakeTrace(q);
  FleetSpec fleet;
  fleet.models = SmallZoo(trace_spec.dataset, 2);
  ServerRunner runner(trace_spec, fleet);
  RunPolicy policy = RunPolicy::Recd();
  BatcherOptions solo;
  solo.max_batch_requests = 1;  // model 1: no coalescing at all
  solo.max_delay_us = 0;
  policy.batcher_overrides[1] = solo;
  const auto r = runner.Run(policy);
  ASSERT_EQ(r.model_stats.size(), 2u);
  // Model 1 scored one batch per request; model 0 kept its defaults.
  EXPECT_EQ(r.model_stats[1].batches, r.model_stats[1].requests);
  EXPECT_LT(r.model_stats[0].batches, r.model_stats[0].requests);
  EXPECT_EQ(r.stats.requests, 48u);
}

// --------------------------------------------- tail-latency scheduler --

std::vector<Request> SchedulerTrace(std::size_t requests = 96) {
  auto q = SmallQuery(requests, 3);
  q.qps = 5'000;
  return QueryGenerator(MakeTrace(q)).Generate();
}

TEST(SchedulerTest, SimulatedLaneIsDeterministic) {
  const auto trace = SchedulerTrace();
  BatcherOptions b;
  b.max_batch_requests = 4;
  b.max_delay_us = 500;
  const ServiceModel service{.batch_overhead_us = 150, .us_per_row = 40};
  const auto a = SimulateLane(trace, b, 2, service);
  const auto c = SimulateLane(trace, b, 2, service);
  EXPECT_EQ(a.requests, trace.size());
  EXPECT_EQ(a.batches, c.batches);
  EXPECT_EQ(a.makespan_us, c.makespan_us);
  EXPECT_DOUBLE_EQ(a.p99_us(), c.p99_us());
  const auto ba = a.latency_us.buckets();
  const auto bc = c.latency_us.buckets();
  ASSERT_EQ(ba.size(), bc.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].count, bc[i].count);
  }
  // Latency can never undercut the service floor of a lone request.
  EXPECT_GE(a.latency_us.min(),
            static_cast<std::int64_t>(service.ServiceUs(0)));
}

TEST(SchedulerTest, MoreWorkersNeverHurtSimulatedTail) {
  const auto trace = SchedulerTrace();
  BatcherOptions b;
  b.max_batch_requests = 8;
  b.max_delay_us = 200;
  const ServiceModel service{.batch_overhead_us = 300, .us_per_row = 120};
  const auto one = SimulateLane(trace, b, 1, service);
  const auto four = SimulateLane(trace, b, 4, service);
  EXPECT_LE(four.p99_us(), one.p99_us());
  EXPECT_LE(four.makespan_us, one.makespan_us);
}

TEST(SchedulerTest, TuningIsDeterministicAndImprovesTheObjective) {
  const auto trace = SchedulerTrace();
  // Deliberately slow service so the seed config (1 worker, wide
  // window) violates the SLA and the climber has real work to do.
  const ServiceModel service{.batch_overhead_us = 400, .us_per_row = 150};
  TuneOptions opts;
  opts.sla_p99_us = 15'000;
  opts.max_workers = 6;
  BatcherOptions seed;
  seed.max_batch_requests = 32;
  seed.max_delay_us = 10'000;
  const auto a = TuneLane(trace, service, opts, seed, 1);
  const auto b = TuneLane(trace, service, opts, seed, 1);
  EXPECT_EQ(a.batcher.max_batch_requests, b.batcher.max_batch_requests);
  EXPECT_EQ(a.batcher.max_delay_us, b.batcher.max_delay_us);
  EXPECT_EQ(a.workers, b.workers);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
  EXPECT_EQ(a.evaluations, b.evaluations);
  const double seed_p99 = SimulateLane(trace, seed, 1, service).p99_us();
  EXPECT_LT(a.p99_us, seed_p99);
  EXPECT_TRUE(a.meets_sla);
  EXPECT_LE(a.p99_us, opts.sla_p99_us);
  EXPECT_GT(a.evaluations, 1u);
}

TEST(SchedulerTest, WindowFloorBoundsTheClimb) {
  const auto trace = SchedulerTrace();
  // Fast service + tight SLA: unbounded, the climber collapses the
  // window toward zero; the floor must hold it up instead.
  const ServiceModel service{.batch_overhead_us = 50, .us_per_row = 5};
  TuneOptions opts;
  opts.sla_p99_us = 2'000;
  opts.min_delay_us = 750;
  BatcherOptions seed;
  seed.max_batch_requests = 16;
  seed.max_delay_us = 12'000;
  const auto tuned = TuneLane(trace, service, opts, seed, 1);
  EXPECT_GE(tuned.batcher.max_delay_us, 750);
  TuneOptions bad = opts;
  bad.min_delay_us = bad.max_delay_us + 1;
  EXPECT_THROW((void)TuneLane(trace, service, bad, seed, 1),
               std::invalid_argument);
}

TEST(SchedulerTest, TuneFleetEmitsPluggableOverrides) {
  auto q = SmallQuery(90, 2);
  q.num_models = 3;
  const auto trace_spec = MakeTrace(q);
  const auto trace = QueryGenerator(trace_spec).Generate();
  FleetSpec fleet;
  fleet.models = SmallZoo(trace_spec.dataset, 3);
  const ServiceModel service{.batch_overhead_us = 200, .us_per_row = 50};
  TuneOptions opts;
  opts.sla_p99_us = 10'000;
  const auto tuning = TuneFleet(trace, fleet, service, opts);
  ASSERT_EQ(tuning.lanes.size(), 3u);
  const auto overrides = tuning.batcher_overrides();
  const auto workers = tuning.workers();
  EXPECT_EQ(overrides.size(), 3u);
  ASSERT_EQ(workers.size(), 3u);
  for (const auto w : workers) EXPECT_GE(w, 1u);
  // The outputs plug directly back into the serving spec.
  FleetSpec tuned = fleet;
  tuned.workers = workers;
  RunPolicy policy = RunPolicy::Recd();
  policy.batcher_overrides = overrides;
  ServerRunner runner(trace_spec, tuned, trace);
  const auto result = runner.Run(policy);
  EXPECT_EQ(result.stats.requests, 90u);
}

TEST(SchedulerTest, ScaleTraceCompressesArrivalsOnly) {
  const auto trace = SchedulerTrace(32);
  const auto hot = ScaleTrace(trace, 2.0);
  ASSERT_EQ(hot.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(hot[i].request_id, trace[i].request_id);
    EXPECT_EQ(hot[i].rows.size(), trace[i].rows.size());
    EXPECT_LE(hot[i].arrival_us, trace[i].arrival_us);
    if (i > 0) {
      EXPECT_GE(hot[i].arrival_us, hot[i - 1].arrival_us);
    }
  }
  EXPECT_THROW(ScaleTrace(trace, 0.0), std::invalid_argument);
}

// ----------------------------------------------------- model server --

TEST(ModelServerTest, CleanShutdownUnderConcurrentLoad) {
  const auto spec = MakeSpec();
  const auto schema = core::MakePipelineSchema(spec);
  ModelSpec model;
  model.config = MakeModel(spec);
  auto fleet = FleetSpec::Single(std::move(model), /*num_workers=*/3);
  fleet.batch_channel_capacity = 2;  // force producer backpressure
  const std::vector<reader::DataLoaderConfig> loaders = {
      core::MakePipelineLoader(fleet.models[0].config,
                               core::RecdConfig::Full(16))};
  TraceSpec trace_spec;
  trace_spec.dataset = spec;
  trace_spec.query = SmallQuery(96, 2);
  const auto trace = QueryGenerator(trace_spec).Generate();

  ModelServer::Options mopts;
  mopts.recd = true;
  ModelServer server(fleet, schema, loaders, mopts);
  server.Start();

  // Two producers race batches in; Shutdown lands while work is queued.
  std::atomic<std::size_t> accepted{0};
  auto produce = [&](std::size_t begin) {
    for (std::size_t i = begin; i < trace.size(); i += 2) {
      Batch b;
      b.requests.push_back(trace[i]);
      b.formed_us = trace[i].arrival_us;
      if (server.Submit(0, std::move(b))) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread p1(produce, 0);
  std::thread p2(produce, 1);
  p1.join();
  p2.join();
  server.Shutdown();

  // Every accepted batch was scored exactly once, none lost.
  auto scored = server.TakeScored();
  EXPECT_EQ(scored.size(), accepted.load());
  EXPECT_EQ(server.work_stats().requests, accepted.load());
  for (std::size_t i = 1; i < scored.size(); ++i) {
    EXPECT_LT(scored[i - 1].request_id, scored[i].request_id);
  }
  server.Shutdown();  // idempotent
}

TEST(ModelServerTest, SubmitAfterShutdownIsRejected) {
  const auto spec = MakeSpec();
  const auto schema = core::MakePipelineSchema(spec);
  ModelSpec model;
  model.config = MakeModel(spec);
  const auto fleet = FleetSpec::Single(std::move(model));
  const std::vector<reader::DataLoaderConfig> loaders = {
      core::MakePipelineLoader(fleet.models[0].config,
                               core::RecdConfig::Full(16))};
  ModelServer server(fleet, schema, loaders, {});
  server.Start();
  server.Shutdown();
  Batch b;
  b.requests.push_back(MakeRequest(1));
  EXPECT_FALSE(server.Submit(0, std::move(b)));
}

TEST(ModelServerTest, RejectsMismatchedLoaders) {
  const auto spec = MakeSpec();
  const auto schema = core::MakePipelineSchema(spec);
  ModelSpec model;
  model.config = MakeModel(spec);
  const auto fleet = FleetSpec::Single(std::move(model));
  const std::vector<reader::DataLoaderConfig> none;
  EXPECT_THROW(ModelServer(fleet, schema, none, {}), std::invalid_argument);
}

}  // namespace
}  // namespace recd::serve
