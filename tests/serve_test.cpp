// Tests for the online serving subsystem (src/serve): deterministic
// query generation, batcher flush/SLA edge cases, baseline-vs-RecD score
// parity, worker-count determinism of per-request outputs, and clean
// shutdown under load (ISSUE acceptance criteria).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "datagen/presets.h"
#include "serve/batcher.h"
#include "serve/model_server.h"
#include "serve/query_gen.h"
#include "serve/server_runner.h"
#include "train/model.h"

namespace recd::serve {
namespace {

datagen::DatasetSpec MakeSpec(datagen::RmKind kind = datagen::RmKind::kRm2,
                              double scale = 0.08) {
  auto spec = datagen::RmDataset(kind, scale);
  spec.concurrent_sessions = 8;  // few users => requests revisit users
  spec.mean_session_size = 24;   // long-lived serving sessions
  return spec;
}

train::ModelConfig MakeModel(const datagen::DatasetSpec& spec,
                             datagen::RmKind kind = datagen::RmKind::kRm2) {
  auto model = train::RmModel(kind, spec);
  model.emb_hash_size = 2'000;  // small per-worker replicas
  model.emb_dim = 16;
  model.bottom_mlp_hidden = {32};
  model.top_mlp_hidden = {64, 32};
  return model;
}

QueryGenOptions SmallQuery(std::size_t requests = 48,
                           std::size_t candidates = 4) {
  QueryGenOptions q;
  q.num_requests = requests;
  q.candidates = candidates;
  q.qps = 50'000;  // ~20 µs mean gaps: several requests per window
  return q;
}

Request MakeRequest(std::int64_t id, std::size_t rows = 1) {
  Request r;
  r.request_id = id;
  r.user_id = id;
  r.rows.resize(rows);
  return r;
}

// ---------------------------------------------------------- query gen --

TEST(QueryGeneratorTest, TraceIsDeterministicAndShaped) {
  const auto spec = MakeSpec();
  const auto opts = SmallQuery(32, 5);
  auto a = QueryGenerator(spec, opts).Generate();
  auto b = QueryGenerator(spec, opts).Generate();
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].user_id, b[i].user_id);
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    ASSERT_EQ(a[i].rows.size(), 5u);
    for (std::size_t c = 0; c < a[i].rows.size(); ++c) {
      EXPECT_EQ(a[i].rows[c], b[i].rows[c]);
    }
    if (i > 0) {
      EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
    }
  }
}

TEST(QueryGeneratorTest, CandidatesShareUserFeaturesExactly) {
  const auto spec = MakeSpec();
  const auto trace = QueryGenerator(spec, SmallQuery(16, 6)).Generate();
  for (const auto& r : trace) {
    const auto& first = r.rows.front();
    for (const auto& row : r.rows) {
      EXPECT_EQ(row.session_id, r.user_id);
      EXPECT_EQ(row.dense, first.dense);  // dense is user/request state
      for (std::size_t f = 0; f < spec.num_sparse(); ++f) {
        if (spec.sparse[f].klass == datagen::FeatureClass::kUser) {
          EXPECT_EQ(row.sparse[f], first.sparse[f])
              << "user feature diverged across candidates: "
              << spec.sparse[f].name;
        }
      }
    }
  }
}

TEST(QueryGeneratorTest, RejectsBadOptions) {
  const auto spec = MakeSpec();
  QueryGenOptions q;
  q.num_requests = 0;
  EXPECT_THROW(QueryGenerator(spec, q), std::invalid_argument);
  q = {};
  q.candidates = 0;
  EXPECT_THROW(QueryGenerator(spec, q), std::invalid_argument);
  q = {};
  q.qps = 0;
  EXPECT_THROW(QueryGenerator(spec, q), std::invalid_argument);
}

// ------------------------------------------------------------- batcher --

TEST(BatcherTest, SizeFlushOnFullBatch) {
  Batcher b({.max_batch_requests = 3, .max_delay_us = 1'000'000});
  EXPECT_TRUE(b.Add(MakeRequest(1), 10).empty());
  EXPECT_TRUE(b.Add(MakeRequest(2), 20).empty());
  auto out = b.Add(MakeRequest(3), 30);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].reason, FlushReason::kSize);
  EXPECT_EQ(out[0].requests.size(), 3u);
  EXPECT_EQ(out[0].formed_us, 30);
  EXPECT_EQ(b.pending_requests(), 0u);
  EXPECT_EQ(b.stats().size_flushes, 1u);
}

TEST(BatcherTest, DeadlineFlushAtWindowExpiry) {
  Batcher b({.max_batch_requests = 8, .max_delay_us = 100});
  (void)b.Add(MakeRequest(1), 50);
  EXPECT_EQ(b.deadline_us(), 150);
  EXPECT_FALSE(b.PollExpired(149).has_value());  // window still open
  auto batch = b.PollExpired(150);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->reason, FlushReason::kDeadline);
  EXPECT_EQ(batch->requests.size(), 1u);
  EXPECT_FALSE(b.deadline_us().has_value());
}

TEST(BatcherTest, AddFlushesExpiredBatchBeforeAdmitting) {
  Batcher b({.max_batch_requests = 8, .max_delay_us = 100});
  (void)b.Add(MakeRequest(1), 0);
  (void)b.Add(MakeRequest(2), 40);
  // Arrival after the window expired: the forming batch must not wait
  // for the newcomer.
  auto out = b.Add(MakeRequest(3), 500);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].reason, FlushReason::kDeadline);
  ASSERT_EQ(out[0].requests.size(), 2u);
  EXPECT_EQ(out[0].requests[0].request_id, 1);
  EXPECT_EQ(b.pending_requests(), 1u);
  EXPECT_EQ(b.deadline_us(), 600);  // newcomer's own window
}

TEST(BatcherTest, ZeroDelayDegeneratesToNoBatching) {
  Batcher b({.max_batch_requests = 8, .max_delay_us = 0});
  for (int i = 1; i <= 4; ++i) {
    auto out = b.Add(MakeRequest(i), i * 10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].requests.size(), 1u);
  }
  EXPECT_EQ(b.stats().batches, 4u);
  EXPECT_FALSE(b.Flush(100).has_value());
}

TEST(BatcherTest, FinalFlushAndStats) {
  Batcher b({.max_batch_requests = 2, .max_delay_us = 1'000});
  (void)b.Add(MakeRequest(1, 3), 0);
  (void)b.Add(MakeRequest(2, 3), 1);  // size flush
  (void)b.Add(MakeRequest(3, 2), 2);
  auto fin = b.Flush(10);
  ASSERT_TRUE(fin.has_value());
  EXPECT_EQ(fin->reason, FlushReason::kFinal);
  EXPECT_EQ(fin->rows(), 2u);
  const auto& s = b.stats();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.rows, 8u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.size_flushes, 1u);
  EXPECT_EQ(s.final_flushes, 1u);
}

TEST(BatcherTest, RejectsBackwardsClockAndBadOptions) {
  EXPECT_THROW(Batcher({.max_batch_requests = 0}), std::invalid_argument);
  EXPECT_THROW(Batcher({.max_batch_requests = 1, .max_delay_us = -1}),
               std::invalid_argument);
  Batcher b({.max_batch_requests = 4, .max_delay_us = 10});
  (void)b.Add(MakeRequest(1), 100);
  EXPECT_THROW((void)b.Add(MakeRequest(2), 99), std::invalid_argument);
}

// -------------------------------------------------- end-to-end serving --

ServeConfig ReplayConfig(bool recd, std::size_t workers = 1) {
  ServeConfig c = recd ? ServeConfig::Recd() : ServeConfig::Baseline();
  c.num_workers = workers;
  c.batcher.max_batch_requests = 4;
  c.batcher.max_delay_us = 100;
  c.pace_arrivals = false;
  return c;
}

void ExpectSameScores(const ServeResult& a, const ServeResult& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const auto& ra = a.requests[i];
    const auto& rb = b.requests[i];
    ASSERT_EQ(ra.request_id, rb.request_id);
    ASSERT_EQ(ra.scores.size(), rb.scores.size());
    for (std::size_t k = 0; k < ra.scores.size(); ++k) {
      EXPECT_EQ(ra.scores[k], rb.scores[k])
          << "request " << ra.request_id << " candidate " << k;
    }
  }
}

TEST(ServerRunnerTest, BaselineAndRecdScoresAreBitwiseIdentical) {
  const auto spec = MakeSpec();
  ServeOptions options;
  options.query = SmallQuery(48, 4);
  ServerRunner runner(spec, MakeModel(spec), options);
  const auto base = runner.Run(ReplayConfig(/*recd=*/false));
  const auto recd = runner.Run(ReplayConfig(/*recd=*/true));
  ASSERT_EQ(base.requests.size(), 48u);
  ExpectSameScores(base, recd);
  // RecD must have deduplicated across candidates/requests and saved
  // embedding lookups doing it.
  EXPECT_GT(recd.stats.request_dedupe_factor, 1.0);
  EXPECT_DOUBLE_EQ(base.stats.request_dedupe_factor, 1.0);
  EXPECT_LT(recd.stats.embedding_lookups, base.stats.embedding_lookups);
  EXPECT_LT(recd.stats.flops, base.stats.flops);
}

TEST(ServerRunnerTest, ScoresBitwiseIdenticalAcrossKernelBackends) {
  // Scalar and vectorized kernel backends must replay to identical
  // scores, on both serving paths (the kernel layer's bitwise
  // contract, observed end to end through the worker pool).
  const auto spec = MakeSpec();
  const auto model = MakeModel(spec);
  ServeOptions scalar_options;
  scalar_options.query = SmallQuery(48, 4);
  scalar_options.backend = kernels::KernelBackend::kScalar;
  ServeOptions vec_options = scalar_options;
  vec_options.backend = kernels::KernelBackend::kVectorized;
  ServerRunner scalar_runner(spec, model, scalar_options);
  ServerRunner vec_runner(spec, model, vec_options);
  for (const bool recd : {false, true}) {
    const auto a = scalar_runner.Run(ReplayConfig(recd));
    const auto b = vec_runner.Run(ReplayConfig(recd));
    ExpectSameScores(a, b);
  }
}

TEST(ServerRunnerTest, ParityHoldsWithAttentionPooling) {
  // RM1 pools sequence groups with self-attention: O7 at inference.
  const auto spec = MakeSpec(datagen::RmKind::kRm1, 0.05);
  ServeOptions options;
  options.query = SmallQuery(24, 4);
  ServerRunner runner(spec, MakeModel(spec, datagen::RmKind::kRm1),
                      options);
  const auto base = runner.Run(ReplayConfig(false));
  const auto recd = runner.Run(ReplayConfig(true));
  ExpectSameScores(base, recd);
  EXPECT_GT(recd.stats.request_dedupe_factor, 1.0);
}

TEST(ServerRunnerTest, PerRequestOutputsIdenticalForAnyWorkerCount) {
  const auto spec = MakeSpec();
  ServeOptions options;
  options.query = SmallQuery(64, 4);
  ServerRunner runner(spec, MakeModel(spec), options);
  const auto one = runner.Run(ReplayConfig(true, 1));
  const auto four = runner.Run(ReplayConfig(true, 4));
  ExpectSameScores(one, four);
  // Replay mode fixes batch composition, so latency (batching delay),
  // dedupe, and op counters are worker-count invariant too.
  ASSERT_EQ(one.requests.size(), four.requests.size());
  for (std::size_t i = 0; i < one.requests.size(); ++i) {
    EXPECT_EQ(one.requests[i].latency_us, four.requests[i].latency_us);
    // Replay latency is the exact batching delay, which the SLA bounds
    // (deadline flushes are stamped at the deadline itself).
    EXPECT_LE(one.requests[i].latency_us,
              std::max<std::int64_t>(1, ReplayConfig(true).batcher.max_delay_us));
  }
  EXPECT_EQ(one.stats.batches, four.stats.batches);
  EXPECT_DOUBLE_EQ(one.stats.request_dedupe_factor,
                   four.stats.request_dedupe_factor);
  EXPECT_DOUBLE_EQ(one.stats.embedding_lookups,
                   four.stats.embedding_lookups);
  EXPECT_DOUBLE_EQ(one.stats.flops, four.stats.flops);
  const auto ba = one.stats.latency_us.buckets();
  const auto bb = four.stats.latency_us.buckets();
  ASSERT_EQ(ba.size(), bb.size());
  for (std::size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].lo, bb[i].lo);
    EXPECT_EQ(ba[i].count, bb[i].count);
  }
}

TEST(ServerRunnerTest, ReplayRunsAreReproducible) {
  const auto spec = MakeSpec();
  ServeOptions options;
  options.query = SmallQuery(32, 3);
  ServerRunner runner(spec, MakeModel(spec), options);
  const auto a = runner.Run(ReplayConfig(true, 2));
  const auto b = runner.Run(ReplayConfig(true, 2));
  ExpectSameScores(a, b);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].latency_us, b.requests[i].latency_us);
    EXPECT_EQ(a.requests[i].completion_us, b.requests[i].completion_us);
  }
}

TEST(ServerRunnerTest, PacedModeServesEveryRequestWithSameScores) {
  const auto spec = MakeSpec();
  ServeOptions options;
  options.query = SmallQuery(24, 3);
  options.query.qps = 20'000;  // finishes in ~a millisecond of pacing
  ServerRunner runner(spec, MakeModel(spec), options);
  const auto replay = runner.Run(ReplayConfig(true, 2));
  auto paced_cfg = ReplayConfig(true, 2);
  paced_cfg.pace_arrivals = true;
  const auto paced = runner.Run(paced_cfg);
  // Batch composition differs (wall clock), but scores are row-local:
  // the batcher determinism rule.
  ExpectSameScores(replay, paced);
  EXPECT_EQ(paced.stats.requests, 24u);
  for (const auto& r : paced.requests) {
    EXPECT_GE(r.latency_us, 1);
    EXPECT_GE(r.completion_us, r.arrival_us);
  }
  EXPECT_GT(paced.stats.achieved_qps, 0.0);
}

TEST(ServerRunnerTest, BatchSizeSweepNeverLosesRequests) {
  const auto spec = MakeSpec();
  ServeOptions options;
  options.query = SmallQuery(40, 2);
  ServerRunner runner(spec, MakeModel(spec), options);
  for (const std::size_t max_requests : {1u, 3u, 40u, 64u}) {
    auto cfg = ReplayConfig(true, 2);
    cfg.batcher.max_batch_requests = max_requests;
    const auto r = runner.Run(cfg);
    EXPECT_EQ(r.stats.requests, 40u) << "max_requests=" << max_requests;
    EXPECT_EQ(r.requests.size(), 40u);
    EXPECT_EQ(r.stats.rows, 80u);
  }
}

// ----------------------------------------------------- model server --

TEST(ModelServerTest, CleanShutdownUnderConcurrentLoad) {
  const auto spec = MakeSpec();
  const auto model = MakeModel(spec);
  const auto schema = core::MakePipelineSchema(spec);
  const auto loader =
      core::MakePipelineLoader(model, core::RecdConfig::Full(16));
  const auto trace = QueryGenerator(spec, SmallQuery(96, 2)).Generate();

  ModelServer::Options mopts;
  mopts.num_workers = 3;
  mopts.recd = true;
  mopts.channel_capacity = 2;  // force producer backpressure
  ModelServer server(model, schema, loader, mopts);
  server.Start();

  // Two producers race batches in; Shutdown lands while work is queued.
  std::atomic<std::size_t> accepted{0};
  auto produce = [&](std::size_t begin) {
    for (std::size_t i = begin; i < trace.size(); i += 2) {
      Batch b;
      b.requests.push_back(trace[i]);
      b.formed_us = trace[i].arrival_us;
      if (server.Submit(std::move(b))) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::thread p1(produce, 0);
  std::thread p2(produce, 1);
  p1.join();
  p2.join();
  server.Shutdown();

  // Every accepted batch was scored exactly once, none lost.
  auto scored = server.TakeScored();
  EXPECT_EQ(scored.size(), accepted.load());
  EXPECT_EQ(server.work_stats().requests, accepted.load());
  for (std::size_t i = 1; i < scored.size(); ++i) {
    EXPECT_LT(scored[i - 1].request_id, scored[i].request_id);
  }
  server.Shutdown();  // idempotent
}

TEST(ModelServerTest, SubmitAfterShutdownIsRejected) {
  const auto spec = MakeSpec();
  const auto model = MakeModel(spec);
  const auto schema = core::MakePipelineSchema(spec);
  const auto loader =
      core::MakePipelineLoader(model, core::RecdConfig::Full(16));
  ModelServer server(model, schema, loader, {});
  server.Start();
  server.Shutdown();
  Batch b;
  b.requests.push_back(MakeRequest(1));
  EXPECT_FALSE(server.Submit(std::move(b)));
}

}  // namespace
}  // namespace recd::serve
