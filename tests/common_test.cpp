// Unit tests for recd::common — hashing, byte streams, RNG, histograms.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <tuple>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"

namespace recd::common {
namespace {

// ---------------------------------------------------------------- hash --

TEST(HashTest, DeterministicAcrossCalls) {
  const std::vector<std::int64_t> ids = {1, 2, 3, 42, -7};
  EXPECT_EQ(HashIds(ids), HashIds(ids));
  EXPECT_EQ(HashString("feature_a"), HashString("feature_a"));
}

TEST(HashTest, DifferentInputsDiffer) {
  EXPECT_NE(HashIds(std::vector<std::int64_t>{1, 2, 3}),
            HashIds(std::vector<std::int64_t>{1, 2, 4}));
  EXPECT_NE(HashIds(std::vector<std::int64_t>{1, 2, 3}),
            HashIds(std::vector<std::int64_t>{3, 2, 1}));
  EXPECT_NE(HashString("a"), HashString("b"));
}

TEST(HashTest, SeedChangesHash) {
  const std::vector<std::int64_t> ids = {10, 20};
  EXPECT_NE(HashIds(ids, 0), HashIds(ids, 1));
}

TEST(HashTest, EmptyInputsHashConsistently) {
  EXPECT_EQ(HashIds({}), HashIds({}));
  EXPECT_EQ(HashString(""), HashString(""));
  EXPECT_NE(HashIds({}), HashIds(std::vector<std::int64_t>{0}));
}

TEST(HashTest, LengthExtensionDiffers) {
  // [1] vs [1, 0] must hash differently (length is part of identity).
  EXPECT_NE(HashIds(std::vector<std::int64_t>{1}),
            HashIds(std::vector<std::int64_t>{1, 0}));
}

TEST(HashTest, CombineIsOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashTest, Mix64SpreadsSmallInts) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

// --------------------------------------------------------------- bytes --

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutF32(3.25f);
  w.PutF64(-1.5e300);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEF);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetF32(), 3.25f);
  EXPECT_EQ(r.GetF64(), -1.5e300);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTripEdgeCases) {
  const std::vector<std::uint64_t> cases = {
      0, 1, 127, 128, 300, (1ull << 14) - 1, 1ull << 14,
      (1ull << 35) + 12345, std::numeric_limits<std::uint64_t>::max()};
  ByteWriter w;
  for (const auto v : cases) w.PutVarint(v);
  ByteReader r(w.bytes());
  for (const auto v : cases) EXPECT_EQ(r.GetVarint(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, SignedVarintRoundTrip) {
  const std::vector<std::int64_t> cases = {
      0, 1, -1, 63, -64, 64, -65,
      std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  ByteWriter w;
  for (const auto v : cases) w.PutSVarint(v);
  ByteReader r(w.bytes());
  for (const auto v : cases) EXPECT_EQ(r.GetSVarint(), v);
}

TEST(BytesTest, SmallMagnitudesEncodeShort) {
  ByteWriter w;
  w.PutSVarint(-3);
  EXPECT_EQ(w.size(), 1u);
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("feature_a");
  w.PutString("");
  w.PutString(std::string(1000, 'x'));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.GetString(), "feature_a");
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetString(), std::string(1000, 'x'));
}

TEST(BytesTest, ReadPastEndThrows) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.bytes());
  (void)r.GetU8();
  EXPECT_THROW((void)r.GetU32(), ByteStreamError);
}

TEST(BytesTest, MalformedVarintThrows) {
  // 11 continuation bytes: longer than any valid 64-bit varint.
  std::vector<std::byte> bad(11, std::byte{0x80});
  ByteReader r(bad);
  EXPECT_THROW((void)r.GetVarint(), ByteStreamError);
}

TEST(BytesTest, ZigZagMapping) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (std::int64_t v : {-1000000, -1, 0, 1, 999999}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

// ----------------------------------------------------------------- rng --

TEST(RngTest, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformInvalidRangeThrows) {
  Rng rng(1);
  EXPECT_THROW((void)rng.Uniform(3, 2), std::invalid_argument);
}

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1'000'000), b.Uniform(0, 1'000'000));
  }
}

TEST(RngTest, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(7);
  const std::int64_t n = 10'000;
  std::int64_t low_rank = 0;
  const int draws = 20'000;
  for (int i = 0; i < draws; ++i) {
    const auto v = rng.Zipf(n, 1.1);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    if (v < n / 100) ++low_rank;
  }
  // Zipf(1.1): the top 1% of ranks should carry far more than 1% of mass.
  EXPECT_GT(low_rank, draws / 4);
}

TEST(RngTest, ZipfInvalidArgsThrow) {
  Rng rng(1);
  EXPECT_THROW((void)rng.Zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.Zipf(10, 0.0), std::invalid_argument);
}

TEST(RngTest, SessionSizeMeanMatchesTarget) {
  Rng rng(123);
  double total = 0;
  const int n = 50'000;
  std::int64_t max_size = 0;
  for (int i = 0; i < n; ++i) {
    const auto s = SampleSessionSize(rng, 16.5);
    ASSERT_GE(s, 1);
    total += static_cast<double>(s);
    max_size = std::max(max_size, s);
  }
  const double mean = total / n;
  // Paper: mean 16.5 samples/session with a tail beyond 1000.
  EXPECT_NEAR(mean, 16.5, 3.0);
  EXPECT_GT(max_size, 500);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// ----------------------------------------------------------- histogram --

TEST(HistogramTest, BucketsArePowerOfTwoRanges) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(1000);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].lo, 1);
  EXPECT_EQ(buckets[0].hi, 1);
  EXPECT_EQ(buckets[0].count, 1);
  EXPECT_EQ(buckets[1].lo, 2);
  EXPECT_EQ(buckets[1].hi, 3);
  EXPECT_EQ(buckets[1].count, 2);
  EXPECT_EQ(buckets[2].lo, 512);
  EXPECT_EQ(buckets[2].hi, 1023);
}

TEST(HistogramTest, MeanAndMax) {
  Histogram h;
  h.Add(10, 3);
  h.Add(20);
  EXPECT_DOUBLE_EQ(h.mean(), (30.0 + 20.0) / 4.0);
  EXPECT_EQ(h.max(), 20);
  EXPECT_EQ(h.total_count(), 4);
}

TEST(HistogramTest, RejectsNonPositiveValues) {
  Histogram h;
  EXPECT_THROW(h.Add(0), std::invalid_argument);
  EXPECT_THROW(h.Add(-5), std::invalid_argument);
}

TEST(HistogramTest, PercentileMonotonic) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(i);
  const double p50 = h.Percentile(0.5);
  const double p90 = h.Percentile(0.9);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p50, 100);  // rough sanity given log buckets
}

TEST(HistogramTest, PercentileEmptyHistogramIsZero) {
  const Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);
}

TEST(HistogramTest, PercentileSingleObservation) {
  Histogram h;
  h.Add(5);  // bucket [4, 7]
  // Both extremes clamp to the exactly-tracked min/max, never the
  // bucket bounds 4 and 7.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 5.0);
  // Any quantile collapses to the single observation.
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 5.0);
}

TEST(HistogramTest, PercentileQueriesAreClampedToUnitRange) {
  Histogram h;
  h.Add(100, 10);
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), h.Percentile(1.0));
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
}

TEST(HistogramTest, PercentileInterpolatesAcrossBuckets) {
  Histogram h;
  h.Add(2, 50);    // bucket [2, 3]
  h.Add(100, 50);  // bucket [64, 127]
  // Exactly half the mass sits in the low bucket: q=0.5 must resolve
  // inside it, and anything above must land in the high bucket.
  EXPECT_LE(h.Percentile(0.5), 3.0);
  EXPECT_GE(h.Percentile(0.51), 64.0);
  // Within-bucket interpolation is monotone in q.
  EXPECT_LT(h.Percentile(0.6), h.Percentile(0.9));
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
}

TEST(HistogramTest, PercentileNeverExceedsObservedMax) {
  Histogram h;
  h.Add(1'000'000);  // bucket [2^19, 2^20-1]: hi > the observation
  h.Add(3, 5);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_LE(h.Percentile(q), static_cast<double>(h.max()));
  }
}

TEST(HistogramTest, MinIsExactAcrossBucketBoundaries) {
  Histogram h;
  EXPECT_EQ(h.min(), 0);  // empty sentinel
  h.Add(100);
  EXPECT_EQ(h.min(), 100);
  h.Add(5);  // lower bucket
  EXPECT_EQ(h.min(), 5);
  h.Add(7);  // same bucket [4,7], larger value: min unchanged
  EXPECT_EQ(h.min(), 5);
  h.Add(1000);
  EXPECT_EQ(h.min(), 5);
  // q=0 resolves to the exact min, not the bucket floor 4.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 5.0);
}

TEST(HistogramTest, MergeEqualsObservingEverythingInOne) {
  Histogram a;
  a.Add(3, 4);
  a.Add(900);
  Histogram b;
  b.Add(17, 2);
  b.Add(2);

  Histogram merged = a;
  merged.Merge(b);

  Histogram oracle;
  oracle.Add(3, 4);
  oracle.Add(900);
  oracle.Add(17, 2);
  oracle.Add(2);

  EXPECT_EQ(merged.total_count(), oracle.total_count());
  EXPECT_DOUBLE_EQ(merged.mean(), oracle.mean());
  EXPECT_EQ(merged.min(), oracle.min());
  EXPECT_EQ(merged.max(), oracle.max());
  const auto mb = merged.buckets();
  const auto ob = oracle.buckets();
  ASSERT_EQ(mb.size(), ob.size());
  for (std::size_t i = 0; i < mb.size(); ++i) {
    EXPECT_EQ(mb[i].lo, ob[i].lo);
    EXPECT_EQ(mb[i].count, ob[i].count);
  }
}

TEST(HistogramTest, MergeIsAssociativeAndCommutativeAndEmptySafe) {
  Histogram a, b, c;
  a.Add(1, 3);
  b.Add(64, 2);
  c.Add(7);

  const auto summary = [](const Histogram& h) {
    return std::tuple(h.total_count(), h.mean(), h.min(), h.max(),
                      h.Percentile(0.5), h.Percentile(0.99));
  };

  Histogram ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  Histogram bc = b;  // a + (b + c)
  bc.Merge(c);
  Histogram a_bc = a;
  a_bc.Merge(bc);
  EXPECT_EQ(summary(ab_c), summary(a_bc));

  Histogram ba = b;  // commutes
  ba.Merge(a);
  Histogram ab = a;
  ab.Merge(b);
  EXPECT_EQ(summary(ab), summary(ba));

  // Merging an empty histogram in either direction is the identity —
  // in particular it must not drag min to the empty sentinel 0.
  Histogram empty;
  Histogram a_plus_empty = a;
  a_plus_empty.Merge(empty);
  EXPECT_EQ(summary(a_plus_empty), summary(a));
  Histogram empty_plus_a = empty;
  empty_plus_a.Merge(a);
  EXPECT_EQ(summary(empty_plus_a), summary(a));
  EXPECT_EQ(empty_plus_a.min(), 1);
}

TEST(HistogramTest, AsciiRendersNonEmpty) {
  Histogram h;
  h.Add(5, 10);
  h.Add(100, 2);
  const auto art = h.ToAscii();
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(RngTest, ZipfLowerExponentIsLessSkewed) {
  Rng rng(11);
  auto top_share = [&](double s) {
    Rng local(11);
    int low = 0;
    const int draws = 10'000;
    for (int i = 0; i < draws; ++i) {
      if (local.Zipf(10'000, s) < 100) ++low;
    }
    return static_cast<double>(low) / draws;
  };
  EXPECT_GT(top_share(1.5), top_share(1.01));
}

TEST(RngTest, PoissonMeanRoughlyMatches) {
  Rng rng(13);
  double total = 0;
  for (int i = 0; i < 20'000; ++i) {
    total += static_cast<double>(rng.Poisson(7.5));
  }
  EXPECT_NEAR(total / 20'000, 7.5, 0.2);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-3.0), 0);
}

TEST(RngTest, SessionSizeScalesWithMean) {
  Rng rng(17);
  auto mean_of = [](double target) {
    Rng local(17);
    double t = 0;
    for (int i = 0; i < 20'000; ++i) {
      t += static_cast<double>(SampleSessionSize(local, target));
    }
    return t / 20'000;
  };
  EXPECT_NEAR(mean_of(6.0), 6.0, 1.5);
  EXPECT_NEAR(mean_of(16.5), 16.5, 3.0);
  EXPECT_EQ(SampleSessionSize(rng, 1.0), 1);
}

class HistogramSweep : public ::testing::TestWithParam<int> {};

TEST_P(HistogramSweep, CountsArePreservedAcrossBuckets) {
  Rng rng(GetParam());
  Histogram h;
  std::int64_t expected = 0;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.Uniform(1, 1 << 20);
    h.Add(v);
    ++expected;
  }
  std::int64_t bucketed = 0;
  for (const auto& b : h.buckets()) {
    EXPECT_LE(b.lo, b.hi);
    bucketed += b.count;
  }
  EXPECT_EQ(bucketed, expected);
  EXPECT_EQ(h.total_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramSweep, ::testing::Range(1, 6));

// --------------------------------------------------------------- stats --

TEST(StatsTest, RunningStatsMatchesClosedForm) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), 4);
}

TEST(StatsTest, PercentileExact) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

TEST(StatsTest, MeanHandlesEmpty) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

}  // namespace
}  // namespace recd::common
