// Tiered embedding store tests (src/embstore/ + its integrations):
// the compressed/checksummed cold tier (round trips, typed rejection of
// corrupt or truncated segments), the LFU hot tier (admission,
// eviction with dirty write-back, stats), and the headline
// tier-placement determinism rule — forward/backward/SGD bitwise
// identical to the dense backend for hot capacities {0, tiny,
// unbounded} x rank counts {1, 2, 4} x baseline/RecD, through
// ReferenceDlrm, the distributed trainer, checkpoint restore, and the
// serve worker pool. The concurrency suite races many readers against
// hot-tier eviction under TSan.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/checksum_file.h"
#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "embstore/cold_store.h"
#include "embstore/tiered_store.h"
#include "etl/etl.h"
#include "nn/embedding.h"
#include "reader/reader.h"
#include "serve/server_runner.h"
#include "storage/table.h"
#include "tensor/jagged.h"
#include "train/checkpoint.h"
#include "train/distributed.h"
#include "train/model.h"
#include "train/reference.h"

namespace recd::embstore {
namespace {

using nn::DenseMatrix;
using tensor::JaggedTensor;

std::string TempDir(const std::string& tag) {
  const auto dir = ::testing::TempDir() + "/recd_embstore_" + tag + "_" +
                   std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  return dir;
}

DenseMatrix RandomMatrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  common::Rng rng(seed);
  return DenseMatrix::Xavier(rows, cols, rng);
}

::testing::AssertionResult BitwiseEq(const DenseMatrix& a,
                                     const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (std::memcmp(a.data().data(), b.data().data(), a.byte_size()) != 0) {
    return ::testing::AssertionFailure() << "bytes differ";
  }
  return ::testing::AssertionSuccess();
}

// ------------------------------------------------------------ cold store --

TEST(EmbstoreColdStoreTest, RoundTripsBitwiseInMemoryAndFileBacked) {
  const auto w = RandomMatrix(37, 5, 1);  // short tail segment
  for (const auto& dir : {std::string(), TempDir("roundtrip")}) {
    ColdStore cold(w, /*rows_per_segment=*/8, compress::CodecKind::kLz77,
                   dir);
    EXPECT_EQ(cold.rows(), 37u);
    EXPECT_EQ(cold.num_segments(), 5u);
    EXPECT_EQ(cold.SegmentRows(4), 5u);  // 37 = 4*8 + 5
    EXPECT_EQ(cold.file_backed(), !dir.empty());
    EXPECT_TRUE(BitwiseEq(cold.Materialize(), w));
    EXPECT_GT(cold.compressed_bytes(), 0u);
  }
}

TEST(EmbstoreColdStoreTest, ReadCountersAccumulateCompressedAndRawBytes) {
  const auto w = RandomMatrix(16, 4, 2);
  ColdStore cold(w, 4, compress::CodecKind::kLz77, "");
  ColdStore::ReadCounters rc;
  for (std::size_t s = 0; s < cold.num_segments(); ++s) {
    (void)cold.ReadSegment(s, &rc);
  }
  EXPECT_EQ(rc.segments, 4u);
  EXPECT_GT(rc.compressed_bytes, 0u);
  EXPECT_EQ(rc.raw_bytes, 16u * 4u * sizeof(float));
}

TEST(EmbstoreColdStoreTest, SingleRowSegmentsRoundTrip) {
  const auto w = RandomMatrix(6, 3, 3);
  ColdStore cold(w, /*rows_per_segment=*/1, compress::CodecKind::kIdentity,
                 "");
  EXPECT_EQ(cold.num_segments(), 6u);
  for (std::size_t s = 0; s < 6; ++s) {
    const auto seg = cold.ReadSegment(s, nullptr);
    ASSERT_EQ(seg.size(), 3u);
    EXPECT_EQ(0, std::memcmp(seg.data(), w.row(s).data(),
                             3 * sizeof(float)));
  }
}

TEST(EmbstoreColdStoreTest, EmptyTableHasNoSegments) {
  ColdStore cold(DenseMatrix(), 8, compress::CodecKind::kLz77, "");
  EXPECT_EQ(cold.rows(), 0u);
  EXPECT_EQ(cold.num_segments(), 0u);
  EXPECT_EQ(cold.compressed_bytes(), 0u);
  EXPECT_TRUE(BitwiseEq(cold.Materialize(), DenseMatrix()));
}

TEST(EmbstoreColdStoreTest, WriteSegmentReplacesRowsExactly) {
  auto w = RandomMatrix(10, 4, 4);
  ColdStore cold(w, 4, compress::CodecKind::kLz77, "");
  std::vector<float> fresh(4 * 4, 2.5f);
  cold.WriteSegment(1, fresh);
  for (std::size_t r = 4; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) w.at(r, c) = 2.5f;
  }
  EXPECT_TRUE(BitwiseEq(cold.Materialize(), w));
  EXPECT_THROW(cold.WriteSegment(0, std::vector<float>(3)),
               std::invalid_argument);
}

TEST(EmbstoreColdStoreTest, ZeroRowsPerSegmentThrows) {
  EXPECT_THROW(ColdStore(RandomMatrix(4, 2, 5), 0,
                         compress::CodecKind::kLz77, ""),
               std::invalid_argument);
}

TEST(EmbstoreColdStoreTest, CorruptFileSegmentThrowsColdStoreError) {
  const auto w = RandomMatrix(12, 4, 6);
  ColdStore cold(w, 4, compress::CodecKind::kLz77, TempDir("corrupt"));
  common::CorruptChecksummedFile(cold.SegmentPath(1), /*payload_offset=*/3);
  EXPECT_NO_THROW((void)cold.ReadSegment(0, nullptr));
  EXPECT_THROW((void)cold.ReadSegment(1, nullptr), ColdStoreError);
}

TEST(EmbstoreColdStoreTest, TruncatedFileSegmentThrowsColdStoreError) {
  const auto w = RandomMatrix(12, 4, 7);
  ColdStore cold(w, 4, compress::CodecKind::kLz77, TempDir("truncate"));
  const auto path = cold.SegmentPath(2);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW((void)cold.ReadSegment(2, nullptr), ColdStoreError);
  std::filesystem::resize_file(path, 0);
  EXPECT_THROW((void)cold.ReadSegment(2, nullptr), ColdStoreError);
}

TEST(EmbstoreColdStoreTest, MissingFileSegmentThrowsColdStoreError) {
  const auto w = RandomMatrix(8, 2, 8);
  ColdStore cold(w, 4, compress::CodecKind::kLz77, TempDir("missing"));
  std::filesystem::remove(cold.SegmentPath(0));
  EXPECT_THROW((void)cold.ReadSegment(0, nullptr), ColdStoreError);
}

// ---------------------------------------------------------- tiered store --

TierConfig Tier(std::size_t hot_capacity_rows,
                std::size_t rows_per_segment = 4,
                std::string cold_dir = {}) {
  TierConfig c;
  c.enabled = true;
  c.hot_capacity_rows = hot_capacity_rows;
  c.rows_per_segment = rows_per_segment;
  c.cold_dir = std::move(cold_dir);
  return c;
}

TEST(EmbstoreTieredStoreTest, GatherIsBitwiseForEveryCapacity) {
  const auto w = RandomMatrix(20, 6, 10);
  for (const std::size_t cap : {0u, 3u, 1000u}) {
    TieredRowStore store(w, Tier(cap));
    const std::vector<std::size_t> rows = {0, 7, 7, 19, 2, 0, 13};
    std::vector<float> out(rows.size() * 6);
    store.Gather(rows, {}, out.data());
    // Repeat: hits may now come from the hot tier — same bits required.
    std::vector<float> again(rows.size() * 6);
    store.Gather(rows, {}, again.data());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(0, std::memcmp(out.data() + i * 6, w.row(rows[i]).data(),
                               6 * sizeof(float)))
          << "cap " << cap << " row " << rows[i];
    }
    EXPECT_EQ(0, std::memcmp(out.data(), again.data(),
                             out.size() * sizeof(float)));
    EXPECT_TRUE(BitwiseEq(store.Materialize(), w));
  }
}

TEST(EmbstoreTieredStoreTest, CapacityZeroKeepsEverythingCold) {
  const auto w = RandomMatrix(8, 4, 11);
  TieredRowStore store(w, Tier(0));
  const std::vector<std::size_t> rows = {1, 1, 5};
  std::vector<float> out(rows.size() * 4);
  store.Gather(rows, {}, out.data());
  store.Gather(rows, {}, out.data());
  const auto s = store.stats();
  EXPECT_EQ(s.capacity_rows, 0u);
  EXPECT_EQ(s.hot_hits, 0u);
  EXPECT_EQ(s.cold_fetches, 6u);
  EXPECT_EQ(s.resident_rows, 0u);
  EXPECT_EQ(s.admissions, 0u);
  EXPECT_GT(s.bytes_from_cold, 0u);
}

TEST(EmbstoreTieredStoreTest, HotTierAbsorbsRepeatedFetches) {
  const auto w = RandomMatrix(64, 4, 12);
  TieredRowStore store(w, Tier(8, 8));
  const std::vector<std::size_t> hot_rows = {3, 9, 17};
  std::vector<float> out(hot_rows.size() * 4);
  for (int pass = 0; pass < 10; ++pass) {
    store.Gather(hot_rows, {}, out.data());
  }
  const auto s = store.stats();
  EXPECT_EQ(s.row_fetches, 30u);
  EXPECT_EQ(s.cold_fetches, 3u);  // first pass only
  EXPECT_EQ(s.hot_hits, 27u);
  EXPECT_GT(s.hit_rate(), 0.89);
  EXPECT_EQ(s.resident_rows, 3u);
}

TEST(EmbstoreTieredStoreTest, FrequencyAdmissionEvictsColdestAndWritesBack) {
  const auto w = RandomMatrix(16, 4, 13);
  TieredRowStore store(w, Tier(1, 4));
  // Row 2 becomes resident, then dirty.
  std::vector<float> out(4);
  const std::size_t r2 = 2;
  store.Gather(std::span<const std::size_t>(&r2, 1), {}, out.data());
  const std::vector<float> updated = {9.f, 8.f, 7.f, 6.f};
  store.Update(std::span<const std::size_t>(&r2, 1), updated.data());
  // Row 11 out-accumulates row 2's frequency -> displaces it; the dirty
  // row 2 must be recompressed into its cold segment first.
  const std::size_t r11 = 11;
  const std::vector<std::uint64_t> heavy = {100};
  store.Gather(std::span<const std::size_t>(&r11, 1), heavy, out.data());
  const auto s = store.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.writebacks, 1u);
  EXPECT_EQ(s.resident_rows, 1u);
  auto expected = w;
  for (std::size_t c = 0; c < 4; ++c) expected.at(2, c) = updated[c];
  EXPECT_TRUE(BitwiseEq(store.Materialize(), expected));
  // One-hit scan rows never displace the heavy resident (ties lose).
  const std::size_t r5 = 5;
  store.Gather(std::span<const std::size_t>(&r5, 1), {}, out.data());
  EXPECT_EQ(store.stats().evictions, 1u);
}

TEST(EmbstoreTieredStoreTest, UpdatesLandInBothTiers) {
  const auto w = RandomMatrix(12, 3, 14);
  TieredRowStore store(w, Tier(2, 4));
  std::vector<float> scratch(3);
  const std::size_t hot_row = 1;
  store.Gather(std::span<const std::size_t>(&hot_row, 1), {},
               scratch.data());  // row 1 resident
  const std::vector<std::size_t> rows = {1, 10};  // hot + cold update
  const std::vector<float> src = {1, 2, 3, 4, 5, 6};
  store.Update(rows, src.data());
  auto expected = w;
  for (std::size_t c = 0; c < 3; ++c) {
    expected.at(1, c) = src[c];
    expected.at(10, c) = src[3 + c];
  }
  EXPECT_TRUE(BitwiseEq(store.Materialize(), expected));
  // The fresh values must also come back through Gather, both tiers.
  std::vector<float> out(rows.size() * 3);
  store.Gather(rows, {}, out.data());
  EXPECT_EQ(0, std::memcmp(out.data(), src.data(), src.size() *
                                                       sizeof(float)));
}

TEST(EmbstoreTieredStoreTest, LoadResetsHotTierAndFrequencies) {
  const auto w = RandomMatrix(10, 2, 15);
  TieredRowStore store(w, Tier(4, 4));
  std::vector<float> out(2);
  const std::size_t r = 3;
  store.Gather(std::span<const std::size_t>(&r, 1), {}, out.data());
  ASSERT_EQ(store.resident_rows(), 1u);
  const auto w2 = RandomMatrix(10, 2, 16);
  store.Load(w2);
  EXPECT_EQ(store.resident_rows(), 0u);
  EXPECT_TRUE(BitwiseEq(store.Materialize(), w2));
}

TEST(EmbstoreTieredStoreTest, OutOfRangeRowThrows) {
  TieredRowStore store(RandomMatrix(4, 2, 17), Tier(2));
  const std::size_t bad = 4;
  std::vector<float> out(2);
  EXPECT_THROW(
      store.Gather(std::span<const std::size_t>(&bad, 1), {}, out.data()),
      std::out_of_range);
  EXPECT_THROW(
      store.Update(std::span<const std::size_t>(&bad, 1), out.data()),
      std::out_of_range);
}

// ------------------------------------------------------- embedding table --

// The determinism matrix at the table level: dense vs tiered across
// capacities and kernel backends, forward and backward, memcmp-equal.
TEST(EmbstoreEmbeddingTableTest, ForwardBackwardBitwiseMatchesDense) {
  constexpr std::size_t kRows = 48;
  constexpr std::size_t kDim = 9;  // odd: exercises SIMD tails
  const auto batch = JaggedTensor::FromRows(
      {{1, 2, 3}, {}, {2, 2, 47}, {13}, {1, 40, 41, 42}, {3, 3, 3}});
  const auto unique = JaggedTensor::FromRows({{1, 2}, {2, 47}, {13, 3}});
  const std::vector<std::int64_t> inverse = {0, 1, 1, 2, 0, 2};

  for (const auto backend : {kernels::KernelBackend::kScalar,
                             kernels::KernelBackend::kVectorized}) {
    for (const std::size_t cap : {0u, 4u, 1000u}) {
      common::Rng rng_a(99);
      common::Rng rng_b(99);
      nn::EmbeddingTable dense(kRows, kDim, rng_a);
      nn::EmbeddingTable tiered(kRows, kDim, rng_b);
      dense.set_backend(backend);
      tiered.set_backend(backend);
      tiered.UseTieredStore(Tier(cap, 8));
      ASSERT_TRUE(tiered.tiered());
      ASSERT_FALSE(dense.tiered());

      const auto pd = dense.PooledForward(batch, nn::PoolingKind::kSum);
      const auto pt = tiered.PooledForward(batch, nn::PoolingKind::kSum);
      EXPECT_TRUE(BitwiseEq(pd, pt)) << "pooled cap=" << cap;

      const auto fd = dense.FusedPooledForward(unique, inverse);
      const auto ft = tiered.FusedPooledForward(unique, inverse);
      EXPECT_TRUE(BitwiseEq(fd, ft)) << "fused cap=" << cap;

      DenseMatrix grad(batch.num_rows(), kDim);
      for (std::size_t i = 0; i < grad.data().size(); ++i) {
        grad.data()[i] = 0.01f * static_cast<float>(i % 17) - 0.05f;
      }
      for (int step = 0; step < 3; ++step) {
        dense.ApplyPooledGradient(batch, grad, nn::PoolingKind::kSum,
                                  0.05f);
        tiered.ApplyPooledGradient(batch, grad, nn::PoolingKind::kSum,
                                   0.05f);
      }
      EXPECT_TRUE(BitwiseEq(dense.weights(), tiered.weights()))
          << "post-SGD cap=" << cap;

      const auto sd = dense.SequenceForward(batch);
      const auto st = tiered.SequenceForward(batch);
      EXPECT_TRUE(BitwiseEq(sd, st)) << "sequence cap=" << cap;

      const auto tier = tiered.tier_stats();
      EXPECT_GT(tier.row_fetches, 0u);
      EXPECT_EQ(dense.tier_stats().row_fetches, 0u);
    }
  }
}

TEST(EmbstoreEmbeddingTableTest, EmptyBatchesAndRowsPoolToZero) {
  common::Rng rng(7);
  nn::EmbeddingTable table(16, 4, rng);
  table.UseTieredStore(Tier(2, 4));
  const auto all_empty = JaggedTensor::FromRows({{}, {}, {}});
  const auto pooled = table.PooledForward(all_empty, nn::PoolingKind::kSum);
  ASSERT_EQ(pooled.rows(), 3u);
  for (const float v : pooled.data()) EXPECT_EQ(v, 0.0f);
  const auto none = table.PooledForward(JaggedTensor::FromRows({}),
                                        nn::PoolingKind::kSum);
  EXPECT_EQ(none.rows(), 0u);
}

TEST(EmbstoreEmbeddingTableTest, LoadWeightsRebuildsTheColdTier) {
  common::Rng rng(8);
  nn::EmbeddingTable table(12, 4, rng);
  table.UseTieredStore(Tier(3, 4));
  const auto fresh = RandomMatrix(12, 4, 20);
  table.LoadWeights(fresh);
  EXPECT_TRUE(BitwiseEq(table.weights(), fresh));
  EXPECT_THROW(table.LoadWeights(RandomMatrix(11, 4, 21)),
               std::invalid_argument);
}

TEST(EmbstoreEmbeddingTableTest, UseTieredStoreTwiceThrows) {
  common::Rng rng(9);
  nn::EmbeddingTable table(8, 2, rng);
  table.UseTieredStore(Tier(2));
  EXPECT_THROW(table.UseTieredStore(Tier(2)), std::logic_error);
}

// ------------------------------------------------- trainer determinism --

struct Fixture {
  datagen::DatasetSpec spec;
  train::ModelConfig model;
  storage::BlobStore store;
  storage::Table table;
  reader::PreprocessedBatch recd_batch;
  reader::PreprocessedBatch base_batch;
};

Fixture MakeFixture(std::size_t batch_size = 48) {
  Fixture fx;
  fx.spec = datagen::RmDataset(datagen::RmKind::kRm2, /*scale=*/0.02);
  fx.spec.concurrent_sessions = 8;  // heavy in-batch duplication
  fx.model = train::RmModel(datagen::RmKind::kRm2, fx.spec);
  fx.model.emb_hash_size = 600;  // small tables, several segments each
  fx.model.emb_dim = 12;
  fx.model.bottom_mlp_hidden = {16};
  fx.model.top_mlp_hidden = {32, 16};
  datagen::TrafficGenerator gen(fx.spec);
  const auto traffic = gen.Generate(batch_size * 2);
  auto samples = etl::JoinLogs(traffic.features, traffic.events);
  etl::ClusterBySession(samples);
  storage::StorageSchema schema;
  schema.num_dense = fx.spec.num_dense;
  for (const auto& f : fx.spec.sparse) schema.sparse_names.push_back(f.name);
  auto landed =
      storage::LandTable(fx.store, "t", schema, {std::move(samples)});
  fx.table = std::move(landed.table);

  reader::Reader recd(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, true),
                      reader::ReaderOptions{.use_ikjt = true});
  reader::Reader base(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, false),
                      reader::ReaderOptions{.use_ikjt = false});
  fx.recd_batch = *recd.NextBatch();
  fx.base_batch = *base.NextBatch();
  return fx;
}

constexpr float kLr = 0.05f;

TEST(EmbstoreTrainerDeterminismTest, ReferenceDlrmBitwiseAcrossCapacities) {
  const auto fx = MakeFixture();
  train::ReferenceDlrm dense_ref(fx.model, /*seed=*/42);
  std::vector<float> dense_losses;
  for (int k = 0; k < 2; ++k) {
    dense_losses.push_back(dense_ref.TrainStep(fx.base_batch, kLr));
  }
  const auto fwd_base = dense_ref.Forward(fx.base_batch, /*recd=*/false);
  const auto fwd_recd = dense_ref.Forward(fx.recd_batch, /*recd=*/true);

  // Hot capacities {0 = always cold, tiny = constant eviction churn,
  // unbounded = everything ends up hot}: same bits in all three worlds.
  for (const std::size_t cap : {0u, 32u, 1u << 20}) {
    auto model = fx.model;
    model.tiering = Tier(cap, 64);
    train::ReferenceDlrm tiered(model, /*seed=*/42);
    for (int k = 0; k < 2; ++k) {
      EXPECT_EQ(tiered.TrainStep(fx.base_batch, kLr),
                dense_losses[static_cast<std::size_t>(k)])
          << "cap " << cap << " step " << k;
    }
    EXPECT_TRUE(
        BitwiseEq(tiered.Forward(fx.base_batch, false), fwd_base))
        << "cap " << cap;
    EXPECT_TRUE(BitwiseEq(tiered.Forward(fx.recd_batch, true), fwd_recd))
        << "cap " << cap;
    const auto order = ModelTableOrder(fx.model);
    for (const auto& f : order) {
      EXPECT_TRUE(
          BitwiseEq(tiered.table(f).weights(), dense_ref.table(f).weights()))
          << "cap " << cap << " table " << f;
    }
    const auto tier = tiered.TierStats();
    EXPECT_GT(tier.row_fetches, 0u);
    if (cap == 0) {
      EXPECT_EQ(tier.hot_hits, 0u);
    }
  }
}

TEST(EmbstoreTrainerDeterminismTest,
     DistributedBitwiseAcrossCapacitiesRanksAndModes) {
  const auto fx = MakeFixture();
  train::ReferenceDlrm ref(fx.model, /*seed=*/42);
  std::vector<float> ref_losses;
  for (int k = 0; k < 2; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  for (const std::size_t cap : {0u, 32u, 1u << 20}) {
    auto model = fx.model;
    model.tiering = Tier(cap, 64);
    for (const std::size_t n : {1u, 2u, 4u}) {
      for (const bool recd : {false, true}) {
        train::DistributedConfig config;
        config.num_ranks = n;
        config.recd = recd;
        config.lr = kLr;
        config.seed = 42;
        train::DistributedTrainer dist(model, config);
        const auto& batch = recd ? fx.recd_batch : fx.base_batch;
        const std::string what = "cap " + std::to_string(cap) + " " +
                                 (recd ? "recd" : "base") + "/" +
                                 std::to_string(n) + " ranks";
        for (int k = 0; k < 2; ++k) {
          EXPECT_EQ(dist.Step(batch),
                    ref_losses[static_cast<std::size_t>(k)])
              << what << ": loss differs at step " << k;
        }
        const auto order = ModelTableOrder(fx.model);
        for (std::size_t t = 0; t < order.size(); ++t) {
          EXPECT_TRUE(BitwiseEq(dist.table(t).weights(),
                                ref.table(order[t]).weights()))
              << what << ": table " << order[t];
        }
        EXPECT_GT(dist.TierStatsTotal().row_fetches, 0u) << what;
      }
    }
  }
}

TEST(EmbstoreTrainerDeterminismTest, CheckpointRoundTripsAcrossBackends) {
  // A checkpoint taken from a tiered trainer restores bitwise into a
  // dense trainer and vice versa — tier placement is invisible to the
  // checkpoint surface.
  const auto fx = MakeFixture();
  auto tiered_model = fx.model;
  tiered_model.tiering = Tier(32, 64);

  train::DistributedConfig config;
  config.num_ranks = 2;
  config.lr = kLr;
  config.seed = 42;
  train::DistributedTrainer tiered(tiered_model, config);
  (void)tiered.Step(fx.base_batch);
  const auto ckpt = train::CaptureCheckpoint(tiered, /*next_step=*/1);

  train::DistributedTrainer dense(fx.model, config);
  train::DistributedTrainer tiered2(tiered_model, config);
  dense.LoadState(ckpt);
  tiered2.LoadState(ckpt);
  const float a = dense.Step(fx.base_batch);
  const float b = tiered2.Step(fx.base_batch);
  const float c = tiered.Step(fx.base_batch);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  for (std::size_t t = 0; t < fx.model.num_tables(); ++t) {
    EXPECT_TRUE(BitwiseEq(dense.table(t).weights(),
                          tiered2.table(t).weights()))
        << "table " << t;
  }
}

TEST(EmbstoreTrainerDeterminismTest, FileBackedColdStoreMatchesInMemory) {
  const auto fx = MakeFixture();
  auto mem_model = fx.model;
  mem_model.tiering = Tier(32, 64);
  auto file_model = fx.model;
  file_model.tiering = Tier(32, 64);
  file_model.tiering.cold_dir = TempDir("trainer");

  train::ReferenceDlrm mem(mem_model, /*seed=*/42);
  train::ReferenceDlrm file(file_model, /*seed=*/42);
  for (int k = 0; k < 2; ++k) {
    EXPECT_EQ(file.TrainStep(fx.base_batch, kLr),
              mem.TrainStep(fx.base_batch, kLr));
  }
  for (const auto& f : ModelTableOrder(fx.model)) {
    EXPECT_TRUE(BitwiseEq(file.table(f).weights(), mem.table(f).weights()));
  }
}

// --------------------------------------------------- serve determinism --

TEST(EmbstoreServeDeterminismTest, TieredReplicasScoreBitwiseIdentically) {
  auto spec = datagen::RmDataset(datagen::RmKind::kRm2, 0.02);
  spec.concurrent_sessions = 8;
  spec.mean_session_size = 24;
  auto model = train::RmModel(datagen::RmKind::kRm2, spec);
  model.emb_hash_size = 600;
  model.emb_dim = 12;
  model.bottom_mlp_hidden = {16};
  model.top_mlp_hidden = {32, 16};

  serve::TraceSpec trace_spec;
  trace_spec.dataset = spec;
  trace_spec.query.num_requests = 32;
  trace_spec.query.candidates = 4;
  trace_spec.query.qps = 50'000;

  // Tiering is a ModelSpec concern: same trace, same architecture, one
  // zoo member dense and one serving from the tiered store.
  serve::ModelSpec dense_model;
  dense_model.config = model;
  serve::ServerRunner dense_runner(
      trace_spec, serve::FleetSpec::Single(dense_model, /*num_workers=*/2));
  serve::ModelSpec tiered_spec;
  tiered_spec.config = model;
  tiered_spec.config.tiering = Tier(64, 64);
  serve::ServerRunner tiered_runner(
      trace_spec, serve::FleetSpec::Single(tiered_spec, /*num_workers=*/2));

  for (const bool recd : {false, true}) {
    const serve::RunPolicy policy =
        recd ? serve::RunPolicy::Recd() : serve::RunPolicy::Baseline();
    const auto dense = dense_runner.Run(policy);
    const auto tiered = tiered_runner.Run(policy);
    ASSERT_EQ(dense.requests.size(), tiered.requests.size());
    for (std::size_t i = 0; i < dense.requests.size(); ++i) {
      ASSERT_EQ(dense.requests[i].request_id,
                tiered.requests[i].request_id);
      ASSERT_EQ(dense.requests[i].scores.size(),
                tiered.requests[i].scores.size());
      for (std::size_t k = 0; k < dense.requests[i].scores.size(); ++k) {
        EXPECT_EQ(dense.requests[i].scores[k],
                  tiered.requests[i].scores[k])
            << "recd=" << recd << " request " << i << " candidate " << k;
      }
    }
    EXPECT_EQ(dense.stats.tier.row_fetches, 0u);
    EXPECT_GT(tiered.stats.tier.row_fetches, 0u);
  }
}

// --------------------------------------------------------- concurrency --

TEST(EmbstoreConcurrencyTest, ManyReadersRaceEvictionWithoutTearing) {
  // Tiny hot tier + many threads fetching overlapping skewed row sets:
  // every fetched row must be bit-exact while admission/eviction churns
  // underneath (run under TSan by scripts/check.sh and ci.sh).
  const auto w = RandomMatrix(256, 8, 30);
  TieredRowStore store(w, Tier(/*hot_capacity_rows=*/8,
                               /*rows_per_segment=*/16));
  constexpr int kThreads = 4;
  constexpr int kPasses = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::size_t> rows;
      std::vector<std::uint64_t> weights;
      for (int i = 0; i < 24; ++i) {
        // Skewed, overlapping across threads; distinct tails. Weights
        // differ per row so hot rows genuinely displace cold residents
        // (uniform weights would tie and never evict — by design).
        rows.push_back(i % 3 == 0 ? 7 : (t * 31 + i * 11) % 256);
        weights.push_back(1 + (static_cast<std::uint64_t>(i) % 5) * 3);
      }
      std::vector<float> out(rows.size() * 8);
      for (int pass = 0; pass < kPasses; ++pass) {
        store.Gather(rows, weights, out.data());
        for (std::size_t i = 0; i < rows.size(); ++i) {
          if (std::memcmp(out.data() + i * 8, w.row(rows[i]).data(),
                          8 * sizeof(float)) != 0) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto s = store.stats();
  EXPECT_EQ(s.row_fetches,
            static_cast<std::uint64_t>(kThreads) * kPasses * 24);
  EXPECT_GT(s.evictions, 0u);
  EXPECT_TRUE(BitwiseEq(store.Materialize(), w));
}

TEST(EmbstoreConcurrencyTest, ConcurrentUpdatesSettleToLastWriterPerRow) {
  // Disjoint row ranges per thread: readers and writers interleave
  // freely, and each thread's final write must be the surviving bits.
  const auto w = RandomMatrix(64, 4, 31);
  TieredRowStore store(w, Tier(4, 8));
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::size_t lo = static_cast<std::size_t>(t) * 16;
      std::vector<std::size_t> rows(16);
      for (std::size_t i = 0; i < 16; ++i) rows[i] = lo + i;
      std::vector<float> buf(16 * 4);
      for (int pass = 0; pass < 20; ++pass) {
        store.Gather(rows, {}, buf.data());
        for (std::size_t i = 0; i < buf.size(); ++i) {
          buf[i] = static_cast<float>(t * 1000 + pass);
        }
        store.Update(rows, buf.data());
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto settled = store.Materialize();
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t r = 0; r < 16; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(settled.at(static_cast<std::size_t>(t) * 16 + r, c),
                  static_cast<float>(t * 1000 + 19));
      }
    }
  }
}

}  // namespace
}  // namespace recd::embstore
