// Tests for the executed hybrid-parallel trainer: the Barrier /
// CollectiveGroup primitives (order-deterministic all-reduce for any
// rank count), embedding shard views (out-of-shard rejection), the
// IKJT slice/rebase helpers, and the headline determinism contract —
// after K steps, rank counts {1, 2, 4} produce bitwise-identical
// weights and losses to single-rank ReferenceDlrm::TrainStep, baseline
// and RecD mode alike, while RecD ships strictly fewer sparse bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/barrier.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "etl/etl.h"
#include "nn/embedding_shard.h"
#include "reader/reader.h"
#include "storage/table.h"
#include "tensor/ikjt.h"
#include "tensor/jagged_ops.h"
#include "train/checkpoint.h"
#include "train/collective_group.h"
#include "train/distributed.h"
#include "train/fault.h"
#include "train/model.h"
#include "train/reference.h"

namespace recd::train {
namespace {

// ---------------------------------------------------------------- Barrier --

TEST(BarrierTest, ReleasesAllPartiesAcrossRounds) {
  common::Barrier barrier(4);
  std::atomic<int> before{0};
  std::atomic<int> after{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 50; ++round) {
        before.fetch_add(1);
        barrier.Arrive();
        after.fetch_add(1);
        barrier.Arrive();  // second barrier so rounds cannot overlap
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(before.load(), 200);
  EXPECT_EQ(after.load(), 200);
}

TEST(BarrierTest, ZeroPartiesThrows) {
  EXPECT_THROW(common::Barrier(0), std::invalid_argument);
}

TEST(BarrierTest, ArriveForTimesOutAndWithdrawsTheArrival) {
  common::Barrier barrier(2);
  // Alone at the barrier: the deadline passes and the arrival is
  // withdrawn, so the barrier's count stays consistent...
  EXPECT_FALSE(barrier.ArriveFor(std::chrono::milliseconds(20)));
  // ...and a later full round still needs both parties and completes.
  std::thread peer([&] { barrier.Arrive(); });
  EXPECT_TRUE(barrier.ArriveFor(std::chrono::seconds(10)));
  peer.join();
}

// -------------------------------------------------------- CollectiveGroup --

TEST(CollectiveGroupTest, AllToAllDeliversBySourceRank) {
  const std::size_t n = 3;
  CollectiveGroup group(n);
  std::vector<std::vector<std::vector<std::int64_t>>> got(n);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      std::vector<std::vector<std::int64_t>> send(n);
      for (std::size_t p = 0; p < n; ++p) {
        send[p] = {static_cast<std::int64_t>(100 * r + p)};
      }
      got[r] = group.AllToAll<std::int64_t>(r, std::move(send));
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t p = 0; p < n; ++p) {
      // Rank r's entry p is what p sent to r.
      ASSERT_EQ(got[r][p].size(), 1u);
      EXPECT_EQ(got[r][p][0], static_cast<std::int64_t>(100 * p + r));
    }
  }
}

TEST(CollectiveGroupTest, BytesCountOffRankPayloadOnly) {
  CollectiveGroup group(2);
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      std::vector<std::vector<float>> send(2);
      send[0] = {1.0f, 2.0f};       // 8 bytes
      send[1] = {1.0f, 2.0f, 3.0f}; // 12 bytes
      (void)group.AllToAll<float>(r, std::move(send));
    });
  }
  for (auto& t : threads) t.join();
  // Rank 0's off-rank payload went to rank 1 (12 bytes) and vice versa.
  EXPECT_EQ(group.bytes_sent(0), 12u);
  EXPECT_EQ(group.bytes_sent(1), 8u);
  group.ResetBytes();
  EXPECT_EQ(group.bytes_sent(0), 0u);
}

// The seed/state regression the satellite asks for: the all-reduce
// must produce the same bits for every rank count and for repeated
// runs, because it reduces labeled chunks in ascending chunk order
// from zeros — never in arrival order.
TEST(CollectiveGroupTest, AllReduceSumOrderDeterministicForAnyRankCount) {
  // Chunk values chosen so float addition order matters: summing these
  // in a different order changes the low bits.
  const std::size_t chunks = 4;
  const std::size_t width = 3;
  std::vector<std::vector<float>> data = {
      {1e8f, 1.0f, 0.25f},
      {-1.0f, 1e-8f, 3.0f},
      {-1e8f, 7.5f, -0.125f},
      {3.0f, -2.5f, 1e8f},
  };
  // The canonical result: zeros, then += chunk 0..3.
  std::vector<float> expected(width, 0.0f);
  for (const auto& chunk : data) {
    for (std::size_t i = 0; i < width; ++i) expected[i] += chunk[i];
  }

  for (const std::size_t n : {1u, 2u, 4u}) {
    CollectiveGroup group(n);
    std::vector<std::vector<float>> results(n);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < n; ++r) {
      threads.emplace_back([&, r] {
        // Rank r contributes its contiguous share of the chunks — and
        // pushes them in *reverse* order to prove arrival order is
        // irrelevant.
        std::vector<std::pair<std::size_t, std::vector<float>>> mine;
        const std::size_t per = chunks / n;
        for (std::size_t c = (r + 1) * per; c-- > r * per;) {
          mine.emplace_back(c, data[c]);
        }
        results[r] = group.AllReduceSum<float>(r, mine, width);
      });
    }
    for (auto& t : threads) t.join();
    for (std::size_t r = 0; r < n; ++r) {
      ASSERT_EQ(results[r].size(), width);
      for (std::size_t i = 0; i < width; ++i) {
        EXPECT_EQ(results[r][i], expected[i])
            << "rank " << r << " of " << n << ", element " << i;
      }
    }
  }
}

TEST(CollectiveGroupTest, AllReduceRejectsDuplicateChunkIds) {
  CollectiveGroup group(1);
  std::vector<std::pair<std::size_t, std::vector<float>>> chunks = {
      {0, {1.0f}}, {0, {2.0f}}};
  EXPECT_THROW((void)group.AllReduceSum<float>(0, chunks, 1),
               std::invalid_argument);
}

TEST(CollectiveGroupTest, ZeroRanksThrows) {
  EXPECT_THROW(CollectiveGroup(0), std::invalid_argument);
}

TEST(CollectiveGroupTest, AbortUnblocksAStrandedRank) {
  // Rank 0 enters an all-to-all whose peer never shows up; Abort must
  // make it throw instead of waiting at the barrier forever.
  CollectiveGroup group(2);
  std::thread t([&] {
    std::vector<std::vector<float>> send(2);
    EXPECT_THROW((void)group.AllToAll<float>(0, std::move(send)),
                 std::runtime_error);
  });
  group.Abort();
  t.join();
  // The group stays poisoned: later collectives fail fast.
  std::vector<std::vector<float>> send(2);
  EXPECT_THROW((void)group.AllToAll<float>(1, std::move(send)),
               std::runtime_error);
}

TEST(CollectiveGroupTest, DeadPeerRaisesRankFailureInsteadOfHanging) {
  // Regression: before the peer deadline existed this scenario hung
  // forever — rank 0 waited at the exchange barrier for a peer that
  // never arrives (a dead rank with nobody calling Abort).
  CollectiveGroup group(
      2, CollectiveOptions{.peer_timeout = std::chrono::milliseconds(200)});
  std::vector<std::vector<float>> send(2);
  send[1] = {1.0f};
  EXPECT_THROW((void)group.AllToAll<float>(0, std::move(send)), RankFailure);
  // The deadline aborted the group, so a late peer fails fast instead
  // of waiting for a partner that already gave up.
  std::vector<std::vector<float>> late(2);
  EXPECT_THROW((void)group.AllToAll<float>(1, std::move(late)),
               std::runtime_error);
}

// ------------------------------------------------------ EmbeddingShardView --

TEST(EmbeddingShardViewTest, OwnsExactlyTheAddedTables) {
  common::Rng rng(1);
  nn::EmbeddingShardView shard;
  shard.AddTable(3, nn::EmbeddingTable(16, 4, rng));
  shard.AddTable(7, nn::EmbeddingTable(16, 4, rng));
  EXPECT_TRUE(shard.Owns(3));
  EXPECT_TRUE(shard.Owns(7));
  EXPECT_FALSE(shard.Owns(0));
  EXPECT_EQ(shard.num_tables(), 2u);
  EXPECT_EQ(shard.table_ids(), (std::vector<std::size_t>{3, 7}));
  EXPECT_EQ(shard.param_bytes(), 2u * 16 * 4 * sizeof(float));
  EXPECT_EQ(shard.Table(3).dim(), 4u);
}

TEST(EmbeddingShardViewTest, OutOfShardIdRejected) {
  common::Rng rng(1);
  nn::EmbeddingShardView shard;
  shard.AddTable(2, nn::EmbeddingTable(16, 4, rng));
  EXPECT_THROW((void)shard.Table(5), std::out_of_range);
  const auto& const_shard = shard;
  EXPECT_THROW((void)const_shard.Table(5), std::out_of_range);
}

TEST(EmbeddingShardViewTest, DuplicateTableIdRejected) {
  common::Rng rng(1);
  nn::EmbeddingShardView shard;
  shard.AddTable(2, nn::EmbeddingTable(16, 4, rng));
  EXPECT_THROW(shard.AddTable(2, nn::EmbeddingTable(16, 4, rng)),
               std::invalid_argument);
}

// ------------------------------------------------------------- IKJT slice --

TEST(IkjtSliceTest, SliceJaggedRowsRebasesOffsets) {
  const auto jt = tensor::JaggedTensor::FromRows({{1, 2}, {}, {3}, {4, 5}});
  const auto sliced = tensor::SliceJaggedRows(jt, 1, 4);
  ASSERT_EQ(sliced.num_rows(), 3u);
  EXPECT_TRUE(sliced.row(0).empty());
  EXPECT_EQ(sliced.row(1)[0], 3);
  EXPECT_EQ(sliced.row(2)[1], 5);
  EXPECT_THROW((void)tensor::SliceJaggedRows(jt, 3, 2), std::out_of_range);
  EXPECT_THROW((void)tensor::SliceJaggedRows(jt, 0, 5), std::out_of_range);
}

TEST(IkjtSliceTest, SliceMatchesFromScratchDeduplication) {
  // Batch with duplicated rows straddling the slice boundary.
  tensor::KeyedJaggedTensor kjt;
  kjt.AddFeature("a", tensor::JaggedTensor::FromRows(
                          {{1, 2}, {1, 2}, {3}, {3}, {1, 2}, {9}}));
  kjt.AddFeature("b", tensor::JaggedTensor::FromRows(
                          {{5}, {5}, {6, 7}, {6, 7}, {5}, {}}));
  const std::vector<std::string> keys = {"a", "b"};
  const auto full = tensor::DeduplicateGroup(kjt, keys);

  const std::size_t lo = 2;
  const std::size_t hi = 6;
  const auto sliced = tensor::SliceIkjt(full, lo, hi);

  // Re-deduplicate the sliced expanded rows from scratch.
  tensor::KeyedJaggedTensor sliced_kjt;
  sliced_kjt.AddFeature("a",
                        tensor::SliceJaggedRows(kjt.Get("a"), lo, hi));
  sliced_kjt.AddFeature("b",
                        tensor::SliceJaggedRows(kjt.Get("b"), lo, hi));
  const auto fresh = tensor::DeduplicateGroup(sliced_kjt, keys);

  ASSERT_EQ(sliced.batch_size(), fresh.batch_size());
  ASSERT_EQ(sliced.unique_rows(), fresh.unique_rows());
  for (const auto& key : keys) {
    EXPECT_TRUE(sliced.Unique(key) == fresh.Unique(key));
  }
  for (std::size_t i = 0; i < sliced.batch_size(); ++i) {
    EXPECT_EQ(sliced.inverse_lookup()[i], fresh.inverse_lookup()[i]);
  }
  EXPECT_THROW((void)tensor::SliceIkjt(full, 0, 7), std::out_of_range);
}

// ---------------------------------------------------- DistributedTrainer --

struct Fixture {
  datagen::DatasetSpec spec;
  ModelConfig model;
  storage::BlobStore store;
  storage::Table table;
  reader::PreprocessedBatch recd_batch;
  reader::PreprocessedBatch base_batch;
};

Fixture MakeFixture(std::size_t batch_size = 128, double scale = 0.05,
                    datagen::RmKind kind = datagen::RmKind::kRm1) {
  Fixture fx;
  fx.spec = datagen::RmDataset(kind, scale);
  fx.spec.concurrent_sessions = 16;  // heavy in-batch duplication
  fx.model = RmModel(kind, fx.spec);
  fx.model.emb_hash_size = 5'000;  // keep tables small
  datagen::TrafficGenerator gen(fx.spec);
  const auto traffic = gen.Generate(batch_size * 2);
  auto samples = etl::JoinLogs(traffic.features, traffic.events);
  etl::ClusterBySession(samples);
  storage::StorageSchema schema;
  schema.num_dense = fx.spec.num_dense;
  for (const auto& f : fx.spec.sparse) {
    schema.sparse_names.push_back(f.name);
  }
  auto landed =
      storage::LandTable(fx.store, "t", schema, {std::move(samples)});
  fx.table = std::move(landed.table);

  reader::Reader recd(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, true),
                      reader::ReaderOptions{.use_ikjt = true});
  reader::Reader base(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, false),
                      reader::ReaderOptions{.use_ikjt = false});
  fx.recd_batch = *recd.NextBatch();
  fx.base_batch = *base.NextBatch();
  return fx;
}

void ExpectSameMlp(const nn::Mlp& a, const nn::Mlp& b,
                   const std::string& what) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    EXPECT_TRUE(a.layer(l).weights() == b.layer(l).weights())
        << what << ": layer " << l << " weights differ";
    const auto ba = a.layer(l).bias();
    const auto bb = b.layer(l).bias();
    ASSERT_EQ(ba.size(), bb.size());
    EXPECT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin()))
        << what << ": layer " << l << " bias differs";
  }
}

void ExpectMatchesReference(const DistributedTrainer& dist,
                            const ReferenceDlrm& ref,
                            const std::string& what) {
  for (std::size_t r = 0; r < dist.config().num_ranks; ++r) {
    ExpectSameMlp(dist.bottom_mlp(r), ref.bottom_mlp(),
                  what + " bottom rank " + std::to_string(r));
    ExpectSameMlp(dist.top_mlp(r), ref.top_mlp(),
                  what + " top rank " + std::to_string(r));
  }
  const auto order = ModelTableOrder(dist.model());
  for (std::size_t t = 0; t < order.size(); ++t) {
    EXPECT_TRUE(dist.table(t).weights() == ref.table(order[t]).weights())
        << what << ": table " << order[t] << " differs";
  }
}

constexpr float kLr = 0.05f;
constexpr int kSteps = 3;

TEST(DistributedTrainerTest, BitwiseMatchesReferenceForEveryRankCount) {
  auto fx = MakeFixture();
  ReferenceDlrm ref(fx.model, /*seed=*/42);
  std::vector<float> ref_losses;
  for (int k = 0; k < kSteps; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  for (const std::size_t n : {1u, 2u, 4u}) {
    for (const bool recd : {false, true}) {
      DistributedConfig config;
      config.num_ranks = n;
      config.recd = recd;
      config.lr = kLr;
      config.seed = 42;
      DistributedTrainer dist(fx.model, config);
      const auto& batch = recd ? fx.recd_batch : fx.base_batch;
      const std::string what = (recd ? "recd" : "base") + std::string("/") +
                               std::to_string(n) + " ranks";
      for (int k = 0; k < kSteps; ++k) {
        const float loss = dist.Step(batch);
        EXPECT_EQ(loss, ref_losses[static_cast<std::size_t>(k)])
            << what << ": loss differs at step " << k;
      }
      ExpectMatchesReference(dist, ref, what);
    }
  }
}

TEST(DistributedTrainerTest, VectorizedBackendBitwiseMatchesScalarReference) {
  // The determinism matrix crossed with the kernel layer: a *scalar*
  // single-rank reference against *vectorized* distributed runs at
  // every rank count, both batch forms. Bitwise-equal losses and
  // weights prove the SIMD kernels honor the reduction-order contract
  // through the all-reduce and the sharded sparse updates.
  auto fx = MakeFixture();
  ReferenceDlrm ref(fx.model, /*seed=*/42);
  ref.SetKernelBackend(kernels::KernelBackend::kScalar);
  std::vector<float> ref_losses;
  for (int k = 0; k < kSteps; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  for (const std::size_t n : {1u, 2u, 4u}) {
    for (const bool recd : {false, true}) {
      DistributedConfig config;
      config.num_ranks = n;
      config.recd = recd;
      config.lr = kLr;
      config.seed = 42;
      config.backend = kernels::KernelBackend::kVectorized;
      DistributedTrainer dist(fx.model, config);
      const auto& batch = recd ? fx.recd_batch : fx.base_batch;
      const std::string what = std::string("vectorized ") +
                               (recd ? "recd" : "base") + "/" +
                               std::to_string(n) + " ranks";
      for (int k = 0; k < kSteps; ++k) {
        const float loss = dist.Step(batch);
        EXPECT_EQ(loss, ref_losses[static_cast<std::size_t>(k)])
            << what << ": loss differs at step " << k;
      }
      ExpectMatchesReference(dist, ref, what);
    }
  }
}

TEST(DistributedTrainerTest, RecdShipsStrictlyFewerSparseBytes) {
  auto fx = MakeFixture();
  for (const std::size_t n : {2u, 4u}) {
    DistributedConfig base_config;
    base_config.num_ranks = n;
    base_config.recd = false;
    DistributedConfig recd_config = base_config;
    recd_config.recd = true;

    DistributedTrainer base(fx.model, base_config);
    DistributedTrainer recd(fx.model, recd_config);
    (void)base.Step(fx.base_batch);
    (void)recd.Step(fx.recd_batch);

    const auto b = base.TotalCounters();
    const auto r = recd.TotalCounters();
    EXPECT_LT(r.sdd_bytes, b.sdd_bytes) << n << " ranks";
    EXPECT_LT(r.emb_bytes, b.emb_bytes) << n << " ranks";
    EXPECT_GT(r.exchange_dedupe_factor(), 1.1) << n << " ranks";
    EXPECT_DOUBLE_EQ(b.exchange_dedupe_factor(), 1.0);
    // The mirror gradient all-to-all and the MLP all-reduce ship
    // per-row grads / replicated dense grads — mode-independent.
    EXPECT_EQ(r.grad_bytes, b.grad_bytes);
    EXPECT_EQ(r.allreduce_bytes, b.allreduce_bytes);
  }
}

TEST(DistributedTrainerTest, SingleRankSendsNoWireBytes) {
  auto fx = MakeFixture(64);
  DistributedConfig config;
  config.num_ranks = 1;
  DistributedTrainer dist(fx.model, config);
  (void)dist.Step(fx.base_batch);
  EXPECT_EQ(dist.TotalCounters().total_bytes(), 0u);
}

TEST(DistributedTrainerTest, ShardPartitionCoversEveryTableOnce) {
  auto fx = MakeFixture(64);
  DistributedConfig config;
  config.num_ranks = 4;
  DistributedTrainer dist(fx.model, config);
  const auto units = ModelPlacementUnits(fx.model);
  std::vector<bool> seen(fx.model.num_tables(), false);
  for (std::size_t u = 0; u < units.size(); ++u) {
    const std::size_t owner = dist.OwnerOfTable(units[u].table_ids[0]);
    EXPECT_LT(owner, 4u);
    for (const auto tid : units[u].table_ids) {
      // A group's tables stay together (the shared inverse is local).
      EXPECT_EQ(dist.OwnerOfTable(tid), owner);
      EXPECT_FALSE(seen[tid]);
      seen[tid] = true;
      (void)dist.table(tid);  // reachable through its owner
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](bool s) { return s; }));
}

TEST(DistributedTrainerTest, InvalidConfigurationsThrow) {
  auto fx = MakeFixture(64);
  DistributedConfig three;
  three.num_ranks = 3;  // does not divide kGradChunks
  EXPECT_THROW(DistributedTrainer(fx.model, three), std::invalid_argument);
  DistributedConfig zero;
  zero.num_ranks = 0;
  EXPECT_THROW(DistributedTrainer(fx.model, zero), std::invalid_argument);

  DistributedConfig recd_config;
  recd_config.num_ranks = 2;
  recd_config.recd = true;
  DistributedTrainer dist(fx.model, recd_config);
  // RecD mode needs IKJT groups in the batch.
  EXPECT_THROW((void)dist.Step(fx.base_batch), std::invalid_argument);

  DistributedConfig base_config;
  base_config.num_ranks = 2;
  DistributedTrainer base(fx.model, base_config);
  reader::PreprocessedBatch empty;
  EXPECT_THROW((void)base.Step(empty), std::invalid_argument);
}

// ------------------------------------------------------ fault tolerance --

// Tiny model variant for the fault/recovery matrix: dozens of runner
// incarnations each write checkpoint files, so shrink the tables and
// MLPs (batches are id-level and unaffected — tables hash ids by
// modulo at lookup).
Fixture MakeTinyFixture() {
  auto fx = MakeFixture(64);
  fx.model.emb_hash_size = 500;
  fx.model.emb_dim = 32;
  fx.model.bottom_mlp_hidden = {64};
  fx.model.top_mlp_hidden = {64, 32};
  return fx;
}

TEST(DistributedTrainerTest, StragglerDelayChangesTimingNotResults) {
  auto fx = MakeTinyFixture();
  ReferenceDlrm ref(fx.model, /*seed=*/42);
  std::vector<float> ref_losses;
  for (int k = 0; k < kSteps; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  FaultInjector injector;
  injector.Arm(Fault{.kind = Fault::Kind::kDelayRank,
                     .step = 1,
                     .rank = 1,
                     .exchange = Exchange::kEmb,
                     .delay = std::chrono::milliseconds(100)});
  DistributedConfig config;
  config.num_ranks = 2;
  config.lr = kLr;
  config.seed = 42;
  // Generous deadline: a straggler is slow, not dead — the run must
  // absorb the delay without declaring a failure.
  config.peer_timeout = std::chrono::seconds(60);
  config.injector = &injector;
  DistributedTrainer dist(fx.model, config);
  for (int k = 0; k < kSteps; ++k) {
    injector.BeginStep(static_cast<std::size_t>(k));
    EXPECT_EQ(dist.Step(fx.base_batch),
              ref_losses[static_cast<std::size_t>(k)])
        << "straggler: loss differs at step " << k;
  }
  EXPECT_EQ(injector.faults_fired(), 1u);
  ExpectMatchesReference(dist, ref, "straggler");
}

// The recovery-determinism matrix: kill any rank at any of the four
// exchanges of step 1, restore at any valid rank count, base and RecD
// mode alike — the recovered run's losses and final weights must be
// bitwise identical to an uninterrupted reference run.
TEST(FaultToleranceTest, KillRestoreMatrixIsBitwiseDeterministic) {
  auto fx = MakeTinyFixture();
  ReferenceDlrm ref(fx.model, /*seed=*/42);
  std::vector<float> ref_losses;
  for (int k = 0; k < kSteps; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  const Exchange kExchanges[] = {Exchange::kSdd, Exchange::kEmb,
                                 Exchange::kGrad, Exchange::kAllReduce};
  int combo = 0;
  for (const bool recd : {false, true}) {
    for (const std::size_t kill_rank : {0u, 1u}) {
      for (const Exchange exchange : kExchanges) {
        for (const std::size_t restore_ranks : {1u, 2u, 4u}) {
          const std::string what =
              std::string(recd ? "recd" : "base") + ": kill rank " +
              std::to_string(kill_rank) + " at " + ExchangeName(exchange) +
              ", restore at " + std::to_string(restore_ranks) + " ranks";
          FaultInjector injector;
          injector.Arm(Fault{.kind = Fault::Kind::kKillRank,
                             .step = 1,
                             .rank = kill_rank,
                             .exchange = exchange});
          ElasticRunOptions options;
          options.total_steps = static_cast<std::size_t>(kSteps);
          options.checkpoint_every = 1;
          options.checkpoint_dir = ::testing::TempDir() + "/recd_matrix_" +
                                   std::to_string(combo++);
          std::filesystem::remove_all(options.checkpoint_dir);
          options.rank_schedule = {2, restore_ranks};
          options.trainer.lr = kLr;
          options.trainer.seed = 42;
          options.trainer.recd = recd;
          FaultTolerantRunner runner(fx.model, options, &injector);
          const auto result = runner.Run(
              [&](std::size_t) -> const reader::PreprocessedBatch& {
                return recd ? fx.recd_batch : fx.base_batch;
              });
          EXPECT_EQ(result.failures, 1u) << what;
          EXPECT_EQ(injector.faults_fired(), 1u) << what;
          EXPECT_EQ(runner.trainer().config().num_ranks, restore_ranks)
              << what;
          ASSERT_EQ(result.losses.size(), ref_losses.size()) << what;
          for (std::size_t k = 0; k < ref_losses.size(); ++k) {
            EXPECT_EQ(result.losses[k], ref_losses[k])
                << what << ": loss differs at step " << k;
          }
          ExpectMatchesReference(runner.trainer(), ref, what);
          std::filesystem::remove_all(options.checkpoint_dir);
        }
      }
    }
  }
}

}  // namespace
}  // namespace recd::train
