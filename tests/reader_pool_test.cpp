// ReaderPool determinism tests: the parallel reader must produce the
// byte-identical batch stream — same batches, same order, same values,
// same io() counters — as the single-threaded Reader, for any worker
// count (the ordered-reassembly rule of docs/ARCHITECTURE.md §7).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "etl/etl.h"
#include "reader/reader.h"
#include "reader/reader_pool.h"
#include "storage/blob_store.h"
#include "storage/table.h"
#include "tensor/ikjt.h"
#include "tensor/partial_ikjt.h"
#include "train/model.h"

namespace recd::reader {
namespace {

constexpr std::size_t kBatchSize = 192;

struct Fixture {
  storage::BlobStore store;
  storage::Table table;
  train::ModelConfig model;
};

/// A clustered RM1 table split across several partitions with small
/// stripes, so the pool has many stripes to claim and batch boundaries
/// straddle stripe and partition edges.
Fixture MakeFixture(std::size_t num_samples = 3'000) {
  auto spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.08);
  spec.concurrent_sessions = 128;
  spec.mean_session_size = 8.0;
  datagen::TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(num_samples);
  auto samples = etl::JoinLogs(traffic.features, traffic.events);
  etl::ClusterBySession(samples);
  const auto partitions = etl::PartitionByCount(std::move(samples), 1'000);

  Fixture f;
  storage::StorageSchema schema;
  schema.num_dense = spec.num_dense;
  for (const auto& feature : spec.sparse) {
    schema.sparse_names.push_back(feature.name);
  }
  storage::WriterOptions wopts;
  wopts.rows_per_stripe = 256;
  f.table =
      storage::LandTable(f.store, "pool", schema, partitions, wopts).table;
  f.model = train::RmModel(datagen::RmKind::kRm1, spec);
  f.model.emb_hash_size = 10'000;
  return f;
}

DataLoaderConfig MakeLoader(const train::ModelConfig& model,
                            std::size_t num_workers) {
  auto loader = train::MakeDataLoaderConfig(model, kBatchSize,
                                            /*recd_enabled=*/true);
  loader.num_workers = num_workers;
  // Exercise the Process stage on both dedup and dense paths.
  if (!model.elementwise_features.empty()) {
    loader.transforms.push_back({TransformKind::kSparseHash,
                                 model.elementwise_features.front(),
                                 1'000'003, 0});
  }
  loader.transforms.push_back(
      {TransformKind::kDenseNormalize, "", 0.0, 1.0});
  return loader;
}

void AppendBits(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

/// Canonical bytes of one batch: order-preserving, with every IKJT and
/// partial IKJT expanded back to per-row values. Two streams are
/// byte-identical iff their fingerprint sequences match.
std::string Fingerprint(const PreprocessedBatch& batch) {
  std::string out;
  AppendBits(out, &batch.batch_size, sizeof(batch.batch_size));

  std::map<std::string, const tensor::JaggedTensor*> features;
  std::vector<tensor::KeyedJaggedTensor> expanded;
  expanded.reserve(batch.groups.size());
  for (const auto& key : batch.kjt.keys()) {
    features[key] = &batch.kjt.Get(key);
  }
  for (const auto& group : batch.groups) {
    expanded.push_back(tensor::ExpandToKjt(group));
    for (const auto& key : expanded.back().keys()) {
      features[key] = &expanded.back().Get(key);
    }
  }
  std::vector<tensor::JaggedTensor> expanded_partials;
  expanded_partials.reserve(batch.partials.size());
  for (const auto& partial : batch.partials) {
    expanded_partials.push_back(tensor::ExpandPartialIkjt(partial));
    features[partial.key()] = &expanded_partials.back();
  }

  for (std::size_t i = 0; i < batch.batch_size; ++i) {
    AppendBits(out, &batch.session_ids[i], sizeof(batch.session_ids[i]));
    AppendBits(out, &batch.labels[i], sizeof(batch.labels[i]));
    AppendBits(out, batch.dense.data() + i * batch.dense_dim,
               batch.dense_dim * sizeof(float));
    for (const auto& [name, jagged] : features) {
      out += name;
      out += '\0';
      const auto row = jagged->row(i);
      for (const auto id : row) AppendBits(out, &id, sizeof(id));
      out += '\n';
    }
  }
  return out;
}

struct Stream {
  std::vector<std::string> batches;  // fingerprints, in delivery order
  ReaderIoStats io;
};

template <typename Rdr>
Stream Drain(Rdr& rdr) {
  Stream s;
  while (auto batch = rdr.NextBatch()) {
    s.batches.push_back(Fingerprint(*batch));
  }
  s.io = rdr.io();
  return s;
}

TEST(ReaderPoolTest, OneWorkerMatchesPlainReader) {
  auto fixture = MakeFixture();
  Reader plain(fixture.store, fixture.table,
               MakeLoader(fixture.model, 1));
  const auto plain_stream = Drain(plain);

  auto pool_fixture = MakeFixture();
  ReaderPool pool(pool_fixture.store, pool_fixture.table,
                  MakeLoader(pool_fixture.model, 1));
  EXPECT_EQ(pool.num_workers(), 1u);
  const auto pool_stream = Drain(pool);

  ASSERT_FALSE(plain_stream.batches.empty());
  EXPECT_EQ(plain_stream.batches, pool_stream.batches);
}

TEST(ReaderPoolTest, WorkerCountDoesNotChangeTheBatchStream) {
  // The acceptance invariant: 1, 2, and 8 workers deliver identical
  // batch streams and identical io counters.
  std::vector<Stream> streams;
  for (const std::size_t workers : {1u, 2u, 8u}) {
    auto fixture = MakeFixture();
    ReaderPool pool(fixture.store, fixture.table,
                    MakeLoader(fixture.model, workers));
    streams.push_back(Drain(pool));
    ASSERT_FALSE(streams.back().batches.empty());
  }
  for (std::size_t i = 1; i < streams.size(); ++i) {
    EXPECT_EQ(streams[0].batches, streams[i].batches)
        << "stream diverged at worker sweep index " << i;
    EXPECT_EQ(streams[0].io.bytes_read, streams[i].io.bytes_read);
    EXPECT_EQ(streams[0].io.bytes_sent, streams[i].io.bytes_sent);
    EXPECT_EQ(streams[0].io.rows_read, streams[i].io.rows_read);
    EXPECT_EQ(streams[0].io.batches_produced,
              streams[i].io.batches_produced);
    EXPECT_EQ(streams[0].io.sparse_elements_processed,
              streams[i].io.sparse_elements_processed);
  }
}

TEST(ReaderPoolTest, FinalPartialBatchSurvivesParallelReassembly) {
  auto fixture = MakeFixture(/*num_samples=*/1'000);
  ReaderPool pool(fixture.store, fixture.table,
                  MakeLoader(fixture.model, 4));
  std::size_t rows = 0;
  std::size_t partial_batches = 0;
  std::size_t batches = 0;
  while (auto batch = pool.NextBatch()) {
    rows += batch->batch_size;
    ++batches;
    if (batch->batch_size < kBatchSize) ++partial_batches;
  }
  EXPECT_EQ(rows, pool.io().rows_read);
  EXPECT_EQ(batches, (rows + kBatchSize - 1) / kBatchSize);
  EXPECT_LE(partial_batches, 1u);
}

TEST(ReaderPoolTest, EmptyTableEndsImmediately) {
  storage::BlobStore store;
  storage::Table table;
  table.schema.num_dense = 2;
  table.schema.sparse_names = {"f0"};
  DataLoaderConfig loader;
  loader.sparse_features = {"f0"};
  loader.batch_size = 8;
  loader.num_workers = 4;
  ReaderPool pool(store, table, loader);
  EXPECT_FALSE(pool.NextBatch().has_value());
  EXPECT_EQ(pool.io().batches_produced, 0u);
}

TEST(ReaderPoolTest, AbandoningTheStreamShutsDownCleanly) {
  auto fixture = MakeFixture();
  ReaderPool pool(fixture.store, fixture.table,
                  MakeLoader(fixture.model, 4));
  ASSERT_TRUE(pool.NextBatch().has_value());
  // Destructor must unblock and join all workers mid-stream.
}

TEST(ReaderPoolTest, UnknownFeatureThrowsUpFront) {
  auto fixture = MakeFixture(/*num_samples=*/500);
  auto loader = MakeLoader(fixture.model, 2);
  loader.sparse_features.push_back("no_such_feature");
  EXPECT_THROW(ReaderPool(fixture.store, fixture.table, loader),
               std::out_of_range);
}

TEST(ReaderPoolTest, WallClockIsRecorded) {
  auto fixture = MakeFixture(/*num_samples=*/1'000);
  ReaderPool pool(fixture.store, fixture.table,
                  MakeLoader(fixture.model, 2));
  while (pool.NextBatch().has_value()) {
  }
  EXPECT_GT(pool.times().wall_s, 0.0);
  EXPECT_GT(pool.times().total_s(), 0.0);
}

}  // namespace
}  // namespace recd::reader
