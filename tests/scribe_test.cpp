// Tests for the Scribe simulation (O1: log sharding by session id).
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "scribe/scribe.h"

namespace recd::scribe {
namespace {

datagen::TrafficGenerator::Traffic MakeTraffic(std::size_t n) {
  auto spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.1);
  spec.concurrent_sessions = 64;
  datagen::TrafficGenerator gen(spec);
  return gen.Generate(n);
}

TEST(ScribeTest, NeedsAtLeastOneShard) {
  EXPECT_THROW(ScribeCluster(0, ShardKeyPolicy::kRandomHash),
               std::invalid_argument);
}

TEST(ScribeTest, DrainPreservesEveryMessage) {
  const auto traffic = MakeTraffic(800);
  ScribeCluster cluster(4, ShardKeyPolicy::kSessionId);
  for (const auto& f : traffic.features) cluster.LogFeature(f);
  for (const auto& e : traffic.events) cluster.LogEvent(e);
  cluster.Flush();
  const auto features = cluster.DrainFeatures();
  const auto events = cluster.DrainEvents();
  ASSERT_EQ(features.size(), traffic.features.size());
  ASSERT_EQ(events.size(), traffic.events.size());
  // Same multiset of request ids and identical payloads per id.
  std::unordered_map<std::int64_t, const datagen::FeatureLog*> originals;
  for (const auto& f : traffic.features) originals[f.request_id] = &f;
  for (const auto& f : features) {
    const auto it = originals.find(f.request_id);
    ASSERT_NE(it, originals.end());
    EXPECT_EQ(f.sparse, it->second->sparse);
    EXPECT_EQ(f.session_id, it->second->session_id);
  }
}

TEST(ScribeTest, SessionPolicyRoutesSessionToOneShard) {
  // With kSessionId, a session's logs land on one shard: when draining
  // shard-by-shard, all of a session's messages come out of the same
  // contiguous shard segment. Log each session's messages one at a time
  // into two interleaving orders; per-session counts and drain grouping
  // must match.
  const auto traffic = MakeTraffic(500);
  ScribeCluster cluster(8, ShardKeyPolicy::kSessionId);
  for (const auto& f : traffic.features) cluster.LogFeature(f);
  cluster.Flush();
  const auto drained = cluster.DrainFeatures();
  ASSERT_EQ(drained.size(), traffic.features.size());
  // Per-session message counts survive routing.
  std::unordered_map<std::int64_t, std::size_t> in_counts;
  std::unordered_map<std::int64_t, std::size_t> out_counts;
  for (const auto& f : traffic.features) ++in_counts[f.session_id];
  for (const auto& f : drained) ++out_counts[f.session_id];
  EXPECT_EQ(in_counts, out_counts);
  // Within the drained stream a session's messages stay in timestamp
  // order (they all flowed through a single shard FIFO).
  std::unordered_map<std::int64_t, std::int64_t> last_ts;
  for (const auto& f : drained) {
    const auto it = last_ts.find(f.session_id);
    if (it != last_ts.end()) {
      EXPECT_GT(f.timestamp, it->second);
    }
    last_ts[f.session_id] = f.timestamp;
  }
}

TEST(ScribeTest, StatsAccounting) {
  const auto traffic = MakeTraffic(200);
  ScribeCluster cluster(2, ShardKeyPolicy::kRandomHash);
  for (const auto& f : traffic.features) cluster.LogFeature(f);
  cluster.Flush();
  const auto totals = cluster.totals();
  EXPECT_EQ(totals.messages, 200u);
  EXPECT_GT(totals.rx_bytes, 0u);
  EXPECT_EQ(totals.buffered_bytes, totals.rx_bytes);
  EXPECT_GT(totals.compressed_bytes, 0u);
  EXPECT_LT(totals.compressed_bytes, totals.buffered_bytes);
  EXPECT_GT(totals.compression_ratio(), 1.0);
}

TEST(ScribeTest, SessionShardingImprovesCompression) {
  // O1's headline claim (paper: 1.50x -> 2.25x). Same logs, two shard
  // policies, real codec: the session-sharded buffers must compress
  // meaningfully better.
  const auto traffic = MakeTraffic(3000);
  ScribeCluster random_cluster(8, ShardKeyPolicy::kRandomHash);
  ScribeCluster session_cluster(8, ShardKeyPolicy::kSessionId);
  for (const auto& f : traffic.features) {
    random_cluster.LogFeature(f);
    session_cluster.LogFeature(f);
  }
  random_cluster.Flush();
  session_cluster.Flush();
  const double random_ratio = random_cluster.totals().compression_ratio();
  const double session_ratio =
      session_cluster.totals().compression_ratio();
  EXPECT_GT(session_ratio, random_ratio * 1.1)
      << "random=" << random_ratio << " session=" << session_ratio;
}

TEST(ScribeTest, RoundTripAfterPartialBlocks) {
  // Messages that do not fill a whole compression block must still drain.
  const auto traffic = MakeTraffic(3);
  ScribeCluster cluster(1, ShardKeyPolicy::kSessionId,
                        compress::CodecKind::kLz77,
                        /*block_bytes=*/1 << 20);
  for (const auto& f : traffic.features) cluster.LogFeature(f);
  cluster.Flush();
  EXPECT_EQ(cluster.DrainFeatures().size(), 3u);
}

class ShardCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountSweep, AllShardsReceiveTraffic) {
  const auto traffic = MakeTraffic(2000);
  ScribeCluster cluster(GetParam(), ShardKeyPolicy::kRandomHash);
  for (const auto& f : traffic.features) cluster.LogFeature(f);
  cluster.Flush();
  std::size_t nonempty = 0;
  for (std::size_t i = 0; i < cluster.num_shards(); ++i) {
    if (cluster.shard_stats(i).messages > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, cluster.num_shards());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardCountSweep,
                         ::testing::Values(1, 2, 8, 32));

}  // namespace
}  // namespace recd::scribe
