// Tests for the observability layer (docs/ARCHITECTURE.md §14): the
// metrics registry (handle identity, label canonicalization, snapshot
// ordering/merge, exposition formats), the structured tracer (bounded
// buffers, virtual-clock determinism, Stop-straddling spans), the
// snapshot-vs-writers race under TSan, and the observability-
// determinism rule itself — obs on vs off never changes weights,
// losses, scores, or non-timing counters, across rank counts {1, 2, 4}
// and serve worker counts {1, 8}.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "etl/etl.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "reader/reader.h"
#include "serve/server_runner.h"
#include "storage/table.h"
#include "train/distributed.h"
#include "train/model.h"
#include "train/reference.h"

namespace recd::obs {
namespace {

// ---------------------------------------------------------- registry --

TEST(ObsRegistryTest, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter& c = reg.GetCounter("test.counter");
  c.Add(3);
  c.Increment();
  EXPECT_EQ(c.Value(), 4);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);

  Gauge& g = reg.GetGauge("test.gauge");
  g.Set(7);
  g.Add(-2);
  EXPECT_EQ(g.Value(), 5);

  HistogramMetric& h = reg.GetHistogram("test.hist");
  h.Observe(10);
  h.Observe(0);  // clamps to 1
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.total_count(), 2);
  EXPECT_EQ(snap.min(), 1);
  EXPECT_EQ(snap.max(), 10);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(ObsRegistryTest, SameSeriesReturnsSameHandle) {
  Registry reg;
  Counter& a = reg.GetCounter("x", {{"rank", "0"}, {"table", "t"}});
  // Label order must not split the series (canonicalized by key).
  Counter& b = reg.GetCounter("x", {{"table", "t"}, {"rank", "0"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.GetCounter("x", {{"rank", "1"}, {"table", "t"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ObsRegistryTest, KindMismatchThrows) {
  Registry reg;
  (void)reg.GetCounter("same.name");
  EXPECT_THROW((void)reg.GetGauge("same.name"), std::invalid_argument);
  EXPECT_THROW((void)reg.GetHistogram("same.name"), std::invalid_argument);
}

TEST(ObsRegistryTest, SnapshotIsSortedAndFindable) {
  Registry reg;
  reg.GetCounter("z.last").Add(1);
  reg.GetCounter("a.first").Add(2);
  reg.GetCounter("m.mid", {{"rank", "1"}}).Add(3);
  reg.GetCounter("m.mid", {{"rank", "0"}}).Add(4);
  const auto snap = reg.Snapshot();
  ASSERT_EQ(snap.entries.size(), 4u);
  EXPECT_EQ(snap.entries[0].name, "a.first");
  EXPECT_EQ(snap.entries[1].name, "m.mid");
  EXPECT_EQ(snap.entries[1].labels,
            (Labels{{"rank", "0"}}));  // label-sorted within a name
  EXPECT_EQ(snap.entries[3].name, "z.last");

  const auto* e = snap.Find("m.mid", {{"rank", "1"}});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 3);
  EXPECT_EQ(snap.Find("m.mid", {{"rank", "9"}}), nullptr);
  EXPECT_EQ(snap.Find("absent"), nullptr);
}

TEST(ObsRegistryTest, ResetValuesKeepsSeriesAndHandles) {
  Registry reg;
  Counter& c = reg.GetCounter("keep.me");
  c.Add(42);
  reg.GetGauge("keep.gauge").Set(9);
  reg.ResetValues();
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(c.Value(), 0);  // same handle, zeroed
  EXPECT_EQ(reg.Snapshot().Find("keep.gauge")->value, 0);
}

// ---------------------------------------------------------- snapshot --

TEST(ObsSnapshotTest, MergeSumsCountersOverwritesGaugesMergesHists) {
  Registry a;
  a.GetCounter("c").Add(10);
  a.GetGauge("g").Set(1);
  a.GetHistogram("h").Observe(5);

  Registry b;
  b.GetCounter("c").Add(7);
  b.GetGauge("g").Set(2);
  b.GetHistogram("h").Observe(9);
  b.GetCounter("only.in.b").Add(3);

  auto merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.Find("c")->value, 17);
  EXPECT_EQ(merged.Find("g")->value, 2);  // latest wins
  EXPECT_EQ(merged.Find("h")->histogram.total_count(), 2);
  EXPECT_EQ(merged.Find("h")->histogram.min(), 5);
  EXPECT_EQ(merged.Find("h")->histogram.max(), 9);
  EXPECT_EQ(merged.Find("only.in.b")->value, 3);  // inserted
  ASSERT_EQ(merged.entries.size(), 4u);
  for (std::size_t i = 1; i < merged.entries.size(); ++i) {
    EXPECT_LE(merged.entries[i - 1].name, merged.entries[i].name);
  }
}

TEST(ObsSnapshotTest, WithoutTimingsDropsTimingSuffixedSeries) {
  Registry reg;
  reg.GetCounter("comm.bytes_sent").Add(1);
  reg.GetCounter("comm.wait_us").Add(2);
  reg.GetCounter("etl.window_seconds").Add(3);
  reg.GetCounter("sched.idle_ticks").Add(4);
  reg.GetHistogram("serve.latency_us").Observe(5);
  const auto filtered = reg.Snapshot().WithoutTimings();
  ASSERT_EQ(filtered.entries.size(), 1u);
  EXPECT_EQ(filtered.entries[0].name, "comm.bytes_sent");
}

TEST(ObsSnapshotTest, PrometheusTextAndJsonExposition) {
  Registry reg;
  reg.GetCounter("train.rows", {{"rank", "0"}}).Add(128);
  reg.GetHistogram("serve.latency_us").Observe(50);
  const auto snap = reg.Snapshot();

  const std::string prom = snap.ToPrometheusText();
  EXPECT_NE(prom.find("train.rows{rank=\"0\"} 128"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("serve.latency_us_count 1"), std::string::npos);
  EXPECT_NE(prom.find("serve.latency_us_sum"), std::string::npos);

  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"series_count\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"train.rows\""), std::string::npos);
  EXPECT_NE(json.find("\"rank\": \"0\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
}

// ------------------------------------------------------------ tracer --

TEST(ObsTracerTest, BoundedBuffersDropLoudly) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.virtual_clock = true;
  options.max_events_per_thread = 2;
  tracer.Start(options);
  for (int i = 0; i < 5; ++i) {
    tracer.SetVirtualTimeUs(i);
    RECD_TRACE_SCOPE("test/span");
  }
  tracer.Stop();
  EXPECT_EQ(tracer.event_count(), 2u);
  EXPECT_EQ(tracer.dropped_events(), 3u);
  tracer.Clear();
}

TEST(ObsTracerTest, DisabledScopesRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  ASSERT_FALSE(tracer.enabled());
  {
    RECD_TRACE_SCOPE("test/never");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(ObsTracerTest, SpanStraddlingStopIsDropped) {
  Tracer& tracer = Tracer::Global();
  TraceOptions options;
  options.virtual_clock = true;
  tracer.Start(options);
  {
    RECD_TRACE_SCOPE("test/straddler");
    tracer.Stop();  // span must not be half-recorded
  }
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.Clear();
}

// The tracer-level determinism surface (see obs/trace.h): a fixed
// single-threaded span sequence on the virtual clock renders to
// byte-identical JSON, run after run.
TEST(ObsTracerTest, VirtualClockSequenceRendersByteIdentically) {
  Tracer& tracer = Tracer::Global();
  const auto record_once = [&] {
    TraceOptions options;
    options.virtual_clock = true;
    tracer.Start(options);
    for (int i = 0; i < 4; ++i) {
      tracer.SetVirtualTimeUs(100 * i);
      Tracer::Scope span("test/window", "index", i);
      tracer.SetVirtualTimeUs(100 * i + 25);
    }
    tracer.Stop();
    return tracer.ToJson();
  };
  const std::string first = record_once();
  const std::string second = record_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"name\":\"test/window\""), std::string::npos);
  EXPECT_NE(first.find("\"ts\":300,\"dur\":25"), std::string::npos)
      << first;
  EXPECT_NE(first.find("\"args\":{\"index\":3}"), std::string::npos);
  tracer.Clear();
}

// ------------------------------------------------------------ config --

TEST(ObsConfigTest, ConfigureSetsAndClearsTheEnabledGate) {
  ObsOptions on;
  on.enabled = true;
  Configure(on);
  EXPECT_TRUE(Enabled());
  Configure(ObsOptions{});
  EXPECT_FALSE(Enabled());
}

TEST(ObsConfigTest, FromEnvReadsTheContract) {
  ::setenv("RECD_OBS", "1", 1);
  ::setenv("RECD_OBS_TRACE", "/tmp/recd_obs_test_trace.json", 1);
  const auto options = FromEnv();
  EXPECT_TRUE(options.enabled);
  EXPECT_TRUE(options.trace);
  EXPECT_EQ(options.trace_path, "/tmp/recd_obs_test_trace.json");
  ::unsetenv("RECD_OBS");
  ::unsetenv("RECD_OBS_TRACE");
  const auto off = FromEnv();
  EXPECT_FALSE(off.enabled);
  EXPECT_FALSE(off.trace);
}

// ------------------------------------------------- snapshot-race (TSan) --

// N writer threads hammer one counter, one gauge, and one histogram
// while the main thread snapshots the registry in a loop: the exact
// reader-vs-writers race the registry promises is clean (TSan runs this
// via scripts/check.sh --tsan). Totals are exact once writers quiesce.
TEST(ObsConcurrencyTest, SnapshotsRaceHammeringWriters) {
  Registry reg;
  Counter& counter = reg.GetCounter("hammer.counter");
  Gauge& gauge = reg.GetGauge("hammer.gauge");
  HistogramMetric& hist = reg.GetHistogram("hammer.hist");

  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::atomic<int> done{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter.Add(1);
        gauge.Set(t);
        if (i % 64 == 0) hist.Observe(i + 1);
      }
      done.fetch_add(1);
    });
  }
  while (done.load() < kThreads) {
    const auto snap = reg.Snapshot();
    ASSERT_EQ(snap.entries.size(), 3u);
    ASSERT_GE(snap.Find("hammer.counter")->value, 0);
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(counter.Value(), static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(hist.snapshot().total_count(),
            static_cast<std::int64_t>(kThreads) * ((kIters + 63) / 64));
  EXPECT_LT(gauge.Value(), kThreads);
}

// --------------------------------------- the observability-determinism --
// rule: obs on (timing metrics + tracing) vs off never changes weights,
// losses, scores, or non-timing counters (docs/ARCHITECTURE.md §14).

struct TrainFixture {
  datagen::DatasetSpec spec;
  train::ModelConfig model;
  storage::BlobStore store;
  storage::Table table;
  reader::PreprocessedBatch batch;
};

TrainFixture MakeTrainFixture() {
  TrainFixture fx;
  fx.spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.05);
  fx.spec.concurrent_sessions = 16;
  fx.model = train::RmModel(datagen::RmKind::kRm1, fx.spec);
  fx.model.emb_hash_size = 5'000;
  datagen::TrafficGenerator gen(fx.spec);
  const auto traffic = gen.Generate(128);
  auto samples = etl::JoinLogs(traffic.features, traffic.events);
  etl::ClusterBySession(samples);
  storage::StorageSchema schema;
  schema.num_dense = fx.spec.num_dense;
  for (const auto& f : fx.spec.sparse) {
    schema.sparse_names.push_back(f.name);
  }
  auto landed =
      storage::LandTable(fx.store, "t", schema, {std::move(samples)});
  fx.table = std::move(landed.table);
  reader::Reader rd(fx.store, fx.table,
                    train::MakeDataLoaderConfig(fx.model, 64, true),
                    reader::ReaderOptions{.use_ikjt = true});
  fx.batch = *rd.NextBatch();
  return fx;
}

void ExpectSameMlp(const nn::Mlp& a, const nn::Mlp& b,
                   const std::string& what) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    EXPECT_TRUE(a.layer(l).weights() == b.layer(l).weights())
        << what << ": layer " << l << " weights differ";
  }
}

TEST(ObsDeterminismTest, TrainingIsBitwiseIdenticalWithObsOnOrOff) {
  const auto fx = MakeTrainFixture();
  constexpr int kSteps = 2;
  for (const std::size_t ranks : {1u, 2u, 4u}) {
    train::DistributedConfig config;
    config.num_ranks = ranks;
    config.recd = true;
    config.seed = 11;

    // Pass 1: everything off (the default state).
    Configure(ObsOptions{});
    train::DistributedTrainer off(fx.model, config);
    std::vector<float> off_losses;
    for (int k = 0; k < kSteps; ++k) off_losses.push_back(off.Step(fx.batch));
    const auto off_metrics = [&] {
      auto s = off.metrics().Snapshot();
      s.Merge(off.comm_metrics().Snapshot());
      return s.WithoutTimings().ToPrometheusText();
    }();

    // Pass 2: timing metrics AND tracing on.
    ObsOptions obs_on;
    obs_on.enabled = true;
    obs_on.trace = true;
    Configure(obs_on);
    train::DistributedTrainer on(fx.model, config);
    std::vector<float> on_losses;
    for (int k = 0; k < kSteps; ++k) on_losses.push_back(on.Step(fx.batch));
    // Tracing genuinely ran: exchange spans were recorded...
    EXPECT_GT(Tracer::Global().event_count(), 0u);
    const auto on_metrics = [&] {
      auto s = on.metrics().Snapshot();
      s.Merge(on.comm_metrics().Snapshot());
      return s.WithoutTimings().ToPrometheusText();
    }();
    Configure(ObsOptions{});
    Tracer::Global().Clear();

    // ...and observed training is bitwise-identical to unobserved.
    EXPECT_EQ(off_losses, on_losses) << "ranks=" << ranks;
    ExpectSameMlp(off.bottom_mlp(0), on.bottom_mlp(0), "bottom mlp");
    ExpectSameMlp(off.top_mlp(0), on.top_mlp(0), "top mlp");
    EXPECT_EQ(off_metrics, on_metrics) << "ranks=" << ranks;
  }
}

TEST(ObsDeterminismTest, ServingScoresIdenticalWithObsOnAcrossWorkers) {
  auto spec = datagen::RmDataset(datagen::RmKind::kRm2, 0.08);
  spec.concurrent_sessions = 8;
  auto model = train::RmModel(datagen::RmKind::kRm2, spec);
  model.emb_hash_size = 2'000;
  model.emb_dim = 16;
  model.bottom_mlp_hidden = {32};
  model.top_mlp_hidden = {64, 32};
  serve::TraceSpec trace_spec;
  trace_spec.dataset = spec;
  trace_spec.query.num_requests = 48;
  trace_spec.query.candidates = 4;
  trace_spec.query.qps = 50'000;
  serve::ModelSpec model_spec;
  model_spec.config = model;

  const auto run = [&](std::size_t workers) {
    // Worker counts are a FleetSpec concern; the trace spec is fixed,
    // so every runner replays the identical trace.
    serve::ServerRunner runner(
        trace_spec, serve::FleetSpec::Single(model_spec, workers));
    auto policy = serve::RunPolicy::Recd();
    policy.pace_arrivals = false;
    serve::BatcherOptions batcher;
    batcher.max_batch_requests = 8;
    policy.batcher = batcher;
    return runner.Run(policy);
  };

  Configure(ObsOptions{});
  const auto off = run(1);

  ObsOptions obs_on;
  obs_on.enabled = true;
  obs_on.trace = true;
  obs_on.trace_virtual_clock = true;
  Configure(obs_on);
  for (const std::size_t workers : {1u, 8u}) {
    const auto on = run(workers);
    ASSERT_EQ(on.requests.size(), off.requests.size());
    for (std::size_t i = 0; i < on.requests.size(); ++i) {
      EXPECT_EQ(on.requests[i].request_id, off.requests[i].request_id);
      EXPECT_TRUE(on.requests[i].scores == off.requests[i].scores)
          << "request " << i << " scores diverged (workers=" << workers
          << ")";
    }
    // Non-timing serve counters match too (latency_us is timing-named
    // and excluded; it is identical here anyway — replay-mode latency
    // is the virtual batching delay).
    EXPECT_EQ(on.obs_metrics.WithoutTimings().ToPrometheusText(),
              off.obs_metrics.WithoutTimings().ToPrometheusText());
  }
  EXPECT_GT(Tracer::Global().event_count(), 0u);
  Configure(ObsOptions{});
  Tracer::Global().Clear();
}

}  // namespace
}  // namespace recd::obs
