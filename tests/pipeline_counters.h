// Shared assertion: two pipeline results agree on every non-timing
// counter. This is the determinism yardstick used by both
// pipeline_roundtrip_test (threads must not change batch results) and
// stream_test (streaming must reproduce batch, and stream results must
// be thread-count invariant) — one definition so a counter added to
// core::PipelineResult gets covered by every contract at once.
#pragma once

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace recd::testutil {

inline void ExpectPipelineCountersEqual(const core::PipelineResult& a,
                                        const core::PipelineResult& b) {
  EXPECT_EQ(a.scribe_compression_ratio, b.scribe_compression_ratio);
  EXPECT_EQ(a.storage_compression_ratio, b.storage_compression_ratio);
  EXPECT_EQ(a.stored_bytes, b.stored_bytes);
  EXPECT_EQ(a.samples_per_session, b.samples_per_session);
  EXPECT_EQ(a.batch_samples_per_session, b.batch_samples_per_session);
  EXPECT_EQ(a.mean_dedupe_factor, b.mean_dedupe_factor);
  EXPECT_EQ(a.reader_io.bytes_read, b.reader_io.bytes_read);
  EXPECT_EQ(a.reader_io.bytes_sent, b.reader_io.bytes_sent);
  EXPECT_EQ(a.reader_io.rows_read, b.reader_io.rows_read);
  EXPECT_EQ(a.reader_io.batches_produced, b.reader_io.batches_produced);
  EXPECT_EQ(a.reader_io.sparse_elements_processed,
            b.reader_io.sparse_elements_processed);
  // The trainer model is analytic, so even its simulated seconds and
  // derived QPS are deterministic counters, not wall-clock samples.
  EXPECT_EQ(a.trainer.lookups, b.trainer.lookups);
  EXPECT_EQ(a.trainer.flops, b.trainer.flops);
  EXPECT_EQ(a.trainer.sdd_bytes, b.trainer.sdd_bytes);
  EXPECT_EQ(a.trainer.emb_a2a_bytes, b.trainer.emb_a2a_bytes);
  EXPECT_EQ(a.trainer_qps, b.trainer_qps);
}

}  // namespace recd::testutil
