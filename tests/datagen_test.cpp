// Tests for the session-centric workload generator: the substitution for
// the paper's production dataset must actually produce the generative
// properties the paper characterizes (S, d(f), interleaving, sync
// groups).
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "datagen/sample.h"
#include "datagen/schema.h"

namespace recd::datagen {
namespace {

DatasetSpec TinySpec() {
  DatasetSpec spec;
  spec.seed = 11;
  spec.num_dense = 4;
  spec.mean_session_size = 8.0;
  spec.concurrent_sessions = 32;
  SparseFeatureSpec user;
  user.name = "user_seq";
  user.klass = FeatureClass::kUser;
  user.update = UpdateKind::kShiftAppend;
  user.mean_length = 8;
  user.stay_prob = 0.9;
  user.id_domain = 10'000;
  spec.sparse.push_back(user);
  SparseFeatureSpec item;
  item.name = "item_id";
  item.klass = FeatureClass::kItem;
  item.update = UpdateKind::kRedraw;
  item.mean_length = 2;
  item.stay_prob = 0.0;
  item.id_domain = 100'000;
  spec.sparse.push_back(item);
  return spec;
}

TEST(SchemaTest, FeatureIndexLookup) {
  const auto spec = TinySpec();
  EXPECT_EQ(spec.FeatureIndex("user_seq"), 0u);
  EXPECT_EQ(spec.FeatureIndex("item_id"), 1u);
  EXPECT_THROW((void)spec.FeatureIndex("nope"), std::out_of_range);
}

TEST(GeneratorTest, ProducesRequestedSampleCount) {
  TrafficGenerator gen(TinySpec());
  const auto traffic = gen.Generate(1000);
  EXPECT_EQ(traffic.features.size(), 1000u);
  EXPECT_EQ(traffic.events.size(), 1000u);
}

TEST(GeneratorTest, RequestIdsUniqueAndAligned) {
  TrafficGenerator gen(TinySpec());
  const auto traffic = gen.Generate(500);
  std::unordered_set<std::int64_t> ids;
  for (std::size_t i = 0; i < traffic.features.size(); ++i) {
    EXPECT_EQ(traffic.features[i].request_id, traffic.events[i].request_id);
    EXPECT_EQ(traffic.features[i].session_id, traffic.events[i].session_id);
    EXPECT_TRUE(ids.insert(traffic.features[i].request_id).second);
  }
}

TEST(GeneratorTest, TimestampsMonotoneInFeatureStream) {
  TrafficGenerator gen(TinySpec());
  const auto traffic = gen.Generate(300);
  for (std::size_t i = 1; i < traffic.features.size(); ++i) {
    EXPECT_GT(traffic.features[i].timestamp,
              traffic.features[i - 1].timestamp);
  }
}

TEST(GeneratorTest, EventsLandAfterImpressions) {
  TrafficGenerator gen(TinySpec());
  const auto traffic = gen.Generate(300);
  for (std::size_t i = 0; i < traffic.events.size(); ++i) {
    EXPECT_GT(traffic.events[i].timestamp, traffic.features[i].timestamp);
  }
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  TrafficGenerator a(TinySpec());
  TrafficGenerator b(TinySpec());
  const auto ta = a.Generate(200);
  const auto tb = b.Generate(200);
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(ta.features[i].sparse, tb.features[i].sparse);
    EXPECT_EQ(ta.events[i].label, tb.events[i].label);
  }
}

TEST(GeneratorTest, SparseArityMatchesSchema) {
  const auto spec = TinySpec();
  TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(50);
  for (const auto& log : traffic.features) {
    EXPECT_EQ(log.sparse.size(), spec.num_sparse());
    EXPECT_EQ(log.dense.size(), spec.num_dense);
  }
}

TEST(GeneratorTest, UserFeatureStayProbabilityIsHonored) {
  // Within a session, adjacent impressions keep the user feature with
  // probability ~= stay_prob (the paper's d(f)).
  auto spec = TinySpec();
  spec.concurrent_sessions = 4;
  spec.mean_session_size = 50;
  TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(5000);
  std::unordered_map<std::int64_t, const FeatureLog*> last_in_session;
  int stayed = 0;
  int transitions = 0;
  for (const auto& log : traffic.features) {
    const auto it = last_in_session.find(log.session_id);
    if (it != last_in_session.end()) {
      ++transitions;
      if (it->second->sparse[0] == log.sparse[0]) ++stayed;
    }
    last_in_session[log.session_id] = &log;
  }
  ASSERT_GT(transitions, 1000);
  const double measured =
      static_cast<double>(stayed) / static_cast<double>(transitions);
  EXPECT_NEAR(measured, 0.9, 0.05);
}

TEST(GeneratorTest, ItemFeatureAlmostAlwaysChanges) {
  auto spec = TinySpec();
  spec.concurrent_sessions = 4;
  TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(3000);
  std::unordered_map<std::int64_t, const FeatureLog*> last;
  int stayed = 0;
  int transitions = 0;
  for (const auto& log : traffic.features) {
    const auto it = last.find(log.session_id);
    if (it != last.end()) {
      ++transitions;
      if (it->second->sparse[1] == log.sparse[1]) ++stayed;
    }
    last[log.session_id] = &log;
  }
  ASSERT_GT(transitions, 500);
  EXPECT_LT(static_cast<double>(stayed) / transitions, 0.1);
}

TEST(GeneratorTest, ShiftAppendPreservesOverlap) {
  // When a kShiftAppend feature changes, the new list should share all
  // but one element with the old one (the partial-duplication mechanism).
  auto spec = TinySpec();
  spec.concurrent_sessions = 2;
  spec.sparse[0].stay_prob = 0.0;  // change every impression
  TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(500);
  std::unordered_map<std::int64_t, std::vector<Id>> last;
  int checked = 0;
  for (const auto& log : traffic.features) {
    const auto it = last.find(log.session_id);
    if (it != last.end() && it->second.size() == log.sparse[0].size() &&
        it->second.size() >= 2) {
      const auto& prev = it->second;
      const auto& cur = log.sparse[0];
      // cur should equal prev shifted left by one.
      EXPECT_TRUE(std::equal(prev.begin() + 1, prev.end(), cur.begin()));
      ++checked;
    }
    last[log.session_id] = log.sparse[0];
  }
  EXPECT_GT(checked, 100);
}

TEST(GeneratorTest, SyncGroupFeaturesUpdateTogether) {
  DatasetSpec spec = TinySpec();
  spec.sparse.clear();
  for (int i = 0; i < 2; ++i) {
    SparseFeatureSpec f;
    f.name = "g" + std::to_string(i);
    f.update = UpdateKind::kShiftAppend;
    f.mean_length = 6;
    f.stay_prob = 0.5;
    f.sync_group = 0;
    f.id_domain = 1000;
    spec.sparse.push_back(f);
  }
  spec.concurrent_sessions = 2;
  TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(1000);
  std::unordered_map<std::int64_t, const FeatureLog*> last;
  for (const auto& log : traffic.features) {
    const auto it = last.find(log.session_id);
    if (it != last.end()) {
      const bool f0_same = it->second->sparse[0] == log.sparse[0];
      const bool f1_same = it->second->sparse[1] == log.sparse[1];
      EXPECT_EQ(f0_same, f1_same)
          << "grouped features must change in lockstep";
    }
    last[log.session_id] = &log;
  }
}

TEST(GeneratorTest, ClickProbabilityInRange) {
  TrafficGenerator gen(TinySpec());
  const auto traffic = gen.Generate(200);
  for (const auto& log : traffic.features) {
    const float p = ClickProbability(log);
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(GeneratorTest, InterleavingSpreadsSessionsAcrossBatches) {
  // Paper Fig 3 right: with production-scale interleaving (concurrent
  // sessions >> batch), a 4096-sample window holds ~1.15 samples per
  // session. Our pool is finite, so assert < 2.
  auto spec = TinySpec();
  spec.concurrent_sessions = 8192;
  spec.mean_session_size = 16.5;
  TrafficGenerator gen(spec);
  const auto traffic = gen.Generate(4096);
  std::unordered_set<std::int64_t> sessions;
  for (const auto& log : traffic.features) sessions.insert(log.session_id);
  const double spc = 4096.0 / static_cast<double>(sessions.size());
  EXPECT_LT(spc, 2.0);
}

// ------------------------------------------------------- serialization --

TEST(SampleSerializationTest, FeatureLogRoundTrip) {
  FeatureLog log;
  log.request_id = 42;
  log.session_id = -7;
  log.timestamp = 123456789;
  log.dense = {1.5f, -2.25f};
  log.sparse = {{1, 2, 3}, {}, {-9}};
  common::ByteWriter w;
  SerializeFeatureLog(log, w);
  common::ByteReader r(w.bytes());
  const auto back = DeserializeFeatureLog(r);
  EXPECT_EQ(back.request_id, log.request_id);
  EXPECT_EQ(back.session_id, log.session_id);
  EXPECT_EQ(back.timestamp, log.timestamp);
  EXPECT_EQ(back.dense, log.dense);
  EXPECT_EQ(back.sparse, log.sparse);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SampleSerializationTest, SampleRoundTrip) {
  Sample s;
  s.request_id = 1;
  s.session_id = 2;
  s.timestamp = 3;
  s.label = 1.0f;
  s.dense = {0.5f};
  s.sparse = {{5, 6}};
  common::ByteWriter w;
  SerializeSample(s, w);
  common::ByteReader r(w.bytes());
  EXPECT_EQ(DeserializeSample(r), s);
}

TEST(SampleSerializationTest, EventLogRoundTrip) {
  EventLog e;
  e.request_id = 10;
  e.session_id = 20;
  e.timestamp = 30;
  e.label = 0.0f;
  common::ByteWriter w;
  SerializeEventLog(e, w);
  common::ByteReader r(w.bytes());
  const auto back = DeserializeEventLog(r);
  EXPECT_EQ(back.request_id, 10);
  EXPECT_EQ(back.label, 0.0f);
}

// ------------------------------------------------------------- presets --

class RmPresetTest : public ::testing::TestWithParam<RmKind> {};

TEST_P(RmPresetTest, PresetShapesMatchPaper) {
  const auto kind = GetParam();
  const auto spec = RmDataset(kind, 0.25);
  EXPECT_GT(spec.num_sparse(), 16u);
  const auto groups = RmDedupGroups(kind, spec);
  switch (kind) {
    case RmKind::kRm1:
      // RM1: 16 sequence features in 5 groups (paper §6.1).
      ASSERT_EQ(groups.size(), 5u);
      {
        std::size_t total = 0;
        for (const auto& g : groups) total += g.size();
        EXPECT_EQ(total, 16u);
      }
      break;
    case RmKind::kRm2:
      ASSERT_EQ(groups.size(), 1u);
      EXPECT_EQ(groups[0].size(), 6u);
      break;
    case RmKind::kRm3:
      ASSERT_EQ(groups.size(), 1u);
      EXPECT_EQ(groups[0].size(), 11u);
      break;
  }
  for (const auto& g : groups) {
    for (const auto& name : g) {
      const auto& f = spec.sparse[spec.FeatureIndex(name)];
      EXPECT_GE(f.stay_prob, 0.9);
      EXPECT_EQ(f.klass, FeatureClass::kUser);
    }
  }
  EXPECT_FALSE(RmElementwiseDedupFeatures(kind, spec).empty());
}

INSTANTIATE_TEST_SUITE_P(AllRms, RmPresetTest,
                         ::testing::Values(RmKind::kRm1, RmKind::kRm2,
                                           RmKind::kRm3));

TEST(PresetTest, InvalidScaleThrows) {
  EXPECT_THROW((void)RmDataset(RmKind::kRm1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)RmDataset(RmKind::kRm1, 1.5), std::invalid_argument);
}

TEST(PresetTest, CharacterizationDatasetMixesClasses) {
  const auto spec = CharacterizationDataset(64, 0.5);
  EXPECT_EQ(spec.num_sparse(), 64u);
  std::size_t users = 0;
  std::size_t items = 0;
  for (const auto& f : spec.sparse) {
    if (f.klass == FeatureClass::kUser) {
      ++users;
    } else {
      ++items;
    }
  }
  EXPECT_GT(users, items);
  EXPECT_GT(items, 0u);
}

}  // namespace
}  // namespace recd::datagen
