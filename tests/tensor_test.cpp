// Tests for the tensor module: JaggedTensor, KJT, IKJT (incl. the paper's
// Fig 5 worked examples), JaggedIndexSelect, partial IKJTs (§7), and wire
// serialization. Property suites sweep batch shapes and duplication
// regimes, asserting the core invariant everywhere: deduplicate-then-
// expand reproduces the original batch exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/ikjt.h"
#include "tensor/jagged.h"
#include "tensor/jagged_ops.h"
#include "tensor/kjt.h"
#include "tensor/partial_ikjt.h"
#include "tensor/serialize.h"

namespace recd::tensor {
namespace {

using Rows = std::vector<std::vector<Id>>;

template <typename T>
std::vector<T> ToVec(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

JaggedTensor FromRows(const Rows& rows) {
  return JaggedTensor::FromRows(rows);
}

// -------------------------------------------------------- JaggedTensor --

TEST(JaggedTensorTest, PaperOffsetsConvention) {
  // Paper Fig 5: feature a over rows {[1,2], [], [1,2]} has
  // values [1,2,1,2] and offsets [0,2,2].
  const JaggedTensor jt = FromRows({{1, 2}, {}, {1, 2}});
  EXPECT_EQ(ToVec(jt.values()), (std::vector<Id>{1, 2, 1, 2}));
  EXPECT_EQ(ToVec(jt.offsets()), (std::vector<Offset>{0, 2, 2}));
  EXPECT_EQ(jt.num_rows(), 3u);
  // length(i) = offsets[i+1] - offsets[i]; last row from |values|.
  EXPECT_EQ(jt.length(0), 2);
  EXPECT_EQ(jt.length(1), 0);
  EXPECT_EQ(jt.length(2), 2);
}

TEST(JaggedTensorTest, RowViews) {
  const JaggedTensor jt = FromRows({{7, 8, 9}, {}, {5}});
  EXPECT_EQ(std::vector<Id>(jt.row(0).begin(), jt.row(0).end()),
            (std::vector<Id>{7, 8, 9}));
  EXPECT_TRUE(jt.row(1).empty());
  EXPECT_EQ(jt.row(2)[0], 5);
  EXPECT_EQ(jt.total_values(), 4u);
}

TEST(JaggedTensorTest, EmptyTensor) {
  const JaggedTensor jt;
  EXPECT_EQ(jt.num_rows(), 0u);
  EXPECT_EQ(jt.total_values(), 0u);
}

TEST(JaggedTensorTest, InvalidOffsetsThrow) {
  EXPECT_THROW(JaggedTensor({1, 2, 3}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(JaggedTensor({1, 2, 3}, {0, 2, 1}), std::invalid_argument);
  EXPECT_THROW(JaggedTensor({1, 2}, {0, 5}), std::invalid_argument);
  EXPECT_THROW(JaggedTensor({1}, {}), std::invalid_argument);
}

TEST(JaggedTensorTest, RowEquals) {
  const JaggedTensor jt = FromRows({{1, 2, 3}, {4}});
  EXPECT_TRUE(jt.RowEquals(0, std::vector<Id>{1, 2, 3}));
  EXPECT_FALSE(jt.RowEquals(0, std::vector<Id>{1, 2}));
  EXPECT_FALSE(jt.RowEquals(1, std::vector<Id>{5}));
}

TEST(JaggedTensorTest, EqualityIsStructural) {
  EXPECT_EQ(FromRows({{1, 2}, {3}}), FromRows({{1, 2}, {3}}));
  EXPECT_NE(FromRows({{1, 2}, {3}}), FromRows({{1}, {2, 3}}));
}

// ----------------------------------------------------------------- KJT --

TEST(KjtTest, AddAndLookup) {
  KeyedJaggedTensor kjt;
  kjt.AddFeature("a", FromRows({{1}, {2}}));
  kjt.AddFeature("b", FromRows({{3, 4}, {}}));
  EXPECT_EQ(kjt.num_keys(), 2u);
  EXPECT_EQ(kjt.batch_size(), 2u);
  EXPECT_TRUE(kjt.Has("a"));
  EXPECT_FALSE(kjt.Has("z"));
  EXPECT_EQ(kjt.Get("b").total_values(), 2u);
  EXPECT_EQ(kjt.total_values(), 4u);
  EXPECT_THROW((void)kjt.Get("z"), std::out_of_range);
}

TEST(KjtTest, DuplicateKeyThrows) {
  KeyedJaggedTensor kjt;
  kjt.AddFeature("a", FromRows({{1}}));
  EXPECT_THROW(kjt.AddFeature("a", FromRows({{2}})),
               std::invalid_argument);
}

TEST(KjtTest, BatchSizeMismatchThrows) {
  KeyedJaggedTensor kjt;
  kjt.AddFeature("a", FromRows({{1}, {2}}));
  EXPECT_THROW(kjt.AddFeature("b", FromRows({{1}})),
               std::invalid_argument);
}

// ------------------------------------------------- IKJT (paper Fig 5) --

KeyedJaggedTensor Fig5Batch() {
  // Row 0: a:[1,2]  b:[3,4,5]  c:[7,8]  d:[9]   label 1
  // Row 1:          b:[4,5,6]  c:[7,8]  d:[9]   label 0
  // Row 2: a:[1,2]  b:[3,4,5]  c:[10]   d:[11]  label 1
  KeyedJaggedTensor kjt;
  kjt.AddFeature("feature_a", FromRows({{1, 2}, {}, {1, 2}}));
  kjt.AddFeature("feature_b", FromRows({{3, 4, 5}, {4, 5, 6}, {3, 4, 5}}));
  kjt.AddFeature("feature_c", FromRows({{7, 8}, {7, 8}, {10}}));
  kjt.AddFeature("feature_d", FromRows({{9}, {9}, {11}}));
  return kjt;
}

TEST(IkjtTest, PaperFig5SingleFeatureB) {
  const auto kjt = Fig5Batch();
  DedupStats stats;
  const std::vector<std::string> group = {"feature_b"};
  const auto ikjt = DeduplicateGroup(kjt, group, &stats);
  // Paper: b: {values [3,4,5,4,5,6], offsets [0,3]}, lookup [0,1,0].
  EXPECT_EQ(ToVec(ikjt.Unique("feature_b").values()),
            (std::vector<Id>{3, 4, 5, 4, 5, 6}));
  EXPECT_EQ(ToVec(ikjt.Unique("feature_b").offsets()),
            (std::vector<Offset>{0, 3}));
  EXPECT_EQ(std::vector<std::int64_t>(ikjt.inverse_lookup().begin(),
                                      ikjt.inverse_lookup().end()),
            (std::vector<std::int64_t>{0, 1, 0}));
  EXPECT_EQ(stats.batch_size, 3u);
  EXPECT_EQ(stats.unique_rows, 2u);
  EXPECT_EQ(stats.values_before, 9u);
  EXPECT_EQ(stats.values_after, 6u);
  EXPECT_DOUBLE_EQ(stats.dedupe_factor(), 1.5);
}

TEST(IkjtTest, PaperFig5GroupedCD) {
  const auto kjt = Fig5Batch();
  const std::vector<std::string> group = {"feature_c", "feature_d"};
  const auto ikjt = DeduplicateGroup(kjt, group);
  // Paper: c: {values [7,8,10], offsets [0,2]}, d: {values [9,11],
  // offsets [0,1]}, shared lookup [0,0,1].
  EXPECT_EQ(ToVec(ikjt.Unique("feature_c").values()),
            (std::vector<Id>{7, 8, 10}));
  EXPECT_EQ(ToVec(ikjt.Unique("feature_c").offsets()),
            (std::vector<Offset>{0, 2}));
  EXPECT_EQ(ToVec(ikjt.Unique("feature_d").values()),
            (std::vector<Id>{9, 11}));
  EXPECT_EQ(ToVec(ikjt.Unique("feature_d").offsets()),
            (std::vector<Offset>{0, 1}));
  EXPECT_EQ(std::vector<std::int64_t>(ikjt.inverse_lookup().begin(),
                                      ikjt.inverse_lookup().end()),
            (std::vector<std::int64_t>{0, 0, 1}));
  EXPECT_EQ(ikjt.unique_rows(), 2u);
}

TEST(IkjtTest, Fig5RowReconstruction) {
  const auto kjt = Fig5Batch();
  const std::vector<std::string> group = {"feature_c", "feature_d"};
  const auto ikjt = DeduplicateGroup(kjt, group);
  // inverse_lookup[0] maps to [7,8] for c and [9] for d (paper text).
  EXPECT_EQ(std::vector<Id>(ikjt.Row("feature_c", 0).begin(),
                            ikjt.Row("feature_c", 0).end()),
            (std::vector<Id>{7, 8}));
  EXPECT_EQ(std::vector<Id>(ikjt.Row("feature_d", 0).begin(),
                            ikjt.Row("feature_d", 0).end()),
            (std::vector<Id>{9}));
  EXPECT_EQ(std::vector<Id>(ikjt.Row("feature_c", 2).begin(),
                            ikjt.Row("feature_c", 2).end()),
            (std::vector<Id>{10}));
}

TEST(IkjtTest, UnsynchronizedRowsAreNotDeduplicated) {
  // c repeats on rows 0/1 but e differs -> the group must keep the rows
  // as separate unique entries (the paper's invariant-preservation rule).
  KeyedJaggedTensor kjt;
  kjt.AddFeature("c", FromRows({{7, 8}, {7, 8}}));
  kjt.AddFeature("e", FromRows({{1}, {2}}));
  const std::vector<std::string> group = {"c", "e"};
  DedupStats stats;
  const auto ikjt = DeduplicateGroup(kjt, group, &stats);
  EXPECT_EQ(ikjt.unique_rows(), 2u);
  EXPECT_EQ(stats.values_before, stats.values_after);
}

TEST(IkjtTest, ExpandRoundTripsFig5) {
  const auto kjt = Fig5Batch();
  for (const auto& group :
       {std::vector<std::string>{"feature_b"},
        std::vector<std::string>{"feature_c", "feature_d"}}) {
    const auto ikjt = DeduplicateGroup(kjt, group);
    const auto expanded = ExpandToKjt(ikjt);
    for (const auto& key : group) {
      EXPECT_EQ(expanded.Get(key), kjt.Get(key)) << key;
    }
  }
}

TEST(IkjtTest, EmptyGroupThrows) {
  const auto kjt = Fig5Batch();
  EXPECT_THROW((void)DeduplicateGroup(kjt, {}), std::invalid_argument);
}

TEST(IkjtTest, UnknownKeyThrows) {
  const auto kjt = Fig5Batch();
  const std::vector<std::string> group = {"nope"};
  EXPECT_THROW((void)DeduplicateGroup(kjt, group), std::out_of_range);
}

TEST(IkjtTest, InvalidConstructionThrows) {
  // Mismatched unique row counts across group features.
  EXPECT_THROW(InverseKeyedJaggedTensor({"a", "b"},
                                        {FromRows({{1}}), FromRows({{1}, {2}})},
                                        {0}),
               std::invalid_argument);
  // Out-of-range inverse lookup.
  EXPECT_THROW(InverseKeyedJaggedTensor({"a"}, {FromRows({{1}})}, {1}),
               std::invalid_argument);
  EXPECT_THROW(InverseKeyedJaggedTensor({"a"}, {FromRows({{1}})}, {-1}),
               std::invalid_argument);
}

TEST(IkjtTest, AllRowsIdenticalCollapseToOne) {
  KeyedJaggedTensor kjt;
  Rows rows(100, std::vector<Id>{1, 2, 3, 4});
  kjt.AddFeature("f", FromRows(rows));
  DedupStats stats;
  const std::vector<std::string> group = {"f"};
  const auto ikjt = DeduplicateGroup(kjt, group, &stats);
  EXPECT_EQ(ikjt.unique_rows(), 1u);
  EXPECT_DOUBLE_EQ(stats.dedupe_factor(), 100.0);
}

TEST(IkjtTest, AllRowsDistinctKeepEverything) {
  KeyedJaggedTensor kjt;
  Rows rows;
  for (Id i = 0; i < 50; ++i) rows.push_back({i, i + 1});
  kjt.AddFeature("f", FromRows(rows));
  DedupStats stats;
  const std::vector<std::string> group = {"f"};
  const auto ikjt = DeduplicateGroup(kjt, group, &stats);
  EXPECT_EQ(ikjt.unique_rows(), 50u);
  EXPECT_DOUBLE_EQ(stats.dedupe_factor(), 1.0);
}

TEST(IkjtTest, EmptyRowsDeduplicateToo) {
  KeyedJaggedTensor kjt;
  kjt.AddFeature("f", FromRows({{}, {}, {1}}));
  const std::vector<std::string> group = {"f"};
  const auto ikjt = DeduplicateGroup(kjt, group);
  EXPECT_EQ(ikjt.unique_rows(), 2u);
  const auto expanded = ExpandToKjt(ikjt);
  EXPECT_EQ(expanded.Get("f"), kjt.Get("f"));
}

// ------------------------------------------------------ JaggedIndexSelect --

TEST(JaggedIndexSelectTest, GathersRows) {
  const JaggedTensor src = FromRows({{1, 2}, {3}, {4, 5, 6}});
  const std::vector<std::int64_t> idx = {2, 0, 2, 1};
  const auto out = JaggedIndexSelect(src, idx);
  EXPECT_EQ(out, FromRows({{4, 5, 6}, {1, 2}, {4, 5, 6}, {3}}));
}

TEST(JaggedIndexSelectTest, EmptyIndices) {
  const JaggedTensor src = FromRows({{1}});
  const auto out = JaggedIndexSelect(src, {});
  EXPECT_EQ(out.num_rows(), 0u);
}

TEST(JaggedIndexSelectTest, OutOfRangeThrows) {
  const JaggedTensor src = FromRows({{1}});
  const std::vector<std::int64_t> bad = {1};
  EXPECT_THROW((void)JaggedIndexSelect(src, bad), std::out_of_range);
  const std::vector<std::int64_t> neg = {-1};
  EXPECT_THROW((void)JaggedIndexSelect(src, neg), std::out_of_range);
}

TEST(PaddedDenseTest, RoundTripMatchesJaggedPath) {
  // The pre-O6 baseline (pad -> dense index_select -> unpad) must agree
  // with JaggedIndexSelect, just at higher memory cost.
  const JaggedTensor src = FromRows({{1, 2, 3, 4}, {5}, {}, {6, 7}});
  const std::vector<std::int64_t> idx = {3, 3, 0, 2, 1};
  const auto dense = JaggedToPaddedDense(src);
  const auto picked = DenseIndexSelect(dense, idx);
  const auto back = PaddedDenseToJagged(picked);
  EXPECT_EQ(back, JaggedIndexSelect(src, idx));
  // Padded bytes exceed jagged bytes whenever lengths are skewed.
  EXPECT_GT(dense.byte_size(),
            src.total_values() * sizeof(Id) +
                src.num_rows() * sizeof(Offset));
}

TEST(PaddedDenseTest, DenseIndexSelectOutOfRangeThrows) {
  const auto dense = JaggedToPaddedDense(FromRows({{1}}));
  const std::vector<std::int64_t> bad = {2};
  EXPECT_THROW((void)DenseIndexSelect(dense, bad), std::out_of_range);
}

// -------------------------------------------------------- Partial IKJT --

TEST(PartialIkjtTest, PaperSection7Example) {
  // Paper §7: feature b = {[3,4,5],[4,5,6],[3,4,5]} partially dedups to
  // values [3,4,5,6], inverse_lookup [[0,3],[1,3],[0,3]].
  const JaggedTensor b = FromRows({{3, 4, 5}, {4, 5, 6}, {3, 4, 5}});
  const auto partial = BuildPartialIkjt("feature_b", b);
  EXPECT_EQ(std::vector<Id>(partial.values().begin(),
                            partial.values().end()),
            (std::vector<Id>{3, 4, 5, 6}));
  ASSERT_EQ(partial.batch_size(), 3u);
  EXPECT_EQ(partial.inverse_lookup()[0],
            (PartialIkjt::RowRef{0, 3}));
  EXPECT_EQ(partial.inverse_lookup()[1],
            (PartialIkjt::RowRef{1, 3}));
  EXPECT_EQ(partial.inverse_lookup()[2],
            (PartialIkjt::RowRef{0, 3}));
}

TEST(PartialIkjtTest, ExpandsBackExactly) {
  const JaggedTensor b = FromRows(
      {{3, 4, 5}, {4, 5, 6}, {3, 4, 5}, {9, 9}, {4, 5, 6}});
  const auto partial = BuildPartialIkjt("b", b);
  EXPECT_EQ(ExpandPartialIkjt(partial), b);
}

TEST(PartialIkjtTest, LongShiftChainStoresOnlyFreshIds) {
  // Sliding window of length 8 shifting by 1 for 64 rows: storage should
  // approach 8 + 63 values instead of 64*8.
  Rows rows;
  std::vector<Id> window;
  for (Id i = 0; i < 8; ++i) window.push_back(i);
  rows.push_back(window);
  for (int step = 0; step < 63; ++step) {
    window.erase(window.begin());
    window.push_back(100 + step);
    rows.push_back(window);
  }
  const auto partial = BuildPartialIkjt("w", FromRows(rows));
  EXPECT_EQ(partial.values().size(), 8u + 63u);
  EXPECT_GT(partial.dedupe_factor(), 6.0);
  EXPECT_EQ(ExpandPartialIkjt(partial), FromRows(rows));
}

TEST(PartialIkjtTest, UnrelatedRowsStartFreshBlocks) {
  const JaggedTensor jt = FromRows({{1, 2, 3}, {9, 8, 7}, {5, 5}});
  const auto partial = BuildPartialIkjt("x", jt);
  EXPECT_EQ(partial.values().size(), 8u);
  EXPECT_DOUBLE_EQ(partial.dedupe_factor(), 1.0);
  EXPECT_EQ(ExpandPartialIkjt(partial), jt);
}

TEST(PartialIkjtTest, InvalidRowRefThrows) {
  EXPECT_THROW(PartialIkjt("x", {1, 2}, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(PartialIkjt("x", {1, 2}, {{-1, 1}}), std::invalid_argument);
}

// ------------------------------------------------------- serialization --

TEST(SerializeTest, KjtRoundTrip) {
  const auto kjt = Fig5Batch();
  common::ByteWriter w;
  SerializeKjt(kjt, w);
  common::ByteReader r(w.bytes());
  const auto back = DeserializeKjt(r);
  EXPECT_EQ(back, kjt);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, IkjtRoundTrip) {
  const auto kjt = Fig5Batch();
  const std::vector<std::string> group = {"feature_c", "feature_d"};
  const auto ikjt = DeduplicateGroup(kjt, group);
  common::ByteWriter w;
  SerializeIkjt(ikjt, w);
  common::ByteReader r(w.bytes());
  const auto back = DeserializeIkjt(r);
  EXPECT_EQ(back.keys(), ikjt.keys());
  EXPECT_EQ(back.unique(0), ikjt.unique(0));
  EXPECT_EQ(back.unique(1), ikjt.unique(1));
  EXPECT_EQ(std::vector<std::int64_t>(back.inverse_lookup().begin(),
                                      back.inverse_lookup().end()),
            std::vector<std::int64_t>(ikjt.inverse_lookup().begin(),
                                      ikjt.inverse_lookup().end()));
}

TEST(SerializeTest, IkjtWireBytesSmallerUnderDuplication) {
  // Paper §4.2: IKJTs strictly decrease over-the-network tensor sizes
  // (values/offsets only; inverse_lookup is kept local for SDD).
  KeyedJaggedTensor kjt;
  Rows rows(64, std::vector<Id>{1, 2, 3, 4, 5, 6, 7, 8});
  kjt.AddFeature("f", FromRows(rows));
  const std::vector<std::string> group = {"f"};
  const auto ikjt = DeduplicateGroup(kjt, group);
  EXPECT_LT(IkjtWireBytes(ikjt, /*include_inverse_lookup=*/false),
            KjtWireBytes(kjt));
  EXPECT_LT(IkjtWireBytes(ikjt, /*include_inverse_lookup=*/true),
            KjtWireBytes(kjt));
}

TEST(SerializeTest, WireBytesCountRawTensorPayload) {
  KeyedJaggedTensor kjt;
  kjt.AddFeature("f", FromRows({{1, 2}, {3}}));
  // 3 values + 2 offsets, 8 bytes each.
  EXPECT_EQ(KjtWireBytes(kjt), 5u * 8u);
}

TEST(IkjtTest, DeduplicateRowsMatchesGroupPath) {
  // The row-major builder (used during feature conversion) must produce
  // exactly what the KJT-based path produces.
  const auto kjt = Fig5Batch();
  const std::vector<std::string> group = {"feature_c", "feature_d"};
  tensor::DedupStats group_stats;
  const auto via_group = DeduplicateGroup(kjt, group, &group_stats);
  const std::vector<const JaggedTensor*> features = {
      &kjt.Get("feature_c"), &kjt.Get("feature_d")};
  tensor::DedupStats row_stats;
  const auto via_rows = DeduplicateRows(
      {"feature_c", "feature_d"}, kjt.batch_size(),
      [&](std::size_t row, std::size_t k) { return features[k]->row(row); },
      &row_stats);
  EXPECT_EQ(via_rows.unique(0), via_group.unique(0));
  EXPECT_EQ(via_rows.unique(1), via_group.unique(1));
  EXPECT_EQ(std::vector<std::int64_t>(via_rows.inverse_lookup().begin(),
                                      via_rows.inverse_lookup().end()),
            std::vector<std::int64_t>(via_group.inverse_lookup().begin(),
                                      via_group.inverse_lookup().end()));
  EXPECT_EQ(row_stats.values_before, group_stats.values_before);
  EXPECT_EQ(row_stats.values_after, group_stats.values_after);
}

TEST(IkjtTest, DeduplicateRowsEmptyBatch) {
  const auto ikjt = DeduplicateRows(
      {"f"}, 0,
      [](std::size_t, std::size_t) { return std::span<const Id>(); });
  EXPECT_EQ(ikjt.batch_size(), 0u);
  EXPECT_EQ(ikjt.unique_rows(), 0u);
}

TEST(IkjtTest, DeduplicateRowsEmptyGroupThrows) {
  EXPECT_THROW(
      (void)DeduplicateRows({}, 3,
                            [](std::size_t, std::size_t) {
                              return std::span<const Id>();
                            }),
      std::invalid_argument);
}

TEST(PartialIkjtTest, WireBytesSmallerThanExpandedForShiftChains) {
  Rows rows;
  std::vector<Id> window;
  for (Id i = 0; i < 32; ++i) window.push_back(i);
  for (int r = 0; r < 128; ++r) {
    window.erase(window.begin());
    window.push_back(1000 + r);
    rows.push_back(window);
  }
  const auto jt = FromRows(rows);
  const auto partial = BuildPartialIkjt("w", jt);
  const std::size_t expanded_bytes =
      (jt.total_values() + jt.num_rows()) * sizeof(Id);
  EXPECT_LT(partial.WireBytes(), expanded_bytes);
}

// --------------------------------------------- property sweeps (TEST_P) --

struct DedupSweepParam {
  std::size_t batch_size;
  std::size_t group_features;
  double duplication;  // probability a row repeats the previous one
  std::size_t mean_len;
};

class DedupPropertyTest
    : public ::testing::TestWithParam<DedupSweepParam> {};

TEST_P(DedupPropertyTest, DedupExpandRoundTripsAndShrinks) {
  const auto p = GetParam();
  common::Rng rng(p.batch_size * 7919 + p.group_features);
  KeyedJaggedTensor kjt;
  std::vector<std::string> group;
  // Build synchronized features: all features repeat (or change) on the
  // same rows, mimicking grouped session features.
  std::vector<Rows> feature_rows(p.group_features);
  Rows prev(p.group_features);
  for (std::size_t r = 0; r < p.batch_size; ++r) {
    const bool repeat = r > 0 && rng.Bernoulli(p.duplication);
    for (std::size_t f = 0; f < p.group_features; ++f) {
      if (!repeat) {
        const auto len = static_cast<std::size_t>(
            rng.Uniform(0, static_cast<std::int64_t>(2 * p.mean_len)));
        prev[f].clear();
        for (std::size_t k = 0; k < len; ++k) {
          prev[f].push_back(rng.Uniform(0, 1'000'000));
        }
      }
      feature_rows[f].push_back(prev[f]);
    }
  }
  for (std::size_t f = 0; f < p.group_features; ++f) {
    // Built as append rather than operator+ to dodge a GCC 12 -Wrestrict
    // false positive (GCC bug 105329) on "f" + std::to_string(f) at -O3.
    std::string name("f");
    name += std::to_string(f);
    group.push_back(std::move(name));
    kjt.AddFeature(group.back(), FromRows(feature_rows[f]));
  }

  DedupStats stats;
  const auto ikjt = DeduplicateGroup(kjt, group, &stats);
  // Invariants.
  EXPECT_EQ(ikjt.batch_size(), p.batch_size);
  EXPECT_LE(ikjt.unique_rows(), p.batch_size);
  for (const auto idx : ikjt.inverse_lookup()) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(static_cast<std::size_t>(idx), ikjt.unique_rows());
  }
  // Lossless round trip.
  const auto expanded = ExpandToKjt(ikjt);
  for (const auto& key : group) {
    ASSERT_EQ(expanded.Get(key), kjt.Get(key));
  }
  // Compression under duplication.
  if (p.duplication >= 0.5 && p.batch_size >= 64) {
    EXPECT_LT(stats.unique_rows, p.batch_size);
    EXPECT_GE(stats.dedupe_factor(), 1.0);
  }
  // Serialization survives too.
  common::ByteWriter w;
  SerializeIkjt(ikjt, w);
  common::ByteReader r(w.bytes());
  const auto back = DeserializeIkjt(r);
  EXPECT_EQ(back.unique(0), ikjt.unique(0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DedupPropertyTest,
    ::testing::Values(
        DedupSweepParam{1, 1, 0.0, 4}, DedupSweepParam{2, 1, 1.0, 4},
        DedupSweepParam{64, 1, 0.0, 8}, DedupSweepParam{64, 1, 0.9, 8},
        DedupSweepParam{128, 2, 0.5, 4}, DedupSweepParam{128, 3, 0.9, 16},
        DedupSweepParam{256, 4, 0.95, 2}, DedupSweepParam{512, 2, 0.8, 1},
        DedupSweepParam{1024, 1, 0.99, 4},
        DedupSweepParam{333, 5, 0.7, 3}));

class PartialSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PartialSweepTest, PartialIkjtAlwaysRoundTrips) {
  common::Rng rng(GetParam());
  Rows rows;
  std::vector<Id> window;
  const std::size_t len = 4 + static_cast<std::size_t>(GetParam()) % 12;
  for (std::size_t i = 0; i < len; ++i) {
    window.push_back(rng.Uniform(0, 1000));
  }
  for (int r = 0; r < 200; ++r) {
    const double u = rng.UniformReal();
    if (u < 0.5) {
      // shift
      window.erase(window.begin());
      window.push_back(rng.Uniform(0, 1000));
    } else if (u < 0.6) {
      // full redraw
      for (auto& v : window) v = rng.Uniform(0, 1000);
    }  // else: repeat unchanged
    rows.push_back(window);
  }
  const auto jt = FromRows(rows);
  const auto partial = BuildPartialIkjt("f", jt);
  EXPECT_EQ(ExpandPartialIkjt(partial), jt);
  EXPECT_LE(partial.values().size(), jt.total_values());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialSweepTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace recd::tensor
