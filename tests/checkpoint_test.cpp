// Tests for deterministic checkpoint/restore: the checksummed file
// envelope (damage is rejected, never partially decoded), bitwise
// round trips through CaptureCheckpoint/Serialize/Save/Load, the
// reshard-restore rule (a checkpoint taken at rank count R restores at
// any R' in {1, 2, 4} and the continued run stays bitwise identical to
// an uninterrupted one), and the FaultTolerantRunner's recovery
// ladder: newest checkpoint, older checkpoint when the newest is
// corrupt, and fresh-from-seed when nothing loads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/checksum_file.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "etl/etl.h"
#include "reader/reader.h"
#include "storage/table.h"
#include "train/checkpoint.h"
#include "train/distributed.h"
#include "train/fault.h"
#include "train/model.h"
#include "train/reference.h"

namespace recd::train {
namespace {

// ------------------------------------------------------- checksum_file --

std::string TempPath(const std::string& tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "/recd_cksum_" + tag + "_" +
         std::to_string(counter.fetch_add(1));
}

std::vector<std::byte> Payload(std::initializer_list<int> values) {
  std::vector<std::byte> p;
  for (const int v : values) p.push_back(static_cast<std::byte>(v));
  return p;
}

TEST(ChecksumFileTest, RoundTripsPayload) {
  const auto path = TempPath("roundtrip");
  const auto payload = Payload({1, 2, 3, 250, 0, 7});
  common::WriteChecksummedFile(path, 0xABCD1234u, 3, payload);
  EXPECT_EQ(common::ReadChecksummedFile(path, 0xABCD1234u, 3), payload);
  // A higher reader ceiling still accepts version 3.
  EXPECT_EQ(common::ReadChecksummedFile(path, 0xABCD1234u, 9), payload);
  std::remove(path.c_str());
}

TEST(ChecksumFileTest, EmptyPayloadRoundTrips) {
  const auto path = TempPath("empty");
  common::WriteChecksummedFile(path, 1u, 1, {});
  EXPECT_TRUE(common::ReadChecksummedFile(path, 1u, 1).empty());
  std::remove(path.c_str());
}

TEST(ChecksumFileTest, WrongMagicRejected) {
  const auto path = TempPath("magic");
  common::WriteChecksummedFile(path, 0xAAAAAAAAu, 1, Payload({1}));
  EXPECT_THROW((void)common::ReadChecksummedFile(path, 0xBBBBBBBBu, 1),
               common::ChecksumError);
  std::remove(path.c_str());
}

TEST(ChecksumFileTest, NewerVersionRejected) {
  const auto path = TempPath("version");
  common::WriteChecksummedFile(path, 1u, 5, Payload({1}));
  EXPECT_THROW((void)common::ReadChecksummedFile(path, 1u, 4),
               common::ChecksumError);
  std::remove(path.c_str());
}

TEST(ChecksumFileTest, MissingFileRejected) {
  EXPECT_THROW(
      (void)common::ReadChecksummedFile(TempPath("missing"), 1u, 1),
      common::ChecksumError);
}

TEST(ChecksumFileTest, TruncationAtAnyPointRejected) {
  const auto path = TempPath("trunc");
  common::WriteChecksummedFile(path, 1u, 1, Payload({9, 8, 7, 6}));
  const auto full_size = std::filesystem::file_size(path);
  // Chop the file at every prefix length: header cuts, payload cuts,
  // and a missing checksum must all be rejected.
  for (std::uintmax_t keep = 0; keep < full_size; ++keep) {
    std::filesystem::resize_file(path, keep);
    EXPECT_THROW((void)common::ReadChecksummedFile(path, 1u, 1),
                 common::ChecksumError)
        << "accepted a file truncated to " << keep << " bytes";
    // Rewrite for the next iteration (resize_file only shrinks).
    common::WriteChecksummedFile(path, 1u, 1, Payload({9, 8, 7, 6}));
  }
  std::remove(path.c_str());
}

TEST(ChecksumFileTest, TrailingBytesRejected) {
  const auto path = TempPath("trailing");
  common::WriteChecksummedFile(path, 1u, 1, Payload({1, 2}));
  std::ofstream(path, std::ios::binary | std::ios::app) << 'x';
  EXPECT_THROW((void)common::ReadChecksummedFile(path, 1u, 1),
               common::ChecksumError);
  std::remove(path.c_str());
}

TEST(ChecksumFileTest, FlippedPayloadByteRejected) {
  const auto path = TempPath("corrupt");
  const auto payload = Payload({1, 2, 3, 4, 5});
  common::WriteChecksummedFile(path, 1u, 1, payload);
  common::CorruptChecksummedFile(path, /*payload_offset=*/2);
  EXPECT_THROW((void)common::ReadChecksummedFile(path, 1u, 1),
               common::ChecksumError);
  std::remove(path.c_str());
}

TEST(ChecksumFileTest, CorruptHelperNeedsAPayload) {
  const auto path = TempPath("nopayload");
  common::WriteChecksummedFile(path, 1u, 1, {});
  EXPECT_THROW(common::CorruptChecksummedFile(path, 0),
               common::ChecksumError);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- checkpoint --

struct Fixture {
  datagen::DatasetSpec spec;
  ModelConfig model;
  storage::BlobStore store;
  storage::Table table;
  reader::PreprocessedBatch recd_batch;
  reader::PreprocessedBatch base_batch;
};

// Small model so the many runner incarnations (each writing multiple
// checkpoint files) stay fast: a few dozen 500x32 tables.
Fixture MakeFixture(std::size_t batch_size = 64) {
  Fixture fx;
  fx.spec = datagen::RmDataset(datagen::RmKind::kRm1, 0.05);
  fx.spec.concurrent_sessions = 16;  // heavy in-batch duplication
  fx.model = RmModel(datagen::RmKind::kRm1, fx.spec);
  fx.model.emb_hash_size = 500;
  fx.model.emb_dim = 32;
  fx.model.bottom_mlp_hidden = {64};
  fx.model.top_mlp_hidden = {64, 32};
  datagen::TrafficGenerator gen(fx.spec);
  const auto traffic = gen.Generate(batch_size * 2);
  auto samples = etl::JoinLogs(traffic.features, traffic.events);
  etl::ClusterBySession(samples);
  storage::StorageSchema schema;
  schema.num_dense = fx.spec.num_dense;
  for (const auto& f : fx.spec.sparse) {
    schema.sparse_names.push_back(f.name);
  }
  auto landed =
      storage::LandTable(fx.store, "t", schema, {std::move(samples)});
  fx.table = std::move(landed.table);

  reader::Reader recd(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, true),
                      reader::ReaderOptions{.use_ikjt = true});
  reader::Reader base(fx.store, fx.table,
                      MakeDataLoaderConfig(fx.model, batch_size, false),
                      reader::ReaderOptions{.use_ikjt = false});
  fx.recd_batch = *recd.NextBatch();
  fx.base_batch = *base.NextBatch();
  return fx;
}

void ExpectSameMlp(const nn::Mlp& a, const nn::Mlp& b,
                   const std::string& what) {
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (std::size_t l = 0; l < a.num_layers(); ++l) {
    EXPECT_TRUE(a.layer(l).weights() == b.layer(l).weights())
        << what << ": layer " << l << " weights differ";
    const auto ba = a.layer(l).bias();
    const auto bb = b.layer(l).bias();
    ASSERT_EQ(ba.size(), bb.size());
    EXPECT_TRUE(std::equal(ba.begin(), ba.end(), bb.begin()))
        << what << ": layer " << l << " bias differs";
  }
}

void ExpectMatchesReference(const DistributedTrainer& dist,
                            const ReferenceDlrm& ref,
                            const std::string& what) {
  for (std::size_t r = 0; r < dist.config().num_ranks; ++r) {
    ExpectSameMlp(dist.bottom_mlp(r), ref.bottom_mlp(),
                  what + " bottom rank " + std::to_string(r));
    ExpectSameMlp(dist.top_mlp(r), ref.top_mlp(),
                  what + " top rank " + std::to_string(r));
  }
  const auto order = ModelTableOrder(dist.model());
  for (std::size_t t = 0; t < order.size(); ++t) {
    EXPECT_TRUE(dist.table(t).weights() == ref.table(order[t]).weights())
        << what << ": table " << order[t] << " differs";
  }
}

constexpr float kLr = 0.05f;
constexpr std::uint64_t kSeed = 42;

std::string CheckpointDir(const std::string& tag) {
  static std::atomic<int> counter{0};
  const auto dir = ::testing::TempDir() + "/recd_ckpt_" + tag + "_" +
                   std::to_string(counter.fetch_add(1));
  std::filesystem::remove_all(dir);
  return dir;
}

DistributedConfig TrainerConfig(std::size_t num_ranks) {
  DistributedConfig config;
  config.num_ranks = num_ranks;
  config.lr = kLr;
  config.seed = kSeed;
  return config;
}

TEST(CheckpointTest, CaptureRoundTripsBitwiseThroughBytesAndFile) {
  auto fx = MakeFixture();
  DistributedTrainer trainer(fx.model, TrainerConfig(2));
  (void)trainer.Step(fx.base_batch);
  (void)trainer.Step(fx.base_batch);

  const TrainerCheckpoint ck = CaptureCheckpoint(trainer, /*next_step=*/2);
  EXPECT_EQ(ck.next_step, 2u);
  EXPECT_EQ(ck.seed, kSeed);
  EXPECT_EQ(ck.lr, kLr);
  EXPECT_EQ(ck.tables.size(), fx.model.num_tables());
  EXPECT_GT(ck.StateBytes(), 0u);

  // Memory round trip is exact.
  const auto bytes = SerializeCheckpoint(ck);
  const TrainerCheckpoint back = DeserializeCheckpoint(bytes);
  EXPECT_EQ(back.next_step, ck.next_step);
  EXPECT_EQ(back.seed, ck.seed);
  EXPECT_EQ(back.lr, ck.lr);
  EXPECT_EQ(back.bottom_dims, ck.bottom_dims);
  EXPECT_EQ(back.top_dims, ck.top_dims);
  ASSERT_EQ(back.tables.size(), ck.tables.size());
  for (std::size_t t = 0; t < ck.tables.size(); ++t) {
    EXPECT_TRUE(back.tables[t] == ck.tables[t]) << "table " << t;
  }
  EXPECT_EQ(back.bottom_w, ck.bottom_w);
  EXPECT_EQ(back.bottom_b, ck.bottom_b);
  EXPECT_EQ(back.top_w, ck.top_w);
  EXPECT_EQ(back.top_b, ck.top_b);

  // File round trip re-serializes to the identical bytes.
  const auto dir = CheckpointDir("roundtrip");
  std::filesystem::create_directories(dir);
  const auto path = dir + "/ck.rckp";
  SaveCheckpoint(ck, path);
  EXPECT_EQ(SerializeCheckpoint(LoadCheckpoint(path)), bytes);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, SerializationIsRankCountInvariant) {
  auto fx = MakeFixture();
  std::vector<std::vector<std::byte>> images;
  for (const std::size_t n : {1u, 2u, 4u}) {
    DistributedTrainer trainer(fx.model, TrainerConfig(n));
    (void)trainer.Step(fx.base_batch);
    (void)trainer.Step(fx.base_batch);
    images.push_back(
        SerializeCheckpoint(CaptureCheckpoint(trainer, /*next_step=*/2)));
  }
  // The same training state checkpoints to the same bytes regardless
  // of how it was sharded — the precondition for elastic restore.
  EXPECT_EQ(images[0], images[1]);
  EXPECT_EQ(images[0], images[2]);
}

TEST(CheckpointTest, RestoreAtAnyRankCountContinuesBitwiseIdentically) {
  auto fx = MakeFixture();
  constexpr int kTotalSteps = 3;
  constexpr int kCheckpointStep = 1;
  ReferenceDlrm ref(fx.model, kSeed);
  std::vector<float> ref_losses;
  for (int k = 0; k < kTotalSteps; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  // Checkpoint a 2-rank run after one step...
  DistributedTrainer source(fx.model, TrainerConfig(2));
  ASSERT_EQ(source.Step(fx.base_batch), ref_losses[0]);
  const TrainerCheckpoint ck = CaptureCheckpoint(source, kCheckpointStep);

  // ...and continue it at every valid rank count: the reshard-restore
  // plus the remaining steps must land exactly on the uninterrupted run.
  for (const std::size_t restore_ranks : {1u, 2u, 4u}) {
    const std::string what =
        "restore at " + std::to_string(restore_ranks) + " ranks";
    DistributedTrainer resumed(fx.model, TrainerConfig(restore_ranks));
    resumed.LoadState(ck);
    for (int k = kCheckpointStep; k < kTotalSteps; ++k) {
      EXPECT_EQ(resumed.Step(fx.base_batch),
                ref_losses[static_cast<std::size_t>(k)])
          << what << ": loss differs at step " << k;
    }
    ExpectMatchesReference(resumed, ref, what);
  }
}

TEST(CheckpointTest, DamagedFilesAreRejectedNeverPartiallyRestored) {
  auto fx = MakeFixture();
  DistributedTrainer trainer(fx.model, TrainerConfig(1));
  (void)trainer.Step(fx.base_batch);
  const auto dir = CheckpointDir("damage");
  std::filesystem::create_directories(dir);
  const auto path = dir + "/ck.rckp";
  SaveCheckpoint(CaptureCheckpoint(trainer, 1), path);

  // Truncation: cut mid-payload.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_THROW((void)LoadCheckpoint(path), CheckpointError);

  // Bit rot: flip one payload byte under a valid-looking envelope.
  SaveCheckpoint(CaptureCheckpoint(trainer, 1), path);
  common::CorruptChecksummedFile(path, /*payload_offset=*/1234);
  EXPECT_THROW((void)LoadCheckpoint(path), CheckpointError);

  // Wrong file type: a valid checksummed file with a foreign magic.
  common::WriteChecksummedFile(path, 0x4E4F5045u, 1, Payload({1, 2, 3}));
  EXPECT_THROW((void)LoadCheckpoint(path), CheckpointError);

  // Future format version under the correct magic ("RCKP").
  common::WriteChecksummedFile(path, 0x52434B50u, 999, Payload({1, 2, 3}));
  EXPECT_THROW((void)LoadCheckpoint(path), CheckpointError);

  // Valid envelope, garbage payload.
  common::WriteChecksummedFile(path, 0x52434B50u, 1, Payload({1, 2, 3}));
  EXPECT_THROW((void)LoadCheckpoint(path), CheckpointError);
  std::filesystem::remove_all(dir);
}

TEST(CheckpointTest, FingerprintMismatchRejected) {
  auto fx = MakeFixture();
  DistributedTrainer trainer(fx.model, TrainerConfig(2));
  (void)trainer.Step(fx.base_batch);
  const TrainerCheckpoint ck = CaptureCheckpoint(trainer, 1);

  // Same model, different seed lineage.
  DistributedConfig other_seed = TrainerConfig(2);
  other_seed.seed = kSeed + 1;
  DistributedTrainer wrong_seed(fx.model, other_seed);
  EXPECT_THROW(wrong_seed.LoadState(ck), CheckpointError);

  // Different table shape.
  ModelConfig other_model = fx.model;
  other_model.emb_hash_size = 499;
  DistributedTrainer wrong_model(other_model, TrainerConfig(2));
  EXPECT_THROW(wrong_model.LoadState(ck), CheckpointError);

  // Different MLP architecture.
  ModelConfig other_mlp = fx.model;
  other_mlp.top_mlp_hidden = {32};
  DistributedTrainer wrong_mlp(other_mlp, TrainerConfig(2));
  EXPECT_THROW(wrong_mlp.LoadState(ck), CheckpointError);
}

// ------------------------------------------------- FaultTolerantRunner --

ElasticRunOptions RunnerOptions(const std::string& dir,
                                std::vector<std::size_t> schedule,
                                bool recd = false) {
  ElasticRunOptions options;
  options.total_steps = 3;
  options.checkpoint_every = 1;
  options.checkpoint_dir = dir;
  options.rank_schedule = std::move(schedule);
  options.trainer = TrainerConfig(1);  // num_ranks comes from the schedule
  options.trainer.recd = recd;
  return options;
}

TEST(FaultTolerantRunnerTest, CleanRunMatchesUninterruptedTraining) {
  auto fx = MakeFixture();
  ReferenceDlrm ref(fx.model, kSeed);
  std::vector<float> ref_losses;
  for (int k = 0; k < 3; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  const auto dir = CheckpointDir("clean");
  FaultTolerantRunner runner(fx.model, RunnerOptions(dir, {2}));
  const auto result = runner.Run(
      [&](std::size_t) -> const reader::PreprocessedBatch& {
        return fx.base_batch;
      });
  EXPECT_EQ(result.losses, ref_losses);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.steps_replayed, 0u);
  EXPECT_EQ(result.checkpoints_written, 3u);  // steps 0, 1, 2
  EXPECT_EQ(result.corrupt_checkpoints_skipped, 0u);
  EXPECT_EQ(result.seed_restores, 0u);
  ExpectMatchesReference(runner.trainer(), ref, "clean run");
  EXPECT_TRUE(std::filesystem::exists(runner.CheckpointPath(0)));
  std::filesystem::remove_all(dir);
}

TEST(FaultTolerantRunnerTest, SkipsCorruptCheckpointAndReplaysFurtherBack) {
  auto fx = MakeFixture();
  ReferenceDlrm ref(fx.model, kSeed);
  std::vector<float> ref_losses;
  for (int k = 0; k < 3; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  // The checkpoint at step 2 is corrupted as it is written; the kill at
  // step 2 then forces a restore that must *reject* it and fall back to
  // the intact step-1 checkpoint, replaying one extra step.
  FaultInjector injector;
  injector.Arm(Fault{.kind = Fault::Kind::kCorruptCheckpoint, .step = 2});
  injector.Arm(Fault{.kind = Fault::Kind::kKillRank,
                     .step = 2,
                     .rank = 0,
                     .exchange = Exchange::kEmb});
  const auto dir = CheckpointDir("skipcorrupt");
  FaultTolerantRunner runner(fx.model, RunnerOptions(dir, {2}), &injector);
  const auto result = runner.Run(
      [&](std::size_t) -> const reader::PreprocessedBatch& {
        return fx.base_batch;
      });
  EXPECT_EQ(result.losses, ref_losses);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_EQ(result.corrupt_checkpoints_skipped, 1u);
  EXPECT_EQ(result.steps_replayed, 1u);  // step 1 ran twice
  EXPECT_EQ(result.seed_restores, 0u);
  EXPECT_EQ(injector.faults_fired(), 2u);
  ExpectMatchesReference(runner.trainer(), ref, "corrupt-skip run");
  std::filesystem::remove_all(dir);
}

TEST(FaultTolerantRunnerTest, FallsBackToSeedWhenEveryCheckpointIsCorrupt) {
  auto fx = MakeFixture();
  ReferenceDlrm ref(fx.model, kSeed);
  std::vector<float> ref_losses;
  for (int k = 0; k < 3; ++k) {
    ref_losses.push_back(ref.TrainStep(fx.base_batch, kLr));
  }

  FaultInjector injector;
  for (const std::size_t step : {0u, 1u, 2u}) {
    injector.Arm(
        Fault{.kind = Fault::Kind::kCorruptCheckpoint, .step = step});
  }
  injector.Arm(Fault{.kind = Fault::Kind::kKillRank,
                     .step = 2,
                     .rank = 1,
                     .exchange = Exchange::kGrad});
  const auto dir = CheckpointDir("seedrestore");
  FaultTolerantRunner runner(fx.model, RunnerOptions(dir, {2}), &injector);
  const auto result = runner.Run(
      [&](std::size_t) -> const reader::PreprocessedBatch& {
        return fx.base_batch;
      });
  EXPECT_EQ(result.losses, ref_losses);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_EQ(result.corrupt_checkpoints_skipped, 3u);
  EXPECT_EQ(result.seed_restores, 1u);
  EXPECT_EQ(result.steps_replayed, 2u);  // steps 0 and 1 ran twice
  ExpectMatchesReference(runner.trainer(), ref, "seed-restore run");
  std::filesystem::remove_all(dir);
}

TEST(FaultTolerantRunnerTest, GivesUpAfterMaxFailures) {
  auto fx = MakeFixture();
  FaultInjector injector;
  injector.Arm(Fault{.kind = Fault::Kind::kKillRank,
                     .step = 0,
                     .rank = 0,
                     .exchange = Exchange::kSdd});
  const auto dir = CheckpointDir("giveup");
  auto options = RunnerOptions(dir, {2});
  options.max_failures = 0;
  FaultTolerantRunner runner(fx.model, options, &injector);
  EXPECT_THROW(runner.Run([&](std::size_t) -> const reader::PreprocessedBatch& {
                 return fx.base_batch;
               }),
               RankFailure);
  std::filesystem::remove_all(dir);
}

TEST(FaultTolerantRunnerTest, InvalidOptionsThrow) {
  auto fx = MakeFixture();
  const auto dir = CheckpointDir("invalid");
  auto no_steps = RunnerOptions(dir, {2});
  no_steps.total_steps = 0;
  EXPECT_THROW(FaultTolerantRunner(fx.model, no_steps),
               std::invalid_argument);
  auto no_cadence = RunnerOptions(dir, {2});
  no_cadence.checkpoint_every = 0;
  EXPECT_THROW(FaultTolerantRunner(fx.model, no_cadence),
               std::invalid_argument);
  EXPECT_THROW(FaultTolerantRunner(fx.model, RunnerOptions(dir, {})),
               std::invalid_argument);
  EXPECT_THROW(FaultTolerantRunner(fx.model, RunnerOptions(dir, {3})),
               std::invalid_argument);
  auto no_dir = RunnerOptions(dir, {2});
  no_dir.checkpoint_dir.clear();
  EXPECT_THROW(FaultTolerantRunner(fx.model, no_dir),
               std::invalid_argument);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace recd::train
